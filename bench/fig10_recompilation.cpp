/**
 * @file
 * Figure 10: probability of correctly measuring each program qubit of
 * BV-6 on the IBMQ-Toronto model, baseline vs recompiled size-2 CPMs.
 *
 * The per-qubit success probability counts outcomes where that qubit
 * reads its ideal value even if the overall outcome is wrong (paper
 * Section 6.6). Paper reference: recompilation improves the
 * per-qubit read success by up to 3.25x.
 */
#include <cstdint>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/jigsaw.h"
#include "device/library.h"
#include "sim/simulators.h"
#include "workloads/bv.h"

int
main()
{
    using namespace jigsaw;

    const device::DeviceModel dev = device::toronto();
    const workloads::BernsteinVazirani bv(6);
    constexpr std::uint64_t trials = 65536;

    std::cout << "=== Figure 10: per-qubit measurement success, BV-6 on "
              << dev.name() << " ===\n\n";

    sim::NoisySimulator executor(dev, {.seed = 1010});

    // Baseline: all qubits measured under the global compilation.
    const Pmf baseline =
        core::runBaseline(bv.circuit(), dev, executor, trials);

    // JigSaw with recompiled CPMs (sliding window, size 2).
    const core::JigsawResult js =
        core::runJigsaw(bv.circuit(), dev, executor, trials);

    const BasisState ideal = bv.hiddenString();

    auto qubit_success_global = [&](int q) {
        double p = 0.0;
        for (const auto &[outcome, prob] : baseline.probabilities()) {
            if (getBit(outcome, q) == getBit(ideal, q))
                p += prob;
        }
        return p;
    };

    auto qubit_success_cpm = [&](int q) {
        // Average over the CPMs that measure qubit q.
        double total = 0.0;
        int count = 0;
        for (const core::CpmRecord &cpm : js.cpms) {
            for (std::size_t j = 0; j < cpm.subset.size(); ++j) {
                if (cpm.subset[j] != q)
                    continue;
                double p = 0.0;
                for (const auto &[outcome, prob] :
                     cpm.localPmf.probabilities()) {
                    if (getBit(outcome, static_cast<int>(j)) ==
                        getBit(ideal, q)) {
                        p += prob;
                    }
                }
                total += p;
                ++count;
            }
        }
        return count ? total / count : 0.0;
    };

    ConsoleTable table({"program qubit", "baseline", "CPM (recompiled)",
                        "gain"});
    double max_gain = 0.0;
    for (int q = 0; q < 6; ++q) {
        const double base = qubit_success_global(q);
        const double cpm = qubit_success_cpm(q);
        max_gain = std::max(max_gain, cpm / base);
        table.addRow({std::to_string(q), ConsoleTable::num(base, 3),
                      ConsoleTable::num(cpm, 3),
                      ConsoleTable::num(cpm / base, 2)});
    }
    table.print(std::cout);

    std::cout << "\nmax per-qubit gain: " << ConsoleTable::num(max_gain, 2)
              << "x (paper: up to 3.25x)\n"
              << "expected shape: every qubit reads at least as well "
                 "in a recompiled CPM; the worst baseline qubits gain "
                 "the most.\n"
              << "note: the magnitude is smaller than the paper's "
                 "because the simulated baseline compiler sees exact "
                 "calibration data and avoids the worst readout qubits "
                 "better than real-hardware baselines did (see "
                 "EXPERIMENTS.md).\n";
    return 0;
}
