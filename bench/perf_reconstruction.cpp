/**
 * @file
 * google-benchmark microbenchmarks backing the paper's Section 7.3
 * claim: reconstruction time is linear in the number of stored
 * outcomes (i.e. in trials) and in the number of CPMs/qubits.
 */
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/bayesian.h"
#include "core/subsets.h"

namespace {

using namespace jigsaw;

/** Synthetic sparse global PMF with the given support size (capped
 *  at half the basis space so the fill loop always terminates). */
Pmf
syntheticGlobal(int n_qubits, int support, Rng &rng)
{
    const BasisState mask =
        (n_qubits >= 64) ? ~0ULL : ((1ULL << n_qubits) - 1);
    const auto space = static_cast<std::size_t>(mask) + 1;
    const std::size_t target =
        std::min<std::size_t>(static_cast<std::size_t>(support),
                              space / 2);
    Pmf pmf(n_qubits);
    while (pmf.support() < target) {
        const auto outcome = static_cast<BasisState>(rng.word() & mask);
        pmf.set(outcome, rng.uniform(0.01, 1.0));
    }
    pmf.normalize();
    return pmf;
}

std::vector<core::Marginal>
syntheticMarginals(int n_qubits, int subset_size, Rng &rng)
{
    std::vector<core::Marginal> marginals;
    for (const core::Subset &s :
         core::slidingWindowSubsets(n_qubits, subset_size)) {
        Pmf local(subset_size);
        for (BasisState v = 0; v < (1ULL << subset_size); ++v)
            local.set(v, rng.uniform(0.05, 1.0));
        local.normalize();
        marginals.push_back({local, s});
    }
    return marginals;
}

/** Time one reconstruction round vs global-PMF support size. */
void
BM_ReconstructVsSupport(benchmark::State &state)
{
    const int support = static_cast<int>(state.range(0));
    Rng rng(42);
    const Pmf global = syntheticGlobal(24, support, rng);
    const std::vector<core::Marginal> marginals =
        syntheticMarginals(24, 2, rng);
    core::ReconstructionOptions options;
    options.maxRounds = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::bayesianReconstruct(global, marginals, options));
    }
    state.SetComplexityN(support);
}
BENCHMARK(BM_ReconstructVsSupport)
    ->RangeMultiplier(4)
    ->Range(1024, 65536)
    ->MinTime(0.05)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMillisecond);

/** Time one reconstruction round vs number of CPMs (qubits). */
void
BM_ReconstructVsQubits(benchmark::State &state)
{
    const int n_qubits = static_cast<int>(state.range(0));
    Rng rng(43);
    const Pmf global = syntheticGlobal(n_qubits, 4096, rng);
    const std::vector<core::Marginal> marginals =
        syntheticMarginals(n_qubits, 2, rng); // n marginals
    core::ReconstructionOptions options;
    options.maxRounds = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::bayesianReconstruct(global, marginals, options));
    }
    state.SetComplexityN(n_qubits);
}
BENCHMARK(BM_ReconstructVsQubits)
    // Start at 16 qubits so the 4096-entry support is constant across
    // the sweep and the fit isolates the CPM-count dependence.
    ->DenseRange(16, 40, 8)
    ->MinTime(0.05)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMillisecond);

/** A single Bayesian update (one marginal) vs support. */
void
BM_SingleUpdate(benchmark::State &state)
{
    const int support = static_cast<int>(state.range(0));
    Rng rng(44);
    const Pmf global = syntheticGlobal(20, support, rng);
    Pmf local(2);
    local.set(0, 0.1);
    local.set(1, 0.2);
    local.set(2, 0.3);
    local.set(3, 0.4);
    const core::Marginal marginal{local, {0, 1}};
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::bayesianUpdate(global, marginal));
    }
    state.SetComplexityN(support);
}
BENCHMARK(BM_SingleUpdate)
    ->RangeMultiplier(4)
    ->Range(1024, 65536)
    ->MinTime(0.05)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
