/**
 * @file
 * End-to-end timing of the three hot layers — state-vector kernels,
 * executor sampling, Bayesian reconstruction — plus the service
 * entries, each measured naive (the retained reference
 * implementations, or sequential program-at-a-time execution) vs
 * optimized, on a 16-qubit workload by default. Emits BENCH_perf.json
 * (see docs/performance.md) so future PRs have a perf trajectory; the
 * acceptance gate for this harness is overall_speedup >= 2.5 (the
 * geomean includes the service entries, and
 * service/concurrent_programs is ~1x by construction on a single
 * core).
 *
 * Usage: bench_perf_reconstruction [--qubits N] [--out PATH] [--quick]
 */
#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "compiler/transpiler.h"
#include "core/bayesian.h"
#include "core/reference_bayesian.h"
#include "core/scheduler.h"
#include "core/service.h"
#include "core/subsets.h"
#include "device/library.h"
#include "obs/exposition.h"
#include "perf_json.h"
#include "sim/reference_kernels.h"
#include "sim/simulators.h"
#include "sim/statevector.h"
#include "workloads/bv.h"
#include "workloads/ghz.h"
#include "workloads/qft.h"

namespace {

using namespace jigsaw;
using circuit::QuantumCircuit;

double
msSince(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Random U3+CX circuit: the paper's generic dense workload shape. */
QuantumCircuit
randomCircuit(int n_qubits, int depth, Rng &rng)
{
    QuantumCircuit qc(n_qubits, n_qubits);
    for (int layer = 0; layer < depth; ++layer) {
        for (int q = 0; q < n_qubits; ++q) {
            qc.u3(rng.uniform(0.0, M_PI), rng.uniform(0.0, 2 * M_PI),
                  rng.uniform(0.0, 2 * M_PI), q);
        }
        for (int q = layer % 2; q + 1 < n_qubits; q += 2)
            qc.cx(q, q + 1);
    }
    return qc;
}

/** QFT-like circuit: dominated by diagonal controlled-phase gates. */
QuantumCircuit
qftCircuit(int n_qubits)
{
    QuantumCircuit qc(n_qubits, n_qubits);
    for (int q = n_qubits - 1; q >= 0; --q) {
        qc.h(q);
        for (int c = q - 1; c >= 0; --c)
            qc.cp(M_PI / static_cast<double>(1 << (q - c)), c, q);
    }
    return qc;
}

std::vector<int>
allQubits(int n)
{
    std::vector<int> qs(static_cast<std::size_t>(n));
    for (int q = 0; q < n; ++q)
        qs[static_cast<std::size_t>(q)] = q;
    return qs;
}

/** Noisy-ish synthetic global PMF with a dense support. */
Pmf
syntheticGlobal(int n_qubits, std::size_t support, Rng &rng)
{
    const BasisState mask = (1ULL << n_qubits) - 1;
    Pmf pmf(n_qubits);
    const std::size_t target =
        std::min<std::size_t>(support, (static_cast<std::size_t>(mask) + 1));
    while (pmf.support() < target)
        pmf.set(static_cast<BasisState>(rng.word() & mask),
                rng.uniform(0.01, 1.0));
    pmf.normalize();
    return pmf;
}

std::vector<core::Marginal>
syntheticMarginals(int n_qubits, const std::vector<int> &sizes, Rng &rng)
{
    std::vector<core::Marginal> marginals;
    for (int size : sizes) {
        for (const core::Subset &s :
             core::slidingWindowSubsets(n_qubits, size)) {
            Pmf local(size);
            for (BasisState v = 0; v < (1ULL << size); ++v)
                local.set(v, rng.uniform(0.05, 1.0));
            local.normalize();
            marginals.push_back({local, s});
        }
    }
    return marginals;
}

} // namespace

int
main(int argc, char **argv)
{
    int n_qubits = 16;
    int reps = 3;
    int executor_runs = 24;
    // The acceptance gate, enforced on the default (full) workload.
    // --quick is a smoke run on a smaller problem where the fixed
    // setup costs weigh more — and where the ~1x-by-construction
    // service entries can dip under 1x outright when the thread pool
    // is oversubscribed (e.g. JIGSAW_THREADS=4 on a 1-core box) — so
    // it only checks for collapse, not speed.
    double min_speedup = 2.5;
    std::string out_path = "BENCH_perf.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--qubits") && i + 1 < argc) {
            n_qubits = std::atoi(argv[++i]);
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--quick")) {
            n_qubits = 12;
            reps = 2;
            executor_runs = 8;
            min_speedup = 0.7;
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--qubits N] [--out PATH] [--quick]\n";
            return 2;
        }
    }
    if (n_qubits < 4 || n_qubits > 22) {
        std::cerr << "qubit count must be in [4, 22]\n";
        return 2;
    }

    bench::PerfReport report(
        std::to_string(n_qubits) +
        "-qubit kernels / cached executor / indexed reconstruction");
    Rng rng(2024);
    const std::vector<int> qubits = allQubits(n_qubits);

    // --- 1. State-vector kernels ----------------------------------
    {
        const QuantumCircuit random_qc = randomCircuit(n_qubits, 12, rng);
        const QuantumCircuit qft_qc = qftCircuit(n_qubits);
        const std::vector<std::pair<const char *, const QuantumCircuit *>>
            cases = {{"kernels/random_u3_cx", &random_qc},
                     {"kernels/qft", &qft_qc}};
        for (const auto &[label, qc_ptr] : cases) {
            const QuantumCircuit &qc = *qc_ptr;
            auto start = std::chrono::steady_clock::now();
            for (int r = 0; r < reps; ++r) {
                const Pmf p = sim::referenceMeasurementPmf(qc, qubits);
                (void)p;
            }
            const double naive_ms = msSince(start);

            start = std::chrono::steady_clock::now();
            for (int r = 0; r < reps; ++r) {
                sim::StateVector state(n_qubits);
                state.applyCircuit(qc);
                const Pmf p = state.measurementPmf(qubits);
                (void)p;
            }
            const double opt_ms = msSince(start);
            report.addComparison(label, naive_ms, opt_ms);
            std::cerr << "  [perf] " << label << ": " << naive_ms
                      << " ms -> " << opt_ms << " ms\n";
        }
    }

    // --- 1b. Kernels: scattered-mask phase table (gather path) -----
    {
        // The QAOA shape the gather kernels target: one fused phase
        // table over qubits scattered across the register (a routed
        // cost layer rarely lands on contiguous low qubits). The
        // scalar baseline pays one PEXT per amplitude; the wide
        // tables batch the index math per lane block and fetch the
        // table entries with a hardware gather. Same table, same
        // mask, same amplitudes — the entry isolates the kernel, so
        // the speedup is the gather path itself.
        const int bits = n_qubits >= 16 ? 20 : 16;
        const std::size_t dim = 1ULL << bits;
        std::uint64_t mask = 0;
        for (int b : {1, 3, 6, 8, 11, 13, 16, 18}) {
            if (b < bits - 1)
                mask |= 1ULL << b;
        }
        const std::size_t tsize =
            1ULL << static_cast<unsigned>(__builtin_popcountll(mask));
        std::vector<double> tab_re(tsize), tab_im(tsize);
        for (std::size_t t = 0; t < tsize; ++t) {
            const double angle = rng.uniform(0.0, 2 * M_PI);
            tab_re[t] = std::cos(angle);
            tab_im[t] = std::sin(angle);
        }
        std::vector<double> re0(dim), im0(dim);
        for (std::size_t i = 0; i < dim; ++i) {
            re0[i] = rng.uniform(-1.0, 1.0);
            im0[i] = rng.uniform(-1.0, 1.0);
        }
        const int kernel_reps = reps * 10;

        std::vector<double> re1 = re0, im1 = im0;
        const simd::KernelTable &scalar_kt = simd::scalarKernels();
        auto start = std::chrono::steady_clock::now();
        for (int r = 0; r < kernel_reps; ++r)
            scalar_kt.phaseTable(re1.data(), im1.data(), mask,
                                 tab_re.data(), tab_im.data(), 0, dim);
        const double naive_ms = msSince(start);

        std::vector<double> re2 = re0, im2 = im0;
        const simd::KernelTable &active_kt = simd::activeKernels();
        start = std::chrono::steady_clock::now();
        for (int r = 0; r < kernel_reps; ++r)
            active_kt.phaseTable(re2.data(), im2.data(), mask,
                                 tab_re.data(), tab_im.data(), 0, dim);
        const double opt_ms = msSince(start);

        double max_diff = 0.0;
        for (std::size_t i = 0; i < dim; ++i) {
            max_diff = std::max(max_diff, std::abs(re1[i] - re2[i]));
            max_diff = std::max(max_diff, std::abs(im1[i] - im2[i]));
        }
        if (max_diff > 1e-9) {
            std::cerr << "ERROR: " << active_kt.name
                      << " scattered phase table diverged from scalar "
                         "(max diff "
                      << max_diff << ")\n";
            return 1;
        }
        report.addComparison("kernels/qaoa_scattered", naive_ms, opt_ms);
        std::cerr << "  [perf] kernels/qaoa_scattered: " << naive_ms
                  << " ms -> " << opt_ms << " ms (" << active_kt.name
                  << " table, " << bits << "-bit register)\n";
    }

    // --- 2. Executor: repeated runs of one circuit ----------------
    {
        QuantumCircuit qc = randomCircuit(n_qubits, 8, rng);
        qc.measureAll();
        const std::uint64_t shots = 4096;

        Rng sample_rng(7);
        auto start = std::chrono::steady_clock::now();
        for (int r = 0; r < executor_runs; ++r) {
            // Uncached executor: every run re-simulates the circuit.
            const Pmf pmf = sim::referenceMeasurementPmf(qc, qubits);
            const Histogram h = pmf.sampleHistogram(shots, sample_rng);
            (void)h;
        }
        const double naive_ms = msSince(start);

        sim::IdealSimulator ideal(7);
        start = std::chrono::steady_clock::now();
        for (int r = 0; r < executor_runs; ++r) {
            const Histogram h = ideal.run(qc, shots);
            (void)h;
        }
        const double opt_ms = msSince(start);
        report.addComparison("executor/repeated_runs", naive_ms, opt_ms);
        std::cerr << "  [perf] executor/repeated_runs: " << naive_ms
                  << " ms -> " << opt_ms << " ms (cache hits: "
                  << ideal.cacheHits() << ")\n";
    }

    // --- 2b. Executor: batched CPM execution ----------------------
    {
        // JigSaw-M's CPM structure: every sliding window of sizes
        // 2..5 over one shared compilation. The per-CPM path pays one
        // evolution per subset (each CPM is a distinct circuit, so
        // the PMF cache never hits); the batched path evolves the
        // prefix once and reads every marginal off the final state.
        QuantumCircuit base = randomCircuit(n_qubits, 8, rng);
        base.measureAll();
        std::vector<sim::CpmSpec> specs;
        for (int size : {2, 3, 4, 5}) {
            for (const core::Subset &s :
                 core::slidingWindowSubsets(n_qubits, size))
                specs.push_back({s, 256});
        }

        sim::IdealSimulator per_cpm(11);
        auto start = std::chrono::steady_clock::now();
        for (const sim::CpmSpec &spec : specs) {
            const Histogram h = per_cpm.run(
                base.withMeasurementSubset(spec.qubits), spec.shots);
            (void)h;
        }
        const double naive_ms = msSince(start);

        sim::IdealSimulator batched(11);
        start = std::chrono::steady_clock::now();
        const std::vector<Histogram> hs = batched.runBatch(base, specs);
        (void)hs;
        const double opt_ms = msSince(start);
        report.addComparison("executor/batched_cpms", naive_ms, opt_ms);
        std::cerr << "  [perf] executor/batched_cpms: " << naive_ms
                  << " ms -> " << opt_ms << " ms ("
                  << batched.batchStats().evolutionsSaved()
                  << " evolutions saved over " << specs.size()
                  << " CPMs)\n";
    }

    // --- 2c. Service: concurrent multi-program throughput ---------
    {
        // The same batch of JigSaw programs run back-to-back through
        // runJigsaw vs concurrently through JigsawService, each
        // program with its own seeded executor so the outputs must be
        // bitwise identical. The transpile memo is cleared before
        // each phase so both pay cold compilation; the speedup is the
        // thread-pool concurrency win (1x on a single-core box).
        const device::DeviceModel dev = device::toronto();
        const int n_programs = n_qubits >= 14 ? 8 : 6;
        const std::uint64_t service_trials = 8192;
        std::vector<core::ServiceProgram> programs;
        for (int i = 0; i < n_programs; ++i) {
            const int width = 8 + (i % 3);
            circuit::QuantumCircuit qc(1);
            switch (i % 3) {
              case 0:
                qc = workloads::Ghz(width).circuit();
                break;
              case 1:
                qc = workloads::BernsteinVazirani(width).circuit();
                break;
              default:
                qc = workloads::QftAdjoint(width).circuit();
                break;
            }
            core::JigsawOptions options;
            if (i % 2 == 1)
                options = core::jigsawMOptions();
            programs.emplace_back(std::move(qc), dev, service_trials,
                                  options, 1000 + 17ULL * i);
        }

        compiler::clearTranspileCache();
        auto start = std::chrono::steady_clock::now();
        const std::vector<core::JigsawResult> sequential =
            core::runProgramsSequentially(programs);
        const double naive_ms = msSince(start);

        compiler::clearTranspileCache();
        core::JigsawService service;
        start = std::chrono::steady_clock::now();
        const std::vector<core::JigsawResult> concurrent =
            service.run(programs);
        const double opt_ms = msSince(start);

        for (std::size_t i = 0; i < programs.size(); ++i) {
            const double drift = totalVariationDistance(
                sequential[i].output, concurrent[i].output);
            if (drift != 0.0) {
                std::cerr << "ERROR: service output diverged from "
                             "sequential runJigsaw on program "
                          << i << " (total variation " << drift
                          << ")\n";
                return 1;
            }
        }
        report.addComparison("service/concurrent_programs", naive_ms,
                             opt_ms);
        std::cerr << "  [perf] service/concurrent_programs: "
                  << naive_ms << " ms -> " << opt_ms << " ms ("
                  << n_programs << " programs, "
                  << service.stats().programsPerSecond()
                  << " programs/s)\n";
    }

    // --- 2d. Service: cross-program batched execution -------------
    {
        // The merge-path headline: a 45-program suite (5 circuits x 3
        // JigSaw schemes x 3 duplicates with distinct seeds) where
        // concurrent programs share (circuit, device) pairs, run
        // sequentially with private executors vs through the merged
        // JigsawService. Every shared CPM gate prefix is evolved once
        // for the whole batch instead of once per program, so the
        // service wins even single-core; outputs must stay bitwise
        // identical (per-program seeded streams).
        const device::DeviceModel dev = device::toronto();
        const int w = n_qubits;
        const int n_duplicates = n_qubits >= 14 ? 3 : 2;
        const std::uint64_t service_trials = n_qubits >= 14 ? 8192 : 4096;
        core::JigsawOptions no_recomp;
        no_recomp.recompileCpms = false;
        const std::vector<core::JigsawOptions> schemes = {
            no_recomp, core::JigsawOptions{}, core::jigsawMOptions()};
        const auto make_circuit = [w](int c) -> circuit::QuantumCircuit {
            switch (c) {
              case 0:
                return workloads::Ghz(w).circuit();
              case 1:
                return workloads::BernsteinVazirani(w).circuit();
              case 2:
                return workloads::QftAdjoint(w - 2).circuit();
              case 3:
                return workloads::Ghz(w - 1).circuit();
              default:
                return workloads::BernsteinVazirani(w - 1).circuit();
            }
        };
        std::vector<core::ServiceProgram> programs;
        for (int dup = 0; dup < n_duplicates; ++dup) {
            for (int c = 0; c < 5; ++c) {
                for (std::size_t s = 0; s < schemes.size(); ++s) {
                    programs.emplace_back(
                        make_circuit(c), dev, service_trials, schemes[s],
                        1000 + 31ULL * static_cast<std::uint64_t>(dup) +
                            7ULL * static_cast<std::uint64_t>(c) + s);
                }
            }
        }

        compiler::clearTranspileCache();
        auto start = std::chrono::steady_clock::now();
        const std::vector<core::JigsawResult> sequential =
            core::runProgramsSequentially(programs);
        const double naive_ms = msSince(start);

        compiler::clearTranspileCache();
        core::JigsawService service;
        start = std::chrono::steady_clock::now();
        const std::vector<core::JigsawResult> merged =
            service.run(programs);
        const double opt_ms = msSince(start);

        for (std::size_t i = 0; i < programs.size(); ++i) {
            const double drift = totalVariationDistance(
                sequential[i].output, merged[i].output);
            if (drift != 0.0) {
                std::cerr << "ERROR: merged service output diverged "
                             "from sequential runJigsaw on program "
                          << i << " (total variation " << drift
                          << ")\n";
                return 1;
            }
        }
        report.addComparison("service/cross_program_batching", naive_ms,
                             opt_ms);
        std::cerr << "  [perf] service/cross_program_batching: "
                  << naive_ms << " ms -> " << opt_ms << " ms ("
                  << programs.size() << " programs, "
                  << service.stats().crossProgramGroups
                  << " cross-program groups, latency p50 "
                  << service.stats().latencyPercentileMs(0.5)
                  << " ms / p95 "
                  << service.stats().latencyPercentileMs(0.95)
                  << " ms)\n";
    }

    // --- 2e. Service: streaming scheduler (windowed merging) -------
    {
        // The same 45-program duplicated-circuit suite as 2d, but
        // through the submit/poll streaming scheduler: naive is
        // submit-and-run-immediately (MergePolicy::Never, zero merge
        // window — every job an independent session with a private
        // executor, today's path job by job), optimized is windowed
        // merging (MergePolicy::Auto) where compatible jobs collect
        // in merge windows and dispatch as cross-program batches
        // against persistent per-device executors. Both must agree
        // bitwise (each is defined to equal sequential runJigsaw).
        const device::DeviceModel dev = device::toronto();
        const int w = n_qubits;
        const int n_duplicates = n_qubits >= 14 ? 3 : 2;
        const std::uint64_t service_trials = n_qubits >= 14 ? 8192 : 4096;
        core::JigsawOptions no_recomp;
        no_recomp.recompileCpms = false;
        const std::vector<core::JigsawOptions> schemes = {
            no_recomp, core::JigsawOptions{}, core::jigsawMOptions()};
        const auto make_circuit = [w](int c) -> circuit::QuantumCircuit {
            switch (c) {
              case 0:
                return workloads::Ghz(w).circuit();
              case 1:
                return workloads::BernsteinVazirani(w).circuit();
              case 2:
                return workloads::QftAdjoint(w - 2).circuit();
              case 3:
                return workloads::Ghz(w - 1).circuit();
              default:
                return workloads::BernsteinVazirani(w - 1).circuit();
            }
        };
        std::vector<core::ServiceProgram> programs;
        for (int dup = 0; dup < n_duplicates; ++dup) {
            for (int c = 0; c < 5; ++c) {
                for (std::size_t s = 0; s < schemes.size(); ++s) {
                    programs.emplace_back(
                        make_circuit(c), dev, service_trials, schemes[s],
                        1000 + 31ULL * static_cast<std::uint64_t>(dup) +
                            7ULL * static_cast<std::uint64_t>(c) + s);
                }
            }
        }

        const auto streamAll =
            [&programs](const core::StreamOptions &options) {
                core::StreamingScheduler scheduler(options);
                std::vector<core::JobHandle> handles;
                handles.reserve(programs.size());
                for (const core::ServiceProgram &program : programs)
                    handles.push_back(scheduler.submit(program).handle);
                scheduler.drain();
                std::vector<core::JigsawResult> results;
                results.reserve(handles.size());
                for (const core::JobHandle handle : handles)
                    results.push_back(scheduler.wait(handle));
                return std::make_pair(std::move(results),
                                      scheduler.stats());
            };

        core::StreamOptions immediate;
        immediate.mergePolicy = core::MergePolicy::Never;
        immediate.windowMs = 0.0;
        compiler::clearTranspileCache();
        auto start = std::chrono::steady_clock::now();
        const auto [naive_results, naive_stats] = streamAll(immediate);
        const double naive_ms = msSince(start);

        core::StreamOptions windowed;
        windowed.mergePolicy = core::MergePolicy::Auto;
        windowed.windowMs = 10.0;
        compiler::clearTranspileCache();
        start = std::chrono::steady_clock::now();
        const auto [merged_results, merged_stats] = streamAll(windowed);
        const double opt_ms = msSince(start);

        for (std::size_t i = 0; i < programs.size(); ++i) {
            const double drift = totalVariationDistance(
                naive_results[i].output, merged_results[i].output);
            if (drift != 0.0) {
                std::cerr << "ERROR: windowed streaming output "
                             "diverged from immediate dispatch on "
                             "program "
                          << i << " (total variation " << drift
                          << ")\n";
                return 1;
            }
        }
        report.addComparison("service/stream_throughput", naive_ms,
                             opt_ms);
        std::cerr << "  [perf] service/stream_throughput: " << naive_ms
                  << " ms -> " << opt_ms << " ms (" << programs.size()
                  << " programs, " << merged_stats.mergedWindows
                  << " merged windows, "
                  << merged_stats.crossProgramGroups
                  << " cross-program groups, latency p50 "
                  << merged_stats.latencyPercentileMs(0.5)
                  << " ms / p95 "
                  << merged_stats.latencyPercentileMs(0.95) << " ms)\n";

        // Overload summary: the same suite offered at ~2x the
        // windowed path's measured capacity against a small admission
        // bound (see bench_stream_throughput --overload for the gated
        // version). The counters land in BENCH_perf.json as plain
        // timings — no baseline, so overall_speedup is unaffected.
        {
            const double capacity_per_sec =
                1000.0 * static_cast<double>(programs.size()) / opt_ms;
            const double offered_per_sec = 2.0 * capacity_per_sec;
            core::StreamOptions bounded = windowed;
            bounded.maxQueuedJobs = 4;
            // Strict-priority SLO configuration, matching the gated
            // scenario: aging would promote stale Low jobs into the
            // High class under sustained overload.
            bounded.agingMs = 0.0;
            compiler::clearTranspileCache();
            core::StreamingScheduler scheduler(bounded);
            std::size_t low_shed = 0;
            double hint_max = 0.0;
            for (std::size_t i = 0; i < programs.size(); ++i) {
                const auto cls = static_cast<core::Priority>(
                    i % core::kPriorityClasses);
                const core::SubmitResult outcome =
                    scheduler.submit(programs[i], cls);
                if (!outcome.admitted) {
                    if (cls == core::Priority::Low)
                        ++low_shed;
                    hint_max =
                        std::max(hint_max, outcome.tryLaterAfterMs);
                }
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(1.0 /
                                                  offered_per_sec));
            }
            scheduler.drain();
            const core::StreamStats overload_stats = scheduler.stats();
            const double high_p95 = overload_stats.latencyPercentileMs(
                core::Priority::High, 0.95);
            report.addTiming("service/overload_high_p95_ms", high_p95);
            report.addTiming("service/overload_shed_total",
                             static_cast<double>(overload_stats.shed));
            report.addTiming("service/overload_shed_low",
                             static_cast<double>(low_shed));
            report.addTiming("service/overload_retry_hint_max_ms",
                             hint_max);
            std::cerr << "  [perf] service/overload: offered "
                      << offered_per_sec << " programs/s, "
                      << overload_stats.shed << " shed (" << low_shed
                      << " low), High p95 " << high_p95
                      << " ms, max retry hint " << hint_max << " ms\n";
        }
    }

    // --- 2f. Service: parametric iterations (compile-once/re-bind) -
    {
        // Iterative-VQA traffic: one Ising ansatz skeleton, fresh
        // rotation angles each optimizer step. Naive pays the full
        // pipeline per iteration (transpile memo cleared, fresh
        // executor — a serving stack without parametric support);
        // optimized compiles once (compileParametric) and per
        // iteration re-binds angles into the cached routing and
        // re-applies only the diagonal tail on the executor's cached
        // split-prefix state (submitIteration). Outputs must be
        // bitwise identical per binding.
        const int w = std::min(n_qubits - 6, 10);
        const int iterations = n_qubits >= 14 ? 6 : 4;
        // VQA iterations run modest shot budgets (~1k is typical);
        // keeping trials small also keeps the common (uncacheable)
        // sampling+reconstruction cost from flattening the
        // compile-once win.
        const std::uint64_t param_trials = 1024;
        const device::DeviceModel dev = device::toronto();
        const auto ansatz = [w](int iteration) -> QuantumCircuit {
            QuantumCircuit qc(w);
            for (int q = 0; q < w; ++q)
                qc.h(q);
            const auto angle = [iteration](int slot) {
                return 0.1 * static_cast<double>(iteration + 1) +
                       0.03 * static_cast<double>(slot);
            };
            int slot = 0;
            for (int q = 0; q + 1 < w; ++q)
                qc.rzz(angle(slot++), q, q + 1);
            for (int q = 0; q < w; ++q)
                qc.rz(angle(slot++), q);
            qc.measureAll();
            return qc;
        };

        std::vector<Pmf> naive_outputs;
        auto start = std::chrono::steady_clock::now();
        for (int it = 0; it < iterations; ++it) {
            compiler::clearTranspileCache();
            sim::NoisySimulator executor(dev, {.seed = 1234});
            naive_outputs.push_back(core::runJigsaw(ansatz(it), dev,
                                                    executor,
                                                    param_trials)
                                        .output);
        }
        const double naive_ms = msSince(start);

        compiler::clearTranspileCache();
        core::ServiceOptions param_options;
        param_options.stream.windowMs = 0.0; // latency path: no wait
        core::JigsawService service(param_options);
        start = std::chrono::steady_clock::now();
        const core::ParametricHandle handle = service.compileParametric(
            core::ServiceProgram(ansatz(0), dev, param_trials));
        const double compile_once_ms = msSince(start);
        // Iteration-phase counters and clock: the one-time compile is
        // reported separately below — the comparison is per-iteration
        // serving latency, the cost a VQA client pays every step.
        const std::uint64_t iter_hits0 = compiler::transpileCacheHits();
        const std::uint64_t iter_misses0 =
            compiler::transpileCacheMisses();
        start = std::chrono::steady_clock::now();
        std::vector<Pmf> warm_outputs;
        for (int it = 0; it < iterations; ++it) {
            const core::SubmitResult submitted =
                service.submitIteration(handle, [&] {
                    std::vector<double> angles;
                    for (int slot = 0; slot < 2 * w - 1; ++slot) {
                        angles.push_back(
                            0.1 * static_cast<double>(it + 1) +
                            0.03 * static_cast<double>(slot));
                    }
                    return angles;
                }());
            if (!submitted.admitted) {
                std::cerr << "ERROR: parametric iteration " << it
                          << " was shed\n";
                return 1;
            }
            warm_outputs.push_back(service.wait(submitted.handle).output);
        }
        const double opt_ms = msSince(start);

        for (int it = 0; it < iterations; ++it) {
            const double drift = totalVariationDistance(
                naive_outputs[static_cast<std::size_t>(it)],
                warm_outputs[static_cast<std::size_t>(it)]);
            if (drift != 0.0) {
                std::cerr << "ERROR: parametric iteration " << it
                          << " diverged from its cold-compile run "
                             "(total variation "
                          << drift << ")\n";
                return 1;
            }
        }
        const std::uint64_t iter_hits =
            compiler::transpileCacheHits() - iter_hits0;
        const std::uint64_t iter_misses =
            compiler::transpileCacheMisses() - iter_misses0;
        if (iter_misses != 0) {
            std::cerr << "ERROR: expected zero transpiles after "
                         "compileParametric, got "
                      << iter_misses << "\n";
            return 1;
        }
        const core::StreamStats param_stats = service.streamStats();
        const double transpile_hit_pct =
            iter_hits + iter_misses > 0
                ? 100.0 * static_cast<double>(iter_hits) /
                      static_cast<double>(iter_hits + iter_misses)
                : 0.0;
        const double prefix_hit_pct =
            param_stats.prefixStateHits + param_stats.prefixStateMisses >
                    0
                ? 100.0 *
                      static_cast<double>(param_stats.prefixStateHits) /
                      static_cast<double>(param_stats.prefixStateHits +
                                          param_stats.prefixStateMisses)
                : 0.0;
        report.addComparison("service/parametric_iterations", naive_ms,
                             opt_ms);
        report.addTiming("service/parametric_compile_once_ms",
                         compile_once_ms);
        report.addTiming("service/parametric_transpile_hit_pct",
                         transpile_hit_pct);
        report.addTiming("service/parametric_prefix_hit_pct",
                         prefix_hit_pct);
        std::cerr << "  [perf] service/parametric_iterations: "
                  << naive_ms << " ms -> " << opt_ms << " ms ("
                  << iterations << " iterations, " << w
                  << " qubits, compile-once " << compile_once_ms
                  << " ms, transpile hit rate "
                  << transpile_hit_pct << "%, "
                  << param_stats.transpileRebinds
                  << " rebinds, split-prefix hit rate "
                  << prefix_hit_pct << "%)\n";
    }

    // --- 3. Bayesian reconstruction -------------------------------
    {
        const std::size_t support =
            std::min<std::size_t>(1ULL << n_qubits, 1ULL << 16);
        const Pmf global = syntheticGlobal(n_qubits, support, rng);
        const std::vector<core::Marginal> marginals =
            syntheticMarginals(n_qubits, {2, 3, 4, 5}, rng);
        core::ReconstructionOptions options;
        options.maxRounds = 4;
        options.tolerance = 0.0; // fixed rounds: time the same work

        auto start = std::chrono::steady_clock::now();
        const Pmf naive_out =
            core::referenceMultiLayerReconstruct(global, marginals,
                                                 options);
        const double naive_ms = msSince(start);

        start = std::chrono::steady_clock::now();
        const Pmf fast_out =
            core::multiLayerReconstruct(global, marginals, options);
        const double opt_ms = msSince(start);

        const double drift = totalVariationDistance(naive_out, fast_out);
        if (drift > 1e-10) {
            std::cerr << "ERROR: indexed reconstruction diverged from "
                         "reference (total variation "
                      << drift << ")\n";
            return 1;
        }
        report.addComparison("reconstruction/multilayer", naive_ms,
                             opt_ms);
        std::cerr << "  [perf] reconstruction/multilayer: " << naive_ms
                  << " ms -> " << opt_ms << " ms\n";
    }

    // --- 3b. Reconstruction: >1M-outcome sharded rounds ------------
    {
        // The large-support regime the sharded path exists for, with
        // the round loops pinned to the scalar kernel table vs the
        // active one (ReconstructionOptions::kernels): identical shard
        // boundaries and reduction order, so the delta is the SIMD
        // reconstruction kernels alone. Fixed rounds (tolerance 0) so
        // both paths do the same work.
        const int gq = n_qubits >= 16 ? 21 : 15;
        const std::size_t support =
            n_qubits >= 16 ? (1ULL << 20) : (1ULL << 14);
        const Pmf global = syntheticGlobal(gq, support, rng);
        std::vector<core::Marginal> marginals;
        for (int q0 = 0; q0 + 6 <= gq; q0 += 3) {
            core::Subset s;
            for (int q = q0; q < q0 + 6; ++q)
                s.push_back(q);
            Pmf local(6);
            for (BasisState v = 0; v < (1ULL << 6); ++v)
                local.set(v, rng.uniform(0.05, 1.0));
            local.normalize();
            marginals.push_back({local, s});
        }
        core::ReconstructionOptions options;
        options.maxRounds = 6;
        options.tolerance = 0.0;
        options.shardMode = core::ShardMode::Always;

        options.kernels = &simd::scalarKernels();
        auto start = std::chrono::steady_clock::now();
        const Pmf scalar_out =
            core::bayesianReconstruct(global, marginals, options);
        const double naive_ms = msSince(start);

        options.kernels = &simd::activeKernels();
        start = std::chrono::steady_clock::now();
        const Pmf simd_out =
            core::bayesianReconstruct(global, marginals, options);
        const double opt_ms = msSince(start);

        const double drift =
            totalVariationDistance(scalar_out, simd_out);
        if (drift > 1e-9) {
            std::cerr << "ERROR: SIMD reconstruction kernels diverged "
                         "from scalar (total variation "
                      << drift << ")\n";
            return 1;
        }
        report.addComparison("reconstruction/large_support", naive_ms,
                             opt_ms);
        std::cerr << "  [perf] reconstruction/large_support: "
                  << naive_ms << " ms -> " << opt_ms << " ms ("
                  << global.support() << " outcomes, "
                  << marginals.size() << " marginals, "
                  << simd::activeKernels().name << " table)\n";
    }

    // Kernel-backend dispatch totals of the whole bench run: plain
    // counters (no baseline), so overall_speedup is unaffected; the
    // CI gate prints them so a silent fall-off the wide paths shows.
    // Read through the shared ProcessCounters snapshot — the same
    // source the suite timings export and the Prometheus exposition
    // report from.
    for (const obs::ProcessCounters::Entry &entry :
         obs::ProcessCounters::snapshot().simdEntries()) {
        report.addTiming(entry.name, static_cast<double>(entry.value));
    }

    if (!report.write(out_path)) {
        std::cerr << "ERROR: cannot write " << out_path << "\n";
        return 1;
    }
    std::cout << report.toJson();
    std::cerr << "  [perf] overall speedup: " << report.overallSpeedup()
              << "x -> " << out_path << "\n";
    if (report.overallSpeedup() < min_speedup) {
        std::cerr << "ERROR: overall speedup "
                  << report.overallSpeedup() << "x is below the "
                  << min_speedup << "x acceptance gate\n";
        return 1;
    }
    return 0;
}
