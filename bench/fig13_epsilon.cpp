/**
 * @file
 * Figure 13: number of unique global-PMF outcomes and epsilon
 * (outcomes / trials) as the trial count grows, on the IBMQ-Paris
 * model.
 *
 * Paper reference: epsilon << 1 and decreasing in T -- the observed
 * support grows sublinearly, which is what bounds JigSaw's
 * reconstruction cost (Section 7.1).
 */
#include <cstdint>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "compiler/transpiler.h"
#include "device/library.h"
#include "sim/simulators.h"
#include "workloads/registry.h"

int
main()
{
    using namespace jigsaw;

    const device::DeviceModel dev = device::paris();
    const std::vector<std::uint64_t> trial_counts{8192, 1048576, 2097152,
                                                  4194304};
    const std::vector<const char *> names{"GHZ-14", "GHZ-16",
                                          "QAOA-10 p1", "QAOA-10 p2"};

    std::cout << "=== Figure 13: global-PMF support and epsilon vs "
                 "trials ("
              << dev.name() << ") ===\n\n";

    std::vector<std::string> header{"benchmark", "metric"};
    for (std::uint64_t t : trial_counts)
        header.push_back(t >= 1048576
                             ? std::to_string(t / 1048576) + "M"
                             : std::to_string(t / 1024) + "K");
    ConsoleTable table(header);

    for (const char *name : names) {
        const auto workload = workloads::makeWorkload(name);
        const compiler::CompiledCircuit compiled =
            compiler::transpile(workload->circuit(), dev);

        std::vector<std::string> outcomes_row{workload->name(),
                                              "outcomes"};
        std::vector<std::string> epsilon_row{"", "epsilon"};
        for (std::uint64_t t : trial_counts) {
            sim::NoisySimulator executor(dev, {.seed = 1313});
            const Histogram hist = executor.run(compiled.physical, t);
            const double unique =
                static_cast<double>(hist.uniqueOutcomes());
            outcomes_row.push_back(ConsoleTable::num(unique / 1000.0, 1)
                                   + "K");
            epsilon_row.push_back(ConsoleTable::num(
                unique / static_cast<double>(t), 4));
        }
        table.addRow(outcomes_row);
        table.addRow(epsilon_row);
    }
    table.print(std::cout);

    std::cout << "\nexpected shape (paper Fig 13): outcome counts grow "
                 "sublinearly and epsilon stays well below ~0.2 and "
                 "falls with T.\n";
    return 0;
}
