/**
 * @file
 * Table 5: Approximation Ratio Gap (ARG, %) for the QAOA benchmarks
 * under Baseline / EDM / JigSaw / JigSaw-M on each device. Lower is
 * better.
 *
 * Paper reference (Toronto rows, %):
 *   QAOA-8 p1  : 19.6 / 19.4 / 2.83 / 1.59
 *   QAOA-10 p2 : 24.5 / 24.0 / 12.3 / 10.6
 *   QAOA-10 p4 : 23.4 / 24.3 / 10.5 / 8.50
 *   QAOA-12 p4 : 12.3 / 13.8 / 4.82 / 3.11
 *   QAOA-14 p2 : 9.86 / 9.74 / 4.06 / 2.48
 */
#include <cstdint>
#include <iostream>

#include "common/table.h"
#include "metrics/metrics.h"
#include "suite_runner.h"

int
main()
{
    using namespace jigsaw;
    constexpr std::uint64_t trials = 32768;

    std::cout << "=== Table 5: Approximation Ratio Gap (%) for QAOA "
                 "(lower is better) ===\n"
              << "trials per scheme: " << trials << "\n\n";

    const bench::SuiteRun run =
        bench::runEvaluationSuite(trials, 505, /*qaoa_only=*/true);

    ConsoleTable table({"device", "workload", "Baseline", "EDM",
                        "JigSaw", "JigSaw-M"});
    for (int d = 0; d < static_cast<int>(run.devices.size()); ++d) {
        for (int w = 0; w < static_cast<int>(run.workloads.size());
             ++w) {
            const workloads::Workload &workload =
                *run.workloads[static_cast<std::size_t>(w)];
            const bench::SuiteCell &cell = run.cell(d, w);
            table.addRow(
                {run.devices[static_cast<std::size_t>(d)].name(),
                 workload.name(),
                 ConsoleTable::num(metrics::approximationRatioGap(
                                       cell.baseline, workload), 2),
                 ConsoleTable::num(metrics::approximationRatioGap(
                                       cell.edm, workload), 2),
                 ConsoleTable::num(metrics::approximationRatioGap(
                                       cell.jigsaw, workload), 2),
                 ConsoleTable::num(metrics::approximationRatioGap(
                                       cell.jigsawM, workload), 2)});
        }
    }
    table.print(std::cout);

    std::cout << "\npaper (Toronto): Baseline 9.9-24.5, EDM similar, "
                 "JigSaw 2.8-19.0, JigSaw-M 1.6-16.3.\n"
              << "expected shape: JigSaw-M < JigSaw << EDM ~ Baseline "
                 "on every row.\n"
              << "note: a slightly negative gap means the Bayesian "
                 "reconstruction sharpened the distribution toward "
                 "high-cut outcomes beyond the noiseless shallow-p "
                 "ansatz itself.\n";
    return 0;
}
