/**
 * @file
 * Service-mode throughput: the evaluation sweep's JigSaw runs (three
 * schemes per device x workload cell) pushed through the concurrent
 * JigsawService — cross-program batching merges the schemes sharing a
 * (circuit, device) pair — against the same programs run
 * sequentially. Verifies the outputs match bitwise and reports the
 * service speedup, programs/second, and per-program latency
 * percentiles (see docs/performance.md).
 *
 * Usage: bench_service_throughput [--trials N] [--seed S] [--qaoa]
 *                                 [--no-compare] [--quick]
 */
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "suite_runner.h"

int
main(int argc, char **argv)
{
    std::uint64_t trials = 16384;
    std::uint64_t seed = 7;
    bool qaoa_only = false;
    bool compare = true;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--trials") && i + 1 < argc) {
            trials = std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strcmp(argv[i], "--qaoa")) {
            qaoa_only = true;
        } else if (!std::strcmp(argv[i], "--no-compare")) {
            compare = false;
        } else if (!std::strcmp(argv[i], "--quick")) {
            trials = 4096;
            qaoa_only = true;
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--trials N] [--seed S] [--qaoa]"
                         " [--no-compare] [--quick]\n";
            return 2;
        }
    }

    const jigsaw::bench::ServiceSuiteRun run =
        jigsaw::bench::runEvaluationSuiteService(trials, seed, qaoa_only,
                                                 false, compare);

    std::cout << "programs:            " << run.programs << "\n";
    if (compare) {
        std::cout << "sequential wall ms:  " << run.sequentialMs << "\n";
    }
    std::cout << "service wall ms:     " << run.serviceMs << "\n";
    if (compare) {
        std::cout << "service speedup:     " << run.speedup() << "x\n";
    }
    std::cout << "throughput:          " << run.programsPerSecond()
              << " programs/s\n";
    std::cout << "latency p50:         " << run.latencyP50Ms << " ms\n";
    std::cout << "latency p95:         " << run.latencyP95Ms << " ms\n";
    std::cout << "merged programs:     " << run.mergedPrograms << "\n";
    std::cout << "cross-program groups: " << run.crossProgramGroups
              << "\n";
    if (compare) {
        std::cout << "outputs match:       "
                  << (run.outputsMatch ? "yes (bitwise)" : "NO") << "\n";
        if (!run.outputsMatch) {
            std::cerr << "ERROR: service outputs diverged from "
                         "sequential runJigsaw\n";
            return 1;
        }
    }
    return 0;
}
