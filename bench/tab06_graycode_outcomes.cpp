/**
 * @file
 * Table 6: number of unique outcomes in the global PMF of a
 * Graycode-18 run (512K trials) against the 2^18 = 256K possible
 * outcomes, per device.
 *
 * Paper reference: 17.0K / 17.3K / 18.5K observed outcomes on
 * Toronto / Paris / Manhattan — 6.6-7.2% of the possible space.
 */
#include <cstdint>
#include <iostream>

#include "common/table.h"
#include "compiler/transpiler.h"
#include "device/library.h"
#include "sim/simulators.h"
#include "workloads/graycode.h"

int
main()
{
    using namespace jigsaw;

    constexpr std::uint64_t trials = 524288; // 512K
    const workloads::Graycode graycode(18);
    constexpr double max_outcomes = 262144.0; // 2^18 = 256K

    std::cout << "=== Table 6: Graycode-18 global-PMF outcomes at 512K "
                 "trials ===\n\n";

    ConsoleTable table({"device", "observed", "maximum", "ratio (%)",
                        "paper observed"});
    const char *paper[] = {"17.0K (6.6%)", "17.3K (6.8%)",
                           "18.5K (7.2%)"};
    int index = 0;
    for (const device::DeviceModel &dev : device::evaluationDevices()) {
        const compiler::CompiledCircuit compiled =
            compiler::transpile(graycode.circuit(), dev);
        sim::NoisySimulator executor(dev, {.seed = 606});
        const Histogram hist = executor.run(compiled.physical, trials);
        const double observed =
            static_cast<double>(hist.uniqueOutcomes());
        table.addRow({dev.name(),
                      ConsoleTable::num(observed / 1000.0, 1) + "K",
                      "256K",
                      ConsoleTable::num(100.0 * observed / max_outcomes,
                                        1),
                      paper[index++]});
    }
    table.print(std::cout);

    std::cout << "\nexpected shape: the observed support is a few "
                 "percent of the possible outcome space, bounding the "
                 "reconstruction work.\n";
    return 0;
}
