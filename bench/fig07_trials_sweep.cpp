/**
 * @file
 * Figure 7: impact of the number of trials on application PST
 * (baseline execution on the IBMQ-Paris model).
 *
 * Paper reference: PST saturates well before 4M trials — adding
 * trials cannot beat correlated errors, which is why the evaluation's
 * 32K-256K-trial baseline is already as strong as baselines get.
 */
#include <cstdint>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/jigsaw.h"
#include "device/library.h"
#include "metrics/metrics.h"
#include "sim/simulators.h"
#include "workloads/registry.h"

int
main()
{
    using namespace jigsaw;

    const device::DeviceModel dev = device::paris();
    const std::vector<std::uint64_t> trial_counts{
        8192, 32768, 131072, 524288, 1048576, 4194304};
    const std::vector<const char *> names{"GHZ-12",     "GHZ-14",
                                          "GHZ-16",     "QAOA-10 p1",
                                          "QAOA-10 p2", "QAOA-10 p4"};

    std::cout << "=== Figure 7: application PST vs number of trials "
                 "(baseline, "
              << dev.name() << ") ===\n\n";

    std::vector<std::string> header{"benchmark"};
    for (std::uint64_t t : trial_counts)
        header.push_back(t >= 1048576
                             ? std::to_string(t / 1048576) + "M"
                             : std::to_string(t / 1024) + "K");
    ConsoleTable table(header);

    for (const char *name : names) {
        const auto workload = workloads::makeWorkload(name);
        // Compile once; sample the compiled program at each budget.
        const compiler::CompiledCircuit compiled =
            compiler::transpile(workload->circuit(), dev);
        std::vector<std::string> row{workload->name()};
        for (std::uint64_t t : trial_counts) {
            sim::NoisySimulator executor(dev, {.seed = 707});
            const Pmf pmf = executor.run(compiled.physical, t).toPmf();
            row.push_back(ConsoleTable::num(
                metrics::pst(pmf, *workload), 3));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nexpected shape (paper Fig 7): PST is flat in the "
                 "trial count -- sampling noise vanishes early and "
                 "correlated errors dominate, so more trials do not "
                 "help.\n";
    return 0;
}
