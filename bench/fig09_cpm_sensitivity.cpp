/**
 * @file
 * Figure 9: sensitivity of JigSaw to (a) the number of CPMs and
 * (b) the CPM selection method, on a 12-qubit QAOA program
 * (IBMQ-Paris model).
 *
 * Methodology (paper Section 6.5): all 66 = C(12,2) size-2 CPMs are
 * executed once with the default per-CPM trial budget; then
 * (a) for each N, random N-subsets of the 66 local PMFs update the
 *     global PMF, averaged over repetitions;
 * (b) random covering selections of 12 CPMs are drawn many times and
 *     the distribution of the PST gain is reported.
 *
 * Paper reference: gains rise with N and saturate after a handful of
 * CPMs; the selection method barely matters.
 */
#include <cstdint>
#include <iostream>
#include <map>
#include <vector>

#include "common/statistics.h"
#include "common/table.h"
#include "core/jigsaw.h"
#include "device/library.h"
#include "metrics/metrics.h"
#include "sim/simulators.h"
#include "workloads/qaoa.h"

int
main()
{
    using namespace jigsaw;

    const device::DeviceModel dev = device::paris();
    const workloads::QaoaMaxCut qaoa(12, 2);
    constexpr std::uint64_t trials = 32768;
    constexpr int n_qubits = 12;

    std::cout << "=== Figure 9: CPM count and selection-method "
                 "sensitivity (QAOA-12, "
              << dev.name() << ") ===\n\n";

    sim::NoisySimulator executor(dev, {.seed = 909});

    // Baseline and global mode.
    const Pmf baseline =
        core::runBaseline(qaoa.circuit(), dev, executor, trials);
    const double base_pst = metrics::pst(baseline, qaoa);

    // Execute every possible size-2 CPM once via a single JigSaw run
    // with custom subsets = all 66 pairs.
    std::vector<core::Subset> all_pairs;
    for (int a = 0; a < n_qubits; ++a) {
        for (int b = a + 1; b < n_qubits; ++b)
            all_pairs.push_back({a, b});
    }
    core::JigsawOptions options;
    options.customSubsets = all_pairs;
    const core::JigsawResult bank =
        core::runJigsaw(qaoa.circuit(), dev, executor, trials, options);
    const std::vector<core::Marginal> marginals = bank.marginals();

    // ---- (a) PST gain vs number of CPMs --------------------------
    std::cout << "(a) mean relative PST vs number of CPMs (25 random "
                 "draws per N)\n";
    ConsoleTable count_table({"num CPMs", "mean rel PST", "min", "max"});
    Rng rng(99);
    for (int n_cpm : {1, 2, 4, 8, 12, 16, 24, 33, 44, 55, 66}) {
        std::vector<double> gains;
        for (int rep = 0; rep < 25; ++rep) {
            const std::vector<int> chosen = rng.sampleWithoutReplacement(
                static_cast<int>(marginals.size()), n_cpm);
            std::vector<core::Marginal> selected;
            for (int idx : chosen)
                selected.push_back(
                    marginals[static_cast<std::size_t>(idx)]);
            const Pmf out = core::bayesianReconstruct(bank.globalPmf,
                                                      selected);
            gains.push_back(metrics::pst(out, qaoa) / base_pst);
        }
        count_table.addRow({std::to_string(n_cpm),
                            ConsoleTable::num(stats::mean(gains), 3),
                            ConsoleTable::num(stats::min(gains), 3),
                            ConsoleTable::num(stats::max(gains), 3)});
    }
    count_table.print(std::cout);
    std::cout << "expected shape (paper Fig 9a): the mean gain rises "
                 "then saturates -- extra CPMs stop adding unique "
                 "information.\n\n";

    // ---- (b) selection-method distribution -----------------------
    std::cout << "(b) PST gain over 1000 random covering selections of "
              << n_qubits << " CPMs\n";
    std::vector<double> gains;
    for (int rep = 0; rep < 1000; ++rep) {
        const std::vector<core::Subset> subsets =
            core::coveringRandomSubsets(n_qubits, 2, rng);
        std::vector<core::Marginal> selected;
        for (const core::Subset &s : subsets) {
            for (std::size_t i = 0; i < all_pairs.size(); ++i) {
                if (all_pairs[i] == s) {
                    selected.push_back(marginals[i]);
                    break;
                }
            }
        }
        const Pmf out =
            core::bayesianReconstruct(bank.globalPmf, selected);
        gains.push_back(metrics::pst(out, qaoa) / base_pst);
    }

    // Sliding-window reference (the default method).
    std::vector<core::Marginal> sliding;
    for (const core::Subset &s :
         core::slidingWindowSubsets(n_qubits, 2)) {
        for (std::size_t i = 0; i < all_pairs.size(); ++i) {
            if (all_pairs[i] == s) {
                sliding.push_back(marginals[i]);
                break;
            }
        }
    }
    const double sliding_gain =
        metrics::pst(core::bayesianReconstruct(bank.globalPmf, sliding),
                     qaoa) /
        base_pst;

    ConsoleTable dist_table({"statistic", "rel PST"});
    dist_table.addRow({"mean",
                       ConsoleTable::num(stats::mean(gains), 3)});
    dist_table.addRow({"stddev",
                       ConsoleTable::num(stats::stddev(gains), 3)});
    dist_table.addRow({"p10",
                       ConsoleTable::num(stats::percentile(gains, 10),
                                         3)});
    dist_table.addRow({"p90",
                       ConsoleTable::num(stats::percentile(gains, 90),
                                         3)});
    dist_table.addRow({"sliding-window (default)",
                       ConsoleTable::num(sliding_gain, 3)});
    dist_table.print(std::cout);
    std::cout << "expected shape (paper Fig 9b): the distribution is "
                 "tight and the default sliding-window method sits "
                 "inside it -- selection method barely matters.\n";
    return 0;
}
