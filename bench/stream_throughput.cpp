/**
 * @file
 * Streaming-scheduler load generator: the 45-program duplicated-
 * circuit workload (5 circuits x 3 JigSaw schemes x 3 seeds) pushed
 * through the submit/poll scheduler twice — submit-and-run-
 * immediately (MergePolicy::Never, zero window: today's path, job by
 * job) vs windowed merging (MergePolicy::Auto, a small merge window)
 * — under an open-loop burst or a closed-loop pool of submitter
 * threads. Reports wall time, throughput, merge counters, and the
 * per-priority-class latency split (queue-wait vs execute, p50/p95),
 * and verifies the two runs' outputs match bitwise (both are defined
 * to equal sequential runJigsaw).
 *
 * Usage: bench_stream_throughput [--qubits N] [--dups N] [--trials N]
 *            [--window MS] [--submitters K] [--rate JOBS_PER_SEC]
 *            [--workers W] [--overload] [--quick] [--trace FILE]
 *            [--metrics-port P] [--serve-scrapes K]
 *
 *   --submitters 0 (default) is an open-loop burst: every job is
 *     submitted up front, then the scheduler drains. K >= 1 runs K
 *     closed-loop submitter threads, each submitting its next job
 *     only after its previous one completed.
 *   --rate R paces the open-loop burst at R jobs/second (0 = as fast
 *     as possible).
 *   --workers W adds a third run: the windowed configuration with
 *     windows dispatched to a W-worker execution tier over the
 *     in-process transport (core/worker.h). Reports the lease
 *     counters and the per-worker completion split, and holds the
 *     worker-tier outputs to the same bitwise gate as the local runs.
 *   --overload replaces the immediate-vs-windowed comparison with an
 *     overload scenario: probe capacity, then offer ~2x that against
 *     a small admission bound and gate on High-class p95 staying
 *     within 1.5x its unloaded value while Low sheds with finite
 *     retry hints.
 *   --trace FILE attaches a TraceRecorder (obs/trace.h) to every
 *     comparison run and appends each run's per-job pipeline spans to
 *     FILE as JSON-lines (one object per span).
 *   --metrics-port P serves the process-wide Prometheus exposition on
 *     127.0.0.1:P for the lifetime of the bench (0 picks an ephemeral
 *     port; the bound port is printed). --serve-scrapes K keeps the
 *     process alive after the runs until K scrapes were answered (or
 *     a 60 s timeout) — the hook CI's live-scrape check uses.
 */
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/parallel.h"
#include "compiler/transpiler.h"
#include "core/scheduler.h"
#include "core/service.h"
#include "device/library.h"
#include "obs/exposition.h"
#include "obs/http.h"
#include "obs/trace.h"
#include "workloads/bv.h"
#include "workloads/ghz.h"
#include "workloads/qft.h"

namespace {

using namespace jigsaw;
using core::JigsawResult;
using core::JobHandle;
using core::Priority;
using core::ServiceProgram;
using core::StreamingScheduler;
using core::StreamOptions;

double
msSince(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** The perf suite's duplicated-circuit workload (see
 *  bench_perf_reconstruction's service/cross_program_batching). */
std::vector<ServiceProgram>
duplicatedSuite(int n_qubits, int n_duplicates, std::uint64_t trials)
{
    const device::DeviceModel dev = device::toronto();
    const int w = n_qubits;
    core::JigsawOptions no_recomp;
    no_recomp.recompileCpms = false;
    const std::vector<core::JigsawOptions> schemes = {
        no_recomp, core::JigsawOptions{}, core::jigsawMOptions()};
    const auto make_circuit = [w](int c) -> circuit::QuantumCircuit {
        switch (c) {
          case 0:
            return workloads::Ghz(w).circuit();
          case 1:
            return workloads::BernsteinVazirani(w).circuit();
          case 2:
            return workloads::QftAdjoint(w - 2).circuit();
          case 3:
            return workloads::Ghz(w - 1).circuit();
          default:
            return workloads::BernsteinVazirani(w - 1).circuit();
        }
    };
    std::vector<ServiceProgram> programs;
    for (int dup = 0; dup < n_duplicates; ++dup) {
        for (int c = 0; c < 5; ++c) {
            for (std::size_t s = 0; s < schemes.size(); ++s) {
                programs.emplace_back(
                    make_circuit(c), dev, trials, schemes[s],
                    1000 + 31ULL * static_cast<std::uint64_t>(dup) +
                        7ULL * static_cast<std::uint64_t>(c) + s);
            }
        }
    }
    return programs;
}

struct LoadRun
{
    double wallMs = 0.0;
    std::vector<JigsawResult> results;
    core::StreamStats stats;
};

/** --trace plumbing: one fresh recorder per comparison run (job ids
 *  restart per scheduler, so sharing a recorder would interleave
 *  unrelated jobs under one id), all appended to one JSON-lines
 *  file. */
struct TraceFile
{
    std::ofstream out;
    std::size_t spans = 0;
    std::size_t jobs = 0;

    std::shared_ptr<obs::TraceRecorder>
    attach(StreamOptions &options)
    {
        if (!out.is_open())
            return nullptr;
        auto recorder = std::make_shared<obs::TraceRecorder>();
        options.trace = recorder;
        return recorder;
    }

    void
    flush(const std::shared_ptr<obs::TraceRecorder> &recorder)
    {
        if (!recorder)
            return;
        out << recorder->toJsonLines();
        spans += recorder->totalSpans();
        jobs += recorder->jobIds().size();
    }
};

/** Push @p programs through one scheduler configuration. */
LoadRun
runLoad(const StreamOptions &options,
        const std::vector<ServiceProgram> &programs,
        std::size_t submitters, double rate_per_sec)
{
    StreamingScheduler scheduler(options);
    std::vector<JobHandle> handles(programs.size());
    const auto priorityOf = [](std::size_t i) {
        return static_cast<Priority>(i % core::kPriorityClasses);
    };
    const auto start = std::chrono::steady_clock::now();
    if (submitters == 0) {
        // Open loop: burst (or paced) submission from one thread.
        for (std::size_t i = 0; i < programs.size(); ++i) {
            handles[i] =
                scheduler.submit(programs[i], priorityOf(i)).handle;
            if (rate_per_sec > 0.0) {
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(1.0 / rate_per_sec));
            }
        }
        scheduler.drain();
    } else {
        // Closed loop: each submitter keeps one job in flight.
        std::vector<std::thread> threads;
        for (std::size_t t = 0; t < submitters; ++t) {
            threads.emplace_back([&, t] {
                for (std::size_t i = t; i < programs.size();
                     i += submitters) {
                    handles[i] =
                        scheduler.submit(programs[i], priorityOf(i))
                            .handle;
                    scheduler.wait(handles[i]);
                }
            });
        }
        for (std::thread &thread : threads)
            thread.join();
        scheduler.drain();
    }
    LoadRun run;
    run.wallMs = msSince(start);
    run.results.reserve(programs.size());
    for (const JobHandle handle : handles)
        run.results.push_back(scheduler.wait(handle));
    run.stats = scheduler.stats();
    return run;
}

void
printWorkerCounters(const core::StreamStats &stats)
{
    std::cout << "    leases: " << stats.leasesGranted << " granted, "
              << stats.leasesExpired << " expired, "
              << stats.leasesRevoked << " revoked ("
              << stats.redispatches << " re-dispatches, "
              << stats.localFallbacks << " local fallbacks, "
              << stats.staleResponses << " stale responses)\n";
    std::cout << "    completed by worker:";
    for (std::size_t w = 0; w < stats.workerCompleted.size(); ++w)
        std::cout << (w == 0 ? " " : " / ") << stats.workerCompleted[w];
    if (stats.workerCompleted.empty())
        std::cout << " (none)";
    std::cout << "\n";
}

void
printClassTable(const core::StreamStats &stats)
{
    const char *names[core::kPriorityClasses] = {"high", "normal",
                                                 "low"};
    for (std::size_t c = 0; c < core::kPriorityClasses; ++c) {
        const Priority cls = static_cast<Priority>(c);
        std::cout << "    " << names[c] << ": latency p50 "
                  << stats.latencyPercentileMs(cls, 0.5) << " ms / p95 "
                  << stats.latencyPercentileMs(cls, 0.95)
                  << " ms (queue-wait p50 "
                  << stats.queueWaitPercentileMs(cls, 0.5)
                  << " ms, execute p50 "
                  << stats.executePercentileMs(cls, 0.5) << " ms)\n";
    }
}

/** Overload scenario: probe the windowed scheduler's capacity, take
 *  an unloaded High-class latency reference, then offer ~2x capacity
 *  against a small admission bound. The gate proves shed-vs-queue:
 *  High-class p95 must stay within 1.5x its unloaded value (plus one
 *  head-of-line worst-case service time when the machine has a single
 *  execution slot — non-preemptive execution makes that residual
 *  irreducible there) while the Low class sheds with finite, positive
 *  retry hints. */
int
runOverloadScenario(const std::vector<ServiceProgram> &programs,
                    double window_ms)
{
    // Phase A: capacity probe — an open-loop burst with no admission
    // bound. Its results double as the bitwise reference below.
    StreamOptions windowed;
    windowed.mergePolicy = core::MergePolicy::Auto;
    windowed.windowMs = window_ms;
    compiler::clearTranspileCache();
    const LoadRun probe = runLoad(windowed, programs, 0, 0.0);
    const double capacity_per_sec =
        1000.0 * static_cast<double>(programs.size()) / probe.wallMs;
    std::cout << "capacity:     " << capacity_per_sec
              << " programs/s (burst probe, " << probe.wallMs
              << " ms)\n";

    // Phase B: unloaded reference — one High job in flight at a time
    // through the same windowed configuration. The p100 doubles as
    // the worst-case service time for the single-slot budget below.
    double high_unloaded_p95 = 0.0;
    double high_unloaded_p100 = 0.0;
    {
        compiler::clearTranspileCache();
        StreamingScheduler scheduler(windowed);
        for (const ServiceProgram &program : programs) {
            scheduler.wait(
                scheduler.submit(program, Priority::High).handle);
        }
        high_unloaded_p95 =
            scheduler.stats().latencyPercentileMs(Priority::High, 0.95);
        high_unloaded_p100 =
            scheduler.stats().latencyPercentileMs(Priority::High, 1.0);
    }
    std::cout << "unloaded:     High p95 " << high_unloaded_p95
              << " ms, p100 " << high_unloaded_p100
              << " ms (closed loop x1)\n";

    // Phase C: several passes over the suite paced at ~2x capacity,
    // mixed priorities, against a bound small enough that the backlog
    // pins at the shed thresholds (Low first, High last — the default
    // shedFractions ladder). Multiple passes give the High class
    // enough latency samples that its p95 is not a single worst
    // arrival.
    StreamOptions bounded = windowed;
    bounded.maxQueuedJobs = 4;
    // Strict-priority SLO configuration: aging would promote stale
    // Low jobs into the High class under sustained overload, putting
    // them ahead of fresh High submissions — exactly the latency
    // coupling this scenario must show the scheduler avoiding. The
    // Low class's recourse under overload is the shed/retry hint, not
    // aging.
    bounded.agingMs = 0.0;
    const double offered_per_sec = 2.0 * capacity_per_sec;
    const std::size_t passes = 4;
    compiler::clearTranspileCache();
    StreamingScheduler scheduler(bounded);
    std::vector<std::pair<std::size_t, JobHandle>> admitted;
    std::array<std::size_t, core::kPriorityClasses> shed{};
    double hint_min = std::numeric_limits<double>::infinity();
    double hint_max = 0.0;
    bool hints_ok = true;
    for (std::size_t j = 0; j < passes * programs.size(); ++j) {
        const std::size_t i = j % programs.size();
        const Priority cls =
            static_cast<Priority>(j % core::kPriorityClasses);
        const core::SubmitResult outcome =
            scheduler.submit(programs[i], cls);
        if (outcome.admitted) {
            admitted.emplace_back(i, outcome.handle);
        } else {
            ++shed[j % core::kPriorityClasses];
            hints_ok = hints_ok &&
                       std::isfinite(outcome.tryLaterAfterMs) &&
                       outcome.tryLaterAfterMs > 0.0;
            hint_min = std::min(hint_min, outcome.tryLaterAfterMs);
            hint_max = std::max(hint_max, outcome.tryLaterAfterMs);
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double>(1.0 / offered_per_sec));
    }
    scheduler.drain();

    // Surviving jobs must still equal the unloaded reference bitwise:
    // overload changes WHETHER a job runs, never WHAT it computes.
    for (const auto &[index, handle] : admitted) {
        const JigsawResult result = scheduler.wait(handle);
        const double drift = totalVariationDistance(
            result.output, probe.results[index].output);
        if (drift != 0.0) {
            std::cerr << "ERROR: overload-surviving output diverged "
                         "from the unloaded reference on program "
                      << index << " (total variation " << drift
                      << ")\n";
            return 1;
        }
    }

    const core::StreamStats stats = scheduler.stats();
    const double high_loaded_p95 =
        stats.latencyPercentileMs(Priority::High, 0.95);
    const double ratio =
        high_unloaded_p95 > 0.0 ? high_loaded_p95 / high_unloaded_p95
                                : 0.0;
    // Budget: 1.5x the unloaded p95. Execution is non-preemptive, so
    // with a single execution slot a High arrival can never interrupt
    // the job in service and its tail irreducibly includes one
    // worst-case service time — a residual that overlaps away as soon
    // as a second slot exists. On single-slot machines the budget
    // therefore adds one unloaded p100 (the measured worst-case
    // service time) for that head-of-line wait.
    const bool single_slot = parallelThreads() <= 1;
    const double budget_ms =
        1.5 * high_unloaded_p95 +
        (single_slot ? high_unloaded_p100 : 0.0);
    std::cout << "overload:     offered " << offered_per_sec
              << " programs/s (~2x capacity), maxQueuedJobs "
              << bounded.maxQueuedJobs << ", " << admitted.size()
              << " admitted / " << stats.shed << " shed\n";
    printClassTable(stats);
    std::cout << "    shed by class: high " << shed[0] << ", normal "
              << shed[1] << ", low " << shed[2] << "\n";
    if (stats.shed > 0) {
        std::cout << "    retry hints: " << hint_min << " ms to "
                  << hint_max << " ms\n";
    }
    std::cout << "    High p95: " << high_loaded_p95
              << " ms loaded vs " << high_unloaded_p95
              << " ms unloaded (ratio " << ratio << ", budget "
              << budget_ms << " ms = 1.5x p95"
              << (single_slot ? " + head-of-line p100, single slot"
                              : "")
              << ")\n";

    const bool p95_ok = high_loaded_p95 <= budget_ms;
    const bool low_shed_ok = shed[2] > 0;
    if (!p95_ok) {
        std::cerr << "FAIL: High-class p95 exceeded its overload "
                     "budget\n";
    }
    if (!low_shed_ok)
        std::cerr << "FAIL: overload never shed a Low-class job\n";
    if (!hints_ok) {
        std::cerr << "FAIL: a shed submission carried a non-finite or "
                     "non-positive retry hint\n";
    }
    std::cout << "overload gate: "
              << (p95_ok && low_shed_ok && hints_ok ? "PASS" : "FAIL")
              << "\n";
    std::cout << "outputs match: yes (bitwise, surviving jobs)\n";
    return p95_ok && low_shed_ok && hints_ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    int n_qubits = 12;
    int n_duplicates = 3;
    std::uint64_t trials = 4096;
    double window_ms = 10.0;
    std::size_t submitters = 0;
    double rate = 0.0;
    std::size_t workers = 0;
    bool overload = false;
    std::string trace_path;
    int metrics_port = -1;
    int serve_scrapes = 0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--qubits") && i + 1 < argc) {
            n_qubits = std::atoi(argv[++i]);
        } else if (!std::strcmp(argv[i], "--dups") && i + 1 < argc) {
            n_duplicates = std::atoi(argv[++i]);
        } else if (!std::strcmp(argv[i], "--trials") && i + 1 < argc) {
            trials = std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strcmp(argv[i], "--window") && i + 1 < argc) {
            window_ms = std::atof(argv[++i]);
        } else if (!std::strcmp(argv[i], "--submitters") &&
                   i + 1 < argc) {
            submitters = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (!std::strcmp(argv[i], "--rate") && i + 1 < argc) {
            rate = std::atof(argv[++i]);
        } else if (!std::strcmp(argv[i], "--workers") && i + 1 < argc) {
            workers = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (!std::strcmp(argv[i], "--overload")) {
            overload = true;
        } else if (!std::strcmp(argv[i], "--quick")) {
            n_qubits = 8;
            n_duplicates = 2;
            trials = 2048;
        } else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--metrics-port") &&
                   i + 1 < argc) {
            metrics_port = std::atoi(argv[++i]);
        } else if (!std::strcmp(argv[i], "--serve-scrapes") &&
                   i + 1 < argc) {
            serve_scrapes = std::atoi(argv[++i]);
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--qubits N] [--dups N] [--trials N]"
                         " [--window MS] [--submitters K]"
                         " [--rate JOBS_PER_SEC] [--workers W]"
                         " [--overload] [--quick] [--trace FILE]"
                         " [--metrics-port P] [--serve-scrapes K]\n";
            return 2;
        }
    }
    if (n_qubits < 6 || n_qubits > 20) {
        std::cerr << "qubit count must be in [6, 20]\n";
        return 2;
    }

    // The endpoint serves the PROCESS-wide registry, so it reports
    // across every scheduler the bench constructs — exactly what a
    // scrape of a long-running server would see.
    std::unique_ptr<obs::MetricsHttpServer> metrics_server;
    if (metrics_port >= 0) {
        metrics_server = std::make_unique<obs::MetricsHttpServer>(
            metrics_port, [] { return obs::renderProcessMetrics(); });
        std::cout << "metrics:      http://127.0.0.1:"
                  << metrics_server->port() << "/metrics\n"
                  << std::flush;
    }
    const auto awaitScrapes = [&] {
        if (!metrics_server || serve_scrapes <= 0)
            return;
        std::cout << "metrics:      serving until " << serve_scrapes
                  << " scrape(s) answered (60 s timeout)\n"
                  << std::flush;
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(60);
        while (metrics_server->scrapesServed() <
                   static_cast<std::uint64_t>(serve_scrapes) &&
               std::chrono::steady_clock::now() < deadline) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        std::cout << "metrics:      " << metrics_server->scrapesServed()
                  << " scrape(s) served\n";
    };
    TraceFile trace;
    if (!trace_path.empty()) {
        trace.out.open(trace_path);
        if (!trace.out) {
            std::cerr << "cannot open trace file " << trace_path << "\n";
            return 2;
        }
    }

    const std::vector<ServiceProgram> programs =
        duplicatedSuite(n_qubits, n_duplicates, trials);
    std::cout << "programs:     " << programs.size() << " (" << n_qubits
              << "-qubit suite, " << trials << " trials each)\n";
    if (overload) {
        const int rc = runOverloadScenario(programs, window_ms);
        awaitScrapes();
        return rc;
    }
    std::cout << "load shape:   "
              << (submitters == 0 ? "open-loop burst" : "closed-loop")
              << (submitters > 0
                      ? " x" + std::to_string(submitters)
                      : (rate > 0.0
                             ? " @ " + std::to_string(rate) + " jobs/s"
                             : ""))
              << "\n";

    // Immediate dispatch: every job an independent session with a
    // private executor — submit-and-run-immediately, today's path.
    StreamOptions immediate;
    immediate.mergePolicy = core::MergePolicy::Never;
    immediate.windowMs = 0.0;
    const auto immediate_trace = trace.attach(immediate);
    compiler::clearTranspileCache();
    const LoadRun naive = runLoad(immediate, programs, submitters, rate);
    trace.flush(immediate_trace);
    std::cout << "immediate:    " << naive.wallMs << " ms ("
              << 1000.0 * static_cast<double>(programs.size()) /
                     naive.wallMs
              << " programs/s)\n";
    printClassTable(naive.stats);

    // Windowed merging: compatible jobs share merge windows and
    // per-device executors.
    StreamOptions windowed;
    windowed.mergePolicy = core::MergePolicy::Auto;
    windowed.windowMs = window_ms;
    const auto windowed_trace = trace.attach(windowed);
    compiler::clearTranspileCache();
    const LoadRun merged =
        runLoad(windowed, programs, submitters, rate);
    trace.flush(windowed_trace);
    std::cout << "windowed:     " << merged.wallMs << " ms ("
              << 1000.0 * static_cast<double>(programs.size()) /
                     merged.wallMs
              << " programs/s, window " << window_ms << " ms)\n";
    printClassTable(merged.stats);
    std::cout << "merge counters: " << merged.stats.mergedWindows
              << " merged windows, " << merged.stats.mergedJobs
              << " merged jobs, " << merged.stats.crossProgramGroups
              << " cross-program groups, "
              << merged.stats.pooledGlobalPrograms
              << " pooled globals\n";
    std::cout << "speedup:      " << naive.wallMs / merged.wallMs
              << "x (windowed over immediate)\n";

    // Both paths are defined to reproduce sequential runJigsaw
    // bitwise, so they must agree with each other exactly.
    for (std::size_t i = 0; i < programs.size(); ++i) {
        const double drift = totalVariationDistance(
            naive.results[i].output, merged.results[i].output);
        if (drift != 0.0) {
            std::cerr << "ERROR: windowed output diverged from "
                         "immediate dispatch on program "
                      << i << " (total variation " << drift << ")\n";
            return 1;
        }
    }
    std::cout << "outputs match: yes (bitwise)\n";

    if (workers > 0) {
        // Worker tier: the same windowed configuration, but every
        // merged window travels the transport seam to a worker fleet
        // that late-binds its own executors. Results are defined to
        // stay bitwise-identical to local execution.
        StreamOptions tiered = windowed;
        tiered.worker.workers = workers;
        const auto tiered_trace = trace.attach(tiered);
        compiler::clearTranspileCache();
        const LoadRun fleet =
            runLoad(tiered, programs, submitters, rate);
        trace.flush(tiered_trace);
        std::cout << "worker tier:  " << fleet.wallMs << " ms ("
                  << 1000.0 * static_cast<double>(programs.size()) /
                         fleet.wallMs
                  << " programs/s, " << workers << " workers)\n";
        printClassTable(fleet.stats);
        printWorkerCounters(fleet.stats);
        for (std::size_t i = 0; i < programs.size(); ++i) {
            const double drift = totalVariationDistance(
                naive.results[i].output, fleet.results[i].output);
            if (drift != 0.0) {
                std::cerr << "ERROR: worker-tier output diverged from "
                             "immediate dispatch on program "
                          << i << " (total variation " << drift
                          << ")\n";
                return 1;
            }
        }
        std::cout << "outputs match: yes (bitwise, worker tier)\n";
    }
    if (trace.out.is_open()) {
        std::cout << "trace:        " << trace.spans << " spans across "
                  << trace.jobs << " jobs -> " << trace_path << "\n";
    }
    awaitScrapes();
    return 0;
}
