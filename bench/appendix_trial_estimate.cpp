/**
 * @file
 * Appendix A.2: how many trials does a CPM need?
 *
 * Reproduces the paper's estimate — Eq. 9 gives the trials required
 * to observe every outcome of a 2^s-outcome CPM at least once with
 * confidence P; for the default subset size 2 at 99.99% confidence
 * this is ~150 trials — and verifies it empirically with a uniform
 * sampler.
 */
#include <cstdint>
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "core/trial_estimate.h"

int
main()
{
    using namespace jigsaw;

    std::cout << "=== Appendix A.2: trial budget per CPM ===\n\n";

    constexpr double confidence = 0.9999;
    ConsoleTable table({"subset size", "outcomes", "trials (Eq. 9)",
                        "empirical coverage"});

    Rng rng(2424);
    for (int s = 2; s <= 10; ++s) {
        const std::uint64_t budget =
            core::trialsForFullCoverage(s, confidence);

        // Empirical check: with that budget, how often does a uniform
        // 2^s-outcome source show every outcome at least once?
        const int repetitions = 200;
        int covered = 0;
        const std::uint64_t n_outcomes = 1ULL << s;
        for (int rep = 0; rep < repetitions; ++rep) {
            std::vector<bool> seen(n_outcomes, false);
            std::uint64_t distinct = 0;
            for (std::uint64_t t = 0; t < budget && distinct < n_outcomes;
                 ++t) {
                const auto outcome = static_cast<std::uint64_t>(
                    rng.uniformInt(0,
                                   static_cast<std::int64_t>(n_outcomes) -
                                       1));
                if (!seen[outcome]) {
                    seen[outcome] = true;
                    ++distinct;
                }
            }
            if (distinct == n_outcomes)
                ++covered;
        }

        table.addRow({std::to_string(s), std::to_string(n_outcomes),
                      std::to_string(budget),
                      ConsoleTable::num(
                          static_cast<double>(covered) / repetitions,
                          3)});
    }
    table.print(std::cout);

    std::cout << "\npaper: ~150 trials suffice for the default subset "
                 "size 2 at 99.99% confidence, and a few thousand for "
                 "JigSaw-M's larger sizes -- far below the half-budget "
                 "each CPM receives in practice.\n"
              << "expected shape: empirical coverage ~1.0 everywhere "
                 "(Eq. 9 is conservative: it unions per-outcome "
                 "bounds).\n";
    return 0;
}
