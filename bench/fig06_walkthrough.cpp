/**
 * @file
 * Figure 6: the paper's worked Bayesian-update example, step by step.
 *
 * Reproduces the published numbers exactly: the update coefficients
 * for marginal (Q1,Q0), the raw posterior column, and the boost of
 * the correct answer 111 after reconstruction.
 */
#include <iostream>

#include "common/table.h"
#include "core/bayesian.h"

int
main()
{
    using namespace jigsaw;

    // Global PMF over (Q2,Q1,Q0) and the CPM marginal over (Q1,Q0),
    // exactly as printed in the paper's Figure 6.
    Pmf global(3);
    global.set(0b000, 0.10);
    global.set(0b001, 0.10);
    global.set(0b010, 0.15);
    global.set(0b011, 0.15);
    global.set(0b100, 0.10);
    global.set(0b101, 0.05);
    global.set(0b110, 0.15);
    global.set(0b111, 0.20);

    Pmf local(2);
    local.set(0b00, 0.1);
    local.set(0b01, 0.1);
    local.set(0b10, 0.2);
    local.set(0b11, 0.6);
    const core::Marginal marginal{local, {0, 1}};

    std::cout << "=== Figure 6: Bayesian update walkthrough (3-qubit "
                 "program, marginal over Q1,Q0) ===\n\n";

    // Steps 1-2: update coefficients = prior mass normalized within
    // each subset-value bucket.
    std::unordered_map<BasisState, double> bucket;
    for (const auto &[outcome, p] : global.probabilities())
        bucket[extractBits(outcome, marginal.qubits)] += p;

    ConsoleTable steps({"outcome", "prior P", "coeff C",
                        "raw posterior", "paper Ppost"});
    const char *paper_ppost[8] = {"0.05", "0.07", "0.13", "0.64",
                                  "0.05", "0.04", "0.13", "0.86"};
    for (BasisState s = 0; s < 8; ++s) {
        const BasisState key = extractBits(s, marginal.qubits);
        const double coeff = global.prob(s) / bucket[key];
        const double pry = local.prob(key);
        const double raw = coeff * pry / (1.0 - pry);
        steps.addRow({toBitstring(s, 3),
                      ConsoleTable::num(global.prob(s), 2),
                      ConsoleTable::num(coeff, 2),
                      ConsoleTable::num(raw, 4), paper_ppost[s]});
    }
    steps.print(std::cout);

    // Steps 4-6: full reconstruction with this marginal.
    const Pmf out = core::bayesianReconstruct(global, {marginal});
    std::cout << "\nP(111): prior " << ConsoleTable::num(
                     global.prob(0b111), 3)
              << " -> reconstructed "
              << ConsoleTable::num(out.prob(0b111), 3) << " ("
              << ConsoleTable::num(out.prob(0b111) / global.prob(0b111),
                                   2)
              << "x; paper reports 2.2x with additional marginals)\n"
              << "mode of the output PMF: " << toBitstring(out.mode(), 3)
              << " (the correct answer)\n";
    return 0;
}
