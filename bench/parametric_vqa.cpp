/**
 * @file
 * Iterative-VQA serving bench: compile-once/re-bind vs cold compile.
 *
 * A variational client iterates one ansatz skeleton with fresh
 * rotation angles per step. The cold path pays the full pipeline each
 * iteration — placement + SABRE + EPS selection, then evolution from
 * scratch (transpile memo cleared, fresh executor, exactly what a
 * serving stack without parametric support does). The parametric path
 * compiles once (JigsawService::compileParametric) and per iteration
 * only re-binds angles into the cached routing and re-applies the
 * diagonal tail on top of the executor's cached split-prefix state
 * (submitIteration). Outputs must be bitwise identical per binding;
 * the report prints per-iteration latency and the cache hit rates.
 *
 * Usage: bench_parametric_vqa [--qubits N] [--iterations K] [--trials T]
 */
#include <chrono>
#include <cstring>
#include <iostream>
#include <vector>

#include "compiler/transpiler.h"
#include "core/jigsaw.h"
#include "core/service.h"
#include "device/library.h"
#include "sim/simulators.h"

namespace {

using namespace jigsaw;
using circuit::QuantumCircuit;

double
msSince(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Ising/QAOA-cost ansatz: H layer, then an RZZ chain + RZ layer —
 *  every parametric gate diagonal, the split-prefix cache's shape. */
QuantumCircuit
isingAnsatz(int n, const std::vector<double> &angles)
{
    QuantumCircuit qc(n);
    for (int q = 0; q < n; ++q)
        qc.h(q);
    std::size_t k = 0;
    for (int q = 0; q + 1 < n; ++q)
        qc.rzz(angles.at(k++), q, q + 1);
    for (int q = 0; q < n; ++q)
        qc.rz(angles.at(k++), q);
    qc.measureAll();
    return qc;
}

/** The optimizer's angle proposal for one iteration (synthetic). */
std::vector<double>
iterationAngles(int n, int iteration)
{
    std::vector<double> angles;
    angles.reserve(static_cast<std::size_t>(2 * n - 1));
    for (int i = 0; i < 2 * n - 1; ++i) {
        angles.push_back(0.1 * static_cast<double>(iteration + 1) +
                         0.03 * static_cast<double>(i));
    }
    return angles;
}

/** Exact (bitwise) PMF equality. */
bool
pmfsIdentical(const Pmf &a, const Pmf &b)
{
    if (a.nQubits() != b.nQubits() || a.support() != b.support())
        return false;
    for (const auto &[outcome, p] : a.probabilities()) {
        if (p != b.prob(outcome))
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    int n_qubits = 10;
    int iterations = 8;
    std::uint64_t trials = 1024;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--qubits") && i + 1 < argc) {
            n_qubits = std::atoi(argv[++i]);
        } else if (!std::strcmp(argv[i], "--iterations") && i + 1 < argc) {
            iterations = std::atoi(argv[++i]);
        } else if (!std::strcmp(argv[i], "--trials") && i + 1 < argc) {
            trials = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--qubits N] [--iterations K] [--trials T]\n";
            return 2;
        }
    }
    if (n_qubits < 4 || n_qubits > 20 || iterations < 2) {
        std::cerr << "qubit count must be in [4, 20], iterations >= 2\n";
        return 2;
    }

    const device::DeviceModel dev = device::toronto();
    std::cerr << "parametric VQA serving: " << n_qubits
              << "-qubit Ising ansatz, " << iterations
              << " iterations, " << trials << " trials, "
              << dev.name() << "\n";

    // --- Cold path: full pipeline per iteration -------------------
    std::vector<Pmf> cold_outputs;
    std::vector<double> cold_ms;
    for (int it = 0; it < iterations; ++it) {
        compiler::clearTranspileCache();
        sim::NoisySimulator executor(dev, {.seed = 1234});
        const auto start = std::chrono::steady_clock::now();
        cold_outputs.push_back(
            core::runJigsaw(isingAnsatz(n_qubits,
                                        iterationAngles(n_qubits, it)),
                            dev, executor, trials)
                .output);
        cold_ms.push_back(msSince(start));
    }

    // --- Parametric path: compile once, re-bind per iteration ------
    compiler::clearTranspileCache();
    const std::uint64_t hits0 = compiler::transpileCacheHits();
    const std::uint64_t misses0 = compiler::transpileCacheMisses();

    core::ServiceOptions options;
    options.stream.windowMs = 0.0; // latency benchmark: no merge wait
    core::JigsawService service(options);

    const auto compile_start = std::chrono::steady_clock::now();
    const core::ParametricHandle handle = service.compileParametric(
        core::ServiceProgram(
            isingAnsatz(n_qubits, iterationAngles(n_qubits, 0)), dev,
            trials));
    const double compile_ms = msSince(compile_start);

    const std::uint64_t iter_hits0 = compiler::transpileCacheHits();
    const std::uint64_t iter_misses0 = compiler::transpileCacheMisses();

    std::vector<Pmf> warm_outputs;
    std::vector<double> warm_ms;
    for (int it = 0; it < iterations; ++it) {
        const auto start = std::chrono::steady_clock::now();
        const core::SubmitResult submitted = service.submitIteration(
            handle, iterationAngles(n_qubits, it));
        if (!submitted.admitted) {
            std::cerr << "ERROR: iteration " << it << " was shed\n";
            return 1;
        }
        warm_outputs.push_back(service.wait(submitted.handle).output);
        warm_ms.push_back(msSince(start));
    }

    // --- Identity and cache accounting ----------------------------
    for (int it = 0; it < iterations; ++it) {
        if (!pmfsIdentical(cold_outputs[static_cast<std::size_t>(it)],
                           warm_outputs[static_cast<std::size_t>(it)])) {
            std::cerr << "ERROR: iteration " << it
                      << " diverged from its cold-compile run\n";
            return 1;
        }
    }

    const std::uint64_t iter_hits =
        compiler::transpileCacheHits() - iter_hits0;
    const std::uint64_t iter_misses =
        compiler::transpileCacheMisses() - iter_misses0;
    const core::StreamStats stats = service.streamStats();

    double cold_total = 0.0, warm_total = 0.0;
    double cold_tail = 0.0, warm_tail = 0.0; // iterations 2..K
    for (int it = 0; it < iterations; ++it) {
        cold_total += cold_ms[static_cast<std::size_t>(it)];
        warm_total += warm_ms[static_cast<std::size_t>(it)];
        if (it > 0) {
            cold_tail += cold_ms[static_cast<std::size_t>(it)];
            warm_tail += warm_ms[static_cast<std::size_t>(it)];
        }
    }
    const double transpile_hit_pct =
        iter_hits + iter_misses > 0
            ? 100.0 * static_cast<double>(iter_hits) /
                  static_cast<double>(iter_hits + iter_misses)
            : 0.0;
    const double prefix_hit_pct =
        stats.prefixStateHits + stats.prefixStateMisses > 0
            ? 100.0 * static_cast<double>(stats.prefixStateHits) /
                  static_cast<double>(stats.prefixStateHits +
                                      stats.prefixStateMisses)
            : 0.0;

    std::cout << "  compile-once: " << compile_ms << " ms (prewarm: "
              << (compiler::transpileCacheHits() - hits0) << " hits / "
              << (compiler::transpileCacheMisses() - misses0)
              << " misses lifetime so far)\n";
    for (int it = 0; it < iterations; ++it) {
        std::cout << "  iteration " << it << ": cold "
                  << cold_ms[static_cast<std::size_t>(it)]
                  << " ms -> parametric "
                  << warm_ms[static_cast<std::size_t>(it)] << " ms\n";
    }
    std::cout << "  total: " << cold_total << " ms -> " << warm_total
              << " ms (" << cold_total / warm_total << "x; iterations "
              << "2+: " << cold_tail / warm_tail << "x)\n"
              << "  transpile during iterations: " << iter_hits
              << " hits / " << iter_misses << " misses ("
              << transpile_hit_pct << "% hit rate, "
              << stats.transpileRebinds << " lifetime rebinds)\n"
              << "  split-prefix states: " << stats.prefixStateHits
              << " hits / " << stats.prefixStateMisses << " misses ("
              << prefix_hit_pct << "% hit rate)\n"
              << "  outputs: bitwise-identical to cold compiles\n";

    if (iter_misses != 0) {
        std::cerr << "ERROR: expected zero transpiles during "
                     "iterations (prewarmed skeleton), got "
                  << iter_misses << "\n";
        return 1;
    }
    return 0;
}
