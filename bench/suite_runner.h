/**
 * @file
 * Shared evaluation-sweep driver for the bench harness.
 *
 * Several paper artifacts (Figure 8, Tables 3-5, Figure 11) report
 * different metrics over the same sweep: every benchmark in Table 2,
 * on every evaluation device, under baseline / EDM / JigSaw (with and
 * without recompilation) / JigSaw-M, all with equal trial budgets.
 * This helper runs that sweep once per bench binary.
 */
#ifndef JIGSAW_BENCH_SUITE_RUNNER_H
#define JIGSAW_BENCH_SUITE_RUNNER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "device/device_model.h"
#include "obs/exposition.h"
#include "workloads/workload.h"

namespace jigsaw {
namespace bench {

/** All scheme outputs for one (device, workload) pair. */
struct SuiteCell
{
    int deviceIndex;
    int workloadIndex;
    Pmf baseline;        ///< Noise-aware SABRE, all trials global.
    Pmf edm;             ///< Ensemble of 4 diverse mappings.
    Pmf jigsawNoRecomp;  ///< JigSaw, CPMs reuse the global mapping.
    Pmf jigsaw;          ///< JigSaw with CPM recompilation.
    Pmf jigsawM;         ///< JigSaw-M (sizes 2..5, top-down).
};

/** The whole sweep: devices x workloads with owned workload objects. */
struct SuiteRun
{
    std::vector<device::DeviceModel> devices;
    std::vector<std::unique_ptr<workloads::Workload>> workloads;
    std::vector<SuiteCell> cells;

    /** Cumulative wall milliseconds per scheme, across all cells. */
    double baselineMs = 0.0;
    double edmMs = 0.0;
    double jigsawNoRecompMs = 0.0;
    double jigsawMs = 0.0;
    double jigsawMMs = 0.0;
    double totalMs = 0.0; ///< Whole-sweep wall time.

    /** @name Executor and compilation cache counters, summed per cell.
     *  @{ */
    std::uint64_t executorCacheHits = 0;   ///< PMF-cache hits.
    std::uint64_t executorCacheMisses = 0; ///< Full simulations run.
    std::uint64_t batchEvolutions = 0;     ///< Shared-prefix evolutions.
    std::uint64_t marginalsServed = 0;     ///< CPM PMFs off shared states.
    std::uint64_t evolutionsSaved = 0;     ///< Evolutions batching avoided.
    std::uint64_t prefixStateHits = 0;   ///< Split-prefix state reuses.
    std::uint64_t prefixStateMisses = 0; ///< Split prefixes evolved.
    /** @} */
    /** Process-wide counter deltas across the sweep (the transpile
     *  memo and the SIMD kernel-dispatch totals), taken through the
     *  shared obs::ProcessCounters snapshot so the timings-JSON
     *  export, the Prometheus exposition, and the perf bench's
     *  dispatch-mix table all report from one source. */
    obs::ProcessCounters counters;

    /** The cell for (device d, workload w). */
    const SuiteCell &cell(int d, int w) const;
};

/**
 * Run the full evaluation sweep.
 *
 * Scheme wall times are accumulated into the returned SuiteRun; when
 * the JIGSAW_SUITE_TIMINGS_JSON environment variable names a path,
 * they are also written there in the BENCH_perf.json format (see
 * docs/performance.md), giving every fig/tab bench binary a perf
 * trajectory for free.
 *
 * @param trials        Trial budget per scheme (shared by all).
 * @param seed          Base RNG seed (per-cell seeds derive from it).
 * @param qaoa_only     Restrict to the QAOA suite (Table 5 / Fig 14).
 * @param quiet         Suppress progress lines on stderr.
 */
SuiteRun runEvaluationSuite(std::uint64_t trials, std::uint64_t seed,
                            bool qaoa_only = false, bool quiet = false);

/** Write the sweep's scheme timings in the BENCH_perf.json format. */
bool writeSuiteTimings(const SuiteRun &run, const std::string &path);

/** Outcome of pushing the sweep's JigSaw runs through JigsawService. */
struct ServiceSuiteRun
{
    std::size_t programs = 0;  ///< Programs submitted (cells x schemes).
    double serviceMs = 0.0;    ///< Wall ms through JigsawService.
    double sequentialMs = 0.0; ///< Same jobs serially (0 when skipped).
    double latencyP50Ms = 0.0; ///< Median per-program service latency.
    double latencyP95Ms = 0.0; ///< Tail per-program service latency.
    std::size_t mergedPrograms = 0; ///< Programs on the merged path.
    std::size_t crossProgramGroups = 0; ///< Merged groups spanning programs.
    /** Every service PMF bitwise-matched its sequential run. */
    bool outputsMatch = true;

    /** Sequential / service wall-time ratio (concurrency win). */
    double speedup() const
    {
        return serviceMs > 0.0 && sequentialMs > 0.0
                   ? sequentialMs / serviceMs
                   : 0.0;
    }

    /** Service-mode throughput. */
    double programsPerSecond() const
    {
        return serviceMs > 0.0
                   ? 1000.0 * static_cast<double>(programs) / serviceMs
                   : 0.0;
    }
};

/**
 * Service-mode path: every JigSaw scheme of the evaluation sweep
 * (JigSaw without recompilation, JigSaw, JigSaw-M, per device x
 * workload cell) becomes one ServiceProgram with its own seeded
 * executor, and the whole batch runs concurrently through
 * core::JigsawService. With @p compare_sequential the same programs
 * first run serially through runJigsaw (transpile cache cleared
 * before each phase so both pay cold compilation) and every output
 * PMF is checked for a bitwise match — the service must be a pure
 * throughput win.
 */
ServiceSuiteRun runEvaluationSuiteService(std::uint64_t trials,
                                          std::uint64_t seed,
                                          bool qaoa_only = false,
                                          bool quiet = false,
                                          bool compare_sequential = true);

/** Geometric mean helper that tolerates zero entries by flooring. */
double geomeanFloored(const std::vector<double> &xs, double floor = 1e-6);

} // namespace bench
} // namespace jigsaw

#endif // JIGSAW_BENCH_SUITE_RUNNER_H
