/**
 * @file
 * Figure 8: Probability of a Successful Trial for EDM, JigSaw, and
 * JigSaw-M relative to the baseline, per benchmark and device, with
 * the per-device geometric mean.
 *
 * Paper reference points (IBM hardware): JigSaw improves PST by 2.91x
 * on average (up to 7.87x); JigSaw-M by 3.65x on average (up to
 * 8.42x); EDM trails both.
 */
#include <cstdint>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "metrics/metrics.h"
#include "suite_runner.h"

int
main()
{
    using namespace jigsaw;
    constexpr std::uint64_t trials = 32768;

    std::cout << "=== Figure 8: Relative PST (EDM / JigSaw / JigSaw-M "
                 "vs baseline) ===\n"
              << "trials per scheme: " << trials << "\n\n";

    const bench::SuiteRun run = bench::runEvaluationSuite(trials, 808);

    for (int d = 0; d < static_cast<int>(run.devices.size()); ++d) {
        std::cout << run.devices[static_cast<std::size_t>(d)].name()
                  << " (" << run.devices[static_cast<std::size_t>(d)]
                                .nQubits()
                  << " qubits)\n";
        ConsoleTable table({"benchmark", "abs PST (base)", "EDM",
                            "JigSaw", "JigSaw-M"});
        std::vector<double> rel_edm, rel_js, rel_jsm;
        for (int w = 0; w < static_cast<int>(run.workloads.size());
             ++w) {
            const workloads::Workload &workload =
                *run.workloads[static_cast<std::size_t>(w)];
            const bench::SuiteCell &cell = run.cell(d, w);
            const double base =
                std::max(metrics::pst(cell.baseline, workload), 1e-6);
            const double edm =
                metrics::pst(cell.edm, workload) / base;
            const double js =
                metrics::pst(cell.jigsaw, workload) / base;
            const double jsm =
                metrics::pst(cell.jigsawM, workload) / base;
            rel_edm.push_back(edm);
            rel_js.push_back(js);
            rel_jsm.push_back(jsm);
            table.addRow({workload.name(), ConsoleTable::num(base, 3),
                          ConsoleTable::num(edm, 2),
                          ConsoleTable::num(js, 2),
                          ConsoleTable::num(jsm, 2)});
        }
        table.addRow({"GMean", "",
                      ConsoleTable::num(bench::geomeanFloored(rel_edm),
                                        2),
                      ConsoleTable::num(bench::geomeanFloored(rel_js),
                                        2),
                      ConsoleTable::num(bench::geomeanFloored(rel_jsm),
                                        2)});
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "paper (real IBMQ hardware): JigSaw mean 2.91x "
                 "(max 7.87x); JigSaw-M mean 3.65x (max 8.42x);\n"
              << "expected shape: JigSaw-M >= JigSaw > EDM >= 1, with "
                 "the largest gains on the deepest programs.\n";
    return 0;
}
