/**
 * @file
 * Machine-readable perf trajectory for the bench harness.
 *
 * Benches append named timing entries — optionally as naive/optimized
 * pairs — and write them as a small JSON document (BENCH_perf.json by
 * convention) so successive PRs can diff wall times. The format is
 * described in docs/performance.md.
 */
#ifndef JIGSAW_BENCH_PERF_JSON_H
#define JIGSAW_BENCH_PERF_JSON_H

#include <string>
#include <vector>

namespace jigsaw {
namespace bench {

/** Collects timing entries and serializes them to JSON. */
class PerfReport
{
  public:
    /** @p workload is a free-form description of what was measured. */
    explicit PerfReport(std::string workload);

    /** Record a before/after pair (milliseconds). */
    void addComparison(const std::string &name, double naive_ms,
                       double optimized_ms);

    /** Record a single timing with no baseline (milliseconds). */
    void addTiming(const std::string &name, double ms);

    /** Sum of naive_ms over comparisons / sum of optimized_ms. */
    double overallSpeedup() const;

    /** Serialize to a JSON string. */
    std::string toJson() const;

    /** Write the JSON to @p path; returns false on I/O failure. */
    bool write(const std::string &path) const;

  private:
    struct Entry
    {
        std::string name;
        double naiveMs;     ///< < 0 when the entry has no baseline.
        double optimizedMs;
    };

    std::string workload_;
    std::vector<Entry> entries_;
};

} // namespace bench
} // namespace jigsaw

#endif // JIGSAW_BENCH_PERF_JSON_H
