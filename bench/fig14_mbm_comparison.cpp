/**
 * @file
 * Figure 14: JigSaw vs IBM's matrix-based measurement mitigation
 * (MBM), and their composition, on QAOA benchmarks (Toronto and Paris
 * models). Relative PST vs the unmitigated baseline.
 *
 * Paper reference: MBM alone helps modestly; JigSaw beats it; JigSaw
 * + MBM (and JigSaw-M + MBM) beat either scheme standalone.
 */
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "common/table.h"
#include "core/jigsaw.h"
#include "device/library.h"
#include "metrics/metrics.h"
#include "mitigation/mbm.h"
#include "sim/simulators.h"
#include "workloads/qaoa.h"

int
main()
{
    using namespace jigsaw;
    constexpr std::uint64_t trials = 32768;

    std::cout << "=== Figure 14: JigSaw vs IBM matrix-based mitigation "
                 "(relative PST) ===\n"
              << "trials per scheme: " << trials << "\n\n";

    struct Config
    {
        int n, p;
    };
    const std::vector<Config> configs{{8, 1}, {8, 2}, {10, 1}};
    std::vector<device::DeviceModel> devices;
    devices.push_back(device::toronto());
    devices.push_back(device::paris());

    ConsoleTable table({"device", "workload", "IBM MBM", "JigSaw",
                        "JigSaw+MBM", "JigSaw-M+MBM"});
    for (const device::DeviceModel &dev : devices) {
        for (const Config &config : configs) {
            const workloads::QaoaMaxCut qaoa(config.n, config.p);
            sim::NoisySimulator executor(dev, {.seed = 1414});

            // Baseline and MBM on the baseline compilation.
            const compiler::CompiledCircuit compiled =
                compiler::transpile(qaoa.circuit(), dev);
            const Pmf baseline =
                executor.run(compiled.physical, trials).toPmf();
            const mitigation::MbmMitigator mbm(compiled.physical, dev);
            const Pmf mbm_only = mbm.mitigate(baseline);

            // JigSaw and the compositions.
            const core::JigsawResult js = core::runJigsaw(
                qaoa.circuit(), dev, executor, trials);
            const Pmf js_mbm = mitigation::applyMbmToJigsaw(js, dev);
            const core::JigsawResult jsm = core::runJigsaw(
                qaoa.circuit(), dev, executor, trials,
                core::jigsawMOptions());
            const Pmf jsm_mbm = mitigation::applyMbmToJigsaw(jsm, dev);

            const double base =
                std::max(metrics::pst(baseline, qaoa), 1e-6);
            table.addRow(
                {dev.name(), qaoa.name(),
                 ConsoleTable::num(metrics::pst(mbm_only, qaoa) / base,
                                   2),
                 ConsoleTable::num(metrics::pst(js.output, qaoa) / base,
                                   2),
                 ConsoleTable::num(metrics::pst(js_mbm, qaoa) / base,
                                   2),
                 ConsoleTable::num(metrics::pst(jsm_mbm, qaoa) / base,
                                   2)});
        }
    }
    table.print(std::cout);

    std::cout << "\nexpected shape (paper Fig 14): JigSaw > MBM alone; "
                 "JigSaw+MBM >= JigSaw; JigSaw-M+MBM the best. MBM's "
                 "cost is exponential in qubits, JigSaw's is linear.\n";
    return 0;
}
