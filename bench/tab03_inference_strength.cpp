/**
 * @file
 * Table 3: Inference Strength (IST) of EDM, JigSaw, and JigSaw-M
 * relative to the baseline — min / max / average (geomean) per
 * device.
 *
 * Paper reference:
 *   Toronto:   EDM 0.92/2.25/1.36  JigSaw 1.22/21.7/2.87  JigSaw-M 1.23/27.9/3.84
 *   Paris:     EDM 0.78/6.54/1.36  JigSaw 1.07/9.07/2.33  JigSaw-M 1.09/28.1/3.13
 *   Manhattan: EDM 0.75/2.74/1.27  JigSaw 0.81/3.12/1.35  JigSaw-M 0.83/3.40/1.46
 */
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "common/statistics.h"
#include "common/table.h"
#include "metrics/metrics.h"
#include "suite_runner.h"

int
main()
{
    using namespace jigsaw;
    constexpr std::uint64_t trials = 32768;

    std::cout << "=== Table 3: relative Inference Strength (IST) ===\n"
              << "trials per scheme: " << trials << "\n\n";

    const bench::SuiteRun run = bench::runEvaluationSuite(trials, 303);

    ConsoleTable table({"device", "scheme", "min", "max", "avg"});
    const char *paper[3][3] = {
        {"0.92/2.25/1.36", "1.22/21.7/2.87", "1.23/27.9/3.84"},
        {"0.78/6.54/1.36", "1.07/9.07/2.33", "1.09/28.1/3.13"},
        {"0.75/2.74/1.27", "0.81/3.12/1.35", "0.83/3.40/1.46"},
    };

    for (int d = 0; d < static_cast<int>(run.devices.size()); ++d) {
        std::vector<double> edm, js, jsm;
        for (int w = 0; w < static_cast<int>(run.workloads.size());
             ++w) {
            const workloads::Workload &workload =
                *run.workloads[static_cast<std::size_t>(w)];
            const bench::SuiteCell &cell = run.cell(d, w);
            // Cap pathological ISTs (no incorrect outcome observed).
            auto rel = [&](const Pmf &pmf) {
                const double base = std::clamp(
                    metrics::ist(cell.baseline, workload), 1e-3, 1e3);
                return std::clamp(metrics::ist(pmf, workload), 1e-3,
                                  1e3) /
                       base;
            };
            edm.push_back(rel(cell.edm));
            js.push_back(rel(cell.jigsaw));
            jsm.push_back(rel(cell.jigsawM));
        }
        const std::string dev_name =
            run.devices[static_cast<std::size_t>(d)].name();
        auto add = [&](const char *scheme,
                       const std::vector<double> &xs, const char *ref) {
            table.addRow({dev_name, scheme,
                          ConsoleTable::num(stats::min(xs), 2),
                          ConsoleTable::num(stats::max(xs), 2),
                          ConsoleTable::num(bench::geomeanFloored(xs),
                                            2)});
            table.addRow({"", std::string("  (paper: ") + ref + ")", "",
                          "", ""});
        };
        add("EDM", edm, paper[d][0]);
        add("JigSaw", js, paper[d][1]);
        add("JigSaw-M", jsm, paper[d][2]);
    }
    table.print(std::cout);

    std::cout << "\nexpected shape: JigSaw-M avg > JigSaw avg > EDM "
                 "avg, with JigSaw min >= ~1 (it does not hurt "
                 "inference).\n";
    return 0;
}
