#include "perf_json.h"

#include <fstream>
#include <sstream>
#include <utility>

namespace jigsaw {
namespace bench {

PerfReport::PerfReport(std::string workload)
    : workload_(std::move(workload))
{
}

void
PerfReport::addComparison(const std::string &name, double naive_ms,
                          double optimized_ms)
{
    entries_.push_back({name, naive_ms, optimized_ms});
}

void
PerfReport::addTiming(const std::string &name, double ms)
{
    entries_.push_back({name, -1.0, ms});
}

double
PerfReport::overallSpeedup() const
{
    double naive = 0.0;
    double optimized = 0.0;
    for (const Entry &e : entries_) {
        if (e.naiveMs < 0.0)
            continue;
        naive += e.naiveMs;
        optimized += e.optimizedMs;
    }
    return optimized > 0.0 ? naive / optimized : 0.0;
}

std::string
PerfReport::toJson() const
{
    std::ostringstream out;
    out.precision(6);
    out << std::fixed;
    out << "{\n  \"workload\": \"" << workload_ << "\",\n";
    out << "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const Entry &e = entries_[i];
        out << "    {\"name\": \"" << e.name << "\"";
        if (e.naiveMs >= 0.0) {
            out << ", \"naive_ms\": " << e.naiveMs
                << ", \"optimized_ms\": " << e.optimizedMs
                << ", \"speedup\": "
                << (e.optimizedMs > 0.0 ? e.naiveMs / e.optimizedMs : 0.0);
        } else {
            out << ", \"ms\": " << e.optimizedMs;
        }
        out << "}" << (i + 1 < entries_.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"overall_speedup\": " << overallSpeedup() << "\n";
    out << "}\n";
    return out.str();
}

bool
PerfReport::write(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toJson();
    return static_cast<bool>(out);
}

} // namespace bench
} // namespace jigsaw
