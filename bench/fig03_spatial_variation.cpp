/**
 * @file
 * Figure 3: spatial variation of measurement error rates on the
 * IBMQ-Toronto model.
 *
 * Prints the per-qubit readout errors with their percentile class
 * (the paper's map shading), the summary statistics, and the claim
 * behind JigSaw's motivation: the best-readout qubits are not
 * spatially co-located, so large programs cannot avoid bad readout
 * qubits by mapping alone.
 *
 * Paper reference (Toronto): mean 4.70%, median 2.76%, min 0.85%,
 * max 22.2%.
 */
#include <algorithm>
#include <iostream>
#include <vector>

#include "common/statistics.h"
#include "common/table.h"
#include "device/library.h"

int
main()
{
    using namespace jigsaw;

    const device::DeviceModel dev = device::toronto();
    const std::vector<double> errors = dev.calibration().readoutErrors();

    std::cout << "=== Figure 3: spatial variation of readout error on "
              << dev.name() << " ===\n\n";

    ConsoleTable stats_table({"statistic", "measured (%)", "paper (%)"});
    stats_table.addRow({"mean",
                        ConsoleTable::num(100 * stats::mean(errors), 2),
                        "4.70"});
    stats_table.addRow({"median",
                        ConsoleTable::num(100 * stats::median(errors), 2),
                        "2.76"});
    stats_table.addRow({"min",
                        ConsoleTable::num(100 * stats::min(errors), 2),
                        "0.85"});
    stats_table.addRow({"max",
                        ConsoleTable::num(100 * stats::max(errors), 2),
                        "22.2"});
    stats_table.print(std::cout);

    // Percentile classes, as in the paper's device map.
    const double p25 = stats::percentile(errors, 25);
    const double p50 = stats::percentile(errors, 50);
    const double p75 = stats::percentile(errors, 75);
    auto percentile_class = [&](double e) {
        if (e < p25)
            return "<25";
        if (e < p50)
            return "25-50";
        if (e < p75)
            return "50-75";
        return ">75";
    };

    std::cout << "\nper-qubit readout error (percentile class):\n";
    ConsoleTable map_table({"qubit", "error (%)", "percentile",
                            "neighbors"});
    for (int q = 0; q < dev.nQubits(); ++q) {
        std::string neighbors;
        for (int nb : dev.topology().neighbors(q)) {
            if (!neighbors.empty())
                neighbors += ",";
            neighbors += std::to_string(nb);
        }
        map_table.addRow({std::to_string(q),
                          ConsoleTable::num(100 * errors[
                              static_cast<std::size_t>(q)], 2),
                          percentile_class(errors[
                              static_cast<std::size_t>(q)]),
                          neighbors});
    }
    map_table.print(std::cout);

    // The motivation claim: best qubits are not co-located. Compute
    // the mean pairwise coupling distance of the k best-readout
    // qubits; compare to the device's overall mean distance.
    const std::vector<int> best =
        dev.calibration().bestReadoutQubits(6);
    double best_dist = 0.0;
    int pairs = 0;
    for (std::size_t i = 0; i < best.size(); ++i) {
        for (std::size_t j = i + 1; j < best.size(); ++j) {
            best_dist += dev.topology().distance(best[i], best[j]);
            ++pairs;
        }
    }
    best_dist /= pairs;

    double all_dist = 0.0;
    int all_pairs = 0;
    for (int a = 0; a < dev.nQubits(); ++a) {
        for (int b = a + 1; b < dev.nQubits(); ++b) {
            all_dist += dev.topology().distance(a, b);
            ++all_pairs;
        }
    }
    all_dist /= all_pairs;

    std::cout << "\nmean pairwise distance of the 6 best-readout "
                 "qubits: "
              << ConsoleTable::num(best_dist, 2)
              << " hops (device-wide mean: "
              << ConsoleTable::num(all_dist, 2) << ")\n"
              << "expected shape: the best-readout qubits are spread "
                 "out, not adjacent -- large programs cannot avoid "
                 "high-error readout by placement alone.\n";
    return 0;
}
