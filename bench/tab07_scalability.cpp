/**
 * @file
 * Table 7: analytical memory and operation counts of the Bayesian
 * reconstruction for large programs (paper Section 7.4).
 *
 * JigSaw rows: one subset size (5), N = n CPMs. JigSaw-M rows: sizes
 * {5, 10, 15, 20}. The operation counts match the paper exactly
 * (4 eps S N T); the memory equation (Eq. 5) matches the JigSaw rows
 * and the eps = 1 JigSaw-M rows — the paper's remaining JigSaw-M
 * memory cells appear to mix decimal/binary K and drop the min(2^s,
 * delta T) cap, which EXPERIMENTS.md documents.
 */
#include <cstdint>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/scalability.h"

int
main()
{
    using namespace jigsaw;

    std::cout << "=== Table 7: scalability of reconstruction "
                 "(analytical model) ===\n\n";

    struct Row
    {
        int n;
        double eps;
        std::uint64_t trials;
        const char *label;
        const char *paper_js;  // Mem GB / OPs M
        const char *paper_jsm;
    };
    const std::vector<Row> rows{
        {100, 0.05, 32ULL * 1024, "32K", "0.01 / 0.66", "0.02 / 2.64"},
        {100, 0.05, 1024ULL * 1024, "1024K", "0.05 / 21.0",
         "0.42 / 83.9"},
        {100, 1.0, 32ULL * 1024, "32K", "0.03 / 13.1", "0.20 / 52.4"},
        {100, 1.0, 1024ULL * 1024, "1024K", "0.96 / 419",
         "3.97 / 1677"},
        {500, 0.05, 32ULL * 1024, "32K", "0.01 / 3.28", "0.1 / 13.12"},
        {500, 0.05, 1024ULL * 1024, "1024K", "0.24 / 105",
         "2.09 / 419"},
        {500, 1.0, 32ULL * 1024, "32K", "0.15 / 65.5", "0.99 / 262"},
        {500, 1.0, 1024ULL * 1024, "1024K", "4.74 / 2097",
         "19.8 / 8388"},
    };

    ConsoleTable table({"n", "eps=delta", "trials", "JigSaw Mem(GB)",
                        "JigSaw OPs(M)", "JigSaw-M Mem(GB)",
                        "JigSaw-M OPs(M)", "paper JigSaw",
                        "paper JigSaw-M"});
    for (const Row &row : rows) {
        core::ScalabilityConfig js;
        js.nQubits = row.n;
        js.numCpms = row.n;
        js.subsetSizes = {5};
        js.epsilon = row.eps;
        js.delta = row.eps;
        js.trials = row.trials;

        core::ScalabilityConfig jsm = js;
        jsm.subsetSizes = {5, 10, 15, 20};

        table.addRow(
            {std::to_string(row.n), ConsoleTable::num(row.eps, 2),
             row.label,
             ConsoleTable::num(core::reconstructionMemoryBytes(js) / 1e9,
                               2),
             ConsoleTable::num(core::reconstructionOperations(js) / 1e6,
                               2),
             ConsoleTable::num(
                 core::reconstructionMemoryBytes(jsm) / 1e9, 2),
             ConsoleTable::num(
                 core::reconstructionOperations(jsm) / 1e6, 2),
             row.paper_js, row.paper_jsm});
    }
    table.print(std::cout);

    std::cout << "\nexpected shape: both memory and operations are "
                 "linear in T and N (hence in program size) -- JigSaw "
                 "post-processing scales to hundreds of qubits.\n";
    return 0;
}
