/**
 * @file
 * Figure 2: measurement-crosstalk characterization on the IBMQ-Paris
 * model.
 *
 * An N-qubit circuit prepares arbitrary product states with U3 gates;
 * the probe qubit is pinned to physical qubit 6 while the other N-1
 * qubits are randomly mapped, N = 1..10 with 10 samples each. The
 * figure of merit is the probe's readout fidelity, 1 - TVD between
 * its measured marginal and the ideal single-qubit distribution.
 *
 * Paper reference: fidelity decreases monotonically (up to tens of
 * percent for susceptible states) as N grows; the effect is
 * state-dependent.
 */
#include <algorithm>
#include <iostream>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "device/library.h"
#include "sim/simulators.h"

int
main()
{
    using namespace jigsaw;

    const device::DeviceModel dev = device::paris();
    constexpr int probe_physical = 6;
    constexpr int max_n = 10;
    constexpr int samples = 10;
    constexpr std::uint64_t shots = 8192;

    // Four probe states (theta, phi, lambda) as in the paper's
    // methodology. States are chosen with distinct |1> weights
    // (0, 25%, 75%, 100%) so the probe marginal is informative: a
    // readout-flip channel cannot move a uniform 50/50 marginal, so
    // theta = pi/2 would show no TVD degradation by construction.
    struct ProbeState
    {
        const char *name;
        double theta, phi, lambda;
    };
    const std::vector<ProbeState> states{
        {"|0>", 0.0, 0.0, 0.0},
        {"theta=pi/3", M_PI / 3, M_PI / 4, 0.0},
        {"theta=2pi/3", 2.0 * M_PI / 3, M_PI / 4, 0.0},
        {"|1>", M_PI, 0.0, 0.0},
    };

    std::cout << "=== Figure 2: probe-qubit readout fidelity vs number "
                 "of simultaneous measurements ===\n"
              << "device: " << dev.name() << ", probe: physical qubit "
              << probe_physical << ", samples per N: " << samples
              << "\n\n";

    ConsoleTable table({"N", states[0].name, states[1].name,
                        states[2].name, states[3].name});
    Rng rng(206);

    for (int n = 1; n <= max_n; ++n) {
        std::vector<std::string> row{std::to_string(n)};
        for (const ProbeState &state : states) {
            double fidelity_sum = 0.0;
            for (int sample = 0; sample < samples; ++sample) {
                // Probe + N-1 random other physical qubits.
                std::vector<int> others;
                while (static_cast<int>(others.size()) < n - 1) {
                    const int q = static_cast<int>(
                        rng.uniformInt(0, dev.nQubits() - 1));
                    if (q != probe_physical &&
                        std::find(others.begin(), others.end(), q) ==
                            others.end()) {
                        others.push_back(q);
                    }
                }

                circuit::QuantumCircuit qc(dev.nQubits(), n);
                qc.u3(state.theta, state.phi, state.lambda,
                      probe_physical);
                for (int q : others) {
                    qc.u3(rng.uniform(0, M_PI), rng.uniform(0, 2 * M_PI),
                          rng.uniform(0, 2 * M_PI), q);
                }
                qc.measure(probe_physical, 0);
                for (std::size_t i = 0; i < others.size(); ++i)
                    qc.measure(others[i], static_cast<int>(i) + 1);

                sim::NoisySimulator noisy(
                    dev, {.seed = 4000 + static_cast<std::uint64_t>(
                                             n * 100 + sample)});
                const Pmf measured =
                    noisy.run(qc, shots).toPmf().marginal({0});
                sim::IdealSimulator ideal;
                const Pmf reference =
                    ideal.idealPmf(qc).marginal({0});
                fidelity_sum +=
                    1.0 - totalVariationDistance(measured, reference);
            }
            row.push_back(ConsoleTable::num(
                fidelity_sum / static_cast<double>(samples), 4));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nexpected shape (paper Fig 2b): every column "
                 "decreases with N; states with |1> weight degrade "
                 "more (readout relaxation bias).\n";
    return 0;
}
