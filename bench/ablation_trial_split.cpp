/**
 * @file
 * Ablation: the global/subset trial split.
 *
 * The paper uses an equal split "for simplicity because the fidelity
 * saturates for the number of trials used" and notes that under a
 * severely limited budget the split could be tuned (Section 5.4 and
 * Appendix A.2). This ablation sweeps the global fraction at a
 * comfortable budget and at a scarce one.
 */
#include <cstdint>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/jigsaw.h"
#include "device/library.h"
#include "metrics/metrics.h"
#include "sim/simulators.h"
#include "workloads/ghz.h"

int
main()
{
    using namespace jigsaw;

    const device::DeviceModel dev = device::paris();
    const workloads::Ghz ghz(14);
    const std::vector<double> fractions{0.125, 0.25, 0.5, 0.75, 0.875};

    std::cout << "=== Ablation: global-mode trial fraction (GHZ-14, "
              << dev.name() << ") ===\n\n";

    for (const std::uint64_t trials : {32768ULL, 2048ULL}) {
        sim::NoisySimulator executor(dev, {.seed = 2222});
        const Pmf baseline =
            core::runBaseline(ghz.circuit(), dev, executor, trials);
        const double base = std::max(metrics::pst(baseline, ghz), 1e-6);

        ConsoleTable table({"global fraction", "rel PST",
                            "global trials", "trials per CPM"});
        for (double fraction : fractions) {
            core::JigsawOptions options;
            options.globalFraction = fraction;
            const core::JigsawResult run = core::runJigsaw(
                ghz.circuit(), dev, executor, trials, options);
            table.addRow(
                {ConsoleTable::num(fraction, 3),
                 ConsoleTable::num(
                     metrics::pst(run.output, ghz) / base, 2),
                 std::to_string(run.globalTrials),
                 std::to_string(run.cpms.front().trials)});
        }
        std::cout << "budget: " << trials << " trials (baseline PST "
                  << ConsoleTable::num(base, 3) << ")\n";
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "expected shape: at a comfortable budget the gain is "
                 "flat across the split (the paper's rationale for "
                 "0.5); at a scarce budget extremes hurt -- too few "
                 "global trials starve the prior, too few subset "
                 "trials starve the evidence.\n";
    return 0;
}
