/**
 * @file
 * Figure 11: mean relative PST per device for EDM, JigSaw without
 * recompilation (measurement subsetting only), JigSaw with
 * recompilation, and JigSaw-M.
 *
 * Paper reference: subsetting alone averages 1.92x (up to 3.26x);
 * recompilation lifts JigSaw to 2.91x (up to 7.8x); JigSaw-M reaches
 * 3.65x (up to 8.4x).
 */
#include <cstdint>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "metrics/metrics.h"
#include "suite_runner.h"

int
main()
{
    using namespace jigsaw;
    constexpr std::uint64_t trials = 32768;

    std::cout << "=== Figure 11: mean relative PST per device ===\n"
              << "trials per scheme: " << trials << "\n\n";

    const bench::SuiteRun run = bench::runEvaluationSuite(trials, 1111);

    ConsoleTable table({"device", "EDM", "JigSaw w/o recomp",
                        "JigSaw", "JigSaw-M"});
    for (int d = 0; d < static_cast<int>(run.devices.size()); ++d) {
        std::vector<double> edm, js_nr, js, jsm;
        for (int w = 0; w < static_cast<int>(run.workloads.size());
             ++w) {
            const workloads::Workload &workload =
                *run.workloads[static_cast<std::size_t>(w)];
            const bench::SuiteCell &cell = run.cell(d, w);
            const double base =
                std::max(metrics::pst(cell.baseline, workload), 1e-6);
            edm.push_back(metrics::pst(cell.edm, workload) / base);
            js_nr.push_back(
                metrics::pst(cell.jigsawNoRecomp, workload) / base);
            js.push_back(metrics::pst(cell.jigsaw, workload) / base);
            jsm.push_back(metrics::pst(cell.jigsawM, workload) / base);
        }
        table.addRow({run.devices[static_cast<std::size_t>(d)].name(),
                      ConsoleTable::num(bench::geomeanFloored(edm), 2),
                      ConsoleTable::num(bench::geomeanFloored(js_nr), 2),
                      ConsoleTable::num(bench::geomeanFloored(js), 2),
                      ConsoleTable::num(bench::geomeanFloored(jsm), 2)});
    }
    table.print(std::cout);

    std::cout << "\npaper: EDM ~1, subsetting-only 1.92x avg, JigSaw "
                 "2.91x avg, JigSaw-M 3.65x avg.\n"
              << "expected shape per device: EDM < w/o recomp < JigSaw "
                 "< JigSaw-M.\n";
    return 0;
}
