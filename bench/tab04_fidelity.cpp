/**
 * @file
 * Table 4: Fidelity (1 - TVD against the noise-free distribution) of
 * EDM, JigSaw, and JigSaw-M relative to the baseline — min / max /
 * average per device.
 *
 * Paper reference:
 *   Toronto:   EDM 0.78/1.22/0.96  JigSaw 1.07/7.86/2.17  JigSaw-M 1.07/8.41/2.54
 *   Paris:     EDM 0.77/2.54/1.19  JigSaw 1.09/5.07/2.33  JigSaw-M 1.11/6.52/2.77
 *   Manhattan: EDM 0.43/1.62/0.93  JigSaw 1.18/3.26/1.84  JigSaw-M 1.28/4.43/2.10
 */
#include <cstdint>
#include <iostream>
#include <vector>

#include "common/statistics.h"
#include "common/table.h"
#include "metrics/metrics.h"
#include "suite_runner.h"

int
main()
{
    using namespace jigsaw;
    constexpr std::uint64_t trials = 32768;

    std::cout << "=== Table 4: relative Fidelity (1 - TVD) ===\n"
              << "trials per scheme: " << trials << "\n\n";

    const bench::SuiteRun run = bench::runEvaluationSuite(trials, 404);

    ConsoleTable table({"device", "scheme", "min", "max", "avg"});
    const char *paper[3][3] = {
        {"0.78/1.22/0.96", "1.07/7.86/2.17", "1.07/8.41/2.54"},
        {"0.77/2.54/1.19", "1.09/5.07/2.33", "1.11/6.52/2.77"},
        {"0.43/1.62/0.93", "1.18/3.26/1.84", "1.28/4.43/2.10"},
    };

    for (int d = 0; d < static_cast<int>(run.devices.size()); ++d) {
        std::vector<double> edm, js, jsm;
        for (int w = 0; w < static_cast<int>(run.workloads.size());
             ++w) {
            const workloads::Workload &workload =
                *run.workloads[static_cast<std::size_t>(w)];
            const bench::SuiteCell &cell = run.cell(d, w);
            const double base = std::max(
                metrics::fidelity(cell.baseline, workload), 1e-6);
            edm.push_back(metrics::fidelity(cell.edm, workload) / base);
            js.push_back(metrics::fidelity(cell.jigsaw, workload) /
                         base);
            jsm.push_back(metrics::fidelity(cell.jigsawM, workload) /
                          base);
        }
        const std::string dev_name =
            run.devices[static_cast<std::size_t>(d)].name();
        auto add = [&](const char *scheme,
                       const std::vector<double> &xs, const char *ref) {
            table.addRow({dev_name, scheme,
                          ConsoleTable::num(stats::min(xs), 2),
                          ConsoleTable::num(stats::max(xs), 2),
                          ConsoleTable::num(bench::geomeanFloored(xs),
                                            2)});
            table.addRow({"", std::string("  (paper: ") + ref + ")", "",
                          "", ""});
        };
        add("EDM", edm, paper[d][0]);
        add("JigSaw", js, paper[d][1]);
        add("JigSaw-M", jsm, paper[d][2]);
    }
    table.print(std::cout);

    std::cout << "\nexpected shape: EDM hovers near 1 (it can degrade "
                 "fidelity); JigSaw and JigSaw-M improve it on every "
                 "device, JigSaw-M the most.\n";
    return 0;
}
