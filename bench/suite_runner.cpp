#include "suite_runner.h"

#include <cmath>
#include <iostream>

#include "common/error.h"
#include "core/jigsaw.h"
#include "device/library.h"
#include "mitigation/edm.h"
#include "sim/simulators.h"
#include "workloads/registry.h"

namespace jigsaw {
namespace bench {

const SuiteCell &
SuiteRun::cell(int d, int w) const
{
    for (const SuiteCell &c : cells) {
        if (c.deviceIndex == d && c.workloadIndex == w)
            return c;
    }
    fatalIf(true, "SuiteRun: no such cell");
    return cells.front(); // unreachable
}

SuiteRun
runEvaluationSuite(std::uint64_t trials, std::uint64_t seed,
                   bool qaoa_only, bool quiet)
{
    SuiteRun run;
    run.devices = device::evaluationDevices();
    run.workloads = qaoa_only ? workloads::qaoaBenchmarks()
                              : workloads::paperBenchmarks();

    for (int d = 0; d < static_cast<int>(run.devices.size()); ++d) {
        const device::DeviceModel &dev =
            run.devices[static_cast<std::size_t>(d)];
        for (int w = 0; w < static_cast<int>(run.workloads.size()); ++w) {
            const workloads::Workload &workload =
                *run.workloads[static_cast<std::size_t>(w)];
            if (!quiet) {
                std::cerr << "  [suite] " << dev.name() << " / "
                          << workload.name() << "\n";
            }
            const std::uint64_t cell_seed =
                seed + 1000003ULL * static_cast<std::uint64_t>(d) +
                10007ULL * static_cast<std::uint64_t>(w);
            sim::NoisySimulator executor(dev, {.seed = cell_seed});

            const Pmf baseline = core::runBaseline(workload.circuit(),
                                                   dev, executor, trials);
            const Pmf edm = mitigation::runEdm(workload.circuit(), dev,
                                               executor, trials, 4)
                                .output;

            core::JigsawOptions no_recomp;
            no_recomp.recompileCpms = false;
            const Pmf jigsaw_no_recomp =
                core::runJigsaw(workload.circuit(), dev, executor,
                                trials, no_recomp)
                    .output;
            const Pmf jigsaw = core::runJigsaw(workload.circuit(), dev,
                                               executor, trials)
                                   .output;
            const Pmf jigsaw_m =
                core::runJigsaw(workload.circuit(), dev, executor,
                                trials, core::jigsawMOptions())
                    .output;

            run.cells.push_back({d, w, baseline, edm, jigsaw_no_recomp,
                                 jigsaw, jigsaw_m});
        }
    }
    return run;
}

double
geomeanFloored(const std::vector<double> &xs, double floor)
{
    fatalIf(xs.empty(), "geomeanFloored: empty vector");
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(std::max(x, floor));
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace bench
} // namespace jigsaw
