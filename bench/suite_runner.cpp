#include "suite_runner.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "common/error.h"
#include "compiler/transpiler.h"
#include "core/jigsaw.h"
#include "core/service.h"
#include "device/library.h"
#include "mitigation/edm.h"
#include "perf_json.h"
#include "sim/simulators.h"
#include "workloads/registry.h"

namespace jigsaw {
namespace bench {

namespace {

/** Run @p fn, add its wall milliseconds to @p acc, return its value. */
template <typename Fn>
auto
timed(double &acc, Fn &&fn)
{
    const auto start = std::chrono::steady_clock::now();
    auto result = fn();
    acc += std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
               .count();
    return result;
}

} // namespace

const SuiteCell &
SuiteRun::cell(int d, int w) const
{
    for (const SuiteCell &c : cells) {
        if (c.deviceIndex == d && c.workloadIndex == w)
            return c;
    }
    fatalIf(true, "SuiteRun: no such cell");
    return cells.front(); // unreachable
}

SuiteRun
runEvaluationSuite(std::uint64_t trials, std::uint64_t seed,
                   bool qaoa_only, bool quiet)
{
    SuiteRun run;
    run.devices = device::evaluationDevices();
    run.workloads = qaoa_only ? workloads::qaoaBenchmarks()
                              : workloads::paperBenchmarks();
    const obs::ProcessCounters counters0 =
        obs::ProcessCounters::snapshot();
    const auto sweep_start = std::chrono::steady_clock::now();

    for (int d = 0; d < static_cast<int>(run.devices.size()); ++d) {
        const device::DeviceModel &dev =
            run.devices[static_cast<std::size_t>(d)];
        for (int w = 0; w < static_cast<int>(run.workloads.size()); ++w) {
            const workloads::Workload &workload =
                *run.workloads[static_cast<std::size_t>(w)];
            if (!quiet) {
                std::cerr << "  [suite] " << dev.name() << " / "
                          << workload.name() << "\n";
            }
            const std::uint64_t cell_seed =
                seed + 1000003ULL * static_cast<std::uint64_t>(d) +
                10007ULL * static_cast<std::uint64_t>(w);
            sim::NoisySimulator executor(dev, {.seed = cell_seed});

            const Pmf baseline = timed(run.baselineMs, [&] {
                return core::runBaseline(workload.circuit(), dev,
                                         executor, trials);
            });
            const Pmf edm = timed(run.edmMs, [&] {
                return mitigation::runEdm(workload.circuit(), dev,
                                          executor, trials, 4)
                    .output;
            });

            core::JigsawOptions no_recomp;
            no_recomp.recompileCpms = false;
            const Pmf jigsaw_no_recomp = timed(run.jigsawNoRecompMs, [&] {
                return core::runJigsaw(workload.circuit(), dev, executor,
                                       trials, no_recomp)
                    .output;
            });
            const Pmf jigsaw = timed(run.jigsawMs, [&] {
                return core::runJigsaw(workload.circuit(), dev, executor,
                                       trials)
                    .output;
            });
            const Pmf jigsaw_m = timed(run.jigsawMMs, [&] {
                return core::runJigsaw(workload.circuit(), dev, executor,
                                       trials, core::jigsawMOptions())
                    .output;
            });

            run.cells.push_back({d, w, baseline, edm, jigsaw_no_recomp,
                                 jigsaw, jigsaw_m});
            run.executorCacheHits += executor.cacheHits();
            run.executorCacheMisses += executor.cacheMisses();
            run.batchEvolutions += executor.batchStats().baseEvolutions;
            run.marginalsServed += executor.batchStats().marginalsServed;
            run.evolutionsSaved +=
                executor.batchStats().evolutionsSaved();
            run.prefixStateHits += executor.skeletonCacheHits();
            run.prefixStateMisses += executor.skeletonCacheMisses();
        }
    }
    run.totalMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - sweep_start)
                      .count();
    run.counters = obs::ProcessCounters::snapshot().since(counters0);

    if (const char *path = std::getenv("JIGSAW_SUITE_TIMINGS_JSON")) {
        if (path[0] != '\0' && !writeSuiteTimings(run, path) && !quiet)
            std::cerr << "  [suite] cannot write timings to " << path
                      << "\n";
    }
    return run;
}

bool
writeSuiteTimings(const SuiteRun &run, const std::string &path)
{
    PerfReport report("evaluation sweep: " +
                      std::to_string(run.devices.size()) + " devices x " +
                      std::to_string(run.workloads.size()) +
                      " workloads");
    report.addTiming("suite/baseline", run.baselineMs);
    report.addTiming("suite/edm", run.edmMs);
    report.addTiming("suite/jigsaw_no_recompile", run.jigsawNoRecompMs);
    report.addTiming("suite/jigsaw", run.jigsawMs);
    report.addTiming("suite/jigsaw_m", run.jigsawMMs);
    report.addTiming("suite/total", run.totalMs);
    // Counters, not milliseconds: cache and batch effectiveness of the
    // sweep (see docs/performance.md).
    report.addTiming("suite/executor_cache_hits",
                     static_cast<double>(run.executorCacheHits));
    report.addTiming("suite/executor_cache_misses",
                     static_cast<double>(run.executorCacheMisses));
    report.addTiming("suite/batch_evolutions",
                     static_cast<double>(run.batchEvolutions));
    report.addTiming("suite/batch_marginals_served",
                     static_cast<double>(run.marginalsServed));
    report.addTiming("suite/batch_evolutions_saved",
                     static_cast<double>(run.evolutionsSaved));
    // Process-wide counters (the transpile memo and the SIMD
    // kernel-dispatch totals) come from the shared ProcessCounters
    // snapshot, so these entries, the Prometheus exposition, and the
    // perf bench's dispatch-mix table can never disagree on a name or
    // a source.
    for (const obs::ProcessCounters::Entry &entry :
         run.counters.transpileEntries()) {
        report.addTiming(std::string("suite/") + entry.name,
                         static_cast<double>(entry.value));
    }
    report.addTiming("suite/prefix_state_hits",
                     static_cast<double>(run.prefixStateHits));
    report.addTiming("suite/prefix_state_misses",
                     static_cast<double>(run.prefixStateMisses));
    for (const obs::ProcessCounters::Entry &entry :
         run.counters.simdEntries()) {
        report.addTiming(entry.name, static_cast<double>(entry.value));
    }
    return report.write(path);
}

namespace {

/** Exact (bitwise) PMF equality: same support, same stored doubles. */
bool
pmfsIdentical(const Pmf &a, const Pmf &b)
{
    if (a.nQubits() != b.nQubits() || a.support() != b.support())
        return false;
    for (const auto &[outcome, p] : a.probabilities()) {
        const double q = b.prob(outcome);
        if (p != q)
            return false;
    }
    return true;
}

} // namespace

ServiceSuiteRun
runEvaluationSuiteService(std::uint64_t trials, std::uint64_t seed,
                          bool qaoa_only, bool quiet,
                          bool compare_sequential)
{
    const std::vector<device::DeviceModel> devices =
        device::evaluationDevices();
    const std::vector<std::unique_ptr<workloads::Workload>> workload_set =
        qaoa_only ? workloads::qaoaBenchmarks()
                  : workloads::paperBenchmarks();

    // One program per (cell, scheme): the three JigSaw schemes of the
    // sweep, each with a private deterministically seeded executor.
    core::JigsawOptions no_recomp;
    no_recomp.recompileCpms = false;
    const std::vector<core::JigsawOptions> schemes = {
        no_recomp, core::JigsawOptions{}, core::jigsawMOptions()};

    std::vector<core::ServiceProgram> programs;
    for (int d = 0; d < static_cast<int>(devices.size()); ++d) {
        for (int w = 0; w < static_cast<int>(workload_set.size()); ++w) {
            const std::uint64_t cell_seed =
                seed + 1000003ULL * static_cast<std::uint64_t>(d) +
                10007ULL * static_cast<std::uint64_t>(w);
            for (std::size_t sc = 0; sc < schemes.size(); ++sc) {
                programs.emplace_back(
                    workload_set[static_cast<std::size_t>(w)]->circuit(),
                    devices[static_cast<std::size_t>(d)], trials,
                    schemes[sc], cell_seed + 31ULL * sc);
            }
        }
    }

    ServiceSuiteRun run;
    run.programs = programs.size();

    std::vector<core::JigsawResult> sequential;
    if (compare_sequential) {
        compiler::clearTranspileCache();
        const auto start = std::chrono::steady_clock::now();
        sequential = core::runProgramsSequentially(programs);
        run.sequentialMs = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
        if (!quiet) {
            std::cerr << "  [suite] service mode: " << programs.size()
                      << " programs sequential in " << run.sequentialMs
                      << " ms\n";
        }
    }

    compiler::clearTranspileCache();
    core::JigsawService service;
    const std::vector<core::JigsawResult> results = service.run(programs);
    run.serviceMs = service.stats().wallMs;
    run.latencyP50Ms = service.stats().latencyPercentileMs(0.5);
    run.latencyP95Ms = service.stats().latencyPercentileMs(0.95);
    run.mergedPrograms = service.stats().mergedPrograms;
    run.crossProgramGroups = service.stats().crossProgramGroups;
    if (!quiet) {
        std::cerr << "  [suite] service mode: " << programs.size()
                  << " programs concurrent in " << run.serviceMs
                  << " ms (" << run.programsPerSecond()
                  << " programs/s, latency p50 " << run.latencyP50Ms
                  << " ms / p95 " << run.latencyP95Ms << " ms, "
                  << run.mergedPrograms << " merged over "
                  << run.crossProgramGroups
                  << " cross-program groups)\n";
    }

    if (compare_sequential) {
        for (std::size_t i = 0; i < programs.size(); ++i) {
            if (!pmfsIdentical(sequential[i].output,
                               results[i].output)) {
                run.outputsMatch = false;
                if (!quiet) {
                    std::cerr << "  [suite] service mismatch on "
                                 "program "
                              << i << "\n";
                }
            }
        }
    }
    return run;
}

double
geomeanFloored(const std::vector<double> &xs, double floor)
{
    fatalIf(xs.empty(), "geomeanFloored: empty vector");
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(std::max(x, floor));
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace bench
} // namespace jigsaw
