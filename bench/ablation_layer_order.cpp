/**
 * @file
 * Ablation: JigSaw-M reconstruction ordering (paper Section 4.4.2).
 *
 * The paper argues for top-down ordering — update with the largest
 * (most correlated) subsets first so the global correlation is
 * maximally preserved, then refine with the highest-fidelity small
 * subsets. This ablation reruns the same evidence bottom-up.
 */
#include <cstdint>
#include <iostream>

#include "common/table.h"
#include "core/jigsaw.h"
#include "device/library.h"
#include "metrics/metrics.h"
#include "sim/simulators.h"
#include "workloads/registry.h"

int
main()
{
    using namespace jigsaw;
    constexpr std::uint64_t trials = 32768;

    std::cout << "=== Ablation: JigSaw-M layer order (top-down vs "
                 "bottom-up) ===\n"
              << "trials per scheme: " << trials << "\n\n";

    const device::DeviceModel dev = device::toronto();
    ConsoleTable table({"benchmark", "baseline PST", "top-down rel",
                        "bottom-up rel"});

    for (const char *name :
         {"GHZ-14", "Graycode-18", "QAOA-10 p2", "BV-6"}) {
        const auto workload = workloads::makeWorkload(name);
        sim::NoisySimulator executor(dev, {.seed = 2121});

        const Pmf baseline = core::runBaseline(workload->circuit(), dev,
                                               executor, trials);
        const double base =
            std::max(metrics::pst(baseline, *workload), 1e-6);

        // One JigSaw-M run supplies the evidence; both orderings
        // post-process the same global PMF and marginals.
        const core::JigsawResult run = core::runJigsaw(
            workload->circuit(), dev, executor, trials,
            core::jigsawMOptions());

        core::ReconstructionOptions bottom_up;
        bottom_up.layerOrder = core::LayerOrder::BottomUp;
        const Pmf reversed = core::multiLayerReconstruct(
            run.globalPmf, run.marginals(), bottom_up);

        table.addRow(
            {workload->name(), ConsoleTable::num(base, 3),
             ConsoleTable::num(metrics::pst(run.output, *workload) /
                                   base, 2),
             ConsoleTable::num(metrics::pst(reversed, *workload) / base,
                               2)});
    }
    table.print(std::cout);

    std::cout << "\nexpected shape: top-down >= bottom-up (small "
                 "subsets applied first erase correlation the large "
                 "subsets can no longer restore).\n";
    return 0;
}
