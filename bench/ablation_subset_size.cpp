/**
 * @file
 * Ablation: single CPM subset size (the fidelity/correlation
 * trade-off of paper Section 4.4).
 *
 * Small subsets measure fewer qubits (fewer flips, less crosstalk,
 * better recompilation targets) but capture little correlation; large
 * subsets capture more correlation but read out worse. JigSaw-M
 * exists because no single size wins everywhere.
 */
#include <cstdint>
#include <iostream>

#include "common/table.h"
#include "core/jigsaw.h"
#include "device/library.h"
#include "metrics/metrics.h"
#include "sim/simulators.h"
#include "workloads/registry.h"

int
main()
{
    using namespace jigsaw;
    constexpr std::uint64_t trials = 32768;

    std::cout << "=== Ablation: single CPM subset size ===\n"
              << "trials per scheme: " << trials << "\n\n";

    const device::DeviceModel dev = device::toronto();

    for (const char *name : {"GHZ-14", "Graycode-18"}) {
        const auto workload = workloads::makeWorkload(name);
        sim::NoisySimulator executor(dev, {.seed = 2323});

        const Pmf baseline = core::runBaseline(workload->circuit(), dev,
                                               executor, trials);
        const double base =
            std::max(metrics::pst(baseline, *workload), 1e-6);

        ConsoleTable table({"subset size", "rel PST", "rel Fidelity",
                            "mean CPM meas. success"});
        for (int size : {2, 3, 4, 5, 6}) {
            core::JigsawOptions options;
            options.subsetSizes = {size};
            const core::JigsawResult run = core::runJigsaw(
                workload->circuit(), dev, executor, trials, options);

            double mean_success = 0.0;
            for (const core::CpmRecord &cpm : run.cpms)
                mean_success += cpm.compiled.measurementSuccess;
            mean_success /= static_cast<double>(run.cpms.size());

            table.addRow(
                {std::to_string(size),
                 ConsoleTable::num(
                     metrics::pst(run.output, *workload) / base, 2),
                 ConsoleTable::num(
                     metrics::fidelity(run.output, *workload) /
                         std::max(metrics::fidelity(baseline, *workload),
                                  1e-6),
                     2),
                 ConsoleTable::num(mean_success, 4)});
        }
        std::cout << workload->name() << " (baseline PST "
                  << ConsoleTable::num(base, 3) << ")\n";
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "expected shape: per-CPM measurement success falls as "
                 "the subset grows (the fidelity side of the "
                 "trade-off), while mid sizes can win on PST by adding "
                 "correlation -- the mixed-size JigSaw-M beats any "
                 "single size (Figure 8 vs this table).\n";
    return 0;
}
