/**
 * @file
 * Table 1: measurement error rates on the Google-Sycamore model,
 * isolated vs simultaneous.
 *
 * Experiment: for every qubit, prepare |0> and |1> and read it out
 * (a) alone and (b) together with every other qubit, estimating the
 * state-averaged error rate from the flip statistics. The ideal
 * outcome of these product-state circuits is known exactly, so the
 * readout channel is exercised directly (a 54-qubit state vector is
 * neither needed nor possible).
 *
 * Paper reference (Table 1, %):
 *   isolated:     min 2.60  avg 6.14  median 5.70  max 11.7
 *   simultaneous: min 3.30  avg 7.73  median 7.10  max 20.9
 */
#include <iostream>
#include <vector>

#include "common/rng.h"
#include "common/statistics.h"
#include "common/table.h"
#include "device/library.h"
#include "sim/noise_model.h"

int
main()
{
    using namespace jigsaw;

    const device::DeviceModel dev = device::sycamore();
    const int n = dev.nQubits();
    constexpr int shots = 40000;
    Rng rng(11);

    auto estimate_error = [&](int qubit, bool simultaneous) {
        // Measure either just `qubit` or all device qubits at once;
        // clbits are capped at 64 so measure the first 54 qubits.
        circuit::QuantumCircuit qc(n, simultaneous ? n : 1);
        qc.x(qubit); // prepared |1> half; |0> handled by symmetry below
        int clbit_of_qubit = 0;
        if (simultaneous) {
            for (int q = 0; q < n; ++q)
                qc.measure(q, q);
            clbit_of_qubit = qubit;
        } else {
            qc.measure(qubit, 0);
        }
        const sim::MeasurementChannel channel(qc, dev);

        // Prepared |1>: count reads of 0; prepared |0>: reads of 1.
        int flips1 = 0;
        int flips0 = 0;
        const BasisState prepared1 =
            1ULL << clbit_of_qubit; // only this qubit is |1>
        for (int t = 0; t < shots; ++t) {
            if (!getBit(channel.apply(prepared1, rng), clbit_of_qubit))
                ++flips1;
            if (getBit(channel.apply(0, rng), clbit_of_qubit))
                ++flips0;
        }
        return 0.5 * (static_cast<double>(flips0) + flips1) /
               static_cast<double>(shots);
    };

    std::vector<double> isolated;
    std::vector<double> simultaneous;
    for (int q = 0; q < n; ++q) {
        isolated.push_back(100.0 * estimate_error(q, false));
        simultaneous.push_back(100.0 * estimate_error(q, true));
    }

    std::cout << "=== Table 1: measurement error rates on the Sycamore "
                 "model (%) ===\n"
              << "qubits: " << n << ", shots per setting: " << shots
              << "\n\n";
    ConsoleTable table({"mode", "min", "avg", "median", "max"});
    auto add = [&table](const char *name, const std::vector<double> &xs,
                        const char *paper) {
        table.addRow({name, ConsoleTable::num(stats::min(xs), 2),
                      ConsoleTable::num(stats::mean(xs), 2),
                      ConsoleTable::num(stats::median(xs), 2),
                      ConsoleTable::num(stats::max(xs), 2)});
        table.addRow({std::string("  (paper: ") + paper + ")", "", "",
                      "", ""});
    };
    add("isolated", isolated, "2.60 / 6.14 / 5.70 / 11.7");
    add("simultaneous", simultaneous, "3.30 / 7.73 / 7.10 / 20.9");
    table.print(std::cout);

    std::cout << "\nexpected shape: simultaneous > isolated on every "
                 "statistic (measurement crosstalk).\n";
    return 0;
}
