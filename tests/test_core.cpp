/**
 * @file
 * Core JigSaw tests: subset generation (Section 4.2.1), the Bayesian
 * reconstruction against the paper's Figure 6 worked example, the
 * multi-layer ordering of Section 4.4.2, the driver's trial
 * accounting, and the Section 7 scalability model against Table 7.
 */
#include <set>

#include <gtest/gtest.h>

#include "core/bayesian.h"
#include "core/jigsaw.h"
#include "core/scalability.h"
#include "core/subsets.h"
#include "device/library.h"
#include "sim/eps.h"
#include "metrics/metrics.h"
#include "workloads/ghz.h"

namespace jigsaw {
namespace core {
namespace {

// --------------------------------------------------------------- subsets

TEST(Subsets, SlidingWindowMatchesPaperExample)
{
    // Paper Section 4.2.1: 4-qubit program -> (q0,q1), (q1,q2),
    // (q2,q3), (q0,q3).
    const std::vector<Subset> subsets = slidingWindowSubsets(4, 2);
    ASSERT_EQ(subsets.size(), 4u);
    EXPECT_EQ(subsets[0], (Subset{0, 1}));
    EXPECT_EQ(subsets[1], (Subset{1, 2}));
    EXPECT_EQ(subsets[2], (Subset{2, 3}));
    EXPECT_EQ(subsets[3], (Subset{0, 3}));
}

TEST(Subsets, SlidingWindowCountEqualsQubits)
{
    for (int n = 3; n <= 12; ++n) {
        for (int s = 2; s < n; ++s) {
            const std::vector<Subset> subsets =
                slidingWindowSubsets(n, s);
            EXPECT_EQ(subsets.size(), static_cast<std::size_t>(n))
                << "n=" << n << " s=" << s;
            std::set<Subset> unique(subsets.begin(), subsets.end());
            EXPECT_EQ(unique.size(), subsets.size());
            for (const Subset &sub : subsets) {
                EXPECT_EQ(sub.size(), static_cast<std::size_t>(s));
                EXPECT_TRUE(std::is_sorted(sub.begin(), sub.end()));
            }
        }
    }
}

TEST(Subsets, SlidingWindowFullSizeIsSingle)
{
    const std::vector<Subset> subsets = slidingWindowSubsets(4, 4);
    ASSERT_EQ(subsets.size(), 1u);
    EXPECT_EQ(subsets[0], (Subset{0, 1, 2, 3}));
}

TEST(Subsets, SlidingWindowCoversEveryQubit)
{
    const std::vector<Subset> subsets = slidingWindowSubsets(9, 3);
    std::set<int> covered;
    for (const Subset &s : subsets)
        covered.insert(s.begin(), s.end());
    EXPECT_EQ(covered.size(), 9u);
}

TEST(Subsets, RandomDistinctAndSized)
{
    Rng rng(3);
    const std::vector<Subset> subsets = randomSubsets(12, 2, 20, rng);
    EXPECT_EQ(subsets.size(), 20u);
    std::set<Subset> unique(subsets.begin(), subsets.end());
    EXPECT_EQ(unique.size(), 20u);
}

TEST(Subsets, RandomCappedAtCombinations)
{
    Rng rng(3);
    // C(4,2) = 6 possibilities.
    const std::vector<Subset> subsets = randomSubsets(4, 2, 100, rng);
    EXPECT_EQ(subsets.size(), 6u);
}

TEST(Subsets, CoveringRandomCoversAll)
{
    Rng rng(5);
    for (int round = 0; round < 10; ++round) {
        const std::vector<Subset> subsets =
            coveringRandomSubsets(12, 2, rng);
        EXPECT_EQ(subsets.size(), 12u);
        std::set<int> covered;
        for (const Subset &s : subsets)
            covered.insert(s.begin(), s.end());
        EXPECT_EQ(covered.size(), 12u);
    }
}

TEST(Subsets, RejectsBadSize)
{
    Rng rng(1);
    EXPECT_THROW(slidingWindowSubsets(4, 0), std::invalid_argument);
    EXPECT_THROW(slidingWindowSubsets(4, 5), std::invalid_argument);
    EXPECT_THROW(randomSubsets(4, 5, 1, rng), std::invalid_argument);
}

// -------------------------------------------------------------- bayesian

/** The paper's Figure 6 instance: global PMF over (Q2,Q1,Q0) and the
 *  marginal from a CPM measuring (Q1,Q0). */
Pmf
figure6Global()
{
    Pmf p(3);
    p.set(0b000, 0.10);
    p.set(0b001, 0.10);
    p.set(0b010, 0.15);
    p.set(0b011, 0.15);
    p.set(0b100, 0.10);
    p.set(0b101, 0.05);
    p.set(0b110, 0.15);
    p.set(0b111, 0.20);
    return p;
}

Marginal
figure6Marginal()
{
    Pmf local(2);
    local.set(0b00, 0.1);
    local.set(0b01, 0.1);
    local.set(0b10, 0.2);
    local.set(0b11, 0.6);
    return {local, {0, 1}};
}

TEST(Bayesian, Figure6UpdateCoefficientsAndPosterior)
{
    // Hand-compute Algorithm 1 for the Figure 6 example. Raw
    // posteriors (coefficient * pry / (1 - pry)):
    //   000: 0.5    * 0.1/0.9 = 0.055556   100: same    = 0.055556
    //   001: 0.6667 * 0.1/0.9 = 0.074074   101: 0.3333* = 0.037037
    //   010: 0.5    * 0.2/0.8 = 0.125      110: same    = 0.125
    //   011: 0.4286 * 0.6/0.4 = 0.642857   111: 0.5714* = 0.857143
    // (matches the paper's Ppost column up to its 2-digit rounding).
    const Pmf posterior =
        bayesianUpdate(figure6Global(), figure6Marginal());

    const double raw[8] = {0.0555556, 0.0740741, 0.125,     0.6428571,
                           0.0555556, 0.0370370, 0.125,     0.8571429};
    double total = 0.0;
    for (double r : raw)
        total += r;
    for (BasisState s = 0; s < 8; ++s)
        EXPECT_NEAR(posterior.prob(s), raw[s] / total, 1e-6)
            << "outcome " << s;
    EXPECT_NEAR(posterior.totalMass(), 1.0, 1e-12);
}

TEST(Bayesian, Figure6BoostsCorrectAnswer)
{
    // The paper reports the correct answer 111's probability rising
    // 2.2x after reconstruction with all marginals; with the single
    // published marginal it must already rise and become the mode.
    const Pmf out = bayesianReconstruct(figure6Global(),
                                        {figure6Marginal()});
    EXPECT_GT(out.prob(0b111), 0.20);
    EXPECT_EQ(out.mode(), 0b111ULL);
}

TEST(Bayesian, UpdatePreservesSupport)
{
    const Pmf prior = figure6Global();
    const Pmf posterior = bayesianUpdate(prior, figure6Marginal());
    EXPECT_EQ(posterior.support(), prior.support());
    for (const auto &[outcome, p] : posterior.probabilities()) {
        EXPECT_GT(prior.prob(outcome), 0.0);
        EXPECT_GE(p, 0.0);
    }
}

TEST(Bayesian, UnseenMarginalValueKeepsPrior)
{
    // A marginal that never observed subset value 1 leaves outcomes
    // with that value at their prior (unnormalized) probability.
    Pmf prior(2);
    prior.set(0b00, 0.5);
    prior.set(0b01, 0.5);
    Pmf local(1);
    local.set(0b0, 1.0); // only saw q0 = 0
    const Pmf posterior = bayesianUpdate(prior, {local, {0}});
    // 0b01 (q0=1) kept prior 0.5; 0b00 got 1.0 * ~1e12 clamped...
    // with pry clamped below 1 the 0b00 mass dominates overwhelmingly.
    EXPECT_GT(posterior.prob(0b00), 0.99);
}

TEST(Bayesian, PerfectMarginalSharpensTruth)
{
    // Global PMF spread by noise around truth 0b1111; local PMFs
    // peaked at the true subset values must boost the truth.
    Pmf global(4);
    global.set(0b1111, 0.30);
    global.set(0b0111, 0.15);
    global.set(0b1011, 0.15);
    global.set(0b1101, 0.15);
    global.set(0b1110, 0.15);
    global.set(0b0000, 0.10);

    std::vector<Marginal> marginals;
    for (const Subset &s : slidingWindowSubsets(4, 2)) {
        Pmf local(2);
        local.set(0b11, 0.96);
        local.set(0b00, 0.02);
        local.set(0b01, 0.01);
        local.set(0b10, 0.01);
        marginals.push_back({local, s});
    }
    const Pmf out = bayesianReconstruct(global, marginals);
    EXPECT_GT(out.prob(0b1111), global.prob(0b1111));
    EXPECT_EQ(out.mode(), 0b1111ULL);
}

TEST(Bayesian, EmptyMarginalListReturnsGlobal)
{
    const Pmf global = figure6Global();
    const Pmf out = bayesianReconstruct(global, {});
    EXPECT_LT(totalVariationDistance(global, out), 1e-12);
}

TEST(Bayesian, OrderIndependentWithinRound)
{
    const Pmf global = figure6Global();
    Pmf local2(2);
    local2.set(0b01, 0.6);
    local2.set(0b11, 0.4);
    const Marginal m0 = figure6Marginal();
    const Marginal m1{local2, {1, 2}};

    ReconstructionOptions one_round;
    one_round.maxRounds = 1;
    const Pmf a = bayesianReconstruct(global, {m0, m1}, one_round);
    const Pmf b = bayesianReconstruct(global, {m1, m0}, one_round);
    EXPECT_LT(totalVariationDistance(a, b), 1e-12);
}

TEST(Bayesian, ReconstructConverges)
{
    // With generous rounds the output must stop moving: one more
    // round changes nothing beyond the tolerance.
    const Pmf global = figure6Global();
    const std::vector<Marginal> ms{figure6Marginal()};
    ReconstructionOptions opts;
    opts.maxRounds = 32;
    opts.tolerance = 1e-10;
    const Pmf out = bayesianReconstruct(global, ms, opts);

    // Re-running from the converged point moves at most tolerance.
    ReconstructionOptions one;
    one.maxRounds = 1;
    const Pmf next = bayesianReconstruct(out, ms, one);
    EXPECT_LT(hellingerDistance(out, next), 1e-3);
}

TEST(Bayesian, RejectsBadMarginal)
{
    const Pmf global = figure6Global();
    Pmf local(2);
    local.set(0, 1.0);
    EXPECT_THROW(bayesianUpdate(global, {local, {}}),
                 std::invalid_argument);
    EXPECT_THROW(bayesianUpdate(global, {local, {0, 5}}),
                 std::invalid_argument);
    EXPECT_THROW(bayesianUpdate(global, {local, {0}}),
                 std::invalid_argument); // size mismatch
}

TEST(Bayesian, MultiLayerAppliesLargestFirst)
{
    // Construct a case where layer order matters: a size-3 marginal
    // carries the correct correlation, a size-2 marginal is biased.
    Pmf global(3);
    global.set(0b111, 0.4);
    global.set(0b000, 0.3);
    global.set(0b101, 0.3);

    Pmf big(3);
    big.set(0b111, 0.9);
    big.set(0b000, 0.1);
    Pmf small(2);
    small.set(0b01, 0.5);
    small.set(0b11, 0.5);

    const std::vector<Marginal> ms{{small, {0, 1}}, {big, {0, 1, 2}}};
    const Pmf out = multiLayerReconstruct(global, ms);
    // The top-down order lets the size-3 marginal fix the correlation
    // before the smaller layer redistributes within it.
    EXPECT_EQ(out.mode(), 0b111ULL);
    EXPECT_NEAR(out.totalMass(), 1.0, 1e-9);
}

TEST(Bayesian, MultiLayerSingleSizeMatchesPlain)
{
    const Pmf global = figure6Global();
    const std::vector<Marginal> ms{figure6Marginal()};
    const Pmf a = bayesianReconstruct(global, ms);
    const Pmf b = multiLayerReconstruct(global, ms);
    EXPECT_LT(totalVariationDistance(a, b), 1e-12);
}

/** Property sweep: reconstruction outputs are valid PMFs over the
 *  global support for random instances. */
class BayesianProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(BayesianProperty, OutputIsValidPmfOverGlobalSupport)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
    const int n = 4 + static_cast<int>(rng.uniformInt(0, 2));

    Pmf global(n);
    const int support = 5 + static_cast<int>(rng.uniformInt(0, 20));
    for (int i = 0; i < support; ++i) {
        global.set(static_cast<BasisState>(
                       rng.uniformInt(0, (1 << n) - 1)),
                   rng.uniform(0.01, 1.0));
    }
    global.normalize();

    std::vector<Marginal> marginals;
    for (const Subset &s : slidingWindowSubsets(n, 2)) {
        Pmf local(2);
        for (BasisState v = 0; v < 4; ++v)
            local.set(v, rng.uniform(0.0, 1.0));
        local.normalize();
        marginals.push_back({local, s});
    }

    const Pmf out = bayesianReconstruct(global, marginals);
    EXPECT_NEAR(out.totalMass(), 1.0, 1e-9);
    for (const auto &[outcome, p] : out.probabilities()) {
        EXPECT_GE(p, 0.0);
        EXPECT_GT(global.prob(outcome), 0.0)
            << "reconstruction must not invent outcomes";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BayesianProperty, ::testing::Range(1, 16));

// ----------------------------------------------------------------- jigsaw

TEST(Jigsaw, TrialAccountingAndCpmCount)
{
    const device::DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 1});
    const workloads::Ghz ghz(6);

    const JigsawResult result =
        runJigsaw(ghz.circuit(), dev, executor, 8192);
    EXPECT_EQ(result.globalTrials, 4096u);
    EXPECT_EQ(result.cpms.size(), 6u); // sliding window, n subsets
    // The subset budget must be spent exactly: 4096 = 6 * 682 + 4,
    // with the remainder spread over the first CPMs one trial each.
    EXPECT_EQ(result.globalTrials + result.subsetTrials, 8192u);
    for (std::size_t i = 0; i < result.cpms.size(); ++i) {
        const CpmRecord &cpm = result.cpms[i];
        EXPECT_EQ(cpm.subset.size(), 2u);
        EXPECT_EQ(cpm.trials, 4096u / 6u + (i < 4 ? 1 : 0));
        EXPECT_EQ(cpm.compiled.physical.countMeasurements(), 2);
        EXPECT_NEAR(cpm.localPmf.totalMass(), 1.0, 1e-9);
    }
    EXPECT_NEAR(result.output.totalMass(), 1.0, 1e-9);
}

TEST(Jigsaw, JigsawMUsesAllSizes)
{
    const device::DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 2});
    const workloads::Ghz ghz(6);

    const JigsawResult result = runJigsaw(ghz.circuit(), dev, executor,
                                          8192, jigsawMOptions());
    // Sizes 2..5, n subsets each.
    EXPECT_EQ(result.cpms.size(), 24u);
    std::set<std::size_t> sizes;
    for (const CpmRecord &cpm : result.cpms)
        sizes.insert(cpm.subset.size());
    EXPECT_EQ(sizes, (std::set<std::size_t>{2, 3, 4, 5}));
}

TEST(Jigsaw, CustomSubsetsHonored)
{
    const device::DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 3});
    const workloads::Ghz ghz(5);

    JigsawOptions options;
    options.customSubsets = std::vector<Subset>{{0, 2}, {1, 4}};
    const JigsawResult result =
        runJigsaw(ghz.circuit(), dev, executor, 4096, options);
    ASSERT_EQ(result.cpms.size(), 2u);
    EXPECT_EQ(result.cpms[0].subset, (Subset{0, 2}));
    EXPECT_EQ(result.cpms[1].subset, (Subset{1, 4}));
}

TEST(Jigsaw, NoRecompilationReusesGlobalMapping)
{
    const device::DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 4});
    const workloads::Ghz ghz(5);

    JigsawOptions options;
    options.recompileCpms = false;
    const JigsawResult result =
        runJigsaw(ghz.circuit(), dev, executor, 4096, options);
    for (const CpmRecord &cpm : result.cpms) {
        EXPECT_EQ(cpm.compiled.swapCount, result.globalCompiled.swapCount);
        EXPECT_EQ(cpm.compiled.initialLayout.logicalToPhysical(),
                  result.globalCompiled.initialLayout.logicalToPhysical());
    }
}

TEST(Jigsaw, CpmsRespectSwapBudget)
{
    const device::DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 5});
    const workloads::Ghz ghz(8);

    const JigsawResult result =
        runJigsaw(ghz.circuit(), dev, executor, 8192);
    for (const CpmRecord &cpm : result.cpms)
        EXPECT_LE(cpm.compiled.swapCount,
                  result.globalCompiled.swapCount);
}

TEST(Jigsaw, RecompiledCpmsNeverWorseThanGlobalMapping)
{
    // The driver considers the global allocation as a CPM candidate,
    // so recompilation can only improve the CPM's expected probability
    // of success.
    const device::DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 7});
    const workloads::Ghz ghz(8);

    const JigsawResult result =
        runJigsaw(ghz.circuit(), dev, executor, 8192);
    const std::vector<int> qubit_of_clbit =
        ghz.circuit().measuredQubits();
    for (const CpmRecord &cpm : result.cpms) {
        std::vector<int> physical;
        for (int c : cpm.subset) {
            physical.push_back(
                result.globalCompiled.finalLayout.physicalOf(
                    qubit_of_clbit[static_cast<std::size_t>(c)]));
        }
        const circuit::QuantumCircuit reuse_circuit =
            result.globalCompiled.physical.withMeasurementSubset(
                physical);
        const double reuse_eps =
            sim::expectedProbabilityOfSuccess(reuse_circuit, dev);
        EXPECT_GE(cpm.compiled.eps + 1e-9, reuse_eps);
    }
}

TEST(Jigsaw, RejectsBadOptions)
{
    const device::DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 6});
    const workloads::Ghz ghz(5);

    EXPECT_THROW(runJigsaw(ghz.circuit(), dev, executor, 1),
                 std::invalid_argument);

    JigsawOptions bad_fraction;
    bad_fraction.globalFraction = 1.0;
    EXPECT_THROW(
        runJigsaw(ghz.circuit(), dev, executor, 1000, bad_fraction),
        std::invalid_argument);

    JigsawOptions bad_size;
    bad_size.subsetSizes = {9};
    EXPECT_THROW(runJigsaw(ghz.circuit(), dev, executor, 1000, bad_size),
                 std::invalid_argument);
}

// ------------------------------------------------------------ scalability

TEST(Scalability, OperationsMatchTable7JigsawRows)
{
    // Paper Table 7 (JigSaw: S=1, subset size 5, N = n), T in binary K.
    ScalabilityConfig config;
    config.subsetSizes = {5};
    config.nQubits = 100;
    config.numCpms = 100;

    config.epsilon = 0.05;
    config.trials = 32ULL * 1024;
    EXPECT_NEAR(reconstructionOperations(config) / 1e6, 0.66, 0.01);
    config.trials = 1024ULL * 1024;
    EXPECT_NEAR(reconstructionOperations(config) / 1e6, 21.0, 0.1);

    config.epsilon = 1.0;
    config.trials = 32ULL * 1024;
    EXPECT_NEAR(reconstructionOperations(config) / 1e6, 13.1, 0.1);
    config.trials = 1024ULL * 1024;
    EXPECT_NEAR(reconstructionOperations(config) / 1e6, 419.0, 1.0);

    config.nQubits = 500;
    config.numCpms = 500;
    EXPECT_NEAR(reconstructionOperations(config) / 1e6, 2097.0, 1.0);
    config.epsilon = 0.05;
    config.trials = 32ULL * 1024;
    EXPECT_NEAR(reconstructionOperations(config) / 1e6, 3.28, 0.01);
}

TEST(Scalability, OperationsMatchTable7JigsawMRows)
{
    // JigSaw-M: sizes {5, 10, 15, 20} so S = 4.
    ScalabilityConfig config;
    config.subsetSizes = {5, 10, 15, 20};
    config.nQubits = 100;
    config.numCpms = 100;
    config.epsilon = 0.05;
    config.trials = 32ULL * 1024;
    EXPECT_NEAR(reconstructionOperations(config) / 1e6, 2.62, 0.05);
    config.trials = 1024ULL * 1024;
    EXPECT_NEAR(reconstructionOperations(config) / 1e6, 83.9, 0.2);
    config.epsilon = 1.0;
    EXPECT_NEAR(reconstructionOperations(config) / 1e6, 1677.0, 2.0);
}

TEST(Scalability, MemoryMatchesTable7JigsawRows)
{
    // JigSaw memory is dominated by the {n + 8(2+N)} eps T term;
    // Table 7 reports 0.96 GB for n=100, eps=1, T=1024K.
    ScalabilityConfig config;
    config.subsetSizes = {5};
    config.nQubits = 100;
    config.numCpms = 100;
    config.epsilon = 1.0;
    config.delta = 1.0;
    config.trials = 1024ULL * 1024;
    EXPECT_NEAR(reconstructionMemoryBytes(config) / 1e9, 0.96, 0.01);

    config.nQubits = 500;
    config.numCpms = 500;
    EXPECT_NEAR(reconstructionMemoryBytes(config) / 1e9, 4.74, 0.01);

    config.epsilon = 0.05;
    config.delta = 0.05;
    EXPECT_NEAR(reconstructionMemoryBytes(config) / 1e9, 0.24, 0.01);
}

TEST(Scalability, MemoryLinearInTrialsAndCpms)
{
    ScalabilityConfig config;
    config.subsetSizes = {2};
    config.nQubits = 50;
    config.numCpms = 50;
    config.epsilon = 0.05;
    config.delta = 0.05;
    config.trials = 100000;
    const double base = reconstructionMemoryBytes(config);

    config.trials = 200000;
    EXPECT_NEAR(reconstructionMemoryBytes(config) / base, 2.0, 0.01);

    config.trials = 100000;
    config.numCpms = 100;
    EXPECT_GT(reconstructionMemoryBytes(config), base * 1.5);
}

TEST(Scalability, RejectsIncompleteConfig)
{
    ScalabilityConfig config;
    EXPECT_THROW(reconstructionMemoryBytes(config),
                 std::invalid_argument);
    EXPECT_THROW(reconstructionOperations(config),
                 std::invalid_argument);
}

} // namespace
} // namespace core
} // namespace jigsaw
