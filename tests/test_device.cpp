/**
 * @file
 * Device-model tests: topology structure and distances, heavy-hex
 * layouts, calibration synthesis statistics against the paper's
 * published per-device numbers.
 */
#include <gtest/gtest.h>

#include "common/statistics.h"
#include "device/calibration.h"
#include "device/library.h"
#include "device/topology.h"

namespace jigsaw {
namespace device {
namespace {

TEST(Topology, LinearChain)
{
    const Topology t = linearTopology(5);
    EXPECT_EQ(t.nQubits(), 5);
    EXPECT_EQ(t.edges().size(), 4u);
    EXPECT_TRUE(t.areCoupled(0, 1));
    EXPECT_TRUE(t.areCoupled(1, 0));
    EXPECT_FALSE(t.areCoupled(0, 2));
    EXPECT_EQ(t.distance(0, 4), 4);
    EXPECT_EQ(t.distance(2, 2), 0);
    EXPECT_TRUE(t.isConnected());
}

TEST(Topology, Grid)
{
    const Topology t = gridTopology(3, 4);
    EXPECT_EQ(t.nQubits(), 12);
    // 3*(4-1) horizontal + (3-1)*4 vertical edges.
    EXPECT_EQ(t.edges().size(), 17u);
    EXPECT_EQ(t.distance(0, 11), 5); // Manhattan distance on a grid.
    EXPECT_TRUE(t.isConnected());
}

TEST(Topology, Neighbors)
{
    const Topology t = linearTopology(4);
    EXPECT_EQ(t.neighbors(0), (std::vector<int>{1}));
    EXPECT_EQ(t.neighbors(1), (std::vector<int>{0, 2}));
}

TEST(Topology, EdgeIndexRoundTrip)
{
    const Topology t = heavyHex27();
    for (std::size_t e = 0; e < t.edges().size(); ++e) {
        const auto [a, b] = t.edges()[e];
        EXPECT_EQ(t.edgeIndex(a, b), static_cast<int>(e));
        EXPECT_EQ(t.edgeIndex(b, a), static_cast<int>(e));
    }
    EXPECT_EQ(t.edgeIndex(0, 26), -1);
}

TEST(Topology, RejectsBadEdges)
{
    EXPECT_THROW(Topology(2, {{0, 2}}), std::invalid_argument);
    EXPECT_THROW(Topology(2, {{1, 1}}), std::invalid_argument);
}

TEST(Topology, HeavyHex27Structure)
{
    const Topology t = heavyHex27();
    EXPECT_EQ(t.nQubits(), 27);
    EXPECT_EQ(t.edges().size(), 28u);
    EXPECT_TRUE(t.isConnected());
    // Heavy-hex: degree never exceeds 3.
    for (int q = 0; q < t.nQubits(); ++q)
        EXPECT_LE(t.neighbors(q).size(), 3u);
}

TEST(Topology, HeavyHex65Structure)
{
    const Topology t = heavyHex65();
    EXPECT_EQ(t.nQubits(), 65);
    EXPECT_EQ(t.edges().size(), 72u);
    EXPECT_TRUE(t.isConnected());
    for (int q = 0; q < t.nQubits(); ++q)
        EXPECT_LE(t.neighbors(q).size(), 3u);
}

TEST(Calibration, EffectiveErrorGrowsWithSimultaneity)
{
    Calibration cal(2, 1);
    cal.qubit(0).readoutError01 = 0.02;
    cal.qubit(0).readoutError10 = 0.03;
    cal.qubit(0).crosstalkGamma = 0.004;
    EXPECT_DOUBLE_EQ(cal.effectiveReadoutError(0, 1, 0), 0.02);
    EXPECT_DOUBLE_EQ(cal.effectiveReadoutError(0, 1, 1), 0.03);
    EXPECT_NEAR(cal.effectiveReadoutError(0, 5, 0), 0.02 + 0.016, 1e-12);
    EXPECT_NEAR(cal.effectiveReadoutError(0, 10, 1), 0.03 + 0.036, 1e-12);
}

TEST(Calibration, EffectiveErrorClamped)
{
    Calibration cal(1, 0);
    cal.qubit(0).readoutError01 = 0.4;
    cal.qubit(0).crosstalkGamma = 0.1;
    EXPECT_DOUBLE_EQ(cal.effectiveReadoutError(0, 10, 0), 0.5);
}

TEST(Calibration, BestReadoutQubitsSorted)
{
    Calibration cal(3, 0);
    cal.qubit(0).readoutError01 = cal.qubit(0).readoutError10 = 0.05;
    cal.qubit(1).readoutError01 = cal.qubit(1).readoutError10 = 0.01;
    cal.qubit(2).readoutError01 = cal.qubit(2).readoutError10 = 0.03;
    EXPECT_EQ(cal.bestReadoutQubits(2), (std::vector<int>{1, 2}));
    EXPECT_EQ(cal.bestReadoutQubits(10).size(), 3u);
}

TEST(Calibration, SynthesisDeterministic)
{
    const Topology topo = heavyHex27();
    const CalibrationProfile profile;
    const Calibration a = synthesizeCalibration(topo, profile, 5);
    const Calibration b = synthesizeCalibration(topo, profile, 5);
    for (int q = 0; q < 27; ++q) {
        EXPECT_DOUBLE_EQ(a.qubit(q).readoutError01,
                         b.qubit(q).readoutError01);
    }
    const Calibration c = synthesizeCalibration(topo, profile, 6);
    bool any_different = false;
    for (int q = 0; q < 27; ++q) {
        if (a.qubit(q).readoutError01 != c.qubit(q).readoutError01)
            any_different = true;
    }
    EXPECT_TRUE(any_different);
}

TEST(Calibration, SynthesisRespectsClamps)
{
    const Topology topo = heavyHex65();
    CalibrationProfile profile;
    const Calibration cal = synthesizeCalibration(topo, profile, 77);
    for (int q = 0; q < topo.nQubits(); ++q) {
        const double mean = cal.qubit(q).meanReadoutError();
        EXPECT_GE(mean, profile.readoutFloor - 1e-12);
        EXPECT_LE(mean, profile.readoutCeil + 1e-12);
        EXPECT_GT(cal.qubit(q).readoutError10,
                  cal.qubit(q).readoutError01);
        EXPECT_LE(cal.qubit(q).crosstalkGamma, profile.gammaCeil + 1e-12);
    }
}

TEST(Calibration, AsymmetryRatio)
{
    const Topology topo = heavyHex27();
    CalibrationProfile profile;
    profile.asymmetry = 1.5;
    const Calibration cal = synthesizeCalibration(topo, profile, 9);
    for (int q = 0; q < 27; ++q) {
        EXPECT_NEAR(cal.qubit(q).readoutError10 /
                        cal.qubit(q).readoutError01,
                    1.5, 1e-9);
    }
}

TEST(DeviceLibrary, TorontoMatchesPaperSpread)
{
    // Paper Fig 3: mean 4.70%, median 2.76%, min 0.85%, max 22.2%.
    // Synthetic calibration should land in the same regime.
    const DeviceModel dev = toronto();
    const std::vector<double> errors = dev.calibration().readoutErrors();
    EXPECT_EQ(errors.size(), 27u);
    EXPECT_NEAR(stats::median(errors), 0.0276, 0.015);
    EXPECT_GT(stats::mean(errors), stats::median(errors)); // heavy tail
    EXPECT_LT(stats::min(errors), 0.02);
    EXPECT_GT(stats::max(errors), 0.10);
}

TEST(DeviceLibrary, SycamoreMatchesTable1Regime)
{
    // Paper Table 1 isolated: min 2.6%, avg 6.14%, median 5.7%,
    // max 11.7%.
    const DeviceModel dev = sycamore();
    const std::vector<double> errors = dev.calibration().readoutErrors();
    EXPECT_NEAR(stats::median(errors), 0.057, 0.02);
    EXPECT_GE(stats::min(errors), 0.02);
    EXPECT_LE(stats::max(errors), 0.125);
}

TEST(DeviceLibrary, NamesAndSizes)
{
    EXPECT_EQ(toronto().name(), "ibmq-toronto");
    EXPECT_EQ(toronto().nQubits(), 27);
    EXPECT_EQ(paris().nQubits(), 27);
    EXPECT_EQ(manhattan().nQubits(), 65);
    EXPECT_EQ(sycamore().nQubits(), 54); // 6x9 grid model
    EXPECT_EQ(evaluationDevices().size(), 3u);
}

TEST(DeviceLibrary, ByName)
{
    EXPECT_EQ(byName("ibmq-paris").name(), "ibmq-paris");
    EXPECT_THROW(byName("nope"), std::invalid_argument);
}

TEST(DeviceLibrary, DevicesDiffer)
{
    const DeviceModel tor = toronto();
    const DeviceModel par = paris();
    bool any_different = false;
    for (int q = 0; q < 27; ++q) {
        if (tor.calibration().qubit(q).readoutError01 !=
            par.calibration().qubit(q).readoutError01) {
            any_different = true;
        }
    }
    EXPECT_TRUE(any_different);
}

TEST(DeviceModel, RejectsMismatch)
{
    EXPECT_THROW(DeviceModel("bad", linearTopology(3),
                             Calibration(4, 0)),
                 std::invalid_argument);
}

} // namespace
} // namespace device
} // namespace jigsaw
