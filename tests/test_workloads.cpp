/**
 * @file
 * Workload tests: each benchmark's circuit structure matches Table 2
 * where the paper specifies it, ideal semantics are correct, and the
 * registry builds the paper's suite.
 */
#include <gtest/gtest.h>

#include "metrics/metrics.h"
#include "workloads/bv.h"
#include "workloads/ghz.h"
#include "workloads/graycode.h"
#include "workloads/ising.h"
#include "workloads/qaoa.h"
#include "workloads/registry.h"

namespace jigsaw {
namespace workloads {
namespace {

TEST(Bv, GateCountsMatchTable2)
{
    const BernsteinVazirani bv(6);
    // 1Q = 2(n+1), 2Q = n for the all-ones hidden string.
    EXPECT_EQ(bv.circuit().countSingleQubitGates(), 14);
    EXPECT_EQ(bv.circuit().countTwoQubitGates(), 6);
    EXPECT_EQ(bv.circuit().countMeasurements(), 6);
    EXPECT_EQ(bv.circuit().nQubits(), 7); // n data + 1 ancilla
    EXPECT_EQ(bv.name(), "BV-6");
}

TEST(Bv, IdealOutputIsHiddenString)
{
    const BernsteinVazirani bv(5);
    EXPECT_EQ(bv.hiddenString(), 0b11111ULL);
    EXPECT_NEAR(bv.idealPmf().prob(0b11111), 1.0, 1e-9);
    EXPECT_EQ(bv.correctOutcomes(),
              (std::vector<BasisState>{0b11111ULL}));
}

TEST(Bv, CustomHiddenString)
{
    const BernsteinVazirani bv(4, 0b1010);
    EXPECT_NEAR(bv.idealPmf().prob(0b1010), 1.0, 1e-9);
    // 2Q count equals popcount of the hidden string.
    EXPECT_EQ(bv.circuit().countTwoQubitGates(), 2);
}

TEST(Ghz, GateCountsMatchTable2)
{
    const Ghz ghz(14);
    EXPECT_EQ(ghz.circuit().countSingleQubitGates(), 1);
    EXPECT_EQ(ghz.circuit().countTwoQubitGates(), 13);
    EXPECT_EQ(ghz.name(), "GHZ-14");
}

TEST(Ghz, IdealHalfHalf)
{
    const Ghz ghz(6);
    EXPECT_NEAR(ghz.idealPmf().prob(0), 0.5, 1e-9);
    EXPECT_NEAR(ghz.idealPmf().prob(0b111111), 0.5, 1e-9);
    EXPECT_EQ(ghz.idealPmf().support(), 2u);
    EXPECT_EQ(ghz.correctOutcomes().size(), 2u);
}

TEST(Graycode, GateCountsMatchTable2)
{
    const Graycode gc(18);
    EXPECT_EQ(gc.circuit().countSingleQubitGates(), 9); // n/2 X gates
    EXPECT_EQ(gc.circuit().countTwoQubitGates(), 17);   // n-1 CX
    EXPECT_EQ(gc.name(), "Graycode-18");
}

TEST(Graycode, DecodesDeterministically)
{
    const Graycode gc(6);
    // Gray 010101 (alternating; bit i set for odd i).
    EXPECT_EQ(gc.grayInput(), 0b101010ULL);
    // Binary decode of alternating gray: b_i = xor of g_j, j >= i.
    // g = 101010 (q5..q0): b5=1, b4=1, b3=0, b2=0, b1=1, b0=1.
    EXPECT_EQ(gc.binaryOutput(), 0b110011ULL);
    EXPECT_NEAR(gc.idealPmf().prob(gc.binaryOutput()), 1.0, 1e-9);
    EXPECT_EQ(gc.idealPmf().support(), 1u);
}

TEST(Qaoa, StructureMatchesTable2TwoQubitCounts)
{
    const QaoaMaxCut q8(8, 1);
    EXPECT_EQ(q8.circuit().countTwoQubitGates(), 7); // (n-1) per layer
    const QaoaMaxCut q10(10, 2);
    EXPECT_EQ(q10.circuit().countTwoQubitGates(), 18); // 2(n-1)
    EXPECT_EQ(q10.name(), "QAOA-10 p2");
    EXPECT_EQ(q10.layers(), 2);
}

TEST(Qaoa, CostFunction)
{
    const QaoaMaxCut q(4, 1);
    EXPECT_TRUE(q.hasCost());
    EXPECT_DOUBLE_EQ(q.maxCost(), 3.0);
    EXPECT_DOUBLE_EQ(q.cost(0b0000), 0.0);
    EXPECT_DOUBLE_EQ(q.cost(0b0101), 3.0); // alternating = max cut
    EXPECT_DOUBLE_EQ(q.cost(0b1010), 3.0);
    EXPECT_DOUBLE_EQ(q.cost(0b0011), 1.0);
}

TEST(Qaoa, CorrectOutcomesAreOptimalCuts)
{
    const QaoaMaxCut q(6, 1);
    for (BasisState outcome : q.correctOutcomes())
        EXPECT_DOUBLE_EQ(q.cost(outcome), q.maxCost());
}

TEST(Qaoa, OptimizedAnglesBeatRandomGuess)
{
    // The optimizer should find angles whose expected cut clearly
    // exceeds the uniform-distribution baseline of (n-1)/2.
    const QaoaMaxCut q(8, 1);
    const double expected = q.expectedCost(q.idealPmf());
    EXPECT_GT(expected, 0.5 * q.maxCost() + 0.5);
}

TEST(Qaoa, DeeperIsBetter)
{
    const QaoaMaxCut p1(8, 1);
    const QaoaMaxCut p2(8, 2);
    EXPECT_GE(p2.expectedCost(p2.idealPmf()),
              p1.expectedCost(p1.idealPmf()) - 0.05);
}

TEST(Ising, GateCountsMatchTable2TwoQubit)
{
    const IsingChain ising(10);
    // n steps x (n-1) RZZ = n(n-1) = 90 two-qubit interactions.
    EXPECT_EQ(ising.circuit().countTwoQubitGates(), 90);
    EXPECT_EQ(ising.name(), "Ising-10");
}

TEST(Ising, OutputPeaked)
{
    const IsingChain ising(8);
    const BasisState mode = ising.correctOutcomes()[0];
    // The weak-field evolution keeps a dominant outcome.
    EXPECT_GT(ising.idealPmf().prob(mode), 0.25);
}

TEST(Registry, PaperSuite)
{
    const auto suite = paperBenchmarks();
    ASSERT_EQ(suite.size(), 9u);
    EXPECT_EQ(suite[0]->name(), "BV-6");
    EXPECT_EQ(suite[1]->name(), "QAOA-8 p1");
    EXPECT_EQ(suite[6]->name(), "Ising-10");
    EXPECT_EQ(suite[7]->name(), "GHZ-14");
    EXPECT_EQ(suite[8]->name(), "Graycode-18");
}

TEST(Registry, QaoaSuite)
{
    const auto suite = qaoaBenchmarks();
    ASSERT_EQ(suite.size(), 5u);
    for (const auto &w : suite)
        EXPECT_TRUE(w->hasCost());
}

TEST(Registry, MakeWorkloadByName)
{
    EXPECT_EQ(makeWorkload("GHZ-8")->name(), "GHZ-8");
    EXPECT_EQ(makeWorkload("BV-4")->name(), "BV-4");
    EXPECT_EQ(makeWorkload("QAOA-6 p2")->name(), "QAOA-6 p2");
    EXPECT_EQ(makeWorkload("Ising-4")->name(), "Ising-4");
    EXPECT_EQ(makeWorkload("Graycode-4")->name(), "Graycode-4");
    EXPECT_THROW(makeWorkload("Nope-3"), std::invalid_argument);
    EXPECT_THROW(makeWorkload("QAOA-6"), std::invalid_argument);
    EXPECT_THROW(makeWorkload("GHZ"), std::invalid_argument);
}

TEST(Workload, CostThrowsWithoutCostFunction)
{
    const Ghz ghz(4);
    EXPECT_FALSE(ghz.hasCost());
    EXPECT_THROW(ghz.cost(0), std::invalid_argument);
    EXPECT_THROW(ghz.maxCost(), std::invalid_argument);
}

TEST(Workload, IdealPmfNormalized)
{
    const auto suite = paperBenchmarks();
    for (const auto &w : suite) {
        EXPECT_NEAR(w->idealPmf().totalMass(), 1.0, 1e-9)
            << w->name();
        // The two optimal cuts of QAOA-14 p2 carry only ~3% ideal
        // mass (consistent with the paper's low absolute QAOA PSTs).
        EXPECT_GT(metrics::pst(w->idealPmf(), *w), 0.02) << w->name();
    }
}

} // namespace
} // namespace workloads
} // namespace jigsaw
