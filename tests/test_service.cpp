/**
 * @file
 * Concurrency tests: the multi-program JigsawService must reproduce
 * sequential runJigsaw bitwise, the TaskGroup primitive must execute
 * and propagate errors, and the shared caches (executor PMF/state,
 * process-wide transpile memo) must survive concurrent hammering —
 * this file is the target of the CI ThreadSanitizer leg (run it with
 * JIGSAW_THREADS=4 or more to actually exercise the pool).
 */
#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "compiler/transpiler.h"
#include "core/service.h"
#include "device/library.h"
#include "sim/simulators.h"
#include "workloads/bv.h"
#include "workloads/ghz.h"
#include "workloads/qft.h"

namespace jigsaw {
namespace {

using core::JigsawResult;
using core::ServiceProgram;

/** Exact equality: the two PMFs store identical doubles. */
void
expectBitwisePmf(const Pmf &a, const Pmf &b)
{
    ASSERT_EQ(a.nQubits(), b.nQubits());
    ASSERT_EQ(a.support(), b.support());
    for (const auto &[outcome, p] : a.probabilities())
        EXPECT_EQ(p, b.prob(outcome)) << "outcome " << outcome;
}

// ------------------------------------------------------------ TaskGroup

TEST(TaskGroup, RunsEveryTask)
{
    std::atomic<int> count{0};
    TaskGroup group;
    for (int i = 0; i < 64; ++i)
        group.run([&count] { ++count; });
    group.wait();
    EXPECT_EQ(count.load(), 64);
}

TEST(TaskGroup, WaitIsReusable)
{
    std::atomic<int> count{0};
    TaskGroup group;
    group.run([&count] { ++count; });
    group.wait();
    group.run([&count] { ++count; });
    group.run([&count] { ++count; });
    group.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(TaskGroup, PropagatesTheFirstException)
{
    std::atomic<int> completed{0};
    TaskGroup group;
    for (int i = 0; i < 8; ++i) {
        group.run([&completed, i] {
            if (i == 3)
                throw std::runtime_error("task 3 failed");
            ++completed;
        });
    }
    EXPECT_THROW(group.wait(), std::runtime_error);
    // The failure does not cancel the other tasks.
    EXPECT_EQ(completed.load(), 7);
}

TEST(TaskGroup, TasksMayUseParallelFor)
{
    // Nested parallelFor inside pool workers degrades to serial
    // instead of corrupting the chunk state.
    std::vector<std::vector<int>> touched(8, std::vector<int>(2048, 0));
    TaskGroup group;
    for (std::size_t t = 0; t < touched.size(); ++t) {
        group.run([&touched, t] {
            parallelFor(0, touched[t].size(), 64,
                        [&](std::size_t lo, std::size_t hi) {
                            for (std::size_t i = lo; i < hi; ++i)
                                ++touched[t][i];
                        });
        });
    }
    group.wait();
    for (const std::vector<int> &row : touched) {
        for (int v : row)
            EXPECT_EQ(v, 1);
    }
}

// ----------------------------------------------------- shared-cache races

TEST(ConcurrentCaches, TranspileCacheSurvivesHammering)
{
    // Many tasks transpile the same circuits through the process-wide
    // memo; every result must be identical and the memo coherent.
    const device::DeviceModel dev = device::toronto();
    const circuit::QuantumCircuit ghz = workloads::Ghz(6).circuit();
    const circuit::QuantumCircuit bv =
        workloads::BernsteinVazirani(5).circuit();
    compiler::clearTranspileCache();

    std::vector<std::uint64_t> hashes(32, 0);
    TaskGroup group;
    for (std::size_t i = 0; i < hashes.size(); ++i) {
        group.run([&, i] {
            const circuit::QuantumCircuit &qc = i % 2 ? ghz : bv;
            hashes[i] = compiler::transpileCached(qc, dev)
                            .physical.structuralHash();
        });
    }
    group.wait();
    for (std::size_t i = 2; i < hashes.size(); ++i)
        EXPECT_EQ(hashes[i], hashes[i % 2]);
}

TEST(ConcurrentCaches, SharedExecutorSurvivesConcurrentRuns)
{
    // One executor hammered from many tasks: the PMF/state caches and
    // counters must stay coherent (results are nondeterministic in
    // the draw stream but every histogram must be well-formed).
    const circuit::QuantumCircuit qc = workloads::Ghz(7).circuit();
    const std::vector<std::vector<int>> subsets = {
        {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {0, 6}};
    sim::IdealSimulator shared(33);

    TaskGroup group;
    std::vector<std::uint64_t> totals(24, 0);
    for (std::size_t i = 0; i < totals.size(); ++i) {
        group.run([&, i] {
            if (i % 3 == 0) {
                totals[i] = shared.run(qc, 500).totalCount();
            } else {
                std::vector<sim::CpmSpec> specs;
                for (const std::vector<int> &s : subsets)
                    specs.push_back({s, 200});
                std::uint64_t total = 0;
                for (const Histogram &h : shared.runBatch(qc, specs))
                    total += h.totalCount();
                totals[i] = total;
            }
        });
    }
    group.wait();
    for (std::size_t i = 0; i < totals.size(); ++i)
        EXPECT_EQ(totals[i], i % 3 == 0 ? 500u : 200u * subsets.size());
    // Exactly one evolution of the shared prefix ever ran.
    EXPECT_EQ(shared.batchStats().baseEvolutions, 1u);
}

// ------------------------------------------------------- JigsawService

std::vector<ServiceProgram>
mixedPrograms(const device::DeviceModel &dev)
{
    std::vector<ServiceProgram> programs;
    programs.emplace_back(workloads::Ghz(6).circuit(), dev, 8192,
                          core::JigsawOptions{}, 101);
    programs.emplace_back(workloads::BernsteinVazirani(6).circuit(), dev,
                          8192, core::jigsawMOptions(), 202);
    programs.emplace_back(workloads::QftAdjoint(5).circuit(), dev, 4096,
                          core::JigsawOptions{}, 303);
    core::JigsawOptions no_recomp;
    no_recomp.recompileCpms = false;
    programs.emplace_back(workloads::Ghz(7).circuit(), dev, 6144,
                          no_recomp, 404);
    programs.emplace_back(workloads::Ghz(6).circuit(), dev, 8192,
                          core::jigsawMOptions(), 505);
    return programs;
}

TEST(JigsawService, ConcurrentProgramsMatchSequentialBitwise)
{
    const device::DeviceModel dev = device::toronto();
    const std::vector<ServiceProgram> programs = mixedPrograms(dev);
    ASSERT_GE(programs.size(), 4u);

    // Sequential reference: one runJigsaw per program, each with a
    // fresh executor seeded exactly like the service's default
    // (core::runProgramsSequentially is that contract's single
    // definition).
    const std::vector<JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    core::JigsawService service;
    const std::vector<JigsawResult> concurrent = service.run(programs);
    ASSERT_EQ(concurrent.size(), programs.size());
    EXPECT_EQ(service.stats().programs, programs.size());
    EXPECT_GT(service.stats().wallMs, 0.0);

    for (std::size_t i = 0; i < programs.size(); ++i) {
        expectBitwisePmf(sequential[i].output, concurrent[i].output);
        expectBitwisePmf(sequential[i].globalPmf,
                         concurrent[i].globalPmf);
        ASSERT_EQ(sequential[i].cpms.size(), concurrent[i].cpms.size());
        for (std::size_t c = 0; c < sequential[i].cpms.size(); ++c) {
            EXPECT_EQ(sequential[i].cpms[c].subset,
                      concurrent[i].cpms[c].subset);
            expectBitwisePmf(sequential[i].cpms[c].localPmf,
                             concurrent[i].cpms[c].localPmf);
        }
        EXPECT_EQ(sequential[i].globalTrials,
                  concurrent[i].globalTrials);
        EXPECT_EQ(sequential[i].subsetTrials,
                  concurrent[i].subsetTrials);
    }
}

TEST(JigsawService, RepeatedRunsAreDeterministic)
{
    const device::DeviceModel dev = device::toronto();
    const std::vector<ServiceProgram> programs = mixedPrograms(dev);
    core::JigsawService service;
    const std::vector<JigsawResult> first = service.run(programs);
    const std::vector<JigsawResult> second = service.run(programs);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        expectBitwisePmf(first[i].output, second[i].output);
}

TEST(JigsawService, CallerSuppliedExecutorIsUsed)
{
    const device::DeviceModel dev = device::toronto();
    auto executor = std::make_shared<sim::NoisySimulator>(
        dev, sim::NoisySimulatorOptions{.seed = 77});
    std::vector<ServiceProgram> programs;
    programs.emplace_back(workloads::Ghz(5).circuit(), dev, 4096,
                          core::JigsawOptions{}, 0, executor);
    core::JigsawService service;
    const std::vector<JigsawResult> results = service.run(programs);
    ASSERT_EQ(results.size(), 1u);
    // The caller's executor did the work: its caches are populated.
    EXPECT_GT(executor->cacheMisses(), 0u);
}

TEST(JigsawService, PropagatesProgramFailures)
{
    const device::DeviceModel dev = device::toronto();
    std::vector<ServiceProgram> programs;
    programs.emplace_back(workloads::Ghz(5).circuit(), dev, 4096);
    // Second program is invalid: a one-trial budget must throw.
    programs.emplace_back(workloads::Ghz(5).circuit(), dev, 1);
    core::JigsawService service;
    EXPECT_THROW(service.run(programs), std::invalid_argument);
}

// -------------------------------------------- cross-program batching

/**
 * The merge-path acid test: identical programs (same circuit, same
 * options, different seeds), structurally-equal circuits built
 * independently, and distinct circuits, all in one batch.
 */
std::vector<ServiceProgram>
mergeablePrograms(const device::DeviceModel &dev)
{
    std::vector<ServiceProgram> programs;
    // Two identical programs, different seeds: share everything.
    programs.emplace_back(workloads::Ghz(7).circuit(), dev, 8192,
                          core::JigsawOptions{}, 11);
    programs.emplace_back(workloads::Ghz(7).circuit(), dev, 8192,
                          core::JigsawOptions{}, 22);
    // Structurally equal circuit, different options: shares the
    // global prefix, subsets differ.
    programs.emplace_back(workloads::Ghz(7).circuit(), dev, 6144,
                          core::jigsawMOptions(), 33);
    // Distinct circuits: merge pass must keep them apart.
    programs.emplace_back(workloads::BernsteinVazirani(6).circuit(), dev,
                          8192, core::JigsawOptions{}, 44);
    core::JigsawOptions no_recomp;
    no_recomp.recompileCpms = false;
    programs.emplace_back(workloads::QftAdjoint(5).circuit(), dev, 4096,
                          no_recomp, 55);
    // Same circuit as the BV program under JigSaw-M: shares its
    // global prefix across differing schedules.
    programs.emplace_back(workloads::BernsteinVazirani(6).circuit(), dev,
                          8192, core::jigsawMOptions(), 66);
    return programs;
}

TEST(CrossProgramBatching, MergedMatchesSequentialBitwise)
{
    const device::DeviceModel dev = device::toronto();
    const std::vector<ServiceProgram> programs = mergeablePrograms(dev);
    ASSERT_GE(programs.size(), 5u);

    const std::vector<JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    core::JigsawService service(
        core::ServiceOptions{core::MergePolicy::Always});
    const std::vector<JigsawResult> merged = service.run(programs);
    ASSERT_EQ(merged.size(), programs.size());

    // Every program went down the merge path and the duplicated
    // (circuit, device) pairs produced genuinely shared batches.
    EXPECT_EQ(service.stats().mergedPrograms, programs.size());
    EXPECT_GT(service.stats().mergedGroups, 0u);
    EXPECT_GT(service.stats().crossProgramGroups, 0u);
    // The duplicated (circuit, device) pairs also pooled their global
    // sampling into multi-program batches (merged-path global
    // batching), without disturbing the bitwise check below.
    EXPECT_GT(service.stats().pooledGlobalBatches, 0u);
    EXPECT_GE(service.stats().pooledGlobalPrograms, 2u);
    EXPECT_EQ(service.stats().latenciesMs.size(), programs.size());
    EXPECT_GE(service.stats().latencyPercentileMs(0.95),
              service.stats().latencyPercentileMs(0.5));

    for (std::size_t i = 0; i < programs.size(); ++i) {
        expectBitwisePmf(sequential[i].output, merged[i].output);
        expectBitwisePmf(sequential[i].globalPmf, merged[i].globalPmf);
        ASSERT_EQ(sequential[i].cpms.size(), merged[i].cpms.size());
        for (std::size_t c = 0; c < sequential[i].cpms.size(); ++c) {
            expectBitwisePmf(sequential[i].cpms[c].localPmf,
                             merged[i].cpms[c].localPmf);
        }
    }
}

TEST(CrossProgramBatching, EveryMergePolicyAgrees)
{
    const device::DeviceModel dev = device::toronto();
    const std::vector<ServiceProgram> programs = mergeablePrograms(dev);

    core::JigsawService never(
        core::ServiceOptions{core::MergePolicy::Never});
    core::JigsawService automatic(
        core::ServiceOptions{core::MergePolicy::Auto});
    core::JigsawService always(
        core::ServiceOptions{core::MergePolicy::Always});
    const std::vector<JigsawResult> a = never.run(programs);
    const std::vector<JigsawResult> b = automatic.run(programs);
    const std::vector<JigsawResult> c = always.run(programs);

    EXPECT_EQ(never.stats().mergedPrograms, 0u);
    EXPECT_EQ(always.stats().mergedPrograms, programs.size());
    for (std::size_t i = 0; i < programs.size(); ++i) {
        expectBitwisePmf(a[i].output, b[i].output);
        expectBitwisePmf(a[i].output, c[i].output);
    }
}

TEST(CrossProgramBatching, CallerSuppliedExecutorStaysUnmerged)
{
    // A caller-supplied executor cannot be merged; its program runs
    // as an independent session alongside the merged batch, and both
    // kinds still match their sequential reference.
    const device::DeviceModel dev = device::toronto();
    std::vector<ServiceProgram> programs = mergeablePrograms(dev);
    auto executor = std::make_shared<sim::NoisySimulator>(
        dev, sim::NoisySimulatorOptions{.seed = 77});
    programs.emplace_back(workloads::Ghz(6).circuit(), dev, 4096,
                          core::JigsawOptions{}, 0, executor);

    const std::vector<JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    core::JigsawService service(
        core::ServiceOptions{core::MergePolicy::Always});
    const std::vector<JigsawResult> merged = service.run(programs);
    EXPECT_EQ(service.stats().mergedPrograms, programs.size() - 1);
    EXPECT_GT(executor->cacheMisses(), 0u);
    for (std::size_t i = 0; i + 1 < programs.size(); ++i)
        expectBitwisePmf(sequential[i].output, merged[i].output);
}

TEST(CrossProgramBatching, ExecutorCountsCrossProgramBatches)
{
    // runBatch with specs tagged by different programs, each on its
    // own stream: the per-program histograms must match what each
    // program's private executor would draw, and the cross-program
    // counters must tick.
    const circuit::QuantumCircuit qc = workloads::Ghz(6).circuit();
    const std::vector<std::vector<int>> subsets = {
        {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}};

    Rng stream_a(901);
    Rng stream_b(902);
    std::vector<sim::CpmSpec> specs;
    for (const std::vector<int> &s : subsets)
        specs.push_back({s, 300, &stream_a, 0});
    for (const std::vector<int> &s : subsets)
        specs.push_back({s, 300, &stream_b, 1});

    sim::IdealSimulator shared(1);
    const std::vector<Histogram> hists = shared.runBatch(qc, specs);
    EXPECT_EQ(shared.batchStats().crossProgramBatches, 1u);
    EXPECT_EQ(shared.batchStats().crossProgramMarginals, specs.size());

    // Private-executor reference for each program.
    for (int program = 0; program < 2; ++program) {
        sim::IdealSimulator private_executor(901ULL + program);
        std::vector<sim::CpmSpec> own;
        for (const std::vector<int> &s : subsets)
            own.push_back({s, 300});
        const std::vector<Histogram> expected =
            private_executor.runBatch(qc, own);
        for (std::size_t j = 0; j < subsets.size(); ++j) {
            expectBitwisePmf(
                expected[j].toPmf(),
                hists[static_cast<std::size_t>(program) * subsets.size() +
                      j]
                    .toPmf());
        }
    }
}

TEST(CrossProgramBatching, MergedPathHammersSharedExecutorDeterministically)
{
    // The TSan leg's merge-path case: a larger batch with heavy
    // duplication, run twice through the merged service — exercises
    // the shared executor's caches from the warm-up TaskGroup and the
    // merged sampling concurrently with reconstruction tasks, and the
    // two runs must agree bitwise.
    const device::DeviceModel dev = device::toronto();
    std::vector<ServiceProgram> programs;
    for (int i = 0; i < 12; ++i) {
        const int width = 5 + (i % 3);
        circuit::QuantumCircuit qc = i % 2 == 0
                                         ? workloads::Ghz(width).circuit()
                                         : workloads::BernsteinVazirani(
                                               width)
                                               .circuit();
        programs.emplace_back(std::move(qc), dev, 4096,
                              i % 3 == 0 ? core::jigsawMOptions()
                                         : core::JigsawOptions{},
                              500 + 13ULL * static_cast<std::uint64_t>(i));
    }
    core::JigsawService service(
        core::ServiceOptions{core::MergePolicy::Always});
    const std::vector<JigsawResult> first = service.run(programs);
    EXPECT_GT(service.stats().crossProgramGroups, 0u);
    const std::vector<JigsawResult> second = service.run(programs);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        expectBitwisePmf(first[i].output, second[i].output);
}

} // namespace
} // namespace jigsaw
