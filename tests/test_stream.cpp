/**
 * @file
 * Streaming-scheduler tests: the submit/poll JigsawService must
 * reproduce sequential runJigsaw bitwise under concurrent submitters
 * and arbitrary window composition, cancellation must unwind jobs
 * cleanly out of open merge windows, heterogeneous devices must never
 * merge, and the guarded percentile helpers must survive degenerate
 * sample sets. This file joins test_service in the CI ThreadSanitizer
 * leg (run with JIGSAW_THREADS=4 or more to exercise the pool).
 */
#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/fault.h"
#include "core/scheduler.h"
#include "obs/registry.h"
#include "core/service.h"
#include "device/library.h"
#include "sim/simulators.h"
#include "workloads/bv.h"
#include "workloads/ghz.h"
#include "workloads/qft.h"

namespace jigsaw {
namespace {

using core::JigsawResult;
using core::JobHandle;
using core::JobState;
using core::Priority;
using core::ServiceProgram;
using core::StreamingScheduler;
using core::StreamOptions;

/** Exact equality: the two PMFs store identical doubles. */
void
expectBitwisePmf(const Pmf &a, const Pmf &b)
{
    ASSERT_EQ(a.nQubits(), b.nQubits());
    ASSERT_EQ(a.support(), b.support());
    for (const auto &[outcome, p] : a.probabilities())
        EXPECT_EQ(p, b.prob(outcome)) << "outcome " << outcome;
}

void
expectBitwiseResult(const JigsawResult &expected,
                    const JigsawResult &actual)
{
    expectBitwisePmf(expected.output, actual.output);
    expectBitwisePmf(expected.globalPmf, actual.globalPmf);
    ASSERT_EQ(expected.cpms.size(), actual.cpms.size());
    for (std::size_t c = 0; c < expected.cpms.size(); ++c) {
        EXPECT_EQ(expected.cpms[c].subset, actual.cpms[c].subset);
        expectBitwisePmf(expected.cpms[c].localPmf,
                         actual.cpms[c].localPmf);
    }
}

/** Poll until @p handle reaches @p state (fails the test on timeout). */
void
pollUntil(const StreamingScheduler &scheduler, JobHandle handle,
          JobState state)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    for (;;) {
        const auto status = scheduler.poll(handle);
        ASSERT_TRUE(status.has_value());
        if (status->state == state)
            return;
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "timed out waiting for job state "
            << static_cast<int>(state) << " (currently "
            << static_cast<int>(status->state) << ")";
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

/** A mixed batch with duplicated (circuit, device) pairs to merge. */
std::vector<ServiceProgram>
streamPrograms(const device::DeviceModel &dev)
{
    std::vector<ServiceProgram> programs;
    programs.emplace_back(workloads::Ghz(6).circuit(), dev, 8192,
                          core::JigsawOptions{}, 11);
    programs.emplace_back(workloads::Ghz(6).circuit(), dev, 8192,
                          core::JigsawOptions{}, 22);
    programs.emplace_back(workloads::BernsteinVazirani(6).circuit(), dev,
                          6144, core::JigsawOptions{}, 33);
    programs.emplace_back(workloads::Ghz(6).circuit(), dev, 8192,
                          core::jigsawMOptions(), 44);
    core::JigsawOptions no_recomp;
    no_recomp.recompileCpms = false;
    programs.emplace_back(workloads::QftAdjoint(5).circuit(), dev, 4096,
                          no_recomp, 55);
    programs.emplace_back(workloads::BernsteinVazirani(6).circuit(), dev,
                          6144, core::JigsawOptions{}, 66);
    return programs;
}

// ------------------------------------------------- bitwise determinism

TEST(StreamingScheduler, WindowedJobsMatchSequentialBitwise)
{
    const device::DeviceModel dev = device::toronto();
    const std::vector<ServiceProgram> programs = streamPrograms(dev);
    const std::vector<JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Always;
    options.windowMs = 50.0;
    StreamingScheduler scheduler(options);
    std::vector<JobHandle> handles;
    for (const ServiceProgram &program : programs)
        handles.push_back(scheduler.submit(program).handle);
    for (std::size_t i = 0; i < handles.size(); ++i) {
        const JigsawResult result = scheduler.wait(handles[i]);
        expectBitwiseResult(sequential[i], result);
    }
    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.submitted, programs.size());
    EXPECT_EQ(stats.completed, programs.size());
    EXPECT_EQ(stats.jobsObserved, programs.size());
    EXPECT_GE(stats.latencyPercentileMs(0.95),
              stats.latencyPercentileMs(0.5));
}

TEST(StreamingScheduler, ConcurrentSubmittersMatchSequentialBitwise)
{
    // The acceptance test: >= 4 submitter threads pushing programs
    // through one service concurrently, every result bitwise-equal to
    // a sequential runJigsaw whatever the window composition the
    // races produced. Seeds differ across threads so every job is its
    // own draw stream.
    const device::DeviceModel dev = device::toronto();
    std::vector<ServiceProgram> programs;
    for (int t = 0; t < 4; ++t) {
        for (const ServiceProgram &base : streamPrograms(dev)) {
            ServiceProgram program = base;
            program.executorSeed += 1000ULL * (t + 1);
            programs.push_back(std::move(program));
        }
    }
    const std::vector<JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    core::ServiceOptions service_options;
    service_options.stream.mergePolicy = core::MergePolicy::Auto;
    service_options.stream.windowMs = 20.0;
    core::JigsawService service(service_options);

    const std::size_t per_thread = programs.size() / 4;
    std::vector<JobHandle> handles(programs.size());
    std::vector<std::thread> submitters;
    for (std::size_t t = 0; t < 4; ++t) {
        submitters.emplace_back([&, t] {
            for (std::size_t i = t * per_thread;
                 i < (t + 1) * per_thread; ++i) {
                const Priority priority = static_cast<Priority>(
                    i % core::kPriorityClasses);
                handles[i] = service.submit(programs[i], priority).handle;
            }
            // Each submitter also waits on (half of) its own jobs, so
            // wait() itself runs concurrently with other submitters.
            for (std::size_t i = t * per_thread;
                 i < t * per_thread + per_thread / 2; ++i)
                service.wait(handles[i]);
        });
    }
    for (std::thread &submitter : submitters)
        submitter.join();
    service.drain();

    for (std::size_t i = 0; i < programs.size(); ++i) {
        const JigsawResult result = service.wait(handles[i]);
        expectBitwiseResult(sequential[i], result);
    }
    const core::StreamStats stats = service.streamStats();
    EXPECT_EQ(stats.completed, programs.size());
    EXPECT_EQ(stats.failed + stats.cancelled, 0u);
    // The duplicated (circuit, device) pairs should have produced at
    // least one genuinely merged window.
    EXPECT_GT(stats.mergedJobs, 0u);
}

TEST(StreamingScheduler, ImmediateDispatchMatchesSequentialBitwise)
{
    // MergePolicy::Never + windowMs 0 is submit-and-run-immediately:
    // every job an independent session with a private executor,
    // exactly today's batch-service legacy path.
    const device::DeviceModel dev = device::toronto();
    const std::vector<ServiceProgram> programs = streamPrograms(dev);
    const std::vector<JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Never;
    options.windowMs = 0.0;
    StreamingScheduler scheduler(options);
    std::vector<JobHandle> handles;
    for (const ServiceProgram &program : programs)
        handles.push_back(scheduler.submit(program).handle);
    scheduler.drain();
    for (std::size_t i = 0; i < handles.size(); ++i)
        expectBitwiseResult(sequential[i], scheduler.wait(handles[i]));
    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.mergedWindows, 0u);
    EXPECT_EQ(stats.loneDispatches, programs.size());
}

// ----------------------------------------------- heterogeneous devices

TEST(StreamingScheduler, AlwaysNeverMergesAcrossDeviceFingerprints)
{
    // MergePolicy::Always windows aggressively — but only within a
    // device fingerprint. Identical circuits on two devices must run
    // in separate windows against separate shared executors, and
    // every result must still match its own device's sequential run.
    const device::DeviceModel toronto = device::toronto();
    const device::DeviceModel paris = device::paris();
    ASSERT_NE(toronto.fingerprint(), paris.fingerprint());

    std::vector<ServiceProgram> programs;
    for (std::uint64_t seed : {201, 202}) {
        programs.emplace_back(workloads::Ghz(6).circuit(), toronto, 8192,
                              core::JigsawOptions{}, seed);
    }
    for (std::uint64_t seed : {203, 204}) {
        programs.emplace_back(workloads::Ghz(6).circuit(), paris, 8192,
                              core::JigsawOptions{}, seed);
    }
    const std::vector<JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Always;
    options.windowMs = 200.0; // plenty for all four to share windows
    StreamingScheduler scheduler(options);
    std::vector<JobHandle> handles;
    for (const ServiceProgram &program : programs)
        handles.push_back(scheduler.submit(program).handle);
    scheduler.drain();
    for (std::size_t i = 0; i < programs.size(); ++i)
        expectBitwiseResult(sequential[i], scheduler.wait(handles[i]));

    // Two same-device pairs: at most one merged window per device,
    // never one spanning both (a cross-device window would have
    // produced a single window with all four jobs).
    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, programs.size());
    EXPECT_LE(stats.mergedWindows, 2u);
    EXPECT_LE(stats.mergedJobs, 4u);
}

// ------------------------------------------------------- cancellation

TEST(StreamingScheduler, CancelInsideOpenMergeWindow)
{
    const device::DeviceModel dev = device::toronto();
    std::vector<ServiceProgram> programs;
    programs.emplace_back(workloads::Ghz(6).circuit(), dev, 8192,
                          core::JigsawOptions{}, 301);
    programs.emplace_back(workloads::Ghz(6).circuit(), dev, 8192,
                          core::JigsawOptions{}, 302);
    const std::vector<JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Always;
    options.windowMs = 60000.0; // held open until drain()
    options.windowMaxJobs = 8;
    StreamingScheduler scheduler(options);
    const JobHandle kept = scheduler.submit(programs[0]).handle;
    const JobHandle cancelled = scheduler.submit(programs[1]).handle;

    // Both jobs must actually be sitting inside the open window.
    pollUntil(scheduler, kept, JobState::Windowed);
    pollUntil(scheduler, cancelled, JobState::Windowed);

    EXPECT_TRUE(scheduler.cancel(cancelled));
    EXPECT_EQ(scheduler.poll(cancelled)->state, JobState::Cancelled);
    EXPECT_THROW(scheduler.wait(cancelled), std::runtime_error);
    // Cancelling again (or after terminal) reports failure.
    EXPECT_FALSE(scheduler.cancel(cancelled));

    scheduler.drain(); // closes the window; the kept job runs alone
    expectBitwiseResult(sequential[0], scheduler.wait(kept));

    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.cancelled, 1u);
    EXPECT_EQ(stats.mergedWindows, 0u);
    EXPECT_EQ(stats.loneDispatches, 1u);
}

TEST(StreamingScheduler, CancelQueuedAndUnknownHandles)
{
    StreamOptions options;
    options.windowMs = 0.0;
    StreamingScheduler scheduler(options);
    EXPECT_FALSE(scheduler.cancel(JobHandle{9999}));
    EXPECT_FALSE(scheduler.poll(JobHandle{9999}).has_value());
    EXPECT_THROW(scheduler.wait(JobHandle{9999}),
                 std::invalid_argument);
}

// ------------------------------------------------- priority / windows

TEST(StreamingScheduler, HighPriorityClosesItsWindowImmediately)
{
    const device::DeviceModel dev = device::toronto();
    std::vector<ServiceProgram> programs;
    programs.emplace_back(workloads::Ghz(6).circuit(), dev, 8192,
                          core::JigsawOptions{}, 401);
    programs.emplace_back(workloads::Ghz(6).circuit(), dev, 8192,
                          core::JigsawOptions{}, 402);
    const std::vector<JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Always;
    options.windowMs = 60000.0;
    StreamingScheduler scheduler(options);
    const JobHandle low =
        scheduler.submit(programs[0], Priority::Low).handle;
    pollUntil(scheduler, low, JobState::Windowed);
    // The High job joins the Low job's open window and closes it on
    // the spot — wait() would otherwise block on the 60 s deadline.
    const JobHandle high =
        scheduler.submit(programs[1], Priority::High).handle;
    expectBitwiseResult(sequential[1], scheduler.wait(high));
    expectBitwiseResult(sequential[0], scheduler.wait(low));

    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.mergedWindows, 1u);
    EXPECT_EQ(stats.mergedJobs, 2u);
    EXPECT_GE(stats.queueWaitPercentileMs(Priority::Low, 0.5),
              stats.queueWaitPercentileMs(Priority::High, 0.5));
}

// ------------------------------------------------------------ failures

TEST(StreamingScheduler, FailuresPropagateThroughWait)
{
    const device::DeviceModel dev = device::toronto();
    StreamOptions options;
    options.windowMs = 0.0;
    StreamingScheduler scheduler(options);
    const JobHandle ok =
        scheduler
            .submit(ServiceProgram(workloads::Ghz(5).circuit(), dev,
                                   4096, core::JigsawOptions{}, 501))
            .handle;
    // A one-trial budget fails in the planning stage.
    const JobHandle bad =
        scheduler
            .submit(ServiceProgram(workloads::Ghz(5).circuit(), dev, 1))
            .handle;
    EXPECT_THROW(scheduler.wait(bad), std::invalid_argument);
    EXPECT_EQ(scheduler.poll(bad)->state, JobState::Failed);
    EXPECT_NO_THROW(scheduler.wait(ok));
    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.failed, 1u);
}

// ------------------------------------- bounded admission and shedding

/** Disarms the process-wide fault injector however the test exits. */
struct FaultGuard
{
    ~FaultGuard() { FaultInjector::instance().clear(); }
};

TEST(StreamingScheduler, ShedsLowBeforeHighWithFiniteHints)
{
    const device::DeviceModel dev = device::toronto();
    std::vector<ServiceProgram> programs;
    for (std::uint64_t seed = 601; seed <= 607; ++seed) {
        programs.emplace_back(workloads::Ghz(6).circuit(), dev, 8192,
                              core::JigsawOptions{}, seed);
    }
    const std::vector<JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Always;
    options.windowMs = 60000.0; // held open: the backlog cannot drain
    options.windowMaxJobs = 16;
    options.maxQueuedJobs = 5; // shed thresholds: Low 3, Normal 4, High 5
    StreamingScheduler scheduler(options);

    // Three Low jobs fill the Low class's share of the queue...
    std::vector<std::pair<std::size_t, JobHandle>> admitted;
    for (std::size_t i = 0; i < 3; ++i) {
        const core::SubmitResult outcome =
            scheduler.submit(programs[i], Priority::Low);
        ASSERT_TRUE(outcome.admitted);
        admitted.emplace_back(i, outcome.handle);
    }
    // ...the fourth Low is shed with a finite, positive retry hint...
    const core::SubmitResult shed_low =
        scheduler.submit(programs[3], Priority::Low);
    EXPECT_FALSE(shed_low.admitted);
    EXPECT_FALSE(static_cast<bool>(shed_low));
    EXPECT_TRUE(std::isfinite(shed_low.tryLaterAfterMs));
    EXPECT_GT(shed_low.tryLaterAfterMs, 0.0);
    // ...while Normal still admits at the same backlog...
    const core::SubmitResult normal =
        scheduler.submit(programs[4], Priority::Normal);
    ASSERT_TRUE(normal.admitted);
    admitted.emplace_back(4, normal.handle);
    // ...the next Normal sheds (backlog 4 >= its threshold)...
    const core::SubmitResult shed_normal =
        scheduler.submit(programs[5], Priority::Normal);
    EXPECT_FALSE(shed_normal.admitted);
    EXPECT_TRUE(std::isfinite(shed_normal.tryLaterAfterMs));
    EXPECT_GT(shed_normal.tryLaterAfterMs, 0.0);
    // ...and High keeps the full queue.
    const core::SubmitResult high =
        scheduler.submit(programs[6], Priority::High);
    ASSERT_TRUE(high.admitted);
    admitted.emplace_back(6, high.handle);

    scheduler.drain();
    for (const auto &[index, handle] : admitted)
        expectBitwiseResult(sequential[index], scheduler.wait(handle));
    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, admitted.size());
    EXPECT_EQ(stats.shed, 2u);
    EXPECT_EQ(stats.shedByClass[static_cast<std::size_t>(Priority::Low)],
              1u);
    EXPECT_EQ(
        stats.shedByClass[static_cast<std::size_t>(Priority::Normal)],
        1u);
    EXPECT_EQ(
        stats.shedByClass[static_cast<std::size_t>(Priority::High)], 0u);
}

TEST(StreamingScheduler, DrainClearsSheddingBacklog)
{
    const device::DeviceModel dev = device::toronto();
    std::vector<ServiceProgram> programs;
    for (std::uint64_t seed = 1001; seed <= 1004; ++seed) {
        programs.emplace_back(workloads::Ghz(6).circuit(), dev, 8192,
                              core::JigsawOptions{}, seed);
    }
    const std::vector<JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Always;
    options.windowMs = 60000.0;
    options.maxQueuedJobs = 3; // Normal sheds once the backlog hits 3
    StreamingScheduler scheduler(options);

    std::vector<JobHandle> handles;
    for (std::size_t i = 0; i < 3; ++i) {
        const core::SubmitResult outcome = scheduler.submit(programs[i]);
        ASSERT_TRUE(outcome.admitted);
        handles.push_back(outcome.handle);
    }
    const core::SubmitResult shed = scheduler.submit(programs[3]);
    EXPECT_FALSE(shed.admitted);
    EXPECT_TRUE(std::isfinite(shed.tryLaterAfterMs));
    EXPECT_GT(shed.tryLaterAfterMs, 0.0);

    // Draining dispatches the held window; with the backlog gone the
    // shed program is admitted on resubmission — the hint's contract.
    scheduler.drain();
    const core::SubmitResult retry = scheduler.submit(programs[3]);
    ASSERT_TRUE(retry.admitted);
    handles.push_back(retry.handle);
    scheduler.drain(); // the retry opened a fresh held window: close it

    for (std::size_t i = 0; i < handles.size(); ++i)
        expectBitwiseResult(sequential[i], scheduler.wait(handles[i]));
    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, 4u);
    EXPECT_EQ(stats.shed, 1u);
}

// ------------------------------------------- deadlines (SLO expiry)

TEST(StreamingScheduler, DeadlineExpiresInsideOpenWindow)
{
    const device::DeviceModel dev = device::toronto();
    std::vector<ServiceProgram> programs;
    programs.emplace_back(workloads::Ghz(6).circuit(), dev, 8192,
                          core::JigsawOptions{}, 701);
    programs.emplace_back(workloads::Ghz(6).circuit(), dev, 8192,
                          core::JigsawOptions{}, 702);
    programs[1].deadlineMs = 40.0;
    const std::vector<JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Always;
    options.windowMs = 60000.0; // the window outlives the deadline
    StreamingScheduler scheduler(options);
    const JobHandle kept = scheduler.submit(programs[0]).handle;
    const JobHandle doomed = scheduler.submit(programs[1]).handle;
    pollUntil(scheduler, kept, JobState::Windowed);

    // The dispatcher expires the deadlined job out of the still-open
    // window on its own clock — no wait() needed to trigger it.
    pollUntil(scheduler, doomed, JobState::Expired);
    EXPECT_THROW(scheduler.wait(doomed), DeadlineExceededError);
    EXPECT_FALSE(scheduler.cancel(doomed)); // already terminal

    // The surviving window partner is untouched by the expiry.
    scheduler.drain();
    expectBitwiseResult(sequential[0], scheduler.wait(kept));
    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.expired, 1u);
    EXPECT_EQ(stats.failed, 0u);
}

// ------------------------------------- fault injection and retries

TEST(StreamingScheduler, TransientFaultsRetryToBitwiseIdenticalResults)
{
    const device::DeviceModel dev = device::toronto();
    const std::vector<ServiceProgram> programs = streamPrograms(dev);
    // Reference first: the injector must not see the sequential runs.
    const std::vector<JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    FaultGuard guard;
    FaultInjector::instance().configure(
        parseFaultSpec("stage.compile:first=2;executor.run:first=1"));

    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Never;
    options.windowMs = 0.0;
    StreamingScheduler scheduler(options);
    std::vector<JobHandle> handles;
    for (const ServiceProgram &program : programs)
        handles.push_back(scheduler.submit(program).handle);
    scheduler.drain();

    // Every fault was absorbed by a full-pipeline restart that replays
    // the job's private draw stream: results stay bitwise-sequential.
    for (std::size_t i = 0; i < handles.size(); ++i)
        expectBitwiseResult(sequential[i], scheduler.wait(handles[i]));
    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, programs.size());
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.retries, 3u);
    EXPECT_EQ(FaultInjector::instance().injected(), 3u);
}

TEST(StreamingScheduler, PoisonedWindowQuarantinesMembersSolo)
{
    const device::DeviceModel dev = device::toronto();
    std::vector<ServiceProgram> programs;
    programs.emplace_back(workloads::Ghz(6).circuit(), dev, 8192,
                          core::JigsawOptions{}, 801);
    programs.emplace_back(workloads::Ghz(6).circuit(), dev, 8192,
                          core::JigsawOptions{}, 802);
    const std::vector<JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    // The detail "@2" arms only merged executions covering exactly two
    // sources: the poisoned window fails (terminally — quarantine must
    // not depend on the error being transient), while the members'
    // solo exclusive-window retries run at detail 1 and pass.
    FaultGuard guard;
    FaultInjector::instance().configure(
        parseFaultSpec("merge.execute@2:first=1:terminal"));

    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Always;
    options.windowMs = 60000.0;
    StreamingScheduler scheduler(options);
    const JobHandle first = scheduler.submit(programs[0]).handle;
    const JobHandle second = scheduler.submit(programs[1]).handle;
    pollUntil(scheduler, first, JobState::Windowed);
    pollUntil(scheduler, second, JobState::Windowed);

    scheduler.drain(); // closes the 2-job window; its execution faults
    expectBitwiseResult(sequential[0], scheduler.wait(first));
    expectBitwiseResult(sequential[1], scheduler.wait(second));
    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.quarantinedJobs, 2u);
    EXPECT_EQ(FaultInjector::instance().injectedAt("merge.execute"), 1u);
}

TEST(StreamingScheduler, CancelInsideWindowUnderFaults)
{
    const device::DeviceModel dev = device::toronto();
    std::vector<ServiceProgram> programs;
    for (std::uint64_t seed = 901; seed <= 903; ++seed) {
        programs.emplace_back(workloads::Ghz(6).circuit(), dev, 8192,
                              core::JigsawOptions{}, seed);
    }
    const std::vector<JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    FaultGuard guard;
    FaultInjector::instance().configure(
        parseFaultSpec("merge.execute@2:first=1"));

    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Always;
    options.windowMs = 60000.0;
    StreamingScheduler scheduler(options);
    std::vector<JobHandle> handles;
    for (const ServiceProgram &program : programs)
        handles.push_back(scheduler.submit(program).handle);
    for (const JobHandle handle : handles)
        pollUntil(scheduler, handle, JobState::Windowed);

    // Cancellation shrinks the open window to two members; the
    // poisoned two-job execution then quarantines both survivors,
    // whose solo retries still match sequential bitwise.
    EXPECT_TRUE(scheduler.cancel(handles[1]));
    scheduler.drain();
    EXPECT_THROW(scheduler.wait(handles[1]), std::runtime_error);
    expectBitwiseResult(sequential[0], scheduler.wait(handles[0]));
    expectBitwiseResult(sequential[2], scheduler.wait(handles[2]));
    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_EQ(stats.cancelled, 1u);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.quarantinedJobs, 2u);
}

TEST(StreamingScheduler, ConcurrentSubmittersWithFaultsStayBitwise)
{
    // The robustness acceptance test: four submitter threads, faults
    // injected across the compile, batch-execute, and reconstruct
    // layers — every surviving job must still be bitwise-identical to
    // its sequential run.
    const device::DeviceModel dev = device::toronto();
    std::vector<ServiceProgram> programs;
    for (int t = 0; t < 4; ++t) {
        for (const ServiceProgram &base : streamPrograms(dev)) {
            ServiceProgram program = base;
            program.executorSeed += 2000ULL * (t + 1);
            programs.push_back(std::move(program));
        }
    }
    const std::vector<JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    FaultGuard guard;
    FaultInjector::instance().configure(parseFaultSpec(
        "stage.compile:first=2;executor.runBatch:first=1;"
        "stage.reconstruct:first=1"));

    core::ServiceOptions service_options;
    service_options.stream.mergePolicy = core::MergePolicy::Auto;
    service_options.stream.windowMs = 20.0;
    core::JigsawService service(service_options);

    const std::size_t per_thread = programs.size() / 4;
    std::vector<JobHandle> handles(programs.size());
    std::vector<std::thread> submitters;
    for (std::size_t t = 0; t < 4; ++t) {
        submitters.emplace_back([&, t] {
            for (std::size_t i = t * per_thread;
                 i < (t + 1) * per_thread; ++i) {
                handles[i] =
                    service
                        .submit(programs[i],
                                static_cast<Priority>(
                                    i % core::kPriorityClasses))
                        .handle;
            }
        });
    }
    for (std::thread &submitter : submitters)
        submitter.join();
    service.drain();

    for (std::size_t i = 0; i < programs.size(); ++i)
        expectBitwiseResult(sequential[i], service.wait(handles[i]));
    const core::StreamStats stats = service.streamStats();
    EXPECT_EQ(stats.completed, programs.size());
    EXPECT_EQ(stats.failed + stats.cancelled + stats.expired, 0u);
    // The compile and reconstruct rules fire unconditionally (those
    // stages run for every job); the runBatch rule needs a merged
    // window to exist, so only bound the total from below.
    EXPECT_GE(FaultInjector::instance().injected(), 3u);
    EXPECT_GE(stats.retries + stats.quarantinedJobs, 3u);
}

// --------------------------------- result retention and stats bounds

TEST(StreamingScheduler, ReleaseAndRetentionBoundDeliveredResults)
{
    const device::DeviceModel dev = device::toronto();
    std::vector<ServiceProgram> programs;
    for (std::uint64_t seed = 1101; seed <= 1104; ++seed) {
        programs.emplace_back(workloads::Ghz(5).circuit(), dev, 4096,
                              core::JigsawOptions{}, seed);
    }

    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Never;
    options.windowMs = 0.0;
    options.resultRetention = 2;
    StreamingScheduler scheduler(options);
    std::vector<JobHandle> handles;
    for (const ServiceProgram &program : programs)
        handles.push_back(scheduler.submit(program).handle);
    // Delivering all four results evicts the two delivered first.
    for (const JobHandle handle : handles)
        scheduler.wait(handle);

    EXPECT_FALSE(scheduler.poll(handles[0]).has_value());
    EXPECT_FALSE(scheduler.poll(handles[1]).has_value());
    EXPECT_THROW(scheduler.wait(handles[0]), std::invalid_argument);
    ASSERT_TRUE(scheduler.poll(handles[2]).has_value());

    // release() evicts eagerly; double-release and unknown are false.
    EXPECT_TRUE(scheduler.release(handles[2]));
    EXPECT_FALSE(scheduler.poll(handles[2]).has_value());
    EXPECT_FALSE(scheduler.release(handles[2]));
    EXPECT_FALSE(scheduler.release(JobHandle{9999}));

    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, 4u);
    EXPECT_EQ(stats.evicted, 2u);
    EXPECT_EQ(stats.released, 1u);

    // A live (non-terminal) job cannot be released out from under its
    // waiter — only terminal jobs can.
    StreamOptions held;
    held.mergePolicy = core::MergePolicy::Always;
    held.windowMs = 60000.0;
    StreamingScheduler held_scheduler(held);
    const JobHandle live = held_scheduler.submit(programs[0]).handle;
    pollUntil(held_scheduler, live, JobState::Windowed);
    EXPECT_FALSE(held_scheduler.release(live));
    EXPECT_TRUE(held_scheduler.cancel(live));
    EXPECT_TRUE(held_scheduler.release(live)); // terminal now
}

TEST(StreamingScheduler, LatencyHistogramsStayBoundedWithExactCounters)
{
    const device::DeviceModel dev = device::toronto();
    std::vector<ServiceProgram> programs;
    for (std::uint64_t seed = 1201; seed <= 1210; ++seed) {
        programs.emplace_back(workloads::Ghz(5).circuit(), dev, 2048,
                              core::JigsawOptions{}, seed);
    }

    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Never;
    options.windowMs = 0.0;
    StreamingScheduler scheduler(options);
    for (std::size_t i = 0; i < programs.size(); ++i) {
        scheduler.submit(programs[i],
                         static_cast<Priority>(i %
                                               core::kPriorityClasses));
    }
    scheduler.drain();

    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, 10u);
    // Every completion lands in the per-class fixed-bucket histograms:
    // no sample is dropped, yet memory is bounded by the bucket count,
    // not the job count — the reservoir this replaced traded one for
    // the other. The class counters stay exact.
    EXPECT_EQ(stats.jobsObserved, 10u);
    std::uint64_t histogrammed = 0;
    for (const obs::HistogramData &h : stats.latencyByClass) {
        histogrammed += h.count;
        if (h.bounds) {
            EXPECT_EQ(h.counts.size(), h.bounds->size() + 1);
        }
    }
    EXPECT_EQ(histogrammed, 10u);
    EXPECT_EQ(
        stats.completedByClass[static_cast<std::size_t>(Priority::High)],
        4u);
    EXPECT_EQ(stats.completedByClass[static_cast<std::size_t>(
                  Priority::Normal)],
              3u);
    EXPECT_EQ(
        stats.completedByClass[static_cast<std::size_t>(Priority::Low)],
        3u);
}

// ------------------------------------------------ tenant fair share

TEST(StreamingScheduler, TenantFairShareAvoidsStarvation)
{
    const device::DeviceModel dev = device::toronto();
    std::vector<ServiceProgram> programs;
    for (std::uint64_t seed = 1301; seed <= 1307; ++seed) {
        programs.emplace_back(workloads::Ghz(6).circuit(), dev, 8192,
                              core::JigsawOptions{}, seed);
        programs.back().tenant = seed <= 1306 ? "hog" : "guest";
    }

    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Never;
    options.windowMs = 0.0;
    options.maxInFlight = 1; // serialize dispatch so order is visible
    StreamingScheduler scheduler(options);
    std::vector<JobHandle> handles;
    for (const ServiceProgram &program : programs)
        handles.push_back(scheduler.submit(program, Priority::Low).handle);
    scheduler.drain();

    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, programs.size());
    // The guest submitted LAST, behind six hog jobs. FIFO would
    // dispatch it last; deficit round-robin alternates tenants, so the
    // guest rides out after roughly one hog job while the sixth hog
    // job waits behind the rest of its own tenant's queue.
    const auto guest = scheduler.poll(handles[6]);
    const auto last_hog = scheduler.poll(handles[5]);
    ASSERT_TRUE(guest.has_value());
    ASSERT_TRUE(last_hog.has_value());
    EXPECT_LT(guest->queueWaitMs, last_hog->queueWaitMs);
}

// -------------------------------------------- percentile degeneracies

TEST(PercentileGuards, EmptySingleAndDegenerateQ)
{
    // Empty: every percentile is 0, including under a NaN q.
    EXPECT_EQ(core::percentileNearestRank({}, 0.5), 0.0);
    EXPECT_EQ(core::percentileNearestRank({}, std::nan("")), 0.0);

    // Single sample: every percentile IS the sample.
    for (double q : {0.0, 0.5, 0.95, 1.0, -3.0, 7.0}) {
        EXPECT_EQ(core::percentileNearestRank({42.0}, q), 42.0);
    }
    EXPECT_EQ(core::percentileNearestRank({42.0}, std::nan("")), 42.0);

    // Small sets: nearest-rank, q clamped into [0, 1].
    const std::vector<double> two = {10.0, 20.0};
    EXPECT_EQ(core::percentileNearestRank(two, 0.5), 10.0);
    EXPECT_EQ(core::percentileNearestRank(two, 0.95), 20.0);
    EXPECT_EQ(core::percentileNearestRank(two, -1.0), 10.0);
    EXPECT_EQ(core::percentileNearestRank(two, 2.0), 20.0);
    EXPECT_EQ(core::percentileNearestRank(two, std::nan("")), 10.0);

    // ServiceStats rides the same guard.
    core::ServiceStats service_stats;
    EXPECT_EQ(service_stats.latencyPercentileMs(0.5), 0.0);
    service_stats.latenciesMs = {7.5};
    EXPECT_EQ(service_stats.latencyPercentileMs(0.0), 7.5);
    EXPECT_EQ(service_stats.latencyPercentileMs(0.95), 7.5);

    // StreamStats: empty overall and per-class histogram views.
    core::StreamStats stream_stats;
    EXPECT_EQ(stream_stats.latencyPercentileMs(0.5), 0.0);
    EXPECT_EQ(stream_stats.latencyPercentileMs(Priority::High, 0.95),
              0.0);
    const std::size_t normal =
        static_cast<std::size_t>(Priority::Normal);
    stream_stats.latencyByClass[normal].observe(3.0);
    stream_stats.queueWaitByClass[normal].observe(1.0);
    stream_stats.executeByClass[normal].observe(2.0);
    // A single observation comes back exact through the histogram view
    // (HistogramData::quantile's single-sample guard), both overall
    // (classes merged) and per class.
    EXPECT_EQ(stream_stats.latencyPercentileMs(0.95), 3.0);
    EXPECT_EQ(
        stream_stats.latencyPercentileMs(Priority::Normal, 0.95), 3.0);
    EXPECT_EQ(
        stream_stats.queueWaitPercentileMs(Priority::Normal, 0.5), 1.0);
    EXPECT_EQ(
        stream_stats.executePercentileMs(Priority::Normal, 0.5), 2.0);
    // A class with no samples stays guarded.
    EXPECT_EQ(stream_stats.latencyPercentileMs(Priority::Low, 0.95),
              0.0);
}

} // namespace
} // namespace jigsaw
