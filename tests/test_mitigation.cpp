/**
 * @file
 * Mitigation-baseline tests: EDM ensembles and the tensored MBM
 * inverse (exact recovery on an analytically corrupted distribution),
 * plus the JigSaw+MBM composition of Figure 14.
 */
#include <gtest/gtest.h>

#include "core/jigsaw.h"
#include "device/library.h"
#include "metrics/metrics.h"
#include "mitigation/edm.h"
#include "mitigation/mbm.h"
#include "workloads/ghz.h"

namespace jigsaw {
namespace mitigation {
namespace {

using circuit::QuantumCircuit;
using device::DeviceModel;

DeviceModel
tinyDevice(double e0, double e1)
{
    device::Topology topo = device::linearTopology(3);
    device::Calibration cal(3, 2);
    for (int q = 0; q < 3; ++q) {
        cal.qubit(q).readoutError01 = e0;
        cal.qubit(q).readoutError10 = e1;
    }
    return DeviceModel("tiny", std::move(topo), std::move(cal));
}

TEST(Edm, RunsEnsembleAndMerges)
{
    const DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 10});
    const workloads::Ghz ghz(6);

    const EdmResult result =
        runEdm(ghz.circuit(), dev, executor, 8192, 4);
    EXPECT_EQ(result.mappings.size(), 4u);
    EXPECT_NEAR(result.output.totalMass(), 1.0, 1e-9);
    // EDM should retain a reasonable success probability.
    EXPECT_GT(metrics::pst(result.output, ghz), 0.2);
}

TEST(Edm, RejectsBadEnsembleSize)
{
    const DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 10});
    const workloads::Ghz ghz(4);
    EXPECT_THROW(runEdm(ghz.circuit(), dev, executor, 100, 0),
                 std::invalid_argument);
}

TEST(Mbm, RecoversAnalyticallyCorruptedDistribution)
{
    // True distribution over one measured qubit: {0: 0.7, 1: 0.3}.
    // Corrupt it with the exact confusion matrix, then mitigate.
    const double e0 = 0.02;
    const double e1 = 0.08;
    const DeviceModel dev = tinyDevice(e0, e1);

    QuantumCircuit qc(3, 1);
    qc.h(0).measure(0, 0);
    const MbmMitigator mitigator(qc, dev);

    Pmf observed(1);
    observed.set(0, 0.7 * (1 - e0) + 0.3 * e1);
    observed.set(1, 0.7 * e0 + 0.3 * (1 - e1));
    const Pmf recovered = mitigator.mitigate(observed);
    EXPECT_NEAR(recovered.prob(0), 0.7, 1e-9);
    EXPECT_NEAR(recovered.prob(1), 0.3, 1e-9);
}

TEST(Mbm, RecoversTwoQubitProduct)
{
    const double e0 = 0.03;
    const double e1 = 0.06;
    const DeviceModel dev = tinyDevice(e0, e1);

    QuantumCircuit qc(3, 2);
    qc.h(0).measure(0, 0).measure(1, 1);
    const MbmMitigator mitigator(qc, dev);

    // True distribution: {00: 0.5, 11: 0.5} (GHZ-like). Note the
    // channel includes crosstalk = 0 here (gamma unset).
    auto flip0 = [&](double bit0_is_one) {
        return bit0_is_one ? 1 - e1 : e0;
    };
    Pmf observed(2);
    for (BasisState read = 0; read < 4; ++read) {
        double p = 0.0;
        for (const BasisState truth : {0b00ULL, 0b11ULL}) {
            double term = 0.5;
            for (int c = 0; c < 2; ++c) {
                const double p_read1 = flip0(getBit(truth, c));
                term *= getBit(read, c) ? p_read1 : 1 - p_read1;
            }
            p += term;
        }
        observed.set(read, p);
    }

    const Pmf recovered = mitigator.mitigate(observed);
    EXPECT_NEAR(recovered.prob(0b00), 0.5, 1e-9);
    EXPECT_NEAR(recovered.prob(0b11), 0.5, 1e-9);
    EXPECT_NEAR(recovered.prob(0b01), 0.0, 1e-9);
}

TEST(Mbm, ClampsNegativeQuasiProbabilities)
{
    const DeviceModel dev = tinyDevice(0.1, 0.1);
    QuantumCircuit qc(3, 1);
    qc.h(0).measure(0, 0);
    const MbmMitigator mitigator(qc, dev);

    // A distribution that is impossible under the confusion model
    // (sharper than the channel allows) produces negative entries
    // that must be clamped away.
    Pmf impossible(1);
    impossible.set(0, 1.0);
    const Pmf recovered = mitigator.mitigate(impossible);
    EXPECT_NEAR(recovered.totalMass(), 1.0, 1e-9);
    for (const auto &[outcome, p] : recovered.probabilities())
        EXPECT_GE(p, 0.0);
}

TEST(Mbm, ImprovesNoisyMeasurementOnly)
{
    // With gate noise off, MBM should essentially undo the readout
    // channel (up to sampling and correlated flips).
    const DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(
        dev, {.seed = 21, .trajectories = 0, .gateNoise = false,
              .measurementNoise = true});
    const workloads::Ghz ghz(6);

    const compiler::CompiledCircuit compiled =
        compiler::transpile(ghz.circuit(), dev);
    const Pmf observed =
        executor.run(compiled.physical, 200000).toPmf();
    const MbmMitigator mitigator(compiled.physical, dev);
    const Pmf mitigated = mitigator.mitigate(observed);

    EXPECT_GT(metrics::pst(mitigated, ghz),
              metrics::pst(observed, ghz));
    EXPECT_GT(metrics::fidelity(mitigated, ghz),
              metrics::fidelity(observed, ghz));
}

TEST(Mbm, RejectsTooManyQubits)
{
    const DeviceModel dev = device::manhattan();
    QuantumCircuit qc(65, 30);
    for (int q = 0; q < 30; ++q)
        qc.measure(q, q);
    EXPECT_THROW(MbmMitigator(qc, dev), std::invalid_argument);
}

TEST(Mbm, RejectsMismatchedPmf)
{
    const DeviceModel dev = tinyDevice(0.02, 0.02);
    QuantumCircuit qc(3, 2);
    qc.h(0).measure(0, 0).measure(1, 1);
    const MbmMitigator mitigator(qc, dev);
    Pmf wrong(3);
    wrong.set(0, 1.0);
    EXPECT_THROW(mitigator.mitigate(wrong), std::invalid_argument);
}

TEST(MbmJigsaw, CompositionImprovesOverJigsawAlone)
{
    const DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 31});
    const workloads::Ghz ghz(8);

    const core::JigsawResult js =
        core::runJigsaw(ghz.circuit(), dev, executor, 16384);
    const Pmf combined = applyMbmToJigsaw(js, dev);

    // Figure 14: JigSaw + MBM beats JigSaw alone (allow a small
    // sampling-noise margin).
    EXPECT_GE(metrics::pst(combined, ghz),
              metrics::pst(js.output, ghz) - 0.02);
    EXPECT_NEAR(combined.totalMass(), 1.0, 1e-9);
}

} // namespace
} // namespace mitigation
} // namespace jigsaw
