/**
 * @file
 * Observability tests: the structured logger (levels, sinks, the
 * disarmed fast path), the process-wide metrics registry (instrument
 * identity, histogram fidelity, bounded label cardinality, concurrent
 * writers against a scraping reader — this file joins the CI
 * ThreadSanitizer leg), the Prometheus text exposition (golden render
 * plus the structural validator CI re-implements), and per-job
 * pipeline tracing through the streaming scheduler: solo and windowed
 * span completeness, retry epochs, and worker-tier lease ids.
 */
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/log.h"
#include "core/scheduler.h"
#include "core/service.h"
#include "device/library.h"
#include "obs/exposition.h"
#include "obs/http.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "workloads/bv.h"
#include "workloads/ghz.h"

namespace jigsaw {
namespace {

using core::JobHandle;
using core::Priority;
using core::ServiceProgram;
using core::StreamingScheduler;
using core::StreamOptions;

/** Disarms the process-wide fault injector however the test exits. */
struct FaultGuard
{
    ~FaultGuard() { FaultInjector::instance().clear(); }
};

/** Captures log output for one test and restores the previous sink
 *  and runtime level on destruction. */
struct LogCapture
{
    explicit LogCapture(log::Level level, bool json = false)
        : previousLevel_(log::runtimeLevel())
    {
        if (json)
            previous_ = log::setSink(
                std::make_shared<log::JsonLinesSink>(stream));
        else
            previous_ =
                log::setSink(std::make_shared<log::TextSink>(stream));
        log::setRuntimeLevel(level);
    }

    ~LogCapture()
    {
        log::setSink(previous_);
        log::setRuntimeLevel(previousLevel_);
    }

    std::string text() const { return stream.str(); }

    std::ostringstream stream;

  private:
    std::shared_ptr<log::Sink> previous_;
    log::Level previousLevel_;
};

/** Two small mergeable programs (same circuit/device skeleton). */
std::vector<ServiceProgram>
obsPrograms(const device::DeviceModel &dev, std::uint64_t seed_base)
{
    std::vector<ServiceProgram> programs;
    programs.emplace_back(workloads::Ghz(6).circuit(), dev, 4096,
                          core::JigsawOptions{}, seed_base + 1);
    programs.emplace_back(workloads::Ghz(6).circuit(), dev, 4096,
                          core::JigsawOptions{}, seed_base + 2);
    programs.emplace_back(workloads::BernsteinVazirani(6).circuit(), dev,
                          4096, core::JigsawOptions{}, seed_base + 3);
    return programs;
}

/** Stage names of @p spans for attempt @p attempt, in start order. */
std::vector<std::string>
stagesOf(const std::vector<obs::TraceSpan> &spans, std::uint32_t attempt)
{
    std::vector<std::string> stages;
    for (const obs::TraceSpan &span : spans) {
        if (span.attempt == attempt)
            stages.emplace_back(span.stage);
    }
    return stages;
}

/** One blocking GET / against 127.0.0.1:@p port; returns the whole
 *  response (status line, headers, body). */
std::string
httpGet(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }
    const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
    (void)!::write(fd, request.data(), request.size());
    std::string response;
    char buffer[4096];
    for (;;) {
        const ssize_t n = ::read(fd, buffer, sizeof(buffer));
        if (n <= 0)
            break;
        response.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
}

// ------------------------------------------------ structured logging

TEST(Log, ParseLevelNamesAndDigits)
{
    EXPECT_EQ(log::parseLevel("trace", log::Level::Off),
              log::Level::Trace);
    EXPECT_EQ(log::parseLevel("DEBUG", log::Level::Off),
              log::Level::Debug);
    EXPECT_EQ(log::parseLevel("warning", log::Level::Off),
              log::Level::Warn);
    EXPECT_EQ(log::parseLevel("4", log::Level::Off), log::Level::Error);
    EXPECT_EQ(log::parseLevel("none", log::Level::Warn), log::Level::Off);
    EXPECT_EQ(log::parseLevel("bogus", log::Level::Info),
              log::Level::Info);
}

TEST(Log, TextSinkRendersModuleMessageAndFields)
{
    LogCapture capture(log::Level::Info);
    static log::Logger &lg = log::logger("test.obs");
    JIGSAW_LOG_INFO(lg, "job shed", log::kv("class", "Low"),
                    log::kv("backlog", 17),
                    log::kv("retry_after_ms", 2.5),
                    log::kv("transient", true));
    const std::string line = capture.text();
    EXPECT_NE(line.find("info "), std::string::npos);
    EXPECT_NE(line.find("test.obs"), std::string::npos);
    EXPECT_NE(line.find("job shed"), std::string::npos);
    EXPECT_NE(line.find("class=Low"), std::string::npos);
    EXPECT_NE(line.find("backlog=17"), std::string::npos);
    EXPECT_NE(line.find("retry_after_ms=2.5"), std::string::npos);
    EXPECT_NE(line.find("transient=true"), std::string::npos);
}

TEST(Log, TextSinkQuotesValuesWithSpaces)
{
    LogCapture capture(log::Level::Info);
    static log::Logger &lg = log::logger("test.obs");
    JIGSAW_LOG_INFO(lg, "window closed",
                    log::kv("reason", "deadline expired"));
    EXPECT_NE(capture.text().find("reason=\"deadline expired\""),
              std::string::npos);
}

TEST(Log, JsonLinesSinkEmitsOneParseableObjectPerRecord)
{
    LogCapture capture(log::Level::Info, /*json=*/true);
    static log::Logger &lg = log::logger("test.obs");
    JIGSAW_LOG_WARN(lg, "lease \"lost\"", log::kv("lease", 42),
                    log::kv("worker", std::string("w\n1")));
    const std::string line = capture.text();
    // One line, one object, numbers bare, strings escaped.
    EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
    EXPECT_EQ(line.rfind("{\"ts\":", 0), 0u);
    EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos);
    EXPECT_NE(line.find("\"module\":\"test.obs\""), std::string::npos);
    EXPECT_NE(line.find("\"msg\":\"lease \\\"lost\\\"\""),
              std::string::npos);
    EXPECT_NE(line.find("\"lease\":42"), std::string::npos);
    EXPECT_NE(line.find("\"worker\":\"w\\n1\""), std::string::npos);
}

TEST(Log, RuntimeLevelSuppressesBelowFloor)
{
    LogCapture capture(log::Level::Warn);
    static log::Logger &lg = log::logger("test.obs");
    EXPECT_FALSE(JIGSAW_LOG_ENABLED(lg, log::Level::Debug));
    EXPECT_FALSE(JIGSAW_LOG_ENABLED(lg, log::Level::Info));
    EXPECT_TRUE(JIGSAW_LOG_ENABLED(lg, log::Level::Warn));
    JIGSAW_LOG_INFO(lg, "suppressed");
    JIGSAW_LOG_DEBUG(lg, "also suppressed", log::kv("n", 1));
    EXPECT_TRUE(capture.text().empty());
    JIGSAW_LOG_ERROR(lg, "emitted");
    EXPECT_NE(capture.text().find("emitted"), std::string::npos);
}

TEST(Log, DisarmedStatementsAreCheap)
{
    LogCapture capture(log::Level::Off);
    static log::Logger &lg = log::logger("test.obs");
    // 1M disarmed statements: one relaxed load + branch each. The
    // bound is deliberately loose (CI machines vary wildly); the test
    // exists to catch a regression that makes the disarmed path
    // allocate or format.
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 1000000; ++i)
        JIGSAW_LOG_DEBUG(lg, "disarmed", log::kv("i", i));
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    EXPECT_TRUE(capture.text().empty());
    EXPECT_LT(ms, 2000.0);
}

// ----------------------------------------------- metrics registry

TEST(Registry, InstrumentsAreInternedAndMonotone)
{
    obs::Registry registry;
    obs::Counter &a = registry.counter("test_total", "help",
                                       {{"k", "v"}});
    obs::Counter &b = registry.counter("test_total", "help",
                                       {{"k", "v"}});
    EXPECT_EQ(&a, &b); // same (name, labels) -> same instrument
    obs::Counter &other = registry.counter("test_total", "help",
                                           {{"k", "w"}});
    EXPECT_NE(&a, &other);
    a.add();
    a.add(4);
    EXPECT_EQ(b.value(), 5u);
    EXPECT_EQ(other.value(), 0u);

    obs::Gauge &gauge = registry.gauge("test_gauge", "help");
    gauge.set(2.5);
    gauge.add(-1.0);
    EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
}

TEST(Registry, HistogramDataQuantilesAndMerge)
{
    obs::HistogramData h;
    EXPECT_EQ(h.quantile(0.5), 0.0); // empty guard
    h.observe(3.0);
    EXPECT_EQ(h.quantile(0.95), 3.0); // single-sample guard: exact
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);

    obs::HistogramData other;
    for (double v : {1.0, 2.0, 50.0, 200.0})
        other.observe(v);
    h.merge(other);
    EXPECT_EQ(h.count, 5u);
    EXPECT_DOUBLE_EQ(h.sum, 256.0);
    // Bucketed quantiles are approximate (the selected bucket's mean)
    // but must stay monotone in q and within the observed range.
    double last = 0.0;
    for (double q : {0.1, 0.5, 0.9, 1.0}) {
        const double value = h.quantile(q);
        EXPECT_GE(value, last);
        EXPECT_GE(value, 1.0);
        EXPECT_LE(value, 200.0);
        last = value;
    }
}

TEST(Registry, LabelCardinalityIsBoundedByOverflowChild)
{
    obs::Registry registry;
    for (int i = 0; i < 200; ++i) {
        registry
            .counter("test_overflow_total", "help",
                     {{"id", std::to_string(i)}})
            .add();
    }
    const std::vector<obs::FamilySnapshot> families = registry.collect();
    ASSERT_EQ(families.size(), 1u);
    // At most kMaxChildren distinct children plus the shared overflow
    // child, which absorbed every lookup past the bound.
    EXPECT_LE(families[0].children.size(), obs::Registry::kMaxChildren + 1);
    bool found_overflow = false;
    double overflow_value = 0.0;
    for (const obs::ChildSnapshot &child : families[0].children) {
        for (const auto &[key, value] : child.labels) {
            if (key == "overflow" && value == "true") {
                found_overflow = true;
                overflow_value = child.value;
            }
        }
    }
    EXPECT_TRUE(found_overflow);
    EXPECT_GE(overflow_value, 1.0);
}

TEST(Registry, ConcurrentWritersAndScrapersStayExact)
{
    // The TSan target: four writer threads hammering one counter, one
    // gauge, and one histogram while a reader scrapes concurrently.
    // After the writers join, totals are exact.
    obs::Registry registry;
    obs::Counter &counter = registry.counter("tsan_total", "help");
    obs::Gauge &gauge = registry.gauge("tsan_gauge", "help");
    obs::Histogram &hist = registry.histogram(
        "tsan_ms", "help", obs::defaultLatencyBoundsMs());

    constexpr int kThreads = 4;
    constexpr int kPerThread = 5000;
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                counter.add();
                gauge.set(static_cast<double>(i));
                hist.observe(0.01 * (t + 1) * (i % 100 + 1));
            }
        });
    }
    std::thread scraper([&] {
        for (int i = 0; i < 50; ++i) {
            const std::string body = obs::renderPrometheus(registry);
            EXPECT_FALSE(body.empty());
        }
    });
    for (std::thread &writer : writers)
        writer.join();
    scraper.join();

    EXPECT_EQ(counter.value(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(hist.count(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
    const obs::HistogramData snap = hist.snapshot();
    std::uint64_t bucketed = 0;
    for (const std::uint64_t c : snap.counts)
        bucketed += c;
    EXPECT_EQ(bucketed, snap.count);
}

// --------------------------------------------- Prometheus exposition

TEST(Exposition, GoldenRenderOfSmallRegistry)
{
    obs::Registry registry;
    registry.counter("alpha_total", "Things counted.", {{"kind", "a"}})
        .add(3);
    registry.gauge("beta_gauge", "A level.").set(1.5);
    auto bounds = std::make_shared<const std::vector<double>>(
        std::vector<double>{1.0, 10.0});
    obs::Histogram &hist =
        registry.histogram("gamma_ms", "A latency.", bounds);
    hist.observe(0.5);
    hist.observe(3.5);

    const std::string body = obs::renderPrometheus(registry);
    const std::string expected =
        "# HELP alpha_total Things counted.\n"
        "# TYPE alpha_total counter\n"
        "alpha_total{kind=\"a\"} 3\n"
        "# HELP beta_gauge A level.\n"
        "# TYPE beta_gauge gauge\n"
        "beta_gauge 1.5\n"
        "# HELP gamma_ms A latency.\n"
        "# TYPE gamma_ms histogram\n"
        "gamma_ms_bucket{le=\"1\"} 1\n"
        "gamma_ms_bucket{le=\"10\"} 2\n"
        "gamma_ms_bucket{le=\"+Inf\"} 2\n"
        "gamma_ms_sum 4\n"
        "gamma_ms_count 2\n";
    EXPECT_EQ(body, expected);

    std::string error;
    EXPECT_TRUE(obs::expositionLooksValid(body, &error)) << error;
}

TEST(Exposition, LabelValuesAreEscaped)
{
    obs::Registry registry;
    registry
        .counter("escape_total", "help",
                 {{"path", "a\"b\\c\nd"}})
        .add();
    const std::string body = obs::renderPrometheus(registry);
    EXPECT_NE(body.find("escape_total{path=\"a\\\"b\\\\c\\nd\"} 1"),
              std::string::npos);
    std::string error;
    EXPECT_TRUE(obs::expositionLooksValid(body, &error)) << error;
}

TEST(Exposition, ValidatorRejectsStructuralBreakage)
{
    std::string error;
    EXPECT_FALSE(obs::expositionLooksValid("", &error));
    // A sample without HELP/TYPE comments.
    EXPECT_FALSE(obs::expositionLooksValid("orphan_total 1\n", &error));
    EXPECT_NE(error.find("orphan_total"), std::string::npos);
    // An unterminated label set.
    EXPECT_FALSE(obs::expositionLooksValid(
        "# HELP x h\n# TYPE x counter\nx{a=\"b 1\n", &error));
    // A non-numeric value.
    EXPECT_FALSE(obs::expositionLooksValid(
        "# HELP x h\n# TYPE x counter\nx zebra\n", &error));
}

TEST(Exposition, ProcessMetricsCoverCompilerAndSimdCounters)
{
    const std::string body = obs::renderProcessMetrics();
    std::string error;
    EXPECT_TRUE(obs::expositionLooksValid(body, &error)) << error;
    EXPECT_NE(body.find("jigsaw_transpile_cache_total{result=\"hit\"}"),
              std::string::npos);
    EXPECT_NE(body.find("jigsaw_transpile_cache_total{result=\"miss\"}"),
              std::string::npos);
    EXPECT_NE(body.find("jigsaw_simd_dispatch_total{backend=\"scalar\"}"),
              std::string::npos);
    EXPECT_NE(body.find("jigsaw_transpile_skeleton_rebinds_total"),
              std::string::npos);
}

TEST(Exposition, ProcessCountersEntriesKeepBenchReportNames)
{
    const obs::ProcessCounters counters =
        obs::ProcessCounters::snapshot();
    const auto transpile = counters.transpileEntries();
    EXPECT_STREQ(transpile[0].name, "transpile_cache_hits");
    EXPECT_STREQ(transpile[1].name, "transpile_cache_misses");
    EXPECT_STREQ(transpile[2].name, "transpile_skeleton_rebinds");
    const auto simd_entries = counters.simdEntries();
    EXPECT_STREQ(simd_entries[0].name, "simd/dispatch_scalar");
    EXPECT_STREQ(simd_entries[1].name, "simd/dispatch_avx2");
    EXPECT_STREQ(simd_entries[2].name, "simd/dispatch_avx512");
    // since() clamps at zero instead of underflowing.
    obs::ProcessCounters later = counters;
    later.transpileCacheHits += 7;
    EXPECT_EQ(later.since(counters).transpileCacheHits, 7u);
    EXPECT_EQ(counters.since(later).transpileCacheHits, 0u);
}

// --------------------------------------- scheduler metrics coverage

TEST(StreamMetrics, SchedulerPublishesIntoProcessRegistry)
{
    const device::DeviceModel dev = device::toronto();
    const std::vector<ServiceProgram> programs = obsPrograms(dev, 2000);

    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Always;
    options.windowMs = 50.0;
    StreamingScheduler scheduler(options);
    std::vector<JobHandle> handles;
    for (const ServiceProgram &program : programs)
        handles.push_back(scheduler.submit(program).handle);
    scheduler.drain();
    for (const JobHandle handle : handles)
        scheduler.wait(handle);

    const std::string body = obs::renderProcessMetrics();
    std::string error;
    ASSERT_TRUE(obs::expositionLooksValid(body, &error)) << error;
    // Stream lifecycle counters, the merge counters, the per-class
    // latency histograms, and the adaptive-window gauges all surface
    // in one scrape.
    for (const char *needle : {
             "jigsaw_stream_submitted_total",
             "jigsaw_stream_jobs_total{outcome=\"completed\"}",
             "jigsaw_stream_windows_total{kind=\"merged\"}",
             "jigsaw_stream_merged_jobs_total",
             "jigsaw_stream_latency_ms_bucket{class=\"normal\"",
             "jigsaw_stream_queue_wait_ms_sum",
             "jigsaw_stream_execute_ms_count",
             "jigsaw_stream_backlog_jobs",
             "jigsaw_stream_inflight",
             "jigsaw_window_width_ms",
             "jigsaw_burst_score",
             "jigsaw_executor_cache_events_total",
             "jigsaw_transpile_cache_total",
             "jigsaw_simd_dispatch_total",
         }) {
        EXPECT_NE(body.find(needle), std::string::npos)
            << "missing " << needle;
    }
}

TEST(StreamMetrics, ServiceMetricsTextMatchesEndpointRender)
{
    core::JigsawService service;
    const std::string body = service.metricsText();
    std::string error;
    EXPECT_TRUE(obs::expositionLooksValid(body, &error)) << error;
    EXPECT_NE(body.find("jigsaw_transpile_cache_total"),
              std::string::npos);
}

TEST(StreamMetrics, HttpEndpointServesOneScrapePerConnection)
{
    const device::DeviceModel dev = device::toronto();
    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Never;
    options.windowMs = 0.0;
    options.metricsPort = 0; // ephemeral
    StreamingScheduler scheduler(options);
    ASSERT_GT(scheduler.metricsPort(), 0);

    scheduler.wait(
        scheduler.submit(obsPrograms(dev, 2100)[0]).handle);

    const std::string response = httpGet(scheduler.metricsPort());
    ASSERT_FALSE(response.empty());
    EXPECT_EQ(response.rfind("HTTP/1.0 200 OK", 0), 0u);
    EXPECT_NE(response.find("text/plain; version=0.0.4"),
              std::string::npos);
    const std::size_t body_at = response.find("\r\n\r\n");
    ASSERT_NE(body_at, std::string::npos);
    const std::string body = response.substr(body_at + 4);
    std::string error;
    EXPECT_TRUE(obs::expositionLooksValid(body, &error)) << error;
    EXPECT_NE(body.find("jigsaw_stream_submitted_total"),
              std::string::npos);
}

TEST(StreamMetrics, DefaultBurstGrowNeverWidensTheWindow)
{
    // burstGrowMax defaults to 1.0: the burst detector may score
    // arrivals, but the effective window can only shrink — the
    // pre-detector semantics, preserved exactly.
    const device::DeviceModel dev = device::toronto();
    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Auto;
    options.windowMs = 5.0;
    StreamingScheduler scheduler(options);
    std::vector<JobHandle> handles;
    for (int round = 0; round < 3; ++round) {
        for (const ServiceProgram &program : obsPrograms(dev, 2200))
            handles.push_back(scheduler.submit(program).handle);
    }
    scheduler.drain();
    for (const JobHandle handle : handles)
        scheduler.wait(handle);
    EXPECT_EQ(scheduler.stats().windowGrows, 0u);
}

// ------------------------------------------------ per-job tracing

TEST(Trace, SoloPipelineSpansAreComplete)
{
    const device::DeviceModel dev = device::toronto();
    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Never;
    options.windowMs = 0.0;
    options.trace = std::make_shared<obs::TraceRecorder>();
    StreamingScheduler scheduler(options);
    const JobHandle handle =
        scheduler.submit(obsPrograms(dev, 2300)[0]).handle;
    scheduler.wait(handle);

    const std::vector<obs::TraceSpan> spans =
        options.trace->spansFor(handle.id);
    EXPECT_EQ(stagesOf(spans, 0),
              (std::vector<std::string>{"plan", "compile", "dispatch",
                                        "execute", "reconstruct"}));
    for (const obs::TraceSpan &span : spans) {
        EXPECT_EQ(span.windowId, 0u); // never windowed
        EXPECT_EQ(span.leaseId, 0u);  // executed locally
        EXPECT_GE(span.durationMs, 0.0);
    }
}

TEST(Trace, WindowedSpansCarryTheWindowId)
{
    const device::DeviceModel dev = device::toronto();
    const std::vector<ServiceProgram> programs = obsPrograms(dev, 2400);
    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Always;
    options.windowMs = 50.0;
    options.trace = std::make_shared<obs::TraceRecorder>();
    StreamingScheduler scheduler(options);
    std::vector<JobHandle> handles;
    for (const ServiceProgram &program : programs)
        handles.push_back(scheduler.submit(program).handle);
    scheduler.drain();
    for (const JobHandle handle : handles)
        scheduler.wait(handle);

    std::set<std::uint64_t> window_ids;
    for (const JobHandle handle : handles) {
        const std::vector<obs::TraceSpan> spans =
            options.trace->spansFor(handle.id);
        const std::vector<std::string> stages = stagesOf(spans, 0);
        // plan -> compile -> window -> dispatch -> execute ->
        // reconstruct, in start order.
        EXPECT_EQ(stages,
                  (std::vector<std::string>{"plan", "compile", "window",
                                            "dispatch", "execute",
                                            "reconstruct"}));
        for (const obs::TraceSpan &span : spans) {
            const std::string stage = span.stage;
            if (stage == "plan" || stage == "compile")
                continue;
            EXPECT_NE(span.windowId, 0u) << stage;
            window_ids.insert(span.windowId);
        }
    }
    // All three jobs merged into the same window.
    EXPECT_EQ(window_ids.size(), 1u);
}

TEST(Trace, RetriedJobsGetAFreshAttemptEpoch)
{
    const device::DeviceModel dev = device::toronto();
    FaultGuard guard;
    FaultInjector::instance().configure(
        parseFaultSpec("executor.run:first=1"));

    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Never;
    options.windowMs = 0.0;
    options.trace = std::make_shared<obs::TraceRecorder>();
    StreamingScheduler scheduler(options);
    const JobHandle handle =
        scheduler.submit(obsPrograms(dev, 2500)[0]).handle;
    scheduler.wait(handle);
    EXPECT_EQ(scheduler.stats().retries, 1u);

    const std::vector<obs::TraceSpan> spans =
        options.trace->spansFor(handle.id);
    std::set<std::uint32_t> attempts;
    for (const obs::TraceSpan &span : spans)
        attempts.insert(span.attempt);
    // The failed pass recorded under epoch 0, the successful retry
    // under epoch 1 — the attempts are distinguishable.
    EXPECT_EQ(attempts, (std::set<std::uint32_t>{0, 1}));
    const std::vector<std::string> retry_stages = stagesOf(spans, 1);
    EXPECT_NE(std::find(retry_stages.begin(), retry_stages.end(),
                        "reconstruct"),
              retry_stages.end());
}

TEST(Trace, WorkerTierExecuteSpansCarryLeaseIds)
{
    const device::DeviceModel dev = device::toronto();
    const std::vector<ServiceProgram> programs = obsPrograms(dev, 2600);
    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Always;
    options.windowMs = 50.0;
    options.worker.workers = 2;
    options.trace = std::make_shared<obs::TraceRecorder>();
    StreamingScheduler scheduler(options);
    std::vector<JobHandle> handles;
    for (const ServiceProgram &program : programs)
        handles.push_back(scheduler.submit(program).handle);
    scheduler.drain();
    for (const JobHandle handle : handles)
        scheduler.wait(handle);
    ASSERT_GE(scheduler.stats().leasesGranted, 1u);

    for (const JobHandle handle : handles) {
        const std::vector<obs::TraceSpan> spans =
            options.trace->spansFor(handle.id);
        bool saw_leased_execute = false;
        for (const obs::TraceSpan &span : spans) {
            if (std::string(span.stage) == "execute" && span.leaseId != 0)
                saw_leased_execute = true;
        }
        EXPECT_TRUE(saw_leased_execute) << "job " << handle.id;
    }
}

TEST(Trace, WorkerCrashRedispatchStillTracesCompletion)
{
    const device::DeviceModel dev = device::toronto();
    const std::vector<ServiceProgram> programs = obsPrograms(dev, 2700);
    FaultGuard guard;
    FaultInjector::instance().configure(
        parseFaultSpec("worker.crash:first=1"));

    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Always;
    options.windowMs = 50.0;
    options.worker.workers = 2;
    options.worker.heartbeatTimeoutMs = 50.0;
    options.trace = std::make_shared<obs::TraceRecorder>();
    StreamingScheduler scheduler(options);
    std::vector<JobHandle> handles;
    for (const ServiceProgram &program : programs)
        handles.push_back(scheduler.submit(program).handle);
    scheduler.drain();
    for (const JobHandle handle : handles)
        scheduler.wait(handle);

    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, programs.size());
    EXPECT_GE(stats.leasesRevoked + stats.localFallbacks, 1u);
    // Whatever the fleet did, every job's trace still ends with an
    // execute and a reconstruct span on its final attempt.
    for (const JobHandle handle : handles) {
        const std::vector<obs::TraceSpan> spans =
            options.trace->spansFor(handle.id);
        ASSERT_FALSE(spans.empty());
        std::uint32_t last_attempt = 0;
        for (const obs::TraceSpan &span : spans)
            last_attempt = std::max(last_attempt, span.attempt);
        const std::vector<std::string> stages =
            stagesOf(spans, last_attempt);
        EXPECT_NE(std::find(stages.begin(), stages.end(), "execute"),
                  stages.end());
        EXPECT_NE(std::find(stages.begin(), stages.end(), "reconstruct"),
                  stages.end());
    }
}

TEST(Trace, RecorderEvictsOldestJobsFifo)
{
    obs::TraceRecorder recorder(2);
    recorder.record(1, 0, "plan", 0.0, 1.0, 0, 0);
    recorder.record(2, 0, "plan", 1.0, 1.0, 0, 0);
    recorder.record(3, 0, "plan", 2.0, 1.0, 0, 0);
    EXPECT_EQ(recorder.jobIds(),
              (std::vector<std::uint64_t>{2, 3}));
    EXPECT_TRUE(recorder.spansFor(1).empty());
    EXPECT_EQ(recorder.totalSpans(), 2u);
}

TEST(Trace, JsonLinesShapeIsStable)
{
    obs::TraceRecorder recorder;
    recorder.record(7, 1, "execute", 1.5, 2.25, 3, 9);
    const std::string lines = recorder.toJsonLines();
    EXPECT_EQ(lines.rfind("{\"job\":7,\"attempt\":1,\"stage\":"
                          "\"execute\",\"start_ms\":1.500,"
                          "\"dur_ms\":2.250,\"thread\":",
                          0),
              0u);
    EXPECT_NE(lines.find(",\"window\":3,\"lease\":9}\n"),
              std::string::npos);
}

} // namespace
} // namespace jigsaw
