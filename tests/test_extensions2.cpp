/**
 * @file
 * Tests for the second extension round: empirical readout
 * characterization (calibration-free MBM), the W-state workload, and
 * CSV export.
 */
#include <sstream>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "core/jigsaw.h"
#include "device/library.h"
#include "metrics/metrics.h"
#include "mitigation/characterize.h"
#include "mitigation/mbm.h"
#include "sim/simulators.h"
#include "workloads/registry.h"
#include "workloads/wstate.h"

namespace jigsaw {
namespace {

using circuit::QuantumCircuit;
using device::DeviceModel;

DeviceModel
flatDevice(double e0, double e1)
{
    device::Topology topo = device::linearTopology(4);
    device::Calibration cal(4, 3);
    for (int q = 0; q < 4; ++q) {
        cal.qubit(q).readoutError01 = e0;
        cal.qubit(q).readoutError10 = e1;
    }
    return DeviceModel("flat", std::move(topo), std::move(cal));
}

// --------------------------------------------------- characterization

TEST(Characterize, RecoversModelRates)
{
    const double e0 = 0.03;
    const double e1 = 0.07;
    const DeviceModel dev = flatDevice(e0, e1);
    sim::NoisySimulator executor(dev, {.seed = 81});

    QuantumCircuit target(4, 2);
    target.h(0).measure(0, 0).measure(2, 1);
    const mitigation::EmpiricalConfusion confusion =
        mitigation::characterizeReadout(target, executor, 100000);

    ASSERT_EQ(confusion.flip0.size(), 2u);
    for (int c = 0; c < 2; ++c) {
        EXPECT_NEAR(confusion.flip0[static_cast<std::size_t>(c)], e0,
                    0.005);
        EXPECT_NEAR(confusion.flip1[static_cast<std::size_t>(c)], e1,
                    0.005);
    }
}

TEST(Characterize, MatchesCrosstalkConditions)
{
    // A 5-qubit simultaneous measurement must show higher empirical
    // error than an isolated one on the same qubit.
    const DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 82});

    QuantumCircuit isolated(dev.nQubits(), 1);
    isolated.measure(0, 0);
    QuantumCircuit grouped(dev.nQubits(), 5);
    for (int q = 0; q < 5; ++q)
        grouped.measure(q, q);

    const auto alone =
        mitigation::characterizeReadout(isolated, executor, 60000);
    const auto together =
        mitigation::characterizeReadout(grouped, executor, 60000);
    EXPECT_GT(together.flip1[0], alone.flip1[0]);
}

TEST(Characterize, RejectsBadInputs)
{
    const DeviceModel dev = flatDevice(0.02, 0.02);
    sim::NoisySimulator executor(dev, {.seed = 83});
    QuantumCircuit no_measure(4, 1);
    no_measure.h(0);
    EXPECT_THROW(
        mitigation::characterizeReadout(no_measure, executor, 100),
        std::invalid_argument);
    QuantumCircuit ok(4, 1);
    ok.measure(0, 0);
    EXPECT_THROW(mitigation::characterizeReadout(ok, executor, 0),
                 std::invalid_argument);
}

TEST(Characterize, EmpiricalMbmMitigates)
{
    // Full calibration-free flow: characterize, build MBM from the
    // empirical rates, mitigate a measurement-noise-only GHZ run.
    const DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(
        dev, {.seed = 84, .trajectories = 0, .gateNoise = false,
              .measurementNoise = true});
    const auto ghz = workloads::makeWorkload("GHZ-6");

    const compiler::CompiledCircuit compiled =
        compiler::transpile(ghz->circuit(), dev);
    const auto confusion = mitigation::characterizeReadout(
        compiled.physical, executor, 60000);
    const mitigation::MbmMitigator mbm(confusion);

    const Pmf observed =
        executor.run(compiled.physical, 100000).toPmf();
    const Pmf mitigated = mbm.mitigate(observed);
    EXPECT_GT(metrics::pst(mitigated, *ghz),
              metrics::pst(observed, *ghz));
}

TEST(Characterize, EmpiricalCloseToModelMbm)
{
    const DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(
        dev, {.seed = 85, .trajectories = 0, .gateNoise = false,
              .measurementNoise = true});
    const auto ghz = workloads::makeWorkload("GHZ-6");
    const compiler::CompiledCircuit compiled =
        compiler::transpile(ghz->circuit(), dev);

    const mitigation::MbmMitigator model_mbm(compiled.physical, dev);
    const mitigation::MbmMitigator empirical_mbm(
        mitigation::characterizeReadout(compiled.physical, executor,
                                        100000));
    const Pmf observed =
        executor.run(compiled.physical, 100000).toPmf();
    EXPECT_LT(totalVariationDistance(model_mbm.mitigate(observed),
                                     empirical_mbm.mitigate(observed)),
              0.03);
}

TEST(Characterize, MbmRejectsMalformedConfusion)
{
    mitigation::EmpiricalConfusion bad;
    EXPECT_THROW(mitigation::MbmMitigator{bad}, std::invalid_argument);
    bad.flip0 = {0.1};
    bad.flip1 = {0.1, 0.2};
    EXPECT_THROW(mitigation::MbmMitigator{bad}, std::invalid_argument);
}

// ----------------------------------------------------------- W state

TEST(WStateTest, IdealIsUniformOneHot)
{
    const workloads::WState w(5);
    EXPECT_EQ(w.name(), "W-5");
    EXPECT_EQ(w.idealPmf().support(), 5u);
    for (BasisState outcome : w.correctOutcomes()) {
        EXPECT_EQ(popcount(outcome), 1);
        EXPECT_NEAR(w.idealPmf().prob(outcome), 0.2, 1e-9);
    }
    EXPECT_NEAR(metrics::pst(w.idealPmf(), w), 1.0, 1e-9);
}

TEST(WStateTest, SizesTwoAndLarge)
{
    const workloads::WState w2(2);
    EXPECT_NEAR(w2.idealPmf().prob(0b01), 0.5, 1e-9);
    EXPECT_NEAR(w2.idealPmf().prob(0b10), 0.5, 1e-9);

    const workloads::WState w10(10);
    EXPECT_EQ(w10.idealPmf().support(), 10u);
    EXPECT_NEAR(w10.idealPmf().prob(1ULL << 7), 0.1, 1e-9);
}

TEST(WStateTest, RegistryAndJigsaw)
{
    const auto w = workloads::makeWorkload("W-8");
    EXPECT_EQ(w->name(), "W-8");

    const DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 86});
    const Pmf baseline =
        core::runBaseline(w->circuit(), dev, executor, 16384);
    const core::JigsawResult js =
        core::runJigsaw(w->circuit(), dev, executor, 16384);
    EXPECT_GT(metrics::pst(js.output, *w), metrics::pst(baseline, *w));
}

// --------------------------------------------------------------- CSV

TEST(Csv, PmfSortedRows)
{
    Pmf pmf(2);
    pmf.set(0b01, 0.7);
    pmf.set(0b10, 0.3);
    std::ostringstream oss;
    writeCsv(oss, pmf);
    EXPECT_EQ(oss.str(), "bitstring,probability\n01,0.7\n10,0.3\n");
}

TEST(Csv, HistogramRowsAndLimit)
{
    Histogram hist(3);
    hist.add(0b101, 5);
    hist.add(0b001, 9);
    hist.add(0b111, 1);
    std::ostringstream oss;
    writeCsv(oss, hist, 2);
    EXPECT_EQ(oss.str(), "bitstring,count\n001,9\n101,5\n");
}

TEST(Csv, EmptyPmfHeaderOnly)
{
    Pmf pmf(2);
    std::ostringstream oss;
    writeCsv(oss, pmf);
    EXPECT_EQ(oss.str(), "bitstring,probability\n");
}

} // namespace
} // namespace jigsaw
