/**
 * @file
 * Tests for the staged pipeline: planning validation, per-stage
 * artifacts, the batched CPM recompiler's equivalence to the full
 * transpiler, stage-by-stage session runs matching the runJigsaw
 * wrapper bitwise, and the cross-program merge pass (schedule
 * merging, merged execution vs private executors, resuming sessions
 * from adopted execution results).
 */
#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "compiler/cpm_batch.h"
#include "compiler/transpiler.h"
#include "core/jigsaw.h"
#include "core/pipeline.h"
#include "core/session.h"
#include "core/subsets.h"
#include "device/library.h"
#include "sim/eps.h"
#include "sim/simulators.h"
#include "workloads/bv.h"
#include "workloads/ghz.h"

namespace jigsaw {
namespace {

using core::JigsawOptions;
using core::JigsawResult;
using core::Subset;

/** Exact equality: the two PMFs store identical doubles. */
void
expectBitwisePmf(const Pmf &a, const Pmf &b)
{
    ASSERT_EQ(a.nQubits(), b.nQubits());
    ASSERT_EQ(a.support(), b.support());
    for (const auto &[outcome, p] : a.probabilities())
        EXPECT_EQ(p, b.prob(outcome)) << "outcome " << outcome;
}

// ------------------------------------------------------------ planning

TEST(SubsetValidation, RejectsBadCustomSubsets)
{
    EXPECT_THROW(core::validateSubsets(5, {}), std::invalid_argument);
    EXPECT_THROW(core::validateSubsets(5, {Subset{}}),
                 std::invalid_argument);
    EXPECT_THROW(core::validateSubsets(5, {Subset{0, 5}}),
                 std::invalid_argument);
    EXPECT_THROW(core::validateSubsets(5, {Subset{-1, 2}}),
                 std::invalid_argument);
    EXPECT_THROW(core::validateSubsets(5, {Subset{1, 1}}),
                 std::invalid_argument);
    // A bad subset anywhere in the list is caught.
    EXPECT_THROW(core::validateSubsets(5, {Subset{0, 1}, Subset{2, 2}}),
                 std::invalid_argument);
    EXPECT_NO_THROW(
        core::validateSubsets(5, {Subset{0, 1}, Subset{2, 4}}));
}

TEST(SubsetValidation, PlanRejectsBadCustomSubsetsUpFront)
{
    const workloads::Ghz ghz(5);
    JigsawOptions options;

    options.customSubsets = std::vector<Subset>{{0, 7}};
    EXPECT_THROW(core::planSubsets(ghz.circuit(), 4096, options),
                 std::invalid_argument);

    options.customSubsets = std::vector<Subset>{{2, 2}};
    EXPECT_THROW(core::planSubsets(ghz.circuit(), 4096, options),
                 std::invalid_argument);

    options.customSubsets = std::vector<Subset>{{}};
    EXPECT_THROW(core::planSubsets(ghz.circuit(), 4096, options),
                 std::invalid_argument);

    options.customSubsets = std::vector<Subset>{{0, 2}, {1, 4}};
    EXPECT_NO_THROW(core::planSubsets(ghz.circuit(), 4096, options));
}

TEST(Pipeline, PlanSpendsTheExactBudget)
{
    const workloads::Ghz ghz(6);
    const core::SubsetPlan plan =
        core::planSubsets(ghz.circuit(), 8192, JigsawOptions{});
    EXPECT_EQ(plan.nMeasured, 6);
    EXPECT_EQ(plan.globalTrials, 4096u);
    EXPECT_EQ(plan.subsets.size(), 6u);
    EXPECT_EQ(plan.perCpmTrials.size(), plan.subsets.size());
    std::uint64_t total = 0;
    for (std::uint64_t t : plan.perCpmTrials)
        total += t;
    EXPECT_EQ(total, plan.subsetTrials);
    EXPECT_EQ(plan.globalTrials + plan.subsetTrials, plan.totalTrials);
}

// ----------------------------------------------------------- artifacts

TEST(Pipeline, ScheduleGroupsGlobalMappedCpmsTogether)
{
    const device::DeviceModel dev = device::toronto();
    const workloads::Ghz ghz(6);
    JigsawOptions options;
    options.recompileCpms = false; // every CPM keeps the global mapping

    const core::SubsetPlan plan =
        core::planSubsets(ghz.circuit(), 8192, options);
    const core::CompiledJobs jobs =
        core::compileJobs(ghz.circuit(), dev, plan, options);
    ASSERT_EQ(jobs.cpms.size(), plan.subsets.size());
    for (const core::CpmJob &job : jobs.cpms)
        EXPECT_TRUE(job.fromGlobal);

    const core::ExecutionSchedule schedule = core::buildSchedule(jobs);
    ASSERT_EQ(schedule.groups.size(), 1u);
    EXPECT_TRUE(schedule.groups[0].usesGlobal);
    EXPECT_EQ(schedule.groups[0].members.size(), jobs.cpms.size());
    EXPECT_EQ(schedule.groups[0].specs.size(), jobs.cpms.size());
}

TEST(Pipeline, ScheduleCoversEveryCpmExactlyOnce)
{
    const device::DeviceModel dev = device::toronto();
    const workloads::BernsteinVazirani bv(7);
    const core::SubsetPlan plan =
        core::planSubsets(bv.circuit(), 8192, JigsawOptions{});
    const core::CompiledJobs jobs =
        core::compileJobs(bv.circuit(), dev, plan, JigsawOptions{});
    const core::ExecutionSchedule schedule = core::buildSchedule(jobs);

    std::vector<int> seen(jobs.cpms.size(), 0);
    for (const auto &group : schedule.groups) {
        ASSERT_EQ(group.specs.size(), group.members.size());
        for (std::size_t j = 0; j < group.members.size(); ++j) {
            const std::size_t i = group.members[j];
            ASSERT_LT(i, seen.size());
            ++seen[i];
            EXPECT_EQ(group.specs[j].shots, jobs.cpms[i].trials);
        }
    }
    for (int count : seen)
        EXPECT_EQ(count, 1);
}

TEST(Pipeline, ScheduleGroupsCarryTheirPrefixHash)
{
    const device::DeviceModel dev = device::toronto();
    const workloads::Ghz ghz(6);
    JigsawOptions options;
    options.recompileCpms = false;
    const core::SubsetPlan plan =
        core::planSubsets(ghz.circuit(), 8192, options);
    const core::CompiledJobs jobs =
        core::compileJobs(ghz.circuit(), dev, plan, options);
    const core::ExecutionSchedule schedule = core::buildSchedule(jobs);
    ASSERT_EQ(schedule.groups.size(), 1u);
    // The provenance tag is the grouping key itself: the measureless
    // structural hash of every member CPM.
    for (const std::size_t member : schedule.groups[0].members) {
        EXPECT_EQ(schedule.groups[0].prefixHash,
                  jobs.cpms[member]
                      .compiled.physical.withoutMeasurements()
                      .structuralHash());
    }
}

// ------------------------------------------------- cross-program merge

/** One program's pipeline artifacts plus its merge-source plumbing. */
struct PreparedProgram
{
    PreparedProgram(const circuit::QuantumCircuit &qc,
                    const device::DeviceModel &dev, std::uint64_t trials,
                    const JigsawOptions &options, std::uint64_t seed)
        : plan(core::planSubsets(qc, trials, options)),
          jobs(core::compileJobs(qc, dev, plan, options)),
          schedule(core::buildSchedule(jobs)), stream(seed)
    {
    }

    core::SubsetPlan plan;
    core::CompiledJobs jobs;
    core::ExecutionSchedule schedule;
    Rng stream;
};

TEST(MergeSchedules, GroupsByDeviceAndPrefix)
{
    const device::DeviceModel dev = device::toronto();
    compiler::clearTranspileCache();
    PreparedProgram a(workloads::Ghz(6).circuit(), dev, 8192,
                      JigsawOptions{}, 1);
    PreparedProgram b(workloads::Ghz(6).circuit(), dev, 8192,
                      JigsawOptions{}, 2);
    PreparedProgram c(workloads::BernsteinVazirani(6).circuit(), dev,
                      8192, JigsawOptions{}, 3);
    sim::NoisySimulator shared(dev);

    const std::uint64_t key = dev.fingerprint();
    const std::vector<core::MergeSource> sources = {
        {0, &a.jobs, &a.schedule, &a.plan, key, &shared, &a.stream},
        {1, &b.jobs, &b.schedule, &b.plan, key, &shared, &b.stream},
        {2, &c.jobs, &c.schedule, &c.plan, key, &shared, &c.stream},
    };
    const core::MergedSchedule merged = core::mergeSchedules(sources);

    // Identical programs a and b merge group-for-group; the distinct
    // circuit c keeps its own groups.
    ASSERT_EQ(a.schedule.groups.size(), b.schedule.groups.size());
    EXPECT_EQ(merged.groups.size(),
              a.schedule.groups.size() + c.schedule.groups.size());
    EXPECT_EQ(merged.crossProgramGroups(), a.schedule.groups.size());
    std::size_t members = 0;
    for (const core::MergedSchedule::Group &group : merged.groups)
        members += group.members.size();
    EXPECT_EQ(members, a.schedule.groups.size() +
                           b.schedule.groups.size() +
                           c.schedule.groups.size());
}

TEST(MergeSchedules, DistinctDevicesNeverMerge)
{
    const std::vector<device::DeviceModel> devices =
        device::evaluationDevices();
    ASSERT_GE(devices.size(), 2u);
    compiler::clearTranspileCache();
    PreparedProgram a(workloads::Ghz(6).circuit(), devices[0], 8192,
                      JigsawOptions{}, 1);
    PreparedProgram b(workloads::Ghz(6).circuit(), devices[1], 8192,
                      JigsawOptions{}, 2);
    sim::NoisySimulator ex_a(devices[0]);
    sim::NoisySimulator ex_b(devices[1]);
    const std::vector<core::MergeSource> sources = {
        {0, &a.jobs, &a.schedule, &a.plan, devices[0].fingerprint(),
         &ex_a, &a.stream},
        {1, &b.jobs, &b.schedule, &b.plan, devices[1].fingerprint(),
         &ex_b, &b.stream},
    };
    const core::MergedSchedule merged = core::mergeSchedules(sources);
    EXPECT_EQ(merged.crossProgramGroups(), 0u);
    EXPECT_EQ(merged.groups.size(),
              a.schedule.groups.size() + b.schedule.groups.size());
}

TEST(MergeSchedules, MergedExecutionMatchesPrivateExecutors)
{
    // The core bitwise claim at the pipeline level: executing merged
    // schedules against one shared executor with per-program streams
    // reproduces executeSchedule against private executors seeded the
    // same way.
    const device::DeviceModel dev = device::toronto();
    compiler::clearTranspileCache();
    std::vector<std::unique_ptr<PreparedProgram>> prepared;
    prepared.push_back(std::make_unique<PreparedProgram>(
        workloads::Ghz(6).circuit(), dev, 8192, JigsawOptions{}, 41));
    prepared.push_back(std::make_unique<PreparedProgram>(
        workloads::Ghz(6).circuit(), dev, 8192, JigsawOptions{}, 42));
    prepared.push_back(std::make_unique<PreparedProgram>(
        workloads::BernsteinVazirani(6).circuit(), dev, 6144,
        core::jigsawMOptions(), 43));

    sim::NoisySimulator shared(dev);
    const std::uint64_t key = dev.fingerprint();
    std::vector<core::MergeSource> sources;
    for (std::size_t i = 0; i < prepared.size(); ++i) {
        sources.push_back({i, &prepared[i]->jobs, &prepared[i]->schedule,
                           &prepared[i]->plan, key, &shared,
                           &prepared[i]->stream});
    }
    const core::MergedSchedule merged = core::mergeSchedules(sources);
    const std::vector<core::ExecutionResult> results =
        core::executeMergedSchedules(sources, merged);
    ASSERT_EQ(results.size(), prepared.size());

    const std::uint64_t seeds[] = {41, 42, 43};
    for (std::size_t i = 0; i < prepared.size(); ++i) {
        sim::NoisySimulator private_executor(
            dev, sim::NoisySimulatorOptions{.seed = seeds[i]});
        const core::ExecutionResult expected = core::executeSchedule(
            private_executor, prepared[i]->jobs, prepared[i]->schedule,
            prepared[i]->plan);
        EXPECT_EQ(totalVariationDistance(expected.globalPmf,
                                         results[i].globalPmf),
                  0.0);
        ASSERT_EQ(expected.cpmPmfs.size(), results[i].cpmPmfs.size());
        for (std::size_t c = 0; c < expected.cpmPmfs.size(); ++c) {
            EXPECT_EQ(totalVariationDistance(expected.cpmPmfs[c],
                                             results[i].cpmPmfs[c]),
                      0.0);
        }
    }
}

TEST(MergeSchedules, PooledGlobalsMatchAndAreCounted)
{
    // Two programs sharing a (device, global circuit) pair pool their
    // global sampling into one multi-program runBatch; the stats tick
    // and the per-program global PMFs still match private executors
    // (the preceding test checks that; here the counters).
    const device::DeviceModel dev = device::toronto();
    compiler::clearTranspileCache();
    PreparedProgram a(workloads::Ghz(6).circuit(), dev, 8192,
                      JigsawOptions{}, 61);
    PreparedProgram b(workloads::Ghz(6).circuit(), dev, 8192,
                      JigsawOptions{}, 62);
    sim::NoisySimulator shared(dev);
    const std::uint64_t key = dev.fingerprint();
    const std::vector<core::MergeSource> sources = {
        {0, &a.jobs, &a.schedule, &a.plan, key, &shared, &a.stream},
        {1, &b.jobs, &b.schedule, &b.plan, key, &shared, &b.stream},
    };
    const core::MergedSchedule merged = core::mergeSchedules(sources);
    core::MergedExecutionStats stats;
    const std::vector<core::ExecutionResult> results =
        core::executeMergedSchedules(sources, merged, &stats);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(stats.pooledGlobalBatches, 1u);
    EXPECT_EQ(stats.pooledGlobalPrograms, 2u);
    EXPECT_EQ(totalVariationDistance(results[0].globalPmf,
                                     results[1].globalPmf) == 0.0,
              false)
        << "distinct seeds must draw distinct global samples";
}

TEST(MergeSchedules, IncrementalMergeMatchesBatchMerge)
{
    // mergeSourceInto folded over the sources — the streaming
    // scheduler's window-accretion path — must produce exactly what
    // one-shot mergeSchedules does.
    const device::DeviceModel dev = device::toronto();
    compiler::clearTranspileCache();
    PreparedProgram a(workloads::Ghz(6).circuit(), dev, 8192,
                      JigsawOptions{}, 71);
    PreparedProgram b(workloads::Ghz(6).circuit(), dev, 8192,
                      JigsawOptions{}, 72);
    PreparedProgram c(workloads::BernsteinVazirani(6).circuit(), dev,
                      6144, core::jigsawMOptions(), 73);
    sim::NoisySimulator shared(dev);
    const std::uint64_t key = dev.fingerprint();
    const std::vector<core::MergeSource> sources = {
        {0, &a.jobs, &a.schedule, &a.plan, key, &shared, &a.stream},
        {1, &b.jobs, &b.schedule, &b.plan, key, &shared, &b.stream},
        {2, &c.jobs, &c.schedule, &c.plan, key, &shared, &c.stream},
    };
    const core::MergedSchedule batch = core::mergeSchedules(sources);
    core::MergedSchedule incremental;
    for (std::size_t s = 0; s < sources.size(); ++s)
        core::mergeSourceInto(incremental, sources, s);

    ASSERT_EQ(incremental.groups.size(), batch.groups.size());
    for (std::size_t g = 0; g < batch.groups.size(); ++g) {
        EXPECT_EQ(incremental.groups[g].deviceKey,
                  batch.groups[g].deviceKey);
        EXPECT_EQ(incremental.groups[g].prefixHash,
                  batch.groups[g].prefixHash);
        ASSERT_EQ(incremental.groups[g].members.size(),
                  batch.groups[g].members.size());
        for (std::size_t m = 0; m < batch.groups[g].members.size();
             ++m) {
            EXPECT_EQ(incremental.groups[g].members[m].source,
                      batch.groups[g].members[m].source);
            EXPECT_EQ(incremental.groups[g].members[m].group,
                      batch.groups[g].members[m].group);
        }
    }
}

TEST(MergeSchedules, RemoveSourceUnwindsACancelledJob)
{
    // The cancel path: withdraw the middle source from an
    // incrementally built merge, disable its slot, and execute — the
    // survivors must still match their private-executor reference and
    // the withdrawn slot must stay untouched.
    const device::DeviceModel dev = device::toronto();
    compiler::clearTranspileCache();
    std::vector<std::unique_ptr<PreparedProgram>> prepared;
    prepared.push_back(std::make_unique<PreparedProgram>(
        workloads::Ghz(6).circuit(), dev, 8192, JigsawOptions{}, 81));
    prepared.push_back(std::make_unique<PreparedProgram>(
        workloads::Ghz(6).circuit(), dev, 8192, JigsawOptions{}, 82));
    prepared.push_back(std::make_unique<PreparedProgram>(
        workloads::Ghz(6).circuit(), dev, 8192, JigsawOptions{}, 83));
    sim::NoisySimulator shared(dev);
    const std::uint64_t key = dev.fingerprint();
    std::vector<core::MergeSource> sources;
    for (std::size_t i = 0; i < prepared.size(); ++i) {
        sources.push_back({i, &prepared[i]->jobs, &prepared[i]->schedule,
                           &prepared[i]->plan, key, &shared,
                           &prepared[i]->stream});
    }
    core::MergedSchedule merged;
    for (std::size_t s = 0; s < sources.size(); ++s)
        core::mergeSourceInto(merged, sources, s);

    const std::size_t removed = core::removeSourceFrom(merged, 1);
    EXPECT_EQ(removed, prepared[1]->schedule.groups.size());
    sources[1].enabled = false;
    for (const core::MergedSchedule::Group &group : merged.groups) {
        for (const core::MergedSchedule::Member &member : group.members)
            EXPECT_NE(member.source, 1u);
    }

    const std::vector<core::ExecutionResult> results =
        core::executeMergedSchedules(sources, merged);
    ASSERT_EQ(results.size(), 3u);
    // The withdrawn slot keeps its placeholder result.
    EXPECT_TRUE(results[1].cpmPmfs.empty());
    const std::uint64_t seeds[] = {81, 82, 83};
    for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
        sim::NoisySimulator private_executor(
            dev, sim::NoisySimulatorOptions{.seed = seeds[i]});
        const core::ExecutionResult expected = core::executeSchedule(
            private_executor, prepared[i]->jobs, prepared[i]->schedule,
            prepared[i]->plan);
        EXPECT_EQ(totalVariationDistance(expected.globalPmf,
                                         results[i].globalPmf),
                  0.0);
        ASSERT_EQ(expected.cpmPmfs.size(), results[i].cpmPmfs.size());
        for (std::size_t c = 0; c < expected.cpmPmfs.size(); ++c) {
            EXPECT_EQ(totalVariationDistance(expected.cpmPmfs[c],
                                             results[i].cpmPmfs[c]),
                      0.0);
        }
    }
}

TEST(Session, AdoptExecutionValidatesAndResumes)
{
    const device::DeviceModel dev = device::toronto();
    const circuit::QuantumCircuit qc = workloads::Ghz(6).circuit();
    sim::NoisySimulator executor(
        dev, sim::NoisySimulatorOptions{.seed = 5});

    // Reference: a session that executes normally.
    sim::NoisySimulator reference_executor(
        dev, sim::NoisySimulatorOptions{.seed = 5});
    core::JigsawSession reference(qc, dev, reference_executor, 8192);
    const JigsawResult expected = reference.run();

    // Adopting the reference's execution result reproduces its output
    // without this session's executor sampling anything.
    core::JigsawSession session(qc, dev, executor, 8192);
    core::ExecutionResult adopted;
    adopted.globalPmf = expected.globalPmf;
    for (const core::CpmRecord &cpm : expected.cpms)
        adopted.cpmPmfs.push_back(cpm.localPmf);
    session.adoptExecution(adopted);
    EXPECT_EQ(session.stage(), core::JigsawSession::Stage::Executed);
    const JigsawResult resumed = session.run();
    EXPECT_EQ(totalVariationDistance(expected.output, resumed.output),
              0.0);

    // A result that does not cover every CPM is rejected, as is
    // adopting over an already-executed session.
    core::JigsawSession fresh(qc, dev, executor, 8192);
    core::ExecutionResult wrong;
    wrong.globalPmf = expected.globalPmf;
    EXPECT_THROW(fresh.adoptExecution(wrong), std::invalid_argument);
    EXPECT_THROW(session.adoptExecution(adopted),
                 std::invalid_argument);
}

TEST(Pipeline, FromGlobalCpmsReuseTheGlobalGateSuccess)
{
    // Satellite: cpmFromGlobal must not recompute the gate-success
    // probability per subset — and the reused value must equal what a
    // fresh computation on the CPM circuit gives, since the gate
    // prefix is identical.
    const device::DeviceModel dev = device::toronto();
    const workloads::Ghz ghz(6);
    JigsawOptions options;
    options.recompileCpms = false;
    const core::SubsetPlan plan =
        core::planSubsets(ghz.circuit(), 8192, options);
    const core::CompiledJobs jobs =
        core::compileJobs(ghz.circuit(), dev, plan, options);
    for (const core::CpmJob &job : jobs.cpms) {
        EXPECT_EQ(job.compiled.gateSuccess, jobs.global.gateSuccess);
        EXPECT_EQ(job.compiled.gateSuccess,
                  sim::gateSuccessProbability(job.compiled.physical,
                                              dev));
    }
}

// ------------------------------------------- batched CPM recompilation

TEST(CpmRecompiler, MatchesFullTranspilePerSubset)
{
    const device::DeviceModel dev = device::toronto();
    for (const circuit::QuantumCircuit &logical :
         {workloads::Ghz(6).circuit(),
          workloads::BernsteinVazirani(6).circuit()}) {
        const compiler::CompiledCircuit global =
            compiler::transpile(logical, dev);
        compiler::TranspileOptions cpm_options;
        cpm_options.maxSwaps = global.swapCount;

        compiler::CpmRecompiler recompiler(logical, dev, cpm_options);
        const std::vector<int> qubit_of_clbit = logical.measuredQubits();
        for (const Subset &subset :
             core::slidingWindowSubsets(logical.countMeasurements(), 2)) {
            std::vector<int> lqs;
            for (int c : subset)
                lqs.push_back(qubit_of_clbit[static_cast<std::size_t>(c)]);

            const compiler::CompiledCircuit batched =
                recompiler.recompile(lqs);
            const compiler::CompiledCircuit reference =
                compiler::transpile(logical.withMeasurementSubset(lqs),
                                    dev, cpm_options);
            EXPECT_EQ(batched.physical.structuralHash(),
                      reference.physical.structuralHash());
            EXPECT_EQ(batched.initialLayout.logicalToPhysical(),
                      reference.initialLayout.logicalToPhysical());
            EXPECT_EQ(batched.finalLayout.logicalToPhysical(),
                      reference.finalLayout.logicalToPhysical());
            EXPECT_EQ(batched.swapCount, reference.swapCount);
            EXPECT_EQ(batched.gateSuccess, reference.gateSuccess);
            EXPECT_EQ(batched.measurementSuccess,
                      reference.measurementSuccess);
            EXPECT_EQ(batched.eps, reference.eps);
        }
        // Sharing must actually happen: the distance-only placement
        // family is measurement-independent, so across a whole
        // sliding-window sweep the routing memo gets reused.
        EXPECT_GT(recompiler.routingsReused(), 0u);
        EXPECT_LT(recompiler.routingsComputed(),
                  recompiler.routingsComputed() +
                      recompiler.routingsReused());
    }
}

// ---------------------------------------------------- stage equivalence

TEST(StageEquivalence, SessionStagesMatchWrapperBitwise)
{
    const device::DeviceModel dev = device::toronto();
    const workloads::Ghz ghz(6);

    sim::NoisySimulator wrapper_exec(dev, {.seed = 11});
    const JigsawResult wrapper = core::runJigsaw(
        ghz.circuit(), dev, wrapper_exec, 8192, JigsawOptions{});

    // Same program, staged by hand with explicit artifact inspection
    // between stages; a fresh executor with the same seed must
    // reproduce every PMF bit for bit.
    sim::NoisySimulator staged_exec(dev, {.seed = 11});
    core::JigsawSession session(ghz.circuit(), dev, staged_exec, 8192,
                                JigsawOptions{});
    EXPECT_EQ(session.stage(), core::JigsawSession::Stage::Created);
    const core::SubsetPlan &plan = session.plan();
    EXPECT_EQ(session.stage(), core::JigsawSession::Stage::Planned);
    EXPECT_EQ(plan.globalTrials, wrapper.globalTrials);
    const core::CompiledJobs &jobs = session.compiled();
    EXPECT_EQ(session.stage(), core::JigsawSession::Stage::Compiled);
    EXPECT_EQ(jobs.global.physical.structuralHash(),
              wrapper.globalCompiled.physical.structuralHash());
    const core::ExecutionSchedule &schedule = session.schedule();
    EXPECT_EQ(session.stage(), core::JigsawSession::Stage::Scheduled);
    EXPECT_GE(schedule.groups.size(), 1u);
    const core::ExecutionResult &execution = session.executed();
    EXPECT_EQ(session.stage(), core::JigsawSession::Stage::Executed);
    expectBitwisePmf(wrapper.globalPmf, execution.globalPmf);
    session.output();
    EXPECT_EQ(session.stage(),
              core::JigsawSession::Stage::Reconstructed);

    const JigsawResult staged = session.run();
    expectBitwisePmf(wrapper.output, staged.output);
    ASSERT_EQ(wrapper.cpms.size(), staged.cpms.size());
    for (std::size_t i = 0; i < wrapper.cpms.size(); ++i) {
        EXPECT_EQ(wrapper.cpms[i].subset, staged.cpms[i].subset);
        EXPECT_EQ(wrapper.cpms[i].trials, staged.cpms[i].trials);
        expectBitwisePmf(wrapper.cpms[i].localPmf,
                         staged.cpms[i].localPmf);
    }
    EXPECT_EQ(wrapper.subsetTrials, staged.subsetTrials);
}

TEST(StageEquivalence, JigsawMSessionMatchesWrapper)
{
    const device::DeviceModel dev = device::toronto();
    const workloads::BernsteinVazirani bv(6);

    sim::NoisySimulator a(dev, {.seed = 21});
    const JigsawResult wrapper = core::runJigsaw(
        bv.circuit(), dev, a, 8192, core::jigsawMOptions());

    sim::NoisySimulator b(dev, {.seed = 21});
    core::JigsawSession session(bv.circuit(), dev, b, 8192,
                                core::jigsawMOptions());
    const JigsawResult staged = session.run();
    expectBitwisePmf(wrapper.output, staged.output);
    expectBitwisePmf(wrapper.globalPmf, staged.globalPmf);
}

} // namespace
} // namespace jigsaw
