/**
 * @file
 * Tests for the staged pipeline: planning validation, per-stage
 * artifacts, the batched CPM recompiler's equivalence to the full
 * transpiler, and stage-by-stage session runs matching the runJigsaw
 * wrapper bitwise.
 */
#include <stdexcept>

#include <gtest/gtest.h>

#include "compiler/cpm_batch.h"
#include "compiler/transpiler.h"
#include "core/jigsaw.h"
#include "core/pipeline.h"
#include "core/session.h"
#include "core/subsets.h"
#include "device/library.h"
#include "sim/eps.h"
#include "sim/simulators.h"
#include "workloads/bv.h"
#include "workloads/ghz.h"

namespace jigsaw {
namespace {

using core::JigsawOptions;
using core::JigsawResult;
using core::Subset;

/** Exact equality: the two PMFs store identical doubles. */
void
expectBitwisePmf(const Pmf &a, const Pmf &b)
{
    ASSERT_EQ(a.nQubits(), b.nQubits());
    ASSERT_EQ(a.support(), b.support());
    for (const auto &[outcome, p] : a.probabilities())
        EXPECT_EQ(p, b.prob(outcome)) << "outcome " << outcome;
}

// ------------------------------------------------------------ planning

TEST(SubsetValidation, RejectsBadCustomSubsets)
{
    EXPECT_THROW(core::validateSubsets(5, {}), std::invalid_argument);
    EXPECT_THROW(core::validateSubsets(5, {Subset{}}),
                 std::invalid_argument);
    EXPECT_THROW(core::validateSubsets(5, {Subset{0, 5}}),
                 std::invalid_argument);
    EXPECT_THROW(core::validateSubsets(5, {Subset{-1, 2}}),
                 std::invalid_argument);
    EXPECT_THROW(core::validateSubsets(5, {Subset{1, 1}}),
                 std::invalid_argument);
    // A bad subset anywhere in the list is caught.
    EXPECT_THROW(core::validateSubsets(5, {Subset{0, 1}, Subset{2, 2}}),
                 std::invalid_argument);
    EXPECT_NO_THROW(
        core::validateSubsets(5, {Subset{0, 1}, Subset{2, 4}}));
}

TEST(SubsetValidation, PlanRejectsBadCustomSubsetsUpFront)
{
    const workloads::Ghz ghz(5);
    JigsawOptions options;

    options.customSubsets = std::vector<Subset>{{0, 7}};
    EXPECT_THROW(core::planSubsets(ghz.circuit(), 4096, options),
                 std::invalid_argument);

    options.customSubsets = std::vector<Subset>{{2, 2}};
    EXPECT_THROW(core::planSubsets(ghz.circuit(), 4096, options),
                 std::invalid_argument);

    options.customSubsets = std::vector<Subset>{{}};
    EXPECT_THROW(core::planSubsets(ghz.circuit(), 4096, options),
                 std::invalid_argument);

    options.customSubsets = std::vector<Subset>{{0, 2}, {1, 4}};
    EXPECT_NO_THROW(core::planSubsets(ghz.circuit(), 4096, options));
}

TEST(Pipeline, PlanSpendsTheExactBudget)
{
    const workloads::Ghz ghz(6);
    const core::SubsetPlan plan =
        core::planSubsets(ghz.circuit(), 8192, JigsawOptions{});
    EXPECT_EQ(plan.nMeasured, 6);
    EXPECT_EQ(plan.globalTrials, 4096u);
    EXPECT_EQ(plan.subsets.size(), 6u);
    EXPECT_EQ(plan.perCpmTrials.size(), plan.subsets.size());
    std::uint64_t total = 0;
    for (std::uint64_t t : plan.perCpmTrials)
        total += t;
    EXPECT_EQ(total, plan.subsetTrials);
    EXPECT_EQ(plan.globalTrials + plan.subsetTrials, plan.totalTrials);
}

// ----------------------------------------------------------- artifacts

TEST(Pipeline, ScheduleGroupsGlobalMappedCpmsTogether)
{
    const device::DeviceModel dev = device::toronto();
    const workloads::Ghz ghz(6);
    JigsawOptions options;
    options.recompileCpms = false; // every CPM keeps the global mapping

    const core::SubsetPlan plan =
        core::planSubsets(ghz.circuit(), 8192, options);
    const core::CompiledJobs jobs =
        core::compileJobs(ghz.circuit(), dev, plan, options);
    ASSERT_EQ(jobs.cpms.size(), plan.subsets.size());
    for (const core::CpmJob &job : jobs.cpms)
        EXPECT_TRUE(job.fromGlobal);

    const core::ExecutionSchedule schedule = core::buildSchedule(jobs);
    ASSERT_EQ(schedule.groups.size(), 1u);
    EXPECT_TRUE(schedule.groups[0].usesGlobal);
    EXPECT_EQ(schedule.groups[0].members.size(), jobs.cpms.size());
    EXPECT_EQ(schedule.groups[0].specs.size(), jobs.cpms.size());
}

TEST(Pipeline, ScheduleCoversEveryCpmExactlyOnce)
{
    const device::DeviceModel dev = device::toronto();
    const workloads::BernsteinVazirani bv(7);
    const core::SubsetPlan plan =
        core::planSubsets(bv.circuit(), 8192, JigsawOptions{});
    const core::CompiledJobs jobs =
        core::compileJobs(bv.circuit(), dev, plan, JigsawOptions{});
    const core::ExecutionSchedule schedule = core::buildSchedule(jobs);

    std::vector<int> seen(jobs.cpms.size(), 0);
    for (const auto &group : schedule.groups) {
        ASSERT_EQ(group.specs.size(), group.members.size());
        for (std::size_t j = 0; j < group.members.size(); ++j) {
            const std::size_t i = group.members[j];
            ASSERT_LT(i, seen.size());
            ++seen[i];
            EXPECT_EQ(group.specs[j].shots, jobs.cpms[i].trials);
        }
    }
    for (int count : seen)
        EXPECT_EQ(count, 1);
}

TEST(Pipeline, FromGlobalCpmsReuseTheGlobalGateSuccess)
{
    // Satellite: cpmFromGlobal must not recompute the gate-success
    // probability per subset — and the reused value must equal what a
    // fresh computation on the CPM circuit gives, since the gate
    // prefix is identical.
    const device::DeviceModel dev = device::toronto();
    const workloads::Ghz ghz(6);
    JigsawOptions options;
    options.recompileCpms = false;
    const core::SubsetPlan plan =
        core::planSubsets(ghz.circuit(), 8192, options);
    const core::CompiledJobs jobs =
        core::compileJobs(ghz.circuit(), dev, plan, options);
    for (const core::CpmJob &job : jobs.cpms) {
        EXPECT_EQ(job.compiled.gateSuccess, jobs.global.gateSuccess);
        EXPECT_EQ(job.compiled.gateSuccess,
                  sim::gateSuccessProbability(job.compiled.physical,
                                              dev));
    }
}

// ------------------------------------------- batched CPM recompilation

TEST(CpmRecompiler, MatchesFullTranspilePerSubset)
{
    const device::DeviceModel dev = device::toronto();
    for (const circuit::QuantumCircuit &logical :
         {workloads::Ghz(6).circuit(),
          workloads::BernsteinVazirani(6).circuit()}) {
        const compiler::CompiledCircuit global =
            compiler::transpile(logical, dev);
        compiler::TranspileOptions cpm_options;
        cpm_options.maxSwaps = global.swapCount;

        compiler::CpmRecompiler recompiler(logical, dev, cpm_options);
        const std::vector<int> qubit_of_clbit = logical.measuredQubits();
        for (const Subset &subset :
             core::slidingWindowSubsets(logical.countMeasurements(), 2)) {
            std::vector<int> lqs;
            for (int c : subset)
                lqs.push_back(qubit_of_clbit[static_cast<std::size_t>(c)]);

            const compiler::CompiledCircuit batched =
                recompiler.recompile(lqs);
            const compiler::CompiledCircuit reference =
                compiler::transpile(logical.withMeasurementSubset(lqs),
                                    dev, cpm_options);
            EXPECT_EQ(batched.physical.structuralHash(),
                      reference.physical.structuralHash());
            EXPECT_EQ(batched.initialLayout.logicalToPhysical(),
                      reference.initialLayout.logicalToPhysical());
            EXPECT_EQ(batched.finalLayout.logicalToPhysical(),
                      reference.finalLayout.logicalToPhysical());
            EXPECT_EQ(batched.swapCount, reference.swapCount);
            EXPECT_EQ(batched.gateSuccess, reference.gateSuccess);
            EXPECT_EQ(batched.measurementSuccess,
                      reference.measurementSuccess);
            EXPECT_EQ(batched.eps, reference.eps);
        }
        // Sharing must actually happen: the distance-only placement
        // family is measurement-independent, so across a whole
        // sliding-window sweep the routing memo gets reused.
        EXPECT_GT(recompiler.routingsReused(), 0u);
        EXPECT_LT(recompiler.routingsComputed(),
                  recompiler.routingsComputed() +
                      recompiler.routingsReused());
    }
}

// ---------------------------------------------------- stage equivalence

TEST(StageEquivalence, SessionStagesMatchWrapperBitwise)
{
    const device::DeviceModel dev = device::toronto();
    const workloads::Ghz ghz(6);

    sim::NoisySimulator wrapper_exec(dev, {.seed = 11});
    const JigsawResult wrapper = core::runJigsaw(
        ghz.circuit(), dev, wrapper_exec, 8192, JigsawOptions{});

    // Same program, staged by hand with explicit artifact inspection
    // between stages; a fresh executor with the same seed must
    // reproduce every PMF bit for bit.
    sim::NoisySimulator staged_exec(dev, {.seed = 11});
    core::JigsawSession session(ghz.circuit(), dev, staged_exec, 8192,
                                JigsawOptions{});
    EXPECT_EQ(session.stage(), core::JigsawSession::Stage::Created);
    const core::SubsetPlan &plan = session.plan();
    EXPECT_EQ(session.stage(), core::JigsawSession::Stage::Planned);
    EXPECT_EQ(plan.globalTrials, wrapper.globalTrials);
    const core::CompiledJobs &jobs = session.compiled();
    EXPECT_EQ(session.stage(), core::JigsawSession::Stage::Compiled);
    EXPECT_EQ(jobs.global.physical.structuralHash(),
              wrapper.globalCompiled.physical.structuralHash());
    const core::ExecutionSchedule &schedule = session.schedule();
    EXPECT_EQ(session.stage(), core::JigsawSession::Stage::Scheduled);
    EXPECT_GE(schedule.groups.size(), 1u);
    const core::ExecutionResult &execution = session.executed();
    EXPECT_EQ(session.stage(), core::JigsawSession::Stage::Executed);
    expectBitwisePmf(wrapper.globalPmf, execution.globalPmf);
    session.output();
    EXPECT_EQ(session.stage(),
              core::JigsawSession::Stage::Reconstructed);

    const JigsawResult staged = session.run();
    expectBitwisePmf(wrapper.output, staged.output);
    ASSERT_EQ(wrapper.cpms.size(), staged.cpms.size());
    for (std::size_t i = 0; i < wrapper.cpms.size(); ++i) {
        EXPECT_EQ(wrapper.cpms[i].subset, staged.cpms[i].subset);
        EXPECT_EQ(wrapper.cpms[i].trials, staged.cpms[i].trials);
        expectBitwisePmf(wrapper.cpms[i].localPmf,
                         staged.cpms[i].localPmf);
    }
    EXPECT_EQ(wrapper.subsetTrials, staged.subsetTrials);
}

TEST(StageEquivalence, JigsawMSessionMatchesWrapper)
{
    const device::DeviceModel dev = device::toronto();
    const workloads::BernsteinVazirani bv(6);

    sim::NoisySimulator a(dev, {.seed = 21});
    const JigsawResult wrapper = core::runJigsaw(
        bv.circuit(), dev, a, 8192, core::jigsawMOptions());

    sim::NoisySimulator b(dev, {.seed = 21});
    core::JigsawSession session(bv.circuit(), dev, b, 8192,
                                core::jigsawMOptions());
    const JigsawResult staged = session.run();
    expectBitwisePmf(wrapper.output, staged.output);
    expectBitwisePmf(wrapper.globalPmf, staged.globalPmf);
}

} // namespace
} // namespace jigsaw
