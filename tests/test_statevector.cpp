/**
 * @file
 * State-vector simulator tests: gate matrices against hand-computed
 * states, Bell/GHZ preparation, norm preservation as a parameterized
 * property over random circuits, and measurement PMFs.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/statevector.h"

namespace jigsaw {
namespace sim {
namespace {

using circuit::GateType;
using circuit::QuantumCircuit;

constexpr double tol = 1e-12;

TEST(StateVector, InitialState)
{
    StateVector sv(2);
    EXPECT_NEAR(sv.probability(0b00), 1.0, tol);
    EXPECT_NEAR(sv.norm(), 1.0, tol);
}

TEST(StateVector, HadamardSuperposition)
{
    StateVector sv(1);
    sv.applyGate({GateType::H, {0}, {}, -1});
    EXPECT_NEAR(sv.probability(0), 0.5, tol);
    EXPECT_NEAR(sv.probability(1), 0.5, tol);
}

TEST(StateVector, XFlips)
{
    StateVector sv(2);
    sv.applyGate({GateType::X, {1}, {}, -1});
    EXPECT_NEAR(sv.probability(0b10), 1.0, tol);
}

TEST(StateVector, HZHEqualsX)
{
    StateVector sv(1);
    sv.applyGate({GateType::H, {0}, {}, -1});
    sv.applyGate({GateType::Z, {0}, {}, -1});
    sv.applyGate({GateType::H, {0}, {}, -1});
    EXPECT_NEAR(sv.probability(1), 1.0, tol);
}

TEST(StateVector, SSDGCancel)
{
    StateVector sv(1);
    sv.applyGate({GateType::H, {0}, {}, -1});
    sv.applyGate({GateType::S, {0}, {}, -1});
    sv.applyGate({GateType::SDG, {0}, {}, -1});
    sv.applyGate({GateType::H, {0}, {}, -1});
    EXPECT_NEAR(sv.probability(0), 1.0, tol);
}

TEST(StateVector, TTequalsS)
{
    StateVector a(1), b(1);
    a.applyGate({GateType::H, {0}, {}, -1});
    a.applyGate({GateType::T, {0}, {}, -1});
    a.applyGate({GateType::T, {0}, {}, -1});
    b.applyGate({GateType::H, {0}, {}, -1});
    b.applyGate({GateType::S, {0}, {}, -1});
    for (BasisState s = 0; s < 2; ++s) {
        EXPECT_NEAR(std::abs(a.amplitude(s) - b.amplitude(s)), 0.0, tol);
    }
}

TEST(StateVector, RotationAngles)
{
    // RY(theta) |0> = cos(theta/2)|0> + sin(theta/2)|1>.
    StateVector sv(1);
    const double theta = 0.73;
    sv.applyGate({GateType::RY, {0}, {theta}, -1});
    EXPECT_NEAR(sv.probability(0), std::cos(theta / 2) * std::cos(theta / 2),
                tol);
    EXPECT_NEAR(sv.probability(1), std::sin(theta / 2) * std::sin(theta / 2),
                tol);
}

TEST(StateVector, RxMatchesU3)
{
    // RX(theta) == U3(theta, -pi/2, pi/2) up to global phase.
    const double theta = 1.234;
    StateVector a(1), b(1);
    a.applyGate({GateType::H, {0}, {}, -1});
    b.applyGate({GateType::H, {0}, {}, -1});
    a.applyGate({GateType::RX, {0}, {theta}, -1});
    b.applyGate({GateType::U3, {0}, {theta, -M_PI / 2, M_PI / 2}, -1});
    for (BasisState s = 0; s < 2; ++s)
        EXPECT_NEAR(std::norm(a.amplitude(s)), std::norm(b.amplitude(s)),
                    tol);
}

TEST(StateVector, BellState)
{
    StateVector sv(2);
    sv.applyGate({GateType::H, {0}, {}, -1});
    sv.applyGate({GateType::CX, {0, 1}, {}, -1});
    EXPECT_NEAR(sv.probability(0b00), 0.5, tol);
    EXPECT_NEAR(sv.probability(0b11), 0.5, tol);
    EXPECT_NEAR(sv.probability(0b01), 0.0, tol);
    EXPECT_NEAR(sv.probability(0b10), 0.0, tol);
}

TEST(StateVector, GhzState)
{
    const int n = 5;
    StateVector sv(n);
    QuantumCircuit qc(n);
    qc.h(0);
    for (int q = 0; q + 1 < n; ++q)
        qc.cx(q, q + 1);
    sv.applyCircuit(qc);
    EXPECT_NEAR(sv.probability(0), 0.5, tol);
    EXPECT_NEAR(sv.probability((1ULL << n) - 1), 0.5, tol);
}

TEST(StateVector, CzPhase)
{
    // CZ only flips the |11> phase: |++> -> entangled state where
    // H(q1) basis change reveals the phase kickback.
    StateVector sv(2);
    sv.applyGate({GateType::H, {0}, {}, -1});
    sv.applyGate({GateType::X, {1}, {}, -1});
    sv.applyGate({GateType::CZ, {0, 1}, {}, -1});
    sv.applyGate({GateType::H, {0}, {}, -1});
    // q0 was |+> and picked up Z from the control on |1>: now |1>.
    EXPECT_NEAR(sv.probability(0b11), 1.0, tol);
}

TEST(StateVector, SwapGate)
{
    StateVector sv(2);
    sv.applyGate({GateType::X, {0}, {}, -1});
    sv.applyGate({GateType::SWAP, {0, 1}, {}, -1});
    EXPECT_NEAR(sv.probability(0b10), 1.0, tol);
}

TEST(StateVector, SwapEqualsThreeCx)
{
    Rng rng(17);
    StateVector a(3), b(3);
    QuantumCircuit prep(3);
    for (int q = 0; q < 3; ++q)
        prep.u3(rng.uniform(0, M_PI), rng.uniform(0, 2 * M_PI),
                rng.uniform(0, 2 * M_PI), q);
    a.applyCircuit(prep);
    b.applyCircuit(prep);
    a.applyGate({GateType::SWAP, {0, 2}, {}, -1});
    b.applyGate({GateType::CX, {0, 2}, {}, -1});
    b.applyGate({GateType::CX, {2, 0}, {}, -1});
    b.applyGate({GateType::CX, {0, 2}, {}, -1});
    for (BasisState s = 0; s < 8; ++s)
        EXPECT_NEAR(std::abs(a.amplitude(s) - b.amplitude(s)), 0.0, tol);
}

TEST(StateVector, RzzEqualsCxRzCx)
{
    const double theta = 0.77;
    Rng rng(23);
    QuantumCircuit prep(2);
    prep.u3(rng.uniform(0, M_PI), 0.3, 1.2, 0);
    prep.u3(rng.uniform(0, M_PI), 2.1, 0.4, 1);
    StateVector a(2), b(2);
    a.applyCircuit(prep);
    b.applyCircuit(prep);
    a.applyGate({GateType::RZZ, {0, 1}, {theta}, -1});
    b.applyGate({GateType::CX, {0, 1}, {}, -1});
    b.applyGate({GateType::RZ, {1}, {theta}, -1});
    b.applyGate({GateType::CX, {0, 1}, {}, -1});
    for (BasisState s = 0; s < 4; ++s)
        EXPECT_NEAR(std::abs(a.amplitude(s) - b.amplitude(s)), 0.0, tol);
}

TEST(StateVector, PauliApplication)
{
    StateVector sv(1);
    sv.applyPauli(1, 0); // X
    EXPECT_NEAR(sv.probability(1), 1.0, tol);
    sv.applyPauli(3, 0); // Z on |1> adds phase only
    EXPECT_NEAR(sv.probability(1), 1.0, tol);
    sv.applyPauli(2, 0); // Y flips back
    EXPECT_NEAR(sv.probability(0), 1.0, tol);
    EXPECT_THROW(sv.applyPauli(0, 0), std::invalid_argument);
}

TEST(StateVector, MeasurementPmfFull)
{
    StateVector sv(2);
    sv.applyGate({GateType::H, {0}, {}, -1});
    sv.applyGate({GateType::CX, {0, 1}, {}, -1});
    const Pmf pmf = sv.measurementPmf({0, 1});
    EXPECT_NEAR(pmf.prob(0b00), 0.5, tol);
    EXPECT_NEAR(pmf.prob(0b11), 0.5, tol);
    EXPECT_EQ(pmf.support(), 2u);
}

TEST(StateVector, MeasurementPmfMarginal)
{
    // Bell state marginal on one qubit is uniform.
    StateVector sv(2);
    sv.applyGate({GateType::H, {0}, {}, -1});
    sv.applyGate({GateType::CX, {0, 1}, {}, -1});
    const Pmf pmf = sv.measurementPmf({1});
    EXPECT_NEAR(pmf.prob(0), 0.5, tol);
    EXPECT_NEAR(pmf.prob(1), 0.5, tol);
}

TEST(StateVector, MeasurementPmfOrderMatters)
{
    StateVector sv(2);
    sv.applyGate({GateType::X, {1}, {}, -1});
    // state |10>: qubit1 = 1, qubit0 = 0.
    EXPECT_NEAR(sv.measurementPmf({0, 1}).prob(0b10), 1.0, tol);
    EXPECT_NEAR(sv.measurementPmf({1, 0}).prob(0b01), 1.0, tol);
}

TEST(StateVector, RejectsMeasureGate)
{
    StateVector sv(1);
    EXPECT_THROW(sv.applyGate({GateType::MEASURE, {0}, {}, 0}),
                 std::invalid_argument);
}

TEST(StateVector, RejectsHugeRegister)
{
    EXPECT_THROW(StateVector sv(29), std::invalid_argument);
}

/**
 * Property: any sequence of unitary gates preserves the norm, and the
 * measurement PMF over all qubits sums to one.
 */
class RandomCircuitNorm : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomCircuitNorm, NormAndPmfMassPreserved)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const int n = 2 + static_cast<int>(rng.uniformInt(0, 4));
    QuantumCircuit qc(n);
    std::vector<int> all(static_cast<std::size_t>(n));
    for (int q = 0; q < n; ++q)
        all[static_cast<std::size_t>(q)] = q;

    for (int step = 0; step < 60; ++step) {
        const int kind = static_cast<int>(rng.uniformInt(0, 5));
        const int a = static_cast<int>(rng.uniformInt(0, n - 1));
        int b = static_cast<int>(rng.uniformInt(0, n - 1));
        if (b == a)
            b = (a + 1) % n;
        switch (kind) {
          case 0: qc.h(a); break;
          case 1: qc.u3(rng.uniform(0, M_PI), rng.uniform(0, 2 * M_PI),
                        rng.uniform(0, 2 * M_PI), a); break;
          case 2: qc.cx(a, b); break;
          case 3: qc.rzz(rng.uniform(0, 2 * M_PI), a, b); break;
          case 4: qc.swap(a, b); break;
          default: qc.rx(rng.uniform(0, 2 * M_PI), a); break;
        }
    }

    StateVector sv(n);
    sv.applyCircuit(qc);
    EXPECT_NEAR(sv.norm(), 1.0, 1e-9);
    EXPECT_NEAR(sv.measurementPmf(all).totalMass(), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitNorm,
                         ::testing::Range(1, 21));

} // namespace
} // namespace sim
} // namespace jigsaw
