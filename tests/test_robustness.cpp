/**
 * @file
 * Robustness and edge-case tests across module boundaries: degenerate
 * JigSaw configurations, extreme calibrations, alternative device
 * families, router parameter extremes, QASM round-trips of the whole
 * benchmark registry, and the deterministic fault-injection machinery
 * (spec grammar, counted/probabilistic rules, error taxonomy).
 */
#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "circuit/qasm.h"
#include "common/error.h"
#include "common/fault.h"
#include "compiler/sabre.h"
#include "core/jigsaw.h"
#include "core/scheduler.h"
#include "core/service.h"
#include "device/library.h"
#include "metrics/metrics.h"
#include "mitigation/characterize.h"
#include "sim/simulators.h"
#include "workloads/registry.h"

namespace jigsaw {
namespace {

using circuit::QuantumCircuit;
using device::DeviceModel;

/** Disarms the process-wide fault injector however the test exits. */
struct FaultGuard
{
    ~FaultGuard() { FaultInjector::instance().clear(); }
};

TEST(FaultInjection, ParsesSpecGrammar)
{
    const std::vector<FaultRule> rules = parseFaultSpec(
        "executor.run:first=2;merge.execute@2:prob=0.25:seed=7:terminal;"
        "stage.plan");
    ASSERT_EQ(rules.size(), 3u);
    EXPECT_EQ(rules[0].site, "executor.run");
    EXPECT_TRUE(rules[0].detail.empty());
    EXPECT_EQ(rules[0].failFirst, 2u);
    EXPECT_EQ(rules[0].probability, 0.0);
    EXPECT_TRUE(rules[0].transient);
    EXPECT_EQ(rules[1].site, "merge.execute");
    EXPECT_EQ(rules[1].detail, "2");
    EXPECT_DOUBLE_EQ(rules[1].probability, 0.25);
    EXPECT_EQ(rules[1].seed, 7u);
    EXPECT_FALSE(rules[1].transient);
    EXPECT_EQ(rules[2].site, "stage.plan");
    EXPECT_EQ(rules[2].failFirst, 0u);

    // Empty rules are skipped, not errors (trailing ';' is fine).
    EXPECT_TRUE(parseFaultSpec("").empty());
    EXPECT_TRUE(parseFaultSpec(";;").empty());

    // Malformed specs are rejected loudly.
    EXPECT_THROW(parseFaultSpec(":first=1"), std::invalid_argument);
    EXPECT_THROW(parseFaultSpec("x:bogus=1"), std::invalid_argument);
    EXPECT_THROW(parseFaultSpec("x:first=abc"), std::invalid_argument);
    EXPECT_THROW(parseFaultSpec("x:first="), std::invalid_argument);
    EXPECT_THROW(parseFaultSpec("x:prob=1.5"), std::invalid_argument);
}

TEST(FaultInjection, CountedRulesFireExactlyAndReset)
{
    FaultGuard guard;
    FaultInjector &injector = FaultInjector::instance();
    injector.configure(parseFaultSpec("executor.run:first=3"));
    EXPECT_TRUE(injector.armed());
    std::size_t thrown = 0;
    for (int i = 0; i < 10; ++i) {
        try {
            injectFaultPoint("executor.run");
        } catch (const TransientError &) {
            ++thrown;
        }
    }
    EXPECT_EQ(thrown, 3u);
    EXPECT_EQ(injector.injected(), 3u);
    EXPECT_EQ(injector.injectedAt("executor.run"), 3u);
    EXPECT_EQ(injector.injectedAt("executor.runBatch"), 0u);

    injector.clear();
    EXPECT_FALSE(injector.armed());
    EXPECT_EQ(injector.injected(), 0u);
    EXPECT_NO_THROW(injectFaultPoint("executor.run"));
}

TEST(FaultInjection, DetailMatchingAndTerminalType)
{
    FaultGuard guard;
    FaultInjector::instance().configure(
        parseFaultSpec("merge.execute@2:first=2:terminal"));
    // Wrong or missing detail never matches a detailed rule.
    EXPECT_NO_THROW(injectFaultPoint("merge.execute", "3"));
    EXPECT_NO_THROW(injectFaultPoint("merge.execute"));
    EXPECT_NO_THROW(injectFaultPoint("executor.run", "2"));
    // A terminal rule throws plain std::runtime_error, never the
    // retryable TransientError subtype.
    bool threw_terminal = false;
    try {
        injectFaultPoint("merge.execute", "2");
    } catch (const TransientError &) {
        FAIL() << "terminal rule threw TransientError";
    } catch (const std::runtime_error &) {
        threw_terminal = true;
    }
    EXPECT_TRUE(threw_terminal);
}

TEST(FaultInjection, IsTransientClassifiesErrors)
{
    EXPECT_TRUE(
        isTransient(std::make_exception_ptr(TransientError("flaky"))));
    EXPECT_FALSE(isTransient(
        std::make_exception_ptr(std::runtime_error("terminal"))));
    EXPECT_FALSE(isTransient(
        std::make_exception_ptr(DeadlineExceededError("late"))));
    EXPECT_FALSE(isTransient(
        std::make_exception_ptr(std::invalid_argument("bad"))));
}

TEST(FaultInjection, InjectedFaultFailsRunJigsawUntilCleared)
{
    FaultGuard guard;
    const auto ghz = workloads::makeWorkload("GHZ-5");
    const DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 93});
    FaultInjector::instance().configure(
        parseFaultSpec("stage.plan:first=1:terminal"));
    EXPECT_THROW(core::runJigsaw(ghz->circuit(), dev, executor, 2048),
                 std::runtime_error);
    FaultInjector::instance().clear();
    EXPECT_NO_THROW(core::runJigsaw(ghz->circuit(), dev, executor, 2048));
}

TEST(FaultInjection, RejectsUnknownSitesNamingTheKnownOnes)
{
    // A typo in JIGSAW_FAULT_SPEC must fail spec parsing loudly, not
    // silently arm a rule that can never fire.
    EXPECT_THROW(parseFaultSpec("stage.compiel:first=1"),
                 std::invalid_argument);
    try {
        parseFaultSpec("worker.crsh:first=2");
        FAIL() << "unknown site accepted";
    } catch (const std::invalid_argument &error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("worker.crsh"), std::string::npos)
            << message;
        EXPECT_NE(message.find("known sites"), std::string::npos)
            << message;
        EXPECT_NE(message.find("worker.crash"), std::string::npos)
            << message;
    }
}

TEST(FaultInjection, KnownSitesCoverEveryInstrumentedPoint)
{
    const std::vector<std::string> &sites =
        FaultInjector::knownSites();
    for (const char *site :
         {"stage.plan", "stage.compile", "stage.reconstruct",
          "executor.run", "executor.runBatch", "merge.execute",
          "transport.send", "transport.recv", "worker.crash",
          "worker.stall"}) {
        EXPECT_NE(std::find(sites.begin(), sites.end(), site),
                  sites.end())
            << site << " missing from knownSites()";
    }
    // Every advertised site round-trips through the spec parser.
    for (const std::string &site : sites)
        EXPECT_NO_THROW(parseFaultSpec(site + ":first=1"));
}

TEST(Robustness, DoublePoisonedWindowChargesOnlySoloFailures)
{
    // A job quarantined out of a poisoned window pays no retry budget
    // for the window's failure; when its solo exclusive retry then
    // fails too, only THOSE failures charge attempts. The "@2" rule
    // poisons the two-job window once; the "@1" rule fails two solo
    // executions; total attempts across both jobs must be exactly 2 —
    // double-charging the window poisoning would make it 4.
    const DeviceModel dev = device::toronto();
    const auto ghz = workloads::makeWorkload("GHZ-6");
    std::vector<core::ServiceProgram> programs;
    programs.emplace_back(ghz->circuit(), dev, 8192,
                          core::JigsawOptions{}, 9101);
    programs.emplace_back(ghz->circuit(), dev, 8192,
                          core::JigsawOptions{}, 9102);
    const std::vector<core::JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    FaultGuard guard;
    FaultInjector::instance().configure(parseFaultSpec(
        "merge.execute@2:first=1:terminal;merge.execute@1:first=2"));

    core::StreamOptions options;
    options.mergePolicy = core::MergePolicy::Always;
    options.windowMs = 60000.0; // held open until both jobs joined
    core::StreamingScheduler scheduler(options);
    const core::JobHandle first = scheduler.submit(programs[0]).handle;
    const core::JobHandle second = scheduler.submit(programs[1]).handle;
    for (const core::JobHandle handle : {first, second}) {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(60);
        for (;;) {
            const auto status = scheduler.poll(handle);
            ASSERT_TRUE(status.has_value());
            if (status->state == core::JobState::Windowed)
                break;
            ASSERT_LT(std::chrono::steady_clock::now(), deadline);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    }
    scheduler.drain();

    const core::JigsawResult first_result = scheduler.wait(first);
    const core::JigsawResult second_result = scheduler.wait(second);
    EXPECT_EQ(first_result.output.support(),
              sequential[0].output.support());
    EXPECT_EQ(second_result.output.support(),
              sequential[1].output.support());
    for (const auto &[outcome, p] : sequential[0].output.probabilities())
        EXPECT_EQ(p, first_result.output.prob(outcome));
    for (const auto &[outcome, p] : sequential[1].output.probabilities())
        EXPECT_EQ(p, second_result.output.prob(outcome));

    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.quarantinedJobs, 2u);
    EXPECT_EQ(stats.retries, 2u);
    const auto first_status = scheduler.poll(first);
    const auto second_status = scheduler.poll(second);
    ASSERT_TRUE(first_status.has_value());
    ASSERT_TRUE(second_status.has_value());
    EXPECT_EQ(first_status->attempts + second_status->attempts, 2u);
}

TEST(Robustness, ShedHintSeedsFromFirstObservedLatency)
{
    // Cold-start drain estimate: before any completion interval
    // exists, the first completed job's execute latency seeds the
    // EWMA behind tryLaterAfterMs. With a pathological 60-second
    // merge window, the old windowMs fallback would tell a shed
    // caller to come back in a minute; the seeded estimate stays in
    // the (millisecond-scale) region of an actual execution.
    const DeviceModel dev = device::toronto();
    const auto ghz = workloads::makeWorkload("GHZ-6");
    const auto program = [&](std::uint64_t seed) {
        return core::ServiceProgram(ghz->circuit(), dev, 4096,
                                    core::JigsawOptions{}, seed);
    };

    core::StreamOptions options;
    options.mergePolicy = core::MergePolicy::Always;
    options.windowMs = 60000.0;
    options.maxQueuedJobs = 4; // Normal sheds at 4, Low at 3
    core::StreamingScheduler scheduler(options);

    // High priority closes its window immediately, so this job
    // completes despite the huge windowMs and seeds the estimate.
    scheduler.wait(
        scheduler.submit(program(9301), core::Priority::High).handle);

    // Three Normal jobs park in the (still far-off) merge window...
    std::vector<core::JobHandle> parked;
    for (std::uint64_t seed = 9302; seed <= 9304; ++seed)
        parked.push_back(scheduler.submit(program(seed)).handle);
    // ...which puts the backlog at the Low shed threshold.
    const core::SubmitResult shed =
        scheduler.submit(program(9305), core::Priority::Low);
    EXPECT_FALSE(shed.admitted);
    EXPECT_GT(shed.tryLaterAfterMs, 0.0);
    EXPECT_LT(shed.tryLaterAfterMs, 60000.0)
        << "hint fell back to windowMs despite an observed completion";

    for (const core::JobHandle handle : parked)
        EXPECT_TRUE(scheduler.cancel(handle));
}

TEST(Robustness, FullSizeSubsetDegeneratesToGlobalDuplicate)
{
    // A CPM that measures every qubit is legal: the marginal covers
    // all bits, and reconstruction still returns a valid PMF.
    const auto ghz = workloads::makeWorkload("GHZ-5");
    const DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 91});

    core::JigsawOptions options;
    options.subsetSizes = {5};
    const core::JigsawResult run =
        core::runJigsaw(ghz->circuit(), dev, executor, 4096, options);
    ASSERT_EQ(run.cpms.size(), 1u); // one unique full window
    EXPECT_EQ(run.cpms[0].subset.size(), 5u);
    EXPECT_NEAR(run.output.totalMass(), 1.0, 1e-9);
    EXPECT_GT(metrics::pst(run.output, *ghz), 0.2);
}

TEST(Robustness, OddTrialCountsAccounted)
{
    const auto ghz = workloads::makeWorkload("GHZ-5");
    const DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 92});
    const core::JigsawResult run =
        core::runJigsaw(ghz->circuit(), dev, executor, 12345);
    EXPECT_EQ(run.globalTrials, 6172u); // floor(12345 * 0.5)
    EXPECT_LE(run.globalTrials + run.subsetTrials, 12345u);
}

TEST(Robustness, ExtremeReadoutStillValid)
{
    // A device with near-maximal readout error must not break the
    // pipeline; outputs stay normalized even if useless.
    device::Topology topo = device::linearTopology(4);
    device::Calibration cal(4, 3);
    for (int q = 0; q < 4; ++q) {
        cal.qubit(q).readoutError01 = 0.45;
        cal.qubit(q).readoutError10 = 0.49;
        cal.qubit(q).crosstalkGamma = 0.05; // clamps at 0.5
    }
    const DeviceModel dev("awful", std::move(topo), std::move(cal));
    sim::NoisySimulator executor(dev, {.seed = 93});

    const auto ghz = workloads::makeWorkload("GHZ-4");
    const core::JigsawResult run =
        core::runJigsaw(ghz->circuit(), dev, executor, 4096);
    EXPECT_NEAR(run.output.totalMass(), 1.0, 1e-9);
    for (const auto &[outcome, p] : run.output.probabilities())
        EXPECT_GE(p, 0.0);
}

TEST(Robustness, PerfectDeviceIsNoOp)
{
    // All-zero calibration: JigSaw must not corrupt a clean result.
    device::Topology topo = device::linearTopology(5);
    device::Calibration cal(5, 4);
    const DeviceModel dev("perfect", std::move(topo), std::move(cal));
    sim::NoisySimulator executor(dev, {.seed = 94});

    const auto ghz = workloads::makeWorkload("GHZ-5");
    const core::JigsawResult run =
        core::runJigsaw(ghz->circuit(), dev, executor, 8192);
    EXPECT_GT(metrics::pst(run.output, *ghz), 0.99);
}

TEST(Robustness, SycamoreGridDevicePipeline)
{
    // The grid-topology Sycamore model exercises different routing
    // patterns than heavy-hex; the full pipeline must still win.
    const DeviceModel dev = device::sycamore();
    sim::NoisySimulator executor(dev, {.seed = 95});
    const auto ghz = workloads::makeWorkload("GHZ-10");

    const Pmf baseline =
        core::runBaseline(ghz->circuit(), dev, executor, 16384);
    const core::JigsawResult js =
        core::runJigsaw(ghz->circuit(), dev, executor, 16384);
    EXPECT_GT(metrics::pst(js.output, *ghz),
              metrics::pst(baseline, *ghz));
}

TEST(Robustness, SabreExtremeParameters)
{
    // Zero lookahead and zero decay must still route correctly.
    const device::Topology topo = device::linearTopology(6);
    QuantumCircuit qc(6, 6);
    qc.cx(0, 5).cx(5, 0).cx(2, 4).measureAll();
    std::vector<int> identity{0, 1, 2, 3, 4, 5};
    compiler::SabreOptions options;
    options.lookaheadDepth = 0;
    options.decayStep = 0.0;
    const compiler::RoutedCircuit routed = compiler::sabreRoute(
        qc, topo, compiler::Layout(identity, 6), options);
    for (const circuit::Gate &g : routed.physical.gates()) {
        if (g.isTwoQubit()) {
            EXPECT_TRUE(topo.areCoupled(g.qubits[0], g.qubits[1]));
        }
    }
    sim::IdealSimulator ideal;
    EXPECT_LT(totalVariationDistance(ideal.idealPmf(qc),
                                     ideal.idealPmf(routed.physical)),
              1e-9);
}

TEST(Robustness, CharacterizeCpmSubset)
{
    // Characterization works for a CPM's 2-qubit measurement set.
    const DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 96});
    const auto ghz = workloads::makeWorkload("GHZ-6");
    const core::JigsawResult run =
        core::runJigsaw(ghz->circuit(), dev, executor, 8192);
    const auto confusion = mitigation::characterizeReadout(
        run.cpms.front().compiled.physical, executor, 20000);
    ASSERT_EQ(confusion.flip0.size(), 2u);
    for (double f : confusion.flip0) {
        EXPECT_GT(f, 0.0);
        EXPECT_LT(f, 0.2);
    }
}

TEST(Robustness, LargeProgramOnManhattan)
{
    // GHZ-20 on the 65-qubit model: routing spills onto extra
    // physical qubits, and the compacted state vector must stay
    // within the simulator's limit while JigSaw still helps.
    const DeviceModel dev = device::manhattan();
    sim::NoisySimulator executor(dev, {.seed = 97});
    const auto ghz = workloads::makeWorkload("GHZ-20");

    const Pmf baseline =
        core::runBaseline(ghz->circuit(), dev, executor, 8192);
    const core::JigsawResult js =
        core::runJigsaw(ghz->circuit(), dev, executor, 8192);
    EXPECT_GT(metrics::pst(js.output, *ghz),
              metrics::pst(baseline, *ghz));
    EXPECT_NEAR(js.output.totalMass(), 1.0, 1e-9);
}

TEST(Robustness, CorrelatedErrorFloorLimitsBaselineNotJigsaw)
{
    // The correlated-pair flips create the error floor that makes
    // trials saturate (Fig 7); reconstruction should claw back part
    // of it. Compare devices differing only in that knob.
    device::Topology topo = device::linearTopology(6);
    device::Calibration clean_cal(6, 5);
    for (int q = 0; q < 6; ++q) {
        clean_cal.qubit(q).readoutError01 = 0.02;
        clean_cal.qubit(q).readoutError10 = 0.03;
    }
    device::Calibration corr_cal = clean_cal;
    corr_cal.setCorrelatedPairError(0.02);

    const DeviceModel clean("clean", topo, std::move(clean_cal));
    const DeviceModel correlated("corr", topo, std::move(corr_cal));
    const auto ghz = workloads::makeWorkload("GHZ-6");

    sim::NoisySimulator clean_exec(clean, {.seed = 98});
    sim::NoisySimulator corr_exec(correlated, {.seed = 98});
    const Pmf base_clean =
        core::runBaseline(ghz->circuit(), clean, clean_exec, 32768);
    const Pmf base_corr =
        core::runBaseline(ghz->circuit(), correlated, corr_exec, 32768);
    // The correlated floor costs baseline PST.
    EXPECT_LT(metrics::pst(base_corr, *ghz),
              metrics::pst(base_clean, *ghz));

    const core::JigsawResult js_corr =
        core::runJigsaw(ghz->circuit(), correlated, corr_exec, 32768);
    EXPECT_GT(metrics::pst(js_corr.output, *ghz),
              metrics::pst(base_corr, *ghz));
}

/** Property: every registry benchmark round-trips through QASM with
 *  identical output distributions. */
class QasmRegistryRoundTrip
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(QasmRegistryRoundTrip, DistributionPreserved)
{
    const auto workload = workloads::makeWorkload(GetParam());
    const QuantumCircuit &original = workload->circuit();
    const QuantumCircuit parsed =
        circuit::fromQasm(circuit::toQasm(original));

    sim::IdealSimulator ideal;
    EXPECT_LT(totalVariationDistance(ideal.idealPmf(original),
                                     ideal.idealPmf(parsed)),
              1e-9);
    EXPECT_EQ(parsed.countTwoQubitGates(),
              original.countTwoQubitGates());
}

INSTANTIATE_TEST_SUITE_P(Registry, QasmRegistryRoundTrip,
                         ::testing::Values("BV-5", "GHZ-6",
                                           "Graycode-8", "Ising-4",
                                           "QAOA-6 p2", "QFTAdj-5",
                                           "W-5"));

/** Property: every registry benchmark's circuit has terminal
 *  measurements and a normalized ideal PMF. */
class WorkloadWellFormed : public ::testing::TestWithParam<const char *>
{
};

TEST_P(WorkloadWellFormed, TerminalMeasuresAndNormalizedIdeal)
{
    const auto workload = workloads::makeWorkload(GetParam());
    EXPECT_NO_THROW(
        sim::checkTerminalMeasurements(workload->circuit()));
    EXPECT_NEAR(workload->idealPmf().totalMass(), 1.0, 1e-9);
    EXPECT_GT(metrics::pst(workload->idealPmf(), *workload), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Registry, WorkloadWellFormed,
                         ::testing::Values("BV-5", "GHZ-6",
                                           "Graycode-8", "Ising-4",
                                           "QAOA-6 p2", "QFTAdj-5",
                                           "W-5"));

} // namespace
} // namespace jigsaw
