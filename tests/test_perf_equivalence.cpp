/**
 * @file
 * Golden-equivalence tests for the fast-path execution engine: the
 * strided/fused/parallel state-vector kernels and the indexed Bayesian
 * reconstruction must reproduce the naive reference implementations to
 * within 1e-12 Hellinger distance, the cached executor must be
 * deterministic under a fixed seed, and the supporting primitives
 * (structural hash, alias table, parallel-for) must behave.
 */
#include <cmath>
#include <cstdlib>

#include <gtest/gtest.h>

#include "common/alias.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/simd.h"
#include "core/bayesian.h"
#include "core/reference_bayesian.h"
#include "core/subsets.h"
#include "device/library.h"
#include "sim/reference_kernels.h"
#include "sim/simulators.h"
#include "sim/statevector.h"
#include "workloads/bv.h"
#include "workloads/ghz.h"
#include "workloads/ising.h"
#include "workloads/qaoa.h"
#include "workloads/qft.h"

namespace jigsaw {
namespace {

using circuit::QuantumCircuit;

std::vector<int>
allQubits(int n)
{
    std::vector<int> qs(static_cast<std::size_t>(n));
    for (int q = 0; q < n; ++q)
        qs[static_cast<std::size_t>(q)] = q;
    return qs;
}

/**
 * Assert two PMFs are identical up to floating-point noise. Hellinger
 * alone cannot certify this tighter than ~1e-8: for bit-identical
 * inputs the Bhattacharyya sum rounds to 1 +/- 1e-16 and the outer
 * sqrt amplifies that to sqrt(eps). So the Hellinger bound guards the
 * distribution shape and the total-variation bound (no sqrt
 * amplification) pins the per-outcome agreement.
 */
void
expectIdenticalPmf(const Pmf &reference, const Pmf &actual)
{
    EXPECT_LT(hellingerDistance(reference, actual), 1e-6);
    EXPECT_LT(totalVariationDistance(reference, actual), 1e-10);
}

/** Optimized-vs-reference PMF agreement over all qubits of @p qc. */
void
expectKernelEquivalence(const QuantumCircuit &qc)
{
    const std::vector<int> qubits = allQubits(qc.nQubits());
    const Pmf reference = sim::referenceMeasurementPmf(qc, qubits);

    sim::StateVector state(qc.nQubits());
    state.applyCircuit(qc);
    const Pmf optimized = state.measurementPmf(qubits);

    expectIdenticalPmf(reference, optimized);
    EXPECT_NEAR(state.norm(), 1.0, 1e-10);
}

QuantumCircuit
randomU3CxCircuit(int n_qubits, int depth, std::uint64_t seed)
{
    Rng rng(seed);
    QuantumCircuit qc(n_qubits, n_qubits);
    for (int layer = 0; layer < depth; ++layer) {
        for (int q = 0; q < n_qubits; ++q) {
            qc.u3(rng.uniform(0.0, M_PI), rng.uniform(0.0, 2 * M_PI),
                  rng.uniform(0.0, 2 * M_PI), q);
        }
        for (int q = layer % 2; q + 1 < n_qubits; q += 2)
            qc.cx(q, q + 1);
    }
    return qc;
}

// ------------------------------------------------- kernel equivalence

TEST(KernelEquivalence, GhzUpTo12Qubits)
{
    for (int n = 2; n <= 12; n += 5)
        expectKernelEquivalence(workloads::Ghz(n).circuit());
}

TEST(KernelEquivalence, BernsteinVazirani)
{
    expectKernelEquivalence(workloads::BernsteinVazirani(10).circuit());
}

TEST(KernelEquivalence, QftAdjoint)
{
    expectKernelEquivalence(workloads::QftAdjoint(10).circuit());
}

TEST(KernelEquivalence, RandomU3CxCircuits)
{
    for (std::uint64_t seed = 1; seed <= 3; ++seed)
        expectKernelEquivalence(randomU3CxCircuit(12, 6, seed));
}

// ------------------------------------------- diagonal-run fusion golden

TEST(DiagonalFusion, IsingLayerShape)
{
    // Trotterized Ising layers: RX mixers between RZZ chains + RZ
    // fields — the exact shape the general diagonal-run fusion
    // targets (an RZZ chain shares no single common qubit, so the
    // CP/CZ run pass cannot take it).
    Rng rng(11);
    const int n = 10;
    QuantumCircuit qc(n, n);
    for (int layer = 0; layer < 3; ++layer) {
        for (int q = 0; q < n; ++q)
            qc.rx(rng.uniform(0.0, M_PI), q);
        for (int q = 0; q + 1 < n; ++q)
            qc.rzz(rng.uniform(0.0, 2 * M_PI), q, q + 1);
        for (int q = 0; q < n; ++q)
            qc.rz(rng.uniform(0.0, 2 * M_PI), q);
    }
    qc.measureAll();
    expectKernelEquivalence(qc);
}

TEST(DiagonalFusion, MixedDiagonalRun)
{
    // RZZ, CP, CZ, and 1q diagonals in one contiguous run, including
    // a repeated edge and a detached qubit pair: all commute, all
    // fold into one phase table.
    QuantumCircuit qc(8, 8);
    for (int q = 0; q < 8; ++q)
        qc.h(q);
    qc.rzz(0.8, 0, 1).cp(0.4, 1, 2).cz(2, 3).rzz(1.3, 0, 1);
    qc.rz(0.9, 1).t(2).s(3).rzz(0.5, 6, 7).cp(1.7, 5, 6).z(0);
    for (int q = 0; q < 8; ++q)
        qc.ry(0.3 + 0.1 * q, q);
    qc.rzz(2.1, 3, 4).rzz(0.2, 4, 5);
    qc.measureAll();
    expectKernelEquivalence(qc);
}

TEST(DiagonalFusion, ChainBeyondQubitCap)
{
    // A 14-qubit RZZ chain exceeds the 12-qubit fused-table cap, so
    // the run splits; the split is exact (diagonals commute).
    Rng rng(7);
    const int n = 14;
    QuantumCircuit qc(n, n);
    for (int q = 0; q < n; ++q)
        qc.h(q);
    for (int q = 0; q + 1 < n; ++q)
        qc.rzz(rng.uniform(0.0, 2 * M_PI), q, q + 1);
    for (int q = 0; q < n; ++q)
        qc.rz(rng.uniform(0.0, 2 * M_PI), q);
    qc.measureAll();
    expectKernelEquivalence(qc);
}

TEST(DiagonalFusion, IsingAndQaoaWorkloads)
{
    expectKernelEquivalence(workloads::IsingChain(9).circuit());
    expectKernelEquivalence(workloads::QaoaMaxCut(9, 2).circuit());
}

TEST(DiagonalFusion, BarriersDoNotBreakRuns)
{
    QuantumCircuit qc(6, 6);
    for (int q = 0; q < 6; ++q)
        qc.h(q);
    qc.rzz(0.7, 0, 1);
    qc.barrier();
    qc.rzz(1.1, 1, 2).cp(0.3, 2, 3);
    qc.barrier();
    qc.rzz(0.4, 3, 4).rz(1.9, 5);
    qc.measureAll();
    expectKernelEquivalence(qc);
}

TEST(KernelEquivalence, EveryGateTypeOnce)
{
    QuantumCircuit qc(4, 4);
    qc.h(0).x(1).y(2).z(3).s(0).sdg(1).t(2).tdg(3);
    qc.rx(0.3, 0).ry(0.7, 1).rz(1.1, 2).u3(0.5, 0.2, 0.9, 3);
    qc.cx(0, 1).cz(1, 2).cp(0.4, 2, 3).rzz(0.8, 0, 3).swap(1, 3);
    // A run of same-qubit 1q gates to exercise fusion, including a
    // diagonal-only run.
    qc.h(2).t(2).h(2).rz(0.25, 0).s(0).z(0);
    expectKernelEquivalence(qc);
}

TEST(KernelEquivalence, ControlledPhaseRunFusion)
{
    // Runs of CP/CZ gates sharing one qubit fuse into a single
    // phase-table pass; cover contiguous controls (the QFT shape),
    // scattered controls (the PEXT path), duplicate controls, low
    // targets, and runs split by the fusion cap.
    QuantumCircuit qc(10, 10);
    for (int q = 0; q < 10; ++q)
        qc.h(q);
    for (int c = 0; c < 9; ++c)
        qc.cp(0.1 * (c + 1), c, 9); // contiguous controls, target 9
    qc.cp(0.3, 1, 7).cz(3, 7).cp(0.7, 5, 7); // scattered controls
    qc.cp(0.2, 4, 2).cp(0.4, 8, 2).cz(6, 2); // mid target
    qc.cp(0.5, 7, 0).cz(3, 0).cp(0.9, 7, 0); // low target + duplicate
    for (int r = 0; r < 16; ++r) // longer than the fusion cap
        qc.cp(0.05 * (r + 1), r % 9, 9);
    qc.cz(0, 1).cz(0, 1); // two-gate run, both candidates survive
    expectKernelEquivalence(qc);
}

TEST(KernelEquivalence, SingleGateApplyMatchesCircuitApply)
{
    // applyGate (unfused) and applyCircuit (fused) must agree.
    const QuantumCircuit qc = randomU3CxCircuit(8, 4, 99);
    sim::StateVector fused(8);
    fused.applyCircuit(qc);
    sim::StateVector unfused(8);
    for (const circuit::Gate &g : qc.gates()) {
        if (!g.isMeasure())
            unfused.applyGate(g);
    }
    const std::vector<int> qs = allQubits(8);
    expectIdenticalPmf(unfused.measurementPmf(qs),
                       fused.measurementPmf(qs));
}

// ------------------------------------------- reconstruction equivalence

std::vector<core::Marginal>
randomMarginals(int n_qubits, const std::vector<int> &sizes, Rng &rng)
{
    std::vector<core::Marginal> marginals;
    for (int size : sizes) {
        for (const core::Subset &s :
             core::slidingWindowSubsets(n_qubits, size)) {
            Pmf local(size);
            for (BasisState v = 0; v < (1ULL << size); ++v)
                local.set(v, rng.uniform(0.05, 1.0));
            local.normalize();
            marginals.push_back({local, s});
        }
    }
    return marginals;
}

Pmf
randomGlobal(int n_qubits, std::size_t support, Rng &rng)
{
    const BasisState mask = (1ULL << n_qubits) - 1;
    Pmf pmf(n_qubits);
    while (pmf.support() < support)
        pmf.set(static_cast<BasisState>(rng.word() & mask),
                rng.uniform(0.01, 1.0));
    pmf.normalize();
    return pmf;
}

TEST(ReconstructionEquivalence, IndexedMatchesReference)
{
    Rng rng(11);
    const Pmf global = randomGlobal(10, 300, rng);
    const std::vector<core::Marginal> marginals =
        randomMarginals(10, {2}, rng);
    core::ReconstructionOptions options;
    options.maxRounds = 6;
    options.tolerance = 0.0; // fixed rounds on both paths

    const Pmf reference =
        core::referenceReconstruct(global, marginals, options);
    const Pmf indexed =
        core::bayesianReconstruct(global, marginals, options);
    expectIdenticalPmf(reference, indexed);
}

TEST(ReconstructionEquivalence, MultiLayerMatchesReference)
{
    Rng rng(12);
    const Pmf global = randomGlobal(12, 800, rng);
    const std::vector<core::Marginal> marginals =
        randomMarginals(12, {2, 3, 4, 5}, rng);
    core::ReconstructionOptions options;
    options.maxRounds = 4;
    options.tolerance = 0.0;

    const Pmf reference =
        core::referenceMultiLayerReconstruct(global, marginals, options);
    const Pmf indexed =
        core::multiLayerReconstruct(global, marginals, options);
    expectIdenticalPmf(reference, indexed);
}

TEST(ReconstructionEquivalence, ShardedMatchesPerMarginal)
{
    // The sharded round loop (flat outcome vector split across
    // fixed-size shards, per-shard partial bucket masses reduced in
    // shard order) must golden-match the per-marginal path; the two
    // group their floating-point sums differently, so the bound is
    // the usual golden-equivalence tolerance, not bitwise.
    Rng rng(13);
    const Pmf global = randomGlobal(12, 1500, rng);
    const std::vector<core::Marginal> marginals =
        randomMarginals(12, {2, 3}, rng);
    core::ReconstructionOptions options;
    options.maxRounds = 5;
    options.tolerance = 0.0;

    options.shardMode = core::ShardMode::Never;
    const Pmf per_marginal =
        core::bayesianReconstruct(global, marginals, options);
    options.shardMode = core::ShardMode::Always;
    const Pmf sharded =
        core::bayesianReconstruct(global, marginals, options);
    expectIdenticalPmf(per_marginal, sharded);

    // And against the naive reference, like every other path.
    options.shardMode = core::ShardMode::Always;
    const Pmf reference =
        core::referenceReconstruct(global, marginals,
                                   core::ReconstructionOptions{
                                       .maxRounds = 5,
                                       .tolerance = 0.0});
    expectIdenticalPmf(reference, sharded);
}

TEST(ReconstructionEquivalence, ShardedMultiShardSupport)
{
    // A support spanning several 16384-outcome shards, with
    // convergence enabled: both paths must stop at the same shape.
    Rng rng(14);
    const Pmf global = randomGlobal(16, 40000, rng);
    const std::vector<core::Marginal> marginals =
        randomMarginals(16, {2}, rng);
    core::ReconstructionOptions options;
    options.maxRounds = 4;
    options.tolerance = 0.0;

    options.shardMode = core::ShardMode::Never;
    const Pmf per_marginal =
        core::bayesianReconstruct(global, marginals, options);
    options.shardMode = core::ShardMode::Always;
    const Pmf sharded =
        core::bayesianReconstruct(global, marginals, options);
    expectIdenticalPmf(per_marginal, sharded);
}

TEST(ReconstructionEquivalence, LargeSupportShardedMatchesUnsharded)
{
    // The >1M-outcome regime the gather/reconstruction kernel tables
    // target: the sharded and per-marginal paths must still be golden
    // equivalent when the flat vectors span dozens of shards and the
    // SIMD main loops do essentially all the work. Too slow for the
    // default test run, so it is opt-in.
    if (std::getenv("JIGSAW_LARGE_TESTS") == nullptr)
        GTEST_SKIP() << "set JIGSAW_LARGE_TESTS=1 to run (>1M outcomes)";
    Rng rng(16);
    const Pmf global = randomGlobal(21, (1ULL << 20) + 1, rng);
    const std::vector<core::Marginal> marginals =
        randomMarginals(21, {3}, rng);
    core::ReconstructionOptions options;
    options.maxRounds = 3;
    options.tolerance = 0.0;

    options.shardMode = core::ShardMode::Never;
    const Pmf per_marginal =
        core::bayesianReconstruct(global, marginals, options);
    options.shardMode = core::ShardMode::Always;
    const Pmf sharded =
        core::bayesianReconstruct(global, marginals, options);
    expectIdenticalPmf(per_marginal, sharded);
}

TEST(ReconstructionEquivalence, ShardedIsDeterministic)
{
    // Fixed shard boundaries: two identical sharded runs are bitwise
    // equal whatever the pool did.
    Rng rng(15);
    const Pmf global = randomGlobal(12, 2000, rng);
    const std::vector<core::Marginal> marginals =
        randomMarginals(12, {2, 3}, rng);
    core::ReconstructionOptions options;
    options.maxRounds = 6;
    options.shardMode = core::ShardMode::Always;

    const Pmf a = core::bayesianReconstruct(global, marginals, options);
    const Pmf b = core::bayesianReconstruct(global, marginals, options);
    ASSERT_EQ(a.support(), b.support());
    for (const auto &[outcome, p] : a.probabilities())
        EXPECT_EQ(p, b.prob(outcome));
}

TEST(ReconstructionEquivalence, SparseLocalPmfKeepsPriorMass)
{
    // A marginal that never observed subset value 0b11 must leave the
    // matching global outcomes at their prior probability.
    Pmf global(2);
    global.set(0b00, 0.4);
    global.set(0b01, 0.3);
    global.set(0b11, 0.3);
    Pmf local(2);
    local.set(0b00, 0.7);
    local.set(0b01, 0.3);
    const core::Marginal m{local, {0, 1}};

    const Pmf posterior = core::bayesianUpdate(global, m);
    EXPECT_GT(posterior.prob(0b11), 0.0);
    // Below-threshold evidence is treated exactly like absent evidence.
    Pmf local2 = local;
    local2.set(0b11, 1e-15);
    const Pmf posterior2 =
        core::bayesianUpdate(global, {local2, {0, 1}});
    EXPECT_NEAR(posterior.prob(0b11), posterior2.prob(0b11), 1e-12);
}

// ------------------------------------------------- executor determinism

TEST(CachedExecutor, SamplingIsReproducibleAcrossCacheHits)
{
    QuantumCircuit qc(3, 3);
    qc.h(0).cx(0, 1).cx(1, 2).measureAll();

    sim::IdealSimulator a(42);
    const Histogram a1 = a.run(qc, 2000); // miss
    const Histogram a2 = a.run(qc, 2000); // hit
    EXPECT_EQ(a.cacheMisses(), 1u);
    EXPECT_EQ(a.cacheHits(), 1u);

    // A fresh simulator with the same seed must reproduce both draws:
    // cache hits may not perturb the RNG stream.
    sim::IdealSimulator b(42);
    const Histogram b1 = b.run(qc, 2000);
    const Histogram b2 = b.run(qc, 2000);
    for (const auto &[outcome, count] : a1.counts())
        EXPECT_EQ(count, b1.count(outcome));
    for (const auto &[outcome, count] : a2.counts())
        EXPECT_EQ(count, b2.count(outcome));
}

TEST(CachedExecutor, NoisyCacheReusesEvolution)
{
    const device::DeviceModel dev = device::toronto();
    QuantumCircuit qc(dev.nQubits(), 2);
    qc.h(0).x(1).measure(0, 0).measure(1, 1);
    sim::NoisySimulator noisy(dev, {.seed = 5});
    noisy.run(qc, 1000);
    noisy.run(qc, 1000);
    noisy.run(qc, 1000);
    EXPECT_EQ(noisy.cacheMisses(), 1u);
    EXPECT_EQ(noisy.cacheHits(), 2u);
}

TEST(StructuralHash, DistinguishesCircuits)
{
    QuantumCircuit a(2, 2);
    a.h(0).cx(0, 1).measureAll();
    QuantumCircuit b(2, 2);
    b.h(0).cx(0, 1).measureAll();
    EXPECT_EQ(a.structuralHash(), b.structuralHash());

    QuantumCircuit c(2, 2);
    c.h(1).cx(0, 1).measureAll(); // different qubit
    EXPECT_NE(a.structuralHash(), c.structuralHash());

    QuantumCircuit d(2, 2);
    d.rz(0.5, 0).cx(0, 1).measureAll(); // different type/params
    QuantumCircuit e(2, 2);
    e.rz(0.5000001, 0).cx(0, 1).measureAll();
    EXPECT_NE(d.structuralHash(), e.structuralHash());

    // Barriers have no execution effect and must not perturb the key:
    // withMeasurementSubset inserts one, routed circuits may not, and
    // the run()/runBatch cache paths must still agree.
    QuantumCircuit f(2, 2);
    f.h(0).barrier().cx(0, 1).measureAll();
    EXPECT_EQ(a.structuralHash(), f.structuralHash());
}

TEST(StructuralHash, MeasurementSubsetHashMatchesConstructedCircuit)
{
    // The copy-free batch cache key must equal the hash of the
    // actually constructed CPM, whatever the base's measurements.
    QuantumCircuit qc(5, 5);
    qc.h(0).cx(0, 1).rz(0.4, 2).barrier().cp(0.2, 2, 3).measureAll();
    QuantumCircuit unmeasured(5, 5);
    unmeasured.h(0).cx(0, 1).rz(0.4, 2).barrier().cp(0.2, 2, 3);
    for (const std::vector<int> &subset :
         {std::vector<int>{0, 1}, {3, 2}, {4}, {0, 2, 4}}) {
        EXPECT_EQ(qc.measurementSubsetHash(subset),
                  qc.withMeasurementSubset(subset).structuralHash());
        EXPECT_EQ(unmeasured.measurementSubsetHash(subset),
                  unmeasured.withMeasurementSubset(subset)
                      .structuralHash());
    }
}

// ------------------------------------------------- batched CPM execution

/** Sliding-window subsets of sizes 2 and 3 over @p n qubits. */
std::vector<std::vector<int>>
cpmSubsets(int n)
{
    std::vector<std::vector<int>> subsets;
    for (int size : {2, 3}) {
        for (const core::Subset &s : core::slidingWindowSubsets(n, size))
            subsets.push_back(s);
    }
    return subsets;
}

TEST(BatchedExecution, MarginalsMatchPerCpmAndReference)
{
    // Every CPM marginal served off the one shared evolution must
    // match both the per-circuit cached executor PMF and the naive
    // reference evolution, within the golden-equivalence bounds.
    const std::vector<QuantumCircuit> workloads = {
        workloads::Ghz(8).circuit(),
        workloads::BernsteinVazirani(8).circuit(),
        workloads::QftAdjoint(7).circuit(),
        randomU3CxCircuit(8, 4, 21),
    };
    for (const QuantumCircuit &qc : workloads) {
        const std::vector<std::vector<int>> subsets =
            cpmSubsets(qc.nQubits());

        sim::IdealSimulator batched(5);
        const std::vector<Pmf> marginals =
            batched.marginalPmfs(qc, subsets);
        ASSERT_EQ(marginals.size(), subsets.size());
        EXPECT_EQ(batched.batchStats().baseEvolutions, 1u);
        EXPECT_EQ(batched.batchStats().marginalsServed, subsets.size());

        sim::IdealSimulator per_cpm(5);
        for (std::size_t i = 0; i < subsets.size(); ++i) {
            const Pmf cached = per_cpm.idealPmf(
                qc.withMeasurementSubset(subsets[i]));
            expectIdenticalPmf(cached, marginals[i]);
            const Pmf reference =
                sim::referenceMeasurementPmf(qc, subsets[i]);
            expectIdenticalPmf(reference, marginals[i]);
        }
        // Per-CPM execution paid one evolution per subset; the batch
        // paid exactly one in total.
        EXPECT_EQ(per_cpm.cacheMisses(), subsets.size());
        EXPECT_EQ(batched.batchStats().evolutionsSaved(),
                  subsets.size() - 1);
    }
}

TEST(BatchedExecution, RunBatchPopulatesTheRunCache)
{
    // After a batch, per-CPM run() of the same circuits must be all
    // cache hits: the two paths share one keying scheme.
    const QuantumCircuit qc = workloads::Ghz(8).circuit();
    const std::vector<std::vector<int>> subsets = cpmSubsets(8);
    std::vector<sim::CpmSpec> specs;
    for (const std::vector<int> &s : subsets)
        specs.push_back({s, 128});

    sim::IdealSimulator ideal(9);
    const std::vector<Histogram> hists = ideal.runBatch(qc, specs);
    ASSERT_EQ(hists.size(), specs.size());
    for (std::size_t i = 0; i < hists.size(); ++i) {
        EXPECT_EQ(hists[i].totalCount(), specs[i].shots);
        EXPECT_EQ(hists[i].nQubits(),
                  static_cast<int>(subsets[i].size()));
    }
    EXPECT_EQ(ideal.cacheMisses(), 0u);
    EXPECT_EQ(ideal.cacheHits(), 0u);

    for (const std::vector<int> &s : subsets)
        ideal.run(qc.withMeasurementSubset(s), 64);
    EXPECT_EQ(ideal.cacheMisses(), 0u);
    EXPECT_EQ(ideal.cacheHits(), subsets.size());

    // A second identical batch reuses every PMF and evolves nothing.
    ideal.runBatch(qc, specs);
    EXPECT_EQ(ideal.batchStats().baseEvolutions, 1u);
    EXPECT_EQ(ideal.cacheHits(), 2 * subsets.size());
}

TEST(BatchedExecution, CountersAndSamplesAreDeterministic)
{
    const QuantumCircuit qc = workloads::Ghz(6).circuit();
    const std::vector<std::vector<int>> subsets = cpmSubsets(6);
    std::vector<sim::CpmSpec> specs;
    for (const std::vector<int> &s : subsets)
        specs.push_back({s, 500});

    sim::IdealSimulator a(123), b(123);
    const std::vector<Histogram> ha = a.runBatch(qc, specs);
    const std::vector<Histogram> hb = b.runBatch(qc, specs);
    EXPECT_EQ(a.cacheHits(), b.cacheHits());
    EXPECT_EQ(a.cacheMisses(), b.cacheMisses());
    EXPECT_EQ(a.batchStats().baseEvolutions,
              b.batchStats().baseEvolutions);
    EXPECT_EQ(a.batchStats().baseStateHits,
              b.batchStats().baseStateHits);
    EXPECT_EQ(a.batchStats().marginalsServed,
              b.batchStats().marginalsServed);
    for (std::size_t i = 0; i < ha.size(); ++i) {
        for (const auto &[outcome, count] : ha[i].counts())
            EXPECT_EQ(count, hb[i].count(outcome));
    }
}

TEST(BatchedExecution, NoisyBatchSharesEvolutionAndKeying)
{
    const device::DeviceModel dev = device::toronto();
    QuantumCircuit base(dev.nQubits(), 2);
    base.h(0).cx(0, 1).cx(1, 2).x(3);
    const std::vector<sim::CpmSpec> specs = {
        {{0, 1}, 400}, {{1, 2}, 400}, {{2, 3}, 400}, {{0, 3}, 400}};

    sim::NoisySimulator a(dev, {.seed = 77});
    const std::vector<Histogram> ha = a.runBatch(base, specs);
    EXPECT_EQ(a.batchStats().baseEvolutions, 1u);
    EXPECT_EQ(a.batchStats().marginalsServed, specs.size());
    EXPECT_EQ(a.cacheMisses(), 0u);

    // Per-CPM run() of the same subsets: every PMF is already there.
    for (const sim::CpmSpec &spec : specs)
        a.run(base.withMeasurementSubset(spec.qubits), 100);
    EXPECT_EQ(a.cacheMisses(), 0u);
    EXPECT_EQ(a.cacheHits(), specs.size());

    // Same seed, same batch: identical histograms.
    sim::NoisySimulator b(dev, {.seed = 77});
    const std::vector<Histogram> hb = b.runBatch(base, specs);
    for (std::size_t i = 0; i < ha.size(); ++i) {
        EXPECT_EQ(ha[i].totalCount(), hb[i].totalCount());
        for (const auto &[outcome, count] : ha[i].counts())
            EXPECT_EQ(count, hb[i].count(outcome));
    }
}

TEST(BatchedExecution, GateUntouchedQubitsReadZero)
{
    // A measured qubit no gate ever touches stays |0>: its marginal
    // bit must be deterministically zero, matching per-CPM execution.
    QuantumCircuit qc(4, 4);
    qc.h(0).cx(0, 1); // qubits 2 and 3 untouched
    qc.measureAll();
    sim::IdealSimulator batched(2);
    const std::vector<Pmf> ms =
        batched.marginalPmfs(qc, {{0, 2}, {3, 1}, {2, 3}});
    sim::IdealSimulator per_cpm(2);
    expectIdenticalPmf(per_cpm.idealPmf(qc.withMeasurementSubset({0, 2})),
                       ms[0]);
    expectIdenticalPmf(per_cpm.idealPmf(qc.withMeasurementSubset({3, 1})),
                       ms[1]);
    for (const auto &[outcome, p] : ms[2].probabilities()) {
        EXPECT_EQ(outcome, 0u);
        EXPECT_NEAR(p, 1.0, 1e-12);
    }
}

// --------------------------------------------------------- SIMD kernels

/** Fill @p re / @p im with a reproducible random state. */
void
randomAmps(std::vector<double> &re, std::vector<double> &im,
           std::size_t dim, std::uint64_t seed)
{
    Rng rng(seed);
    re.resize(dim);
    im.resize(dim);
    for (std::size_t i = 0; i < dim; ++i) {
        re[i] = rng.uniform(-1.0, 1.0);
        im[i] = rng.uniform(-1.0, 1.0);
    }
}

void
expectSameAmps(const std::vector<double> &a, const std::vector<double> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(a[i], b[i], 1e-12) << "index " << i;
}

/**
 * Agreement of @p active against the scalar golden table on uneven
 * ranges that exercise the unaligned heads and tails of every stride
 * addressing mode of every kernel.
 */
void
expectMatchesScalar(const simd::KernelTable &active)
{
    const simd::KernelTable &scalar = simd::scalarKernels();
    const std::size_t dim = 1ULL << 10;
    const std::size_t pairs = dim / 2;
    const std::size_t quads = dim / 4;
    const simd::Mat2Split m = {{0.6, -0.8, 0.8, 0.6},
                               {0.1, 0.2, -0.3, 0.4}};

    for (std::uint64_t stride : {1ULL, 2ULL, 4ULL, 8ULL, 64ULL}) {
        std::vector<double> re_a, im_a, re_s, im_s;
        randomAmps(re_a, im_a, dim, 100 + stride);
        re_s = re_a;
        im_s = im_a;
        active.apply1q(re_a.data(), im_a.data(), stride, 3, pairs - 5, m);
        scalar.apply1q(re_s.data(), im_s.data(), stride, 3, pairs - 5, m);
        expectSameAmps(re_s, re_a);
        expectSameAmps(im_s, im_a);

        for (bool d0_is_one : {false, true}) {
            randomAmps(re_a, im_a, dim, 200 + stride);
            re_s = re_a;
            im_s = im_a;
            active.apply1qDiag(re_a.data(), im_a.data(), stride, 1,
                               pairs - 3, 0.6, 0.8, 0.28, -0.96,
                               d0_is_one);
            scalar.apply1qDiag(re_s.data(), im_s.data(), stride, 1,
                               pairs - 3, 0.6, 0.8, 0.28, -0.96,
                               d0_is_one);
            expectSameAmps(re_s, re_a);
            expectSameAmps(im_s, im_a);
        }
    }

    const std::vector<std::pair<int, int>> qubit_pairs = {
        {0, 1}, {1, 4}, {2, 5}, {5, 8}};
    for (const auto &[qa, qb] : qubit_pairs) {
        const std::uint64_t ma = 1ULL << qa;
        const std::uint64_t mb = 1ULL << qb;
        std::vector<double> re_a, im_a, re_s, im_s;
        randomAmps(re_a, im_a, dim, 300 + static_cast<unsigned>(qa));
        re_s = re_a;
        im_s = im_a;
        active.quadPhase(re_a.data(), im_a.data(), ma, mb, ma | mb, 2,
                         quads - 3, 0.28, 0.96);
        scalar.quadPhase(re_s.data(), im_s.data(), ma, mb, ma | mb, 2,
                         quads - 3, 0.28, 0.96);
        expectSameAmps(re_s, re_a);
        expectSameAmps(im_s, im_a);

        randomAmps(re_a, im_a, dim, 400 + static_cast<unsigned>(qb));
        re_s = re_a;
        im_s = im_a;
        active.quadSwap(re_a.data(), im_a.data(), ma, mb, ma, mb, 1,
                        quads - 2);
        scalar.quadSwap(re_s.data(), im_s.data(), ma, mb, ma, mb, 1,
                        quads - 2);
        expectSameAmps(re_s, re_a);
        expectSameAmps(im_s, im_a);

        randomAmps(re_a, im_a, dim, 500 + static_cast<unsigned>(qa));
        re_s = re_a;
        im_s = im_a;
        active.phasePair(re_a.data(), im_a.data(), qa, qb, 3, dim - 7,
                         0.96, 0.28, 0.6, -0.8);
        scalar.phasePair(re_s.data(), im_s.data(), qa, qb, 3, dim - 7,
                         0.96, 0.28, 0.6, -0.8);
        expectSameAmps(re_s, re_a);
        expectSameAmps(im_s, im_a);
    }

    // stratumPhaseTable: contiguous-control fast path and the general
    // bit-gather path, on uneven ranges.
    struct PhaseTableCase
    {
        std::uint64_t qMask;
        std::uint64_t controlMask;
    };
    const std::vector<PhaseTableCase> table_cases = {
        {1ULL << 9, (1ULL << 4) - 1}, // contiguous low controls
        {1ULL << 2, 3ULL},            // low target, contiguous
        {1ULL << 6, (1ULL << 1) | (1ULL << 4) | (1ULL << 8)}, // gather
    };
    for (const PhaseTableCase &c : table_cases) {
        const std::size_t tsize =
            1ULL << static_cast<unsigned>(popcount(c.controlMask));
        std::vector<double> tab_re(tsize), tab_im(tsize);
        Rng trng(42);
        for (std::size_t t = 0; t < tsize; ++t) {
            const double ang = trng.uniform(0.0, 2 * M_PI);
            tab_re[t] = std::cos(ang);
            tab_im[t] = std::sin(ang);
        }
        std::vector<double> re_a, im_a, re_s, im_s;
        randomAmps(re_a, im_a, dim, 700 + c.qMask);
        re_s = re_a;
        im_s = im_a;
        active.stratumPhaseTable(re_a.data(), im_a.data(), c.qMask,
                                 c.controlMask, tab_re.data(),
                                 tab_im.data(), 3, pairs - 5);
        scalar.stratumPhaseTable(re_s.data(), im_s.data(), c.qMask,
                                 c.controlMask, tab_re.data(),
                                 tab_im.data(), 3, pairs - 5);
        expectSameAmps(re_s, re_a);
        expectSameAmps(im_s, im_a);
    }

    // phaseTable: contiguous low mask (element-wise table slices), a
    // scattered mask whose low bit allows broadcast runs, and a mask
    // touching bit 0 (general bit-gather path).
    for (const std::uint64_t mask :
         {(1ULL << 4) - 1, (1ULL << 4) | (1ULL << 7),
          1ULL | (1ULL << 3) | (1ULL << 6)}) {
        const std::size_t tsize =
            1ULL << static_cast<unsigned>(popcount(mask));
        std::vector<double> tab_re(tsize), tab_im(tsize);
        Rng trng(43 + mask);
        for (std::size_t t = 0; t < tsize; ++t) {
            const double ang = trng.uniform(0.0, 2 * M_PI);
            tab_re[t] = std::cos(ang);
            tab_im[t] = std::sin(ang);
        }
        std::vector<double> re_a, im_a, re_s, im_s;
        randomAmps(re_a, im_a, dim, 800 + mask);
        re_s = re_a;
        im_s = im_a;
        active.phaseTable(re_a.data(), im_a.data(), mask, tab_re.data(),
                          tab_im.data(), 3, dim - 5);
        scalar.phaseTable(re_s.data(), im_s.data(), mask, tab_re.data(),
                          tab_im.data(), 3, dim - 5);
        expectSameAmps(re_s, re_a);
        expectSameAmps(im_s, im_a);
    }

    std::vector<double> re, im;
    randomAmps(re, im, dim, 600);
    EXPECT_NEAR(active.norm2(re.data(), im.data(), 5, dim - 9),
                scalar.norm2(re.data(), im.data(), 5, dim - 9), 1e-9);
}

/**
 * Randomized scattered-mask sweeps of the gather phase tables: random
 * masks (usually non-contiguous, often touching bit 0 so the
 * broadcast-run fast paths cannot take over) and ranges that straddle
 * lane boundaries, leave short unaligned heads and tails, or fit
 * entirely inside one lane; the stratum variant additionally cycles
 * its target bit across both sides of every lane-width boundary.
 */
void
expectScatteredTablesMatchScalar(const simd::KernelTable &active)
{
    const simd::KernelTable &scalar = simd::scalarKernels();
    const std::size_t dim = 1ULL << 12;
    const std::size_t pairs = dim / 2;
    Rng rng(2025);
    for (int trial = 0; trial < 48; ++trial) {
        std::uint64_t mask = 0;
        const int want = 2 + static_cast<int>(rng.word() % 6);
        while (popcount(mask) < want)
            mask |= 1ULL << (rng.word() % 12);

        const std::size_t tsize =
            1ULL << static_cast<unsigned>(popcount(mask));
        std::vector<double> tab_re(tsize), tab_im(tsize);
        for (std::size_t t = 0; t < tsize; ++t) {
            const double ang = rng.uniform(0.0, 2 * M_PI);
            tab_re[t] = std::cos(ang);
            tab_im[t] = std::sin(ang);
        }

        // Every fourth trial runs a sub-lane range (all head/tail);
        // the rest straddle lane boundaries at both ends.
        std::uint64_t lo = rng.word() % 16;
        std::uint64_t hi = dim - rng.word() % 16;
        if (trial % 4 == 0) {
            lo = rng.word() % (dim - 8);
            hi = lo + 1 + rng.word() % 7;
        }

        std::vector<double> re_a, im_a, re_s, im_s;
        randomAmps(re_a, im_a, dim,
                   9000 + static_cast<std::uint64_t>(trial));
        re_s = re_a;
        im_s = im_a;
        active.phaseTable(re_a.data(), im_a.data(), mask, tab_re.data(),
                          tab_im.data(), lo, hi);
        scalar.phaseTable(re_s.data(), im_s.data(), mask, tab_re.data(),
                          tab_im.data(), lo, hi);
        expectSameAmps(re_s, re_a);
        expectSameAmps(im_s, im_a);

        // Stratum variant: a target bit outside the control mask.
        int q = static_cast<int>(rng.word() % 12);
        while ((mask >> q) & 1)
            q = (q + 1) % 12;
        const std::uint64_t q_mask = 1ULL << q;
        std::uint64_t klo = rng.word() % 8;
        std::uint64_t khi = pairs - rng.word() % 8;
        if (trial % 4 == 2) {
            klo = rng.word() % (pairs - 4);
            khi = klo + 1 + rng.word() % 3;
        }
        randomAmps(re_a, im_a, dim,
                   9500 + static_cast<std::uint64_t>(trial));
        re_s = re_a;
        im_s = im_a;
        active.stratumPhaseTable(re_a.data(), im_a.data(), q_mask, mask,
                                 tab_re.data(), tab_im.data(), klo, khi);
        scalar.stratumPhaseTable(re_s.data(), im_s.data(), q_mask, mask,
                                 tab_re.data(), tab_im.data(), klo, khi);
        expectSameAmps(re_s, re_a);
        expectSameAmps(im_s, im_a);
    }
}

/**
 * The reconstruction kernels against scalar. Per-element outputs must
 * be BITWISE identical across backends (multiply/divide/add only, no
 * FMA contraction — the contract that lets a reconstruction produce
 * one answer whatever table ran); returned reductions may regroup
 * their sums per backend, so those agree only to tolerance.
 */
void
expectReconstructionKernelsMatchScalar(const simd::KernelTable &active)
{
    const simd::KernelTable &scalar = simd::scalarKernels();
    Rng rng(4242);
    for (const std::size_t n : {std::size_t{19}, std::size_t{1000},
                                std::size_t{4096}}) {
        const std::size_t n_buckets = 1 + n / 16;
        std::vector<std::uint32_t> bucket_of(n);
        for (std::uint32_t &b : bucket_of)
            b = static_cast<std::uint32_t>(rng.word() % n_buckets);
        std::vector<double> w(n);
        for (double &x : w)
            x = rng.uniform(0.0, 1.0);
        // Odds: some buckets carry no evidence (< 0 keeps the prior).
        std::vector<double> odds(n_buckets);
        for (std::size_t b = 0; b < n_buckets; ++b)
            odds[b] = b % 5 == 0 ? -1.0 : rng.uniform(0.1, 3.0);
        // Unaligned range with a short tail.
        const std::uint64_t lo = n > 64 ? 3 : 1;
        const std::uint64_t hi = n - (n > 64 ? 5 : 1);

        std::vector<double> mass_s(n_buckets, 0.0);
        std::vector<double> mass_a(n_buckets, 0.0);
        scalar.accumulateBuckets(bucket_of.data(), w.data(), lo, hi,
                                 mass_s.data());
        active.accumulateBuckets(bucket_of.data(), w.data(), lo, hi,
                                 mass_a.data());
        for (std::size_t b = 0; b < n_buckets; ++b)
            EXPECT_EQ(mass_s[b], mass_a[b]) << "bucket " << b;

        // A referenced bucket with zero mass must keep the prior too.
        mass_s[n_buckets / 2] = 0.0;
        mass_a = mass_s;
        std::vector<double> post_s(n, 0.0), post_a(n, 0.0);
        const double sum_s = scalar.posteriorUpdate(
            bucket_of.data(), odds.data(), mass_s.data(), w.data(),
            post_s.data(), lo, hi);
        const double sum_a = active.posteriorUpdate(
            bucket_of.data(), odds.data(), mass_a.data(), w.data(),
            post_a.data(), lo, hi);
        for (std::size_t i = lo; i < hi; ++i)
            EXPECT_EQ(post_s[i], post_a[i]) << "index " << i;
        EXPECT_NEAR(sum_s, sum_a, 1e-9);

        std::vector<double> y_s = w, y_a = w;
        scalar.axpy(y_s.data(), post_s.data(), 0.37, lo, hi);
        active.axpy(y_a.data(), post_a.data(), 0.37, lo, hi);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(y_s[i], y_a[i]) << "index " << i;

        scalar.scale(y_s.data(), 1.61803, lo, hi);
        active.scale(y_a.data(), 1.61803, lo, hi);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(y_s[i], y_a[i]) << "index " << i;

        EXPECT_NEAR(scalar.sum(y_s.data(), lo, hi),
                    active.sum(y_a.data(), lo, hi), 1e-9);

        // Zeros on both sides so the positivity mask has dead lanes.
        std::vector<double> ref = w;
        for (std::size_t i = 0; i < n; i += 7)
            ref[i] = 0.0;
        for (std::size_t i = 0; i < n; i += 11)
            y_s[i] = y_a[i] = 0.0;
        std::vector<double> v_s = y_s, v_a = y_a;
        const double bc_s = scalar.normalizeBhattacharyya(
            v_s.data(), ref.data(), 0.731, lo, hi);
        const double bc_a = active.normalizeBhattacharyya(
            v_a.data(), ref.data(), 0.731, lo, hi);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(v_s[i], v_a[i]) << "index " << i;
        EXPECT_NEAR(bc_s, bc_a, 1e-9);
    }
}

TEST(SimdKernels, ActiveMatchesScalarOnEveryKernel)
{
    expectMatchesScalar(simd::activeKernels());
    expectScatteredTablesMatchScalar(simd::activeKernels());
    expectReconstructionKernelsMatchScalar(simd::activeKernels());
}

TEST(SimdKernels, Avx2MatchesScalar)
{
    if (simd::avx2Kernels() == nullptr)
        GTEST_SKIP() << "AVX2 kernels not compiled in";
#if defined(__GNUC__) || defined(__clang__)
    if (!__builtin_cpu_supports("avx2") ||
        !__builtin_cpu_supports("bmi2")) {
        GTEST_SKIP() << "CPU lacks AVX2/BMI2";
    }
#endif
    expectMatchesScalar(*simd::avx2Kernels());
    expectScatteredTablesMatchScalar(*simd::avx2Kernels());
    expectReconstructionKernelsMatchScalar(*simd::avx2Kernels());
}

TEST(SimdKernels, Avx512MatchesScalar)
{
    if (simd::avx512Kernels() == nullptr)
        GTEST_SKIP() << "AVX-512 kernels not compiled in";
#if defined(__GNUC__) || defined(__clang__)
    if (!__builtin_cpu_supports("avx512f") ||
        !__builtin_cpu_supports("avx512dq") ||
        !__builtin_cpu_supports("bmi2")) {
        GTEST_SKIP() << "CPU lacks AVX-512F/DQ/BMI2";
    }
#endif
    expectMatchesScalar(*simd::avx512Kernels());
    expectScatteredTablesMatchScalar(*simd::avx512Kernels());
    expectReconstructionKernelsMatchScalar(*simd::avx512Kernels());
}

// ------------------------------------------------------------ primitives

TEST(AliasTable, MatchesDistribution)
{
    Pmf p(2);
    p.set(0b00, 0.1);
    p.set(0b01, 0.2);
    p.set(0b10, 0.3);
    p.set(0b11, 0.4);
    const AliasTable table(p);
    Rng rng(3);
    const int trials = 200000;
    std::vector<int> counts(4, 0);
    for (int t = 0; t < trials; ++t)
        ++counts[static_cast<std::size_t>(table.sample(rng))];
    for (BasisState v = 0; v < 4; ++v) {
        EXPECT_NEAR(static_cast<double>(
                        counts[static_cast<std::size_t>(v)]) /
                        trials,
                    p.prob(v), 0.01);
    }
}

TEST(AliasTable, DeterministicGivenSeed)
{
    Pmf p(3);
    Rng fill(9);
    for (BasisState v = 0; v < 8; ++v)
        p.set(v, fill.uniform(0.01, 1.0));
    p.normalize();
    const AliasTable t1(p);
    const AliasTable t2(p);
    Rng r1(77), r2(77);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(t1.sample(r1), t2.sample(r2));
}

TEST(ParallelFor, CoversRangeExactlyOnce)
{
    std::vector<int> touched(10000, 0);
    parallelFor(0, touched.size(), 64, [&](std::size_t lo,
                                           std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            ++touched[i];
    });
    for (int v : touched)
        EXPECT_EQ(v, 1);
}

TEST(ParallelFor, EmptyAndTinyRanges)
{
    int calls = 0;
    parallelFor(5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    std::vector<int> touched(3, 0);
    parallelFor(0, 3, 1024, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            ++touched[i];
    });
    EXPECT_EQ(touched, (std::vector<int>{1, 1, 1}));
}

} // namespace
} // namespace jigsaw
