/**
 * @file
 * Golden-equivalence tests for the fast-path execution engine: the
 * strided/fused/parallel state-vector kernels and the indexed Bayesian
 * reconstruction must reproduce the naive reference implementations to
 * within 1e-12 Hellinger distance, the cached executor must be
 * deterministic under a fixed seed, and the supporting primitives
 * (structural hash, alias table, parallel-for) must behave.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "common/alias.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/bayesian.h"
#include "core/reference_bayesian.h"
#include "core/subsets.h"
#include "device/library.h"
#include "sim/reference_kernels.h"
#include "sim/simulators.h"
#include "sim/statevector.h"
#include "workloads/bv.h"
#include "workloads/ghz.h"
#include "workloads/qft.h"

namespace jigsaw {
namespace {

using circuit::QuantumCircuit;

std::vector<int>
allQubits(int n)
{
    std::vector<int> qs(static_cast<std::size_t>(n));
    for (int q = 0; q < n; ++q)
        qs[static_cast<std::size_t>(q)] = q;
    return qs;
}

/**
 * Assert two PMFs are identical up to floating-point noise. Hellinger
 * alone cannot certify this tighter than ~1e-8: for bit-identical
 * inputs the Bhattacharyya sum rounds to 1 +/- 1e-16 and the outer
 * sqrt amplifies that to sqrt(eps). So the Hellinger bound guards the
 * distribution shape and the total-variation bound (no sqrt
 * amplification) pins the per-outcome agreement.
 */
void
expectIdenticalPmf(const Pmf &reference, const Pmf &actual)
{
    EXPECT_LT(hellingerDistance(reference, actual), 1e-6);
    EXPECT_LT(totalVariationDistance(reference, actual), 1e-10);
}

/** Optimized-vs-reference PMF agreement over all qubits of @p qc. */
void
expectKernelEquivalence(const QuantumCircuit &qc)
{
    const std::vector<int> qubits = allQubits(qc.nQubits());
    const Pmf reference = sim::referenceMeasurementPmf(qc, qubits);

    sim::StateVector state(qc.nQubits());
    state.applyCircuit(qc);
    const Pmf optimized = state.measurementPmf(qubits);

    expectIdenticalPmf(reference, optimized);
    EXPECT_NEAR(state.norm(), 1.0, 1e-10);
}

QuantumCircuit
randomU3CxCircuit(int n_qubits, int depth, std::uint64_t seed)
{
    Rng rng(seed);
    QuantumCircuit qc(n_qubits, n_qubits);
    for (int layer = 0; layer < depth; ++layer) {
        for (int q = 0; q < n_qubits; ++q) {
            qc.u3(rng.uniform(0.0, M_PI), rng.uniform(0.0, 2 * M_PI),
                  rng.uniform(0.0, 2 * M_PI), q);
        }
        for (int q = layer % 2; q + 1 < n_qubits; q += 2)
            qc.cx(q, q + 1);
    }
    return qc;
}

// ------------------------------------------------- kernel equivalence

TEST(KernelEquivalence, GhzUpTo12Qubits)
{
    for (int n = 2; n <= 12; n += 5)
        expectKernelEquivalence(workloads::Ghz(n).circuit());
}

TEST(KernelEquivalence, BernsteinVazirani)
{
    expectKernelEquivalence(workloads::BernsteinVazirani(10).circuit());
}

TEST(KernelEquivalence, QftAdjoint)
{
    expectKernelEquivalence(workloads::QftAdjoint(10).circuit());
}

TEST(KernelEquivalence, RandomU3CxCircuits)
{
    for (std::uint64_t seed = 1; seed <= 3; ++seed)
        expectKernelEquivalence(randomU3CxCircuit(12, 6, seed));
}

TEST(KernelEquivalence, EveryGateTypeOnce)
{
    QuantumCircuit qc(4, 4);
    qc.h(0).x(1).y(2).z(3).s(0).sdg(1).t(2).tdg(3);
    qc.rx(0.3, 0).ry(0.7, 1).rz(1.1, 2).u3(0.5, 0.2, 0.9, 3);
    qc.cx(0, 1).cz(1, 2).cp(0.4, 2, 3).rzz(0.8, 0, 3).swap(1, 3);
    // A run of same-qubit 1q gates to exercise fusion, including a
    // diagonal-only run.
    qc.h(2).t(2).h(2).rz(0.25, 0).s(0).z(0);
    expectKernelEquivalence(qc);
}

TEST(KernelEquivalence, SingleGateApplyMatchesCircuitApply)
{
    // applyGate (unfused) and applyCircuit (fused) must agree.
    const QuantumCircuit qc = randomU3CxCircuit(8, 4, 99);
    sim::StateVector fused(8);
    fused.applyCircuit(qc);
    sim::StateVector unfused(8);
    for (const circuit::Gate &g : qc.gates()) {
        if (!g.isMeasure())
            unfused.applyGate(g);
    }
    const std::vector<int> qs = allQubits(8);
    expectIdenticalPmf(unfused.measurementPmf(qs),
                       fused.measurementPmf(qs));
}

// ------------------------------------------- reconstruction equivalence

std::vector<core::Marginal>
randomMarginals(int n_qubits, const std::vector<int> &sizes, Rng &rng)
{
    std::vector<core::Marginal> marginals;
    for (int size : sizes) {
        for (const core::Subset &s :
             core::slidingWindowSubsets(n_qubits, size)) {
            Pmf local(size);
            for (BasisState v = 0; v < (1ULL << size); ++v)
                local.set(v, rng.uniform(0.05, 1.0));
            local.normalize();
            marginals.push_back({local, s});
        }
    }
    return marginals;
}

Pmf
randomGlobal(int n_qubits, std::size_t support, Rng &rng)
{
    const BasisState mask = (1ULL << n_qubits) - 1;
    Pmf pmf(n_qubits);
    while (pmf.support() < support)
        pmf.set(static_cast<BasisState>(rng.word() & mask),
                rng.uniform(0.01, 1.0));
    pmf.normalize();
    return pmf;
}

TEST(ReconstructionEquivalence, IndexedMatchesReference)
{
    Rng rng(11);
    const Pmf global = randomGlobal(10, 300, rng);
    const std::vector<core::Marginal> marginals =
        randomMarginals(10, {2}, rng);
    core::ReconstructionOptions options;
    options.maxRounds = 6;
    options.tolerance = 0.0; // fixed rounds on both paths

    const Pmf reference =
        core::referenceReconstruct(global, marginals, options);
    const Pmf indexed =
        core::bayesianReconstruct(global, marginals, options);
    expectIdenticalPmf(reference, indexed);
}

TEST(ReconstructionEquivalence, MultiLayerMatchesReference)
{
    Rng rng(12);
    const Pmf global = randomGlobal(12, 800, rng);
    const std::vector<core::Marginal> marginals =
        randomMarginals(12, {2, 3, 4, 5}, rng);
    core::ReconstructionOptions options;
    options.maxRounds = 4;
    options.tolerance = 0.0;

    const Pmf reference =
        core::referenceMultiLayerReconstruct(global, marginals, options);
    const Pmf indexed =
        core::multiLayerReconstruct(global, marginals, options);
    expectIdenticalPmf(reference, indexed);
}

TEST(ReconstructionEquivalence, SparseLocalPmfKeepsPriorMass)
{
    // A marginal that never observed subset value 0b11 must leave the
    // matching global outcomes at their prior probability.
    Pmf global(2);
    global.set(0b00, 0.4);
    global.set(0b01, 0.3);
    global.set(0b11, 0.3);
    Pmf local(2);
    local.set(0b00, 0.7);
    local.set(0b01, 0.3);
    const core::Marginal m{local, {0, 1}};

    const Pmf posterior = core::bayesianUpdate(global, m);
    EXPECT_GT(posterior.prob(0b11), 0.0);
    // Below-threshold evidence is treated exactly like absent evidence.
    Pmf local2 = local;
    local2.set(0b11, 1e-15);
    const Pmf posterior2 =
        core::bayesianUpdate(global, {local2, {0, 1}});
    EXPECT_NEAR(posterior.prob(0b11), posterior2.prob(0b11), 1e-12);
}

// ------------------------------------------------- executor determinism

TEST(CachedExecutor, SamplingIsReproducibleAcrossCacheHits)
{
    QuantumCircuit qc(3, 3);
    qc.h(0).cx(0, 1).cx(1, 2).measureAll();

    sim::IdealSimulator a(42);
    const Histogram a1 = a.run(qc, 2000); // miss
    const Histogram a2 = a.run(qc, 2000); // hit
    EXPECT_EQ(a.cacheMisses(), 1u);
    EXPECT_EQ(a.cacheHits(), 1u);

    // A fresh simulator with the same seed must reproduce both draws:
    // cache hits may not perturb the RNG stream.
    sim::IdealSimulator b(42);
    const Histogram b1 = b.run(qc, 2000);
    const Histogram b2 = b.run(qc, 2000);
    for (const auto &[outcome, count] : a1.counts())
        EXPECT_EQ(count, b1.count(outcome));
    for (const auto &[outcome, count] : a2.counts())
        EXPECT_EQ(count, b2.count(outcome));
}

TEST(CachedExecutor, NoisyCacheReusesEvolution)
{
    const device::DeviceModel dev = device::toronto();
    QuantumCircuit qc(dev.nQubits(), 2);
    qc.h(0).x(1).measure(0, 0).measure(1, 1);
    sim::NoisySimulator noisy(dev, {.seed = 5});
    noisy.run(qc, 1000);
    noisy.run(qc, 1000);
    noisy.run(qc, 1000);
    EXPECT_EQ(noisy.cacheMisses(), 1u);
    EXPECT_EQ(noisy.cacheHits(), 2u);
}

TEST(StructuralHash, DistinguishesCircuits)
{
    QuantumCircuit a(2, 2);
    a.h(0).cx(0, 1).measureAll();
    QuantumCircuit b(2, 2);
    b.h(0).cx(0, 1).measureAll();
    EXPECT_EQ(a.structuralHash(), b.structuralHash());

    QuantumCircuit c(2, 2);
    c.h(1).cx(0, 1).measureAll(); // different qubit
    EXPECT_NE(a.structuralHash(), c.structuralHash());

    QuantumCircuit d(2, 2);
    d.rz(0.5, 0).cx(0, 1).measureAll(); // different type/params
    QuantumCircuit e(2, 2);
    e.rz(0.5000001, 0).cx(0, 1).measureAll();
    EXPECT_NE(d.structuralHash(), e.structuralHash());
}

// ------------------------------------------------------------ primitives

TEST(AliasTable, MatchesDistribution)
{
    Pmf p(2);
    p.set(0b00, 0.1);
    p.set(0b01, 0.2);
    p.set(0b10, 0.3);
    p.set(0b11, 0.4);
    const AliasTable table(p);
    Rng rng(3);
    const int trials = 200000;
    std::vector<int> counts(4, 0);
    for (int t = 0; t < trials; ++t)
        ++counts[static_cast<std::size_t>(table.sample(rng))];
    for (BasisState v = 0; v < 4; ++v) {
        EXPECT_NEAR(static_cast<double>(
                        counts[static_cast<std::size_t>(v)]) /
                        trials,
                    p.prob(v), 0.01);
    }
}

TEST(AliasTable, DeterministicGivenSeed)
{
    Pmf p(3);
    Rng fill(9);
    for (BasisState v = 0; v < 8; ++v)
        p.set(v, fill.uniform(0.01, 1.0));
    p.normalize();
    const AliasTable t1(p);
    const AliasTable t2(p);
    Rng r1(77), r2(77);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(t1.sample(r1), t2.sample(r2));
}

TEST(ParallelFor, CoversRangeExactlyOnce)
{
    std::vector<int> touched(10000, 0);
    parallelFor(0, touched.size(), 64, [&](std::size_t lo,
                                           std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            ++touched[i];
    });
    for (int v : touched)
        EXPECT_EQ(v, 1);
}

TEST(ParallelFor, EmptyAndTinyRanges)
{
    int calls = 0;
    parallelFor(5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    std::vector<int> touched(3, 0);
    parallelFor(0, 3, 1024, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            ++touched[i];
    });
    EXPECT_EQ(touched, (std::vector<int>{1, 1, 1}));
}

} // namespace
} // namespace jigsaw
