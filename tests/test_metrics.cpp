/**
 * @file
 * Metric tests against hand-computed values for the paper's four
 * figures of merit (Section 5.5).
 */
#include <gtest/gtest.h>

#include "metrics/metrics.h"
#include "workloads/ghz.h"
#include "workloads/qaoa.h"

namespace jigsaw {
namespace metrics {
namespace {

Pmf
makePmf(int n, std::initializer_list<std::pair<BasisState, double>> entries)
{
    Pmf pmf(n);
    for (const auto &[outcome, p] : entries)
        pmf.set(outcome, p);
    return pmf;
}

TEST(Pst, SumsCorrectOutcomes)
{
    const Pmf pmf = makePmf(2, {{0b00, 0.4}, {0b11, 0.35}, {0b01, 0.25}});
    EXPECT_DOUBLE_EQ(pst(pmf, {0b00, 0b11}), 0.75);
    EXPECT_DOUBLE_EQ(pst(pmf, {0b10}), 0.0);
}

TEST(Ist, RatioOfBestCorrectToBestIncorrect)
{
    const Pmf pmf = makePmf(2, {{0b00, 0.5}, {0b11, 0.2}, {0b01, 0.25},
                                {0b10, 0.05}});
    // Best correct 0.5; most frequent incorrect 0.25.
    EXPECT_DOUBLE_EQ(ist(pmf, {0b00, 0b11}), 2.0);
}

TEST(Ist, BelowOneWhenWrongAnswerDominates)
{
    const Pmf pmf = makePmf(1, {{0, 0.3}, {1, 0.7}});
    EXPECT_NEAR(ist(pmf, {0}), 0.3 / 0.7, 1e-12);
}

TEST(Ist, LargeWhenNoIncorrectObserved)
{
    const Pmf pmf = makePmf(1, {{1, 1.0}});
    EXPECT_GE(ist(pmf, {1}), 1e12);
}

TEST(Fidelity, OneForIdentical)
{
    const Pmf pmf = makePmf(1, {{0, 0.5}, {1, 0.5}});
    EXPECT_NEAR(fidelity(pmf, pmf), 1.0, 1e-12);
}

TEST(Fidelity, ZeroForDisjoint)
{
    const Pmf p = makePmf(1, {{0, 1.0}});
    const Pmf q = makePmf(1, {{1, 1.0}});
    EXPECT_NEAR(fidelity(p, q), 0.0, 1e-12);
}

TEST(Fidelity, HandComputedOverlap)
{
    const Pmf p = makePmf(1, {{0, 0.8}, {1, 0.2}});
    const Pmf q = makePmf(1, {{0, 0.6}, {1, 0.4}});
    // TVD = 0.5 * (0.2 + 0.2) = 0.2.
    EXPECT_NEAR(fidelity(p, q), 0.8, 1e-12);
}

TEST(Ar, PerfectDistributionScoresOne)
{
    const workloads::QaoaMaxCut qaoa(4, 1);
    const Pmf perfect = makePmf(4, {{0b0101, 0.5}, {0b1010, 0.5}});
    EXPECT_NEAR(approximationRatio(perfect, qaoa), 1.0, 1e-12);
}

TEST(Ar, UniformDistributionScoresHalf)
{
    const workloads::QaoaMaxCut qaoa(4, 1);
    Pmf uniform(4);
    for (BasisState s = 0; s < 16; ++s)
        uniform.set(s, 1.0 / 16.0);
    // Each edge is cut in half of the bitstrings: E[cut] = (n-1)/2.
    EXPECT_NEAR(approximationRatio(uniform, qaoa), 0.5, 1e-12);
}

TEST(Arg, ZeroAgainstIdealItself)
{
    const workloads::QaoaMaxCut qaoa(6, 1);
    EXPECT_NEAR(approximationRatioGap(qaoa.idealPmf(), qaoa), 0.0, 1e-9);
}

TEST(Arg, PositiveForDegradedDistribution)
{
    const workloads::QaoaMaxCut qaoa(6, 1);
    Pmf uniform(6);
    for (BasisState s = 0; s < 64; ++s)
        uniform.set(s, 1.0 / 64.0);
    const double gap = approximationRatioGap(uniform, qaoa);
    EXPECT_GT(gap, 0.0);
    EXPECT_LT(gap, 100.0);
}

TEST(Arg, RejectsWorkloadWithoutCost)
{
    const workloads::Ghz ghz(4);
    const Pmf pmf = makePmf(4, {{0, 1.0}});
    EXPECT_THROW(approximationRatio(pmf, ghz), std::invalid_argument);
}

TEST(WilsonInterval, HandComputedValue)
{
    // 80 successes of 100 at 95%: Wilson gives ~[0.711, 0.867].
    Histogram hist(1);
    hist.add(1, 80);
    hist.add(0, 20);
    const Interval ci = pstWilsonInterval(hist, {1});
    EXPECT_NEAR(ci.low, 0.711, 0.005);
    EXPECT_NEAR(ci.high, 0.867, 0.005);
}

TEST(WilsonInterval, ContainsPointEstimate)
{
    Histogram hist(2);
    hist.add(0b00, 300);
    hist.add(0b11, 200);
    hist.add(0b01, 500);
    const Interval ci = pstWilsonInterval(hist, {0b00, 0b11});
    EXPECT_LT(ci.low, 0.5);
    EXPECT_GT(ci.high, 0.5);
    EXPECT_GT(ci.low, 0.0);
    EXPECT_LT(ci.high, 1.0);
}

TEST(WilsonInterval, ShrinksWithTrials)
{
    Histogram small(1), large(1);
    small.add(1, 30);
    small.add(0, 70);
    large.add(1, 3000);
    large.add(0, 7000);
    const Interval a = pstWilsonInterval(small, {1});
    const Interval b = pstWilsonInterval(large, {1});
    EXPECT_LT(b.high - b.low, a.high - a.low);
}

TEST(WilsonInterval, EdgeCasesStayInBounds)
{
    Histogram all(1);
    all.add(1, 50);
    const Interval full = pstWilsonInterval(all, {1});
    EXPECT_GT(full.low, 0.8);
    EXPECT_LE(full.high, 1.0);

    const Interval empty = pstWilsonInterval(all, {0});
    EXPECT_GE(empty.low, 0.0);
    EXPECT_LT(empty.high, 0.15);
}

TEST(WilsonInterval, RejectsBadInputs)
{
    Histogram empty(1);
    EXPECT_THROW(pstWilsonInterval(empty, {1}), std::invalid_argument);
    Histogram ok(1);
    ok.add(1, 10);
    EXPECT_THROW(pstWilsonInterval(ok, {1}, 0.0),
                 std::invalid_argument);
}

TEST(WilsonInterval, EmpiricalCoverage)
{
    // ~95% of intervals from repeated sampling should contain the
    // true PST.
    Rng rng(77);
    Pmf truth(1);
    truth.set(1, 0.3);
    truth.set(0, 0.7);
    int covered = 0;
    const int reps = 300;
    for (int rep = 0; rep < reps; ++rep) {
        const Histogram hist = truth.sampleHistogram(500, rng);
        const Interval ci = pstWilsonInterval(hist, {1});
        if (ci.low <= 0.3 && 0.3 <= ci.high)
            ++covered;
    }
    EXPECT_GT(static_cast<double>(covered) / reps, 0.90);
    EXPECT_LT(static_cast<double>(covered) / reps, 0.99);
}

TEST(WorkloadOverloads, MatchExplicitForms)
{
    const workloads::Ghz ghz(4);
    const Pmf pmf = makePmf(4, {{0b0000, 0.4}, {0b1111, 0.3},
                                {0b0001, 0.3}});
    EXPECT_DOUBLE_EQ(pst(pmf, ghz), pst(pmf, ghz.correctOutcomes()));
    EXPECT_DOUBLE_EQ(ist(pmf, ghz), ist(pmf, ghz.correctOutcomes()));
    EXPECT_DOUBLE_EQ(fidelity(pmf, ghz), fidelity(pmf, ghz.idealPmf()));
    EXPECT_NEAR(ist(pmf, ghz), 0.4 / 0.3, 1e-12);
}

} // namespace
} // namespace metrics
} // namespace jigsaw
