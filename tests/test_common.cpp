/**
 * @file
 * Unit tests for src/common: bit ops, RNG, statistics, histogram/PMF,
 * distance measures, table printer, and the Nelder-Mead optimizer.
 */
#include <cmath>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/histogram.h"
#include "common/nelder_mead.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "common/table.h"

namespace jigsaw {
namespace {

// ---------------------------------------------------------------- bitops

TEST(Bitops, GetSetFlip)
{
    BasisState s = 0;
    s = setBit(s, 3, 1);
    EXPECT_EQ(getBit(s, 3), 1);
    EXPECT_EQ(getBit(s, 2), 0);
    s = flipBit(s, 3);
    EXPECT_EQ(s, 0ULL);
    s = setBit(s, 0, 1);
    s = setBit(s, 63, 1);
    EXPECT_EQ(getBit(s, 63), 1);
    EXPECT_EQ(popcount(s), 2);
}

TEST(Bitops, ExtractDepositRoundTrip)
{
    const std::vector<int> positions{1, 3, 4};
    const BasisState state = 0b11010; // bits 1, 3, 4 set
    const BasisState key = extractBits(state, positions);
    EXPECT_EQ(key, 0b111ULL);
    EXPECT_EQ(depositBits(key, positions), state);
}

TEST(Bitops, ExtractOrderMatters)
{
    // Bit j of the key comes from positions[j].
    const BasisState state = 0b01;
    EXPECT_EQ(extractBits(state, {0, 1}), 0b01ULL);
    EXPECT_EQ(extractBits(state, {1, 0}), 0b10ULL);
}

TEST(Bitops, HammingDistance)
{
    EXPECT_EQ(hammingDistance(0b1010, 0b0101), 4);
    EXPECT_EQ(hammingDistance(0b1010, 0b1010), 0);
}

TEST(Bitops, BitstringRoundTrip)
{
    // Q_{n-1}...Q_0 print order.
    EXPECT_EQ(toBitstring(0b110, 3), "110");
    EXPECT_EQ(toBitstring(0b001, 3), "001");
    EXPECT_EQ(fromBitstring("110"), 0b110ULL);
    for (BasisState s = 0; s < 32; ++s)
        EXPECT_EQ(fromBitstring(toBitstring(s, 5)), s);
}

TEST(Bitops, BitstringRejectsGarbage)
{
    EXPECT_THROW(fromBitstring("10a"), std::invalid_argument);
}

// ------------------------------------------------------------------- rng

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformRange)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(2.0, 3.0);
        EXPECT_GE(u, 2.0);
        EXPECT_LT(u, 3.0);
    }
}

TEST(Rng, BernoulliEdges)
{
    Rng rng(7);
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, BernoulliRate)
{
    Rng rng(7);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, DiscreteFollowsWeights)
{
    Rng rng(3);
    const std::vector<double> weights{1.0, 3.0};
    int ones = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        ones += rng.discrete(weights) == 1 ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(Rng, DiscreteRejectsEmpty)
{
    Rng rng(3);
    EXPECT_THROW(rng.discrete({}), std::invalid_argument);
}

TEST(Rng, SampleWithoutReplacementDistinct)
{
    Rng rng(11);
    for (int round = 0; round < 50; ++round) {
        const std::vector<int> sample = rng.sampleWithoutReplacement(10, 4);
        ASSERT_EQ(sample.size(), 4u);
        std::set<int> unique(sample.begin(), sample.end());
        EXPECT_EQ(unique.size(), 4u);
        for (int v : sample) {
            EXPECT_GE(v, 0);
            EXPECT_LT(v, 10);
        }
    }
}

TEST(Rng, SampleWithoutReplacementFull)
{
    Rng rng(11);
    const std::vector<int> sample = rng.sampleWithoutReplacement(5, 5);
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, LogNormalMedian)
{
    Rng rng(13);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i)
        xs.push_back(rng.logNormal(std::log(0.03), 1.0));
    EXPECT_NEAR(stats::median(xs), 0.03, 0.003);
}

// ------------------------------------------------------------- statistics

TEST(Statistics, MeanStddev)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(stats::mean(xs), 2.5);
    EXPECT_NEAR(stats::stddev(xs), std::sqrt(1.25), 1e-12);
}

TEST(Statistics, MeanOfEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(stats::mean({}), 0.0);
}

TEST(Statistics, Geomean)
{
    EXPECT_DOUBLE_EQ(stats::geomean({2.0, 8.0}), 4.0);
    EXPECT_THROW(stats::geomean({1.0, -1.0}), std::invalid_argument);
    EXPECT_THROW(stats::geomean({}), std::invalid_argument);
}

TEST(Statistics, MedianEvenOdd)
{
    EXPECT_DOUBLE_EQ(stats::median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(stats::median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Statistics, Percentile)
{
    const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 0), 10.0);
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 100), 50.0);
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 50), 30.0);
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 25), 20.0);
}

TEST(Statistics, MinMax)
{
    const std::vector<double> xs{3.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(stats::min(xs), 1.0);
    EXPECT_DOUBLE_EQ(stats::max(xs), 3.0);
}

// -------------------------------------------------------------- histogram

TEST(Histogram, AddAndCount)
{
    Histogram h(3);
    h.add(0b101);
    h.add(0b101, 4);
    h.add(0b000);
    EXPECT_EQ(h.count(0b101), 5u);
    EXPECT_EQ(h.count(0b000), 1u);
    EXPECT_EQ(h.count(0b111), 0u);
    EXPECT_EQ(h.totalCount(), 6u);
    EXPECT_EQ(h.uniqueOutcomes(), 2u);
}

TEST(Histogram, MergeAddsCounts)
{
    Histogram a(2), b(2);
    a.add(0b01, 3);
    b.add(0b01, 2);
    b.add(0b10, 5);
    a.merge(b);
    EXPECT_EQ(a.count(0b01), 5u);
    EXPECT_EQ(a.count(0b10), 5u);
    EXPECT_EQ(a.totalCount(), 10u);
}

TEST(Histogram, MergeRejectsMismatch)
{
    Histogram a(2), b(3);
    EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Histogram, ToPmfNormalizes)
{
    Histogram h(2);
    h.add(0b00, 1);
    h.add(0b11, 3);
    const Pmf pmf = h.toPmf();
    EXPECT_DOUBLE_EQ(pmf.prob(0b00), 0.25);
    EXPECT_DOUBLE_EQ(pmf.prob(0b11), 0.75);
    EXPECT_NEAR(pmf.totalMass(), 1.0, 1e-12);
}

TEST(Histogram, MarginalProjects)
{
    Histogram h(3);
    h.add(0b101, 2); // bits q0=1, q2=1
    h.add(0b100, 3);
    const Histogram m = h.marginal({0, 2});
    // key bit0 = q0, bit1 = q2.
    EXPECT_EQ(m.count(0b11), 2u);
    EXPECT_EQ(m.count(0b10), 3u);
    EXPECT_EQ(m.nQubits(), 2);
}

TEST(Pmf, NormalizeAndPrune)
{
    Pmf p(2);
    p.set(0b00, 2.0);
    p.set(0b01, 6.0);
    p.set(0b10, 1e-15);
    p.normalize();
    EXPECT_NEAR(p.prob(0b00), 0.25, 1e-9);
    p.prune(1e-12);
    EXPECT_EQ(p.support(), 2u);
}

TEST(Pmf, NormalizeZeroMassIsNoop)
{
    Pmf p(2);
    p.normalize();
    EXPECT_EQ(p.support(), 0u);
}

TEST(Pmf, MarginalSumsProbability)
{
    Pmf p(3);
    p.set(0b000, 0.1);
    p.set(0b100, 0.2);
    p.set(0b011, 0.7);
    const Pmf m = p.marginal({0, 1});
    EXPECT_NEAR(m.prob(0b00), 0.3, 1e-12);
    EXPECT_NEAR(m.prob(0b11), 0.7, 1e-12);
}

TEST(Pmf, Mode)
{
    Pmf p(2);
    p.set(0b01, 0.6);
    p.set(0b10, 0.4);
    EXPECT_EQ(p.mode(), 0b01ULL);
}

TEST(Pmf, SortedDescending)
{
    Pmf p(2);
    p.set(0b00, 0.2);
    p.set(0b01, 0.5);
    p.set(0b10, 0.3);
    const auto entries = p.sorted();
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].first, 0b01ULL);
    EXPECT_EQ(entries[1].first, 0b10ULL);
    EXPECT_EQ(entries[2].first, 0b00ULL);
}

TEST(Pmf, SampleHistogramMatchesDistribution)
{
    Pmf p(1);
    p.set(0, 0.25);
    p.set(1, 0.75);
    Rng rng(5);
    const Histogram h = p.sampleHistogram(100000, rng);
    EXPECT_EQ(h.totalCount(), 100000u);
    EXPECT_NEAR(static_cast<double>(h.count(1)) / 100000.0, 0.75, 0.01);
}

TEST(Distances, TvdBasics)
{
    Pmf p(1), q(1);
    p.set(0, 1.0);
    q.set(1, 1.0);
    EXPECT_NEAR(totalVariationDistance(p, q), 1.0, 1e-12);
    EXPECT_NEAR(totalVariationDistance(p, p), 0.0, 1e-12);
}

TEST(Distances, TvdHalfOverlap)
{
    Pmf p(1), q(1);
    p.set(0, 0.5);
    p.set(1, 0.5);
    q.set(0, 1.0);
    EXPECT_NEAR(totalVariationDistance(p, q), 0.5, 1e-12);
}

TEST(Distances, HellingerBounds)
{
    Pmf p(1), q(1);
    p.set(0, 1.0);
    q.set(1, 1.0);
    EXPECT_NEAR(hellingerDistance(p, q), 1.0, 1e-12);
    EXPECT_NEAR(hellingerDistance(p, p), 0.0, 1e-9);
}

TEST(Distances, KlDivergenceZeroForIdentical)
{
    Pmf p(2);
    p.set(0b00, 0.5);
    p.set(0b11, 0.5);
    EXPECT_NEAR(klDivergence(p, p), 0.0, 1e-12);
}

TEST(Distances, MismatchedSizesRejected)
{
    Pmf p(1), q(2);
    p.set(0, 1.0);
    q.set(0, 1.0);
    EXPECT_THROW(totalVariationDistance(p, q), std::invalid_argument);
    EXPECT_THROW(hellingerDistance(p, q), std::invalid_argument);
}

// ------------------------------------------------------------------ table

TEST(Table, AlignsColumns)
{
    ConsoleTable t({"name", "v"});
    t.addRow({"x", "1.00"});
    t.addRow({"longer", "2"});
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(ConsoleTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(ConsoleTable::num(2.0, 0), "2");
}

// ------------------------------------------------------------ nelder-mead

TEST(NelderMead, MinimizesQuadratic)
{
    const auto result = nelderMead(
        [](const std::vector<double> &x) {
            return (x[0] - 1.0) * (x[0] - 1.0) +
                   (x[1] + 2.0) * (x[1] + 2.0);
        },
        {0.0, 0.0});
    EXPECT_NEAR(result.x[0], 1.0, 1e-3);
    EXPECT_NEAR(result.x[1], -2.0, 1e-3);
    EXPECT_LT(result.value, 1e-5);
}

TEST(NelderMead, MinimizesRosenbrock)
{
    NelderMeadOptions options;
    options.maxIterations = 5000;
    options.tolerance = 1e-12;
    const auto result = nelderMead(
        [](const std::vector<double> &x) {
            const double a = 1.0 - x[0];
            const double b = x[1] - x[0] * x[0];
            return a * a + 100.0 * b * b;
        },
        {-1.0, 1.0}, options);
    EXPECT_NEAR(result.x[0], 1.0, 1e-2);
    EXPECT_NEAR(result.x[1], 1.0, 1e-2);
}

TEST(NelderMead, RejectsEmptyStart)
{
    EXPECT_THROW(
        nelderMead([](const std::vector<double> &) { return 0.0; }, {}),
        std::invalid_argument);
}

} // namespace
} // namespace jigsaw
