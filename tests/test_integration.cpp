/**
 * @file
 * End-to-end integration tests reproducing the paper's headline
 * claims in miniature: JigSaw beats the baseline on PST/IST/Fidelity,
 * JigSaw-M beats JigSaw, recompilation contributes, and the claims
 * hold across device models.
 */
#include <gtest/gtest.h>

#include "core/jigsaw.h"
#include "device/library.h"
#include "metrics/metrics.h"
#include "mitigation/edm.h"
#include "workloads/bv.h"
#include "workloads/ghz.h"
#include "workloads/registry.h"

namespace jigsaw {
namespace {

constexpr std::uint64_t trials = 16384;

struct Comparison
{
    double baseline_pst;
    double jigsaw_pst;
    double jigsaw_m_pst;
    double baseline_fidelity;
    double jigsaw_fidelity;
};

Comparison
compare(const workloads::Workload &w, const device::DeviceModel &dev,
        std::uint64_t seed)
{
    sim::NoisySimulator executor(dev, {.seed = seed});
    const Pmf baseline =
        core::runBaseline(w.circuit(), dev, executor, trials);
    const core::JigsawResult js =
        core::runJigsaw(w.circuit(), dev, executor, trials);
    const core::JigsawResult jsm = core::runJigsaw(
        w.circuit(), dev, executor, trials, core::jigsawMOptions());
    return {metrics::pst(baseline, w), metrics::pst(js.output, w),
            metrics::pst(jsm.output, w), metrics::fidelity(baseline, w),
            metrics::fidelity(js.output, w)};
}

TEST(Integration, JigsawBeatsBaselineGhzToronto)
{
    const workloads::Ghz ghz(12);
    const Comparison c = compare(ghz, device::toronto(), 101);
    EXPECT_GT(c.jigsaw_pst, c.baseline_pst * 1.1)
        << "JigSaw should clearly improve PST";
    EXPECT_GT(c.jigsaw_fidelity, c.baseline_fidelity);
}

TEST(Integration, JigsawMBeatsJigsawGhzToronto)
{
    const workloads::Ghz ghz(12);
    const Comparison c = compare(ghz, device::toronto(), 102);
    // Paper: JigSaw-M improves over JigSaw by 1.26x on average; allow
    // sampling slack but require no regression.
    EXPECT_GE(c.jigsaw_m_pst, c.jigsaw_pst * 0.97);
    EXPECT_GT(c.jigsaw_m_pst, c.baseline_pst);
}

TEST(Integration, HoldsOnParisAndManhattan)
{
    const workloads::Ghz ghz(12);
    for (const auto &dev :
         {device::paris(), device::manhattan()}) {
        const Comparison c = compare(ghz, dev, 103);
        EXPECT_GT(c.jigsaw_pst, c.baseline_pst) << dev.name();
        EXPECT_GT(c.jigsaw_fidelity, c.baseline_fidelity) << dev.name();
    }
}

TEST(Integration, BvRecoversHiddenString)
{
    const workloads::BernsteinVazirani bv(6);
    const device::DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 104});

    const core::JigsawResult js =
        core::runJigsaw(bv.circuit(), dev, executor, trials);
    EXPECT_EQ(js.output.mode(), bv.hiddenString());
}

TEST(Integration, RecompilationContributes)
{
    const workloads::Ghz ghz(12);
    const device::DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 105});

    core::JigsawOptions no_recompile;
    no_recompile.recompileCpms = false;
    const core::JigsawResult without = core::runJigsaw(
        ghz.circuit(), dev, executor, trials, no_recompile);
    const core::JigsawResult with =
        core::runJigsaw(ghz.circuit(), dev, executor, trials);

    // Figure 11: recompilation strictly adds on top of subsetting.
    // CPM expected success must not degrade; PST should not regress
    // beyond sampling noise.
    double mean_eps_with = 0.0;
    double mean_eps_without = 0.0;
    for (const auto &cpm : with.cpms)
        mean_eps_with += cpm.compiled.eps;
    for (const auto &cpm : without.cpms)
        mean_eps_without += cpm.compiled.eps;
    mean_eps_with /= static_cast<double>(with.cpms.size());
    mean_eps_without /= static_cast<double>(without.cpms.size());
    EXPECT_GE(mean_eps_with, mean_eps_without);

    const double pst_with = metrics::pst(with.output, ghz);
    const double pst_without = metrics::pst(without.output, ghz);
    EXPECT_GE(pst_with, pst_without * 0.95);
}

TEST(Integration, SubsettingAloneBeatsBaseline)
{
    // Paper: JigSaw without recompilation still improves PST (1.85x
    // average). Require a clear improvement.
    const workloads::Ghz ghz(12);
    const device::DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 106});

    const Pmf baseline =
        core::runBaseline(ghz.circuit(), dev, executor, trials);
    core::JigsawOptions no_recompile;
    no_recompile.recompileCpms = false;
    const core::JigsawResult js = core::runJigsaw(
        ghz.circuit(), dev, executor, trials, no_recompile);
    EXPECT_GT(metrics::pst(js.output, ghz),
              metrics::pst(baseline, ghz));
}

TEST(Integration, IstImproves)
{
    const workloads::Ghz ghz(12);
    const device::DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 107});

    const Pmf baseline =
        core::runBaseline(ghz.circuit(), dev, executor, trials);
    const core::JigsawResult js =
        core::runJigsaw(ghz.circuit(), dev, executor, trials);
    EXPECT_GT(metrics::ist(js.output, ghz), metrics::ist(baseline, ghz));
}

TEST(Integration, JigsawBeatsEdm)
{
    // Figure 8: JigSaw outperforms EDM across the suite; check one
    // representative configuration.
    const workloads::Ghz ghz(12);
    const device::DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 108});

    const mitigation::EdmResult edm =
        mitigation::runEdm(ghz.circuit(), dev, executor, trials, 4);
    const core::JigsawResult js =
        core::runJigsaw(ghz.circuit(), dev, executor, trials);
    EXPECT_GT(metrics::pst(js.output, ghz),
              metrics::pst(edm.output, ghz));
}

TEST(Integration, DeterministicAcrossRuns)
{
    const workloads::Ghz ghz(8);
    const device::DeviceModel dev = device::toronto();

    sim::NoisySimulator a(dev, {.seed = 109});
    sim::NoisySimulator b(dev, {.seed = 109});
    const core::JigsawResult ra =
        core::runJigsaw(ghz.circuit(), dev, a, 4096);
    const core::JigsawResult rb =
        core::runJigsaw(ghz.circuit(), dev, b, 4096);
    EXPECT_LT(totalVariationDistance(ra.output, rb.output), 1e-12);
}

TEST(Integration, WiderBenchmarkSweep)
{
    // A light sweep over further suite members to guard against
    // regressions that only bite specific circuit shapes.
    const device::DeviceModel dev = device::paris();
    for (const char *name : {"BV-6", "Graycode-10", "QAOA-8 p1"}) {
        const auto w = workloads::makeWorkload(name);
        sim::NoisySimulator executor(dev, {.seed = 110});
        const Pmf baseline =
            core::runBaseline(w->circuit(), dev, executor, 8192);
        const core::JigsawResult js =
            core::runJigsaw(w->circuit(), dev, executor, 8192);
        EXPECT_GE(metrics::pst(js.output, *w),
                  metrics::pst(baseline, *w) * 0.95)
            << name;
    }
}

} // namespace
} // namespace jigsaw
