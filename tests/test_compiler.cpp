/**
 * @file
 * Compiler tests: layout bookkeeping, SABRE routing invariants
 * (coupling-validity and semantic equivalence under random circuits
 * and topologies), noise-aware placement, transpiler selection, CPM
 * recompilation rules, and EDM ensembles.
 */
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "compiler/placement.h"
#include "compiler/sabre.h"
#include "compiler/transpiler.h"
#include "device/library.h"
#include "sim/eps.h"
#include "sim/simulators.h"

namespace jigsaw {
namespace compiler {
namespace {

using circuit::Gate;
using circuit::GateType;
using circuit::QuantumCircuit;
using device::DeviceModel;
using device::Topology;

Layout
identityLayout(int n_logical, int n_physical)
{
    std::vector<int> v(static_cast<std::size_t>(n_logical));
    for (int i = 0; i < n_logical; ++i)
        v[static_cast<std::size_t>(i)] = i;
    return Layout(std::move(v), n_physical);
}

// ---------------------------------------------------------------- layout

TEST(LayoutTest, Bidirectional)
{
    Layout layout({3, 1, 0}, 4);
    EXPECT_EQ(layout.nLogical(), 3);
    EXPECT_EQ(layout.nPhysical(), 4);
    EXPECT_EQ(layout.physicalOf(0), 3);
    EXPECT_EQ(layout.logicalOf(3), 0);
    EXPECT_EQ(layout.logicalOf(2), -1);
}

TEST(LayoutTest, SwapPhysical)
{
    Layout layout({0, 1}, 3);
    layout.swapPhysical(1, 2); // logical 1 moves to physical 2
    EXPECT_EQ(layout.physicalOf(1), 2);
    EXPECT_EQ(layout.logicalOf(1), -1);
    EXPECT_EQ(layout.logicalOf(2), 1);
    layout.swapPhysical(0, 2); // logical 0 <-> logical 1
    EXPECT_EQ(layout.physicalOf(0), 2);
    EXPECT_EQ(layout.physicalOf(1), 0);
}

TEST(LayoutTest, RejectsDuplicates)
{
    EXPECT_THROW(Layout({0, 0}, 3), std::invalid_argument);
    EXPECT_THROW(Layout({0, 5}, 3), std::invalid_argument);
}

// ----------------------------------------------------------------- sabre

TEST(Sabre, NoSwapWhenAdjacent)
{
    const Topology topo = device::linearTopology(3);
    QuantumCircuit qc(3, 3);
    qc.h(0).cx(0, 1).cx(1, 2).measureAll();
    const RoutedCircuit routed =
        sabreRoute(qc, topo, identityLayout(3, 3));
    EXPECT_EQ(routed.swapCount, 0);
    EXPECT_EQ(routed.physical.countTwoQubitGates(), 2);
}

TEST(Sabre, InsertsSwapForDistantPair)
{
    const Topology topo = device::linearTopology(3);
    QuantumCircuit qc(3, 3);
    qc.cx(0, 2).measureAll();
    const RoutedCircuit routed =
        sabreRoute(qc, topo, identityLayout(3, 3));
    EXPECT_GE(routed.swapCount, 1);
    // All two-qubit gates must now sit on coupling edges.
    for (const Gate &g : routed.physical.gates()) {
        if (g.isTwoQubit()) {
            EXPECT_TRUE(topo.areCoupled(g.qubits[0], g.qubits[1]));
        }
    }
}

TEST(Sabre, MeasurementsFollowFinalLayout)
{
    const Topology topo = device::linearTopology(3);
    QuantumCircuit qc(3, 3);
    qc.cx(0, 2).measureAll();
    const RoutedCircuit routed =
        sabreRoute(qc, topo, identityLayout(3, 3));
    const std::vector<int> measured = routed.physical.measuredQubits();
    for (int c = 0; c < 3; ++c)
        EXPECT_EQ(measured[static_cast<std::size_t>(c)],
                  routed.finalLayout.physicalOf(c));
}

TEST(Sabre, RejectsNonTerminalMeasurement)
{
    const Topology topo = device::linearTopology(2);
    QuantumCircuit qc(2, 2);
    qc.measure(0, 0).h(0);
    EXPECT_THROW(sabreRoute(qc, topo, identityLayout(2, 2)),
                 std::invalid_argument);
}

/**
 * Property: routing preserves semantics. The routed circuit, executed
 * noiselessly, must produce the same output distribution (over
 * classical bits) as the logical circuit.
 */
class SabreEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(SabreEquivalence, RoutedCircuitSameDistribution)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
    const int n = 4 + static_cast<int>(rng.uniformInt(0, 2));

    // Random topology: ring plus a chord, always connected.
    std::vector<device::Edge> edges;
    const int n_phys = n + 2;
    for (int q = 0; q < n_phys; ++q)
        edges.emplace_back(q, (q + 1) % n_phys);
    edges.emplace_back(0, n_phys / 2);
    const Topology topo(n_phys, std::move(edges));

    QuantumCircuit qc(n, n);
    for (int step = 0; step < 25; ++step) {
        const int kind = static_cast<int>(rng.uniformInt(0, 3));
        const int a = static_cast<int>(rng.uniformInt(0, n - 1));
        int b = static_cast<int>(rng.uniformInt(0, n - 1));
        if (b == a)
            b = (a + 1) % n;
        switch (kind) {
          case 0: qc.h(a); break;
          case 1: qc.rx(rng.uniform(0, 2 * M_PI), a); break;
          case 2: qc.cx(a, b); break;
          default: qc.rzz(rng.uniform(0, 2 * M_PI), a, b); break;
        }
    }
    qc.measureAll();

    const RoutedCircuit routed =
        sabreRoute(qc, topo, identityLayout(n, n_phys));

    // Coupling validity.
    for (const Gate &g : routed.physical.gates()) {
        if (g.isTwoQubit()) {
            ASSERT_TRUE(topo.areCoupled(g.qubits[0], g.qubits[1]));
        }
    }

    // Semantic equivalence through the noiseless executor.
    sim::IdealSimulator ideal;
    const Pmf expected = ideal.idealPmf(qc);
    const Pmf actual = ideal.idealPmf(routed.physical);
    EXPECT_LT(totalVariationDistance(expected, actual), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SabreEquivalence, ::testing::Range(1, 13));

// ------------------------------------------------------------- placement

TEST(Placement, RankedStartsPreferGoodQubits)
{
    const DeviceModel dev = device::toronto();
    const std::vector<int> starts = rankedStartQubits(dev, true);
    EXPECT_EQ(starts.size(), 27u);
    // All distinct.
    std::set<int> unique(starts.begin(), starts.end());
    EXPECT_EQ(unique.size(), 27u);
}

TEST(Placement, GreedyProducesValidLayout)
{
    const DeviceModel dev = device::toronto();
    QuantumCircuit qc(8, 8);
    qc.h(0);
    for (int q = 0; q + 1 < 8; ++q)
        qc.cx(q, q + 1);
    qc.measureAll();
    const Layout layout = greedyPlacement(qc, dev, 12, true);
    EXPECT_EQ(layout.nLogical(), 8);
    std::set<int> used;
    for (int l = 0; l < 8; ++l)
        used.insert(layout.physicalOf(l));
    EXPECT_EQ(used.size(), 8u);
}

TEST(Placement, ChainNeighborsPlacedNearby)
{
    const DeviceModel dev = device::toronto();
    QuantumCircuit qc(6, 6);
    for (int q = 0; q + 1 < 6; ++q)
        qc.cx(q, q + 1);
    qc.measureAll();
    const Layout layout = greedyPlacement(qc, dev, 12, true);
    // Interacting neighbors should be within a couple of hops.
    for (int q = 0; q + 1 < 6; ++q) {
        EXPECT_LE(dev.topology().distance(layout.physicalOf(q),
                                          layout.physicalOf(q + 1)),
                  2);
    }
}

TEST(Placement, RejectsOversizedProgram)
{
    const DeviceModel dev = device::toronto();
    QuantumCircuit qc(28, 28);
    qc.h(0);
    EXPECT_THROW(greedyPlacement(qc, dev, 0, true),
                 std::invalid_argument);
}

// ------------------------------------------------------------ transpiler

TEST(Transpiler, ProducesRoutedCircuit)
{
    const DeviceModel dev = device::toronto();
    QuantumCircuit qc(10, 10);
    qc.h(0);
    for (int q = 0; q + 1 < 10; ++q)
        qc.cx(q, q + 1);
    qc.measureAll();

    const CompiledCircuit compiled = transpile(qc, dev);
    EXPECT_EQ(compiled.physical.nQubits(), 27);
    for (const Gate &g : compiled.physical.gates()) {
        if (g.isTwoQubit()) {
            EXPECT_TRUE(dev.topology().areCoupled(g.qubits[0],
                                                  g.qubits[1]));
        }
    }
    EXPECT_GT(compiled.eps, 0.0);
    EXPECT_LE(compiled.eps, 1.0);
    EXPECT_NEAR(compiled.eps,
                compiled.gateSuccess * compiled.measurementSuccess,
                1e-12);
}

TEST(Transpiler, NoiseAwareBeatsOrEqualsNaive)
{
    const DeviceModel dev = device::toronto();
    QuantumCircuit qc(8, 8);
    qc.h(0);
    for (int q = 0; q + 1 < 8; ++q)
        qc.cx(q, q + 1);
    qc.measureAll();

    TranspileOptions naive;
    naive.noiseAware = false;
    const CompiledCircuit aware = transpile(qc, dev);
    const CompiledCircuit blind = transpile(qc, dev, naive);
    EXPECT_GE(aware.eps, blind.eps - 1e-12);
}

TEST(Transpiler, CpmRecompilationRespectsSwapBudgetAndReadout)
{
    const DeviceModel dev = device::toronto();
    QuantumCircuit qc(10, 10);
    qc.h(0);
    for (int q = 0; q + 1 < 10; ++q)
        qc.cx(q, q + 1);
    qc.measureAll();

    const CompiledCircuit global = transpile(qc, dev);

    const QuantumCircuit cpm_logical = qc.withMeasurementSubset({4, 5});
    TranspileOptions cpm_options;
    cpm_options.maxSwaps = global.swapCount;
    const CompiledCircuit cpm = transpile(cpm_logical, dev, cpm_options);

    // Per the no-extra-SWAP rule.
    EXPECT_LE(cpm.swapCount, global.swapCount);

    // Measuring 2 qubits must read far better than measuring all 10
    // under the global compilation (fewer flips + less crosstalk).
    EXPECT_GT(cpm.measurementSuccess, global.measurementSuccess);

    // The CPM's overall EPS must also beat the global program's
    // (same gates, two instead of ten measurements).
    EXPECT_GT(cpm.eps, global.eps);
}

TEST(Transpiler, EnsembleDiverse)
{
    const DeviceModel dev = device::toronto();
    QuantumCircuit qc(6, 6);
    qc.h(0);
    for (int q = 0; q + 1 < 6; ++q)
        qc.cx(q, q + 1);
    qc.measureAll();

    const std::vector<CompiledCircuit> ensemble =
        transpileEnsemble(qc, dev, 4);
    EXPECT_EQ(ensemble.size(), 4u);

    // Initial layouts must differ pairwise.
    for (std::size_t i = 0; i < ensemble.size(); ++i) {
        for (std::size_t j = i + 1; j < ensemble.size(); ++j) {
            EXPECT_NE(ensemble[i].initialLayout.logicalToPhysical(),
                      ensemble[j].initialLayout.logicalToPhysical());
        }
    }
    // Sorted by EPS descending (best mapping first).
    for (std::size_t i = 0; i + 1 < ensemble.size(); ++i)
        EXPECT_GE(ensemble[i].eps, ensemble[i + 1].eps - 1e-9);
}

TEST(Transpiler, WorksOnManhattan)
{
    const DeviceModel dev = device::manhattan();
    QuantumCircuit qc(14, 14);
    qc.h(0);
    for (int q = 0; q + 1 < 14; ++q)
        qc.cx(q, q + 1);
    qc.measureAll();
    const CompiledCircuit compiled = transpile(qc, dev);
    EXPECT_EQ(compiled.physical.nQubits(), 65);
    sim::IdealSimulator ideal;
    const Pmf pmf = ideal.idealPmf(compiled.physical);
    EXPECT_NEAR(pmf.prob(0), 0.5, 1e-9);
}

} // namespace
} // namespace compiler
} // namespace jigsaw
