/**
 * @file
 * Tests for the library extensions beyond the paper's core: the CP
 * gate, OpenQASM 2.0 interchange, the QFT-adjoint workload, the
 * Appendix A.2 trial estimator, and the JigSaw-M layer-order option.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "circuit/qasm.h"
#include "core/bayesian.h"
#include "core/jigsaw.h"
#include "core/trial_estimate.h"
#include "device/library.h"
#include "metrics/metrics.h"
#include "sim/eps.h"
#include "sim/simulators.h"
#include "sim/statevector.h"
#include "workloads/qft.h"
#include "workloads/registry.h"

namespace jigsaw {
namespace {

using circuit::GateType;
using circuit::QuantumCircuit;

// --------------------------------------------------------------- CP gate

TEST(CpGate, PiEqualsCz)
{
    sim::StateVector a(2), b(2);
    QuantumCircuit prep(2);
    prep.h(0).h(1);
    a.applyCircuit(prep);
    b.applyCircuit(prep);
    a.applyGate({GateType::CP, {0, 1}, {M_PI}, -1});
    b.applyGate({GateType::CZ, {0, 1}, {}, -1});
    for (BasisState s = 0; s < 4; ++s)
        EXPECT_NEAR(std::abs(a.amplitude(s) - b.amplitude(s)), 0.0,
                    1e-12);
}

TEST(CpGate, OnlyPhases11)
{
    sim::StateVector sv(2);
    QuantumCircuit prep(2);
    prep.h(0).h(1);
    sv.applyCircuit(prep);
    sv.applyGate({GateType::CP, {0, 1}, {0.7}, -1});
    // Probabilities unchanged (diagonal gate).
    for (BasisState s = 0; s < 4; ++s)
        EXPECT_NEAR(sv.probability(s), 0.25, 1e-12);
    EXPECT_NEAR(std::arg(sv.amplitude(0b11)) -
                    std::arg(sv.amplitude(0b00)),
                0.7, 1e-12);
}

TEST(CpGate, SymmetricInQubits)
{
    sim::StateVector a(2), b(2);
    QuantumCircuit prep(2);
    prep.h(0).ry(0.4, 1);
    a.applyCircuit(prep);
    b.applyCircuit(prep);
    a.applyGate({GateType::CP, {0, 1}, {1.1}, -1});
    b.applyGate({GateType::CP, {1, 0}, {1.1}, -1});
    for (BasisState s = 0; s < 4; ++s)
        EXPECT_NEAR(std::abs(a.amplitude(s) - b.amplitude(s)), 0.0,
                    1e-12);
}

TEST(CpGate, EpsCountsAsTwoCx)
{
    device::Topology topo = device::linearTopology(2);
    device::Calibration cal(2, 1);
    cal.setEdgeError(0, 0.02);
    cal.qubit(1).error1q = 0.001;
    const device::DeviceModel dev("t", std::move(topo), std::move(cal));
    QuantumCircuit qc(2, 1);
    qc.cp(0.3, 0, 1).measure(0, 0);
    EXPECT_NEAR(sim::gateSuccessProbability(qc, dev),
                0.98 * 0.98 * 0.999, 1e-12);
}

// ------------------------------------------------------------------ qasm

TEST(Qasm, EmitsHeaderAndGates)
{
    QuantumCircuit qc(3, 2);
    qc.h(0).cx(0, 1).rz(0.5, 2).cp(0.25, 0, 2).barrier();
    qc.measure(0, 0).measure(2, 1);
    const std::string text = circuit::toQasm(qc);
    EXPECT_NE(text.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(text.find("qreg q[3];"), std::string::npos);
    EXPECT_NE(text.find("creg c[2];"), std::string::npos);
    EXPECT_NE(text.find("h q[0];"), std::string::npos);
    EXPECT_NE(text.find("cx q[0],q[1];"), std::string::npos);
    EXPECT_NE(text.find("cu1(0.25) q[0],q[2];"), std::string::npos);
    EXPECT_NE(text.find("measure q[2] -> c[1];"), std::string::npos);
    EXPECT_NE(text.find("barrier q;"), std::string::npos);
}

TEST(Qasm, RoundTripPreservesSemantics)
{
    // Every gate type in one circuit; the reparsed circuit must
    // produce exactly the same output distribution.
    QuantumCircuit qc(4, 4);
    qc.h(0).x(1).y(2).z(3).s(0).sdg(1).t(2).tdg(3);
    qc.rx(0.3, 0).ry(0.7, 1).rz(1.1, 2).u3(0.2, 0.4, 0.6, 3);
    qc.cx(0, 1).cz(1, 2).cp(0.9, 2, 3).rzz(0.5, 0, 3).swap(1, 3);
    qc.barrier();
    qc.measureAll();

    const QuantumCircuit parsed = circuit::fromQasm(circuit::toQasm(qc));
    EXPECT_EQ(parsed.nQubits(), qc.nQubits());
    EXPECT_EQ(parsed.nClbits(), qc.nClbits());
    EXPECT_EQ(parsed.gates().size(), qc.gates().size());

    sim::IdealSimulator ideal;
    EXPECT_LT(totalVariationDistance(ideal.idealPmf(qc),
                                     ideal.idealPmf(parsed)),
              1e-12);
}

TEST(Qasm, ParsesCommentsAndWhitespace)
{
    const std::string text = R"(OPENQASM 2.0;
include "qelib1.inc";
// a comment line
qreg q[2];
creg c[2];

h q[0];   // trailing comment
cx q[0],q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
)";
    const QuantumCircuit qc = circuit::fromQasm(text);
    EXPECT_EQ(qc.nQubits(), 2);
    EXPECT_EQ(qc.countMeasurements(), 2);
    sim::IdealSimulator ideal;
    EXPECT_NEAR(ideal.idealPmf(qc).prob(0b00), 0.5, 1e-12);
    EXPECT_NEAR(ideal.idealPmf(qc).prob(0b11), 0.5, 1e-12);
}

TEST(Qasm, RejectsGarbage)
{
    EXPECT_THROW(circuit::fromQasm("h q[0];"), std::invalid_argument);
    EXPECT_THROW(circuit::fromQasm("qreg q[2];\nfoo q[0];"),
                 std::invalid_argument);
    EXPECT_THROW(circuit::fromQasm("qreg q[2];\nh q[0]"),
                 std::invalid_argument);
    EXPECT_THROW(circuit::fromQasm("qreg q[2];\nrx() q[0];"),
                 std::invalid_argument);
}

// ------------------------------------------------------------------- QFT

TEST(QftAdjoint, DeterministicIdentity)
{
    const workloads::QftAdjoint qft(6);
    EXPECT_EQ(qft.name(), "QFTAdj-6");
    EXPECT_EQ(qft.idealPmf().support(), 1u);
    EXPECT_NEAR(qft.idealPmf().prob(qft.pattern()), 1.0, 1e-9);
    EXPECT_EQ(qft.correctOutcomes(),
              (std::vector<BasisState>{qft.pattern()}));
}

TEST(QftAdjoint, CpHeavy)
{
    const workloads::QftAdjoint qft(8);
    // n(n-1) controlled-phase interactions across QFT + inverse.
    EXPECT_EQ(qft.circuit().countTwoQubitGates(), 56);
}

TEST(QftAdjoint, RegistryName)
{
    EXPECT_EQ(workloads::makeWorkload("QFTAdj-4")->name(), "QFTAdj-4");
}

TEST(QftAdjoint, JigsawImprovesIt)
{
    const auto qft = workloads::makeWorkload("QFTAdj-8");
    const device::DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 55});
    const Pmf baseline =
        core::runBaseline(qft->circuit(), dev, executor, 8192);
    const core::JigsawResult js =
        core::runJigsaw(qft->circuit(), dev, executor, 8192);
    EXPECT_GT(metrics::pst(js.output, *qft),
              metrics::pst(baseline, *qft));
}

// -------------------------------------------------------- trial estimate

TEST(TrialEstimate, PaperAppendixNumbers)
{
    // Paper: "only about 150 trials are required to ensure (with
    // 99.99% probability) that we obtain each possible answer at
    // least one time" for subset size 2.
    EXPECT_NEAR(static_cast<double>(
                    core::trialsForFullCoverage(2, 0.9999)),
                150.0, 5.0);
    // Per-outcome requirement is 1/4 of that (N vs N^2).
    EXPECT_EQ(core::trialsForOutcome(2, 0.9999) * 4,
              core::trialsForFullCoverage(2, 0.9999));
}

TEST(TrialEstimate, CoverageProbabilityMatchesFormula)
{
    // P = 1 - (1 - 2^-s)^t exactly.
    EXPECT_NEAR(core::coverageProbability(2, 1), 0.25, 1e-12);
    EXPECT_NEAR(core::coverageProbability(2, 2), 1 - 0.75 * 0.75,
                1e-12);
    EXPECT_NEAR(core::coverageProbability(1, 10),
                1 - std::pow(0.5, 10), 1e-12);
}

TEST(TrialEstimate, MonotoneInSizeAndConfidence)
{
    for (int s = 2; s < 9; ++s) {
        EXPECT_LT(core::trialsForFullCoverage(s, 0.99),
                  core::trialsForFullCoverage(s + 1, 0.99));
        EXPECT_LT(core::trialsForFullCoverage(s, 0.9),
                  core::trialsForFullCoverage(s, 0.999));
    }
}

TEST(TrialEstimate, GrowsAsNSquared)
{
    // Eq. 9 is quadratic in the outcome count: +1 subset bit
    // quadruples the budget.
    const auto t4 = core::trialsForFullCoverage(4, 0.999);
    const auto t5 = core::trialsForFullCoverage(5, 0.999);
    EXPECT_NEAR(static_cast<double>(t5) / static_cast<double>(t4), 4.0,
                0.01);
}

TEST(TrialEstimate, RejectsBadInputs)
{
    EXPECT_THROW(core::trialsForFullCoverage(0, 0.99),
                 std::invalid_argument);
    EXPECT_THROW(core::trialsForFullCoverage(2, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(core::trialsForFullCoverage(2, 1.0),
                 std::invalid_argument);
}

// ------------------------------------------------------------ layer order

TEST(LayerOrder, BothOrdersProduceValidPmfs)
{
    Pmf global(3);
    global.set(0b111, 0.4);
    global.set(0b000, 0.3);
    global.set(0b101, 0.3);
    Pmf big(3);
    big.set(0b111, 0.9);
    big.set(0b000, 0.1);
    Pmf small(2);
    small.set(0b11, 0.8);
    small.set(0b00, 0.2);
    const std::vector<core::Marginal> ms{{small, {0, 1}},
                                         {big, {0, 1, 2}}};

    core::ReconstructionOptions top_down;
    core::ReconstructionOptions bottom_up;
    bottom_up.layerOrder = core::LayerOrder::BottomUp;

    const Pmf a = core::multiLayerReconstruct(global, ms, top_down);
    const Pmf b = core::multiLayerReconstruct(global, ms, bottom_up);
    EXPECT_NEAR(a.totalMass(), 1.0, 1e-9);
    EXPECT_NEAR(b.totalMass(), 1.0, 1e-9);
    // Orders genuinely differ on this instance.
    EXPECT_GT(totalVariationDistance(a, b), 1e-6);
}

TEST(LayerOrder, TopDownAtLeastAsGoodOnDevice)
{
    // End-to-end: the paper's ordering should not lose to bottom-up
    // on a measurement-noise dominated workload.
    const auto ghz = workloads::makeWorkload("GHZ-10");
    const device::DeviceModel dev = device::toronto();
    sim::NoisySimulator executor(dev, {.seed = 66});

    const core::JigsawResult run = core::runJigsaw(
        ghz->circuit(), dev, executor, 16384, core::jigsawMOptions());
    core::ReconstructionOptions bottom_up;
    bottom_up.layerOrder = core::LayerOrder::BottomUp;
    const Pmf reversed = core::multiLayerReconstruct(
        run.globalPmf, run.marginals(), bottom_up);

    EXPECT_GE(metrics::pst(run.output, *ghz),
              metrics::pst(reversed, *ghz) * 0.98);
}

} // namespace
} // namespace jigsaw
