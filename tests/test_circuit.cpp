/**
 * @file
 * Unit tests for the circuit IR: builders, counters, and the CPM
 * (measurement-subset) transform.
 */
#include <gtest/gtest.h>

#include "circuit/circuit.h"

namespace jigsaw {
namespace circuit {
namespace {

TEST(Gate, Classification)
{
    const Gate h{GateType::H, {0}, {}, -1};
    const Gate cx{GateType::CX, {0, 1}, {}, -1};
    const Gate rzz{GateType::RZZ, {0, 1}, {0.1}, -1};
    const Gate meas{GateType::MEASURE, {0}, {}, 0};
    const Gate barrier{GateType::BARRIER, {}, {}, -1};

    EXPECT_TRUE(h.isSingleQubit());
    EXPECT_FALSE(h.isTwoQubit());
    EXPECT_TRUE(cx.isTwoQubit());
    EXPECT_TRUE(rzz.isTwoQubit());
    EXPECT_TRUE(meas.isMeasure());
    EXPECT_FALSE(meas.isSingleQubit());
    EXPECT_FALSE(barrier.isSingleQubit());
    EXPECT_FALSE(barrier.isTwoQubit());
}

TEST(Gate, Names)
{
    EXPECT_EQ(gateTypeName(GateType::CX), "cx");
    EXPECT_EQ(gateTypeName(GateType::U3), "u3");
    EXPECT_EQ(gateTypeName(GateType::MEASURE), "measure");
}

TEST(Circuit, BuilderCounts)
{
    QuantumCircuit qc(3);
    qc.h(0).cx(0, 1).cx(1, 2).rz(0.5, 2).measureAll();
    EXPECT_EQ(qc.countSingleQubitGates(), 2);
    EXPECT_EQ(qc.countTwoQubitGates(), 2);
    EXPECT_EQ(qc.countMeasurements(), 3);
    EXPECT_EQ(qc.nQubits(), 3);
    EXPECT_EQ(qc.nClbits(), 3);
}

TEST(Circuit, RejectsBadQubit)
{
    QuantumCircuit qc(2);
    EXPECT_THROW(qc.h(2), std::invalid_argument);
    EXPECT_THROW(qc.cx(0, 0), std::invalid_argument);
    EXPECT_THROW(qc.measure(0, 5), std::invalid_argument);
}

TEST(Circuit, ClassicalRegisterCappedAt64)
{
    // 64-bit outcome packing caps the classical register, not the
    // qubit register (devices can exceed 64 physical qubits).
    EXPECT_NO_THROW(QuantumCircuit qc(65, 10));
    EXPECT_THROW(QuantumCircuit qc(65), std::invalid_argument);
    EXPECT_THROW(QuantumCircuit qc(10, 65), std::invalid_argument);
}

TEST(Circuit, Depth)
{
    QuantumCircuit qc(3);
    EXPECT_EQ(qc.depth(), 0);
    qc.h(0);       // depth 1
    qc.h(1);       // parallel, still 1
    qc.cx(0, 1);   // depth 2
    qc.barrier();  // ignored
    qc.h(2);       // parallel with everything, depth stays 2
    qc.cx(1, 2);   // depth 3
    EXPECT_EQ(qc.depth(), 3);
}

TEST(Circuit, MeasuredQubits)
{
    QuantumCircuit qc(3, 2);
    qc.h(0);
    qc.measure(2, 0);
    qc.measure(0, 1);
    const std::vector<int> measured = qc.measuredQubits();
    ASSERT_EQ(measured.size(), 2u);
    EXPECT_EQ(measured[0], 2);
    EXPECT_EQ(measured[1], 0);
}

TEST(Circuit, WithoutMeasurements)
{
    QuantumCircuit qc(2);
    qc.h(0).cx(0, 1).measureAll();
    const QuantumCircuit bare = qc.withoutMeasurements();
    EXPECT_EQ(bare.countMeasurements(), 0);
    EXPECT_EQ(bare.countTwoQubitGates(), 1);
    EXPECT_EQ(bare.nClbits(), 2);
}

TEST(Circuit, MeasurementSubsetKeepsGates)
{
    QuantumCircuit qc(4);
    qc.h(0).cx(0, 1).cx(1, 2).cx(2, 3).measureAll();
    const QuantumCircuit cpm = qc.withMeasurementSubset({1, 3});
    EXPECT_EQ(cpm.countTwoQubitGates(), 3);
    EXPECT_EQ(cpm.countMeasurements(), 2);
    EXPECT_EQ(cpm.nClbits(), 2);
    // clbit 0 <- qubit 1, clbit 1 <- qubit 3.
    const std::vector<int> measured = cpm.measuredQubits();
    EXPECT_EQ(measured[0], 1);
    EXPECT_EQ(measured[1], 3);
}

TEST(Circuit, MeasurementSubsetReplacesOldMeasures)
{
    QuantumCircuit qc(3);
    qc.h(0).measureAll();
    const QuantumCircuit cpm = qc.withMeasurementSubset({2});
    EXPECT_EQ(cpm.countMeasurements(), 1);
    EXPECT_EQ(cpm.measuredQubits()[0], 2);
}

TEST(Circuit, MeasurementSubsetRejectsEmpty)
{
    QuantumCircuit qc(2);
    qc.h(0).measureAll();
    EXPECT_THROW(qc.withMeasurementSubset({}), std::invalid_argument);
}

TEST(Circuit, Compose)
{
    QuantumCircuit a(2);
    a.h(0);
    QuantumCircuit b(2);
    b.cx(0, 1);
    a.compose(b);
    EXPECT_EQ(a.gates().size(), 2u);
}

TEST(Circuit, RemappedRewritesQubits)
{
    QuantumCircuit qc(2);
    qc.h(0).cx(0, 1).measureAll();
    const QuantumCircuit phys = qc.remapped({5, 3}, 6);
    EXPECT_EQ(phys.nQubits(), 6);
    EXPECT_EQ(phys.gates()[0].qubits[0], 5);
    EXPECT_EQ(phys.gates()[1].qubits[0], 5);
    EXPECT_EQ(phys.gates()[1].qubits[1], 3);
    // clbits are preserved.
    EXPECT_EQ(phys.measuredQubits()[0], 5);
    EXPECT_EQ(phys.measuredQubits()[1], 3);
}

TEST(Circuit, RemappedRejectsShortMapping)
{
    QuantumCircuit qc(3);
    qc.h(0);
    EXPECT_THROW(qc.remapped({0, 1}, 4), std::invalid_argument);
}

TEST(Circuit, ToStringContainsOps)
{
    QuantumCircuit qc(2);
    qc.h(0).rz(0.25, 1).cx(0, 1).measure(0, 0);
    const std::string text = qc.toString();
    EXPECT_NE(text.find("h q0"), std::string::npos);
    EXPECT_NE(text.find("rz(0.25) q1"), std::string::npos);
    EXPECT_NE(text.find("cx q0, q1"), std::string::npos);
    EXPECT_NE(text.find("measure q0 -> c0"), std::string::npos);
}

TEST(Circuit, MeasureDefaultsToSameClbit)
{
    QuantumCircuit qc(3);
    qc.measure(1);
    EXPECT_EQ(qc.gates()[0].clbit, 1);
}

} // namespace
} // namespace circuit
} // namespace jigsaw
