/**
 * @file
 * Worker execution tier tests: merged windows dispatched as leases
 * over the Transport seam must produce results bitwise-identical to
 * sequential runJigsaw whatever the fleet does — healthy workers,
 * workers crashing mid-window, workers stalling past the lease
 * deadline, transport faults on either edge, or a fleet with no live
 * worker at all (graceful local fallback). Lost leases must never
 * charge a job's transient-retry budget. This file joins test_stream
 * in the CI ThreadSanitizer leg and the fault-matrix step
 * (AmbientFaultMatrix reruns under JIGSAW_FAULT_SPEC).
 */
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/fault.h"
#include "core/scheduler.h"
#include "core/service.h"
#include "core/transport.h"
#include "core/worker.h"
#include "device/library.h"
#include "workloads/bv.h"
#include "workloads/ghz.h"
#include "workloads/qft.h"

namespace jigsaw {
namespace {

using core::JigsawResult;
using core::JobHandle;
using core::Priority;
using core::ServiceProgram;
using core::StreamingScheduler;
using core::StreamOptions;

/** Disarms the process-wide fault injector however the test exits. */
struct FaultGuard
{
    ~FaultGuard() { FaultInjector::instance().clear(); }
};

/** Exact equality: the two PMFs store identical doubles. */
void
expectBitwisePmf(const Pmf &a, const Pmf &b)
{
    ASSERT_EQ(a.nQubits(), b.nQubits());
    ASSERT_EQ(a.support(), b.support());
    for (const auto &[outcome, p] : a.probabilities())
        EXPECT_EQ(p, b.prob(outcome)) << "outcome " << outcome;
}

void
expectBitwiseResult(const JigsawResult &expected,
                    const JigsawResult &actual)
{
    expectBitwisePmf(expected.output, actual.output);
    expectBitwisePmf(expected.globalPmf, actual.globalPmf);
    ASSERT_EQ(expected.cpms.size(), actual.cpms.size());
    for (std::size_t c = 0; c < expected.cpms.size(); ++c) {
        EXPECT_EQ(expected.cpms[c].subset, actual.cpms[c].subset);
        expectBitwisePmf(expected.cpms[c].localPmf,
                         actual.cpms[c].localPmf);
    }
}

/** A mixed batch with duplicated (circuit, device) pairs to merge. */
std::vector<ServiceProgram>
workerPrograms(const device::DeviceModel &dev, std::uint64_t seed_base)
{
    std::vector<ServiceProgram> programs;
    programs.emplace_back(workloads::Ghz(6).circuit(), dev, 8192,
                          core::JigsawOptions{}, seed_base + 1);
    programs.emplace_back(workloads::Ghz(6).circuit(), dev, 8192,
                          core::JigsawOptions{}, seed_base + 2);
    programs.emplace_back(workloads::BernsteinVazirani(6).circuit(), dev,
                          6144, core::JigsawOptions{}, seed_base + 3);
    programs.emplace_back(workloads::QftAdjoint(5).circuit(), dev, 4096,
                          core::JigsawOptions{}, seed_base + 4);
    return programs;
}

std::size_t
workerCompletedTotal(const core::StreamStats &stats)
{
    return std::accumulate(stats.workerCompleted.begin(),
                           stats.workerCompleted.end(),
                           std::size_t{0});
}

// ------------------------------------------------ healthy fleet

TEST(WorkerTier, MatchesSequentialBitwise)
{
    const device::DeviceModel dev = device::toronto();
    const std::vector<ServiceProgram> programs =
        workerPrograms(dev, 1000);
    const std::vector<JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Always;
    options.windowMs = 50.0;
    options.worker.workers = 4;
    StreamingScheduler scheduler(options);
    std::vector<JobHandle> handles;
    for (const ServiceProgram &program : programs)
        handles.push_back(scheduler.submit(program).handle);
    scheduler.drain();

    for (std::size_t i = 0; i < handles.size(); ++i)
        expectBitwiseResult(sequential[i], scheduler.wait(handles[i]));
    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, programs.size());
    EXPECT_EQ(stats.failed, 0u);
    // Every window rode the fleet: leases were granted, none lost,
    // nothing fell back to local execution.
    EXPECT_GE(stats.leasesGranted, 1u);
    EXPECT_EQ(stats.leasesExpired, 0u);
    EXPECT_EQ(stats.leasesRevoked, 0u);
    EXPECT_EQ(stats.localFallbacks, 0u);
    EXPECT_EQ(workerCompletedTotal(stats), stats.leasesGranted);
}

TEST(WorkerTier, WorkersZeroRunsLocallyWithNoLeases)
{
    const device::DeviceModel dev = device::toronto();
    const std::vector<ServiceProgram> programs =
        workerPrograms(dev, 1100);
    const std::vector<JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Always;
    options.windowMs = 50.0;
    options.worker.workers = 0; // tier disabled: the pre-worker path
    StreamingScheduler scheduler(options);
    std::vector<JobHandle> handles;
    for (const ServiceProgram &program : programs)
        handles.push_back(scheduler.submit(program).handle);
    scheduler.drain();

    for (std::size_t i = 0; i < handles.size(); ++i)
        expectBitwiseResult(sequential[i], scheduler.wait(handles[i]));
    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, programs.size());
    EXPECT_EQ(stats.leasesGranted, 0u);
    // localFallbacks counts worker-tier degradations only, not the
    // ordinary transportless path.
    EXPECT_EQ(stats.localFallbacks, 0u);
    EXPECT_TRUE(stats.workerCompleted.empty());
}

// ------------------------------------------- worker death and stalls

TEST(WorkerTier, FourSubmittersWithWorkerCrashesStayBitwise)
{
    // The acceptance test: four submitter threads over a 4-worker
    // fleet with two workers crashing mid-window. The crashed leases
    // are revoked on heartbeat silence and re-dispatched to surviving
    // workers; every job still completes bitwise-identical to its
    // sequential run, with zero failures.
    const device::DeviceModel dev = device::toronto();
    std::vector<ServiceProgram> programs;
    for (int t = 0; t < 4; ++t) {
        for (const ServiceProgram &base :
             workerPrograms(dev, 3000 + 100ULL * t))
            programs.push_back(base);
    }
    const std::vector<JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    FaultGuard guard;
    FaultInjector::instance().configure(
        parseFaultSpec("worker.crash:first=2"));

    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Auto;
    options.windowMs = 10.0;
    options.worker.workers = 4;
    options.worker.heartbeatTimeoutMs = 50.0;
    StreamingScheduler scheduler(options);

    const std::size_t per_thread = programs.size() / 4;
    std::vector<JobHandle> handles(programs.size());
    std::vector<std::thread> submitters;
    for (std::size_t t = 0; t < 4; ++t) {
        submitters.emplace_back([&, t] {
            for (std::size_t i = t * per_thread;
                 i < (t + 1) * per_thread; ++i) {
                handles[i] =
                    scheduler
                        .submit(programs[i],
                                static_cast<Priority>(
                                    i % core::kPriorityClasses))
                        .handle;
            }
        });
    }
    for (std::thread &submitter : submitters)
        submitter.join();
    scheduler.drain();

    for (std::size_t i = 0; i < programs.size(); ++i)
        expectBitwiseResult(sequential[i], scheduler.wait(handles[i]));
    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, programs.size());
    EXPECT_EQ(stats.failed + stats.expired + stats.cancelled, 0u);
    EXPECT_EQ(FaultInjector::instance().injectedAt("worker.crash"), 2u);
    // Both crashed leases were detected as worker death and re-sent;
    // the jobs' retry budgets were never charged for them.
    EXPECT_GE(stats.leasesRevoked, 2u);
    EXPECT_GE(stats.redispatches, 2u);
    EXPECT_EQ(stats.retries, 0u);
}

TEST(WorkerTier, StalledWorkerLeaseExpiresAndRecovers)
{
    const device::DeviceModel dev = device::toronto();
    const std::vector<ServiceProgram> programs =
        workerPrograms(dev, 4000);
    const std::vector<JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    FaultGuard guard;
    FaultInjector::instance().configure(
        parseFaultSpec("worker.stall@400:first=1"));

    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Always;
    options.windowMs = 50.0;
    options.worker.workers = 2;
    options.worker.leaseTimeoutMs = 50.0;
    StreamingScheduler scheduler(options);
    std::vector<JobHandle> handles;
    for (const ServiceProgram &program : programs)
        handles.push_back(scheduler.submit(program).handle);
    scheduler.drain();

    for (std::size_t i = 0; i < handles.size(); ++i)
        expectBitwiseResult(sequential[i], scheduler.wait(handles[i]));
    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, programs.size());
    EXPECT_EQ(stats.failed, 0u);
    // The stalled worker kept heartbeating, so only the lease
    // deadline caught it.
    EXPECT_GE(stats.leasesExpired, 1u);
    EXPECT_GE(stats.redispatches + stats.localFallbacks, 1u);
    // Its late response is eventually delivered and discarded whole:
    // the dispatcher counts it stale once the stall ends.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (scheduler.stats().staleResponses == 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "stale response never surfaced";
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
}

TEST(WorkerTier, AllDeadFleetFallsBackLocally)
{
    // Graceful degradation floor: both workers crash, the fleet is
    // empty, and every remaining window must execute locally with
    // zero job failures.
    const device::DeviceModel dev = device::toronto();
    const std::vector<ServiceProgram> programs =
        workerPrograms(dev, 5000);
    const std::vector<JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    FaultGuard guard;
    FaultInjector::instance().configure(
        parseFaultSpec("worker.crash:first=2"));

    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Auto; // several windows
    options.windowMs = 5.0;
    options.worker.workers = 2;
    options.worker.heartbeatTimeoutMs = 50.0;
    StreamingScheduler scheduler(options);
    std::vector<JobHandle> handles;
    for (const ServiceProgram &program : programs)
        handles.push_back(scheduler.submit(program).handle);
    scheduler.drain();

    for (std::size_t i = 0; i < handles.size(); ++i)
        expectBitwiseResult(sequential[i], scheduler.wait(handles[i]));
    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, programs.size());
    EXPECT_EQ(stats.failed + stats.expired, 0u);
    EXPECT_EQ(FaultInjector::instance().injectedAt("worker.crash"), 2u);
    EXPECT_GE(stats.localFallbacks, 1u);
    EXPECT_GE(stats.leasesRevoked, 2u);
}

// ------------------------------------------------- transport faults

TEST(WorkerTier, TransportFaultsOnBothEdgesRecover)
{
    const device::DeviceModel dev = device::toronto();
    const std::vector<ServiceProgram> programs =
        workerPrograms(dev, 6000);
    const std::vector<JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    FaultGuard guard;
    FaultInjector::instance().configure(
        parseFaultSpec("transport.send:first=1;transport.recv:first=1"));

    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Auto;
    options.windowMs = 5.0;
    options.worker.workers = 2;
    // The recv-lost response is only recoverable through the lease
    // deadline; keep it short so the test stays fast.
    options.worker.leaseTimeoutMs = 100.0;
    StreamingScheduler scheduler(options);
    std::vector<JobHandle> handles;
    for (const ServiceProgram &program : programs)
        handles.push_back(scheduler.submit(program).handle);
    scheduler.drain();

    for (std::size_t i = 0; i < handles.size(); ++i)
        expectBitwiseResult(sequential[i], scheduler.wait(handles[i]));
    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, programs.size());
    EXPECT_EQ(stats.failed, 0u);
    // The send fault lost a lease before delivery (revoked); the recv
    // fault lost a response in flight (lease expired). Neither
    // charged any job's retry budget.
    EXPECT_GE(stats.leasesRevoked, 1u);
    EXPECT_GE(stats.leasesExpired, 1u);
    EXPECT_EQ(stats.retries, 0u);
    EXPECT_EQ(FaultInjector::instance().injectedAt("transport.send"), 1u);
    EXPECT_EQ(FaultInjector::instance().injectedAt("transport.recv"), 1u);
}

// -------------------------------------- quarantine composition

TEST(WorkerTier, WorkerSideWindowFaultStillQuarantinesSolo)
{
    // A window failing ON the worker (a job-level fault inside the
    // merged execution, not a lost lease) must route through the same
    // quarantine machinery as a local failure: both members retried
    // solo, bitwise-identical, no budget charged for the poisoning.
    const device::DeviceModel dev = device::toronto();
    std::vector<ServiceProgram> programs;
    programs.emplace_back(workloads::Ghz(6).circuit(), dev, 8192,
                          core::JigsawOptions{}, 7001);
    programs.emplace_back(workloads::Ghz(6).circuit(), dev, 8192,
                          core::JigsawOptions{}, 7002);
    const std::vector<JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    // "@2" arms only merged executions covering exactly two sources:
    // the two-job window fails on the worker, the solo exclusive
    // retries (detail 1) pass.
    FaultGuard guard;
    FaultInjector::instance().configure(
        parseFaultSpec("merge.execute@2:first=1:terminal"));

    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Always;
    options.windowMs = 50.0;
    options.worker.workers = 2;
    StreamingScheduler scheduler(options);
    const JobHandle first = scheduler.submit(programs[0]).handle;
    const JobHandle second = scheduler.submit(programs[1]).handle;
    scheduler.drain();

    expectBitwiseResult(sequential[0], scheduler.wait(first));
    expectBitwiseResult(sequential[1], scheduler.wait(second));
    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.quarantinedJobs, 2u);
    EXPECT_EQ(stats.retries, 0u);
    EXPECT_EQ(FaultInjector::instance().injectedAt("merge.execute"), 1u);
}

// -------------------------------------------------- fault matrix

/**
 * CI fault-matrix entry point: when JIGSAW_FAULT_SPEC is set in the
 * environment, rerun the worker-tier bitwise contract under that
 * ambient spec. The sequential reference is computed with the
 * injector DISARMED (a reference run absorbing counted faults would
 * corrupt the comparison), then the env spec is re-armed for the
 * scheduler run. Skipped without the env var so the regular ctest
 * pass is unaffected.
 */
TEST(AmbientFaultMatrix, SurvivorsStayBitwiseUnderEnvSpec)
{
    const char *spec = std::getenv("JIGSAW_FAULT_SPEC");
    if (spec == nullptr || *spec == '\0')
        GTEST_SKIP() << "JIGSAW_FAULT_SPEC not set";

    FaultGuard guard;
    FaultInjector::instance().clear();
    const device::DeviceModel dev = device::toronto();
    const std::vector<ServiceProgram> programs =
        workerPrograms(dev, 8000);
    const std::vector<JigsawResult> sequential =
        core::runProgramsSequentially(programs);

    FaultInjector::instance().configure(parseFaultSpec(spec));
    StreamOptions options;
    options.mergePolicy = core::MergePolicy::Auto;
    options.windowMs = 10.0;
    options.worker.workers = 4;
    options.worker.leaseTimeoutMs = 250.0;
    options.worker.heartbeatTimeoutMs = 50.0;
    StreamingScheduler scheduler(options);
    std::vector<JobHandle> handles;
    for (const ServiceProgram &program : programs)
        handles.push_back(scheduler.submit(program).handle);
    scheduler.drain();

    for (std::size_t i = 0; i < handles.size(); ++i)
        expectBitwiseResult(sequential[i], scheduler.wait(handles[i]));
    const core::StreamStats stats = scheduler.stats();
    EXPECT_EQ(stats.completed, programs.size());
    EXPECT_EQ(stats.failed + stats.expired + stats.cancelled, 0u);
}

} // namespace
} // namespace jigsaw
