/**
 * @file
 * Noise-pipeline tests: circuit compaction, EPS accounting, the
 * measurement channel's statistics, and the ideal/noisy executors
 * (including fast-channel vs trajectory-mode agreement).
 */
#include <gtest/gtest.h>

#include "device/library.h"
#include "sim/compact.h"
#include "sim/eps.h"
#include "sim/noise_model.h"
#include "sim/simulators.h"

namespace jigsaw {
namespace sim {
namespace {

using circuit::QuantumCircuit;
using device::DeviceModel;

/** A 3-qubit linear device with hand-set calibration for exact math. */
DeviceModel
tinyDevice()
{
    device::Topology topo = device::linearTopology(3);
    device::Calibration cal(3, 2);
    for (int q = 0; q < 3; ++q) {
        cal.qubit(q).readoutError01 = 0.02;
        cal.qubit(q).readoutError10 = 0.04;
        cal.qubit(q).error1q = 0.001;
        cal.qubit(q).crosstalkGamma = 0.005;
    }
    cal.setEdgeError(0, 0.01);
    cal.setEdgeError(1, 0.02);
    cal.setCorrelatedPairError(0.0);
    return DeviceModel("tiny", std::move(topo), std::move(cal));
}

TEST(Compact, RenumbersActiveQubits)
{
    QuantumCircuit qc(10, 2);
    qc.h(7).cx(7, 3).measure(7, 0).measure(3, 1);
    const CompactCircuit c = compactCircuit(qc);
    EXPECT_EQ(c.circuit.nQubits(), 2);
    EXPECT_EQ(c.activeQubits, (std::vector<int>{7, 3}));
    EXPECT_EQ(c.denseOf[7], 0);
    EXPECT_EQ(c.denseOf[3], 1);
    EXPECT_EQ(c.denseOf[0], -1);
    EXPECT_EQ(c.circuit.nClbits(), 2);
}

TEST(Compact, RejectsEmptyCircuit)
{
    QuantumCircuit qc(3);
    EXPECT_THROW(compactCircuit(qc), std::invalid_argument);
}

TEST(Eps, GateSuccessExactProduct)
{
    const DeviceModel dev = tinyDevice();
    QuantumCircuit qc(3, 3);
    qc.h(0).cx(0, 1).cx(1, 2).measureAll();
    // (1 - 0.001) * (1 - 0.01) * (1 - 0.02)
    EXPECT_NEAR(gateSuccessProbability(qc, dev),
                0.999 * 0.99 * 0.98, 1e-12);
}

TEST(Eps, SwapCountsAsThreeCx)
{
    const DeviceModel dev = tinyDevice();
    QuantumCircuit qc(3, 1);
    qc.swap(0, 1).measure(0, 0);
    EXPECT_NEAR(gateSuccessProbability(qc, dev), 0.99 * 0.99 * 0.99,
                1e-12);
}

TEST(Eps, RzzCountsAsTwoCxOneRz)
{
    const DeviceModel dev = tinyDevice();
    QuantumCircuit qc(3, 1);
    qc.rzz(0.3, 1, 2).measure(1, 0);
    EXPECT_NEAR(gateSuccessProbability(qc, dev), 0.98 * 0.98 * 0.999,
                1e-12);
}

TEST(Eps, RejectsUnroutedGate)
{
    const DeviceModel dev = tinyDevice();
    QuantumCircuit qc(3, 1);
    qc.cx(0, 2).measure(0, 0); // 0-2 not coupled on a line
    EXPECT_THROW(gateSuccessProbability(qc, dev), std::invalid_argument);
}

TEST(Eps, MeasurementSuccessIncludesCrosstalk)
{
    const DeviceModel dev = tinyDevice();
    QuantumCircuit one(3, 1);
    one.h(0).measure(0, 0);
    // Single measurement: state-averaged error 0.03.
    EXPECT_NEAR(measurementSuccessProbability(one, dev), 0.97, 1e-12);

    QuantumCircuit three(3, 3);
    three.h(0).measureAll();
    // Three simultaneous: 0.03 + 0.005 * 2 = 0.04 each.
    EXPECT_NEAR(measurementSuccessProbability(three, dev),
                0.96 * 0.96 * 0.96, 1e-12);
}

TEST(Eps, FullEpsIsProduct)
{
    const DeviceModel dev = tinyDevice();
    QuantumCircuit qc(3, 3);
    qc.h(0).cx(0, 1).measureAll();
    EXPECT_NEAR(expectedProbabilityOfSuccess(qc, dev),
                gateSuccessProbability(qc, dev) *
                    measurementSuccessProbability(qc, dev),
                1e-15);
}

TEST(TerminalMeasurements, AcceptsTerminal)
{
    QuantumCircuit qc(2, 2);
    qc.h(0).cx(0, 1).measureAll();
    EXPECT_NO_THROW(checkTerminalMeasurements(qc));
}

TEST(TerminalMeasurements, RejectsGateAfterMeasure)
{
    QuantumCircuit qc(2, 2);
    qc.measure(0, 0).h(0);
    EXPECT_THROW(checkTerminalMeasurements(qc), std::invalid_argument);
}

TEST(TerminalMeasurements, RejectsDuplicateClbit)
{
    QuantumCircuit qc(2, 2);
    qc.measure(0, 0).measure(1, 0);
    EXPECT_THROW(checkTerminalMeasurements(qc), std::invalid_argument);
}

TEST(TerminalMeasurements, RejectsNoMeasurement)
{
    QuantumCircuit qc(2, 2);
    qc.h(0);
    EXPECT_THROW(checkTerminalMeasurements(qc), std::invalid_argument);
}

TEST(MeasurementChannel, FlipProbabilitiesIncludeCrosstalk)
{
    const DeviceModel dev = tinyDevice();
    QuantumCircuit qc(3, 2);
    qc.h(0).measure(0, 0).measure(2, 1);
    const MeasurementChannel channel(qc, dev);
    EXPECT_EQ(channel.nClbits(), 2);
    // Two simultaneous measurements: base + gamma * 1.
    EXPECT_NEAR(channel.flipProbability(0, 0), 0.02 + 0.005, 1e-12);
    EXPECT_NEAR(channel.flipProbability(0, 1), 0.04 + 0.005, 1e-12);
}

TEST(MeasurementChannel, EmpiricalFlipRate)
{
    const DeviceModel dev = tinyDevice();
    QuantumCircuit qc(3, 1);
    qc.h(0).measure(0, 0);
    const MeasurementChannel channel(qc, dev);
    Rng rng(31);
    const int n = 200000;
    int flips_from_0 = 0;
    int flips_from_1 = 0;
    for (int i = 0; i < n; ++i) {
        if (channel.apply(0b0, rng) != 0b0)
            ++flips_from_0;
        if (channel.apply(0b1, rng) != 0b1)
            ++flips_from_1;
    }
    EXPECT_NEAR(static_cast<double>(flips_from_0) / n, 0.02, 0.002);
    EXPECT_NEAR(static_cast<double>(flips_from_1) / n, 0.04, 0.003);
}

TEST(MeasurementChannel, CorrelatedPairsOnCoupledQubits)
{
    device::Topology topo = device::linearTopology(3);
    device::Calibration cal(3, 2);
    cal.setCorrelatedPairError(0.5);
    const DeviceModel dev("tiny2", std::move(topo), std::move(cal));

    QuantumCircuit qc(3, 3);
    qc.h(0).measureAll();
    const MeasurementChannel channel(qc, dev);
    // Coupled measured pairs on a 3-line: (0,1) and (1,2).
    EXPECT_EQ(channel.correlatedPairs().size(), 2u);
    EXPECT_DOUBLE_EQ(channel.correlatedError(), 0.5);

    // With flip rates zero, only correlated flips act, always flipping
    // pairs: parity of bits 0^1^2 changes by 0 or 2 flips per pair.
    Rng rng(41);
    for (int i = 0; i < 100; ++i) {
        const BasisState out = channel.apply(0b000, rng);
        EXPECT_EQ(popcount(out) % 2, 0);
    }
}

TEST(IdealSimulator, ExactBellPmf)
{
    IdealSimulator ideal;
    QuantumCircuit qc(2, 2);
    qc.h(0).cx(0, 1).measureAll();
    const Pmf pmf = ideal.idealPmf(qc);
    EXPECT_NEAR(pmf.prob(0b00), 0.5, 1e-12);
    EXPECT_NEAR(pmf.prob(0b11), 0.5, 1e-12);
}

TEST(IdealSimulator, PartialMeasurementClbitOrder)
{
    IdealSimulator ideal;
    QuantumCircuit qc(3, 1);
    qc.x(2).measure(2, 0);
    const Pmf pmf = ideal.idealPmf(qc);
    EXPECT_NEAR(pmf.prob(0b1), 1.0, 1e-12);
}

TEST(IdealSimulator, RunSamplesDistribution)
{
    IdealSimulator ideal(7);
    QuantumCircuit qc(1, 1);
    qc.h(0).measure(0, 0);
    const Histogram hist = ideal.run(qc, 100000);
    EXPECT_NEAR(static_cast<double>(hist.count(0)) / 100000.0, 0.5, 0.01);
}

TEST(NoisySimulator, NoNoiseMatchesIdeal)
{
    const DeviceModel dev = tinyDevice();
    NoisySimulatorOptions options;
    options.gateNoise = false;
    options.measurementNoise = false;
    NoisySimulator noiseless(dev, options);
    QuantumCircuit qc(3, 3);
    qc.h(0).cx(0, 1).cx(1, 2).measureAll();
    const Pmf pmf = noiseless.run(qc, 50000).toPmf();
    EXPECT_NEAR(pmf.prob(0b000), 0.5, 0.01);
    EXPECT_NEAR(pmf.prob(0b111), 0.5, 0.01);
    EXPECT_EQ(pmf.support(), 2u);
}

TEST(NoisySimulator, MeasurementNoiseDegradesDeterministicCircuit)
{
    const DeviceModel dev = tinyDevice();
    NoisySimulator noisy(dev, {.seed = 3, .trajectories = 0,
                               .gateNoise = false,
                               .measurementNoise = true});
    QuantumCircuit qc(3, 3);
    qc.x(0).x(1).x(2).measureAll();
    const Pmf pmf = noisy.run(qc, 100000).toPmf();
    // Each bit reads 1 with probability 1 - (0.04 + 0.005*2) = 0.95.
    EXPECT_NEAR(pmf.prob(0b111), 0.95 * 0.95 * 0.95, 0.01);
}

TEST(NoisySimulator, GateNoiseUniformAtHalfFlip)
{
    const DeviceModel dev = tinyDevice();
    // gateNoiseBitFlip = 0.5 reproduces the textbook uniform-outcome
    // depolarizing channel.
    NoisySimulator noisy(dev, {.seed = 5, .trajectories = 0,
                               .gateNoise = true,
                               .measurementNoise = false,
                               .gateNoiseBitFlip = 0.5});
    QuantumCircuit qc(3, 3);
    // 30 CX gates: success (1-0.01)^30 ~ 0.74.
    for (int i = 0; i < 30; ++i)
        qc.cx(0, 1);
    qc.measureAll();
    const Pmf pmf = noisy.run(qc, 200000).toPmf();
    // |000> keeps gate-success mass plus 1/8 of the failures.
    const double p_ok = gateSuccessProbability(qc, dev);
    EXPECT_NEAR(pmf.prob(0b000), p_ok + (1 - p_ok) / 8.0, 0.01);
}

TEST(NoisySimulator, GateNoiseLocalizedByDefault)
{
    const DeviceModel dev = tinyDevice();
    NoisySimulator noisy(dev, {.seed = 6, .trajectories = 0,
                               .gateNoise = true,
                               .measurementNoise = false});
    QuantumCircuit qc(3, 3);
    for (int i = 0; i < 30; ++i)
        qc.cx(0, 1);
    qc.measureAll();
    const Pmf pmf = noisy.run(qc, 200000).toPmf();
    // Default flip rate 0.15: failed trials keep |000> with
    // probability 0.85^3, so the correct outcome retains more mass
    // than under the uniform channel.
    const double p_ok = gateSuccessProbability(qc, dev);
    const double keep = 0.85 * 0.85 * 0.85;
    EXPECT_NEAR(pmf.prob(0b000), p_ok + (1 - p_ok) * keep, 0.01);
    // Single-bit corruption beats triple-bit corruption.
    EXPECT_GT(pmf.prob(0b001), pmf.prob(0b111));
}

TEST(NoisySimulator, RejectsWrongQubitSpace)
{
    const DeviceModel dev = tinyDevice();
    NoisySimulator noisy(dev);
    QuantumCircuit qc(2, 2);
    qc.h(0).measureAll();
    EXPECT_THROW(noisy.run(qc, 10), std::invalid_argument);
}

TEST(NoisySimulator, TrajectoryModeAgreesWithChannelMode)
{
    const DeviceModel dev = tinyDevice();
    QuantumCircuit qc(3, 3);
    qc.h(0).cx(0, 1).cx(1, 2).measureAll();

    NoisySimulator fast(dev, {.seed = 11, .trajectories = 0,
                              .gateNoise = true,
                              .measurementNoise = true});
    NoisySimulator traj(dev, {.seed = 11, .trajectories = 400,
                              .gateNoise = true,
                              .measurementNoise = true});
    const Pmf fast_pmf = fast.run(qc, 120000).toPmf();
    const Pmf traj_pmf = traj.run(qc, 120000).toPmf();
    // The two noise treatments should produce similar distributions
    // (they model the same calibration); allow a loose TVD bound.
    EXPECT_LT(totalVariationDistance(fast_pmf, traj_pmf), 0.05);
}

TEST(NoisySimulator, DeterministicWithSameSeed)
{
    const DeviceModel dev = tinyDevice();
    QuantumCircuit qc(3, 3);
    qc.h(0).cx(0, 1).measureAll();
    NoisySimulator a(dev, {.seed = 9});
    NoisySimulator b(dev, {.seed = 9});
    const Histogram ha = a.run(qc, 5000);
    const Histogram hb = b.run(qc, 5000);
    for (const auto &[outcome, count] : ha.counts())
        EXPECT_EQ(count, hb.count(outcome));
}

} // namespace
} // namespace sim
} // namespace jigsaw
