/**
 * @file
 * Parametric serving tests: the compile-once/re-bind path must be
 * invisible in results. Skeleton hashing and angle re-binding on the
 * circuit layer, parameter expressions in the QASM frontend, skeleton
 * keying of the transpile memo (an angle-differing hit re-binds into
 * the cached routing, bitwise-identical to a cold transpile), the
 * executor's split-prefix evolution cache, and the
 * compileParametric/submitIteration streaming API — single-threaded
 * and under >= 4 concurrent submitters (a CI ThreadSanitizer target).
 */
#include <atomic>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "circuit/qasm.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "compiler/transpiler.h"
#include "core/jigsaw.h"
#include "core/service.h"
#include "device/library.h"
#include "sim/simulators.h"

namespace jigsaw {
namespace {

using circuit::QuantumCircuit;
using core::ServiceProgram;

/** Exact equality: the two PMFs store identical doubles. */
void
expectBitwisePmf(const Pmf &a, const Pmf &b)
{
    ASSERT_EQ(a.nQubits(), b.nQubits());
    ASSERT_EQ(a.support(), b.support());
    for (const auto &[outcome, p] : a.probabilities())
        EXPECT_EQ(p, b.prob(outcome)) << "outcome " << outcome;
}

/** An Ising-style ansatz: H layer, then a diagonal RZZ/RZ tail whose
 *  angles are the parameters — every parametric gate is diagonal, the
 *  iterative-VQA shape the split-prefix cache targets. */
QuantumCircuit
isingAnsatz(int n, const std::vector<double> &angles)
{
    QuantumCircuit qc(n);
    for (int q = 0; q < n; ++q)
        qc.h(q);
    std::size_t k = 0;
    for (int q = 0; q + 1 < n; ++q)
        qc.rzz(angles.at(k++), q, q + 1);
    for (int q = 0; q < n; ++q)
        qc.rz(angles.at(k++), q);
    qc.measureAll();
    return qc;
}

std::vector<double>
anglesFor(int n, double scale)
{
    std::vector<double> angles;
    for (int i = 0; i < 2 * n - 1; ++i)
        angles.push_back(scale * (0.1 + 0.05 * static_cast<double>(i)));
    return angles;
}

// -------------------------------------------------- circuit skeletons

TEST(Skeleton, HashIgnoresAnglesButNotStructure)
{
    const QuantumCircuit a = isingAnsatz(4, anglesFor(4, 1.0));
    const QuantumCircuit b = isingAnsatz(4, anglesFor(4, 2.5));
    EXPECT_EQ(a.skeletonHash(), b.skeletonHash());
    EXPECT_NE(a.structuralHash(), b.structuralHash());

    // Different gate structure: different skeleton.
    QuantumCircuit c = isingAnsatz(4, anglesFor(4, 1.0));
    c.z(0);
    EXPECT_NE(a.skeletonHash(), c.skeletonHash());

    // Barriers stay invisible, matching structuralHash's invariant.
    QuantumCircuit d(4);
    d.h(0).barrier().rz(0.25, 0).measureAll();
    QuantumCircuit e(4);
    e.h(0).rz(0.75, 0).measureAll();
    EXPECT_EQ(d.skeletonHash(), e.skeletonHash());
}

TEST(Skeleton, RebindAnglesRoundTrip)
{
    QuantumCircuit qc = isingAnsatz(4, anglesFor(4, 1.0));
    const std::vector<double> fresh = anglesFor(4, -0.5);
    ASSERT_EQ(qc.parameterCount(), fresh.size());
    qc.rebindAngles(fresh);
    EXPECT_EQ(qc.parameters(), fresh);
    EXPECT_EQ(qc.skeletonHash(),
              isingAnsatz(4, anglesFor(4, 3.0)).skeletonHash());
    EXPECT_THROW(qc.rebindAngles({1.0}), std::invalid_argument);
}

TEST(Skeleton, DiagonalSuffixStart)
{
    // H layer then diagonal tail: the suffix starts after the last H.
    const QuantumCircuit qc = isingAnsatz(3, anglesFor(3, 1.0));
    EXPECT_EQ(qc.diagonalSuffixStart(), 3u);

    // Trailing non-diagonal gate pushes the split past it.
    QuantumCircuit mixed(2);
    mixed.h(0).rz(0.3, 0).x(1).rz(0.7, 1).measureAll();
    EXPECT_EQ(mixed.diagonalSuffixStart(), 3u);

    // All-diagonal circuit splits at 0 (nothing to cache).
    QuantumCircuit diag(2);
    diag.rz(0.1, 0).rzz(0.2, 0, 1).measureAll();
    EXPECT_EQ(diag.diagonalSuffixStart(), 0u);

    // Measures and barriers never move the split.
    QuantumCircuit tail(2);
    tail.h(0).barrier().rz(0.4, 0).measure(0).rz(0.6, 1).measureAll();
    EXPECT_EQ(tail.diagonalSuffixStart(), 1u);
}

TEST(Skeleton, PrefixHashSharedAcrossMeasurementVariants)
{
    // CPM variants of one prefix differ only in measurements (and
    // possibly clbit count): their gate-prefix hashes must collide so
    // they share one split-prefix state.
    QuantumCircuit a(3, 3);
    a.h(0).cx(0, 1).rz(0.5, 2).measureAll();
    QuantumCircuit b(3, 1);
    b.h(0).cx(0, 1).rz(0.5, 2).measure(1, 0);
    EXPECT_EQ(a.prefixHash(3), b.prefixHash(3));
    // Unlike skeletonHash, prefixHash keys on bound angles.
    QuantumCircuit c(3, 3);
    c.h(0).cx(0, 1).rz(0.9, 2).measureAll();
    EXPECT_NE(a.prefixHash(3), c.prefixHash(3));
    EXPECT_THROW(a.prefixHash(99), std::invalid_argument);
}

// ------------------------------------------------------- QASM frontend

TEST(QasmParams, ExpressionsEvaluate)
{
    const QuantumCircuit qc = circuit::fromQasm(R"(
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[2];
        creg c[2];
        rz(pi/4) q[0];
        rz(-3*pi/2) q[1];
        cu1(1.5e-1) q[0],q[1];
        rx(2*(pi - 1)) q[0];
        u3(pi/2, -pi, 0.25) q[1];
    )");
    const std::vector<circuit::Gate> &gates = qc.gates();
    ASSERT_EQ(gates.size(), 5u);
    EXPECT_DOUBLE_EQ(gates[0].params[0], M_PI / 4.0);
    EXPECT_DOUBLE_EQ(gates[1].params[0], -3.0 * M_PI / 2.0);
    EXPECT_DOUBLE_EQ(gates[2].params[0], 0.15);
    EXPECT_DOUBLE_EQ(gates[3].params[0], 2.0 * (M_PI - 1.0));
    EXPECT_DOUBLE_EQ(gates[4].params[0], M_PI / 2.0);
    EXPECT_DOUBLE_EQ(gates[4].params[1], -M_PI);
    EXPECT_DOUBLE_EQ(gates[4].params[2], 0.25);
}

TEST(QasmParams, MalformedExpressionsThrow)
{
    const auto parse = [](const std::string &param) {
        circuit::fromQasm("qreg q[1];\nrz(" + param + ") q[0];\n");
    };
    EXPECT_THROW(parse("pi/0"), std::invalid_argument);
    EXPECT_THROW(parse("(pi"), std::invalid_argument);
    EXPECT_THROW(parse("1.5x"), std::invalid_argument);
    EXPECT_THROW(parse(""), std::invalid_argument);
}

// ----------------------------------------------- transpile memo rebind

TEST(ParametricTranspile, SameSkeletonSharesEntryBitwise)
{
    const device::DeviceModel dev = device::toronto();
    const QuantumCircuit cold_qc = isingAnsatz(5, anglesFor(5, 1.0));
    const QuantumCircuit warm_qc = isingAnsatz(5, anglesFor(5, -2.0));

    compiler::clearTranspileCache();
    const std::uint64_t hits0 = compiler::transpileCacheHits();
    const std::uint64_t misses0 = compiler::transpileCacheMisses();
    const std::uint64_t rebinds0 = compiler::transpileSkeletonRebinds();

    const compiler::CompiledCircuit first =
        compiler::transpileCached(cold_qc, dev);
    EXPECT_EQ(compiler::transpileCacheMisses() - misses0, 1u);

    // Identical binding: plain hit, no rebind.
    const compiler::CompiledCircuit again =
        compiler::transpileCached(cold_qc, dev);
    EXPECT_EQ(compiler::transpileCacheHits() - hits0, 1u);
    EXPECT_EQ(again.physical.structuralHash(),
              first.physical.structuralHash());

    // Same skeleton, fresh angles: served by re-bind...
    const compiler::CompiledCircuit rebound =
        compiler::transpileCached(warm_qc, dev);
    EXPECT_EQ(compiler::transpileCacheHits() - hits0, 2u);
    EXPECT_EQ(compiler::transpileSkeletonRebinds() - rebinds0, 1u);
    EXPECT_EQ(compiler::transpileCacheMisses() - misses0, 1u);

    // ...and bitwise-identical to a cold transpile of the bound
    // circuit: same physical gates and angles, layouts, and EPS.
    const compiler::CompiledCircuit cold =
        compiler::transpile(warm_qc, dev);
    EXPECT_EQ(rebound.physical.structuralHash(),
              cold.physical.structuralHash());
    EXPECT_EQ(rebound.physical.toString(), cold.physical.toString());
    EXPECT_EQ(rebound.initialLayout.logicalToPhysical(),
              cold.initialLayout.logicalToPhysical());
    EXPECT_EQ(rebound.finalLayout.logicalToPhysical(),
              cold.finalLayout.logicalToPhysical());
    EXPECT_EQ(rebound.swapCount, cold.swapCount);
    EXPECT_EQ(rebound.eps, cold.eps);
}

// --------------------------------------- executor split-prefix cache

TEST(ParametricExecutor, SplitPrefixCacheHitsAndStaysBitwise)
{
    const device::DeviceModel dev = device::toronto();
    // Executors take physical-space circuits; route both bindings
    // with the same deterministic transpile (they share a skeleton,
    // so the routings are structurally identical).
    const QuantumCircuit qc_a =
        compiler::transpile(isingAnsatz(5, anglesFor(5, 1.0)), dev)
            .physical;
    const QuantumCircuit qc_b =
        compiler::transpile(isingAnsatz(5, anglesFor(5, -0.7)), dev)
            .physical;
    const std::uint64_t trials = 2000;

    // Caller-owned draw streams (external sampling) pin the sampled
    // histograms to the evolved PMFs alone — exactly how the merged
    // service path keeps shared executors deterministic. Each binding
    // replays the same Rng seed on both executors, so any divergence
    // below can only come from the evolutions themselves.
    // Reference: each binding on its own fresh executor (all cold).
    sim::NoisySimulator ref_a(dev, {.seed = 7});
    Rng ref_draws_a(11);
    const Histogram hist_a = ref_a.run(qc_a, trials, ref_draws_a);
    sim::NoisySimulator ref_b(dev, {.seed = 7});
    Rng ref_draws_b(22);
    const Histogram hist_b = ref_b.run(qc_b, trials, ref_draws_b);

    // Warm path: both bindings share one executor. The second run's
    // evolution reuses the first's split-prefix state (the H layer is
    // angle-free) — only the re-bound diagonal tail is re-applied.
    sim::NoisySimulator shared(dev, {.seed = 7});
    Rng warm_draws_a(11);
    const Histogram warm_a = shared.run(qc_a, trials, warm_draws_a);
    const std::uint64_t hits_after_a = shared.skeletonCacheHits();
    const std::uint64_t misses_after_a = shared.skeletonCacheMisses();
    EXPECT_GT(misses_after_a, 0u); // qualifying circuits split cold too
    Rng warm_draws_b(22);
    const Histogram warm_b = shared.run(qc_b, trials, warm_draws_b);
    EXPECT_GT(shared.skeletonCacheHits(), hits_after_a);
    EXPECT_EQ(shared.skeletonCacheMisses(), misses_after_a);

    // Per-binding results never depend on the cache's temperature.
    EXPECT_EQ(warm_a.counts(), hist_a.counts());
    EXPECT_EQ(warm_b.counts(), hist_b.counts());

    const sim::ExecutorCounters counters = shared.counters();
    EXPECT_EQ(counters.prefixStateHits, shared.skeletonCacheHits());
    EXPECT_EQ(counters.prefixStateMisses, shared.skeletonCacheMisses());
}

// ------------------------------------------- streaming parametric API

TEST(ParametricService, CompileOnceRebindMatchesSequential)
{
    const device::DeviceModel dev = device::toronto();
    const int n = 5;
    const std::uint64_t trials = 1500;
    const int iterations = 4;

    compiler::clearTranspileCache();
    core::JigsawService service;
    const core::ParametricHandle handle = service.compileParametric(
        ServiceProgram(isingAnsatz(n, anglesFor(n, 1.0)), dev, trials));

    const std::uint64_t hits0 = compiler::transpileCacheHits();
    const std::uint64_t misses0 = compiler::transpileCacheMisses();

    std::vector<core::JobHandle> jobs;
    for (int it = 0; it < iterations; ++it) {
        const core::SubmitResult submitted = service.submitIteration(
            handle, anglesFor(n, 0.3 * static_cast<double>(it + 1)));
        ASSERT_TRUE(submitted.admitted);
        jobs.push_back(submitted.handle);
    }
    std::vector<Pmf> outputs;
    for (const core::JobHandle &job : jobs)
        outputs.push_back(service.wait(job).output);

    // compileParametric prewarmed every entry: the iterations' compile
    // stages were pure cache hits, no transpile ran.
    EXPECT_EQ(compiler::transpileCacheMisses(), misses0);
    EXPECT_GT(compiler::transpileCacheHits(), hits0);

    const core::StreamStats stats = service.streamStats();
    EXPECT_EQ(stats.parametricPrograms, 1u);
    EXPECT_EQ(stats.parametricIterations,
              static_cast<std::size_t>(iterations));
    EXPECT_GT(stats.transpileRebinds, 0u);
    EXPECT_GT(stats.prefixStateHits, 0u);

    // Bitwise identity per iteration against sequential runJigsaw of
    // the re-bound program on a fresh executor.
    for (int it = 0; it < iterations; ++it) {
        const QuantumCircuit bound = isingAnsatz(
            n, anglesFor(n, 0.3 * static_cast<double>(it + 1)));
        sim::NoisySimulator fresh(dev, {.seed = 1234});
        const Pmf expected =
            core::runJigsaw(bound, dev, fresh, trials).output;
        expectBitwisePmf(outputs[static_cast<std::size_t>(it)],
                         expected);
    }

    EXPECT_THROW(service.submitIteration(core::ParametricHandle{999},
                                         anglesFor(n, 1.0)),
                 std::invalid_argument);
}

TEST(ParametricService, RejectsParameterlessPrototype)
{
    QuantumCircuit qc(3);
    qc.h(0).cx(0, 1).cx(1, 2).measureAll();
    core::JigsawService service;
    EXPECT_THROW(service.compileParametric(ServiceProgram(
                     qc, device::toronto(), 1000)),
                 std::invalid_argument);
}

TEST(ParametricService, ConcurrentSubmittersStayBitwise)
{
    const device::DeviceModel dev = device::toronto();
    const int n = 5;
    const std::uint64_t trials = 1200;
    const int submitters = 4;
    const int per_submitter = 3;

    compiler::clearTranspileCache();
    core::JigsawService service;
    const core::ParametricHandle handle = service.compileParametric(
        ServiceProgram(isingAnsatz(n, anglesFor(n, 1.0)), dev, trials));

    const auto angle_scale = [](int submitter, int iteration) {
        return 0.2 + 0.15 * static_cast<double>(submitter) +
               0.05 * static_cast<double>(iteration);
    };

    std::vector<std::vector<core::JobHandle>> jobs(
        static_cast<std::size_t>(submitters));
    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    for (int s = 0; s < submitters; ++s) {
        threads.emplace_back([&, s] {
            for (int it = 0; it < per_submitter; ++it) {
                const core::SubmitResult submitted =
                    service.submitIteration(
                        handle, anglesFor(n, angle_scale(s, it)));
                if (!submitted.admitted) {
                    failed = true;
                    return;
                }
                jobs[static_cast<std::size_t>(s)].push_back(
                    submitted.handle);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    ASSERT_FALSE(failed.load());

    for (int s = 0; s < submitters; ++s) {
        for (int it = 0; it < per_submitter; ++it) {
            const Pmf output =
                service
                    .wait(jobs[static_cast<std::size_t>(s)]
                              [static_cast<std::size_t>(it)])
                    .output;
            const QuantumCircuit bound =
                isingAnsatz(n, anglesFor(n, angle_scale(s, it)));
            sim::NoisySimulator fresh(dev, {.seed = 1234});
            const Pmf expected =
                core::runJigsaw(bound, dev, fresh, trials).output;
            expectBitwisePmf(output, expected);
        }
    }

    const core::StreamStats stats = service.streamStats();
    EXPECT_EQ(stats.parametricIterations,
              static_cast<std::size_t>(submitters * per_submitter));
    EXPECT_GT(stats.prefixStateHits, 0u);
}

} // namespace
} // namespace jigsaw
