#include "compiler/cpm_batch.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "compiler/placement.h"
#include "compiler/sabre.h"
#include "sim/eps.h"

namespace jigsaw {
namespace compiler {

CpmRecompiler::CpmRecompiler(const circuit::QuantumCircuit &logical,
                             device::DeviceModel dev,
                             TranspileOptions options)
    : logical_(logical), logicalPrefix_(logical.withoutMeasurements()),
      dev_(std::move(dev)), options_(std::move(options)),
      starts_(rankedStartQubits(dev_, options_.noiseAware))
{
    const int n_candidates =
        std::min<int>(options_.numCandidates,
                      static_cast<int>(starts_.size()));
    fatalIf(n_candidates < 1,
            "CpmRecompiler: need at least one candidate");
    starts_.resize(static_cast<std::size_t>(n_candidates));
}

const CpmRecompiler::RoutedPrefix &
CpmRecompiler::routedFor(const Layout &initial)
{
    const auto it = routedByLayout_.find(initial.logicalToPhysical());
    if (it != routedByLayout_.end()) {
        ++routingsReused_;
        return it->second;
    }
    ++routingsComputed_;
    RoutedCircuit routed = sabreRoute(logicalPrefix_, dev_.topology(),
                                      initial, options_.sabre);
    RoutedPrefix prefix{std::move(routed.physical), routed.finalLayout,
                        routed.swapCount, 0.0};
    prefix.gateSuccess = sim::gateSuccessProbability(prefix.physical, dev_);
    return routedByLayout_
        .emplace(initial.logicalToPhysical(), std::move(prefix))
        .first->second;
}

CompiledCircuit
CpmRecompiler::finishCandidate(const Layout &initial,
                               const std::vector<int> &logical_qubits)
{
    const RoutedPrefix &prefix = routedFor(initial);

    // Materialize the CPM's physical circuit: the routed prefix with
    // this subset's measurements appended against the final layout —
    // exactly what sabreRoute emits for the CPM circuit, where the
    // measurements are terminal and clbit j reads logical_qubits[j].
    circuit::QuantumCircuit physical(
        dev_.nQubits(), static_cast<int>(logical_qubits.size()));
    for (const circuit::Gate &g : prefix.physical.gates())
        physical.append(g);
    for (std::size_t j = 0; j < logical_qubits.size(); ++j) {
        physical.measure(prefix.finalLayout.physicalOf(logical_qubits[j]),
                         static_cast<int>(j));
    }

    CompiledCircuit out{std::move(physical), initial, prefix.finalLayout,
                        prefix.swapCount, 0.0, 0.0, 0.0};
    // The gate prefix is measurement-independent, so its success
    // probability is shared by every subset routed through this
    // layout; only the readout term is per-subset.
    out.gateSuccess = prefix.gateSuccess;
    out.measurementSuccess =
        sim::measurementSuccessProbability(out.physical, dev_);
    out.eps = out.gateSuccess * out.measurementSuccess;
    return out;
}

CompiledCircuit
CpmRecompiler::recompile(const std::vector<int> &logical_qubits)
{
    const circuit::QuantumCircuit cpm_logical =
        logical_.withMeasurementSubset(logical_qubits);

    // Candidate generation mirrors transpile()'s compileCandidates:
    // both greedy placement families per start, the distance-only one
    // added only when it differs from the noise-aware one. Candidate
    // order is preserved so tie-breaking matches transpile() exactly.
    std::vector<CompiledCircuit> candidates;
    candidates.reserve(2 * starts_.size());
    for (int start : starts_) {
        const Layout aware = greedyPlacement(cpm_logical, dev_, start,
                                             options_.noiseAware);
        candidates.push_back(finishCandidate(aware, logical_qubits));
        if (options_.noiseAware) {
            const Layout tight =
                greedyPlacement(cpm_logical, dev_, start, false);
            if (tight.logicalToPhysical() != aware.logicalToPhysical()) {
                candidates.push_back(
                    finishCandidate(tight, logical_qubits));
            }
        }
    }

    // Selection is copied verbatim from transpile(): prefer candidates
    // within the SWAP budget (CPM recompilation rule), best EPS wins.
    auto better = [this](const CompiledCircuit &a,
                         const CompiledCircuit &b) {
        if (options_.noiseAware)
            return a.eps > b.eps;
        if (a.swapCount != b.swapCount)
            return a.swapCount < b.swapCount;
        return a.eps > b.eps;
    };
    const CompiledCircuit *best = nullptr;
    if (options_.maxSwaps) {
        for (const CompiledCircuit &c : candidates) {
            if (c.swapCount <= *options_.maxSwaps &&
                (!best || better(c, *best))) {
                best = &c;
            }
        }
    }
    if (!best) {
        for (const CompiledCircuit &c : candidates) {
            if (!best || better(c, *best))
                best = &c;
        }
    }
    return *best;
}

} // namespace compiler
} // namespace jigsaw
