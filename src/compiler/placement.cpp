#include "compiler/placement.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/error.h"

namespace jigsaw {
namespace compiler {

namespace {

/** Average two-qubit error over the edges incident to @p p. */
double
incidentEdgeError(const device::DeviceModel &dev, int p)
{
    const device::Topology &topo = dev.topology();
    const auto &neighbors = topo.neighbors(p);
    if (neighbors.empty())
        return 1.0;
    double total = 0.0;
    for (int nb : neighbors)
        total += dev.calibration().edgeError(topo.edgeIndex(p, nb));
    return total / static_cast<double>(neighbors.size());
}

/** Converts an error rate into coupling-distance units for blending
 *  with the hop-count term of the placement cost. */
constexpr double errorToHops = 10.0;

} // namespace

std::vector<int>
rankedStartQubits(const device::DeviceModel &dev, bool noise_aware)
{
    const device::Topology &topo = dev.topology();
    std::vector<int> order(static_cast<std::size_t>(topo.nQubits()));
    std::iota(order.begin(), order.end(), 0);

    std::vector<double> cost(order.size());
    for (int p = 0; p < topo.nQubits(); ++p) {
        const double degree =
            static_cast<double>(topo.neighbors(p).size());
        double c = -0.1 * degree;
        if (noise_aware) {
            c += 5.0 * incidentEdgeError(dev, p) +
                 2.0 * dev.calibration().qubit(p).meanReadoutError();
        }
        cost[static_cast<std::size_t>(p)] = c;
    }

    std::sort(order.begin(), order.end(), [&cost](int a, int b) {
        const double ca = cost[static_cast<std::size_t>(a)];
        const double cb = cost[static_cast<std::size_t>(b)];
        if (ca != cb)
            return ca < cb;
        return a < b;
    });
    return order;
}

Layout
greedyPlacement(const circuit::QuantumCircuit &logical,
                const device::DeviceModel &dev, int start_physical,
                bool noise_aware)
{
    const device::Topology &topo = dev.topology();
    const int n_logical = logical.nQubits();
    fatalIf(n_logical > topo.nQubits(),
            "greedyPlacement: program larger than device");

    // Interaction weights and the set of measured logical qubits.
    std::vector<std::vector<double>> weight(
        static_cast<std::size_t>(n_logical),
        std::vector<double>(static_cast<std::size_t>(n_logical), 0.0));
    std::vector<bool> is_measured(static_cast<std::size_t>(n_logical),
                                  false);
    for (const circuit::Gate &g : logical.gates()) {
        if (g.isTwoQubit()) {
            weight[static_cast<std::size_t>(g.qubits[0])]
                  [static_cast<std::size_t>(g.qubits[1])] += 1.0;
            weight[static_cast<std::size_t>(g.qubits[1])]
                  [static_cast<std::size_t>(g.qubits[0])] += 1.0;
        } else if (g.isMeasure()) {
            is_measured[static_cast<std::size_t>(g.qubits[0])] = true;
        }
    }

    // Place logical qubits in order of total interaction weight.
    std::vector<int> logical_order(static_cast<std::size_t>(n_logical));
    std::iota(logical_order.begin(), logical_order.end(), 0);
    std::vector<double> total_weight(static_cast<std::size_t>(n_logical),
                                     0.0);
    for (int l = 0; l < n_logical; ++l) {
        total_weight[static_cast<std::size_t>(l)] = std::accumulate(
            weight[static_cast<std::size_t>(l)].begin(),
            weight[static_cast<std::size_t>(l)].end(), 0.0);
    }
    std::sort(logical_order.begin(), logical_order.end(),
              [&total_weight](int a, int b) {
                  const double wa = total_weight[static_cast<std::size_t>(a)];
                  const double wb = total_weight[static_cast<std::size_t>(b)];
                  if (wa != wb)
                      return wa > wb;
                  return a < b;
              });

    std::vector<int> physical_of(static_cast<std::size_t>(n_logical), -1);
    std::vector<bool> used(static_cast<std::size_t>(topo.nQubits()), false);

    auto qubit_cost = [&](int l, int p) {
        double c = 0.0;
        if (noise_aware) {
            c += errorToHops * incidentEdgeError(dev, p);
            if (is_measured[static_cast<std::size_t>(l)]) {
                c += errorToHops *
                     dev.calibration().qubit(p).meanReadoutError();
            }
        }
        return c;
    };

    bool first = true;
    for (int l : logical_order) {
        if (first) {
            fatalIf(start_physical < 0 ||
                    start_physical >= topo.nQubits(),
                    "greedyPlacement: invalid start qubit");
            physical_of[static_cast<std::size_t>(l)] = start_physical;
            used[static_cast<std::size_t>(start_physical)] = true;
            first = false;
            continue;
        }
        double best_cost = std::numeric_limits<double>::infinity();
        int best_p = -1;
        for (int p = 0; p < topo.nQubits(); ++p) {
            if (used[static_cast<std::size_t>(p)])
                continue;
            double c = qubit_cost(l, p);
            bool reachable = true;
            for (int m = 0; m < n_logical; ++m) {
                const double w = weight[static_cast<std::size_t>(l)]
                                       [static_cast<std::size_t>(m)];
                const int pm = physical_of[static_cast<std::size_t>(m)];
                if (w <= 0.0 || pm < 0)
                    continue;
                const int d = topo.distance(p, pm);
                if (d < 0) {
                    reachable = false;
                    break;
                }
                c += w * static_cast<double>(d - 1);
            }
            if (!reachable)
                continue;
            // Anchor isolated qubits near the start to keep the
            // program in one region of the device.
            if (c == qubit_cost(l, p)) {
                c += 0.01 * static_cast<double>(
                                topo.distance(p, start_physical));
            }
            if (c < best_cost) {
                best_cost = c;
                best_p = p;
            }
        }
        fatalIf(best_p < 0, "greedyPlacement: no physical qubit available");
        physical_of[static_cast<std::size_t>(l)] = best_p;
        used[static_cast<std::size_t>(best_p)] = true;
    }

    return Layout(std::move(physical_of), topo.nQubits());
}

} // namespace compiler
} // namespace jigsaw
