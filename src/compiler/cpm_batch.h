/**
 * @file
 * Batched CPM recompilation (ROADMAP: "Batched CPM recompilation").
 *
 * JigSaw recompiles one Circuit with Partial Measurements per subset
 * (Section 4.2.2). Every CPM of a run shares the logical circuit's
 * gate prefix — the candidates differ only in placement and in which
 * qubits are measured — and SABRE routing depends only on that prefix
 * and the initial layout, never on the measurement set (measurements
 * are emitted against the final layout after routing). A full
 * transpile() per CPM therefore re-routes the same (prefix, layout)
 * pairs over and over: the distance-only placement family is even
 * measurement-independent, so its layouts repeat across every subset.
 *
 * CpmRecompiler exploits this: it routes the measureless prefix once
 * per distinct initial layout (memoized), computes the gate-success
 * probability once per routing, and per subset only re-emits the
 * measurement gates and recomputes the (cheap) readout success. The
 * selected CompiledCircuit is identical to what transpile() would
 * return for the CPM circuit with the same options.
 */
#ifndef JIGSAW_COMPILER_CPM_BATCH_H
#define JIGSAW_COMPILER_CPM_BATCH_H

#include <cstdint>
#include <map>
#include <vector>

#include "circuit/circuit.h"
#include "compiler/transpiler.h"
#include "device/device_model.h"

namespace jigsaw {
namespace compiler {

/**
 * Recompiles the CPMs of one logical circuit, sharing SABRE routing
 * state across every subset's placement candidates.
 *
 * Not thread-safe: each concurrent session owns its own instance (the
 * routing memo is per-logical-circuit, so there is nothing to share
 * across programs).
 */
class CpmRecompiler
{
  public:
    /**
     * @p logical is the fully measured program; @p options should
     * already carry the CPM rules (maxSwaps = the global compilation's
     * SWAP count). The device is copied so the recompiler owns its
     * lifetime.
     */
    CpmRecompiler(const circuit::QuantumCircuit &logical,
                  device::DeviceModel dev, TranspileOptions options);

    /**
     * Compile the CPM measuring @p logical_qubits (classical bits
     * 0..k-1, in the order given). Returns the same candidate
     * transpile(logical.withMeasurementSubset(logical_qubits), dev,
     * options) would select.
     */
    CompiledCircuit recompile(const std::vector<int> &logical_qubits);

    /** SABRE routings actually computed (distinct initial layouts). */
    std::uint64_t routingsComputed() const { return routingsComputed_; }

    /** Placement candidates served from the routing memo. */
    std::uint64_t routingsReused() const { return routingsReused_; }

  private:
    /** One routed prefix: everything measurement-independent. */
    struct RoutedPrefix
    {
        circuit::QuantumCircuit physical; ///< Routed gates, no measures.
        Layout finalLayout;               ///< Layout after the last gate.
        int swapCount;                    ///< SWAPs inserted by routing.
        double gateSuccess;               ///< Gate-only success prob.
    };

    const RoutedPrefix &routedFor(const Layout &initial);
    CompiledCircuit finishCandidate(const Layout &initial,
                                    const std::vector<int> &logical_qubits);

    circuit::QuantumCircuit logical_;       ///< Fully measured program.
    circuit::QuantumCircuit logicalPrefix_; ///< Measures stripped.
    device::DeviceModel dev_;
    TranspileOptions options_;
    std::vector<int> starts_; ///< Placement seeds (already truncated).
    std::map<std::vector<int>, RoutedPrefix> routedByLayout_;
    std::uint64_t routingsComputed_ = 0;
    std::uint64_t routingsReused_ = 0;
};

} // namespace compiler
} // namespace jigsaw

#endif // JIGSAW_COMPILER_CPM_BATCH_H
