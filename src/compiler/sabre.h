/**
 * @file
 * SABRE SWAP routing (Li, Ding, Xie; ASPLOS 2019).
 *
 * Given a logical circuit and an initial layout, inserts SWAPs so
 * every two-qubit gate acts on coupled physical qubits. The heuristic
 * scores candidate SWAPs by the summed coupling distance of the front
 * layer plus a discounted lookahead window, with a decay term that
 * discourages ping-ponging the same qubits.
 */
#ifndef JIGSAW_COMPILER_SABRE_H
#define JIGSAW_COMPILER_SABRE_H

#include "circuit/circuit.h"
#include "compiler/layout.h"
#include "device/topology.h"

namespace jigsaw {
namespace compiler {

/** Routed program: physical circuit plus layout bookkeeping. */
struct RoutedCircuit
{
    circuit::QuantumCircuit physical; ///< Over device qubits, routed.
    Layout initialLayout;             ///< Layout before the first gate.
    Layout finalLayout;               ///< Layout after the last gate.
    int swapCount = 0;                ///< SWAPs inserted by routing.
};

/** SABRE tuning knobs (defaults follow the published heuristic). */
struct SabreOptions
{
    double lookaheadWeight = 0.5; ///< Weight of the extended set term.
    int lookaheadDepth = 20;      ///< Size of the extended set.
    double decayStep = 0.001;     ///< Decay increment per SWAP.
    int maxSwapsPerGate = 1000;   ///< Loop guard.
};

/**
 * Route @p logical onto @p topology starting from @p initial_layout.
 * Measurements are emitted against the final layout (they must be
 * terminal). Barriers are dropped.
 */
RoutedCircuit sabreRoute(const circuit::QuantumCircuit &logical,
                         const device::Topology &topology,
                         const Layout &initial_layout,
                         const SabreOptions &options = {});

} // namespace compiler
} // namespace jigsaw

#endif // JIGSAW_COMPILER_SABRE_H
