#include "compiler/transpiler.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/error.h"
#include "compiler/placement.h"
#include "sim/eps.h"

namespace jigsaw {
namespace compiler {

namespace {

CompiledCircuit
finishCandidate(RoutedCircuit routed, const device::DeviceModel &dev)
{
    CompiledCircuit out{std::move(routed.physical), routed.initialLayout,
                        routed.finalLayout, routed.swapCount, 0.0, 0.0,
                        0.0};
    out.gateSuccess = sim::gateSuccessProbability(out.physical, dev);
    out.measurementSuccess =
        sim::measurementSuccessProbability(out.physical, dev);
    out.eps = out.gateSuccess * out.measurementSuccess;
    return out;
}

std::vector<CompiledCircuit>
compileCandidates(const circuit::QuantumCircuit &logical,
                  const device::DeviceModel &dev,
                  const TranspileOptions &options)
{
    const std::vector<int> starts =
        rankedStartQubits(dev, options.noiseAware);
    const int n_candidates =
        std::min<int>(options.numCandidates,
                      static_cast<int>(starts.size()));
    fatalIf(n_candidates < 1, "transpile: need at least one candidate");

    std::vector<CompiledCircuit> candidates;
    candidates.reserve(static_cast<std::size_t>(2 * n_candidates));
    for (int i = 0; i < n_candidates; ++i) {
        const int start = starts[static_cast<std::size_t>(i)];
        // Both greedy families per start: the noise-aware placement
        // chases low-error qubits, the distance-only placement keeps
        // the routing tight; with spatially scattered good qubits
        // either one can win, so the selector sees both.
        const Layout aware =
            greedyPlacement(logical, dev, start, options.noiseAware);
        candidates.push_back(finishCandidate(
            sabreRoute(logical, dev.topology(), aware, options.sabre),
            dev));
        if (options.noiseAware) {
            const Layout tight =
                greedyPlacement(logical, dev, start, false);
            if (tight.logicalToPhysical() !=
                aware.logicalToPhysical()) {
                candidates.push_back(finishCandidate(
                    sabreRoute(logical, dev.topology(), tight,
                               options.sabre),
                    dev));
            }
        }
    }
    return candidates;
}

// ------------------------------------------------ transpile memoization

/** FNV-1a step over one 64-bit word. */
std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    h ^= v;
    h *= 1099511628211ULL;
    return h;
}

std::uint64_t
mixString(std::uint64_t h, const std::string &s)
{
    for (char c : s)
        h = mix(h, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    return h;
}

std::uint64_t
transpileKey(const circuit::QuantumCircuit &logical,
             const device::DeviceModel &dev,
             const TranspileOptions &options)
{
    // Keyed on the parameter-invariant skeleton, not the full
    // structural hash: placement, SABRE routing, and the EPS selector
    // never read rotation angles, so every iteration of a variational
    // loop shares one compilation and only re-binds its angles.
    std::uint64_t h = 14695981039346656037ULL;
    h = mix(h, logical.skeletonHash());
    h = mixString(h, dev.name());
    h = mix(h, static_cast<std::uint64_t>(dev.nQubits()));
    // The full edge list, not just its size: same-named devices with
    // equally many but differently placed couplings must not collide.
    for (const auto &[a, b] : dev.topology().edges()) {
        h = mix(h, static_cast<std::uint64_t>(a));
        h = mix(h, static_cast<std::uint64_t>(b));
    }
    h = mix(h, static_cast<std::uint64_t>(options.numCandidates));
    h = mix(h, options.noiseAware ? 1 : 0);
    h = mix(h, options.maxSwaps ? 1 : 0);
    h = mix(h, options.maxSwaps
                   ? static_cast<std::uint64_t>(*options.maxSwaps)
                   : 0);
    h = mix(h, std::bit_cast<std::uint64_t>(options.sabre.lookaheadWeight));
    h = mix(h, static_cast<std::uint64_t>(options.sabre.lookaheadDepth));
    h = mix(h, std::bit_cast<std::uint64_t>(options.sabre.decayStep));
    h = mix(h, static_cast<std::uint64_t>(options.sabre.maxSwapsPerGate));
    return h;
}

/**
 * Physical-slot permutation of a skeleton entry: slots[k] is the flat
 * logical parameter index feeding the k-th flat physical parameter
 * slot. SABRE emits ready gates out of program order, so the mapping
 * is a skeleton-determined permutation, recovered lazily (first
 * angle-differing hit) by re-routing a slot-tagged copy of the logical
 * circuit with the entry's own initial layout. ok=false records a
 * failed recovery (the sanity check tripped): such entries fall back
 * to a full recompile per binding instead of returning wrong angles.
 */
struct RebindPerm
{
    bool ok = false;
    std::vector<std::size_t> slots;
};

/** One memo entry: the compiled circuit, the logical binding it was
 *  compiled under, and the lazily recovered rebind permutation. */
struct TranspileEntry
{
    CompiledCircuit compiled;
    std::vector<double> binding; ///< logical.parameters() at insert.
    std::shared_ptr<const RebindPerm> perm;
};

std::mutex transpileCacheMutex;
std::unordered_map<std::uint64_t, TranspileEntry> transpileCache;
std::atomic<std::uint64_t> transpileHits{0};
std::atomic<std::uint64_t> transpileMisses{0};
std::atomic<std::uint64_t> transpileRebinds{0};

/**
 * Recover the physical-slot permutation for @p entry: tag every
 * logical parameter with its flat index, re-route with the entry's
 * initial layout (routing never reads parameter values, so the tagged
 * route reproduces the compiled physical structure exactly), and read
 * the tags back off the routed gates. Any structural disagreement
 * fails the recovery (ok=false) rather than guessing.
 */
RebindPerm
recoverRebindPerm(const circuit::QuantumCircuit &logical,
                  const device::DeviceModel &dev,
                  const TranspileOptions &options,
                  const CompiledCircuit &compiled)
{
    RebindPerm perm;
    const std::size_t n_logical = logical.parameterCount();
    std::vector<double> tags(n_logical);
    for (std::size_t i = 0; i < n_logical; ++i)
        tags[i] = static_cast<double>(i);
    circuit::QuantumCircuit tagged = logical;
    tagged.rebindAngles(tags);
    const RoutedCircuit routed = sabreRoute(
        tagged, dev.topology(), compiled.initialLayout, options.sabre);
    if (routed.physical.skeletonHash() !=
        compiled.physical.skeletonHash()) {
        return perm; // ok=false: re-route did not reproduce the entry
    }
    perm.slots.reserve(routed.physical.parameterCount());
    for (const circuit::Gate &g : routed.physical.gates()) {
        for (double p : g.params) {
            const double r = std::round(p);
            if (r != p || r < 0.0 ||
                r >= static_cast<double>(n_logical)) {
                perm.slots.clear();
                return perm; // ok=false: a non-tag parameter leaked in
            }
            perm.slots.push_back(static_cast<std::size_t>(r));
        }
    }
    perm.ok = true;
    return perm;
}

} // namespace

CompiledCircuit
transpileCachedVia(const circuit::QuantumCircuit &logical,
                   const device::DeviceModel &dev,
                   const TranspileOptions &options,
                   const std::function<CompiledCircuit()> &compute)
{
    const std::uint64_t key = transpileKey(logical, dev, options);
    const std::vector<double> binding = logical.parameters();

    std::optional<CompiledCircuit> cached;
    std::shared_ptr<const RebindPerm> perm;
    {
        std::lock_guard<std::mutex> lock(transpileCacheMutex);
        const auto it = transpileCache.find(key);
        if (it != transpileCache.end()) {
            if (it->second.binding == binding) {
                ++transpileHits;
                return it->second.compiled;
            }
            cached = it->second.compiled;
            perm = it->second.perm;
        }
    }
    if (cached) {
        // Same skeleton, different angles: re-bind into the cached
        // compilation instead of recompiling. EPS and layouts are
        // angle-independent, so only the parameter values move.
        if (!perm) {
            auto recovered = std::make_shared<RebindPerm>(
                recoverRebindPerm(logical, dev, options, *cached));
            std::lock_guard<std::mutex> lock(transpileCacheMutex);
            const auto it = transpileCache.find(key);
            if (it != transpileCache.end()) {
                if (!it->second.perm)
                    it->second.perm = std::move(recovered);
                perm = it->second.perm;
            } else {
                perm = std::move(recovered); // entry was cleared; use ours
            }
        }
        if (perm->ok) {
            ++transpileHits;
            ++transpileRebinds;
            std::vector<double> physical(perm->slots.size());
            for (std::size_t k = 0; k < perm->slots.size(); ++k)
                physical[k] = binding[perm->slots[k]];
            cached->physical.rebindAngles(physical);
            return std::move(*cached);
        }
        // Unrecoverable permutation: full recompile below (counted as
        // a miss), without clobbering the cached entry.
        ++transpileMisses;
        return compute();
    }
    // Compile outside the lock: deterministic for a fixed binding.
    // First insert wins; a racing thread that lost with a different
    // binding must return its own compilation, not the winner's.
    ++transpileMisses;
    CompiledCircuit compiled = compute();
    {
        std::lock_guard<std::mutex> lock(transpileCacheMutex);
        transpileCache.emplace(
            key, TranspileEntry{compiled, std::move(binding), nullptr});
    }
    return compiled;
}

CompiledCircuit
transpileCached(const circuit::QuantumCircuit &logical,
                const device::DeviceModel &dev,
                const TranspileOptions &options)
{
    return transpileCachedVia(logical, dev, options, [&] {
        return transpile(logical, dev, options);
    });
}

std::uint64_t
transpileCacheHits()
{
    return transpileHits.load();
}

std::uint64_t
transpileCacheMisses()
{
    return transpileMisses.load();
}

std::uint64_t
transpileSkeletonRebinds()
{
    return transpileRebinds.load();
}

void
clearTranspileCache()
{
    std::lock_guard<std::mutex> lock(transpileCacheMutex);
    transpileCache.clear();
}

CompiledCircuit
transpile(const circuit::QuantumCircuit &logical,
          const device::DeviceModel &dev, const TranspileOptions &options)
{
    std::vector<CompiledCircuit> candidates =
        compileCandidates(logical, dev, options);

    auto better = [&options](const CompiledCircuit &a,
                             const CompiledCircuit &b) {
        if (options.noiseAware)
            return a.eps > b.eps;
        if (a.swapCount != b.swapCount)
            return a.swapCount < b.swapCount;
        return a.eps > b.eps;
    };

    // CPM recompilation rule (paper Section 4.2.2): prefer candidates
    // within the SWAP budget of the base compilation — among them the
    // best EPS wins, which for a CPM is dominated by where its few
    // measurements land; fall back to best-overall EPS when no
    // candidate fits the budget.
    const CompiledCircuit *best = nullptr;
    if (options.maxSwaps) {
        for (const CompiledCircuit &c : candidates) {
            if (c.swapCount <= *options.maxSwaps &&
                (!best || better(c, *best))) {
                best = &c;
            }
        }
    }
    if (!best) {
        for (const CompiledCircuit &c : candidates) {
            if (!best || better(c, *best))
                best = &c;
        }
    }
    return *best;
}

std::vector<CompiledCircuit>
transpileEnsemble(const circuit::QuantumCircuit &logical,
                  const device::DeviceModel &dev, int k,
                  const TranspileOptions &options)
{
    fatalIf(k < 1, "transpileEnsemble: k must be positive");
    TranspileOptions opts = options;
    opts.numCandidates = std::max(options.numCandidates, 4 * k);
    std::vector<CompiledCircuit> candidates =
        compileCandidates(logical, dev, opts);

    std::sort(candidates.begin(), candidates.end(),
              [](const CompiledCircuit &a, const CompiledCircuit &b) {
                  return a.eps > b.eps;
              });

    // Greedy diverse selection: accept a candidate when its physical
    // footprint differs enough from every accepted mapping, so the
    // ensemble "orchestrates dissimilar mistakes".
    auto footprint = [](const CompiledCircuit &c) {
        std::vector<int> qubits = c.initialLayout.logicalToPhysical();
        std::sort(qubits.begin(), qubits.end());
        return qubits;
    };
    auto overlap = [](const std::vector<int> &a, const std::vector<int> &b) {
        std::size_t common = 0;
        for (int q : a) {
            if (std::binary_search(b.begin(), b.end(), q))
                ++common;
        }
        return static_cast<double>(common) /
               static_cast<double>(std::max(a.size(), b.size()));
    };

    std::vector<CompiledCircuit> selected;
    std::vector<std::vector<int>> footprints;
    for (const CompiledCircuit &c : candidates) {
        if (static_cast<int>(selected.size()) == k)
            break;
        const std::vector<int> fp = footprint(c);
        bool diverse = true;
        for (const auto &other : footprints) {
            if (overlap(fp, other) > 0.75) {
                diverse = false;
                break;
            }
        }
        if (diverse) {
            selected.push_back(c);
            footprints.push_back(fp);
        }
    }
    // Fill with the best remaining candidates when diversity ran out.
    for (const CompiledCircuit &c : candidates) {
        if (static_cast<int>(selected.size()) == k)
            break;
        const std::vector<int> fp = footprint(c);
        const bool already =
            std::any_of(footprints.begin(), footprints.end(),
                        [&fp](const std::vector<int> &other) {
                            return other == fp;
                        });
        if (!already) {
            selected.push_back(c);
            footprints.push_back(fp);
        }
    }
    return selected;
}

} // namespace compiler
} // namespace jigsaw
