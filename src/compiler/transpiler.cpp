#include "compiler/transpiler.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/error.h"
#include "compiler/placement.h"
#include "sim/eps.h"

namespace jigsaw {
namespace compiler {

namespace {

CompiledCircuit
finishCandidate(RoutedCircuit routed, const device::DeviceModel &dev)
{
    CompiledCircuit out{std::move(routed.physical), routed.initialLayout,
                        routed.finalLayout, routed.swapCount, 0.0, 0.0,
                        0.0};
    out.gateSuccess = sim::gateSuccessProbability(out.physical, dev);
    out.measurementSuccess =
        sim::measurementSuccessProbability(out.physical, dev);
    out.eps = out.gateSuccess * out.measurementSuccess;
    return out;
}

std::vector<CompiledCircuit>
compileCandidates(const circuit::QuantumCircuit &logical,
                  const device::DeviceModel &dev,
                  const TranspileOptions &options)
{
    const std::vector<int> starts =
        rankedStartQubits(dev, options.noiseAware);
    const int n_candidates =
        std::min<int>(options.numCandidates,
                      static_cast<int>(starts.size()));
    fatalIf(n_candidates < 1, "transpile: need at least one candidate");

    std::vector<CompiledCircuit> candidates;
    candidates.reserve(static_cast<std::size_t>(2 * n_candidates));
    for (int i = 0; i < n_candidates; ++i) {
        const int start = starts[static_cast<std::size_t>(i)];
        // Both greedy families per start: the noise-aware placement
        // chases low-error qubits, the distance-only placement keeps
        // the routing tight; with spatially scattered good qubits
        // either one can win, so the selector sees both.
        const Layout aware =
            greedyPlacement(logical, dev, start, options.noiseAware);
        candidates.push_back(finishCandidate(
            sabreRoute(logical, dev.topology(), aware, options.sabre),
            dev));
        if (options.noiseAware) {
            const Layout tight =
                greedyPlacement(logical, dev, start, false);
            if (tight.logicalToPhysical() !=
                aware.logicalToPhysical()) {
                candidates.push_back(finishCandidate(
                    sabreRoute(logical, dev.topology(), tight,
                               options.sabre),
                    dev));
            }
        }
    }
    return candidates;
}

// ------------------------------------------------ transpile memoization

/** FNV-1a step over one 64-bit word. */
std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    h ^= v;
    h *= 1099511628211ULL;
    return h;
}

std::uint64_t
mixString(std::uint64_t h, const std::string &s)
{
    for (char c : s)
        h = mix(h, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    return h;
}

std::uint64_t
transpileKey(const circuit::QuantumCircuit &logical,
             const device::DeviceModel &dev,
             const TranspileOptions &options)
{
    std::uint64_t h = 14695981039346656037ULL;
    h = mix(h, logical.structuralHash());
    h = mixString(h, dev.name());
    h = mix(h, static_cast<std::uint64_t>(dev.nQubits()));
    // The full edge list, not just its size: same-named devices with
    // equally many but differently placed couplings must not collide.
    for (const auto &[a, b] : dev.topology().edges()) {
        h = mix(h, static_cast<std::uint64_t>(a));
        h = mix(h, static_cast<std::uint64_t>(b));
    }
    h = mix(h, static_cast<std::uint64_t>(options.numCandidates));
    h = mix(h, options.noiseAware ? 1 : 0);
    h = mix(h, options.maxSwaps ? 1 : 0);
    h = mix(h, options.maxSwaps
                   ? static_cast<std::uint64_t>(*options.maxSwaps)
                   : 0);
    h = mix(h, std::bit_cast<std::uint64_t>(options.sabre.lookaheadWeight));
    h = mix(h, static_cast<std::uint64_t>(options.sabre.lookaheadDepth));
    h = mix(h, std::bit_cast<std::uint64_t>(options.sabre.decayStep));
    h = mix(h, static_cast<std::uint64_t>(options.sabre.maxSwapsPerGate));
    return h;
}

std::mutex transpileCacheMutex;
std::unordered_map<std::uint64_t, CompiledCircuit> transpileCache;
std::atomic<std::uint64_t> transpileHits{0};
std::atomic<std::uint64_t> transpileMisses{0};

} // namespace

CompiledCircuit
transpileCachedVia(const circuit::QuantumCircuit &logical,
                   const device::DeviceModel &dev,
                   const TranspileOptions &options,
                   const std::function<CompiledCircuit()> &compute)
{
    const std::uint64_t key = transpileKey(logical, dev, options);
    {
        std::lock_guard<std::mutex> lock(transpileCacheMutex);
        const auto it = transpileCache.find(key);
        if (it != transpileCache.end()) {
            ++transpileHits;
            return it->second;
        }
    }
    // Compile outside the lock: deterministic, so two threads racing
    // on one key produce identical entries.
    ++transpileMisses;
    CompiledCircuit compiled = compute();
    std::lock_guard<std::mutex> lock(transpileCacheMutex);
    return transpileCache.emplace(key, std::move(compiled)).first->second;
}

CompiledCircuit
transpileCached(const circuit::QuantumCircuit &logical,
                const device::DeviceModel &dev,
                const TranspileOptions &options)
{
    return transpileCachedVia(logical, dev, options, [&] {
        return transpile(logical, dev, options);
    });
}

std::uint64_t
transpileCacheHits()
{
    return transpileHits.load();
}

std::uint64_t
transpileCacheMisses()
{
    return transpileMisses.load();
}

void
clearTranspileCache()
{
    std::lock_guard<std::mutex> lock(transpileCacheMutex);
    transpileCache.clear();
}

CompiledCircuit
transpile(const circuit::QuantumCircuit &logical,
          const device::DeviceModel &dev, const TranspileOptions &options)
{
    std::vector<CompiledCircuit> candidates =
        compileCandidates(logical, dev, options);

    auto better = [&options](const CompiledCircuit &a,
                             const CompiledCircuit &b) {
        if (options.noiseAware)
            return a.eps > b.eps;
        if (a.swapCount != b.swapCount)
            return a.swapCount < b.swapCount;
        return a.eps > b.eps;
    };

    // CPM recompilation rule (paper Section 4.2.2): prefer candidates
    // within the SWAP budget of the base compilation — among them the
    // best EPS wins, which for a CPM is dominated by where its few
    // measurements land; fall back to best-overall EPS when no
    // candidate fits the budget.
    const CompiledCircuit *best = nullptr;
    if (options.maxSwaps) {
        for (const CompiledCircuit &c : candidates) {
            if (c.swapCount <= *options.maxSwaps &&
                (!best || better(c, *best))) {
                best = &c;
            }
        }
    }
    if (!best) {
        for (const CompiledCircuit &c : candidates) {
            if (!best || better(c, *best))
                best = &c;
        }
    }
    return *best;
}

std::vector<CompiledCircuit>
transpileEnsemble(const circuit::QuantumCircuit &logical,
                  const device::DeviceModel &dev, int k,
                  const TranspileOptions &options)
{
    fatalIf(k < 1, "transpileEnsemble: k must be positive");
    TranspileOptions opts = options;
    opts.numCandidates = std::max(options.numCandidates, 4 * k);
    std::vector<CompiledCircuit> candidates =
        compileCandidates(logical, dev, opts);

    std::sort(candidates.begin(), candidates.end(),
              [](const CompiledCircuit &a, const CompiledCircuit &b) {
                  return a.eps > b.eps;
              });

    // Greedy diverse selection: accept a candidate when its physical
    // footprint differs enough from every accepted mapping, so the
    // ensemble "orchestrates dissimilar mistakes".
    auto footprint = [](const CompiledCircuit &c) {
        std::vector<int> qubits = c.initialLayout.logicalToPhysical();
        std::sort(qubits.begin(), qubits.end());
        return qubits;
    };
    auto overlap = [](const std::vector<int> &a, const std::vector<int> &b) {
        std::size_t common = 0;
        for (int q : a) {
            if (std::binary_search(b.begin(), b.end(), q))
                ++common;
        }
        return static_cast<double>(common) /
               static_cast<double>(std::max(a.size(), b.size()));
    };

    std::vector<CompiledCircuit> selected;
    std::vector<std::vector<int>> footprints;
    for (const CompiledCircuit &c : candidates) {
        if (static_cast<int>(selected.size()) == k)
            break;
        const std::vector<int> fp = footprint(c);
        bool diverse = true;
        for (const auto &other : footprints) {
            if (overlap(fp, other) > 0.75) {
                diverse = false;
                break;
            }
        }
        if (diverse) {
            selected.push_back(c);
            footprints.push_back(fp);
        }
    }
    // Fill with the best remaining candidates when diversity ran out.
    for (const CompiledCircuit &c : candidates) {
        if (static_cast<int>(selected.size()) == k)
            break;
        const std::vector<int> fp = footprint(c);
        const bool already =
            std::any_of(footprints.begin(), footprints.end(),
                        [&fp](const std::vector<int> &other) {
                            return other == fp;
                        });
        if (!already) {
            selected.push_back(c);
            footprints.push_back(fp);
        }
    }
    return selected;
}

} // namespace compiler
} // namespace jigsaw
