#include "compiler/sabre.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/error.h"

namespace jigsaw {
namespace compiler {

using circuit::Gate;
using circuit::GateType;
using circuit::QuantumCircuit;

namespace {

/** Dependency tracker: a gate is ready when it heads the queue of
 *  every qubit it touches. */
class GateQueues
{
  public:
    GateQueues(const std::vector<Gate> &gates, int n_qubits)
        : queues_(static_cast<std::size_t>(n_qubits)),
          heads_(static_cast<std::size_t>(n_qubits), 0)
    {
        for (std::size_t i = 0; i < gates.size(); ++i) {
            for (int q : gates[i].qubits)
                queues_[static_cast<std::size_t>(q)].push_back(
                    static_cast<int>(i));
        }
    }

    bool
    isReady(const Gate &gate, int index) const
    {
        for (int q : gate.qubits) {
            const auto &queue = queues_[static_cast<std::size_t>(q)];
            const auto head = heads_[static_cast<std::size_t>(q)];
            if (head >= queue.size() || queue[head] != index)
                return false;
        }
        return true;
    }

    void
    retire(const Gate &gate)
    {
        for (int q : gate.qubits)
            ++heads_[static_cast<std::size_t>(q)];
    }

  private:
    std::vector<std::vector<int>> queues_;
    std::vector<std::size_t> heads_;
};

} // namespace

RoutedCircuit
sabreRoute(const QuantumCircuit &logical, const device::Topology &topology,
           const Layout &initial_layout, const SabreOptions &options)
{
    fatalIf(initial_layout.nLogical() != logical.nQubits(),
            "sabreRoute: layout does not cover the program qubits");
    fatalIf(initial_layout.nPhysical() != topology.nQubits(),
            "sabreRoute: layout does not match the device");

    // Gate list with barriers dropped. Measurements are routed
    // separately: they must be terminal, and emitting them against the
    // final layout guarantees a later routing SWAP can never displace
    // an already-measured logical qubit.
    std::vector<Gate> gates;
    std::vector<Gate> measures;
    std::vector<bool> qubit_measured(
        static_cast<std::size_t>(logical.nQubits()), false);
    gates.reserve(logical.gates().size());
    for (const Gate &g : logical.gates()) {
        if (g.type == GateType::BARRIER)
            continue;
        if (g.isMeasure()) {
            measures.push_back(g);
            qubit_measured[static_cast<std::size_t>(g.qubits[0])] = true;
            continue;
        }
        for (int q : g.qubits) {
            fatalIf(qubit_measured[static_cast<std::size_t>(q)],
                    "sabreRoute: gate after measurement; measurements "
                    "must be terminal");
        }
        gates.push_back(g);
    }

    GateQueues queues(gates, logical.nQubits());
    std::vector<bool> done(gates.size(), false);
    std::size_t n_done = 0;

    // Program-order list of two-qubit gate indices for the lookahead
    // window; `twoq_cursor` skips retired prefix entries.
    std::vector<int> twoq_order;
    for (std::size_t i = 0; i < gates.size(); ++i) {
        if (gates[i].isTwoQubit())
            twoq_order.push_back(static_cast<int>(i));
    }
    std::size_t twoq_cursor = 0;

    Layout layout = initial_layout;
    QuantumCircuit physical(topology.nQubits(), logical.nClbits());
    std::vector<double> decay(static_cast<std::size_t>(topology.nQubits()),
                              1.0);
    int swap_count = 0;
    int swaps_since_progress = 0;

    auto emit = [&](int index) {
        const Gate &g = gates[static_cast<std::size_t>(index)];
        Gate out = g;
        for (int &q : out.qubits)
            q = layout.physicalOf(q);
        physical.append(std::move(out));
        queues.retire(g);
        done[static_cast<std::size_t>(index)] = true;
        ++n_done;
        swaps_since_progress = 0;
        std::fill(decay.begin(), decay.end(), 1.0);
    };

    while (n_done < gates.size()) {
        // Execute everything executable under the current layout.
        bool progress = true;
        while (progress) {
            progress = false;
            for (std::size_t i = 0; i < gates.size(); ++i) {
                if (done[i] ||
                    !queues.isReady(gates[i], static_cast<int>(i))) {
                    continue;
                }
                const Gate &g = gates[i];
                if (!g.isTwoQubit()) {
                    emit(static_cast<int>(i));
                    progress = true;
                    continue;
                }
                const int pa = layout.physicalOf(g.qubits[0]);
                const int pb = layout.physicalOf(g.qubits[1]);
                if (topology.areCoupled(pa, pb)) {
                    emit(static_cast<int>(i));
                    progress = true;
                }
            }
        }
        if (n_done == gates.size())
            break;

        // Blocked: collect the front layer of non-adjacent 2q gates.
        std::vector<int> front;
        for (std::size_t i = 0; i < gates.size(); ++i) {
            if (!done[i] && gates[i].isTwoQubit() &&
                queues.isReady(gates[i], static_cast<int>(i))) {
                front.push_back(static_cast<int>(i));
            }
        }
        panicIf(front.empty(), "sabreRoute: blocked without a front layer");

        // Extended (lookahead) set: the next 2q gates in program
        // order beyond the front layer.
        while (twoq_cursor < twoq_order.size() &&
               done[static_cast<std::size_t>(twoq_order[twoq_cursor])]) {
            ++twoq_cursor;
        }
        std::vector<int> extended;
        for (std::size_t k = twoq_cursor;
             k < twoq_order.size() &&
             extended.size() <
                 static_cast<std::size_t>(options.lookaheadDepth);
             ++k) {
            const int gi = twoq_order[k];
            if (done[static_cast<std::size_t>(gi)])
                continue;
            if (std::find(front.begin(), front.end(), gi) == front.end())
                extended.push_back(gi);
        }

        // Candidate SWAPs: coupling edges touching a front-layer qubit.
        std::vector<device::Edge> candidates;
        for (int gi : front) {
            const Gate &g = gates[static_cast<std::size_t>(gi)];
            for (int lq : g.qubits) {
                const int p = layout.physicalOf(lq);
                for (int nb : topology.neighbors(p)) {
                    device::Edge e{std::min(p, nb), std::max(p, nb)};
                    if (std::find(candidates.begin(), candidates.end(),
                                  e) == candidates.end()) {
                        candidates.push_back(e);
                    }
                }
            }
        }
        std::sort(candidates.begin(), candidates.end());

        auto layout_distance = [&](const Layout &lay,
                                   const std::vector<int> &set) {
            double total = 0.0;
            for (int gi : set) {
                const Gate &g = gates[static_cast<std::size_t>(gi)];
                total += topology.distance(lay.physicalOf(g.qubits[0]),
                                           lay.physicalOf(g.qubits[1]));
            }
            return set.empty() ? 0.0
                               : total / static_cast<double>(set.size());
        };

        double best_score = std::numeric_limits<double>::infinity();
        device::Edge best_edge{-1, -1};
        for (const device::Edge &e : candidates) {
            Layout trial = layout;
            trial.swapPhysical(e.first, e.second);
            double score = layout_distance(trial, front) +
                           options.lookaheadWeight *
                               layout_distance(trial, extended);
            score *= std::max(decay[static_cast<std::size_t>(e.first)],
                              decay[static_cast<std::size_t>(e.second)]);
            if (score < best_score) {
                best_score = score;
                best_edge = e;
            }
        }
        panicIf(best_edge.first < 0, "sabreRoute: no candidate SWAP");

        physical.swap(best_edge.first, best_edge.second);
        layout.swapPhysical(best_edge.first, best_edge.second);
        decay[static_cast<std::size_t>(best_edge.first)] +=
            options.decayStep;
        decay[static_cast<std::size_t>(best_edge.second)] +=
            options.decayStep;
        ++swap_count;
        ++swaps_since_progress;
        panicIf(swaps_since_progress > options.maxSwapsPerGate,
                "sabreRoute: routing failed to make progress");
    }

    for (const Gate &m : measures)
        physical.measure(layout.physicalOf(m.qubits[0]), m.clbit);

    return {std::move(physical), initial_layout, layout, swap_count};
}

} // namespace compiler
} // namespace jigsaw
