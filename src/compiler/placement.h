/**
 * @file
 * Noise-aware initial placement.
 *
 * Logical qubits are placed greedily in order of interaction weight;
 * each placement minimizes a blend of (a) coupling distance to already
 * placed interaction partners and (b) calibrated error rates of the
 * physical qubit — readout error counting only for logical qubits the
 * circuit actually measures. The latter is what lets a recompiled CPM
 * pull its few measured qubits onto the device's best readout qubits
 * (paper Section 4.2.2) while leaving unmeasured qubits free.
 */
#ifndef JIGSAW_COMPILER_PLACEMENT_H
#define JIGSAW_COMPILER_PLACEMENT_H

#include <vector>

#include "circuit/circuit.h"
#include "compiler/layout.h"
#include "device/device_model.h"

namespace jigsaw {
namespace compiler {

/**
 * Physical start qubits ordered by desirability (low local error and
 * high connectivity first when @p noise_aware, otherwise connectivity
 * only). Used to seed diverse placement candidates.
 */
std::vector<int> rankedStartQubits(const device::DeviceModel &dev,
                                   bool noise_aware);

/**
 * Greedy placement of @p logical onto @p dev anchored at
 * @p start_physical.
 */
Layout greedyPlacement(const circuit::QuantumCircuit &logical,
                       const device::DeviceModel &dev, int start_physical,
                       bool noise_aware);

} // namespace compiler
} // namespace jigsaw

#endif // JIGSAW_COMPILER_PLACEMENT_H
