/**
 * @file
 * Logical-to-physical qubit layout.
 */
#ifndef JIGSAW_COMPILER_LAYOUT_H
#define JIGSAW_COMPILER_LAYOUT_H

#include <vector>

namespace jigsaw {
namespace compiler {

/**
 * A bijection from program (logical) qubits onto a subset of device
 * (physical) qubits, with both directions maintained.
 */
class Layout
{
  public:
    /**
     * Build from @p logical_to_physical (entry l = physical qubit of
     * logical qubit l) over a device with @p n_physical qubits.
     */
    Layout(std::vector<int> logical_to_physical, int n_physical);

    /** Physical qubit hosting logical qubit @p l. */
    int physicalOf(int l) const;

    /** Logical qubit on physical qubit @p p, or -1 when unused. */
    int logicalOf(int p) const;

    /** Number of logical (program) qubits. */
    int nLogical() const { return static_cast<int>(toPhysical_.size()); }

    /** Number of physical (device) qubits. */
    int nPhysical() const { return static_cast<int>(toLogical_.size()); }

    /**
     * Exchange whatever occupies physical qubits @p pa and @p pb
     * (either side may be unoccupied). This is how a routed SWAP
     * updates the mapping.
     */
    void swapPhysical(int pa, int pb);

    /** The logical -> physical vector. */
    const std::vector<int> &logicalToPhysical() const { return toPhysical_; }

  private:
    std::vector<int> toPhysical_; ///< logical -> physical
    std::vector<int> toLogical_;  ///< physical -> logical or -1
};

} // namespace compiler
} // namespace jigsaw

#endif // JIGSAW_COMPILER_LAYOUT_H
