#include "compiler/layout.h"

#include "common/error.h"

namespace jigsaw {
namespace compiler {

Layout::Layout(std::vector<int> logical_to_physical, int n_physical)
    : toPhysical_(std::move(logical_to_physical)),
      toLogical_(static_cast<std::size_t>(n_physical), -1)
{
    fatalIf(static_cast<int>(toPhysical_.size()) > n_physical,
            "Layout: more logical than physical qubits");
    for (std::size_t l = 0; l < toPhysical_.size(); ++l) {
        const int p = toPhysical_[l];
        fatalIf(p < 0 || p >= n_physical, "Layout: physical index range");
        fatalIf(toLogical_[static_cast<std::size_t>(p)] != -1,
                "Layout: duplicate physical qubit in layout");
        toLogical_[static_cast<std::size_t>(p)] = static_cast<int>(l);
    }
}

int
Layout::physicalOf(int l) const
{
    fatalIf(l < 0 || l >= nLogical(), "Layout: logical qubit range");
    return toPhysical_[static_cast<std::size_t>(l)];
}

int
Layout::logicalOf(int p) const
{
    fatalIf(p < 0 || p >= nPhysical(), "Layout: physical qubit range");
    return toLogical_[static_cast<std::size_t>(p)];
}

void
Layout::swapPhysical(int pa, int pb)
{
    fatalIf(pa < 0 || pa >= nPhysical() || pb < 0 || pb >= nPhysical(),
            "Layout: physical qubit range");
    const int la = toLogical_[static_cast<std::size_t>(pa)];
    const int lb = toLogical_[static_cast<std::size_t>(pb)];
    toLogical_[static_cast<std::size_t>(pa)] = lb;
    toLogical_[static_cast<std::size_t>(pb)] = la;
    if (la >= 0)
        toPhysical_[static_cast<std::size_t>(la)] = pb;
    if (lb >= 0)
        toPhysical_[static_cast<std::size_t>(lb)] = pa;
}

} // namespace compiler
} // namespace jigsaw
