/**
 * @file
 * Transpiler facade: placement + SABRE routing + EPS selection.
 *
 * This plays the role of Noise-Aware SABRE in the paper (Section 4.1):
 * several placement candidates are generated, each is routed, and the
 * candidate with the highest Expected Probability of Success wins.
 * The maxSwaps option implements the CPM recompilation rule of
 * Section 4.2.2: prefer mappings that do not add SWAPs over the base
 * compilation, falling back to the best EPS when impossible.
 */
#ifndef JIGSAW_COMPILER_TRANSPILER_H
#define JIGSAW_COMPILER_TRANSPILER_H

#include <functional>
#include <optional>
#include <vector>

#include "circuit/circuit.h"
#include "compiler/layout.h"
#include "compiler/sabre.h"
#include "device/device_model.h"

namespace jigsaw {
namespace compiler {

/** A fully compiled program with its quality metrics. */
struct CompiledCircuit
{
    circuit::QuantumCircuit physical; ///< Routed, physical-qubit space.
    Layout initialLayout;             ///< Logical -> physical at start.
    Layout finalLayout;               ///< Logical -> physical at end.
    int swapCount = 0;                ///< SWAPs inserted by routing.
    double eps = 0.0;                 ///< Full EPS (gates x readout).
    double gateSuccess = 0.0;         ///< Gate-only success probability.
    double measurementSuccess = 0.0;  ///< Readout-only success prob.
};

/** Transpilation knobs. */
struct TranspileOptions
{
    int numCandidates = 12;     ///< Placement seeds to try.
    bool noiseAware = true;     ///< Use calibration in placement/selection.
    /** When set, candidates whose routing needs more than this many
     *  SWAPs are rejected unless none qualify (CPM recompilation). */
    std::optional<int> maxSwaps;
    SabreOptions sabre;         ///< Routing parameters.
};

/** Compile @p logical for @p dev, returning the best candidate. */
CompiledCircuit transpile(const circuit::QuantumCircuit &logical,
                          const device::DeviceModel &dev,
                          const TranspileOptions &options = {});

/**
 * transpile() behind a process-wide memo keyed on the logical
 * circuit's parameter-invariant skeletonHash(), the device identity
 * (name, qubit count, full edge list — calibrations are assumed
 * stable per device name within a process), and every
 * TranspileOptions field. Transpilation is deterministic for a fixed
 * key, so repeated scheme/cell sweeps over the same circuits (the
 * JigSaw evaluation suite re-transpiles each workload per scheme) pay
 * the placement + SABRE cost once. Placement, routing, and EPS never
 * read rotation angles, so a hit whose cached binding differs from
 * the caller's (an iterative-VQA re-submission) re-binds the new
 * angles into the cached physical circuit via a lazily recovered
 * slot permutation instead of recompiling — identical to a cold
 * transpile() of the bound circuit. Thread-safe.
 */
CompiledCircuit transpileCached(const circuit::QuantumCircuit &logical,
                                const device::DeviceModel &dev,
                                const TranspileOptions &options = {});

/**
 * The transpileCached() memo with a caller-supplied compiler: on a
 * miss, @p compute() produces the entry instead of transpile(). The
 * caller guarantees compute() returns exactly what transpile(logical,
 * dev, options) would (the batched CPM recompiler does), so mixing
 * both entry points on one key stays coherent. Hit/miss counters are
 * shared with transpileCached().
 */
CompiledCircuit transpileCachedVia(
    const circuit::QuantumCircuit &logical, const device::DeviceModel &dev,
    const TranspileOptions &options,
    const std::function<CompiledCircuit()> &compute);

/** Lifetime transpileCached() calls served from the memo. */
std::uint64_t transpileCacheHits();

/** Lifetime transpileCached() calls that ran the full transpile. */
std::uint64_t transpileCacheMisses();

/**
 * Lifetime cache hits served by re-binding new angles into a cached
 * same-skeleton compilation (a subset of transpileCacheHits()).
 */
std::uint64_t transpileSkeletonRebinds();

/** Drop all memoized compilations (counters are kept). */
void clearTranspileCache();

/**
 * Compile an Ensemble of Diverse Mappings (Tannu & Qureshi, MICRO'19):
 * up to @p k compiled copies with distinct placements, best EPS first.
 */
std::vector<CompiledCircuit> transpileEnsemble(
    const circuit::QuantumCircuit &logical, const device::DeviceModel &dev,
    int k, const TranspileOptions &options = {});

} // namespace compiler
} // namespace jigsaw

#endif // JIGSAW_COMPILER_TRANSPILER_H
