#include "workloads/qft.h"

#include <cmath>

#include "common/error.h"

namespace jigsaw {
namespace workloads {

namespace {

BasisState
alternatingPattern(int n)
{
    BasisState p = 0;
    for (int q = 0; q < n; q += 2)
        p = setBit(p, q, 1);
    return p;
}

/**
 * Textbook QFT without the final bit-reversal swaps: applying the
 * adjoint immediately afterwards cancels the reversal, so the swaps
 * would only add gates that trivially undo each other.
 */
void
appendQft(circuit::QuantumCircuit &qc, int n, bool inverse)
{
    const double sign = inverse ? -1.0 : 1.0;
    if (!inverse) {
        for (int i = n - 1; i >= 0; --i) {
            qc.h(i);
            for (int j = i - 1; j >= 0; --j)
                qc.cp(sign * M_PI / std::ldexp(1.0, i - j), j, i);
        }
    } else {
        for (int i = 0; i < n; ++i) {
            for (int j = 0; j < i; ++j)
                qc.cp(sign * M_PI / std::ldexp(1.0, i - j), j, i);
            qc.h(i);
        }
    }
}

circuit::QuantumCircuit
buildQftAdjoint(int n, BasisState pattern)
{
    circuit::QuantumCircuit qc(n, n);
    for (int q = 0; q < n; ++q) {
        if (getBit(pattern, q))
            qc.x(q);
    }
    qc.barrier();
    appendQft(qc, n, false);
    appendQft(qc, n, true);
    qc.barrier();
    qc.measureAll();
    return qc;
}

} // namespace

QftAdjoint::QftAdjoint(int n)
    : n_(n),
      pattern_(alternatingPattern(n)),
      circuit_(buildQftAdjoint(n, pattern_)),
      ideal_(computeIdealPmf(circuit_))
{
    fatalIf(n < 2 || n > 20, "QftAdjoint: n out of range");
}

std::string
QftAdjoint::name() const
{
    return "QFTAdj-" + std::to_string(n_);
}

const circuit::QuantumCircuit &
QftAdjoint::circuit() const
{
    return circuit_;
}

std::vector<BasisState>
QftAdjoint::correctOutcomes() const
{
    return {pattern_};
}

const Pmf &
QftAdjoint::idealPmf() const
{
    return ideal_;
}

} // namespace workloads
} // namespace jigsaw
