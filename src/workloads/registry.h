/**
 * @file
 * Factory for the paper's benchmark suite.
 */
#ifndef JIGSAW_WORKLOADS_REGISTRY_H
#define JIGSAW_WORKLOADS_REGISTRY_H

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.h"

namespace jigsaw {
namespace workloads {

/**
 * The nine benchmarks of the paper's main evaluation (Figure 8), in
 * figure order: BV-6, QAOA-8 p1, QAOA-10 p2, QAOA-10 p4, QAOA-12 p4,
 * QAOA-14 p2, Ising-10, GHZ-14, Graycode-18.
 */
std::vector<std::unique_ptr<Workload>> paperBenchmarks();

/** The five QAOA configurations of Table 5. */
std::vector<std::unique_ptr<Workload>> qaoaBenchmarks();

/** Construct a benchmark by display name (e.g. "GHZ-14"). */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

} // namespace workloads
} // namespace jigsaw

#endif // JIGSAW_WORKLOADS_REGISTRY_H
