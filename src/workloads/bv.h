/**
 * @file
 * Bernstein-Vazirani benchmark.
 *
 * BV-n recovers an n-bit hidden string with one oracle query. The
 * circuit uses n data qubits plus one ancilla; only the data qubits
 * are measured, so the program size (measured qubits) is n, matching
 * the paper's Table 2 (1Q gates = 2(n+1), 2Q gates = n for the
 * all-ones hidden string).
 */
#ifndef JIGSAW_WORKLOADS_BV_H
#define JIGSAW_WORKLOADS_BV_H

#include "workloads/workload.h"

namespace jigsaw {
namespace workloads {

/** Bernstein-Vazirani with a configurable hidden string. */
class BernsteinVazirani : public Workload
{
  public:
    /**
     * @param n            Number of hidden-string bits (measured qubits).
     * @param hidden_string Hidden string; bit i = coefficient of qubit
     *                     i. Defaults to all ones (the paper's variant,
     *                     which maximizes the two-qubit gate count).
     */
    explicit BernsteinVazirani(int n, BasisState hidden_string = ~0ULL);

    std::string name() const override;
    const circuit::QuantumCircuit &circuit() const override;
    std::vector<BasisState> correctOutcomes() const override;
    const Pmf &idealPmf() const override;

    /** The hidden string the oracle encodes. */
    BasisState hiddenString() const { return hidden_; }

  private:
    int n_;
    BasisState hidden_;
    circuit::QuantumCircuit circuit_;
    Pmf ideal_;
};

} // namespace workloads
} // namespace jigsaw

#endif // JIGSAW_WORKLOADS_BV_H
