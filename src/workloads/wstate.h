/**
 * @file
 * W-state preparation benchmark (library extension).
 *
 * W-n is the uniform superposition of the n one-hot bitstrings —
 * maximally spread single-excitation entanglement, the complementary
 * regime to GHZ's two-outcome correlation. Its n equally likely
 * correct outcomes stress JigSaw differently from the suite's peaked
 * workloads: every CPM marginal is genuinely multi-valued.
 */
#ifndef JIGSAW_WORKLOADS_WSTATE_H
#define JIGSAW_WORKLOADS_WSTATE_H

#include "workloads/workload.h"

namespace jigsaw {
namespace workloads {

/** W-state preparation over n qubits. */
class WState : public Workload
{
  public:
    /** @param n Number of qubits (all measured). */
    explicit WState(int n);

    std::string name() const override;
    const circuit::QuantumCircuit &circuit() const override;
    std::vector<BasisState> correctOutcomes() const override;
    const Pmf &idealPmf() const override;

  private:
    int n_;
    circuit::QuantumCircuit circuit_;
    Pmf ideal_;
};

} // namespace workloads
} // namespace jigsaw

#endif // JIGSAW_WORKLOADS_WSTATE_H
