/**
 * @file
 * Benchmark workload interface.
 *
 * A workload is a logical circuit (with its measurements) plus the
 * ground truth needed to score it: the set of correct outcomes for
 * PST/IST, the noise-free output PMF for Fidelity, and optionally a
 * classical cost function for the QAOA Approximation Ratio metrics.
 */
#ifndef JIGSAW_WORKLOADS_WORKLOAD_H
#define JIGSAW_WORKLOADS_WORKLOAD_H

#include <memory>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "common/histogram.h"

namespace jigsaw {
namespace workloads {

/** Base class for the paper's NISQ benchmarks (Table 2). */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Display name, e.g. "BV-6" or "QAOA-10 p2". */
    virtual std::string name() const = 0;

    /** Logical circuit including its terminal measurements. */
    virtual const circuit::QuantumCircuit &circuit() const = 0;

    /**
     * Correct outcomes over the measured classical bits. PST sums
     * the observed probability of these outcomes.
     */
    virtual std::vector<BasisState> correctOutcomes() const = 0;

    /** Noise-free output distribution over the classical bits. */
    virtual const Pmf &idealPmf() const = 0;

    /** True when cost() is meaningful (QAOA). */
    virtual bool hasCost() const { return false; }

    /** Classical objective value of an outcome (QAOA cut size). */
    virtual double cost(BasisState outcome) const;

    /** Maximum achievable cost (QAOA optimal cut size). */
    virtual double maxCost() const;

    /** Number of measured (program) qubits. */
    int nMeasured() const { return circuit().countMeasurements(); }
};

/** Simulate @p qc noiselessly; helper for workload constructors. */
Pmf computeIdealPmf(const circuit::QuantumCircuit &qc);

} // namespace workloads
} // namespace jigsaw

#endif // JIGSAW_WORKLOADS_WORKLOAD_H
