#include "workloads/registry.h"

#include <sstream>

#include "common/error.h"
#include "workloads/bv.h"
#include "workloads/ghz.h"
#include "workloads/graycode.h"
#include "workloads/ising.h"
#include "workloads/qaoa.h"
#include "workloads/qft.h"
#include "workloads/wstate.h"

namespace jigsaw {
namespace workloads {

std::vector<std::unique_ptr<Workload>>
paperBenchmarks()
{
    std::vector<std::unique_ptr<Workload>> suite;
    suite.push_back(std::make_unique<BernsteinVazirani>(6));
    suite.push_back(std::make_unique<QaoaMaxCut>(8, 1));
    suite.push_back(std::make_unique<QaoaMaxCut>(10, 2));
    suite.push_back(std::make_unique<QaoaMaxCut>(10, 4));
    suite.push_back(std::make_unique<QaoaMaxCut>(12, 4));
    suite.push_back(std::make_unique<QaoaMaxCut>(14, 2));
    suite.push_back(std::make_unique<IsingChain>(10));
    suite.push_back(std::make_unique<Ghz>(14));
    suite.push_back(std::make_unique<Graycode>(18));
    return suite;
}

std::vector<std::unique_ptr<Workload>>
qaoaBenchmarks()
{
    std::vector<std::unique_ptr<Workload>> suite;
    suite.push_back(std::make_unique<QaoaMaxCut>(8, 1));
    suite.push_back(std::make_unique<QaoaMaxCut>(10, 2));
    suite.push_back(std::make_unique<QaoaMaxCut>(10, 4));
    suite.push_back(std::make_unique<QaoaMaxCut>(12, 4));
    suite.push_back(std::make_unique<QaoaMaxCut>(14, 2));
    return suite;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    // Accepted formats: "BV-n", "GHZ-n", "Graycode-n", "Ising-n",
    // "QFTAdj-n", "W-n", "QAOA-n pK".
    const auto dash = name.find('-');
    fatalIf(dash == std::string::npos, "makeWorkload: bad name " + name);
    const std::string family = name.substr(0, dash);
    std::istringstream rest(name.substr(dash + 1));
    int n = 0;
    rest >> n;
    fatalIf(n <= 0, "makeWorkload: bad size in " + name);

    if (family == "BV")
        return std::make_unique<BernsteinVazirani>(n);
    if (family == "GHZ")
        return std::make_unique<Ghz>(n);
    if (family == "Graycode")
        return std::make_unique<Graycode>(n);
    if (family == "Ising")
        return std::make_unique<IsingChain>(n);
    if (family == "QFTAdj")
        return std::make_unique<QftAdjoint>(n);
    if (family == "W")
        return std::make_unique<WState>(n);
    if (family == "QAOA") {
        std::string ptoken;
        rest >> ptoken;
        fatalIf(ptoken.size() < 2 || ptoken[0] != 'p',
                "makeWorkload: QAOA needs a pK suffix: " + name);
        const int p = std::stoi(ptoken.substr(1));
        return std::make_unique<QaoaMaxCut>(n, p);
    }
    fatalIf(true, "makeWorkload: unknown family " + family);
    return nullptr;
}

} // namespace workloads
} // namespace jigsaw
