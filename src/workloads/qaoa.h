/**
 * @file
 * QAOA MaxCut benchmark.
 *
 * MaxCut on the n-vertex path graph, whose p-layer ansatz uses exactly
 * p(n-1) two-qubit interactions (Table 2's 2Q counts for QAOA-n). The
 * angles are optimized classically against the noiseless simulator at
 * construction, mirroring the classical outer loop of a real QAOA
 * deployment; the workload then runs at fixed optimal angles, which is
 * how the paper evaluates QAOA.
 */
#ifndef JIGSAW_WORKLOADS_QAOA_H
#define JIGSAW_WORKLOADS_QAOA_H

#include <utility>

#include "workloads/workload.h"

namespace jigsaw {
namespace workloads {

/** QAOA for MaxCut on a path graph. */
class QaoaMaxCut : public Workload
{
  public:
    /**
     * @param n Number of vertices / qubits (all measured).
     * @param p Number of alternating-operator layers.
     */
    QaoaMaxCut(int n, int p);

    std::string name() const override;
    const circuit::QuantumCircuit &circuit() const override;
    std::vector<BasisState> correctOutcomes() const override;
    const Pmf &idealPmf() const override;

    bool hasCost() const override { return true; }

    /** Cut size of @p outcome on the path graph. */
    double cost(BasisState outcome) const override;

    /** Optimal cut size (n - 1 for the path graph). */
    double maxCost() const override;

    /** Optimized (gamma, beta) pairs, one per layer. */
    const std::vector<std::pair<double, double>> &angles() const
    {
        return angles_;
    }

    /** Expected cut size under a distribution @p pmf. */
    double expectedCost(const Pmf &pmf) const;

    /** Number of layers. */
    int layers() const { return p_; }

  private:
    int n_;
    int p_;
    std::vector<std::pair<double, double>> angles_;
    circuit::QuantumCircuit circuit_;
    Pmf ideal_;
};

} // namespace workloads
} // namespace jigsaw

#endif // JIGSAW_WORKLOADS_QAOA_H
