/**
 * @file
 * QFT-adjoint benchmark (library extension beyond the paper's suite).
 *
 * Loads an alternating computational-basis pattern, applies the
 * quantum Fourier transform followed by its inverse, and measures.
 * The ideal output is the input pattern with certainty, but the
 * circuit carries n(n-1) controlled-phase interactions, making it a
 * deep, deterministic stress test in the style of the paper's
 * Graycode benchmark — useful for probing JigSaw on CP-heavy
 * programs.
 */
#ifndef JIGSAW_WORKLOADS_QFT_H
#define JIGSAW_WORKLOADS_QFT_H

#include "workloads/workload.h"

namespace jigsaw {
namespace workloads {

/** QFT followed by inverse QFT over n qubits. */
class QftAdjoint : public Workload
{
  public:
    /** @param n Number of qubits (all measured). */
    explicit QftAdjoint(int n);

    std::string name() const override;
    const circuit::QuantumCircuit &circuit() const override;
    std::vector<BasisState> correctOutcomes() const override;
    const Pmf &idealPmf() const override;

    /** The basis pattern the circuit loads (and ideally returns). */
    BasisState pattern() const { return pattern_; }

  private:
    int n_;
    BasisState pattern_;
    circuit::QuantumCircuit circuit_;
    Pmf ideal_;
};

} // namespace workloads
} // namespace jigsaw

#endif // JIGSAW_WORKLOADS_QFT_H
