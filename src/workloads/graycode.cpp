#include "workloads/graycode.h"

#include "common/error.h"

namespace jigsaw {
namespace workloads {

namespace {

/** Alternating Gray input 0101...: popcount is n/2 (Table 2's n/2
 *  single-qubit gates). */
BasisState
alternatingGray(int n)
{
    BasisState g = 0;
    for (int q = 1; q < n; q += 2)
        g = setBit(g, q, 1);
    return g;
}

/** Gray-to-binary: b_{n-1} = g_{n-1}; b_i = b_{i+1} xor g_i. */
BasisState
grayToBinary(BasisState gray, int n)
{
    BasisState b = 0;
    int prev = 0;
    for (int q = n - 1; q >= 0; --q) {
        const int bit = prev ^ getBit(gray, q);
        b = setBit(b, q, bit);
        prev = bit;
    }
    return b;
}

circuit::QuantumCircuit
buildGraycode(int n, BasisState gray)
{
    circuit::QuantumCircuit qc(n, n);
    for (int q = 0; q < n; ++q) {
        if (getBit(gray, q))
            qc.x(q);
    }
    qc.barrier();
    // The decoding cascade mirrors grayToBinary(): each qubit picks up
    // the parity of all higher Gray bits.
    for (int q = n - 2; q >= 0; --q)
        qc.cx(q + 1, q);
    qc.barrier();
    qc.measureAll();
    return qc;
}

} // namespace

Graycode::Graycode(int n)
    : n_(n),
      gray_(alternatingGray(n)),
      binary_(grayToBinary(gray_, n)),
      circuit_(buildGraycode(n, gray_)),
      ideal_(computeIdealPmf(circuit_))
{
    fatalIf(n < 2 || n > 24, "Graycode: n out of range");
}

std::string
Graycode::name() const
{
    return "Graycode-" + std::to_string(n_);
}

const circuit::QuantumCircuit &
Graycode::circuit() const
{
    return circuit_;
}

std::vector<BasisState>
Graycode::correctOutcomes() const
{
    return {binary_};
}

const Pmf &
Graycode::idealPmf() const
{
    return ideal_;
}

} // namespace workloads
} // namespace jigsaw
