/**
 * @file
 * Transverse-field Ising chain benchmark.
 *
 * Ising-n Trotterizes the evolution of an n-site transverse-field
 * Ising chain from |0...0>. With the default n Trotter steps the
 * circuit contains n(n-1) two-qubit interactions, matching Table 2's
 * 2Q count. The weak transverse field keeps the output distribution
 * peaked at the initial ferromagnetic state, which serves as the
 * correct outcome; deep circuits make this the paper's most
 * error-sensitive benchmark (absolute PST ~0.01).
 */
#ifndef JIGSAW_WORKLOADS_ISING_H
#define JIGSAW_WORKLOADS_ISING_H

#include "workloads/workload.h"

namespace jigsaw {
namespace workloads {

/** Trotterized transverse-field Ising chain. */
class IsingChain : public Workload
{
  public:
    /**
     * @param n     Number of sites / qubits (all measured).
     * @param steps Trotter steps; -1 selects the default of n steps.
     */
    explicit IsingChain(int n, int steps = -1);

    std::string name() const override;
    const circuit::QuantumCircuit &circuit() const override;
    std::vector<BasisState> correctOutcomes() const override;
    const Pmf &idealPmf() const override;

  private:
    int n_;
    int steps_;
    circuit::QuantumCircuit circuit_;
    Pmf ideal_;
    BasisState mode_;
};

} // namespace workloads
} // namespace jigsaw

#endif // JIGSAW_WORKLOADS_ISING_H
