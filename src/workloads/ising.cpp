#include "workloads/ising.h"

#include "common/error.h"

namespace jigsaw {
namespace workloads {

namespace {

// H = -J sum Z_i Z_{i+1} - h sum X_i - g sum Z_i, first-order Trotter
// with time step dt. The field strengths keep |0...0> dominant.
constexpr double couplingJ = 1.0;
constexpr double fieldH = 0.3;
constexpr double fieldG = 0.2;
constexpr double timeStep = 0.15;

circuit::QuantumCircuit
buildIsing(int n, int steps)
{
    circuit::QuantumCircuit qc(n, n);
    for (int s = 0; s < steps; ++s) {
        for (int q = 0; q + 1 < n; ++q)
            qc.rzz(-2.0 * couplingJ * timeStep, q, q + 1);
        for (int q = 0; q < n; ++q) {
            qc.rx(-2.0 * fieldH * timeStep, q);
            qc.rz(-2.0 * fieldG * timeStep, q);
        }
    }
    qc.barrier();
    qc.measureAll();
    return qc;
}

} // namespace

IsingChain::IsingChain(int n, int steps)
    : n_(n),
      steps_(steps < 0 ? n : steps),
      circuit_(buildIsing(n, steps_)),
      ideal_(computeIdealPmf(circuit_)),
      mode_(ideal_.mode())
{
    fatalIf(n < 2 || n > 20, "IsingChain: n out of range");
}

std::string
IsingChain::name() const
{
    return "Ising-" + std::to_string(n_);
}

const circuit::QuantumCircuit &
IsingChain::circuit() const
{
    return circuit_;
}

std::vector<BasisState>
IsingChain::correctOutcomes() const
{
    return {mode_};
}

const Pmf &
IsingChain::idealPmf() const
{
    return ideal_;
}

} // namespace workloads
} // namespace jigsaw
