#include "workloads/ghz.h"

#include "common/error.h"

namespace jigsaw {
namespace workloads {

namespace {

circuit::QuantumCircuit
buildGhz(int n)
{
    circuit::QuantumCircuit qc(n, n);
    qc.h(0);
    for (int q = 0; q + 1 < n; ++q)
        qc.cx(q, q + 1);
    qc.barrier();
    qc.measureAll();
    return qc;
}

} // namespace

Ghz::Ghz(int n)
    : n_(n), circuit_(buildGhz(n)), ideal_(computeIdealPmf(circuit_))
{
    fatalIf(n < 2 || n > 24, "Ghz: n out of range");
}

std::string
Ghz::name() const
{
    return "GHZ-" + std::to_string(n_);
}

const circuit::QuantumCircuit &
Ghz::circuit() const
{
    return circuit_;
}

std::vector<BasisState>
Ghz::correctOutcomes() const
{
    return {0ULL, (n_ >= 64) ? ~0ULL : ((1ULL << n_) - 1)};
}

const Pmf &
Ghz::idealPmf() const
{
    return ideal_;
}

} // namespace workloads
} // namespace jigsaw
