#include "workloads/qaoa.h"

#include <cmath>

#include "common/error.h"
#include "common/nelder_mead.h"

namespace jigsaw {
namespace workloads {

namespace {

circuit::QuantumCircuit
buildQaoa(int n, const std::vector<std::pair<double, double>> &angles)
{
    circuit::QuantumCircuit qc(n, n);
    for (int q = 0; q < n; ++q)
        qc.h(q);
    for (const auto &[gamma, beta] : angles) {
        for (int q = 0; q + 1 < n; ++q)
            qc.rzz(2.0 * gamma, q, q + 1);
        for (int q = 0; q < n; ++q)
            qc.rx(2.0 * beta, q);
    }
    qc.barrier();
    qc.measureAll();
    return qc;
}

double
cutValue(BasisState outcome, int n)
{
    double cut = 0.0;
    for (int q = 0; q + 1 < n; ++q) {
        if (getBit(outcome, q) != getBit(outcome, q + 1))
            cut += 1.0;
    }
    return cut;
}

/**
 * Optimize the 2p angles by maximizing the noiseless expected cut,
 * starting from a linear ramp (a standard good initialization).
 */
std::vector<std::pair<double, double>>
optimizeAngles(int n, int p)
{
    auto unpack = [p](const std::vector<double> &x) {
        std::vector<std::pair<double, double>> angles;
        angles.reserve(static_cast<std::size_t>(p));
        for (int k = 0; k < p; ++k) {
            angles.emplace_back(x[static_cast<std::size_t>(k)],
                                x[static_cast<std::size_t>(p + k)]);
        }
        return angles;
    };

    auto objective = [n, &unpack](const std::vector<double> &x) {
        const circuit::QuantumCircuit qc = buildQaoa(n, unpack(x));
        const Pmf pmf = computeIdealPmf(qc);
        double expected = 0.0;
        for (const auto &[outcome, prob] : pmf.probabilities())
            expected += prob * cutValue(outcome, n);
        return -expected;
    };

    std::vector<double> start(static_cast<std::size_t>(2 * p));
    for (int k = 0; k < p; ++k) {
        const double frac = (static_cast<double>(k) + 0.5) /
                            static_cast<double>(p);
        start[static_cast<std::size_t>(k)] = 0.8 * frac;
        start[static_cast<std::size_t>(p + k)] = 0.6 * (1.0 - frac);
    }

    NelderMeadOptions options;
    options.maxIterations = 500;
    options.tolerance = 1e-8;
    options.initialStep = 0.15;
    return unpack(nelderMead(objective, start, options).x);
}

} // namespace

QaoaMaxCut::QaoaMaxCut(int n, int p)
    : n_(n),
      p_(p),
      angles_(optimizeAngles(n, p)),
      circuit_(buildQaoa(n, angles_)),
      ideal_(computeIdealPmf(circuit_))
{
    fatalIf(n < 2 || n > 20, "QaoaMaxCut: n out of range");
    fatalIf(p < 1 || p > 8, "QaoaMaxCut: p out of range");
}

std::string
QaoaMaxCut::name() const
{
    return "QAOA-" + std::to_string(n_) + " p" + std::to_string(p_);
}

const circuit::QuantumCircuit &
QaoaMaxCut::circuit() const
{
    return circuit_;
}

std::vector<BasisState>
QaoaMaxCut::correctOutcomes() const
{
    // The two optimal path-graph cuts are the alternating colorings.
    BasisState even = 0;
    for (int q = 0; q < n_; q += 2)
        even = setBit(even, q, 1);
    const BasisState mask = (n_ >= 64) ? ~0ULL : ((1ULL << n_) - 1);
    return {even, even ^ mask};
}

const Pmf &
QaoaMaxCut::idealPmf() const
{
    return ideal_;
}

double
QaoaMaxCut::cost(BasisState outcome) const
{
    return cutValue(outcome, n_);
}

double
QaoaMaxCut::maxCost() const
{
    return static_cast<double>(n_ - 1);
}

double
QaoaMaxCut::expectedCost(const Pmf &pmf) const
{
    double expected = 0.0;
    for (const auto &[outcome, prob] : pmf.probabilities())
        expected += prob * cost(outcome);
    return expected;
}

} // namespace workloads
} // namespace jigsaw
