#include "workloads/bv.h"

#include "common/error.h"

namespace jigsaw {
namespace workloads {

namespace {

circuit::QuantumCircuit
buildBv(int n, BasisState hidden)
{
    // Qubits 0..n-1 are data, qubit n is the phase-kickback ancilla.
    circuit::QuantumCircuit qc(n + 1, n);
    for (int q = 0; q < n; ++q)
        qc.h(q);
    qc.x(n).h(n);
    for (int q = 0; q < n; ++q) {
        if (getBit(hidden, q))
            qc.cx(q, n);
    }
    for (int q = 0; q < n; ++q)
        qc.h(q);
    qc.barrier();
    for (int q = 0; q < n; ++q)
        qc.measure(q, q);
    return qc;
}

} // namespace

BernsteinVazirani::BernsteinVazirani(int n, BasisState hidden_string)
    : n_(n),
      hidden_(hidden_string & ((n >= 64) ? ~0ULL : ((1ULL << n) - 1))),
      circuit_(buildBv(n, hidden_)),
      ideal_(computeIdealPmf(circuit_))
{
    fatalIf(n < 1 || n > 62, "BernsteinVazirani: n out of range");
}

std::string
BernsteinVazirani::name() const
{
    return "BV-" + std::to_string(n_);
}

const circuit::QuantumCircuit &
BernsteinVazirani::circuit() const
{
    return circuit_;
}

std::vector<BasisState>
BernsteinVazirani::correctOutcomes() const
{
    return {hidden_};
}

const Pmf &
BernsteinVazirani::idealPmf() const
{
    return ideal_;
}

} // namespace workloads
} // namespace jigsaw
