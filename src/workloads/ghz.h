/**
 * @file
 * Greenberger-Horne-Zeilinger state preparation benchmark.
 *
 * GHZ-n prepares (|0...0> + |1...1>)/sqrt(2) with one H and a CX
 * chain (1Q = 1, 2Q = n-1, matching Table 2). Both all-zeros and
 * all-ones are correct outcomes, each ideally observed half the time.
 */
#ifndef JIGSAW_WORKLOADS_GHZ_H
#define JIGSAW_WORKLOADS_GHZ_H

#include "workloads/workload.h"

namespace jigsaw {
namespace workloads {

/** GHZ state preparation over n qubits. */
class Ghz : public Workload
{
  public:
    /** @param n Number of qubits (all measured). */
    explicit Ghz(int n);

    std::string name() const override;
    const circuit::QuantumCircuit &circuit() const override;
    std::vector<BasisState> correctOutcomes() const override;
    const Pmf &idealPmf() const override;

  private:
    int n_;
    circuit::QuantumCircuit circuit_;
    Pmf ideal_;
};

} // namespace workloads
} // namespace jigsaw

#endif // JIGSAW_WORKLOADS_GHZ_H
