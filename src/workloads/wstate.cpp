#include "workloads/wstate.h"

#include <cmath>

#include "common/error.h"

namespace jigsaw {
namespace workloads {

namespace {

/**
 * Controlled-RY via the standard two-CX decomposition; keeps the
 * circuit inside the library's native gate set.
 */
void
controlledRy(circuit::QuantumCircuit &qc, double theta, int control,
             int target)
{
    qc.ry(theta / 2.0, target);
    qc.cx(control, target);
    qc.ry(-theta / 2.0, target);
    qc.cx(control, target);
}

/**
 * Cascade construction: the excitation starts on qubit 0 and each
 * stage hands the remaining amplitude down the chain, leaving 1/n of
 * the probability on every qubit.
 */
circuit::QuantumCircuit
buildWState(int n)
{
    circuit::QuantumCircuit qc(n, n);
    qc.x(0);
    for (int k = 0; k + 1 < n; ++k) {
        // cos(theta/2) = sqrt(1/(n-k)) keeps 1/(n-k) of the remaining
        // amplitude on qubit k.
        const double theta =
            2.0 * std::acos(std::sqrt(1.0 / static_cast<double>(n - k)));
        controlledRy(qc, theta, k, k + 1);
        qc.cx(k + 1, k);
    }
    qc.barrier();
    qc.measureAll();
    return qc;
}

} // namespace

WState::WState(int n)
    : n_(n), circuit_(buildWState(n)), ideal_(computeIdealPmf(circuit_))
{
    fatalIf(n < 2 || n > 20, "WState: n out of range");
}

std::string
WState::name() const
{
    return "W-" + std::to_string(n_);
}

const circuit::QuantumCircuit &
WState::circuit() const
{
    return circuit_;
}

std::vector<BasisState>
WState::correctOutcomes() const
{
    std::vector<BasisState> outcomes;
    outcomes.reserve(static_cast<std::size_t>(n_));
    for (int q = 0; q < n_; ++q)
        outcomes.push_back(1ULL << q);
    return outcomes;
}

const Pmf &
WState::idealPmf() const
{
    return ideal_;
}

} // namespace workloads
} // namespace jigsaw
