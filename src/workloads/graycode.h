/**
 * @file
 * Gray-code decoder benchmark.
 *
 * Graycode-n loads an n-bit Gray-code word with X gates (n/2 of them
 * for the alternating input pattern) and decodes it to binary with a
 * CX cascade (n-1 gates), matching Table 2. The output is a single
 * deterministic bitstring.
 */
#ifndef JIGSAW_WORKLOADS_GRAYCODE_H
#define JIGSAW_WORKLOADS_GRAYCODE_H

#include "workloads/workload.h"

namespace jigsaw {
namespace workloads {

/** Gray-to-binary decoder over n qubits. */
class Graycode : public Workload
{
  public:
    /** @param n Number of qubits (all measured). */
    explicit Graycode(int n);

    std::string name() const override;
    const circuit::QuantumCircuit &circuit() const override;
    std::vector<BasisState> correctOutcomes() const override;
    const Pmf &idealPmf() const override;

    /** The Gray-code input word the circuit loads. */
    BasisState grayInput() const { return gray_; }

    /** The decoded binary word (the correct answer). */
    BasisState binaryOutput() const { return binary_; }

  private:
    int n_;
    BasisState gray_;
    BasisState binary_;
    circuit::QuantumCircuit circuit_;
    Pmf ideal_;
};

} // namespace workloads
} // namespace jigsaw

#endif // JIGSAW_WORKLOADS_GRAYCODE_H
