#include "workloads/workload.h"

#include "common/error.h"
#include "sim/simulators.h"

namespace jigsaw {
namespace workloads {

double
Workload::cost(BasisState) const
{
    fatalIf(true, "workload has no cost function");
    return 0.0;
}

double
Workload::maxCost() const
{
    fatalIf(true, "workload has no cost function");
    return 0.0;
}

Pmf
computeIdealPmf(const circuit::QuantumCircuit &qc)
{
    sim::IdealSimulator ideal;
    return ideal.idealPmf(qc);
}

} // namespace workloads
} // namespace jigsaw
