#include "common/fault.h"

#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "common/error.h"
#include "common/log.h"
#include "obs/registry.h"

namespace jigsaw {

namespace {

/** Every firing is observable: one Info record and one count in the
 *  process-wide registry (site names are a small fixed set, so the
 *  label cardinality is bounded by construction). */
void
noteInjection(const char *site, bool behavioral, bool transient)
{
    static log::Logger &lg = log::logger("common.fault");
    JIGSAW_LOG_INFO(lg, "fault injected", log::kv("site", site),
                    log::kv("behavioral", behavioral),
                    log::kv("transient", transient));
    obs::Registry::instance()
        .counter("jigsaw_fault_injections_total",
                 "Injected faults fired, by site.", {{"site", site}})
        .add();
}

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t end = text.find(sep, start);
        if (end == std::string::npos) {
            parts.push_back(text.substr(start));
            break;
        }
        parts.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    return parts;
}

std::uint64_t
parseCount(const std::string &value, const std::string &rule)
{
    std::size_t used = 0;
    const std::uint64_t parsed = std::stoull(value, &used);
    fatalIf(used != value.size(),
            "fault spec: bad integer '" + value + "' in rule '" + rule +
                "'");
    return parsed;
}

/** True when @p site names an instrumented fault point. */
bool
isKnownSite(const std::string &site)
{
    for (const std::string &known : FaultInjector::knownSites()) {
        if (known == site)
            return true;
    }
    return false;
}

/** Comma-joined knownSites() for the unknown-site error message. */
std::string
knownSiteList()
{
    std::string joined;
    for (const std::string &known : FaultInjector::knownSites()) {
        if (!joined.empty())
            joined += ", ";
        joined += known;
    }
    return joined;
}

} // namespace

const std::vector<std::string> &
FaultInjector::knownSites()
{
    // One name per injectFaultPoint()/fireBehavioral() call site in
    // the instrumented layers (pipeline stages, executors, the merged
    // execution path, and the worker tier's transport/worker points).
    static const std::vector<std::string> sites = {
        "stage.plan",     "stage.compile",     "stage.reconstruct",
        "executor.run",   "executor.runBatch", "merge.execute",
        "transport.send", "transport.recv",    "worker.crash",
        "worker.stall",
    };
    return sites;
}

std::vector<FaultRule>
parseFaultSpec(const std::string &spec)
{
    std::vector<FaultRule> rules;
    for (const std::string &text : splitOn(spec, ';')) {
        if (text.empty())
            continue;
        const std::vector<std::string> fields = splitOn(text, ':');
        FaultRule rule;
        const std::string &head = fields.front();
        const std::size_t at = head.find('@');
        rule.site = head.substr(0, at);
        if (at != std::string::npos)
            rule.detail = head.substr(at + 1);
        fatalIf(rule.site.empty(),
                "fault spec: rule '" + text + "' names no site");
        fatalIf(!isKnownSite(rule.site),
                "fault spec: unknown site '" + rule.site + "' in rule '" +
                    text + "' (known sites: " + knownSiteList() + ")");
        for (std::size_t i = 1; i < fields.size(); ++i) {
            const std::string &field = fields[i];
            const std::size_t eq = field.find('=');
            const std::string key = field.substr(0, eq);
            const std::string value =
                eq == std::string::npos ? "" : field.substr(eq + 1);
            if (key == "first") {
                rule.failFirst = parseCount(value, text);
            } else if (key == "prob") {
                std::size_t used = 0;
                rule.probability = std::stod(value, &used);
                fatalIf(used != value.size() || rule.probability < 0.0 ||
                            rule.probability > 1.0,
                        "fault spec: bad probability '" + value +
                            "' in rule '" + text + "'");
            } else if (key == "seed") {
                rule.seed = parseCount(value, text);
            } else if (key == "terminal") {
                rule.transient = false;
            } else if (key == "transient") {
                rule.transient = true;
            } else {
                fatalIf(true, "fault spec: unknown key '" + key +
                                  "' in rule '" + text + "'");
            }
        }
        rules.push_back(std::move(rule));
    }
    return rules;
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

FaultInjector::FaultInjector()
{
    if (const char *spec = std::getenv("JIGSAW_FAULT_SPEC"))
        configure(parseFaultSpec(spec));
}

void
FaultInjector::configure(std::vector<FaultRule> rules)
{
    std::lock_guard<std::mutex> lock(mutex_);
    rules_.clear();
    for (FaultRule &rule : rules)
        rules_.emplace_back(std::move(rule));
    injected_ = 0;
    injectedBySite_.clear();
    armed_.store(!rules_.empty(), std::memory_order_relaxed);
}

void
FaultInjector::clear()
{
    configure({});
}

void
FaultInjector::maybeInject(const char *site, const std::string &detail)
{
    std::string message;
    bool transient = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (RuleState &state : rules_) {
            const FaultRule &rule = state.rule;
            if (rule.site != site)
                continue;
            if (!rule.detail.empty() && rule.detail != detail)
                continue;
            bool fire = false;
            if (state.fired < rule.failFirst) {
                ++state.fired;
                fire = true;
            } else if (rule.probability > 0.0 &&
                       state.rng.bernoulli(rule.probability)) {
                fire = true;
            }
            if (!fire)
                continue;
            ++injected_;
            ++injectedBySite_[site];
            transient = rule.transient;
            message = std::string("injected ") +
                      (transient ? "transient" : "terminal") +
                      " fault at " + site +
                      (detail.empty() ? "" : "@" + detail);
            break;
        }
    }
    if (message.empty())
        return;
    noteInjection(site, false, transient);
    if (transient)
        throw TransientError(message);
    throw std::runtime_error(message);
}

std::optional<std::string>
FaultInjector::fireBehavioral(const char *site)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (RuleState &state : rules_) {
        const FaultRule &rule = state.rule;
        if (rule.site != site)
            continue;
        bool fire = false;
        if (state.fired < rule.failFirst) {
            ++state.fired;
            fire = true;
        } else if (rule.probability > 0.0 &&
                   state.rng.bernoulli(rule.probability)) {
            fire = true;
        }
        if (!fire)
            continue;
        ++injected_;
        ++injectedBySite_[site];
        noteInjection(site, true, rule.transient);
        return rule.detail;
    }
    return std::nullopt;
}

std::uint64_t
FaultInjector::injected() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return injected_;
}

std::uint64_t
FaultInjector::injectedAt(const std::string &site) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = injectedBySite_.find(site);
    return it == injectedBySite_.end() ? 0 : it->second;
}

} // namespace jigsaw
