/**
 * @file
 * Minimal aligned console-table printer used by the bench harness to
 * emit paper-style result tables.
 */
#ifndef JIGSAW_COMMON_TABLE_H
#define JIGSAW_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace jigsaw {

/**
 * Collects rows of string cells and prints them with column-aligned
 * padding and a header separator.
 */
class ConsoleTable
{
  public:
    /** Construct with the header row. */
    explicit ConsoleTable(std::vector<std::string> header);

    /** Append a data row; shorter rows are padded with empty cells. */
    void addRow(std::vector<std::string> row);

    /** Render the table to @p os. */
    void print(std::ostream &os) const;

    /** Format a double with @p precision digits after the point. */
    static std::string num(double value, int precision = 2);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace jigsaw

#endif // JIGSAW_COMMON_TABLE_H
