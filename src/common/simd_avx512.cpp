/**
 * @file
 * AVX-512 amplitude kernels over split real/imaginary arrays.
 *
 * This translation unit is compiled with -mavx512f -mavx512dq (see the
 * top-level CMakeLists.txt) and is excluded entirely when the
 * JIGSAW_NO_SIMD option is on; activeKernels() only routes here after
 * a runtime cpuid check for avx512f + avx512dq.
 *
 * Addressing: pair/quad strides >= 8 give contiguous 8-lane runs
 * inside each stride block, which is where 512-bit lanes pay off.
 * Shorter strides would need in-register deinterleave shuffles that
 * cost more than they save at this width, so those cases defer to the
 * next-widest compiled table (AVX2 when present, scalar otherwise) —
 * legal because any CPU reporting avx512f also reports avx2.
 */
#include "common/simd.h"

#ifdef JIGSAW_HAVE_AVX512

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace jigsaw {
namespace simd {

namespace {

using U64 = std::uint64_t;

inline U64
insertZero2(U64 k, U64 s_lo, U64 s_hi)
{
    return insertZero(insertZero(k, s_lo), s_hi);
}

/** The table short-stride cases defer to (resolved once). */
inline const KernelTable &
narrowFallback()
{
    static const KernelTable &table =
        avx2Kernels() != nullptr ? *avx2Kernels() : scalarKernels();
    return table;
}

/**
 * Per-lane table-index stream for the gather phase tables. With the
 * 8-lane base amplitude index 8-aligned, the low three bits of each
 * lane's index equal the lane number, so the PEXT of the index under
 * the (scattered) mask splits into a per-lane constant —
 * PEXT(lane, mask & 7), precomputed once into a vector — OR'd with a
 * per-block part, PEXT(base, mask & ~7) shifted past the low
 * popcount: one scalar PEXT per 8 amplitudes instead of 8, and the
 * table lookup itself becomes one vpgatherqpd per component.
 */
struct LaneIndexStream
{
    __m512i lane;   ///< PEXT(lane, mask & 7), lane = 0..7.
    U64 mask_hi;    ///< mask & ~7.
    unsigned pc_lo; ///< popcount(mask & 7).

    explicit LaneIndexStream(U64 mask)
        : mask_hi(mask & ~7ULL),
          pc_lo(static_cast<unsigned>(
              __builtin_popcountll(mask & 7ULL)))
    {
        alignas(64) long long lanes[8];
        for (long long l = 0; l < 8; ++l)
            lanes[l] = static_cast<long long>(
                _pext_u64(static_cast<U64>(l), mask & 7ULL));
        lane = _mm512_load_si512(lanes);
    }

    /** Table indices of the 8 amplitudes at 8-aligned index @p i0. */
    __m512i indices(U64 i0) const
    {
        const U64 base = _pext_u64(i0, mask_hi) << pc_lo;
        return _mm512_or_epi64(
            lane, _mm512_set1_epi64(static_cast<long long>(base)));
    }
};

/** (ar, ai) *= (cr, ci), 8 complex values per call. */
inline void
complexScale8(__m512d &ar, __m512d &ai, __m512d cr, __m512d ci)
{
    const __m512d nr = _mm512_fnmadd_pd(ci, ai, _mm512_mul_pd(cr, ar));
    const __m512d ni = _mm512_fmadd_pd(ci, ar, _mm512_mul_pd(cr, ai));
    ar = nr;
    ai = ni;
}

/** Gather table[idx] and multiply 8 contiguous amplitudes by it. */
inline void
gatherScale8(double *re, double *im, const double *tab_re,
             const double *tab_im, __m512i idx)
{
    // Masked form with an explicit zero source: same full-lane
    // gather, but avoids the undefined pass-through operand of the
    // unmasked intrinsic (and the -Wmaybe-uninitialized noise GCC
    // emits for it).
    const __m512d cr = _mm512_mask_i64gather_pd(
        _mm512_setzero_pd(), 0xFF, idx, tab_re, 8);
    const __m512d ci = _mm512_mask_i64gather_pd(
        _mm512_setzero_pd(), 0xFF, idx, tab_im, 8);
    __m512d ar = _mm512_loadu_pd(re);
    __m512d ai = _mm512_loadu_pd(im);
    complexScale8(ar, ai, cr, ci);
    _mm512_storeu_pd(re, ar);
    _mm512_storeu_pd(im, ai);
}

/** Multiply the @p n complex values at (re, im) by (cr, ci). */
inline void
scaleRun(double *re, double *im, U64 n, __m512d cr, __m512d ci, double sr,
         double si)
{
    U64 v = 0;
    for (; v + 8 <= n; v += 8) {
        __m512d ar = _mm512_loadu_pd(re + v);
        __m512d ai = _mm512_loadu_pd(im + v);
        complexScale8(ar, ai, cr, ci);
        _mm512_storeu_pd(re + v, ar);
        _mm512_storeu_pd(im + v, ai);
    }
    for (; v < n; ++v) {
        const double r = re[v], i = im[v];
        re[v] = sr * r - si * i;
        im[v] = sr * i + si * r;
    }
}

void
avx512Apply1q(double *re, double *im, U64 stride, U64 k_lo, U64 k_hi,
              const Mat2Split &m)
{
    if (stride < 8) {
        narrowFallback().apply1q(re, im, stride, k_lo, k_hi, m);
        return;
    }
    detail::countDispatch(kApply1q, kBackendAvx512);
    const __m512d m00r = _mm512_set1_pd(m.re[0]);
    const __m512d m00i = _mm512_set1_pd(m.im[0]);
    const __m512d m01r = _mm512_set1_pd(m.re[1]);
    const __m512d m01i = _mm512_set1_pd(m.im[1]);
    const __m512d m10r = _mm512_set1_pd(m.re[2]);
    const __m512d m10i = _mm512_set1_pd(m.im[2]);
    const __m512d m11r = _mm512_set1_pd(m.re[3]);
    const __m512d m11i = _mm512_set1_pd(m.im[3]);
    U64 k = k_lo;
    while (k < k_hi) {
        const U64 block_end = std::min(k_hi, (k & ~(stride - 1)) + stride);
        U64 i0 = insertZero(k, stride);
        for (; k + 8 <= block_end; k += 8, i0 += 8) {
            __m512d a0r = _mm512_loadu_pd(re + i0);
            __m512d a1r = _mm512_loadu_pd(re + i0 + stride);
            __m512d a0i = _mm512_loadu_pd(im + i0);
            __m512d a1i = _mm512_loadu_pd(im + i0 + stride);
            __m512d n0r = _mm512_mul_pd(m00r, a0r);
            n0r = _mm512_fnmadd_pd(m00i, a0i, n0r);
            n0r = _mm512_fmadd_pd(m01r, a1r, n0r);
            n0r = _mm512_fnmadd_pd(m01i, a1i, n0r);
            __m512d n0i = _mm512_mul_pd(m00r, a0i);
            n0i = _mm512_fmadd_pd(m00i, a0r, n0i);
            n0i = _mm512_fmadd_pd(m01r, a1i, n0i);
            n0i = _mm512_fmadd_pd(m01i, a1r, n0i);
            __m512d n1r = _mm512_mul_pd(m10r, a0r);
            n1r = _mm512_fnmadd_pd(m10i, a0i, n1r);
            n1r = _mm512_fmadd_pd(m11r, a1r, n1r);
            n1r = _mm512_fnmadd_pd(m11i, a1i, n1r);
            __m512d n1i = _mm512_mul_pd(m10r, a0i);
            n1i = _mm512_fmadd_pd(m10i, a0r, n1i);
            n1i = _mm512_fmadd_pd(m11r, a1i, n1i);
            n1i = _mm512_fmadd_pd(m11i, a1r, n1i);
            _mm512_storeu_pd(re + i0, n0r);
            _mm512_storeu_pd(re + i0 + stride, n1r);
            _mm512_storeu_pd(im + i0, n0i);
            _mm512_storeu_pd(im + i0 + stride, n1i);
        }
        for (; k < block_end; ++k, ++i0) {
            const U64 i1 = i0 | stride;
            const double a0r = re[i0], a0i = im[i0];
            const double a1r = re[i1], a1i = im[i1];
            re[i0] = m.re[0] * a0r - m.im[0] * a0i + m.re[1] * a1r -
                     m.im[1] * a1i;
            im[i0] = m.re[0] * a0i + m.im[0] * a0r + m.re[1] * a1i +
                     m.im[1] * a1r;
            re[i1] = m.re[2] * a0r - m.im[2] * a0i + m.re[3] * a1r -
                     m.im[3] * a1i;
            im[i1] = m.re[2] * a0i + m.im[2] * a0r + m.re[3] * a1i +
                     m.im[3] * a1r;
        }
    }
}

void
avx512Apply1qDiag(double *re, double *im, U64 stride, U64 k_lo, U64 k_hi,
                  double d0r, double d0i, double d1r, double d1i,
                  bool d0_is_one)
{
    if (stride < 8) {
        narrowFallback().apply1qDiag(re, im, stride, k_lo, k_hi, d0r, d0i,
                                     d1r, d1i, d0_is_one);
        return;
    }
    detail::countDispatch(kApply1qDiag, kBackendAvx512);
    const __m512d v0r = _mm512_set1_pd(d0r);
    const __m512d v0i = _mm512_set1_pd(d0i);
    const __m512d v1r = _mm512_set1_pd(d1r);
    const __m512d v1i = _mm512_set1_pd(d1i);
    U64 k = k_lo;
    while (k < k_hi) {
        const U64 block_end = std::min(k_hi, (k & ~(stride - 1)) + stride);
        const U64 i0 = insertZero(k, stride);
        const U64 n = block_end - k;
        if (!d0_is_one)
            scaleRun(re + i0, im + i0, n, v0r, v0i, d0r, d0i);
        scaleRun(re + (i0 | stride), im + (i0 | stride), n, v1r, v1i, d1r,
                 d1i);
        k = block_end;
    }
}

void
avx512QuadPhase(double *re, double *im, U64 s_lo, U64 s_hi, U64 set_mask,
                U64 k_lo, U64 k_hi, double p_re, double p_im)
{
    if (s_lo < 8) {
        narrowFallback().quadPhase(re, im, s_lo, s_hi, set_mask, k_lo,
                                   k_hi, p_re, p_im);
        return;
    }
    detail::countDispatch(kQuadPhase, kBackendAvx512);
    const __m512d cr = _mm512_set1_pd(p_re);
    const __m512d ci = _mm512_set1_pd(p_im);
    U64 k = k_lo;
    while (k < k_hi) {
        const U64 block_end = std::min(k_hi, (k & ~(s_lo - 1)) + s_lo);
        const U64 i = insertZero2(k, s_lo, s_hi) | set_mask;
        scaleRun(re + i, im + i, block_end - k, cr, ci, p_re, p_im);
        k = block_end;
    }
}

void
avx512QuadSwap(double *re, double *im, U64 s_lo, U64 s_hi, U64 mask_a,
               U64 mask_b, U64 k_lo, U64 k_hi)
{
    if (s_lo < 8) {
        narrowFallback().quadSwap(re, im, s_lo, s_hi, mask_a, mask_b,
                                  k_lo, k_hi);
        return;
    }
    detail::countDispatch(kQuadSwap, kBackendAvx512);
    U64 k = k_lo;
    while (k < k_hi) {
        const U64 block_end = std::min(k_hi, (k & ~(s_lo - 1)) + s_lo);
        const U64 base = insertZero2(k, s_lo, s_hi);
        const U64 n = block_end - k;
        for (double *arr : {re, im}) {
            double *pa = arr + (base | mask_a);
            double *pb = arr + (base | mask_b);
            U64 v = 0;
            for (; v + 8 <= n; v += 8) {
                const __m512d va = _mm512_loadu_pd(pa + v);
                const __m512d vb = _mm512_loadu_pd(pb + v);
                _mm512_storeu_pd(pa + v, vb);
                _mm512_storeu_pd(pb + v, va);
            }
            for (; v < n; ++v)
                std::swap(pa[v], pb[v]);
        }
        k = block_end;
    }
}

void
avx512PhasePair(double *re, double *im, int q0, int q1, U64 k_lo, U64 k_hi,
                double even_re, double even_im, double odd_re,
                double odd_im)
{
    if (q0 < 3 || q1 < 3) {
        narrowFallback().phasePair(re, im, q0, q1, k_lo, k_hi, even_re,
                                   even_im, odd_re, odd_im);
        return;
    }
    detail::countDispatch(kPhasePair, kBackendAvx512);
    // The XOR of bits q0 and q1 is constant over runs of length
    // 2^min(q0, q1) >= 8, so each run is one phase multiply.
    const U64 run = 1ULL << std::min(q0, q1);
    const __m512d cr[2] = {_mm512_set1_pd(even_re),
                           _mm512_set1_pd(odd_re)};
    const __m512d ci[2] = {_mm512_set1_pd(even_im),
                           _mm512_set1_pd(odd_im)};
    const double sr[2] = {even_re, odd_re};
    const double si[2] = {even_im, odd_im};
    U64 k = k_lo;
    while (k < k_hi) {
        const U64 run_end = std::min(k_hi, (k & ~(run - 1)) + run);
        const U64 bit = ((k >> q0) ^ (k >> q1)) & 1ULL;
        scaleRun(re + k, im + k, run_end - k, cr[bit], ci[bit], sr[bit],
                 si[bit]);
        k = run_end;
    }
}

void
avx512StratumPhaseTable(double *re, double *im, U64 q_mask,
                        U64 control_mask, const double *tab_re,
                        const double *tab_im, U64 k_lo, U64 k_hi)
{
    if (control_mask < q_mask &&
        (control_mask & (control_mask + 1)) == 0) {
        detail::countDispatch(kStratumPhaseTable, kBackendAvx512);
        // Contiguous low controls (the QFT shape): within each
        // q_mask-aligned stratum block the table index equals the low
        // bits of the amplitude index, so runs multiply element-wise
        // against contiguous table slices — pure vector loads.
        U64 k = k_lo;
        const U64 tsize = control_mask + 1;
        while (k < k_hi) {
            const U64 block_end =
                q_mask >= 8 ? std::min(k_hi, (k & ~(q_mask - 1)) + q_mask)
                            : k + 1;
            U64 i = insertZero(k, q_mask) | q_mask;
            U64 n = block_end - k;
            while (n > 0) {
                const U64 t0 = i & control_mask;
                const U64 chunk = std::min(n, tsize - t0);
                U64 v = 0;
                for (; v + 8 <= chunk; v += 8) {
                    __m512d ar = _mm512_loadu_pd(re + i + v);
                    __m512d ai = _mm512_loadu_pd(im + i + v);
                    const __m512d cr = _mm512_loadu_pd(tab_re + t0 + v);
                    const __m512d ci = _mm512_loadu_pd(tab_im + t0 + v);
                    complexScale8(ar, ai, cr, ci);
                    _mm512_storeu_pd(re + i + v, ar);
                    _mm512_storeu_pd(im + i + v, ai);
                }
                for (; v < chunk; ++v) {
                    const double xr = re[i + v], xi = im[i + v];
                    re[i + v] = tab_re[t0 + v] * xr - tab_im[t0 + v] * xi;
                    im[i + v] = tab_re[t0 + v] * xi + tab_im[t0 + v] * xr;
                }
                i += chunk;
                n -= chunk;
            }
            k = block_end;
        }
        return;
    }
    if (q_mask < 8) {
        // Scattered controls over sub-lane stratum blocks: the
        // touched amplitudes are not contiguous 8-runs, so the
        // 4-lane AVX2 gather (or scalar) handles it.
        narrowFallback().stratumPhaseTable(re, im, q_mask, control_mask,
                                           tab_re, tab_im, k_lo, k_hi);
        return;
    }
    // Scattered controls: within each q_mask-aligned block the
    // touched amplitudes run contiguously and the block start is
    // 8-aligned (q_mask >= 8), so the vectorized-PEXT index stream
    // plus vpgatherqpd replaces the per-element scalar PEXT loop.
    detail::countDispatch(kStratumPhaseTable, kBackendAvx512);
    const LaneIndexStream stream(control_mask);
    U64 k = k_lo;
    while (k < k_hi) {
        const U64 block_end = std::min(k_hi, (k & ~(q_mask - 1)) + q_mask);
        U64 i = insertZero(k, q_mask) | q_mask;
        for (; k < block_end && (i & 7ULL) != 0; ++k, ++i) {
            const U64 t = _pext_u64(i, control_mask);
            const double ar = re[i], ai = im[i];
            re[i] = tab_re[t] * ar - tab_im[t] * ai;
            im[i] = tab_re[t] * ai + tab_im[t] * ar;
        }
        for (; k + 8 <= block_end; k += 8, i += 8)
            gatherScale8(re + i, im + i, tab_re, tab_im,
                         stream.indices(i));
        for (; k < block_end; ++k, ++i) {
            const U64 t = _pext_u64(i, control_mask);
            const double ar = re[i], ai = im[i];
            re[i] = tab_re[t] * ar - tab_im[t] * ai;
            im[i] = tab_re[t] * ai + tab_im[t] * ar;
        }
    }
}

void
avx512PhaseTable(double *re, double *im, U64 mask, const double *tab_re,
                 const double *tab_im, U64 k_lo, U64 k_hi)
{
    detail::countDispatch(kPhaseTable, kBackendAvx512);
    if ((mask & (mask + 1)) == 0) {
        // Contiguous low mask: amplitudes multiply element-wise
        // against contiguous table slices.
        const U64 tsize = mask + 1;
        U64 k = k_lo;
        while (k < k_hi) {
            const U64 t0 = k & mask;
            const U64 chunk = std::min(k_hi - k, tsize - t0);
            U64 v = 0;
            for (; v + 8 <= chunk; v += 8) {
                __m512d ar = _mm512_loadu_pd(re + k + v);
                __m512d ai = _mm512_loadu_pd(im + k + v);
                const __m512d cr = _mm512_loadu_pd(tab_re + t0 + v);
                const __m512d ci = _mm512_loadu_pd(tab_im + t0 + v);
                complexScale8(ar, ai, cr, ci);
                _mm512_storeu_pd(re + k + v, ar);
                _mm512_storeu_pd(im + k + v, ai);
            }
            for (; v < chunk; ++v) {
                const double xr = re[k + v], xi = im[k + v];
                re[k + v] = tab_re[t0 + v] * xr - tab_im[t0 + v] * xi;
                im[k + v] = tab_re[t0 + v] * xi + tab_im[t0 + v] * xr;
            }
            k += chunk;
        }
        return;
    }
    const U64 low = mask & (~mask + 1);
    if (low >= 8) {
        // The table index is constant over each low-aligned run of
        // `low` amplitudes: one broadcast phase multiply per run.
        U64 k = k_lo;
        while (k < k_hi) {
            const U64 run_end = std::min(k_hi, (k & ~(low - 1)) + low);
            const U64 t = _pext_u64(k, mask);
            scaleRun(re + k, im + k, run_end - k,
                     _mm512_set1_pd(tab_re[t]), _mm512_set1_pd(tab_im[t]),
                     tab_re[t], tab_im[t]);
            k = run_end;
        }
        return;
    }
    // Scattered mask with table-index bits inside the lane: the
    // vectorized-PEXT index stream plus vpgatherqpd replaces the
    // per-element scalar PEXT loop (head/tail stay scalar so the
    // 8-lane base index is always 8-aligned).
    const LaneIndexStream stream(mask);
    U64 k = k_lo;
    for (; k < k_hi && (k & 7ULL) != 0; ++k) {
        const U64 t = _pext_u64(k, mask);
        const double ar = re[k], ai = im[k];
        re[k] = tab_re[t] * ar - tab_im[t] * ai;
        im[k] = tab_re[t] * ai + tab_im[t] * ar;
    }
    for (; k + 8 <= k_hi; k += 8)
        gatherScale8(re + k, im + k, tab_re, tab_im, stream.indices(k));
    for (; k < k_hi; ++k) {
        const U64 t = _pext_u64(k, mask);
        const double ar = re[k], ai = im[k];
        re[k] = tab_re[t] * ar - tab_im[t] * ai;
        im[k] = tab_re[t] * ai + tab_im[t] * ar;
    }
}

double
avx512Norm2(const double *re, const double *im, U64 lo, U64 hi)
{
    detail::countDispatch(kNorm2, kBackendAvx512);
    __m512d acc = _mm512_setzero_pd();
    U64 i = lo;
    for (; i + 8 <= hi; i += 8) {
        const __m512d r = _mm512_loadu_pd(re + i);
        const __m512d m = _mm512_loadu_pd(im + i);
        acc = _mm512_fmadd_pd(r, r, acc);
        acc = _mm512_fmadd_pd(m, m, acc);
    }
    alignas(64) double lanes[8];
    _mm512_store_pd(lanes, acc);
    double total = 0.0;
    for (double lane : lanes)
        total += lane;
    for (; i < hi; ++i)
        total += re[i] * re[i] + im[i] * im[i];
    return total;
}

void
avx512AccumulateBuckets(const std::uint32_t *bucket_of, const double *w,
                        U64 lo, U64 hi, double *mass)
{
    // The scatter-accumulate has intra-lane bucket conflicts, so this
    // backend runs it scalar too; the table entry is the dispatch
    // seam, not a speedup yet.
    detail::countDispatch(kAccumulateBuckets, kBackendAvx512);
    for (U64 i = lo; i < hi; ++i)
        mass[bucket_of[i]] += w[i];
}

double
avx512PosteriorUpdate(const std::uint32_t *bucket_of, const double *odds,
                      const double *mass, const double *w, double *post,
                      U64 lo, U64 hi)
{
    detail::countDispatch(kPosteriorUpdate, kBackendAvx512);
    const __m512d zero = _mm512_setzero_pd();
    __m512d acc = zero;
    U64 i = lo;
    for (; i + 8 <= hi; i += 8) {
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(bucket_of + i));
        const __m512d vo = _mm512_mask_i32gather_pd(
            _mm512_setzero_pd(), 0xFF, b, odds, 8);
        const __m512d vm = _mm512_mask_i32gather_pd(
            _mm512_setzero_pd(), 0xFF, b, mass, 8);
        const __m512d vw = _mm512_loadu_pd(w + i);
        // Keep the prior where the bucket carries no evidence or no
        // mass; the blended-away lanes may divide by zero, which is
        // benign (no trapping, result discarded).
        const __mmask8 keep = static_cast<__mmask8>(
            _mm512_cmp_pd_mask(vo, zero, _CMP_LT_OQ) |
            _mm512_cmp_pd_mask(vm, zero, _CMP_LE_OQ));
        const __m512d upd = _mm512_mul_pd(_mm512_div_pd(vw, vm), vo);
        const __m512d v = _mm512_mask_blend_pd(keep, upd, vw);
        _mm512_storeu_pd(post + i, v);
        acc = _mm512_add_pd(acc, v);
    }
    alignas(64) double lanes[8];
    _mm512_store_pd(lanes, acc);
    double sum = 0.0;
    for (double lane : lanes)
        sum += lane;
    for (; i < hi; ++i) {
        const std::uint32_t b = bucket_of[i];
        const double o = odds[b];
        double v;
        if (o < 0.0 || mass[b] <= 0.0)
            v = w[i];
        else
            v = (w[i] / mass[b]) * o;
        post[i] = v;
        sum += v;
    }
    return sum;
}

void
avx512Axpy(double *y, const double *x, double a, U64 lo, U64 hi)
{
    detail::countDispatch(kAxpy, kBackendAvx512);
    const __m512d va = _mm512_set1_pd(a);
    U64 i = lo;
    for (; i + 8 <= hi; i += 8) {
        const __m512d vy = _mm512_loadu_pd(y + i);
        const __m512d vx = _mm512_loadu_pd(x + i);
        // mul + add rather than FMA: per-element parity with the
        // scalar backend (only reductions regroup across backends).
        _mm512_storeu_pd(y + i,
                         _mm512_add_pd(vy, _mm512_mul_pd(va, vx)));
    }
    for (; i < hi; ++i)
        y[i] += a * x[i];
}

void
avx512Scale(double *x, double a, U64 lo, U64 hi)
{
    detail::countDispatch(kScale, kBackendAvx512);
    const __m512d va = _mm512_set1_pd(a);
    U64 i = lo;
    for (; i + 8 <= hi; i += 8)
        _mm512_storeu_pd(x + i,
                         _mm512_mul_pd(_mm512_loadu_pd(x + i), va));
    for (; i < hi; ++i)
        x[i] *= a;
}

double
avx512Sum(const double *x, U64 lo, U64 hi)
{
    detail::countDispatch(kSum, kBackendAvx512);
    __m512d acc = _mm512_setzero_pd();
    U64 i = lo;
    for (; i + 8 <= hi; i += 8)
        acc = _mm512_add_pd(acc, _mm512_loadu_pd(x + i));
    alignas(64) double lanes[8];
    _mm512_store_pd(lanes, acc);
    double total = 0.0;
    for (double lane : lanes)
        total += lane;
    for (; i < hi; ++i)
        total += x[i];
    return total;
}

double
avx512NormalizeBhattacharyya(double *v, const double *ref,
                             double inv_total, U64 lo, U64 hi)
{
    detail::countDispatch(kNormalizeBhattacharyya, kBackendAvx512);
    const __m512d vinv = _mm512_set1_pd(inv_total);
    const __m512d zero = _mm512_setzero_pd();
    __m512d acc = zero;
    U64 i = lo;
    for (; i + 8 <= hi; i += 8) {
        const __m512d scaled =
            _mm512_mul_pd(_mm512_loadu_pd(v + i), vinv);
        _mm512_storeu_pd(v + i, scaled);
        const __m512d vr = _mm512_loadu_pd(ref + i);
        const __mmask8 pos = static_cast<__mmask8>(
            _mm512_cmp_pd_mask(vr, zero, _CMP_GT_OQ) &
            _mm512_cmp_pd_mask(scaled, zero, _CMP_GT_OQ));
        // maskz form only to sidestep the undefined pass-through in
        // the plain intrinsic; sqrt of negative dead lanes is fine
        // either way (the accumulate below masks them out).
        const __m512d term =
            _mm512_maskz_sqrt_pd(0xFF, _mm512_mul_pd(vr, scaled));
        acc = _mm512_mask_add_pd(acc, pos, acc, term);
    }
    alignas(64) double lanes[8];
    _mm512_store_pd(lanes, acc);
    double bc = 0.0;
    for (double lane : lanes)
        bc += lane;
    for (; i < hi; ++i) {
        const double scaled = v[i] * inv_total;
        v[i] = scaled;
        if (ref[i] > 0.0 && scaled > 0.0)
            bc += std::sqrt(ref[i] * scaled);
    }
    return bc;
}

const KernelTable avx512Table = {
    "avx512",
    avx512Apply1q,
    avx512Apply1qDiag,
    avx512QuadPhase,
    avx512QuadSwap,
    avx512PhasePair,
    avx512StratumPhaseTable,
    avx512PhaseTable,
    avx512Norm2,
    avx512AccumulateBuckets,
    avx512PosteriorUpdate,
    avx512Axpy,
    avx512Scale,
    avx512Sum,
    avx512NormalizeBhattacharyya,
};

} // namespace

const KernelTable *
avx512Kernels()
{
    return &avx512Table;
}

} // namespace simd
} // namespace jigsaw

#endif // JIGSAW_HAVE_AVX512
