/**
 * @file
 * Split-complex (structure-of-arrays) amplitude kernels with SIMD
 * dispatch.
 *
 * The state vector stores real and imaginary parts in two separate
 * double arrays so 4-wide AVX2 lanes map directly onto amplitude
 * components (no interleaved-complex shuffling in the inner loop).
 * Every hot amplitude loop is expressed as a kernel over a pair/quad
 * index range, with two interchangeable implementations:
 *
 *  - scalar (src/common/simd.cpp): portable C++, always compiled, the
 *    golden fallback;
 *  - AVX2+FMA (src/common/simd_avx2.cpp): compiled with -mavx2 -mfma
 *    when the compiler supports it and the JIGSAW_NO_SIMD CMake
 *    option is off;
 *  - AVX-512 (src/common/simd_avx512.cpp): 8-lane kernels compiled
 *    with -mavx512f -mavx512dq under the same CMake gate, deferring
 *    to the AVX2 (or scalar) table for strides too short for a full
 *    512-bit lane.
 *
 * Selection happens once at process start: the widest table that was
 * compiled in and that the CPU reports support for wins (AVX-512 over
 * AVX2 over scalar), unless the JIGSAW_NO_SIMD environment variable
 * is set to a non-zero value, which forces scalar. All tables produce
 * identical distributions (asserted by test_perf_equivalence), so the
 * choice is purely a speed matter.
 */
#ifndef JIGSAW_COMMON_SIMD_H
#define JIGSAW_COMMON_SIMD_H

#include <cstdint>

namespace jigsaw {
namespace simd {

/**
 * Spread the low bits of @p x upward so the bit at the position of
 * @p stride (a power of two) is zero: the enumeration primitive for
 * visiting each strided amplitude pair exactly once.
 */
inline std::uint64_t
insertZero(std::uint64_t x, std::uint64_t stride)
{
    return ((x & ~(stride - 1)) << 1) | (x & (stride - 1));
}

/** A 2x2 complex matrix split into components, row-major m00..m11. */
struct Mat2Split
{
    double re[4];
    double im[4];
};

/**
 * One implementation of every amplitude kernel. All kernels operate on
 * split real/imaginary arrays and cover the half-open index range
 * [k_lo, k_hi) so callers can shard them across the thread pool;
 * disjoint ranges touch disjoint amplitudes.
 */
struct KernelTable
{
    /** Implementation name ("scalar" or "avx2") for diagnostics. */
    const char *name;

    /**
     * General 2x2 unitary over amplitude pairs: for each pair index k,
     * i0 = insertZero(k, stride), i1 = i0 | stride, and (a[i0], a[i1])
     * is replaced by m * (a[i0], a[i1]).
     */
    void (*apply1q)(double *re, double *im, std::uint64_t stride,
                    std::uint64_t k_lo, std::uint64_t k_hi,
                    const Mat2Split &m);

    /**
     * Diagonal 2x2: multiply the 0-stratum by d0 and the 1-stratum by
     * d1. When @p d0_is_one the 0-stratum is untouched (Z/S/T/RZ).
     */
    void (*apply1qDiag)(double *re, double *im, std::uint64_t stride,
                        std::uint64_t k_lo, std::uint64_t k_hi,
                        double d0_re, double d0_im, double d1_re,
                        double d1_im, bool d0_is_one);

    /**
     * Multiply the quad stratum a[insertZero2(k) | set_mask] by the
     * phase (p_re, p_im); insertZero2 spreads k over both strides.
     */
    void (*quadPhase)(double *re, double *im, std::uint64_t s_lo,
                      std::uint64_t s_hi, std::uint64_t set_mask,
                      std::uint64_t k_lo, std::uint64_t k_hi, double p_re,
                      double p_im);

    /** Swap a[insertZero2(k) | mask_a] with a[insertZero2(k) | mask_b]. */
    void (*quadSwap)(double *re, double *im, std::uint64_t s_lo,
                     std::uint64_t s_hi, std::uint64_t mask_a,
                     std::uint64_t mask_b, std::uint64_t k_lo,
                     std::uint64_t k_hi);

    /**
     * RZZ structure: multiply a[k] by `even` where bits q0 and q1 of k
     * agree and by `odd` where they differ, over k in [k_lo, k_hi).
     */
    void (*phasePair)(double *re, double *im, int q0, int q1,
                      std::uint64_t k_lo, std::uint64_t k_hi,
                      double even_re, double even_im, double odd_re,
                      double odd_im);

    /**
     * Fused controlled-phase run: for every stratum element index k in
     * [k_lo, k_hi), i = insertZero(k, q_mask) | q_mask (the target-
     * bit-set stratum) is multiplied by table[t] where t gathers the
     * bits of i selected by @p control_mask (ascending bit order —
     * the PEXT operation). The table has 2^popcount(control_mask)
     * complex entries and encodes the tensor product of the fused
     * gates' per-control phases. q_mask must not be in control_mask.
     */
    void (*stratumPhaseTable)(double *re, double *im,
                              std::uint64_t q_mask,
                              std::uint64_t control_mask,
                              const double *tab_re, const double *tab_im,
                              std::uint64_t k_lo, std::uint64_t k_hi);

    /**
     * Full-register diagonal phase table: every amplitude index k in
     * [k_lo, k_hi) is multiplied by table[t] where t gathers the bits
     * of k selected by @p mask (ascending bit order — PEXT). The
     * table has 2^popcount(mask) complex entries and encodes the
     * product of the phases of a fused run of diagonal gates (RZ/RZZ/
     * CP/CZ/Z/S/T...) over the masked qubits — the stratumPhaseTable
     * structure without the target-stratum restriction, which a run
     * containing RZ or RZZ needs because those gates phase *every*
     * stratum of their qubits.
     */
    void (*phaseTable)(double *re, double *im, std::uint64_t mask,
                       const double *tab_re, const double *tab_im,
                       std::uint64_t k_lo, std::uint64_t k_hi);

    /** Sum of re[i]^2 + im[i]^2 over [lo, hi). */
    double (*norm2)(const double *re, const double *im, std::uint64_t lo,
                    std::uint64_t hi);

    /** @name Reconstruction kernels.
     *
     * The Bayesian reconstruction round loops (core/bayesian.cpp)
     * expressed as flat-vector kernels so the per-marginal and
     * sharded paths dispatch through the same table as the amplitude
     * kernels — and so a future distributed tier (ROADMAP item 1) or
     * fourth backend can swap all of them at one seam. All cover
     * [lo, hi) half-open ranges; every backend computes bitwise-
     * identical per-element outputs (multiply/divide only, no FMA
     * contraction), while the returned reductions may group sums
     * differently per backend and agree only to tolerance.
     * @{ */

    /**
     * Bucket-mass accumulate: mass[bucket_of[i]] += w[i]. The scatter
     * has intra-lane conflicts (many outcomes share a bucket), so
     * every current backend runs it scalar; it lives in the table as
     * the seam a conflict-detecting or distributed version plugs into.
     */
    void (*accumulateBuckets)(const std::uint32_t *bucket_of,
                              const double *w, std::uint64_t lo,
                              std::uint64_t hi, double *mass);

    /**
     * Unnormalized Bayesian posterior: for each outcome i with bucket
     * b = bucket_of[i], post[i] = (w[i] / mass[b]) * odds[b], except
     * that outcomes whose bucket carries no evidence (odds[b] < 0) or
     * no prior mass (mass[b] <= 0) keep their prior value w[i].
     * Returns the sum of post over the range (the normalizer
     * contribution).
     */
    double (*posteriorUpdate)(const std::uint32_t *bucket_of,
                              const double *odds, const double *mass,
                              const double *w, double *post,
                              std::uint64_t lo, std::uint64_t hi);

    /** y[i] += a * x[i] over [lo, hi) (posterior sum into the prior). */
    void (*axpy)(double *y, const double *x, double a, std::uint64_t lo,
                 std::uint64_t hi);

    /** x[i] *= a over [lo, hi) (posterior/prior normalization). */
    void (*scale)(double *x, double a, std::uint64_t lo, std::uint64_t hi);

    /** Sum of x over [lo, hi). */
    double (*sum)(const double *x, std::uint64_t lo, std::uint64_t hi);

    /**
     * Fused normalize + Bhattacharyya term: v[i] *= inv_total, and the
     * return value accumulates sqrt(ref[i] * v[i]) over the elements
     * where both factors are positive — the convergence measure of one
     * reconstruction round against the previous round's output @p ref.
     */
    double (*normalizeBhattacharyya)(double *v, const double *ref,
                                     double inv_total, std::uint64_t lo,
                                     std::uint64_t hi);
    /** @} */
};

/** The portable scalar kernels (always available). */
const KernelTable &scalarKernels();

/**
 * The AVX2 kernels, or nullptr when this build has no AVX2 translation
 * unit (JIGSAW_NO_SIMD build, or a compiler without -mavx2).
 */
const KernelTable *avx2Kernels();

/**
 * The AVX-512 kernels, or nullptr when this build has no AVX-512
 * translation unit (JIGSAW_NO_SIMD build, or a compiler without
 * -mavx512f -mavx512dq). Callers must still check cpuid before
 * routing work here — activeKernels() does.
 */
const KernelTable *avx512Kernels();

/**
 * The table every StateVector uses, resolved once: the widest of
 * AVX-512 / AVX2 that was compiled in and that this CPU supports, and
 * scalar otherwise or when the JIGSAW_NO_SIMD environment variable is
 * set.
 */
const KernelTable &activeKernels();

/** @name Kernel-backend dispatch counters.
 *
 * Process-wide relaxed-atomic counts of kernel invocations per
 * (kernel, backend) pair, incremented by the backend that actually
 * executes the loop body — an AVX-512 entry that defers a short
 * stride to AVX2 or scalar counts under the table that ran, so the
 * counters answer "did the wide path actually execute?" (the gather
 * phase tables in particular). One invocation is one kernel call,
 * typically a thread-pool chunk of >= 2^14 elements, so the counting
 * cost is noise. Snapshots surface through ExecutorCounters /
 * ServiceStats / StreamStats and the JIGSAW_SUITE_TIMINGS_JSON
 * export.
 * @{ */

/** Kernel identifiers, one per KernelTable entry. */
enum Kernel : int
{
    kApply1q = 0,
    kApply1qDiag,
    kQuadPhase,
    kQuadSwap,
    kPhasePair,
    kStratumPhaseTable,
    kPhaseTable,
    kNorm2,
    kAccumulateBuckets,
    kPosteriorUpdate,
    kAxpy,
    kScale,
    kSum,
    kNormalizeBhattacharyya,
    kKernelCount
};

/** Backend identifiers (which table's implementation ran). */
enum Backend : int
{
    kBackendScalar = 0,
    kBackendAvx2,
    kBackendAvx512,
    kBackendCount
};

/** Short stable name for JSON keys ("phase_table", "axpy", ...). */
const char *kernelName(int kernel);

/** Short stable name ("scalar", "avx2", "avx512"). */
const char *backendName(int backend);

/** A snapshot of the process-wide dispatch counts. */
struct DispatchCounters
{
    std::uint64_t counts[kKernelCount][kBackendCount] = {};

    /** Total invocations that ran under @p backend. */
    std::uint64_t backendTotal(int backend) const
    {
        std::uint64_t total = 0;
        for (int k = 0; k < kKernelCount; ++k)
            total += counts[k][backend];
        return total;
    }

    /** Element-wise difference against an earlier snapshot. */
    DispatchCounters since(const DispatchCounters &earlier) const
    {
        DispatchCounters delta;
        for (int k = 0; k < kKernelCount; ++k)
            for (int b = 0; b < kBackendCount; ++b)
                delta.counts[k][b] =
                    counts[k][b] - earlier.counts[k][b];
        return delta;
    }
};

/** Snapshot the counters (relaxed loads; safe concurrent to kernels). */
DispatchCounters dispatchCounters();

/** Zero the counters (bench/test isolation; not thread-fenced). */
void resetDispatchCounters();

namespace detail {
/** Record one invocation; called by the backend that runs the loop. */
void countDispatch(int kernel, int backend);
} // namespace detail
/** @} */

} // namespace simd
} // namespace jigsaw

#endif // JIGSAW_COMMON_SIMD_H
