#include "common/alias.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/histogram.h"

namespace jigsaw {

AliasTable::AliasTable(const Pmf &pmf)
{
    std::vector<std::pair<BasisState, double>> entries;
    entries.reserve(pmf.support());
    for (const auto &[outcome, p] : pmf.probabilities()) {
        if (p > 0.0)
            entries.emplace_back(outcome, p);
    }
    build(std::move(entries));
}

AliasTable::AliasTable(std::vector<std::pair<BasisState, double>> entries)
{
    build(std::move(entries));
}

void
AliasTable::build(std::vector<std::pair<BasisState, double>> entries)
{
    if (entries.empty())
        return;
    // Outcome order, not hash order, so sampling is reproducible for
    // any two PMFs holding the same distribution.
    std::sort(entries.begin(), entries.end());

    const std::size_t n = entries.size();
    double total = 0.0;
    for (const auto &[outcome, w] : entries) {
        fatalIf(w < 0.0 || !std::isfinite(w),
                "AliasTable: weights must be finite and non-negative");
        total += w;
    }
    fatalIf(total <= 0.0, "AliasTable: total weight must be positive");

    outcomes_.resize(n);
    alias_.resize(n);
    threshold_.assign(n, 1.0);

    // Scale so the average bin weight is exactly 1, then pair each
    // under-full bin with an over-full donor (Vose's stable variant).
    std::vector<double> scaled(n);
    const double scale = static_cast<double>(n) / total;
    for (std::size_t i = 0; i < n; ++i) {
        outcomes_[i] = entries[i].first;
        alias_[i] = entries[i].first;
        scaled[i] = entries[i].second * scale;
    }

    std::vector<std::size_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        (scaled[i] < 1.0 ? small : large).push_back(i);

    while (!small.empty() && !large.empty()) {
        const std::size_t s = small.back();
        const std::size_t l = large.back();
        small.pop_back();
        threshold_[s] = scaled[s];
        alias_[s] = outcomes_[l];
        scaled[l] -= 1.0 - scaled[s];
        if (scaled[l] < 1.0) {
            large.pop_back();
            small.push_back(l);
        }
    }
    // Leftovers are full bins up to round-off; threshold_ stays 1.
}

BasisState
AliasTable::sample(Rng &rng) const
{
    fatalIf(outcomes_.empty(), "AliasTable::sample: empty table");
    const double u = rng.uniform() * static_cast<double>(outcomes_.size());
    std::size_t bin = static_cast<std::size_t>(u);
    if (bin >= outcomes_.size())
        bin = outcomes_.size() - 1;
    const double frac = u - static_cast<double>(bin);
    return frac < threshold_[bin] ? outcomes_[bin] : alias_[bin];
}

} // namespace jigsaw
