#include "common/log.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <iostream>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace jigsaw {
namespace log {

namespace {

/** Sink + logger registry state, function-local so any static-init
 *  log call finds it constructed. */
struct GlobalState {
    std::mutex sinkMutex;
    std::shared_ptr<Sink> sink;
    std::mutex registryMutex;
    std::unordered_map<std::string, std::unique_ptr<Logger>> loggers;
};

GlobalState &
state()
{
    static GlobalState instance;
    return instance;
}

std::int64_t
wallMsNow()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

std::uint64_t
threadToken()
{
    return static_cast<std::uint64_t>(
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

/** `2026-08-08T12:00:00.123Z` from epoch milliseconds (UTC). */
void
formatTimestamp(std::int64_t wall_ms, char (&buffer)[80])
{
    const std::time_t seconds = static_cast<std::time_t>(wall_ms / 1000);
    std::tm utc{};
#if defined(_WIN32)
    gmtime_s(&utc, &seconds);
#else
    gmtime_r(&seconds, &utc);
#endif
    const int millis = static_cast<int>(wall_ms % 1000);
    std::snprintf(buffer, sizeof(buffer),
                  "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", utc.tm_year + 1900,
                  utc.tm_mon + 1, utc.tm_mday, utc.tm_hour, utc.tm_min,
                  utc.tm_sec, millis < 0 ? 0 : millis);
}

/** True when a text-sink value needs quoting (spaces or quotes). */
bool
needsQuoting(const std::string &value)
{
    if (value.empty())
        return true;
    for (const char c : value) {
        if (c == ' ' || c == '"' || c == '=' || c == '\n' || c == '\t')
            return true;
    }
    return false;
}

void
appendJsonEscaped(std::string &out, std::string_view text)
{
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buffer;
            } else {
                out += c;
            }
            break;
        }
    }
}

Level
levelFromEnvironment()
{
    const char *spec = std::getenv("JIGSAW_LOG_LEVEL");
    if (!spec)
        return Level::Warn;
    return parseLevel(spec, Level::Warn);
}

} // namespace

const char *
levelName(Level level)
{
    switch (level) {
      case Level::Trace:
        return "trace";
      case Level::Debug:
        return "debug";
      case Level::Info:
        return "info";
      case Level::Warn:
        return "warn";
      case Level::Error:
        return "error";
      case Level::Off:
        return "off";
    }
    return "info";
}

Level
parseLevel(std::string_view text, Level fallback)
{
    std::string lowered;
    lowered.reserve(text.size());
    for (const char c : text)
        lowered += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (lowered == "trace" || lowered == "0")
        return Level::Trace;
    if (lowered == "debug" || lowered == "1")
        return Level::Debug;
    if (lowered == "info" || lowered == "2")
        return Level::Info;
    if (lowered == "warn" || lowered == "warning" || lowered == "3")
        return Level::Warn;
    if (lowered == "error" || lowered == "4")
        return Level::Error;
    if (lowered == "off" || lowered == "none" || lowered == "5")
        return Level::Off;
    return fallback;
}

Field
kv(std::string key, double value)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    return Field{std::move(key), buffer, Field::Kind::Num};
}

TextSink::TextSink(std::ostream &out) : out_(out) {}

void
TextSink::write(const Record &record)
{
    char stamp[80];
    formatTimestamp(record.wallMs, stamp);
    std::string line;
    line.reserve(96);
    line += stamp;
    line += ' ';
    char level[8];
    std::snprintf(level, sizeof(level), "%-5s", levelName(record.level));
    line += level;
    line += ' ';
    line.append(record.module.data(), record.module.size());
    line += ' ';
    line.append(record.message.data(), record.message.size());
    for (std::size_t i = 0; i < record.fieldCount; ++i) {
        const Field &field = record.fields[i];
        line += ' ';
        line += field.key;
        line += '=';
        if (field.kind == Field::Kind::Str && needsQuoting(field.value)) {
            line += '"';
            for (const char c : field.value) {
                if (c == '"' || c == '\\')
                    line += '\\';
                line += c == '\n' ? ' ' : c;
            }
            line += '"';
        } else {
            line += field.value;
        }
    }
    line += '\n';
    out_ << line;
    out_.flush();
}

JsonLinesSink::JsonLinesSink(std::ostream &out) : out_(out) {}

void
JsonLinesSink::write(const Record &record)
{
    std::string line;
    line.reserve(128);
    line += "{\"ts\":";
    line += std::to_string(record.wallMs);
    line += ",\"level\":\"";
    line += levelName(record.level);
    line += "\",\"module\":\"";
    appendJsonEscaped(line, record.module);
    line += "\",\"msg\":\"";
    appendJsonEscaped(line, record.message);
    line += "\",\"thread\":";
    line += std::to_string(record.thread);
    for (std::size_t i = 0; i < record.fieldCount; ++i) {
        const Field &field = record.fields[i];
        line += ",\"";
        appendJsonEscaped(line, field.key);
        line += "\":";
        if (field.kind == Field::Kind::Str) {
            line += '"';
            appendJsonEscaped(line, field.value);
            line += '"';
        } else {
            // Num/Bool values are emitted bare; kv() produced them
            // from to_string()/%.6g/true|false so they are valid
            // JSON tokens already.
            line += field.value;
        }
    }
    line += "}\n";
    out_ << line;
    out_.flush();
}

std::shared_ptr<Sink>
setSink(std::shared_ptr<Sink> sink)
{
    GlobalState &global = state();
    std::lock_guard<std::mutex> lock(global.sinkMutex);
    std::shared_ptr<Sink> previous = std::move(global.sink);
    global.sink = std::move(sink);
    return previous;
}

void
setRuntimeLevel(Level level)
{
    Logger::globalLevel().store(static_cast<int>(level),
                                std::memory_order_relaxed);
}

Level
runtimeLevel()
{
    return static_cast<Level>(
        Logger::globalLevel().load(std::memory_order_relaxed));
}

std::atomic<int> &
Logger::globalLevel()
{
    // Function-local so the env parse happens exactly once, before
    // first use, regardless of static-init order across TUs.
    static std::atomic<int> level{
        static_cast<int>(levelFromEnvironment())};
    return level;
}

Logger::Logger(std::string module) : module_(std::move(module)) {}

void
Logger::log(Level level, std::string_view message,
            std::initializer_list<Field> fields) const
{
    Record record;
    record.level = level;
    record.module = module_;
    record.message = message;
    record.fields = fields.begin();
    record.fieldCount = fields.size();
    record.wallMs = wallMsNow();
    record.thread = threadToken();

    GlobalState &global = state();
    std::lock_guard<std::mutex> lock(global.sinkMutex);
    if (!global.sink)
        global.sink = std::make_shared<TextSink>(std::cerr);
    global.sink->write(record);
}

Logger &
logger(const std::string &module)
{
    GlobalState &global = state();
    std::lock_guard<std::mutex> lock(global.registryMutex);
    std::unique_ptr<Logger> &slot = global.loggers[module];
    if (!slot)
        slot = std::make_unique<Logger>(module);
    return *slot;
}

} // namespace log
} // namespace jigsaw
