#include "common/csv.h"

#include <algorithm>
#include <iomanip>
#include <vector>

namespace jigsaw {

void
writeCsv(std::ostream &os, const Pmf &pmf, int max_rows)
{
    os << "bitstring,probability\n" << std::setprecision(12);
    int written = 0;
    for (const auto &[outcome, p] : pmf.sorted()) {
        if (max_rows >= 0 && written++ >= max_rows)
            break;
        os << toBitstring(outcome, pmf.nQubits()) << ',' << p << '\n';
    }
}

void
writeCsv(std::ostream &os, const Histogram &histogram, int max_rows)
{
    std::vector<std::pair<BasisState, std::uint64_t>> entries(
        histogram.counts().begin(), histogram.counts().end());
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    os << "bitstring,count\n";
    int written = 0;
    for (const auto &[outcome, count] : entries) {
        if (max_rows >= 0 && written++ >= max_rows)
            break;
        os << toBitstring(outcome, histogram.nQubits()) << ',' << count
           << '\n';
    }
}

} // namespace jigsaw
