/**
 * @file
 * Walker alias-table sampler over a sparse PMF.
 *
 * Setup is O(support); each draw is O(1) and consumes exactly one
 * uniform from the Rng, so sampling a histogram of T trials is O(T)
 * after an O(support) build — replacing the per-draw binary search of
 * the old cumulative-distribution sampler. Entries are sorted by
 * outcome at build time so a table built from the same PMF samples the
 * same stream regardless of hash-map iteration order.
 */
#ifndef JIGSAW_COMMON_ALIAS_H
#define JIGSAW_COMMON_ALIAS_H

#include <vector>

#include "common/bitops.h"
#include "common/rng.h"

namespace jigsaw {

class Pmf;

/** Precomputed alias table for O(1) categorical sampling. */
class AliasTable
{
  public:
    /** Empty table; sample() on it is an error. */
    AliasTable() = default;

    /** Build from the non-zero entries of @p pmf (need not be normalized). */
    explicit AliasTable(const Pmf &pmf);

    /** Build from explicit (outcome, weight) pairs. */
    explicit AliasTable(
        std::vector<std::pair<BasisState, double>> entries);

    /** True when the table has no entries. */
    bool empty() const { return outcomes_.empty(); }

    /** Number of entries in the table. */
    std::size_t size() const { return outcomes_.size(); }

    /** Draw one outcome; consumes one uniform from @p rng. */
    BasisState sample(Rng &rng) const;

  private:
    void build(std::vector<std::pair<BasisState, double>> entries);

    std::vector<BasisState> outcomes_; ///< Outcome of each bin.
    std::vector<BasisState> alias_;    ///< Alias outcome of each bin.
    std::vector<double> threshold_;    ///< Bin-local acceptance bound.
};

} // namespace jigsaw

#endif // JIGSAW_COMMON_ALIAS_H
