/**
 * @file
 * CSV export of histograms and PMFs for downstream plotting.
 */
#ifndef JIGSAW_COMMON_CSV_H
#define JIGSAW_COMMON_CSV_H

#include <ostream>

#include "common/histogram.h"

namespace jigsaw {

/**
 * Write @p pmf as "bitstring,probability" rows sorted by descending
 * probability. @p max_rows < 0 writes everything.
 */
void writeCsv(std::ostream &os, const Pmf &pmf, int max_rows = -1);

/**
 * Write @p histogram as "bitstring,count" rows sorted by descending
 * count. @p max_rows < 0 writes everything.
 */
void writeCsv(std::ostream &os, const Histogram &histogram,
              int max_rows = -1);

} // namespace jigsaw

#endif // JIGSAW_COMMON_CSV_H
