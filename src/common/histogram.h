/**
 * @file
 * Sparse histogram (trial counts) and PMF (probabilities) over basis
 * states.
 *
 * Both containers store only observed/non-zero outcomes, which is what
 * bounds JigSaw's reconstruction complexity (paper Section 7.1): the
 * number of entries is limited by the number of trials rather than by
 * the 2^n possible outcomes.
 */
#ifndef JIGSAW_COMMON_HISTOGRAM_H
#define JIGSAW_COMMON_HISTOGRAM_H

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bitops.h"
#include "common/rng.h"

namespace jigsaw {

class Pmf;

/**
 * Counts of measurement outcomes over a fixed number of qubits.
 */
class Histogram
{
  public:
    using Map = std::unordered_map<BasisState, std::uint64_t>;

    /** Construct an empty histogram over @p n_qubits qubits. */
    explicit Histogram(int n_qubits);

    /** Record @p count observations of @p outcome. */
    void add(BasisState outcome, std::uint64_t count = 1);

    /** Merge all counts of @p other into this histogram. */
    void merge(const Histogram &other);

    /** Number of qubits covered by each outcome. */
    int nQubits() const { return nQubits_; }

    /** Total number of recorded trials. */
    std::uint64_t totalCount() const { return total_; }

    /** Number of distinct outcomes observed. */
    std::size_t uniqueOutcomes() const { return counts_.size(); }

    /** Count recorded for @p outcome (0 if never observed). */
    std::uint64_t count(BasisState outcome) const;

    /** Convert to a normalized PMF. */
    Pmf toPmf() const;

    /**
     * Project onto a subset of qubits: outcome bits at positions
     * @p qubits (ascending) become the low bits of the marginal key.
     */
    Histogram marginal(const std::vector<int> &qubits) const;

    /** Underlying map (outcome -> count). */
    const Map &counts() const { return counts_; }

  private:
    int nQubits_;
    std::uint64_t total_ = 0;
    Map counts_;
};

/**
 * A sparse probability mass function over basis states.
 */
class Pmf
{
  public:
    using Map = std::unordered_map<BasisState, double>;

    /** Construct an empty PMF over @p n_qubits qubits. */
    explicit Pmf(int n_qubits);

    /** Construct from an explicit (outcome -> probability) map. */
    Pmf(int n_qubits, Map probabilities);

    /** Pre-size the hash table for @p n expected outcomes. */
    void reserve(std::size_t n) { probs_.reserve(n); }

    /** Set the probability of @p outcome (unnormalized until normalize()). */
    void set(BasisState outcome, double probability);

    /** Add @p delta to the probability of @p outcome. */
    void accumulate(BasisState outcome, double delta);

    /** Probability of @p outcome (0 when absent). */
    double prob(BasisState outcome) const;

    /** Number of qubits covered by each outcome. */
    int nQubits() const { return nQubits_; }

    /** Number of outcomes with non-zero stored probability. */
    std::size_t support() const { return probs_.size(); }

    /** Sum of all stored probabilities. */
    double totalMass() const;

    /** Rescale so the probabilities sum to 1; no-op on zero mass. */
    void normalize();

    /** Remove entries below @p threshold (post-normalization cleanup). */
    void prune(double threshold);

    /** Marginal PMF over the given (ascending) qubit positions. */
    Pmf marginal(const std::vector<int> &qubits) const;

    /** Outcome with the highest probability; 0 for an empty PMF. */
    BasisState mode() const;

    /** Entries sorted by descending probability. */
    std::vector<std::pair<BasisState, double>> sorted() const;

    /** Draw one outcome proportionally to the stored probabilities. */
    BasisState sample(Rng &rng) const;

    /** Convert to a histogram of @p trials samples (multinomial). */
    Histogram sampleHistogram(std::uint64_t trials, Rng &rng) const;

    /** Underlying map (outcome -> probability). */
    const Map &probabilities() const { return probs_; }

  private:
    int nQubits_;
    Map probs_;
};

/** Total variation distance, (1/2) sum |p - q| over the joint support. */
double totalVariationDistance(const Pmf &p, const Pmf &q);

/** Hellinger distance in [0, 1]. */
double hellingerDistance(const Pmf &p, const Pmf &q);

/** Kullback-Leibler divergence D(p || q), with q floored at 1e-12. */
double klDivergence(const Pmf &p, const Pmf &q);

} // namespace jigsaw

#endif // JIGSAW_COMMON_HISTOGRAM_H
