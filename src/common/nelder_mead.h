/**
 * @file
 * Nelder-Mead derivative-free minimizer.
 *
 * Used to optimize QAOA angles against the noiseless simulator so the
 * QAOA workloads run at (locally) optimal parameters, mirroring the
 * classical outer loop a QAOA deployment would use.
 */
#ifndef JIGSAW_COMMON_NELDER_MEAD_H
#define JIGSAW_COMMON_NELDER_MEAD_H

#include <functional>
#include <vector>

namespace jigsaw {

/** Result of a Nelder-Mead run. */
struct OptimizeResult
{
    std::vector<double> x;   ///< Best parameter vector found.
    double value = 0.0;      ///< Objective at x.
    int iterations = 0;      ///< Iterations performed.
    bool converged = false;  ///< Simplex spread fell below tolerance.
};

/** Tuning knobs for nelderMead(). */
struct NelderMeadOptions
{
    int maxIterations = 400;
    double tolerance = 1e-7;   ///< Stop when f-spread across simplex < tol.
    double initialStep = 0.25; ///< Simplex edge length around the start.
};

/**
 * Minimize @p objective starting from @p start.
 *
 * Standard reflect/expand/contract/shrink simplex method with
 * coefficients (1, 2, 0.5, 0.5).
 */
OptimizeResult nelderMead(
    const std::function<double(const std::vector<double> &)> &objective,
    const std::vector<double> &start,
    const NelderMeadOptions &options = {});

} // namespace jigsaw

#endif // JIGSAW_COMMON_NELDER_MEAD_H
