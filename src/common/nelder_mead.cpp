#include "common/nelder_mead.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace jigsaw {

OptimizeResult
nelderMead(const std::function<double(const std::vector<double> &)> &objective,
           const std::vector<double> &start,
           const NelderMeadOptions &options)
{
    fatalIf(start.empty(), "nelderMead: empty start vector");
    const std::size_t dim = start.size();

    struct Vertex
    {
        std::vector<double> x;
        double f;
    };

    std::vector<Vertex> simplex;
    simplex.reserve(dim + 1);
    simplex.push_back({start, objective(start)});
    for (std::size_t i = 0; i < dim; ++i) {
        std::vector<double> x = start;
        x[i] += options.initialStep;
        simplex.push_back({x, objective(x)});
    }

    auto by_value = [](const Vertex &a, const Vertex &b) {
        return a.f < b.f;
    };

    OptimizeResult result;
    int iter = 0;
    for (; iter < options.maxIterations; ++iter) {
        std::sort(simplex.begin(), simplex.end(), by_value);
        if (std::abs(simplex.back().f - simplex.front().f) <
            options.tolerance) {
            result.converged = true;
            break;
        }

        // Centroid of all but the worst vertex.
        std::vector<double> centroid(dim, 0.0);
        for (std::size_t v = 0; v < dim; ++v) {
            for (std::size_t i = 0; i < dim; ++i)
                centroid[i] += simplex[v].x[i];
        }
        for (std::size_t i = 0; i < dim; ++i)
            centroid[i] /= static_cast<double>(dim);

        auto blend = [&](double coeff) {
            std::vector<double> x(dim);
            for (std::size_t i = 0; i < dim; ++i) {
                x[i] = centroid[i] +
                       coeff * (centroid[i] - simplex.back().x[i]);
            }
            return x;
        };

        const std::vector<double> reflected = blend(1.0);
        const double f_reflected = objective(reflected);

        if (f_reflected < simplex.front().f) {
            const std::vector<double> expanded = blend(2.0);
            const double f_expanded = objective(expanded);
            if (f_expanded < f_reflected)
                simplex.back() = {expanded, f_expanded};
            else
                simplex.back() = {reflected, f_reflected};
            continue;
        }
        if (f_reflected < simplex[dim - 1].f) {
            simplex.back() = {reflected, f_reflected};
            continue;
        }

        const std::vector<double> contracted = blend(-0.5);
        const double f_contracted = objective(contracted);
        if (f_contracted < simplex.back().f) {
            simplex.back() = {contracted, f_contracted};
            continue;
        }

        // Shrink toward the best vertex.
        for (std::size_t v = 1; v <= dim; ++v) {
            for (std::size_t i = 0; i < dim; ++i) {
                simplex[v].x[i] = simplex[0].x[i] +
                                  0.5 * (simplex[v].x[i] - simplex[0].x[i]);
            }
            simplex[v].f = objective(simplex[v].x);
        }
    }

    std::sort(simplex.begin(), simplex.end(), by_value);
    result.x = simplex.front().x;
    result.value = simplex.front().f;
    result.iterations = iter;
    return result;
}

} // namespace jigsaw
