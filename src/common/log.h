/**
 * @file
 * Dependency-free leveled structured logging.
 *
 * Design goals, in order:
 *
 *  1. **Free when disarmed.** The hot paths this library instruments
 *     (per-job scheduler transitions, per-window dispatch) run tens of
 *     thousands of times per second; a disabled log statement must
 *     cost one relaxed atomic load and one predictable branch, with
 *     message and field arguments never evaluated. The pattern is the
 *     same as FaultInjector::armed(): a single
 *     `level_.load(std::memory_order_relaxed)` guards everything.
 *  2. **Structured.** Every record is (timestamp, level, module,
 *     message, key=value fields). The text sink renders
 *     `key=value` pairs; the JSON-lines sink emits one JSON object
 *     per record so logs are machine-parseable without a regex.
 *  3. **No dependencies.** No spdlog, no fmt: iostreams and
 *     std::string only, because the container bakes in nothing else.
 *
 * Usage:
 *
 *     static log::Logger &lg = log::logger("core.scheduler");
 *     JIGSAW_LOG_INFO(lg, "job shed",
 *                     log::kv("class", "Low"), log::kv("backlog", n));
 *
 * The runtime level comes from `JIGSAW_LOG_LEVEL`
 * (trace|debug|info|warn|error|off, default warn) parsed once at
 * startup; setRuntimeLevel() overrides it programmatically. A
 * compile-time floor (`JIGSAW_LOG_COMPILE_LEVEL`, default Trace so
 * everything is compiled in) lets a build drop levels entirely: the
 * level comparison in the macro is a constant fold, so statements
 * below the floor vanish.
 */
#ifndef JIGSAW_COMMON_LOG_H
#define JIGSAW_COMMON_LOG_H

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>

namespace jigsaw {
namespace log {

enum class Level : int {
    Trace = 0,
    Debug = 1,
    Info = 2,
    Warn = 3,
    Error = 4,
    Off = 5,
};

/** Numeric floor below which log statements are compiled out.
 *  Override with -DJIGSAW_LOG_COMPILE_LEVEL=2 to drop Trace/Debug
 *  call sites from the binary entirely. */
#ifndef JIGSAW_LOG_COMPILE_LEVEL
#define JIGSAW_LOG_COMPILE_LEVEL 0
#endif

/** Lower-case level name ("trace".."error", "off"). */
const char *levelName(Level level);

/** Parse a level name or digit; returns fallback when unrecognised. */
Level parseLevel(std::string_view text, Level fallback);

/** One structured key=value field. The kind steers JSON emission
 *  (numbers and booleans unquoted). */
struct Field {
    enum class Kind { Str, Num, Bool };
    std::string key;
    std::string value;
    Kind kind = Kind::Str;
};

inline Field
kv(std::string key, std::string value)
{
    return Field{std::move(key), std::move(value), Field::Kind::Str};
}

inline Field
kv(std::string key, const char *value)
{
    return Field{std::move(key), value ? value : "", Field::Kind::Str};
}

inline Field
kv(std::string key, bool value)
{
    return Field{std::move(key), value ? "true" : "false",
                 Field::Kind::Bool};
}

Field kv(std::string key, double value);

template <typename T>
    requires std::is_integral_v<T> && (!std::is_same_v<T, bool>)
Field
kv(std::string key, T value)
{
    return Field{std::move(key), std::to_string(value), Field::Kind::Num};
}

/** A fully-formed record, handed to the sink under the sink mutex. */
struct Record {
    Level level = Level::Info;
    std::string_view module;
    std::string_view message;
    const Field *fields = nullptr;
    std::size_t fieldCount = 0;
    /** Milliseconds since the Unix epoch (wall clock). */
    std::int64_t wallMs = 0;
    /** Hashed std::this_thread::get_id() — stable within a run. */
    std::uint64_t thread = 0;
};

/** Where rendered records go. write() is called under a global mutex,
 *  so sinks need no locking of their own. */
class Sink
{
  public:
    virtual ~Sink() = default;
    virtual void write(const Record &record) = 0;
};

/** Human-readable single-line text:
 *  `2026-08-08T12:00:00.123Z warn  core.scheduler job shed class=Low` */
class TextSink : public Sink
{
  public:
    explicit TextSink(std::ostream &out);
    void write(const Record &record) override;

  private:
    std::ostream &out_;
};

/** One JSON object per line:
 *  `{"ts":...,"level":"warn","module":"core.scheduler","msg":...}` */
class JsonLinesSink : public Sink
{
  public:
    explicit JsonLinesSink(std::ostream &out);
    void write(const Record &record) override;

  private:
    std::ostream &out_;
};

/** Replace the process-wide sink (null restores the default stderr
 *  text sink). Returns the previous sink so tests can restore it. */
std::shared_ptr<Sink> setSink(std::shared_ptr<Sink> sink);

/** Process-wide runtime level. The initial value is parsed from
 *  JIGSAW_LOG_LEVEL during static initialisation (default Warn). */
void setRuntimeLevel(Level level);
Level runtimeLevel();

/**
 * A named logger. Instances are interned per module name and live for
 * the process lifetime, so call sites cache a reference:
 *
 *     static log::Logger &lg = log::logger("core.worker");
 *
 * enabled() is the disarmed fast path: one relaxed load of the global
 * runtime level and one compare.
 */
class Logger
{
  public:
    explicit Logger(std::string module);
    Logger(const Logger &) = delete;
    Logger &operator=(const Logger &) = delete;

    const std::string &module() const { return module_; }

    bool
    enabled(Level level) const
    {
        return static_cast<int>(level) >=
               globalLevel().load(std::memory_order_relaxed);
    }

    /** Render and emit; call only after enabled() (the macros do). */
    void log(Level level, std::string_view message,
             std::initializer_list<Field> fields) const;

  private:
    friend void setRuntimeLevel(Level);
    friend Level runtimeLevel();
    static std::atomic<int> &globalLevel();

    std::string module_;
};

/** Intern and return the logger named @p module. */
Logger &logger(const std::string &module);

} // namespace log
} // namespace jigsaw

/** Guard: constant-folds the compile floor, then one relaxed load. */
#define JIGSAW_LOG_ENABLED(lg, lvl)                                          \
    (static_cast<int>(lvl) >= JIGSAW_LOG_COMPILE_LEVEL && (lg).enabled(lvl))

#define JIGSAW_LOG_AT(lg, lvl, msg, ...)                                     \
    do {                                                                     \
        if (JIGSAW_LOG_ENABLED(lg, lvl))                                     \
            (lg).log(lvl, msg, {__VA_ARGS__});                               \
    } while (0)

#define JIGSAW_LOG_TRACE(lg, msg, ...)                                       \
    JIGSAW_LOG_AT(lg, ::jigsaw::log::Level::Trace, msg __VA_OPT__(, )        \
                      __VA_ARGS__)
#define JIGSAW_LOG_DEBUG(lg, msg, ...)                                       \
    JIGSAW_LOG_AT(lg, ::jigsaw::log::Level::Debug, msg __VA_OPT__(, )        \
                      __VA_ARGS__)
#define JIGSAW_LOG_INFO(lg, msg, ...)                                        \
    JIGSAW_LOG_AT(lg, ::jigsaw::log::Level::Info, msg __VA_OPT__(, )         \
                      __VA_ARGS__)
#define JIGSAW_LOG_WARN(lg, msg, ...)                                        \
    JIGSAW_LOG_AT(lg, ::jigsaw::log::Level::Warn, msg __VA_OPT__(, )         \
                      __VA_ARGS__)
#define JIGSAW_LOG_ERROR(lg, msg, ...)                                       \
    JIGSAW_LOG_AT(lg, ::jigsaw::log::Level::Error, msg __VA_OPT__(, )        \
                      __VA_ARGS__)

#endif // JIGSAW_COMMON_LOG_H
