/**
 * @file
 * Portable scalar kernels and the one-time backend selection.
 */
#include "common/simd.h"

#include <atomic>
#include <cmath>
#include <cstdlib>

namespace jigsaw {
namespace simd {

namespace {

using U64 = std::uint64_t;

/** The process-wide (kernel, backend) invocation counts. */
std::atomic<std::uint64_t> g_dispatch[kKernelCount][kBackendCount];

constexpr const char *kKernelNames[kKernelCount] = {
    "apply1q",
    "apply1q_diag",
    "quad_phase",
    "quad_swap",
    "phase_pair",
    "stratum_phase_table",
    "phase_table",
    "norm2",
    "accumulate_buckets",
    "posterior_update",
    "axpy",
    "scale",
    "sum",
    "normalize_bhattacharyya",
};

constexpr const char *kBackendNames[kBackendCount] = {
    "scalar",
    "avx2",
    "avx512",
};

inline U64
insertZero2(U64 k, U64 s_lo, U64 s_hi)
{
    return insertZero(insertZero(k, s_lo), s_hi);
}

void
scalarApply1q(double *re, double *im, U64 stride, U64 k_lo, U64 k_hi,
              const Mat2Split &m)
{
    detail::countDispatch(kApply1q, kBackendScalar);
    for (U64 k = k_lo; k < k_hi; ++k) {
        const U64 i0 = insertZero(k, stride);
        const U64 i1 = i0 | stride;
        const double a0r = re[i0], a0i = im[i0];
        const double a1r = re[i1], a1i = im[i1];
        re[i0] = m.re[0] * a0r - m.im[0] * a0i + m.re[1] * a1r -
                 m.im[1] * a1i;
        im[i0] = m.re[0] * a0i + m.im[0] * a0r + m.re[1] * a1i +
                 m.im[1] * a1r;
        re[i1] = m.re[2] * a0r - m.im[2] * a0i + m.re[3] * a1r -
                 m.im[3] * a1i;
        im[i1] = m.re[2] * a0i + m.im[2] * a0r + m.re[3] * a1i +
                 m.im[3] * a1r;
    }
}

void
scalarApply1qDiag(double *re, double *im, U64 stride, U64 k_lo, U64 k_hi,
                  double d0r, double d0i, double d1r, double d1i,
                  bool d0_is_one)
{
    detail::countDispatch(kApply1qDiag, kBackendScalar);
    for (U64 k = k_lo; k < k_hi; ++k) {
        const U64 i0 = insertZero(k, stride);
        const U64 i1 = i0 | stride;
        if (!d0_is_one) {
            const double a0r = re[i0], a0i = im[i0];
            re[i0] = d0r * a0r - d0i * a0i;
            im[i0] = d0r * a0i + d0i * a0r;
        }
        const double a1r = re[i1], a1i = im[i1];
        re[i1] = d1r * a1r - d1i * a1i;
        im[i1] = d1r * a1i + d1i * a1r;
    }
}

void
scalarQuadPhase(double *re, double *im, U64 s_lo, U64 s_hi, U64 set_mask,
                U64 k_lo, U64 k_hi, double p_re, double p_im)
{
    detail::countDispatch(kQuadPhase, kBackendScalar);
    for (U64 k = k_lo; k < k_hi; ++k) {
        const U64 i = insertZero2(k, s_lo, s_hi) | set_mask;
        const double ar = re[i], ai = im[i];
        re[i] = p_re * ar - p_im * ai;
        im[i] = p_re * ai + p_im * ar;
    }
}

void
scalarQuadSwap(double *re, double *im, U64 s_lo, U64 s_hi, U64 mask_a,
               U64 mask_b, U64 k_lo, U64 k_hi)
{
    detail::countDispatch(kQuadSwap, kBackendScalar);
    for (U64 k = k_lo; k < k_hi; ++k) {
        const U64 base = insertZero2(k, s_lo, s_hi);
        const U64 ia = base | mask_a;
        const U64 ib = base | mask_b;
        const double tr = re[ia], ti = im[ia];
        re[ia] = re[ib];
        im[ia] = im[ib];
        re[ib] = tr;
        im[ib] = ti;
    }
}

void
scalarPhasePair(double *re, double *im, int q0, int q1, U64 k_lo, U64 k_hi,
                double even_re, double even_im, double odd_re,
                double odd_im)
{
    detail::countDispatch(kPhasePair, kBackendScalar);
    const double pr[2] = {even_re, odd_re};
    const double pi[2] = {even_im, odd_im};
    for (U64 k = k_lo; k < k_hi; ++k) {
        const U64 bit = ((k >> q0) ^ (k >> q1)) & 1ULL;
        const double ar = re[k], ai = im[k];
        re[k] = pr[bit] * ar - pi[bit] * ai;
        im[k] = pr[bit] * ai + pi[bit] * ar;
    }
}

/** Gather the bits of @p x selected by @p mask (ascending; PEXT). */
inline U64
extractByMask(U64 x, U64 mask)
{
    U64 r = 0;
    int j = 0;
    while (mask != 0) {
        const U64 low = mask & (~mask + 1);
        if ((x & low) != 0)
            r |= 1ULL << j;
        ++j;
        mask ^= low;
    }
    return r;
}

void
scalarStratumPhaseTable(double *re, double *im, U64 q_mask,
                        U64 control_mask, const double *tab_re,
                        const double *tab_im, U64 k_lo, U64 k_hi)
{
    detail::countDispatch(kStratumPhaseTable, kBackendScalar);
    if (control_mask < q_mask &&
        (control_mask & (control_mask + 1)) == 0) {
        // Contiguous low controls: the table index is just the low
        // bits of the stratum index, so each q_mask-aligned block
        // walks the table in order (block length == table size).
        for (U64 k = k_lo; k < k_hi; ++k) {
            const U64 i = insertZero(k, q_mask) | q_mask;
            const U64 t = i & control_mask;
            const double ar = re[i], ai = im[i];
            re[i] = tab_re[t] * ar - tab_im[t] * ai;
            im[i] = tab_re[t] * ai + tab_im[t] * ar;
        }
        return;
    }
    for (U64 k = k_lo; k < k_hi; ++k) {
        const U64 i = insertZero(k, q_mask) | q_mask;
        const U64 t = extractByMask(i, control_mask);
        const double ar = re[i], ai = im[i];
        re[i] = tab_re[t] * ar - tab_im[t] * ai;
        im[i] = tab_re[t] * ai + tab_im[t] * ar;
    }
}

void
scalarPhaseTable(double *re, double *im, U64 mask, const double *tab_re,
                 const double *tab_im, U64 k_lo, U64 k_hi)
{
    detail::countDispatch(kPhaseTable, kBackendScalar);
    if ((mask & (mask + 1)) == 0) {
        // Contiguous low mask: the table index is just the low bits
        // of the amplitude index, so the table is walked in order.
        for (U64 k = k_lo; k < k_hi; ++k) {
            const U64 t = k & mask;
            const double ar = re[k], ai = im[k];
            re[k] = tab_re[t] * ar - tab_im[t] * ai;
            im[k] = tab_re[t] * ai + tab_im[t] * ar;
        }
        return;
    }
    for (U64 k = k_lo; k < k_hi; ++k) {
        const U64 t = extractByMask(k, mask);
        const double ar = re[k], ai = im[k];
        re[k] = tab_re[t] * ar - tab_im[t] * ai;
        im[k] = tab_re[t] * ai + tab_im[t] * ar;
    }
}

double
scalarNorm2(const double *re, const double *im, U64 lo, U64 hi)
{
    detail::countDispatch(kNorm2, kBackendScalar);
    double total = 0.0;
    for (U64 i = lo; i < hi; ++i)
        total += re[i] * re[i] + im[i] * im[i];
    return total;
}

void
scalarAccumulateBuckets(const std::uint32_t *bucket_of, const double *w,
                        U64 lo, U64 hi, double *mass)
{
    detail::countDispatch(kAccumulateBuckets, kBackendScalar);
    for (U64 i = lo; i < hi; ++i)
        mass[bucket_of[i]] += w[i];
}

double
scalarPosteriorUpdate(const std::uint32_t *bucket_of, const double *odds,
                      const double *mass, const double *w, double *post,
                      U64 lo, U64 hi)
{
    detail::countDispatch(kPosteriorUpdate, kBackendScalar);
    double sum = 0.0;
    for (U64 i = lo; i < hi; ++i) {
        const std::uint32_t b = bucket_of[i];
        const double o = odds[b];
        double v;
        if (o < 0.0 || mass[b] <= 0.0)
            v = w[i];
        else
            v = (w[i] / mass[b]) * o;
        post[i] = v;
        sum += v;
    }
    return sum;
}

void
scalarAxpy(double *y, const double *x, double a, U64 lo, U64 hi)
{
    detail::countDispatch(kAxpy, kBackendScalar);
    for (U64 i = lo; i < hi; ++i)
        y[i] += a * x[i];
}

void
scalarScale(double *x, double a, U64 lo, U64 hi)
{
    detail::countDispatch(kScale, kBackendScalar);
    for (U64 i = lo; i < hi; ++i)
        x[i] *= a;
}

double
scalarSum(const double *x, U64 lo, U64 hi)
{
    detail::countDispatch(kSum, kBackendScalar);
    double total = 0.0;
    for (U64 i = lo; i < hi; ++i)
        total += x[i];
    return total;
}

double
scalarNormalizeBhattacharyya(double *v, const double *ref,
                             double inv_total, U64 lo, U64 hi)
{
    detail::countDispatch(kNormalizeBhattacharyya, kBackendScalar);
    double bc = 0.0;
    for (U64 i = lo; i < hi; ++i) {
        const double scaled = v[i] * inv_total;
        v[i] = scaled;
        if (ref[i] > 0.0 && scaled > 0.0)
            bc += std::sqrt(ref[i] * scaled);
    }
    return bc;
}

const KernelTable scalarTable = {
    "scalar",
    scalarApply1q,
    scalarApply1qDiag,
    scalarQuadPhase,
    scalarQuadSwap,
    scalarPhasePair,
    scalarStratumPhaseTable,
    scalarPhaseTable,
    scalarNorm2,
    scalarAccumulateBuckets,
    scalarPosteriorUpdate,
    scalarAxpy,
    scalarScale,
    scalarSum,
    scalarNormalizeBhattacharyya,
};

bool
simdDisabledByEnv()
{
    const char *env = std::getenv("JIGSAW_NO_SIMD");
    return env != nullptr && env[0] != '\0' && !(env[0] == '0' &&
                                                 env[1] == '\0');
}

} // namespace

const KernelTable &
scalarKernels()
{
    return scalarTable;
}

const char *
kernelName(int kernel)
{
    return kernel >= 0 && kernel < kKernelCount ? kKernelNames[kernel]
                                                : "unknown";
}

const char *
backendName(int backend)
{
    return backend >= 0 && backend < kBackendCount
               ? kBackendNames[backend]
               : "unknown";
}

DispatchCounters
dispatchCounters()
{
    DispatchCounters snapshot;
    for (int k = 0; k < kKernelCount; ++k)
        for (int b = 0; b < kBackendCount; ++b)
            snapshot.counts[k][b] =
                g_dispatch[k][b].load(std::memory_order_relaxed);
    return snapshot;
}

void
resetDispatchCounters()
{
    for (auto &row : g_dispatch)
        for (auto &cell : row)
            cell.store(0, std::memory_order_relaxed);
}

namespace detail {

void
countDispatch(int kernel, int backend)
{
    g_dispatch[kernel][backend].fetch_add(1, std::memory_order_relaxed);
}

} // namespace detail

#ifndef JIGSAW_HAVE_AVX2
const KernelTable *
avx2Kernels()
{
    return nullptr;
}
#endif

#ifndef JIGSAW_HAVE_AVX512
const KernelTable *
avx512Kernels()
{
    return nullptr;
}
#endif

const KernelTable &
activeKernels()
{
    static const KernelTable *active = [] {
        if (simdDisabledByEnv())
            return &scalarTable;
#if defined(__GNUC__) || defined(__clang__)
        // The AVX-512 table also executes PEXT (and may defer to the
        // AVX2 table), so BMI2 must be present too.
        const KernelTable *avx512 = avx512Kernels();
        if (avx512 != nullptr && __builtin_cpu_supports("avx512f") &&
            __builtin_cpu_supports("avx512dq") &&
            __builtin_cpu_supports("bmi2")) {
            return avx512;
        }
        const KernelTable *avx2 = avx2Kernels();
        if (avx2 != nullptr && __builtin_cpu_supports("avx2") &&
            __builtin_cpu_supports("bmi2")) {
            return avx2;
        }
#endif
        return &scalarTable;
    }();
    return *active;
}

} // namespace simd
} // namespace jigsaw
