/**
 * @file
 * AVX2+FMA amplitude kernels over split real/imaginary arrays.
 *
 * This translation unit is compiled with -mavx2 -mfma (see the
 * top-level CMakeLists.txt) and is excluded entirely when the
 * JIGSAW_NO_SIMD option is on, so the rest of the library stays
 * buildable for the baseline x86-64 target; activeKernels() only
 * routes here after a runtime cpuid check.
 *
 * Addressing: pair strides >= 4 give contiguous 4-lane runs inside
 * each stride block; strides 1 and 2 are handled with in-register
 * deinterleave shuffles so the low-qubit gates vectorize too. Quad
 * kernels vectorize contiguous runs when the smaller stride is >= 4
 * and defer to the scalar table otherwise.
 */
#include "common/simd.h"

#ifdef JIGSAW_HAVE_AVX2

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace jigsaw {
namespace simd {

namespace {

using U64 = std::uint64_t;

inline U64
insertZero2(U64 k, U64 s_lo, U64 s_hi)
{
    return insertZero(insertZero(k, s_lo), s_hi);
}

/** (ar, ai) *= (cr, ci), 4 complex values per call. */
inline void
complexScale4(__m256d &ar, __m256d &ai, __m256d cr, __m256d ci)
{
    const __m256d nr = _mm256_fnmadd_pd(ci, ai, _mm256_mul_pd(cr, ar));
    const __m256d ni = _mm256_fmadd_pd(ci, ar, _mm256_mul_pd(cr, ai));
    ar = nr;
    ai = ni;
}

/**
 * Per-lane table-index stream for the gather phase tables — the
 * 4-lane analogue of the AVX-512 version. With the base amplitude
 * index 4-aligned, the low two bits of each lane's index equal the
 * lane number, so PEXT(index, mask) splits into a per-lane constant
 * (PEXT(lane, mask & 3), precomputed) OR'd with one scalar PEXT of
 * the high mask bits per 4 amplitudes; the table lookup becomes one
 * vgatherqpd per component.
 */
struct LaneIndexStream4
{
    __m256i lane;   ///< PEXT(lane, mask & 3), lane = 0..3.
    U64 mask_hi;    ///< mask & ~3.
    unsigned pc_lo; ///< popcount(mask & 3).

    explicit LaneIndexStream4(U64 mask)
        : mask_hi(mask & ~3ULL),
          pc_lo(static_cast<unsigned>(
              __builtin_popcountll(mask & 3ULL)))
    {
        alignas(32) long long lanes[4];
        for (long long l = 0; l < 4; ++l)
            lanes[l] = static_cast<long long>(
                _pext_u64(static_cast<U64>(l), mask & 3ULL));
        lane = _mm256_load_si256(reinterpret_cast<const __m256i *>(lanes));
    }

    /** Table indices of the 4 amplitudes at 4-aligned index @p i0. */
    __m256i indices(U64 i0) const
    {
        const U64 base = _pext_u64(i0, mask_hi) << pc_lo;
        return _mm256_or_si256(
            lane, _mm256_set1_epi64x(static_cast<long long>(base)));
    }
};

/** Gather table[idx] and multiply 4 contiguous amplitudes by it. */
inline void
gatherScale4(double *re, double *im, const double *tab_re,
             const double *tab_im, __m256i idx)
{
    // Masked form with an explicit zero source: same full-lane
    // gather, but avoids the undefined pass-through operand of the
    // unmasked intrinsic (and the -Wmaybe-uninitialized noise GCC
    // emits for it).
    const __m256d ones = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    const __m256d cr = _mm256_mask_i64gather_pd(_mm256_setzero_pd(),
                                                tab_re, idx, ones, 8);
    const __m256d ci = _mm256_mask_i64gather_pd(_mm256_setzero_pd(),
                                                tab_im, idx, ones, 8);
    __m256d ar = _mm256_loadu_pd(re);
    __m256d ai = _mm256_loadu_pd(im);
    complexScale4(ar, ai, cr, ci);
    _mm256_storeu_pd(re, ar);
    _mm256_storeu_pd(im, ai);
}

/** Multiply the @p n complex values at (re, im) by (cr, ci). */
inline void
scaleRun(double *re, double *im, U64 n, __m256d cr, __m256d ci, double sr,
         double si)
{
    U64 v = 0;
    for (; v + 4 <= n; v += 4) {
        __m256d ar = _mm256_loadu_pd(re + v);
        __m256d ai = _mm256_loadu_pd(im + v);
        complexScale4(ar, ai, cr, ci);
        _mm256_storeu_pd(re + v, ar);
        _mm256_storeu_pd(im + v, ai);
    }
    for (; v < n; ++v) {
        const double r = re[v], i = im[v];
        re[v] = sr * r - si * i;
        im[v] = sr * i + si * r;
    }
}

/**
 * Visit every pair (i0 = insertZero(k, stride), i1 = i0 | stride) for
 * k in [k_lo, k_hi): @p vec transforms four pairs held in registers,
 * @p scal transforms one pair in memory. Strides 1 and 2 are gathered
 * with shuffles; larger strides load contiguous runs directly.
 */
template <typename VecOp, typename ScalOp>
inline void
forPairs(double *re, double *im, U64 stride, U64 k_lo, U64 k_hi,
         VecOp vec, ScalOp scal)
{
    if (stride == 1) {
        U64 k = k_lo;
        for (; k + 4 <= k_hi; k += 4) {
            double *pr = re + 2 * k;
            double *pi = im + 2 * k;
            const __m256d v0r = _mm256_loadu_pd(pr);
            const __m256d v1r = _mm256_loadu_pd(pr + 4);
            const __m256d v0i = _mm256_loadu_pd(pi);
            const __m256d v1i = _mm256_loadu_pd(pi + 4);
            const __m256d t0r = _mm256_permute2f128_pd(v0r, v1r, 0x20);
            const __m256d t1r = _mm256_permute2f128_pd(v0r, v1r, 0x31);
            const __m256d t0i = _mm256_permute2f128_pd(v0i, v1i, 0x20);
            const __m256d t1i = _mm256_permute2f128_pd(v0i, v1i, 0x31);
            __m256d a0r = _mm256_unpacklo_pd(t0r, t1r);
            __m256d a1r = _mm256_unpackhi_pd(t0r, t1r);
            __m256d a0i = _mm256_unpacklo_pd(t0i, t1i);
            __m256d a1i = _mm256_unpackhi_pd(t0i, t1i);
            vec(a0r, a0i, a1r, a1i);
            const __m256d u0r = _mm256_unpacklo_pd(a0r, a1r);
            const __m256d u1r = _mm256_unpackhi_pd(a0r, a1r);
            const __m256d u0i = _mm256_unpacklo_pd(a0i, a1i);
            const __m256d u1i = _mm256_unpackhi_pd(a0i, a1i);
            _mm256_storeu_pd(pr, _mm256_permute2f128_pd(u0r, u1r, 0x20));
            _mm256_storeu_pd(pr + 4,
                             _mm256_permute2f128_pd(u0r, u1r, 0x31));
            _mm256_storeu_pd(pi, _mm256_permute2f128_pd(u0i, u1i, 0x20));
            _mm256_storeu_pd(pi + 4,
                             _mm256_permute2f128_pd(u0i, u1i, 0x31));
        }
        for (; k < k_hi; ++k)
            scal(2 * k, 2 * k + 1);
        return;
    }
    if (stride == 2) {
        U64 k = k_lo;
        for (; k < k_hi && (k & 3ULL) != 0; ++k) {
            const U64 i0 = insertZero(k, 2);
            scal(i0, i0 | 2);
        }
        // k = 4m maps pairs k..k+3 onto the 8 contiguous amplitudes
        // [8m, 8m + 8): the low half of each load is the 0-stratum.
        for (; k + 4 <= k_hi; k += 4) {
            double *pr = re + 2 * k;
            double *pi = im + 2 * k;
            const __m256d v0r = _mm256_loadu_pd(pr);
            const __m256d v1r = _mm256_loadu_pd(pr + 4);
            const __m256d v0i = _mm256_loadu_pd(pi);
            const __m256d v1i = _mm256_loadu_pd(pi + 4);
            __m256d a0r = _mm256_permute2f128_pd(v0r, v1r, 0x20);
            __m256d a1r = _mm256_permute2f128_pd(v0r, v1r, 0x31);
            __m256d a0i = _mm256_permute2f128_pd(v0i, v1i, 0x20);
            __m256d a1i = _mm256_permute2f128_pd(v0i, v1i, 0x31);
            vec(a0r, a0i, a1r, a1i);
            _mm256_storeu_pd(pr, _mm256_permute2f128_pd(a0r, a1r, 0x20));
            _mm256_storeu_pd(pr + 4,
                             _mm256_permute2f128_pd(a0r, a1r, 0x31));
            _mm256_storeu_pd(pi, _mm256_permute2f128_pd(a0i, a1i, 0x20));
            _mm256_storeu_pd(pi + 4,
                             _mm256_permute2f128_pd(a0i, a1i, 0x31));
        }
        for (; k < k_hi; ++k) {
            const U64 i0 = insertZero(k, 2);
            scal(i0, i0 | 2);
        }
        return;
    }
    U64 k = k_lo;
    while (k < k_hi) {
        const U64 block_end =
            std::min(k_hi, (k & ~(stride - 1)) + stride);
        U64 i0 = insertZero(k, stride);
        for (; k + 4 <= block_end; k += 4, i0 += 4) {
            __m256d a0r = _mm256_loadu_pd(re + i0);
            __m256d a1r = _mm256_loadu_pd(re + i0 + stride);
            __m256d a0i = _mm256_loadu_pd(im + i0);
            __m256d a1i = _mm256_loadu_pd(im + i0 + stride);
            vec(a0r, a0i, a1r, a1i);
            _mm256_storeu_pd(re + i0, a0r);
            _mm256_storeu_pd(re + i0 + stride, a1r);
            _mm256_storeu_pd(im + i0, a0i);
            _mm256_storeu_pd(im + i0 + stride, a1i);
        }
        for (; k < block_end; ++k, ++i0)
            scal(i0, i0 | stride);
    }
}

void
avx2Apply1q(double *re, double *im, U64 stride, U64 k_lo, U64 k_hi,
            const Mat2Split &m)
{
    detail::countDispatch(kApply1q, kBackendAvx2);
    const __m256d m00r = _mm256_set1_pd(m.re[0]);
    const __m256d m00i = _mm256_set1_pd(m.im[0]);
    const __m256d m01r = _mm256_set1_pd(m.re[1]);
    const __m256d m01i = _mm256_set1_pd(m.im[1]);
    const __m256d m10r = _mm256_set1_pd(m.re[2]);
    const __m256d m10i = _mm256_set1_pd(m.im[2]);
    const __m256d m11r = _mm256_set1_pd(m.re[3]);
    const __m256d m11i = _mm256_set1_pd(m.im[3]);
    forPairs(
        re, im, stride, k_lo, k_hi,
        [&](__m256d &a0r, __m256d &a0i, __m256d &a1r, __m256d &a1i) {
            __m256d n0r = _mm256_mul_pd(m00r, a0r);
            n0r = _mm256_fnmadd_pd(m00i, a0i, n0r);
            n0r = _mm256_fmadd_pd(m01r, a1r, n0r);
            n0r = _mm256_fnmadd_pd(m01i, a1i, n0r);
            __m256d n0i = _mm256_mul_pd(m00r, a0i);
            n0i = _mm256_fmadd_pd(m00i, a0r, n0i);
            n0i = _mm256_fmadd_pd(m01r, a1i, n0i);
            n0i = _mm256_fmadd_pd(m01i, a1r, n0i);
            __m256d n1r = _mm256_mul_pd(m10r, a0r);
            n1r = _mm256_fnmadd_pd(m10i, a0i, n1r);
            n1r = _mm256_fmadd_pd(m11r, a1r, n1r);
            n1r = _mm256_fnmadd_pd(m11i, a1i, n1r);
            __m256d n1i = _mm256_mul_pd(m10r, a0i);
            n1i = _mm256_fmadd_pd(m10i, a0r, n1i);
            n1i = _mm256_fmadd_pd(m11r, a1i, n1i);
            n1i = _mm256_fmadd_pd(m11i, a1r, n1i);
            a0r = n0r;
            a0i = n0i;
            a1r = n1r;
            a1i = n1i;
        },
        [&](U64 i0, U64 i1) {
            const double a0r = re[i0], a0i = im[i0];
            const double a1r = re[i1], a1i = im[i1];
            re[i0] = m.re[0] * a0r - m.im[0] * a0i + m.re[1] * a1r -
                     m.im[1] * a1i;
            im[i0] = m.re[0] * a0i + m.im[0] * a0r + m.re[1] * a1i +
                     m.im[1] * a1r;
            re[i1] = m.re[2] * a0r - m.im[2] * a0i + m.re[3] * a1r -
                     m.im[3] * a1i;
            im[i1] = m.re[2] * a0i + m.im[2] * a0r + m.re[3] * a1i +
                     m.im[3] * a1r;
        });
}

void
avx2Apply1qDiag(double *re, double *im, U64 stride, U64 k_lo, U64 k_hi,
                double d0r, double d0i, double d1r, double d1i,
                bool d0_is_one)
{
    detail::countDispatch(kApply1qDiag, kBackendAvx2);
    const __m256d v0r = _mm256_set1_pd(d0r);
    const __m256d v0i = _mm256_set1_pd(d0i);
    const __m256d v1r = _mm256_set1_pd(d1r);
    const __m256d v1i = _mm256_set1_pd(d1i);
    if (stride >= 4) {
        // Each stratum is a contiguous run per block; when d0 is the
        // identity the 0-stratum is never even loaded.
        U64 k = k_lo;
        while (k < k_hi) {
            const U64 block_end =
                std::min(k_hi, (k & ~(stride - 1)) + stride);
            const U64 i0 = insertZero(k, stride);
            const U64 n = block_end - k;
            if (!d0_is_one)
                scaleRun(re + i0, im + i0, n, v0r, v0i, d0r, d0i);
            scaleRun(re + (i0 | stride), im + (i0 | stride), n, v1r, v1i,
                     d1r, d1i);
            k = block_end;
        }
        return;
    }
    forPairs(
        re, im, stride, k_lo, k_hi,
        [&](__m256d &a0r, __m256d &a0i, __m256d &a1r, __m256d &a1i) {
            if (!d0_is_one)
                complexScale4(a0r, a0i, v0r, v0i);
            complexScale4(a1r, a1i, v1r, v1i);
        },
        [&](U64 i0, U64 i1) {
            if (!d0_is_one) {
                const double ar = re[i0], ai = im[i0];
                re[i0] = d0r * ar - d0i * ai;
                im[i0] = d0r * ai + d0i * ar;
            }
            const double ar = re[i1], ai = im[i1];
            re[i1] = d1r * ar - d1i * ai;
            im[i1] = d1r * ai + d1i * ar;
        });
}

/**
 * Multiply the @p n odd-offset complex values of the window at
 * (re, im) by (cr, ci): touched elements sit at offsets 1, 3, 5, ...
 */
inline void
scaleOddLanes(double *re, double *im, U64 n, __m256d cr, __m256d ci,
              double sr, double si)
{
    U64 j = 0;
    for (; j + 4 <= n; j += 4) {
        double *pr = re + 2 * j;
        double *pi = im + 2 * j;
        const __m256d v0r = _mm256_loadu_pd(pr);
        const __m256d v1r = _mm256_loadu_pd(pr + 4);
        const __m256d v0i = _mm256_loadu_pd(pi);
        const __m256d v1i = _mm256_loadu_pd(pi + 4);
        const __m256d t0r = _mm256_permute2f128_pd(v0r, v1r, 0x20);
        const __m256d t1r = _mm256_permute2f128_pd(v0r, v1r, 0x31);
        const __m256d t0i = _mm256_permute2f128_pd(v0i, v1i, 0x20);
        const __m256d t1i = _mm256_permute2f128_pd(v0i, v1i, 0x31);
        const __m256d evr = _mm256_unpacklo_pd(t0r, t1r);
        __m256d odr = _mm256_unpackhi_pd(t0r, t1r);
        const __m256d evi = _mm256_unpacklo_pd(t0i, t1i);
        __m256d odi = _mm256_unpackhi_pd(t0i, t1i);
        complexScale4(odr, odi, cr, ci);
        const __m256d u0r = _mm256_unpacklo_pd(evr, odr);
        const __m256d u1r = _mm256_unpackhi_pd(evr, odr);
        const __m256d u0i = _mm256_unpacklo_pd(evi, odi);
        const __m256d u1i = _mm256_unpackhi_pd(evi, odi);
        _mm256_storeu_pd(pr, _mm256_permute2f128_pd(u0r, u1r, 0x20));
        _mm256_storeu_pd(pr + 4, _mm256_permute2f128_pd(u0r, u1r, 0x31));
        _mm256_storeu_pd(pi, _mm256_permute2f128_pd(u0i, u1i, 0x20));
        _mm256_storeu_pd(pi + 4, _mm256_permute2f128_pd(u0i, u1i, 0x31));
    }
    for (; j < n; ++j) {
        const U64 i = 2 * j + 1;
        const double ar = re[i], ai = im[i];
        re[i] = sr * ar - si * ai;
        im[i] = sr * ai + si * ar;
    }
}

/**
 * Multiply the upper halves of @p m 4-double blocks at (re, im) by
 * (cr, ci): touched elements sit at offsets 2, 3, 6, 7, 10, 11, ...
 */
inline void
scaleHighPairs(double *re, double *im, U64 m, __m256d cr, __m256d ci,
               double sr, double si)
{
    U64 b = 0;
    for (; b + 2 <= m; b += 2) {
        double *pr = re + 4 * b;
        double *pi = im + 4 * b;
        const __m256d v0r = _mm256_loadu_pd(pr);
        const __m256d v1r = _mm256_loadu_pd(pr + 4);
        const __m256d v0i = _mm256_loadu_pd(pi);
        const __m256d v1i = _mm256_loadu_pd(pi + 4);
        const __m256d lor = _mm256_permute2f128_pd(v0r, v1r, 0x20);
        __m256d hir = _mm256_permute2f128_pd(v0r, v1r, 0x31);
        const __m256d loi = _mm256_permute2f128_pd(v0i, v1i, 0x20);
        __m256d hii = _mm256_permute2f128_pd(v0i, v1i, 0x31);
        complexScale4(hir, hii, cr, ci);
        _mm256_storeu_pd(pr, _mm256_permute2f128_pd(lor, hir, 0x20));
        _mm256_storeu_pd(pr + 4, _mm256_permute2f128_pd(lor, hir, 0x31));
        _mm256_storeu_pd(pi, _mm256_permute2f128_pd(loi, hii, 0x20));
        _mm256_storeu_pd(pi + 4, _mm256_permute2f128_pd(loi, hii, 0x31));
    }
    for (; b < m; ++b) {
        for (U64 i = 4 * b + 2; i < 4 * b + 4; ++i) {
            const double ar = re[i], ai = im[i];
            re[i] = sr * ar - si * ai;
            im[i] = sr * ai + si * ar;
        }
    }
}

void
avx2QuadPhase(double *re, double *im, U64 s_lo, U64 s_hi, U64 set_mask,
              U64 k_lo, U64 k_hi, double p_re, double p_im)
{
    if (s_lo < 4 && (set_mask & s_lo) == 0) {
        // The low-stride fast paths assume the low stride bit is part
        // of set_mask (true for every controlled-phase caller).
        scalarKernels().quadPhase(re, im, s_lo, s_hi, set_mask, k_lo,
                                  k_hi, p_re, p_im);
        return;
    }
    detail::countDispatch(kQuadPhase, kBackendAvx2);
    const __m256d cr = _mm256_set1_pd(p_re);
    const __m256d ci = _mm256_set1_pd(p_im);
    if (s_lo == 1) {
        // Touched indices advance by 2 inside each s_hi block, so a
        // block is the odd lanes of one contiguous window.
        const U64 run = s_hi >> 1; // quads per block, >= 2
        U64 k = k_lo;
        while (k < k_hi) {
            const U64 block_end = std::min(k_hi, (k & ~(run - 1)) + run);
            const U64 first = insertZero2(k, 1, s_hi) | set_mask;
            scaleOddLanes(re + (first - 1), im + (first - 1),
                          block_end - k, cr, ci, p_re, p_im);
            k = block_end;
        }
        return;
    }
    if (s_lo == 2) {
        // Touched indices are the top halves of consecutive 4-double
        // blocks inside each s_hi block (bit 1 set, bit 0 free).
        const U64 run = s_hi >> 1; // quads per block, even, >= 2
        U64 k = k_lo;
        while (k < k_hi) {
            // Align to a 4-block boundary (k even) scalar-first.
            if ((k & 1ULL) != 0) {
                const U64 i = insertZero2(k, 2, s_hi) | set_mask;
                const double ar = re[i], ai = im[i];
                re[i] = p_re * ar - p_im * ai;
                im[i] = p_re * ai + p_im * ar;
                ++k;
                continue;
            }
            const U64 block_end = std::min(k_hi, (k & ~(run - 1)) + run);
            const U64 whole = (block_end - k) >> 1; // full 4-blocks
            const U64 first = insertZero2(k, 2, s_hi) | set_mask;
            scaleHighPairs(re + (first - 2), im + (first - 2), whole, cr,
                           ci, p_re, p_im);
            k += whole << 1;
            if (k < block_end) { // odd trailing quad
                const U64 i = insertZero2(k, 2, s_hi) | set_mask;
                const double ar = re[i], ai = im[i];
                re[i] = p_re * ar - p_im * ai;
                im[i] = p_re * ai + p_im * ar;
                ++k;
            }
        }
        return;
    }
    U64 k = k_lo;
    while (k < k_hi) {
        const U64 block_end = std::min(k_hi, (k & ~(s_lo - 1)) + s_lo);
        const U64 i = insertZero2(k, s_lo, s_hi) | set_mask;
        scaleRun(re + i, im + i, block_end - k, cr, ci, p_re, p_im);
        k = block_end;
    }
}

void
avx2QuadSwap(double *re, double *im, U64 s_lo, U64 s_hi, U64 mask_a,
             U64 mask_b, U64 k_lo, U64 k_hi)
{
    if (s_lo < 4) {
        scalarKernels().quadSwap(re, im, s_lo, s_hi, mask_a, mask_b, k_lo,
                                 k_hi);
        return;
    }
    detail::countDispatch(kQuadSwap, kBackendAvx2);
    U64 k = k_lo;
    while (k < k_hi) {
        const U64 block_end = std::min(k_hi, (k & ~(s_lo - 1)) + s_lo);
        const U64 base = insertZero2(k, s_lo, s_hi);
        const U64 n = block_end - k;
        for (double *arr : {re, im}) {
            double *pa = arr + (base | mask_a);
            double *pb = arr + (base | mask_b);
            U64 v = 0;
            for (; v + 4 <= n; v += 4) {
                const __m256d va = _mm256_loadu_pd(pa + v);
                const __m256d vb = _mm256_loadu_pd(pb + v);
                _mm256_storeu_pd(pa + v, vb);
                _mm256_storeu_pd(pb + v, va);
            }
            for (; v < n; ++v)
                std::swap(pa[v], pb[v]);
        }
        k = block_end;
    }
}

void
avx2PhasePair(double *re, double *im, int q0, int q1, U64 k_lo, U64 k_hi,
              double even_re, double even_im, double odd_re, double odd_im)
{
    if (q0 < 2 || q1 < 2) {
        scalarKernels().phasePair(re, im, q0, q1, k_lo, k_hi, even_re,
                                  even_im, odd_re, odd_im);
        return;
    }
    detail::countDispatch(kPhasePair, kBackendAvx2);
    // The XOR of bits q0 and q1 is constant over runs of length
    // 2^min(q0, q1) >= 4, so each run is one phase multiply.
    const U64 run = 1ULL << std::min(q0, q1);
    const __m256d cr[2] = {_mm256_set1_pd(even_re),
                           _mm256_set1_pd(odd_re)};
    const __m256d ci[2] = {_mm256_set1_pd(even_im),
                           _mm256_set1_pd(odd_im)};
    const double sr[2] = {even_re, odd_re};
    const double si[2] = {even_im, odd_im};
    U64 k = k_lo;
    while (k < k_hi) {
        const U64 run_end = std::min(k_hi, (k & ~(run - 1)) + run);
        const U64 bit = ((k >> q0) ^ (k >> q1)) & 1ULL;
        scaleRun(re + k, im + k, run_end - k, cr[bit], ci[bit], sr[bit],
                 si[bit]);
        k = run_end;
    }
}

void
avx2StratumPhaseTable(double *re, double *im, U64 q_mask,
                      U64 control_mask, const double *tab_re,
                      const double *tab_im, U64 k_lo, U64 k_hi)
{
    detail::countDispatch(kStratumPhaseTable, kBackendAvx2);
    if (control_mask < q_mask &&
        (control_mask & (control_mask + 1)) == 0) {
        // Contiguous low controls (the QFT shape): within each
        // q_mask-aligned stratum block the table index equals the low
        // bits of the amplitude index, so runs multiply element-wise
        // against contiguous table slices — pure vector loads.
        U64 k = k_lo;
        const U64 tsize = control_mask + 1;
        while (k < k_hi) {
            const U64 block_end =
                q_mask >= 4 ? std::min(k_hi, (k & ~(q_mask - 1)) + q_mask)
                            : k + 1;
            U64 i = insertZero(k, q_mask) | q_mask;
            U64 n = block_end - k;
            while (n > 0) {
                const U64 t0 = i & control_mask;
                const U64 chunk = std::min(n, tsize - t0);
                U64 v = 0;
                for (; v + 4 <= chunk; v += 4) {
                    __m256d ar = _mm256_loadu_pd(re + i + v);
                    __m256d ai = _mm256_loadu_pd(im + i + v);
                    const __m256d cr = _mm256_loadu_pd(tab_re + t0 + v);
                    const __m256d ci = _mm256_loadu_pd(tab_im + t0 + v);
                    complexScale4(ar, ai, cr, ci);
                    _mm256_storeu_pd(re + i + v, ar);
                    _mm256_storeu_pd(im + i + v, ai);
                }
                for (; v < chunk; ++v) {
                    const double xr = re[i + v], xi = im[i + v];
                    re[i + v] = tab_re[t0 + v] * xr - tab_im[t0 + v] * xi;
                    im[i + v] = tab_re[t0 + v] * xi + tab_im[t0 + v] * xr;
                }
                i += chunk;
                n -= chunk;
            }
            k = block_end;
        }
        return;
    }
    if (q_mask < 4) {
        // Sub-lane stratum blocks: no contiguous 4-run of touched
        // amplitudes exists, so the per-element PEXT loop stands.
        for (U64 k = k_lo; k < k_hi; ++k) {
            const U64 i = insertZero(k, q_mask) | q_mask;
            const U64 t = _pext_u64(i, control_mask);
            const double ar = re[i], ai = im[i];
            re[i] = tab_re[t] * ar - tab_im[t] * ai;
            im[i] = tab_re[t] * ai + tab_im[t] * ar;
        }
        return;
    }
    // Scattered controls: within each q_mask-aligned block the
    // touched amplitudes run contiguously from a 4-aligned start
    // (q_mask >= 4), so the vectorized-PEXT index stream plus
    // vgatherqpd replaces the per-element scalar PEXT loop.
    const LaneIndexStream4 stream(control_mask);
    U64 k = k_lo;
    while (k < k_hi) {
        const U64 block_end = std::min(k_hi, (k & ~(q_mask - 1)) + q_mask);
        U64 i = insertZero(k, q_mask) | q_mask;
        for (; k < block_end && (i & 3ULL) != 0; ++k, ++i) {
            const U64 t = _pext_u64(i, control_mask);
            const double ar = re[i], ai = im[i];
            re[i] = tab_re[t] * ar - tab_im[t] * ai;
            im[i] = tab_re[t] * ai + tab_im[t] * ar;
        }
        for (; k + 4 <= block_end; k += 4, i += 4)
            gatherScale4(re + i, im + i, tab_re, tab_im,
                         stream.indices(i));
        for (; k < block_end; ++k, ++i) {
            const U64 t = _pext_u64(i, control_mask);
            const double ar = re[i], ai = im[i];
            re[i] = tab_re[t] * ar - tab_im[t] * ai;
            im[i] = tab_re[t] * ai + tab_im[t] * ar;
        }
    }
}

void
avx2PhaseTable(double *re, double *im, U64 mask, const double *tab_re,
               const double *tab_im, U64 k_lo, U64 k_hi)
{
    detail::countDispatch(kPhaseTable, kBackendAvx2);
    if ((mask & (mask + 1)) == 0) {
        // Contiguous low mask: the table index is the low bits of the
        // amplitude index, so amplitudes multiply element-wise against
        // contiguous table slices — pure vector loads.
        const U64 tsize = mask + 1;
        U64 k = k_lo;
        while (k < k_hi) {
            const U64 t0 = k & mask;
            const U64 chunk = std::min(k_hi - k, tsize - t0);
            U64 v = 0;
            for (; v + 4 <= chunk; v += 4) {
                __m256d ar = _mm256_loadu_pd(re + k + v);
                __m256d ai = _mm256_loadu_pd(im + k + v);
                const __m256d cr = _mm256_loadu_pd(tab_re + t0 + v);
                const __m256d ci = _mm256_loadu_pd(tab_im + t0 + v);
                complexScale4(ar, ai, cr, ci);
                _mm256_storeu_pd(re + k + v, ar);
                _mm256_storeu_pd(im + k + v, ai);
            }
            for (; v < chunk; ++v) {
                const double xr = re[k + v], xi = im[k + v];
                re[k + v] = tab_re[t0 + v] * xr - tab_im[t0 + v] * xi;
                im[k + v] = tab_re[t0 + v] * xi + tab_im[t0 + v] * xr;
            }
            k += chunk;
        }
        return;
    }
    const U64 low = mask & (~mask + 1);
    if (low >= 4) {
        // The table index is constant over each low-aligned run of
        // `low` amplitudes: one broadcast phase multiply per run.
        U64 k = k_lo;
        while (k < k_hi) {
            const U64 run_end = std::min(k_hi, (k & ~(low - 1)) + low);
            const U64 t = _pext_u64(k, mask);
            scaleRun(re + k, im + k, run_end - k,
                     _mm256_set1_pd(tab_re[t]), _mm256_set1_pd(tab_im[t]),
                     tab_re[t], tab_im[t]);
            k = run_end;
        }
        return;
    }
    // Scattered mask with table-index bits inside the lane: the
    // vectorized-PEXT index stream plus vgatherqpd replaces the
    // per-element scalar PEXT loop (head/tail stay scalar so the
    // 4-lane base index is always 4-aligned).
    const LaneIndexStream4 stream(mask);
    U64 k = k_lo;
    for (; k < k_hi && (k & 3ULL) != 0; ++k) {
        const U64 t = _pext_u64(k, mask);
        const double ar = re[k], ai = im[k];
        re[k] = tab_re[t] * ar - tab_im[t] * ai;
        im[k] = tab_re[t] * ai + tab_im[t] * ar;
    }
    for (; k + 4 <= k_hi; k += 4)
        gatherScale4(re + k, im + k, tab_re, tab_im, stream.indices(k));
    for (; k < k_hi; ++k) {
        const U64 t = _pext_u64(k, mask);
        const double ar = re[k], ai = im[k];
        re[k] = tab_re[t] * ar - tab_im[t] * ai;
        im[k] = tab_re[t] * ai + tab_im[t] * ar;
    }
}

double
avx2Norm2(const double *re, const double *im, U64 lo, U64 hi)
{
    detail::countDispatch(kNorm2, kBackendAvx2);
    __m256d acc = _mm256_setzero_pd();
    U64 i = lo;
    for (; i + 4 <= hi; i += 4) {
        const __m256d r = _mm256_loadu_pd(re + i);
        const __m256d m = _mm256_loadu_pd(im + i);
        acc = _mm256_fmadd_pd(r, r, acc);
        acc = _mm256_fmadd_pd(m, m, acc);
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    double total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; i < hi; ++i)
        total += re[i] * re[i] + im[i] * im[i];
    return total;
}

void
avx2AccumulateBuckets(const std::uint32_t *bucket_of, const double *w,
                      U64 lo, U64 hi, double *mass)
{
    // Scatter-accumulate with intra-lane bucket conflicts: scalar on
    // every backend; the table entry is the dispatch seam.
    detail::countDispatch(kAccumulateBuckets, kBackendAvx2);
    for (U64 i = lo; i < hi; ++i)
        mass[bucket_of[i]] += w[i];
}

double
avx2PosteriorUpdate(const std::uint32_t *bucket_of, const double *odds,
                    const double *mass, const double *w, double *post,
                    U64 lo, U64 hi)
{
    detail::countDispatch(kPosteriorUpdate, kBackendAvx2);
    const __m256d zero = _mm256_setzero_pd();
    __m256d acc = zero;
    U64 i = lo;
    for (; i + 4 <= hi; i += 4) {
        const __m128i b = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(bucket_of + i));
        const __m256d ones = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
        const __m256d vo = _mm256_mask_i32gather_pd(_mm256_setzero_pd(),
                                                    odds, b, ones, 8);
        const __m256d vm = _mm256_mask_i32gather_pd(_mm256_setzero_pd(),
                                                    mass, b, ones, 8);
        const __m256d vw = _mm256_loadu_pd(w + i);
        // Keep the prior where the bucket carries no evidence or no
        // mass; the blended-away lanes may divide by zero (benign).
        const __m256d keep =
            _mm256_or_pd(_mm256_cmp_pd(vo, zero, _CMP_LT_OQ),
                         _mm256_cmp_pd(vm, zero, _CMP_LE_OQ));
        const __m256d upd = _mm256_mul_pd(_mm256_div_pd(vw, vm), vo);
        const __m256d v = _mm256_blendv_pd(upd, vw, keep);
        _mm256_storeu_pd(post + i, v);
        acc = _mm256_add_pd(acc, v);
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    double sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; i < hi; ++i) {
        const std::uint32_t b = bucket_of[i];
        const double o = odds[b];
        double v;
        if (o < 0.0 || mass[b] <= 0.0)
            v = w[i];
        else
            v = (w[i] / mass[b]) * o;
        post[i] = v;
        sum += v;
    }
    return sum;
}

void
avx2Axpy(double *y, const double *x, double a, U64 lo, U64 hi)
{
    detail::countDispatch(kAxpy, kBackendAvx2);
    const __m256d va = _mm256_set1_pd(a);
    U64 i = lo;
    for (; i + 4 <= hi; i += 4) {
        const __m256d vy = _mm256_loadu_pd(y + i);
        const __m256d vx = _mm256_loadu_pd(x + i);
        // mul + add rather than FMA: per-element parity with the
        // scalar backend (only reductions regroup across backends).
        _mm256_storeu_pd(y + i,
                         _mm256_add_pd(vy, _mm256_mul_pd(va, vx)));
    }
    for (; i < hi; ++i)
        y[i] += a * x[i];
}

void
avx2Scale(double *x, double a, U64 lo, U64 hi)
{
    detail::countDispatch(kScale, kBackendAvx2);
    const __m256d va = _mm256_set1_pd(a);
    U64 i = lo;
    for (; i + 4 <= hi; i += 4)
        _mm256_storeu_pd(x + i,
                         _mm256_mul_pd(_mm256_loadu_pd(x + i), va));
    for (; i < hi; ++i)
        x[i] *= a;
}

double
avx2Sum(const double *x, U64 lo, U64 hi)
{
    detail::countDispatch(kSum, kBackendAvx2);
    __m256d acc = _mm256_setzero_pd();
    U64 i = lo;
    for (; i + 4 <= hi; i += 4)
        acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    double total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; i < hi; ++i)
        total += x[i];
    return total;
}

double
avx2NormalizeBhattacharyya(double *v, const double *ref, double inv_total,
                           U64 lo, U64 hi)
{
    detail::countDispatch(kNormalizeBhattacharyya, kBackendAvx2);
    const __m256d vinv = _mm256_set1_pd(inv_total);
    const __m256d zero = _mm256_setzero_pd();
    __m256d acc = zero;
    U64 i = lo;
    for (; i + 4 <= hi; i += 4) {
        const __m256d scaled =
            _mm256_mul_pd(_mm256_loadu_pd(v + i), vinv);
        _mm256_storeu_pd(v + i, scaled);
        const __m256d vr = _mm256_loadu_pd(ref + i);
        const __m256d pos =
            _mm256_and_pd(_mm256_cmp_pd(vr, zero, _CMP_GT_OQ),
                          _mm256_cmp_pd(scaled, zero, _CMP_GT_OQ));
        const __m256d term =
            _mm256_sqrt_pd(_mm256_mul_pd(vr, scaled));
        acc = _mm256_add_pd(acc, _mm256_and_pd(term, pos));
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    double bc = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; i < hi; ++i) {
        const double scaled = v[i] * inv_total;
        v[i] = scaled;
        if (ref[i] > 0.0 && scaled > 0.0)
            bc += std::sqrt(ref[i] * scaled);
    }
    return bc;
}

const KernelTable avx2Table = {
    "avx2",
    avx2Apply1q,
    avx2Apply1qDiag,
    avx2QuadPhase,
    avx2QuadSwap,
    avx2PhasePair,
    avx2StratumPhaseTable,
    avx2PhaseTable,
    avx2Norm2,
    avx2AccumulateBuckets,
    avx2PosteriorUpdate,
    avx2Axpy,
    avx2Scale,
    avx2Sum,
    avx2NormalizeBhattacharyya,
};

} // namespace

const KernelTable *
avx2Kernels()
{
    return &avx2Table;
}

} // namespace simd
} // namespace jigsaw

#endif // JIGSAW_HAVE_AVX2
