/**
 * @file
 * FNV-1a mixing primitives shared by every content hash in the
 * library (circuit structural hashes, device fingerprints). One
 * definition keeps the hash streams these caches and the
 * cross-program merge pass key on from drifting apart.
 */
#ifndef JIGSAW_COMMON_FNV_H
#define JIGSAW_COMMON_FNV_H

#include <bit>
#include <cstdint>

namespace jigsaw {

/** The 64-bit FNV-1a offset basis (the hash accumulator's seed). */
constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ULL;

/** Mix the bytes of one 64-bit word into @p h (FNV-1a). */
inline void
fnvMixWord(std::uint64_t &h, std::uint64_t v)
{
    for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (8 * byte)) & 0xffULL;
        h *= 1099511628211ULL;
    }
}

/** Mix the exact bit pattern of @p v into @p h. */
inline void
fnvMixDouble(std::uint64_t &h, double v)
{
    fnvMixWord(h, std::bit_cast<std::uint64_t>(v));
}

} // namespace jigsaw

#endif // JIGSAW_COMMON_FNV_H
