/**
 * @file
 * Descriptive statistics used by calibration synthesis and benches.
 */
#ifndef JIGSAW_COMMON_STATISTICS_H
#define JIGSAW_COMMON_STATISTICS_H

#include <vector>

namespace jigsaw {
namespace stats {

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &xs);

/** Population standard deviation. */
double stddev(const std::vector<double> &xs);

/** Geometric mean; requires strictly positive entries. */
double geomean(const std::vector<double> &xs);

/** Median (average of middle two for even sizes). */
double median(std::vector<double> xs);

/**
 * Linear-interpolated percentile, @p p in [0, 100].
 * percentile(xs, 50) == median(xs).
 */
double percentile(std::vector<double> xs, double p);

/** Smallest element. */
double min(const std::vector<double> &xs);

/** Largest element. */
double max(const std::vector<double> &xs);

} // namespace stats
} // namespace jigsaw

#endif // JIGSAW_COMMON_STATISTICS_H
