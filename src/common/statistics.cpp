#include "common/statistics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace jigsaw {
namespace stats {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return std::accumulate(xs.begin(), xs.end(), 0.0) /
           static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double ss = 0.0;
    for (double x : xs)
        ss += (x - m) * (x - m);
    return std::sqrt(ss / static_cast<double>(xs.size()));
}

double
geomean(const std::vector<double> &xs)
{
    fatalIf(xs.empty(), "geomean(): empty vector");
    double log_sum = 0.0;
    for (double x : xs) {
        fatalIf(x <= 0.0, "geomean(): requires positive values");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
median(std::vector<double> xs)
{
    return percentile(std::move(xs), 50.0);
}

double
percentile(std::vector<double> xs, double p)
{
    fatalIf(xs.empty(), "percentile(): empty vector");
    fatalIf(p < 0.0 || p > 100.0, "percentile(): p out of [0,100]");
    std::sort(xs.begin(), xs.end());
    const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - std::floor(rank);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double
min(const std::vector<double> &xs)
{
    fatalIf(xs.empty(), "min(): empty vector");
    return *std::min_element(xs.begin(), xs.end());
}

double
max(const std::vector<double> &xs)
{
    fatalIf(xs.empty(), "max(): empty vector");
    return *std::max_element(xs.begin(), xs.end());
}

} // namespace stats
} // namespace jigsaw
