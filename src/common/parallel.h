/**
 * @file
 * Minimal thread-pool parallel-for for the amplitude and
 * reconstruction hot loops.
 *
 * The pool is lazily created on first use and sized from the
 * JIGSAW_THREADS environment variable (falling back to
 * std::thread::hardware_concurrency). On single-core machines, or for
 * ranges below the grain size, parallelFor degrades to a plain serial
 * loop with zero synchronization cost, so callers never need a
 * separate serial path.
 */
#ifndef JIGSAW_COMMON_PARALLEL_H
#define JIGSAW_COMMON_PARALLEL_H

#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace jigsaw {

namespace detail {

/** Fixed-size pool of worker threads executing range chunks. */
class ThreadPool
{
  public:
    explicit ThreadPool(std::size_t n_workers)
    {
        workers_.reserve(n_workers);
        for (std::size_t w = 0; w < n_workers; ++w)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        wake_.notify_all();
        for (std::thread &t : workers_)
            t.join();
    }

    std::size_t workerCount() const { return workers_.size(); }

    /**
     * Run @p task(chunk) for every chunk index in [0, n_chunks),
     * blocking until all chunks finish. Chunk 0 runs on the calling
     * thread so a pool of k workers executes k + 1 chunks at once.
     */
    void
    runChunks(std::size_t n_chunks,
              const std::function<void(std::size_t)> &task)
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            task_ = &task;
            nextChunk_ = 1; // chunk 0 is ours
            totalChunks_ = n_chunks;
            pendingChunks_ = n_chunks;
        }
        wake_.notify_all();

        task(0);
        finishChunks(1);

        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [this] { return pendingChunks_ == 0; });
        task_ = nullptr;
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            const std::function<void(std::size_t)> *task = nullptr;
            std::size_t chunk = 0;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                wake_.wait(lock, [this] {
                    return stopping_ ||
                           (task_ != nullptr && nextChunk_ < totalChunks_);
                });
                if (stopping_)
                    return;
                task = task_;
                chunk = nextChunk_++;
            }
            (*task)(chunk);
            finishChunks(1);
        }
    }

    void
    finishChunks(std::size_t n)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        pendingChunks_ -= n;
        if (pendingChunks_ == 0)
            done_.notify_all();
    }

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::vector<std::thread> workers_;
    const std::function<void(std::size_t)> *task_ = nullptr;
    std::size_t nextChunk_ = 0;
    std::size_t totalChunks_ = 0;
    std::size_t pendingChunks_ = 0;
    bool stopping_ = false;
};

inline ThreadPool &
sharedPool()
{
    static ThreadPool pool([] {
        if (const char *env = std::getenv("JIGSAW_THREADS")) {
            const long n = std::strtol(env, nullptr, 10);
            if (n >= 1)
                return static_cast<std::size_t>(n - 1); // workers = n - 1
        }
        const unsigned hw = std::thread::hardware_concurrency();
        return static_cast<std::size_t>(hw > 1 ? hw - 1 : 0);
    }());
    return pool;
}

} // namespace detail

/** Number of threads parallelFor uses (pool workers + the caller). */
inline std::size_t
parallelThreads()
{
    return detail::sharedPool().workerCount() + 1;
}

/**
 * Apply @p body(lo, hi) over half-open subranges that partition
 * [begin, end). Runs serially when the range is below @p grain or the
 * pool has no workers; otherwise splits into one chunk per thread.
 * @p body must be safe to call concurrently on disjoint ranges.
 *
 * Templated on the callable so the serial path — and the per-chunk
 * loop body — inline fully; type erasure happens only once per call,
 * at the pool boundary.
 */
template <typename Body>
inline void
parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
            Body &&body)
{
    if (begin >= end)
        return;
    const std::size_t count = end - begin;
    const std::size_t threads = parallelThreads();
    if (threads <= 1 || count <= grain) {
        body(begin, end);
        return;
    }
    const std::size_t n_chunks = std::min(threads, (count + grain - 1) / grain);
    const std::size_t chunk_size = (count + n_chunks - 1) / n_chunks;
    const std::function<void(std::size_t)> chunk_task =
        [&](std::size_t c) {
            const std::size_t lo = begin + c * chunk_size;
            const std::size_t hi = std::min(end, lo + chunk_size);
            if (lo < hi)
                body(lo, hi);
        };
    detail::sharedPool().runChunks(n_chunks, chunk_task);
}

} // namespace jigsaw

#endif // JIGSAW_COMMON_PARALLEL_H
