/**
 * @file
 * Minimal thread-pool parallelism for the amplitude and reconstruction
 * hot loops, plus coarse-grained task submission for the multi-program
 * JigsawService.
 *
 * The pool is lazily created on first use and sized from the
 * JIGSAW_THREADS environment variable (falling back to
 * std::thread::hardware_concurrency). Two usage modes share the same
 * workers:
 *
 *  - parallelFor: fork-join over an index range (chunk tasks). On
 *    single-core machines, for ranges below the grain size, or when
 *    called from inside a pool worker (nested parallelism), it
 *    degrades to a plain serial loop with zero synchronization cost,
 *    so callers never need a separate serial path.
 *  - TaskGroup: submit independent closures (one per program/session)
 *    and wait for all of them. The waiting thread helps drain the
 *    queue, so submission works even with zero workers.
 *
 * The streaming scheduler's worker tier (core/worker.h) deliberately
 * does NOT run on this pool: its workers are dedicated threads
 * modeling separate processes, so their deaths and stalls never eat
 * pool capacity, and the zero-worker help-drain paths (wait/drain/the
 * dispatcher) still make the pool's stage and reconstruction tasks
 * progress while the fleet executes windows.
 */
#ifndef JIGSAW_COMMON_PARALLEL_H
#define JIGSAW_COMMON_PARALLEL_H

#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace jigsaw {

namespace detail {

/** True on threads owned by the shared pool (see workerLoop). */
inline bool &
inPoolWorkerFlag()
{
    static thread_local bool flag = false;
    return flag;
}

/** True while this thread is inside runChunks (see parallelFor). */
inline bool &
inForkJoinFlag()
{
    static thread_local bool flag = false;
    return flag;
}

/**
 * Fixed-size pool of worker threads executing range chunks
 * (parallelFor) and queued closures (TaskGroup). Chunks take priority:
 * they are latency-sensitive inner loops, while tasks are long-running
 * outer jobs.
 */
class ThreadPool
{
  public:
    explicit ThreadPool(std::size_t n_workers)
    {
        workers_.reserve(n_workers);
        for (std::size_t w = 0; w < n_workers; ++w)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        wake_.notify_all();
        for (std::thread &t : workers_)
            t.join();
    }

    std::size_t workerCount() const { return workers_.size(); }

    /**
     * Run @p task(chunk) for every chunk index in [0, n_chunks),
     * blocking until all chunks finish. The calling thread drains
     * chunks alongside the workers, so progress never depends on a
     * worker being free (workers may be busy with long TaskGroup
     * jobs). There is one fork-join slot: concurrent callers
     * serialize on forkJoinMutex_ (the second just waits its turn),
     * and parallelFor never routes pool workers or nested calls here
     * — it runs those serially instead.
     */
    void
    runChunks(std::size_t n_chunks,
              const std::function<void(std::size_t)> &task)
    {
        std::lock_guard<std::mutex> fork_lock(forkJoinMutex_);
        inForkJoinFlag() = true;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            task_ = &task;
            nextChunk_ = 0;
            totalChunks_ = n_chunks;
            pendingChunks_ = n_chunks;
        }
        wake_.notify_all();

        for (;;) {
            std::size_t chunk;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                if (nextChunk_ >= totalChunks_)
                    break;
                chunk = nextChunk_++;
            }
            task(chunk);
            finishChunks(1);
        }

        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [this] { return pendingChunks_ == 0; });
        task_ = nullptr;
        inForkJoinFlag() = false;
    }

    /** Queue @p task for execution by a worker (or a waiting helper). */
    void
    submit(std::function<void()> task)
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            tasks_.push_back(std::move(task));
        }
        wake_.notify_one();
    }

    /**
     * Pop one queued task and run it on the calling thread. Returns
     * false when the queue is empty (tasks may still be in flight on
     * workers). Lets TaskGroup::wait make progress with zero workers.
     */
    bool
    tryRunOneTask()
    {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (tasks_.empty())
                return false;
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
        return true;
    }

  private:
    void
    workerLoop()
    {
        inPoolWorkerFlag() = true;
        for (;;) {
            const std::function<void(std::size_t)> *chunk_task = nullptr;
            std::size_t chunk = 0;
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                wake_.wait(lock, [this] {
                    return stopping_ ||
                           (task_ != nullptr &&
                            nextChunk_ < totalChunks_) ||
                           !tasks_.empty();
                });
                if (stopping_)
                    return;
                if (task_ != nullptr && nextChunk_ < totalChunks_) {
                    chunk_task = task_;
                    chunk = nextChunk_++;
                } else {
                    task = std::move(tasks_.front());
                    tasks_.pop_front();
                }
            }
            if (chunk_task != nullptr) {
                (*chunk_task)(chunk);
                finishChunks(1);
            } else {
                task();
            }
        }
    }

    void
    finishChunks(std::size_t n)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        pendingChunks_ -= n;
        if (pendingChunks_ == 0)
            done_.notify_all();
    }

    std::mutex mutex_;
    std::mutex forkJoinMutex_; ///< Serializes runChunks invocations.
    std::condition_variable wake_;
    std::condition_variable done_;
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> tasks_;
    const std::function<void(std::size_t)> *task_ = nullptr;
    std::size_t nextChunk_ = 0;
    std::size_t totalChunks_ = 0;
    std::size_t pendingChunks_ = 0;
    bool stopping_ = false;
};

inline ThreadPool &
sharedPool()
{
    static ThreadPool pool([] {
        if (const char *env = std::getenv("JIGSAW_THREADS")) {
            const long n = std::strtol(env, nullptr, 10);
            if (n >= 1)
                return static_cast<std::size_t>(n - 1); // workers = n - 1
        }
        const unsigned hw = std::thread::hardware_concurrency();
        return static_cast<std::size_t>(hw > 1 ? hw - 1 : 0);
    }());
    return pool;
}

} // namespace detail

/** Number of threads parallelFor uses (pool workers + the caller). */
inline std::size_t
parallelThreads()
{
    return detail::sharedPool().workerCount() + 1;
}

/**
 * Apply @p body(lo, hi) over half-open subranges that partition
 * [begin, end). Runs serially when the range is below @p grain, the
 * pool has no workers, the caller is itself a pool worker (a
 * TaskGroup job calling into the parallel kernels), or the caller is
 * already inside a parallelFor on this thread (a nested call from a
 * chunk body); otherwise splits into one chunk per thread. @p body
 * must be safe to call concurrently on disjoint ranges.
 *
 * Templated on the callable so the serial path — and the per-chunk
 * loop body — inline fully; type erasure happens only once per call,
 * at the pool boundary.
 */
template <typename Body>
inline void
parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
            Body &&body)
{
    if (begin >= end)
        return;
    const std::size_t count = end - begin;
    const std::size_t threads = parallelThreads();
    if (threads <= 1 || count <= grain || detail::inPoolWorkerFlag() ||
        detail::inForkJoinFlag()) {
        body(begin, end);
        return;
    }
    const std::size_t n_chunks = std::min(threads, (count + grain - 1) / grain);
    const std::size_t chunk_size = (count + n_chunks - 1) / n_chunks;
    const std::function<void(std::size_t)> chunk_task =
        [&](std::size_t c) {
            const std::size_t lo = begin + c * chunk_size;
            const std::size_t hi = std::min(end, lo + chunk_size);
            if (lo < hi)
                body(lo, hi);
        };
    detail::sharedPool().runChunks(n_chunks, chunk_task);
}

/**
 * A set of independent closures executed on the shared pool.
 *
 * Submit with run(), block with wait(). The waiting thread drains the
 * shared queue itself, so groups complete even on a single-core
 * machine with zero workers. The first exception thrown by any task is
 * captured and rethrown from wait(); remaining tasks still run.
 *
 * One thread owns a group: run() and wait() are not thread-safe
 * against each other. Tasks may freely use parallelFor (it degrades to
 * serial inside workers) but must not create nested TaskGroups that
 * wait inside a worker for tasks the same worker would have to run.
 */
class TaskGroup
{
  public:
    TaskGroup() = default;
    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** ~TaskGroup blocks until every submitted task finished. */
    ~TaskGroup()
    {
        if (pendingCount() > 0) {
            try {
                wait();
            } catch (...) {
                // Destructors must not throw; wait() again rethrows
                // nothing (the exception slot was consumed).
            }
        }
    }

    /** Submit @p fn for asynchronous execution. */
    void
    run(std::function<void()> fn)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++pending_;
        }
        detail::sharedPool().submit([this, fn = std::move(fn)] {
            try {
                fn();
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex_);
                if (!error_)
                    error_ = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(mutex_);
            if (--pending_ == 0)
                done_.notify_all();
        });
    }

    /**
     * Submit @p fn and invoke @p done on the executing thread after it
     * finishes — with the exception @p fn threw, or nullptr on
     * success. The callback fires before the group's pending count
     * drops, so wait() returning implies every callback has run.
     * Providing a callback hands error delivery to the caller: the
     * task's exception is NOT recorded for wait() to rethrow (the
     * callback consumed it). An exception escaping @p done itself is
     * recorded instead, as a task failure. This is the completion hook
     * event-driven callers (the streaming scheduler) build on instead
     * of blocking in wait().
     */
    void
    run(std::function<void()> fn,
        std::function<void(std::exception_ptr)> done)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++pending_;
        }
        detail::sharedPool().submit(
            [this, fn = std::move(fn), done = std::move(done)] {
                std::exception_ptr error;
                try {
                    fn();
                } catch (...) {
                    error = std::current_exception();
                }
                try {
                    done(error);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(mutex_);
                    if (!error_)
                        error_ = std::current_exception();
                }
                std::lock_guard<std::mutex> lock(mutex_);
                if (--pending_ == 0)
                    done_.notify_all();
            });
    }

    /**
     * Block until every submitted task completed, helping to execute
     * queued tasks meanwhile. Rethrows the first task exception.
     */
    void
    wait()
    {
        while (pendingCount() > 0 &&
               detail::sharedPool().tryRunOneTask()) {
        }
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [this] { return pending_ == 0; });
        if (error_) {
            const std::exception_ptr e = error_;
            error_ = nullptr;
            lock.unlock();
            std::rethrow_exception(e);
        }
    }

  private:
    std::size_t
    pendingCount()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return pending_;
    }

    std::mutex mutex_;
    std::condition_variable done_;
    std::size_t pending_ = 0;
    std::exception_ptr error_;
};

} // namespace jigsaw

#endif // JIGSAW_COMMON_PARALLEL_H
