/**
 * @file
 * Error-reporting helpers shared across the JigSaw libraries.
 *
 * Following the gem5 fatal()/panic() distinction: user-caused
 * configuration errors throw std::invalid_argument via fatalIf();
 * internal invariant violations abort via panicIf().
 */
#ifndef JIGSAW_COMMON_ERROR_H
#define JIGSAW_COMMON_ERROR_H

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace jigsaw {

/** Throw std::invalid_argument when a user-facing precondition fails. */
inline void
fatalIf(bool condition, const std::string &message)
{
    if (condition)
        throw std::invalid_argument(message);
}

/** Abort when an internal invariant is violated (a library bug). */
inline void
panicIf(bool condition, const std::string &message)
{
    if (condition)
        throw std::logic_error("internal error: " + message);
}

} // namespace jigsaw

#endif // JIGSAW_COMMON_ERROR_H
