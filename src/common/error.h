/**
 * @file
 * Error-reporting helpers shared across the JigSaw libraries.
 *
 * Following the gem5 fatal()/panic() distinction: user-caused
 * configuration errors throw std::invalid_argument via fatalIf();
 * internal invariant violations abort via panicIf().
 */
#ifndef JIGSAW_COMMON_ERROR_H
#define JIGSAW_COMMON_ERROR_H

#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <string>

namespace jigsaw {

/** Throw std::invalid_argument when a user-facing precondition fails. */
inline void
fatalIf(bool condition, const std::string &message)
{
    if (condition)
        throw std::invalid_argument(message);
}

/** Abort when an internal invariant is violated (a library bug). */
inline void
panicIf(bool condition, const std::string &message)
{
    if (condition)
        throw std::logic_error("internal error: " + message);
}

/**
 * A failure worth retrying: the operation may succeed if repeated
 * from scratch with the same inputs (a flaky backend call, an
 * injected soft fault). The streaming scheduler restarts such a job's
 * whole pipeline — never resumes mid-stream — so a retried job's draw
 * stream replays from Rng(executorSeed) and its result stays
 * bitwise-identical to an undisturbed run. Anything not derived from
 * TransientError is terminal: retrying a deterministic failure (bad
 * configuration, an invariant violation) would only repeat it.
 */
class TransientError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** A job outlived its ServiceProgram::deadlineMs SLO and was expired
 *  by the scheduler before (or instead of) running. */
class DeadlineExceededError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** True when @p error is retry-worthy (derives from TransientError). */
inline bool
isTransient(const std::exception_ptr &error)
{
    if (!error)
        return false;
    try {
        std::rethrow_exception(error);
    } catch (const TransientError &) {
        return true;
    } catch (...) {
        return false;
    }
}

} // namespace jigsaw

#endif // JIGSAW_COMMON_ERROR_H
