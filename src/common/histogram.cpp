#include "common/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/alias.h"
#include "common/error.h"

namespace jigsaw {

Histogram::Histogram(int n_qubits) : nQubits_(n_qubits)
{
    fatalIf(n_qubits < 1 || n_qubits > 64,
            "Histogram: qubit count must be in [1, 64]");
}

void
Histogram::add(BasisState outcome, std::uint64_t count)
{
    counts_[outcome] += count;
    total_ += count;
}

void
Histogram::merge(const Histogram &other)
{
    fatalIf(other.nQubits_ != nQubits_,
            "Histogram::merge: qubit count mismatch");
    for (const auto &[outcome, count] : other.counts_)
        add(outcome, count);
}

std::uint64_t
Histogram::count(BasisState outcome) const
{
    auto it = counts_.find(outcome);
    return it == counts_.end() ? 0 : it->second;
}

Pmf
Histogram::toPmf() const
{
    Pmf pmf(nQubits_);
    if (total_ == 0)
        return pmf;
    const double inv = 1.0 / static_cast<double>(total_);
    for (const auto &[outcome, count] : counts_)
        pmf.set(outcome, static_cast<double>(count) * inv);
    return pmf;
}

Histogram
Histogram::marginal(const std::vector<int> &qubits) const
{
    fatalIf(qubits.empty(), "Histogram::marginal: empty subset");
    Histogram out(static_cast<int>(qubits.size()));
    for (const auto &[outcome, count] : counts_)
        out.add(extractBits(outcome, qubits), count);
    return out;
}

Pmf::Pmf(int n_qubits) : nQubits_(n_qubits)
{
    fatalIf(n_qubits < 1 || n_qubits > 64,
            "Pmf: qubit count must be in [1, 64]");
}

Pmf::Pmf(int n_qubits, Map probabilities)
    : nQubits_(n_qubits), probs_(std::move(probabilities))
{
    fatalIf(n_qubits < 1 || n_qubits > 64,
            "Pmf: qubit count must be in [1, 64]");
}

void
Pmf::set(BasisState outcome, double probability)
{
    probs_[outcome] = probability;
}

void
Pmf::accumulate(BasisState outcome, double delta)
{
    probs_[outcome] += delta;
}

double
Pmf::prob(BasisState outcome) const
{
    auto it = probs_.find(outcome);
    return it == probs_.end() ? 0.0 : it->second;
}

double
Pmf::totalMass() const
{
    double total = 0.0;
    for (const auto &[outcome, p] : probs_)
        total += p;
    return total;
}

void
Pmf::normalize()
{
    const double total = totalMass();
    if (total <= 0.0)
        return;
    const double inv = 1.0 / total;
    for (auto &[outcome, p] : probs_)
        p *= inv;
}

void
Pmf::prune(double threshold)
{
    for (auto it = probs_.begin(); it != probs_.end();) {
        if (it->second < threshold)
            it = probs_.erase(it);
        else
            ++it;
    }
}

Pmf
Pmf::marginal(const std::vector<int> &qubits) const
{
    fatalIf(qubits.empty(), "Pmf::marginal: empty subset");
    Pmf out(static_cast<int>(qubits.size()));
    for (const auto &[outcome, p] : probs_)
        out.accumulate(extractBits(outcome, qubits), p);
    return out;
}

BasisState
Pmf::mode() const
{
    BasisState best = 0;
    double best_p = -1.0;
    for (const auto &[outcome, p] : probs_) {
        if (p > best_p || (p == best_p && outcome < best)) {
            best = outcome;
            best_p = p;
        }
    }
    return best;
}

std::vector<std::pair<BasisState, double>>
Pmf::sorted() const
{
    std::vector<std::pair<BasisState, double>> entries(probs_.begin(),
                                                       probs_.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    return entries;
}

BasisState
Pmf::sample(Rng &rng) const
{
    fatalIf(probs_.empty(), "Pmf::sample: empty PMF");
    double r = rng.uniform() * totalMass();
    BasisState last = 0;
    for (const auto &[outcome, p] : probs_) {
        r -= p;
        last = outcome;
        if (r <= 0.0)
            return outcome;
    }
    return last;
}

Histogram
Pmf::sampleHistogram(std::uint64_t trials, Rng &rng) const
{
    // Walker alias table: O(support) setup, O(1) per draw, so a batch
    // of T trials costs O(support + T) instead of O(T log support).
    Histogram hist(nQubits_);
    if (probs_.empty() || trials == 0)
        return hist;
    const AliasTable table(*this);
    for (std::uint64_t t = 0; t < trials; ++t)
        hist.add(table.sample(rng));
    return hist;
}

double
totalVariationDistance(const Pmf &p, const Pmf &q)
{
    fatalIf(p.nQubits() != q.nQubits(),
            "totalVariationDistance: qubit count mismatch");
    double sum = 0.0;
    for (const auto &[outcome, pp] : p.probabilities())
        sum += std::abs(pp - q.prob(outcome));
    for (const auto &[outcome, qq] : q.probabilities()) {
        if (p.prob(outcome) == 0.0)
            sum += std::abs(qq);
    }
    return 0.5 * sum;
}

double
hellingerDistance(const Pmf &p, const Pmf &q)
{
    fatalIf(p.nQubits() != q.nQubits(),
            "hellingerDistance: qubit count mismatch");
    // H(p, q)^2 = 1 - sum_i sqrt(p_i q_i); only the joint support
    // contributes to the Bhattacharyya coefficient.
    double bc = 0.0;
    for (const auto &[outcome, pp] : p.probabilities()) {
        const double qq = q.prob(outcome);
        if (pp > 0.0 && qq > 0.0)
            bc += std::sqrt(pp * qq);
    }
    return std::sqrt(std::max(0.0, 1.0 - bc));
}

double
klDivergence(const Pmf &p, const Pmf &q)
{
    fatalIf(p.nQubits() != q.nQubits(),
            "klDivergence: qubit count mismatch");
    constexpr double floor = 1e-12;
    double sum = 0.0;
    for (const auto &[outcome, pp] : p.probabilities()) {
        if (pp <= 0.0)
            continue;
        const double qq = std::max(q.prob(outcome), floor);
        sum += pp * std::log(pp / qq);
    }
    return sum;
}

} // namespace jigsaw
