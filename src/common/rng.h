/**
 * @file
 * Deterministic random-number generation for simulators and samplers.
 *
 * All randomness in the library flows through Rng instances that are
 * explicitly seeded, so every test, bench, and example is reproducible.
 */
#ifndef JIGSAW_COMMON_RNG_H
#define JIGSAW_COMMON_RNG_H

#include <cstdint>
#include <random>
#include <vector>

namespace jigsaw {

/**
 * Thin wrapper over std::mt19937_64 with the distribution helpers the
 * library needs. Copyable; copies continue the same stream state.
 */
class Rng
{
  public:
    /** Construct from an explicit 64-bit seed. */
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /** Bernoulli trial with success probability @p p. */
    bool
    bernoulli(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /** Normal sample with the given mean and standard deviation. */
    double
    normal(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /** Log-normal sample parameterized by log-space mu and sigma. */
    double
    logNormal(double mu, double sigma)
    {
        return std::lognormal_distribution<double>(mu, sigma)(engine_);
    }

    /** Uniform 64-bit word. */
    std::uint64_t word() { return engine_(); }

    /**
     * Sample an index from an unnormalized weight vector.
     * Returns weights.size()-1 on accumulated round-off.
     */
    std::size_t discrete(const std::vector<double> &weights);

    /**
     * Choose @p k distinct indices uniformly from [0, n) via partial
     * Fisher-Yates; result order is random.
     */
    std::vector<int> sampleWithoutReplacement(int n, int k);

    /** Derive an independent child generator (for parallel streams). */
    Rng
    fork()
    {
        return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL);
    }

    /** Access the raw engine (for std::shuffle etc.). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace jigsaw

#endif // JIGSAW_COMMON_RNG_H
