#include "common/rng.h"

#include <numeric>

#include "common/error.h"

namespace jigsaw {

std::size_t
Rng::discrete(const std::vector<double> &weights)
{
    fatalIf(weights.empty(), "discrete(): empty weight vector");
    double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    fatalIf(total <= 0.0, "discrete(): non-positive total weight");
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r <= 0.0)
            return i;
    }
    return weights.size() - 1;
}

std::vector<int>
Rng::sampleWithoutReplacement(int n, int k)
{
    fatalIf(k > n || k < 0, "sampleWithoutReplacement(): k out of range");
    std::vector<int> pool(static_cast<std::size_t>(n));
    std::iota(pool.begin(), pool.end(), 0);
    for (int i = 0; i < k; ++i) {
        const auto j = static_cast<std::size_t>(uniformInt(i, n - 1));
        std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
    }
    pool.resize(static_cast<std::size_t>(k));
    return pool;
}

} // namespace jigsaw
