#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace jigsaw {

ConsoleTable::ConsoleTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
ConsoleTable::addRow(std::vector<std::string> row)
{
    row.resize(header_.size());
    rows_.push_back(std::move(row));
}

void
ConsoleTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << '\n';
    };

    print_row(header_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

std::string
ConsoleTable::num(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

} // namespace jigsaw
