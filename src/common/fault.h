/**
 * @file
 * Deterministic, seed-driven fault injection for robustness testing.
 *
 * The executor and pipeline-stage layers are instrumented with named
 * fault points (injectFaultPoint("executor.run") etc.). With no rules
 * configured a fault point is one relaxed atomic load — cheap enough
 * to leave compiled into production builds. Tests and CI arm the
 * process-wide injector either programmatically
 * (FaultInjector::instance().configure(...)) or through the
 * JIGSAW_FAULT_SPEC environment variable, whose spec is parsed once
 * when the injector is first touched:
 *
 *   JIGSAW_FAULT_SPEC = rule[;rule...]
 *   rule  = site[@detail][:key[=value]...]
 *   keys  = first=N     fail the first N matching hits (deterministic
 *                       in total count, whatever the thread
 *                       interleaving)
 *           prob=P      additionally fail later hits with probability
 *                       P, drawn from this rule's own seeded stream
 *           seed=S      seed of that stream (default 1)
 *           terminal    throw std::runtime_error (no retry)
 *           transient   throw TransientError (the default; the
 *                       scheduler retries these)
 *
 * A rule's site must name one of the instrumented points
 * (FaultInjector::knownSites()); a typo'd site is rejected at parse
 * time instead of silently never firing.
 *
 * Example: "executor.run:first=2;merge.execute@2:first=1:terminal"
 * fails the first two executor runs transiently and the first merged
 * execution covering exactly 2 sources terminally.
 *
 * Two kinds of sites exist. Throwing sites (stage.*, executor.*,
 * merge.execute, transport.*) raise from injectFaultPoint when a rule
 * fires, and their rule detail is a MATCHER against the point's
 * runtime detail. Behavioral sites (worker.crash, worker.stall) are
 * polled with fireBehavioral() instead: the worker tier asks "did
 * this fault fire?" and acts out the failure itself (die silently,
 * sleep), and the rule's detail is a PARAMETER handed back to the
 * caller — worker.stall@250 stalls the worker 250 ms.
 *
 * Determinism contract: counted rules fire an exact total number of
 * times; which concurrent caller absorbs each fault may vary, but the
 * scheduler's full-restart retry makes every surviving job's result
 * independent of who was hit — the property the robustness tests
 * assert bitwise.
 */
#ifndef JIGSAW_COMMON_FAULT_H
#define JIGSAW_COMMON_FAULT_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace jigsaw {

/** One fault-injection rule (see file comment for the spec grammar). */
struct FaultRule
{
    std::string site;   ///< Exact fault-point name ("executor.run").
    std::string detail; ///< Non-empty: must equal the point's detail.
    std::uint64_t failFirst = 0; ///< Fail the first N matching hits.
    double probability = 0.0;    ///< Seeded-random faults on later hits.
    std::uint64_t seed = 1;      ///< Seed of this rule's draw stream.
    bool transient = true; ///< TransientError vs plain runtime_error.
};

/** Parse a JIGSAW_FAULT_SPEC string; throws std::invalid_argument on
 *  malformed input or an unknown site name (the error lists the known
 *  sites). An empty spec yields no rules. */
std::vector<FaultRule> parseFaultSpec(const std::string &spec);

class FaultInjector
{
  public:
    /** The process-wide injector. First use parses JIGSAW_FAULT_SPEC
     *  (if set) into the initial rule set. */
    static FaultInjector &instance();

    /** Replace all rules and reset hit/injection counters. */
    void configure(std::vector<FaultRule> rules);

    /** Drop every rule and reset counters (disarms all points). */
    void clear();

    /** Evaluate the fault point @p site; throws when a rule fires. */
    void maybeInject(const char *site, const std::string &detail);

    /**
     * Evaluate the behavioral fault point @p site: like maybeInject,
     * but instead of throwing, a fired rule returns its detail string
     * — the fault's parameter, for the caller to act on (e.g. the
     * worker tier sleeps worker.stall@250's 250 ms, or exits its
     * thread on worker.crash). Rule details never filter matching
     * here; they are payload, not matcher. std::nullopt when no rule
     * fired. Counts into injected()/injectedAt() like any fault.
     */
    std::optional<std::string> fireBehavioral(const char *site);

    /**
     * Every fault-point name the instrumented layers call, throwing
     * and behavioral alike. parseFaultSpec rejects anything else, so
     * a misspelled site fails fast instead of never firing.
     */
    static const std::vector<std::string> &knownSites();

    /** Total faults injected since the last configure()/clear(). */
    std::uint64_t injected() const;

    /** Faults injected at one site since the last configure()/clear(). */
    std::uint64_t injectedAt(const std::string &site) const;

    /** True when at least one rule is configured. */
    bool armed() const { return armed_.load(std::memory_order_relaxed); }

  private:
    FaultInjector();

    struct RuleState
    {
        FaultRule rule;
        std::uint64_t fired = 0; ///< Counted (first=N) faults so far.
        Rng rng;                 ///< Stream for probabilistic faults.

        explicit RuleState(FaultRule r)
            : rule(std::move(r)), rng(rule.seed)
        {
        }
    };

    mutable std::mutex mutex_;
    std::vector<RuleState> rules_;
    std::uint64_t injected_ = 0;
    std::unordered_map<std::string, std::uint64_t> injectedBySite_;
    std::atomic<bool> armed_{false};
};

/**
 * The instrumented sites call this: near-zero cost (one relaxed
 * atomic load) until the injector is armed.
 */
inline void
injectFaultPoint(const char *site, const std::string &detail = {})
{
    FaultInjector &injector = FaultInjector::instance();
    if (injector.armed())
        injector.maybeInject(site, detail);
}

} // namespace jigsaw

#endif // JIGSAW_COMMON_FAULT_H
