/**
 * @file
 * Bit-manipulation helpers for basis-state bookkeeping.
 *
 * Convention used throughout the library: an n-qubit basis state is a
 * uint64_t with qubit i stored at bit i (little-endian). Bitstrings are
 * printed most-significant qubit first, i.e. Q_{n-1} ... Q_0, matching
 * the figures in the JigSaw paper and Qiskit's string order.
 */
#ifndef JIGSAW_COMMON_BITOPS_H
#define JIGSAW_COMMON_BITOPS_H

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"

namespace jigsaw {

/** Basis-state index; supports programs of up to 64 qubits. */
using BasisState = std::uint64_t;

/** Return bit @p position of @p state (0 or 1). */
inline int
getBit(BasisState state, int position)
{
    return static_cast<int>((state >> position) & 1ULL);
}

/** Return @p state with bit @p position set to @p value. */
inline BasisState
setBit(BasisState state, int position, int value)
{
    const BasisState mask = 1ULL << position;
    return value ? (state | mask) : (state & ~mask);
}

/** Return @p state with bit @p position flipped. */
inline BasisState
flipBit(BasisState state, int position)
{
    return state ^ (1ULL << position);
}

/**
 * Extract the bits of @p state at the given qubit positions into a
 * compact key: bit j of the result is bit positions[j] of @p state.
 *
 * This is the marginalization primitive: a full outcome maps to the
 * outcome observed over a measured subset of qubits.
 */
inline BasisState
extractBits(BasisState state, const std::vector<int> &positions)
{
    BasisState key = 0;
    for (std::size_t j = 0; j < positions.size(); ++j)
        key |= static_cast<BasisState>(getBit(state, positions[j])) << j;
    return key;
}

/**
 * Inverse of extractBits(): scatter the low bits of @p key into a
 * 64-bit state at the given qubit positions (all other bits zero).
 */
inline BasisState
depositBits(BasisState key, const std::vector<int> &positions)
{
    BasisState state = 0;
    for (std::size_t j = 0; j < positions.size(); ++j)
        state = setBit(state, positions[j], getBit(key, static_cast<int>(j)));
    return state;
}

/** Number of set bits in @p state. */
inline int
popcount(BasisState state)
{
    return std::popcount(state);
}

/** Hamming distance between two basis states. */
inline int
hammingDistance(BasisState a, BasisState b)
{
    return std::popcount(a ^ b);
}

/**
 * Format a basis state as a bitstring, most-significant qubit first
 * (Q_{n-1} ... Q_0).
 */
inline std::string
toBitstring(BasisState state, int n_qubits)
{
    std::string s(static_cast<std::size_t>(n_qubits), '0');
    for (int q = 0; q < n_qubits; ++q) {
        if (getBit(state, q))
            s[static_cast<std::size_t>(n_qubits - 1 - q)] = '1';
    }
    return s;
}

/** Parse a bitstring written Q_{n-1} ... Q_0 back into a basis state. */
inline BasisState
fromBitstring(const std::string &bits)
{
    fatalIf(bits.size() > 64, "bitstring longer than 64 qubits");
    BasisState state = 0;
    const int n = static_cast<int>(bits.size());
    for (int i = 0; i < n; ++i) {
        const char c = bits[static_cast<std::size_t>(i)];
        fatalIf(c != '0' && c != '1', "bitstring must contain only 0/1");
        if (c == '1')
            state = setBit(state, n - 1 - i, 1);
    }
    return state;
}

} // namespace jigsaw

#endif // JIGSAW_COMMON_BITOPS_H
