#include "mitigation/characterize.h"

#include <algorithm>

#include "common/error.h"

namespace jigsaw {
namespace mitigation {

EmpiricalConfusion
characterizeReadout(const circuit::QuantumCircuit &physical_circuit,
                    sim::Executor &executor,
                    std::uint64_t shots_per_state)
{
    fatalIf(shots_per_state == 0,
            "characterizeReadout: need at least one shot");
    const std::vector<int> measured = physical_circuit.measuredQubits();
    const int n_clbits = physical_circuit.countMeasurements();
    fatalIf(n_clbits == 0,
            "characterizeReadout: circuit has no measurements");

    // Preparation circuits share the target's measurement pattern.
    circuit::QuantumCircuit prep0(physical_circuit.nQubits(), n_clbits);
    circuit::QuantumCircuit prep1(physical_circuit.nQubits(), n_clbits);
    for (int c = 0; c < n_clbits; ++c) {
        const int q = measured[static_cast<std::size_t>(c)];
        fatalIf(q < 0, "characterizeReadout: unused classical bit");
        prep1.x(q);
    }
    for (int c = 0; c < n_clbits; ++c) {
        const int q = measured[static_cast<std::size_t>(c)];
        prep0.measure(q, c);
        prep1.measure(q, c);
    }

    const Histogram h0 = executor.run(prep0, shots_per_state);
    const Histogram h1 = executor.run(prep1, shots_per_state);

    EmpiricalConfusion confusion;
    confusion.shotsPerState = shots_per_state;
    confusion.flip0.resize(static_cast<std::size_t>(n_clbits), 0.0);
    confusion.flip1.resize(static_cast<std::size_t>(n_clbits), 0.0);

    for (const auto &[outcome, count] : h0.counts()) {
        for (int c = 0; c < n_clbits; ++c) {
            if (getBit(outcome, c))
                confusion.flip0[static_cast<std::size_t>(c)] +=
                    static_cast<double>(count);
        }
    }
    for (const auto &[outcome, count] : h1.counts()) {
        for (int c = 0; c < n_clbits; ++c) {
            if (!getBit(outcome, c))
                confusion.flip1[static_cast<std::size_t>(c)] +=
                    static_cast<double>(count);
        }
    }

    const double total = static_cast<double>(shots_per_state);
    for (int c = 0; c < n_clbits; ++c) {
        auto &f0 = confusion.flip0[static_cast<std::size_t>(c)];
        auto &f1 = confusion.flip1[static_cast<std::size_t>(c)];
        // Clamp for invertibility of [[1-e0, e1], [e0, 1-e1]].
        f0 = std::clamp(f0 / total, 1e-6, 0.49);
        f1 = std::clamp(f1 / total, 1e-6, 0.49);
    }
    return confusion;
}

} // namespace mitigation
} // namespace jigsaw
