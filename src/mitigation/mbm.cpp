#include "mitigation/mbm.h"

#include <algorithm>

#include "common/error.h"

namespace jigsaw {
namespace mitigation {

MbmMitigator::MbmMitigator(const circuit::QuantumCircuit &physical_circuit,
                           const device::DeviceModel &dev)
{
    const std::vector<int> measured = physical_circuit.measuredQubits();
    const int simultaneous = physical_circuit.countMeasurements();
    fatalIf(measured.empty(), "MbmMitigator: circuit has no measurements");
    fatalIf(static_cast<int>(measured.size()) > 24,
            "MbmMitigator: too many measured qubits for the dense "
            "inverse (the exponential-cost limitation of MBM)");

    flip0_.reserve(measured.size());
    flip1_.reserve(measured.size());
    for (int q : measured) {
        fatalIf(q < 0, "MbmMitigator: unused classical bit");
        flip0_.push_back(dev.calibration().effectiveReadoutError(
            q, simultaneous, 0));
        flip1_.push_back(dev.calibration().effectiveReadoutError(
            q, simultaneous, 1));
    }
}

MbmMitigator::MbmMitigator(const EmpiricalConfusion &confusion)
    : flip0_(confusion.flip0), flip1_(confusion.flip1)
{
    fatalIf(flip0_.empty() || flip0_.size() != flip1_.size(),
            "MbmMitigator: malformed empirical confusion");
    fatalIf(flip0_.size() > 24,
            "MbmMitigator: too many measured qubits for the dense "
            "inverse (the exponential-cost limitation of MBM)");
}

Pmf
MbmMitigator::mitigate(const Pmf &observed) const
{
    const int n = nClbits();
    fatalIf(observed.nQubits() != n,
            "MbmMitigator: PMF size does not match the calibration");

    // Densify, apply each qubit's 2x2 inverse along its axis, then
    // clamp and renormalize (the standard least-norm fixup for the
    // quasi-probabilities the inverse produces).
    std::vector<double> dense(1ULL << n, 0.0);
    for (const auto &[outcome, p] : observed.probabilities())
        dense[outcome] = p;

    for (int c = 0; c < n; ++c) {
        const double e0 = flip0_[static_cast<std::size_t>(c)];
        const double e1 = flip1_[static_cast<std::size_t>(c)];
        const double det = 1.0 - e0 - e1;
        fatalIf(det <= 0.0, "MbmMitigator: confusion matrix singular");
        // inverse of [[1-e0, e1], [e0, 1-e1]] (columns = true state).
        const double inv00 = (1.0 - e1) / det;
        const double inv01 = -e1 / det;
        const double inv10 = -e0 / det;
        const double inv11 = (1.0 - e0) / det;

        const BasisState mask = 1ULL << c;
        for (BasisState base = 0; base < dense.size(); ++base) {
            if (base & mask)
                continue;
            const double v0 = dense[base];
            const double v1 = dense[base | mask];
            dense[base] = inv00 * v0 + inv01 * v1;
            dense[base | mask] = inv10 * v0 + inv11 * v1;
        }
    }

    Pmf mitigated(n);
    for (BasisState outcome = 0; outcome < dense.size(); ++outcome) {
        const double p = std::max(0.0, dense[outcome]);
        if (p > 1e-12)
            mitigated.set(outcome, p);
    }
    mitigated.normalize();
    return mitigated;
}

Pmf
applyMbmToJigsaw(const core::JigsawResult &result,
                 const device::DeviceModel &dev,
                 const core::ReconstructionOptions &options)
{
    const MbmMitigator global_mitigator(result.globalCompiled.physical,
                                        dev);
    const Pmf global = global_mitigator.mitigate(result.globalPmf);

    std::vector<core::Marginal> marginals;
    marginals.reserve(result.cpms.size());
    for (const core::CpmRecord &cpm : result.cpms) {
        const MbmMitigator local_mitigator(cpm.compiled.physical, dev);
        marginals.push_back(
            {local_mitigator.mitigate(cpm.localPmf), cpm.subset});
    }
    return core::multiLayerReconstruct(global, marginals, options);
}

} // namespace mitigation
} // namespace jigsaw
