#include "mitigation/edm.h"

#include "common/error.h"

namespace jigsaw {
namespace mitigation {

EdmResult
runEdm(const circuit::QuantumCircuit &logical,
       const device::DeviceModel &dev, sim::Executor &executor,
       std::uint64_t total_trials, int ensemble_size,
       const compiler::TranspileOptions &options)
{
    fatalIf(ensemble_size < 1, "runEdm: ensemble size must be positive");
    std::vector<compiler::CompiledCircuit> mappings =
        compiler::transpileEnsemble(logical, dev, ensemble_size, options);
    fatalIf(mappings.empty(), "runEdm: no mappings produced");

    const std::uint64_t per_mapping =
        std::max<std::uint64_t>(1, total_trials / mappings.size());
    Histogram merged(logical.nClbits());
    for (const compiler::CompiledCircuit &mapping : mappings)
        merged.merge(executor.run(mapping.physical, per_mapping));

    return {merged.toPmf(), std::move(mappings)};
}

} // namespace mitigation
} // namespace jigsaw
