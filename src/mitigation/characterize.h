/**
 * @file
 * Empirical readout characterization.
 *
 * Real matrix-based mitigation cannot read the device's true error
 * rates; it estimates them by running preparation circuits (this is
 * what IBM's calibration step does before inverting). This module
 * measures per-qubit confusion rates through the same Executor
 * interface the workloads use — including whatever crosstalk the
 * simultaneous-measurement pattern of the target circuit induces —
 * so MbmMitigator can be built without privileged model access.
 */
#ifndef JIGSAW_MITIGATION_CHARACTERIZE_H
#define JIGSAW_MITIGATION_CHARACTERIZE_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "sim/simulators.h"

namespace jigsaw {
namespace mitigation {

/** Empirically estimated per-clbit confusion rates. */
struct EmpiricalConfusion
{
    std::vector<double> flip0; ///< P(read 1 | prepared 0) per clbit.
    std::vector<double> flip1; ///< P(read 0 | prepared 1) per clbit.
    std::uint64_t shotsPerState = 0; ///< Shots behind each estimate.
};

/**
 * Estimate the confusion of @p physical_circuit's measurement set by
 * running two preparation circuits on @p executor: all measured
 * qubits in |0>, and all in |1> (via X gates), each measured exactly
 * like the target circuit so the crosstalk conditions match.
 *
 * Rates are clamped away from 0 and 0.5 so the resulting confusion
 * matrices stay invertible.
 */
EmpiricalConfusion characterizeReadout(
    const circuit::QuantumCircuit &physical_circuit,
    sim::Executor &executor, std::uint64_t shots_per_state = 8192);

} // namespace mitigation
} // namespace jigsaw

#endif // JIGSAW_MITIGATION_CHARACTERIZE_H
