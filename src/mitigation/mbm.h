/**
 * @file
 * Matrix-Based measurement error Mitigation (IBM's MBM; paper
 * Section 8, Figure 14).
 *
 * The readout process is modeled as a confusion matrix acting on the
 * true distribution; mitigation applies its inverse. We use the
 * tensored (per-qubit) variant: each measured qubit contributes a 2x2
 * confusion matrix derived from the same calibration the simulator's
 * readout channel uses, so MBM here is as strong as it can possibly
 * be — except that it cannot model the correlated-pair flips or gate
 * noise, which is exactly the gap JigSaw+MBM closes in Figure 14.
 */
#ifndef JIGSAW_MITIGATION_MBM_H
#define JIGSAW_MITIGATION_MBM_H

#include "circuit/circuit.h"
#include "common/histogram.h"
#include "core/jigsaw.h"
#include "device/device_model.h"
#include "mitigation/characterize.h"

namespace jigsaw {
namespace mitigation {

/**
 * Tensored confusion-matrix inverter for one compiled circuit's
 * measurement set.
 */
class MbmMitigator
{
  public:
    /**
     * Derive per-clbit confusion matrices from the calibration of
     * @p dev for the measurements of @p physical_circuit (including
     * the crosstalk uplift for its simultaneous-measurement count).
     */
    MbmMitigator(const circuit::QuantumCircuit &physical_circuit,
                 const device::DeviceModel &dev);

    /**
     * Build from empirically measured confusion rates (see
     * characterizeReadout()) — the calibration path a real deployment
     * uses, with no privileged access to the noise model.
     */
    explicit MbmMitigator(const EmpiricalConfusion &confusion);

    /**
     * Apply the inverse confusion transform to @p observed, clamping
     * negative quasi-probabilities to zero and renormalizing.
     * Complexity is O(n 2^n): exponential in the number of measured
     * bits, the scalability weakness the paper contrasts JigSaw with.
     */
    Pmf mitigate(const Pmf &observed) const;

    /** Number of measured bits. */
    int nClbits() const { return static_cast<int>(flip0_.size()); }

  private:
    std::vector<double> flip0_; ///< P(read 1 | true 0) per clbit.
    std::vector<double> flip1_; ///< P(read 0 | true 1) per clbit.
};

/**
 * JigSaw + MBM composition (Figure 14): mitigate the global PMF and
 * every CPM's local PMF, then rerun the Bayesian reconstruction on
 * the mitigated evidence.
 */
Pmf applyMbmToJigsaw(const core::JigsawResult &result,
                     const device::DeviceModel &dev,
                     const core::ReconstructionOptions &options = {});

} // namespace mitigation
} // namespace jigsaw

#endif // JIGSAW_MITIGATION_MBM_H
