/**
 * @file
 * Ensemble of Diverse Mappings (Tannu & Qureshi, MICRO 2019), the
 * prior-work baseline the paper compares against (Section 5.2).
 *
 * The trial budget is split equally across k independently compiled
 * mappings; because different mappings make dissimilar mistakes, the
 * merged histogram strengthens the (mapping-independent) correct
 * answer relative to mapping-specific error modes.
 */
#ifndef JIGSAW_MITIGATION_EDM_H
#define JIGSAW_MITIGATION_EDM_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "common/histogram.h"
#include "compiler/transpiler.h"
#include "device/device_model.h"
#include "sim/simulators.h"

namespace jigsaw {
namespace mitigation {

/** Outcome of an EDM run. */
struct EdmResult
{
    Pmf output;                                    ///< Merged PMF.
    std::vector<compiler::CompiledCircuit> mappings; ///< The ensemble.
};

/**
 * Run EDM with @p ensemble_size diverse mappings (paper default 4),
 * splitting @p total_trials equally among them.
 */
EdmResult runEdm(const circuit::QuantumCircuit &logical,
                 const device::DeviceModel &dev, sim::Executor &executor,
                 std::uint64_t total_trials, int ensemble_size = 4,
                 const compiler::TranspileOptions &options = {});

} // namespace mitigation
} // namespace jigsaw

#endif // JIGSAW_MITIGATION_EDM_H
