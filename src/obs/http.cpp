#include "obs/http.h"

#include <cerrno>
#include <cstring>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/error.h"
#include "common/log.h"

namespace jigsaw {
namespace obs {

namespace {

jigsaw::log::Logger &
lg()
{
    static jigsaw::log::Logger &logger = jigsaw::log::logger("obs.http");
    return logger;
}

} // namespace

MetricsHttpServer::MetricsHttpServer(int port,
                                     std::function<std::string()> render)
    : render_(std::move(render))
{
    fatalIf(port < 0 || port > 65535,
            "MetricsHttpServer: port out of range");
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    fatalIf(listenFd_ < 0, "MetricsHttpServer: socket() failed");
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 8) != 0) {
        const int error = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        fatalIf(true, std::string("MetricsHttpServer: cannot listen on "
                                  "127.0.0.1: ") +
                          std::strerror(error));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr), &len);
    port_ = static_cast<int>(ntohs(addr.sin_port));
    thread_ = std::thread([this] { acceptLoop(); });
    JIGSAW_LOG_INFO(lg(), "metrics endpoint listening",
                    jigsaw::log::kv("port", port_));
}

MetricsHttpServer::~MetricsHttpServer()
{
    stop_.store(true, std::memory_order_relaxed);
    if (thread_.joinable())
        thread_.join();
    if (listenFd_ >= 0)
        ::close(listenFd_);
}

void
MetricsHttpServer::acceptLoop()
{
    for (;;) {
        pollfd pfd{};
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        // 100 ms poll so shutdown is prompt without a wakeup pipe.
        const int ready = ::poll(&pfd, 1, 100);
        if (stop_.load(std::memory_order_relaxed))
            return;
        if (ready <= 0)
            continue;
        const int client = ::accept(listenFd_, nullptr, nullptr);
        if (client < 0)
            continue;
        // Read the request line + headers; we answer any GET (the
        // path is ignored — /metrics and / serve the same body).
        char buffer[1024];
        const ssize_t got = ::recv(client, buffer, sizeof(buffer), 0);
        if (got <= 0) {
            ::close(client);
            continue;
        }
        std::string body;
        std::string status = "200 OK";
        try {
            body = render_();
        } catch (const std::exception &error) {
            status = "500 Internal Server Error";
            body = std::string("render failed: ") + error.what() + "\n";
        }
        std::string response;
        response.reserve(body.size() + 128);
        response += "HTTP/1.0 ";
        response += status;
        response += "\r\nContent-Type: text/plain; version=0.0.4; "
                    "charset=utf-8\r\nContent-Length: ";
        response += std::to_string(body.size());
        response += "\r\nConnection: close\r\n\r\n";
        response += body;
        std::size_t sent = 0;
        while (sent < response.size()) {
            const ssize_t n = ::send(client, response.data() + sent,
                                     response.size() - sent, MSG_NOSIGNAL);
            if (n <= 0)
                break;
            sent += static_cast<std::size_t>(n);
        }
        ::close(client);
        scrapes_.fetch_add(1, std::memory_order_relaxed);
        JIGSAW_LOG_DEBUG(lg(), "scrape served",
                         jigsaw::log::kv("bytes", body.size()));
    }
}

} // namespace obs
} // namespace jigsaw
