#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <thread>

namespace jigsaw {
namespace obs {

namespace {

std::uint64_t
threadToken()
{
    return static_cast<std::uint64_t>(
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

void
appendNumber(std::string &out, double value)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.3f", value);
    out += buffer;
}

} // namespace

TraceRecorder::TraceRecorder(std::size_t max_jobs)
    : epoch_(Clock::now()), maxJobs_(std::max<std::size_t>(1, max_jobs))
{
}

double
TraceRecorder::toMs(Clock::time_point tp) const
{
    return std::chrono::duration<double, std::milli>(tp - epoch_).count();
}

double
TraceRecorder::nowMs() const
{
    return toMs(Clock::now());
}

void
TraceRecorder::record(std::uint64_t job_id, std::uint32_t attempt,
                      const char *stage, double start_ms,
                      double duration_ms, std::uint64_t window_id,
                      std::uint64_t lease_id)
{
    TraceSpan span;
    span.jobId = job_id;
    span.attempt = attempt;
    span.stage = stage;
    span.startMs = start_ms;
    span.durationMs = duration_ms;
    span.thread = threadToken();
    span.windowId = window_id;
    span.leaseId = lease_id;

    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = spans_.try_emplace(job_id);
    if (inserted) {
        order_.push_back(job_id);
        while (order_.size() > maxJobs_) {
            spans_.erase(order_.front());
            order_.pop_front();
        }
        // The new job may itself have been evicted when maxJobs_ is
        // tiny; re-find it.
        it = spans_.find(job_id);
        if (it == spans_.end())
            return;
    }
    it->second.push_back(span);
}

std::vector<TraceSpan>
TraceRecorder::spansFor(std::uint64_t job_id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = spans_.find(job_id);
    if (it == spans_.end())
        return {};
    std::vector<TraceSpan> out = it->second;
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceSpan &a, const TraceSpan &b) {
                         return a.startMs < b.startMs;
                     });
    return out;
}

std::vector<std::uint64_t>
TraceRecorder::jobIds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return {order_.begin(), order_.end()};
}

std::size_t
TraceRecorder::totalSpans() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t total = 0;
    for (const auto &[id, spans] : spans_)
        total += spans.size();
    return total;
}

std::string
TraceRecorder::toJsonLines() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    out.reserve(spans_.size() * 96);
    for (const std::uint64_t id : order_) {
        const auto it = spans_.find(id);
        if (it == spans_.end())
            continue;
        for (const TraceSpan &span : it->second) {
            out += "{\"job\":";
            out += std::to_string(span.jobId);
            out += ",\"attempt\":";
            out += std::to_string(span.attempt);
            out += ",\"stage\":\"";
            out += span.stage;
            out += "\",\"start_ms\":";
            appendNumber(out, span.startMs);
            out += ",\"dur_ms\":";
            appendNumber(out, span.durationMs);
            out += ",\"thread\":";
            out += std::to_string(span.thread);
            out += ",\"window\":";
            out += std::to_string(span.windowId);
            out += ",\"lease\":";
            out += std::to_string(span.leaseId);
            out += "}\n";
        }
    }
    return out;
}

} // namespace obs
} // namespace jigsaw
