/**
 * @file
 * Process-wide metrics registry: relaxed-atomic counters and gauges
 * plus fixed-bucket latency histograms, with small bounded label
 * cardinality, rendered on demand by obs/exposition.h.
 *
 * Writers touch lock-free atomics only (one relaxed fetch_add per
 * Counter::add, one relaxed store per Gauge::set); the registry mutex
 * is taken only when a metric is first looked up — call sites cache
 * the returned reference — and when a scrape renders. Collectors
 * (callbacks that publish snapshot-style sources like StreamStats
 * into the registry) run at render time under the collector mutex.
 *
 * Instruments returned by the registry live for the process lifetime;
 * references never dangle.
 */
#ifndef JIGSAW_OBS_REGISTRY_H
#define JIGSAW_OBS_REGISTRY_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace jigsaw {
namespace obs {

/** Sorted (key, value) label pairs; keep cardinality tiny. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Monotone counter. set() exists for snapshot-publishing collectors
 *  that mirror an external monotone source (e.g. the process-wide
 *  transpile-cache hit count); Prometheus treats any decrease as a
 *  counter reset, so mirroring a resettable source is still sound. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    void
    set(std::uint64_t value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Point-in-time value; stored as double bits in one atomic word. */
class Gauge
{
  public:
    void set(double value);
    void add(double delta);
    double value() const;

  private:
    std::atomic<std::uint64_t> bits_{0};
};

/** Shared immutable bucket upper bounds (ascending, +Inf implicit). */
using Bounds = std::shared_ptr<const std::vector<double>>;

/** Default latency bounds: geometric ×1.25 from 0.01 ms past 60 s
 *  (~71 buckets). One shared instance; every latency histogram in the
 *  process uses it so scrape deltas are mergeable. */
const Bounds &defaultLatencyBoundsMs();

/**
 * A plain, copyable histogram snapshot — also usable directly as a
 * single-threaded histogram (StreamStats carries these). Tracks
 * per-bucket counts *and* per-bucket sums so quantile() can return
 * the bucket's observed mean instead of an interpolated bound,
 * keeping percentile fidelity close to the reservoir it replaces.
 */
struct HistogramData {
    Bounds bounds; // null until first observe (defaultLatencyBoundsMs)
    std::vector<std::uint64_t> counts; // bounds->size() + 1, last=+Inf
    std::vector<double> bucketSums;    // same shape as counts
    std::uint64_t count = 0;
    double sum = 0.0;

    void observe(double value);
    void merge(const HistogramData &other);

    /** Nearest-rank quantile, q in [0,1]. Guards: empty -> 0, a
     *  single observation -> that exact value, non-finite q -> 0.
     *  Otherwise the mean of the selected bucket clamped to the
     *  bucket's bounds. */
    double quantile(double q) const;

    double
    mean() const
    {
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
};

/** Thread-safe histogram: relaxed per-bucket atomic counts plus
 *  CAS-loop double accumulation for the sums. snapshot() is a relaxed
 *  read — not a consistent cut across buckets, which is fine for
 *  monitoring (totals are exact once writers quiesce). */
class Histogram
{
  public:
    explicit Histogram(Bounds bounds);

    void observe(double value);
    HistogramData snapshot() const;
    std::uint64_t count() const;

  private:
    Bounds bounds_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> sumBits_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> totalSumBits_{0};
};

enum class MetricType { CounterType, GaugeType, HistogramType };

/** One rendered child: a (labels, value-or-histogram) pair. */
struct ChildSnapshot {
    Labels labels;
    double value = 0.0;     // counters/gauges
    HistogramData hist;     // histograms
};

/** One rendered family: name, help, type, children. */
struct FamilySnapshot {
    std::string name;
    std::string help;
    MetricType type = MetricType::CounterType;
    std::vector<ChildSnapshot> children;
};

/**
 * The registry. One process-wide instance (instance()); separate
 * instances are constructible for tests.
 *
 * Family names must match [a-zA-Z_:][a-zA-Z0-9_:]*. Per-family child
 * cardinality is bounded (kMaxChildren); lookups past the bound all
 * return one shared overflow child labelled {overflow="true"} so a
 * label-cardinality bug degrades a metric instead of eating memory.
 */
class Registry
{
  public:
    static constexpr std::size_t kMaxChildren = 64;

    Registry();
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;
    ~Registry();

    static Registry &instance();

    Counter &counter(const std::string &name, const std::string &help,
                     const Labels &labels = {});
    Gauge &gauge(const std::string &name, const std::string &help,
                 const Labels &labels = {});
    Histogram &histogram(const std::string &name, const std::string &help,
                         Bounds bounds = nullptr, const Labels &labels = {});

    /** Register a callback run at the start of every collect();
     *  returns an id for removeCollector(). Collectors publish
     *  snapshot-style sources (StreamStats, simd::dispatchCounters)
     *  into registry instruments. */
    std::uint64_t addCollector(std::function<void()> fn);

    /** Blocks until any in-flight collect() finishes, so the callback
     *  can safely reference state about to be destroyed. */
    void removeCollector(std::uint64_t id);

    /** Run collectors, then snapshot every family (sorted by name). */
    std::vector<FamilySnapshot> collect();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace obs
} // namespace jigsaw

#endif // JIGSAW_OBS_REGISTRY_H
