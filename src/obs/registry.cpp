#include "obs/registry.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <mutex>

#include "common/error.h"

namespace jigsaw {
namespace obs {

namespace {

bool
validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_' || c == ':';
    };
    if (!head(name[0]))
        return false;
    for (const char c : name) {
        if (!head(c) && !(c >= '0' && c <= '9'))
            return false;
    }
    return true;
}

Labels
sortedLabels(Labels labels)
{
    std::sort(labels.begin(), labels.end());
    return labels;
}

std::size_t
bucketIndex(const std::vector<double> &bounds, double value)
{
    // First bound >= value; the +Inf bucket is index bounds.size().
    const auto it =
        std::lower_bound(bounds.begin(), bounds.end(), value);
    return static_cast<std::size_t>(it - bounds.begin());
}

void
atomicAddDouble(std::atomic<std::uint64_t> &bits, double delta)
{
    std::uint64_t expected = bits.load(std::memory_order_relaxed);
    for (;;) {
        const double updated = std::bit_cast<double>(expected) + delta;
        if (bits.compare_exchange_weak(expected,
                                       std::bit_cast<std::uint64_t>(updated),
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed))
            return;
    }
}

} // namespace

const Bounds &
defaultLatencyBoundsMs()
{
    static const Bounds bounds = [] {
        auto edges = std::make_shared<std::vector<double>>();
        for (double edge = 0.01; edge <= 60000.0 * 1.25; edge *= 1.25)
            edges->push_back(edge);
        return Bounds(std::move(edges));
    }();
    return bounds;
}

void
Gauge::set(double value)
{
    bits_.store(std::bit_cast<std::uint64_t>(value),
                std::memory_order_relaxed);
}

void
Gauge::add(double delta)
{
    atomicAddDouble(bits_, delta);
}

double
Gauge::value() const
{
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

void
HistogramData::observe(double value)
{
    if (!bounds)
        bounds = defaultLatencyBoundsMs();
    if (counts.empty()) {
        counts.assign(bounds->size() + 1, 0);
        bucketSums.assign(bounds->size() + 1, 0.0);
    }
    const std::size_t bucket = bucketIndex(*bounds, value);
    ++counts[bucket];
    bucketSums[bucket] += value;
    ++count;
    sum += value;
}

void
HistogramData::merge(const HistogramData &other)
{
    if (other.count == 0)
        return;
    if (!bounds)
        bounds = other.bounds;
    panicIf(bounds != other.bounds &&
                (!bounds || !other.bounds || *bounds != *other.bounds),
            "HistogramData::merge: mismatched bucket bounds");
    if (counts.empty()) {
        counts.assign(bounds->size() + 1, 0);
        bucketSums.assign(bounds->size() + 1, 0.0);
    }
    for (std::size_t i = 0; i < other.counts.size(); ++i) {
        counts[i] += other.counts[i];
        bucketSums[i] += other.bucketSums[i];
    }
    count += other.count;
    sum += other.sum;
}

double
HistogramData::quantile(double q) const
{
    if (count == 0 || !std::isfinite(q))
        return 0.0;
    if (count == 1)
        return sum; // one observation: exact
    q = std::clamp(q, 0.0, 1.0);
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(count))));
    std::uint64_t seen = 0;
    for (std::size_t bucket = 0; bucket < counts.size(); ++bucket) {
        seen += counts[bucket];
        if (seen < rank)
            continue;
        const std::uint64_t n = counts[bucket];
        const double bucketMean =
            n == 0 ? 0.0
                   : bucketSums[bucket] / static_cast<double>(n);
        // Clamp the mean into the bucket so a weird float never
        // reports outside the bucket it landed in.
        const double lo = bucket == 0 ? 0.0 : (*bounds)[bucket - 1];
        if (bucket < bounds->size())
            return std::clamp(bucketMean, lo, (*bounds)[bucket]);
        return std::max(bucketMean, lo); // +Inf bucket: no upper clamp
    }
    return sum / static_cast<double>(count);
}

Histogram::Histogram(Bounds bounds)
    : bounds_(bounds ? std::move(bounds) : defaultLatencyBoundsMs())
{
    const std::size_t buckets = bounds_->size() + 1;
    counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(buckets);
    sumBits_ = std::make_unique<std::atomic<std::uint64_t>[]>(buckets);
    for (std::size_t i = 0; i < buckets; ++i) {
        counts_[i].store(0, std::memory_order_relaxed);
        sumBits_[i].store(0, std::memory_order_relaxed);
    }
}

void
Histogram::observe(double value)
{
    const std::size_t bucket = bucketIndex(*bounds_, value);
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    atomicAddDouble(sumBits_[bucket], value);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAddDouble(totalSumBits_, value);
}

HistogramData
Histogram::snapshot() const
{
    HistogramData data;
    data.bounds = bounds_;
    const std::size_t buckets = bounds_->size() + 1;
    data.counts.resize(buckets);
    data.bucketSums.resize(buckets);
    for (std::size_t i = 0; i < buckets; ++i) {
        data.counts[i] = counts_[i].load(std::memory_order_relaxed);
        data.bucketSums[i] =
            std::bit_cast<double>(sumBits_[i].load(
                std::memory_order_relaxed));
    }
    data.count = count_.load(std::memory_order_relaxed);
    data.sum = std::bit_cast<double>(
        totalSumBits_.load(std::memory_order_relaxed));
    return data;
}

std::uint64_t
Histogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry

struct Registry::Impl {
    struct Family {
        std::string help;
        MetricType type = MetricType::CounterType;
        Bounds bounds; // histograms only
        // Children keyed by sorted labels. unique_ptr keeps instrument
        // addresses stable across rehashing.
        std::map<Labels, std::unique_ptr<Counter>> counters;
        std::map<Labels, std::unique_ptr<Gauge>> gauges;
        std::map<Labels, std::unique_ptr<Histogram>> histograms;

        std::size_t
        childCount() const
        {
            return counters.size() + gauges.size() + histograms.size();
        }
    };

    std::mutex mutex;
    std::map<std::string, Family> families;
    std::mutex collectorMutex;
    std::uint64_t nextCollectorId = 1;
    std::map<std::uint64_t, std::function<void()>> collectors;

    Family &
    family(const std::string &name, const std::string &help,
           MetricType type)
    {
        fatalIf(!validMetricName(name),
                "metrics: invalid metric name '" + name + "'");
        Family &family = families[name];
        if (family.childCount() == 0 && family.help.empty()) {
            family.help = help;
            family.type = type;
        }
        fatalIf(family.type != type,
                "metrics: '" + name +
                    "' re-registered with a different type");
        return family;
    }

    static Labels
    effectiveLabels(const Family &family, Labels labels)
    {
        // Bounded cardinality: once a family is full, every new label
        // combination collapses into one overflow child.
        if (family.childCount() >= Registry::kMaxChildren)
            return Labels{{"overflow", "true"}};
        return labels;
    }
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}

Registry::~Registry() = default;

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

Counter &
Registry::counter(const std::string &name, const std::string &help,
                  const Labels &labels)
{
    Impl &impl = *impl_;
    std::lock_guard<std::mutex> lock(impl.mutex);
    Impl::Family &family =
        impl.family(name, help, MetricType::CounterType);
    Labels key = sortedLabels(labels);
    if (!family.counters.count(key))
        key = Impl::effectiveLabels(family, std::move(key));
    std::unique_ptr<Counter> &slot = family.counters[key];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help,
                const Labels &labels)
{
    Impl &impl = *impl_;
    std::lock_guard<std::mutex> lock(impl.mutex);
    Impl::Family &family = impl.family(name, help, MetricType::GaugeType);
    Labels key = sortedLabels(labels);
    if (!family.gauges.count(key))
        key = Impl::effectiveLabels(family, std::move(key));
    std::unique_ptr<Gauge> &slot = family.gauges[key];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name, const std::string &help,
                    Bounds bounds, const Labels &labels)
{
    Impl &impl = *impl_;
    std::lock_guard<std::mutex> lock(impl.mutex);
    Impl::Family &family =
        impl.family(name, help, MetricType::HistogramType);
    if (!family.bounds)
        family.bounds = bounds ? bounds : defaultLatencyBoundsMs();
    Labels key = sortedLabels(labels);
    if (!family.histograms.count(key))
        key = Impl::effectiveLabels(family, std::move(key));
    std::unique_ptr<Histogram> &slot = family.histograms[key];
    if (!slot)
        slot = std::make_unique<Histogram>(family.bounds);
    return *slot;
}

std::uint64_t
Registry::addCollector(std::function<void()> fn)
{
    Impl &impl = *impl_;
    std::lock_guard<std::mutex> lock(impl.collectorMutex);
    const std::uint64_t id = impl.nextCollectorId++;
    impl.collectors[id] = std::move(fn);
    return id;
}

void
Registry::removeCollector(std::uint64_t id)
{
    Impl &impl = *impl_;
    // collect() holds collectorMutex while invoking callbacks, so
    // acquiring it here waits out any in-flight run of this callback.
    std::lock_guard<std::mutex> lock(impl.collectorMutex);
    impl.collectors.erase(id);
}

std::vector<FamilySnapshot>
Registry::collect()
{
    Impl &impl = *impl_;
    {
        std::lock_guard<std::mutex> lock(impl.collectorMutex);
        for (auto &[id, fn] : impl.collectors)
            fn();
    }
    std::vector<FamilySnapshot> snapshot;
    std::lock_guard<std::mutex> lock(impl.mutex);
    snapshot.reserve(impl.families.size());
    for (const auto &[name, family] : impl.families) {
        FamilySnapshot fam;
        fam.name = name;
        fam.help = family.help;
        fam.type = family.type;
        for (const auto &[labels, counter] : family.counters) {
            ChildSnapshot child;
            child.labels = labels;
            child.value = static_cast<double>(counter->value());
            fam.children.push_back(std::move(child));
        }
        for (const auto &[labels, gauge] : family.gauges) {
            ChildSnapshot child;
            child.labels = labels;
            child.value = gauge->value();
            fam.children.push_back(std::move(child));
        }
        for (const auto &[labels, histogram] : family.histograms) {
            ChildSnapshot child;
            child.labels = labels;
            child.hist = histogram->snapshot();
            fam.children.push_back(std::move(child));
        }
        snapshot.push_back(std::move(fam));
    }
    return snapshot;
}

} // namespace obs
} // namespace jigsaw
