/**
 * @file
 * A tiny optional metrics endpoint: a blocking HTTP/1.0 listener on
 * loopback that answers every GET with the rendered Prometheus
 * exposition. Deliberately minimal — one accept thread, one request
 * per connection, no keep-alive, no TLS — because its only job is to
 * let `curl 127.0.0.1:<port>/metrics` work against a running
 * scheduler. Off by default (`StreamOptions::metricsPort = -1`), so
 * CI legs that never ask for it need no networking.
 */
#ifndef JIGSAW_OBS_HTTP_H
#define JIGSAW_OBS_HTTP_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace jigsaw {
namespace obs {

class MetricsHttpServer
{
  public:
    /**
     * Bind 127.0.0.1:@p port (0 picks an ephemeral port — see
     * port()) and start the accept thread. @p render is called per
     * request, outside any server lock. Throws std::invalid_argument
     * (via fatalIf) when the bind fails.
     */
    MetricsHttpServer(int port, std::function<std::string()> render);
    ~MetricsHttpServer();

    MetricsHttpServer(const MetricsHttpServer &) = delete;
    MetricsHttpServer &operator=(const MetricsHttpServer &) = delete;

    /** The bound port (resolves port 0 requests). */
    int port() const { return port_; }

    /** Requests answered so far. */
    std::uint64_t
    scrapesServed() const
    {
        return scrapes_.load(std::memory_order_relaxed);
    }

  private:
    void acceptLoop();

    std::function<std::string()> render_;
    int listenFd_ = -1;
    int port_ = 0;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> scrapes_{0};
    std::thread thread_;
};

} // namespace obs
} // namespace jigsaw

#endif // JIGSAW_OBS_HTTP_H
