#include "obs/exposition.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <set>
#include <sstream>

#include "common/simd.h"
#include "compiler/transpiler.h"

namespace jigsaw {
namespace obs {

namespace {

void
appendEscapedLabelValue(std::string &out, const std::string &value)
{
    for (const char c : value) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
            break;
        }
    }
}

void
appendEscapedHelp(std::string &out, const std::string &help)
{
    for (const char c : help) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
}

std::string
formatValue(double value)
{
    if (std::isnan(value))
        return "NaN";
    if (std::isinf(value))
        return value > 0 ? "+Inf" : "-Inf";
    char buffer[40];
    // %.17g round-trips doubles; trim to %g style for the common
    // integral counter case.
    if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
        std::fabs(value) < 9.0e15) {
        std::snprintf(buffer, sizeof(buffer), "%lld",
                      static_cast<long long>(value));
    } else {
        std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    }
    return buffer;
}

void
appendLabels(std::string &out, const Labels &labels,
             const char *extraKey = nullptr,
             const std::string &extraValue = std::string())
{
    if (labels.empty() && !extraKey)
        return;
    out += '{';
    bool first = true;
    for (const auto &[key, value] : labels) {
        if (!first)
            out += ',';
        first = false;
        out += key;
        out += "=\"";
        appendEscapedLabelValue(out, value);
        out += '"';
    }
    if (extraKey) {
        if (!first)
            out += ',';
        out += extraKey;
        out += "=\"";
        appendEscapedLabelValue(out, extraValue);
        out += '"';
    }
    out += '}';
}

const char *
typeName(MetricType type)
{
    switch (type) {
      case MetricType::CounterType:
        return "counter";
      case MetricType::GaugeType:
        return "gauge";
      case MetricType::HistogramType:
        return "histogram";
    }
    return "untyped";
}

} // namespace

std::string
renderPrometheus(Registry &registry)
{
    const std::vector<FamilySnapshot> families = registry.collect();
    std::string out;
    out.reserve(4096);
    for (const FamilySnapshot &family : families) {
        out += "# HELP ";
        out += family.name;
        out += ' ';
        appendEscapedHelp(out, family.help);
        out += '\n';
        out += "# TYPE ";
        out += family.name;
        out += ' ';
        out += typeName(family.type);
        out += '\n';
        for (const ChildSnapshot &child : family.children) {
            if (family.type != MetricType::HistogramType) {
                out += family.name;
                appendLabels(out, child.labels);
                out += ' ';
                out += formatValue(child.value);
                out += '\n';
                continue;
            }
            const HistogramData &hist = child.hist;
            std::uint64_t cumulative = 0;
            if (hist.bounds) {
                for (std::size_t b = 0; b < hist.bounds->size(); ++b) {
                    cumulative +=
                        b < hist.counts.size() ? hist.counts[b] : 0;
                    out += family.name;
                    out += "_bucket";
                    appendLabels(out, child.labels, "le",
                                 formatValue((*hist.bounds)[b]));
                    out += ' ';
                    out += std::to_string(cumulative);
                    out += '\n';
                }
            }
            out += family.name;
            out += "_bucket";
            appendLabels(out, child.labels, "le", "+Inf");
            out += ' ';
            out += std::to_string(hist.count);
            out += '\n';
            out += family.name;
            out += "_sum";
            appendLabels(out, child.labels);
            out += ' ';
            out += formatValue(hist.sum);
            out += '\n';
            out += family.name;
            out += "_count";
            appendLabels(out, child.labels);
            out += ' ';
            out += std::to_string(hist.count);
            out += '\n';
        }
    }
    return out;
}

std::string
renderProcessMetrics()
{
    registerProcessMetrics();
    return renderPrometheus(Registry::instance());
}

ProcessCounters
ProcessCounters::snapshot()
{
    ProcessCounters counters;
    counters.transpileCacheHits = compiler::transpileCacheHits();
    counters.transpileCacheMisses = compiler::transpileCacheMisses();
    counters.transpileSkeletonRebinds =
        compiler::transpileSkeletonRebinds();
    const simd::DispatchCounters dispatch = simd::dispatchCounters();
    counters.simdDispatchScalar =
        dispatch.backendTotal(simd::kBackendScalar);
    counters.simdDispatchAvx2 = dispatch.backendTotal(simd::kBackendAvx2);
    counters.simdDispatchAvx512 =
        dispatch.backendTotal(simd::kBackendAvx512);
    return counters;
}

ProcessCounters
ProcessCounters::since(const ProcessCounters &earlier) const
{
    auto delta = [](std::uint64_t now, std::uint64_t then) {
        return now >= then ? now - then : 0;
    };
    ProcessCounters out;
    out.transpileCacheHits =
        delta(transpileCacheHits, earlier.transpileCacheHits);
    out.transpileCacheMisses =
        delta(transpileCacheMisses, earlier.transpileCacheMisses);
    out.transpileSkeletonRebinds =
        delta(transpileSkeletonRebinds, earlier.transpileSkeletonRebinds);
    out.simdDispatchScalar =
        delta(simdDispatchScalar, earlier.simdDispatchScalar);
    out.simdDispatchAvx2 = delta(simdDispatchAvx2, earlier.simdDispatchAvx2);
    out.simdDispatchAvx512 =
        delta(simdDispatchAvx512, earlier.simdDispatchAvx512);
    return out;
}

std::array<ProcessCounters::Entry, 3>
ProcessCounters::transpileEntries() const
{
    return {{{"transpile_cache_hits", transpileCacheHits},
             {"transpile_cache_misses", transpileCacheMisses},
             {"transpile_skeleton_rebinds", transpileSkeletonRebinds}}};
}

std::array<ProcessCounters::Entry, 3>
ProcessCounters::simdEntries() const
{
    return {{{"simd/dispatch_scalar", simdDispatchScalar},
             {"simd/dispatch_avx2", simdDispatchAvx2},
             {"simd/dispatch_avx512", simdDispatchAvx512}}};
}

void
registerProcessMetrics()
{
    static std::once_flag once;
    std::call_once(once, [] {
        Registry &registry = Registry::instance();
        Counter &transpileHits = registry.counter(
            "jigsaw_transpile_cache_total",
            "Lifetime transpile-memo lookups by result",
            {{"result", "hit"}});
        Counter &transpileMisses = registry.counter(
            "jigsaw_transpile_cache_total",
            "Lifetime transpile-memo lookups by result",
            {{"result", "miss"}});
        Counter &rebinds = registry.counter(
            "jigsaw_transpile_skeleton_rebinds_total",
            "Transpile-memo hits served by re-binding a cached "
            "same-skeleton compilation");
        Counter &scalar = registry.counter(
            "jigsaw_simd_dispatch_total",
            "Kernel-table dispatches by backend",
            {{"backend", "scalar"}});
        Counter &avx2 = registry.counter(
            "jigsaw_simd_dispatch_total",
            "Kernel-table dispatches by backend",
            {{"backend", "avx2"}});
        Counter &avx512 = registry.counter(
            "jigsaw_simd_dispatch_total",
            "Kernel-table dispatches by backend",
            {{"backend", "avx512"}});
        registry.addCollector([&transpileHits, &transpileMisses, &rebinds,
                               &scalar, &avx2, &avx512] {
            const ProcessCounters now = ProcessCounters::snapshot();
            transpileHits.set(now.transpileCacheHits);
            transpileMisses.set(now.transpileCacheMisses);
            rebinds.set(now.transpileSkeletonRebinds);
            scalar.set(now.simdDispatchScalar);
            avx2.set(now.simdDispatchAvx2);
            avx512.set(now.simdDispatchAvx512);
        });
    });
}

bool
expositionLooksValid(const std::string &body, std::string *error)
{
    auto fail = [error](const std::string &message) {
        if (error)
            *error = message;
        return false;
    };
    std::set<std::string> helped;
    std::set<std::string> typed;
    std::istringstream in(body);
    std::string line;
    std::size_t samples = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (line.rfind("# HELP ", 0) == 0) {
            const std::size_t space = line.find(' ', 7);
            helped.insert(line.substr(7, space - 7));
            continue;
        }
        if (line.rfind("# TYPE ", 0) == 0) {
            const std::size_t space = line.find(' ', 7);
            typed.insert(line.substr(7, space - 7));
            continue;
        }
        if (line[0] == '#')
            continue;
        // Sample line: name[{labels}] value
        std::size_t nameEnd = line.find_first_of("{ ");
        if (nameEnd == std::string::npos)
            return fail("sample line without a value: " + line);
        std::string name = line.substr(0, nameEnd);
        if (line[nameEnd] == '{') {
            // Scan for the closing brace outside quotes.
            bool quoted = false;
            std::size_t i = nameEnd;
            for (; i < line.size(); ++i) {
                if (quoted) {
                    if (line[i] == '\\')
                        ++i;
                    else if (line[i] == '"')
                        quoted = false;
                } else if (line[i] == '"') {
                    quoted = true;
                } else if (line[i] == '}') {
                    break;
                }
            }
            if (i >= line.size())
                return fail("unterminated label set: " + line);
            if (i + 1 >= line.size() || line[i + 1] != ' ')
                return fail("no value after labels: " + line);
            nameEnd = i + 1;
        }
        const std::string value = line.substr(nameEnd + 1);
        if (value.empty() ||
            value.find_first_not_of("0123456789+-.eEInfNa") !=
                std::string::npos)
            return fail("unparseable sample value: " + line);
        // A histogram/summary sample's family is the name minus the
        // _bucket/_sum/_count suffix.
        std::string family = name;
        for (const char *suffix : {"_bucket", "_sum", "_count"}) {
            const std::string s(suffix);
            if (family.size() > s.size() &&
                family.compare(family.size() - s.size(), s.size(), s) ==
                    0 &&
                typed.count(family.substr(0, family.size() - s.size()))) {
                family = family.substr(0, family.size() - s.size());
                break;
            }
        }
        if (!helped.count(family))
            return fail("sample without # HELP: " + name);
        if (!typed.count(family))
            return fail("sample without # TYPE: " + name);
        ++samples;
    }
    if (samples == 0)
        return fail("no samples in exposition body");
    return true;
}

} // namespace obs
} // namespace jigsaw
