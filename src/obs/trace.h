/**
 * @file
 * Lightweight per-job pipeline tracing.
 *
 * A TraceRecorder attached via `StreamOptions::trace` collects one
 * span per (job, attempt, stage) as a job moves through
 * plan -> compile -> window -> dispatch -> execute -> reconstruct.
 * The job id doubles as the trace id (it is unique per scheduler
 * lifetime); `attempt` is the job's trace epoch, bumped on every
 * retry/quarantine requeue, so the spans of a retried job's final
 * successful pass are distinguishable from its failed ones.
 *
 * Spans carry wall-relative times (milliseconds since the recorder's
 * construction) so a timeline across threads and workers lines up on
 * one axis. Recording is a short critical section on the recorder's
 * own mutex — never the scheduler's — and the recorder keeps at most
 * maxJobs jobs (FIFO eviction), so tracing a long-running server is
 * bounded.
 *
 * Export: toJsonLines() emits one JSON object per span, the format
 * `bench_stream_throughput --trace FILE` writes.
 */
#ifndef JIGSAW_OBS_TRACE_H
#define JIGSAW_OBS_TRACE_H

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace jigsaw {
namespace obs {

struct TraceSpan {
    std::uint64_t jobId = 0;
    /** Trace epoch: 0 on first dispatch, +1 per requeue. */
    std::uint32_t attempt = 0;
    /** One of "plan", "compile", "window", "dispatch", "execute",
     *  "reconstruct" (a string literal; not owned). */
    const char *stage = "";
    double startMs = 0.0;
    double durationMs = 0.0;
    std::uint64_t thread = 0;
    std::uint64_t windowId = 0; ///< 0 = solo (never windowed)
    std::uint64_t leaseId = 0;  ///< 0 = executed locally
};

class TraceRecorder
{
  public:
    using Clock = std::chrono::steady_clock;

    explicit TraceRecorder(std::size_t max_jobs = 4096);

    /** Milliseconds from the recorder epoch to @p tp. */
    double toMs(Clock::time_point tp) const;
    double nowMs() const;

    /** Append a span (thread token filled from the calling thread). */
    void record(std::uint64_t job_id, std::uint32_t attempt,
                const char *stage, double start_ms, double duration_ms,
                std::uint64_t window_id, std::uint64_t lease_id);

    /** All spans of @p job_id, ordered by start time. */
    std::vector<TraceSpan> spansFor(std::uint64_t job_id) const;

    /** Job ids currently retained (insertion order). */
    std::vector<std::uint64_t> jobIds() const;

    std::size_t totalSpans() const;

    /** Every retained span as JSON-lines, jobs in insertion order. */
    std::string toJsonLines() const;

  private:
    mutable std::mutex mutex_;
    Clock::time_point epoch_;
    std::size_t maxJobs_;
    std::map<std::uint64_t, std::vector<TraceSpan>> spans_;
    std::deque<std::uint64_t> order_;
};

} // namespace obs
} // namespace jigsaw

#endif // JIGSAW_OBS_TRACE_H
