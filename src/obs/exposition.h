/**
 * @file
 * Prometheus text exposition (version 0.0.4) rendering for the
 * metrics registry, plus the shared process-wide counter snapshot
 * helper the benches use.
 */
#ifndef JIGSAW_OBS_EXPOSITION_H
#define JIGSAW_OBS_EXPOSITION_H

#include <array>
#include <cstdint>
#include <string>

#include "obs/registry.h"

namespace jigsaw {
namespace obs {

/** Run collectors and render every family:
 *  `# HELP`/`# TYPE` lines, escaped labels, histogram `le` buckets
 *  (cumulative, `+Inf`), `_sum`/`_count`. */
std::string renderPrometheus(Registry &registry);

/** Render the process-wide registry (Registry::instance()), after
 *  making sure the process-wide collectors below are registered. */
std::string renderProcessMetrics();

/**
 * One snapshot of every process-wide (not per-scheduler) counter the
 * benches report: the transpile memo and the SIMD kernel-dispatch
 * totals. `suite_runner` and `bench_perf_reconstruction` both used to
 * re-derive these by hand; routing both through this struct means a
 * new process-wide counter added here appears in the suite timings
 * JSON, the dispatch-mix table, and the Prometheus exposition at once.
 */
struct ProcessCounters {
    std::uint64_t transpileCacheHits = 0;
    std::uint64_t transpileCacheMisses = 0;
    std::uint64_t transpileSkeletonRebinds = 0;
    std::uint64_t simdDispatchScalar = 0;
    std::uint64_t simdDispatchAvx2 = 0;
    std::uint64_t simdDispatchAvx512 = 0;

    /** Read all sources now. */
    static ProcessCounters snapshot();

    /** Delta against an @p earlier snapshot (per-field subtraction,
     *  clamped at zero in case a source was reset in between). */
    ProcessCounters since(const ProcessCounters &earlier) const;

    struct Entry {
        const char *name;
        std::uint64_t value;
    };

    /** Transpile-memo entries under their bench-report base names
     *  ("transpile_cache_hits", ...); suite_runner prefixes "suite/". */
    std::array<Entry, 3> transpileEntries() const;

    /** Kernel-dispatch entries under their full bench-report names
     *  ("simd/dispatch_scalar", ...), shared by the suite timings
     *  export and the perf bench's dispatch-mix table. */
    std::array<Entry, 3> simdEntries() const;
};

/** Idempotently register the collector that mirrors ProcessCounters
 *  into Registry::instance() (jigsaw_transpile_cache_total,
 *  jigsaw_simd_dispatch_total, ...). */
void registerProcessMetrics();

/**
 * Minimal structural validity check for a scrape body (used by tests;
 * CI re-implements the same rules in python to validate a live
 * scrape): every non-comment line is `name{labels} value`, every
 * sample's family has HELP and TYPE comments above it, histogram
 * families end with _sum/_count. Returns true when the body parses.
 */
bool expositionLooksValid(const std::string &body, std::string *error);

} // namespace obs
} // namespace jigsaw

#endif // JIGSAW_OBS_EXPOSITION_H
