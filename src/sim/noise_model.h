/**
 * @file
 * Measurement-error channel.
 *
 * Models the three readout phenomena the paper characterizes:
 *  - per-qubit asymmetric bit flips (reading |1> fails more often
 *    than |0> because the qubit relaxes during the readout pulse),
 *  - measurement crosstalk (effective error grows with the number of
 *    simultaneous measurements, Section 3.1),
 *  - correlated flips between adjacent simultaneously-measured qubits
 *    (the correlated-error floor that makes PST saturate with trials,
 *    Figure 7).
 */
#ifndef JIGSAW_SIM_NOISE_MODEL_H
#define JIGSAW_SIM_NOISE_MODEL_H

#include <utility>
#include <vector>

#include "circuit/circuit.h"
#include "common/bitops.h"
#include "common/rng.h"
#include "device/device_model.h"

namespace jigsaw {
namespace sim {

/**
 * The stochastic readout channel for one compiled circuit: built once
 * from the device calibration and the circuit's measurement set, then
 * applied to every sampled ideal outcome.
 */
class MeasurementChannel
{
  public:
    /**
     * Build the channel for the measurements of @p physical_circuit
     * (a routed circuit over physical qubits) on @p dev. Classical
     * bit c of an outcome corresponds to the physical qubit measured
     * into clbit c.
     */
    MeasurementChannel(const circuit::QuantumCircuit &physical_circuit,
                       const device::DeviceModel &dev);

    /** Corrupt one ideal outcome with readout noise. */
    BasisState apply(BasisState ideal, Rng &rng) const;

    /** Flip probability of clbit @p c when the true bit is @p bit. */
    double flipProbability(int c, int bit) const;

    /** Number of classical bits covered. */
    int nClbits() const { return static_cast<int>(flip0_.size()); }

    /** Pairs of clbits subject to correlated flips. */
    const std::vector<std::pair<int, int>> &correlatedPairs() const
    {
        return correlatedPairs_;
    }

    /** Correlated-pair flip probability. */
    double correlatedError() const { return correlatedError_; }

  private:
    std::vector<double> flip0_; ///< P(flip | true bit 0), per clbit.
    std::vector<double> flip1_; ///< P(flip | true bit 1), per clbit.
    std::vector<std::pair<int, int>> correlatedPairs_;
    double correlatedError_ = 0.0;
};

} // namespace sim
} // namespace jigsaw

#endif // JIGSAW_SIM_NOISE_MODEL_H
