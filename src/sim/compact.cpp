#include "sim/compact.h"

#include "common/error.h"

namespace jigsaw {
namespace sim {

CompactCircuit
compactCircuit(const circuit::QuantumCircuit &qc)
{
    std::vector<int> dense_of(static_cast<std::size_t>(qc.nQubits()), -1);
    std::vector<int> active;
    for (const circuit::Gate &g : qc.gates()) {
        for (int q : g.qubits) {
            if (dense_of[static_cast<std::size_t>(q)] < 0) {
                dense_of[static_cast<std::size_t>(q)] =
                    static_cast<int>(active.size());
                active.push_back(q);
            }
        }
    }
    fatalIf(active.empty(), "compactCircuit: circuit has no gates");

    circuit::QuantumCircuit compacted(static_cast<int>(active.size()),
                                      qc.nClbits());
    for (const circuit::Gate &g : qc.gates()) {
        circuit::Gate h = g;
        for (int &q : h.qubits)
            q = dense_of[static_cast<std::size_t>(q)];
        compacted.append(std::move(h));
    }
    return {std::move(compacted), std::move(active), std::move(dense_of)};
}

} // namespace sim
} // namespace jigsaw
