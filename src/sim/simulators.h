/**
 * @file
 * Executor interface and the ideal / noisy backend implementations.
 *
 * An Executor plays the role of the NISQ machine in Figure 4 of the
 * paper: it takes a routed (physical) circuit and a trial count and
 * returns a histogram over the circuit's classical bits. JigSaw, EDM,
 * and MBM are all written against this interface, so a different
 * backend (e.g. a hardware client) can be swapped in.
 */
#ifndef JIGSAW_SIM_SIMULATORS_H
#define JIGSAW_SIM_SIMULATORS_H

#include <cstdint>

#include "circuit/circuit.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "device/device_model.h"

namespace jigsaw {
namespace sim {

/** Abstract quantum-program executor (the "NISQ machine"). */
class Executor
{
  public:
    virtual ~Executor() = default;

    /**
     * Run @p physical_circuit for @p shots trials and return the
     * histogram of outcomes over its classical bits. All measurements
     * must be terminal (no gate may follow a measurement on the same
     * qubit).
     */
    virtual Histogram run(const circuit::QuantumCircuit &physical_circuit,
                          std::uint64_t shots) = 0;
};

/**
 * Noise-free executor; also exposes the exact output PMF, which the
 * metrics use as the golden reference distribution.
 */
class IdealSimulator : public Executor
{
  public:
    /** @p seed drives the multinomial shot sampling only. */
    explicit IdealSimulator(std::uint64_t seed = 1);

    Histogram run(const circuit::QuantumCircuit &physical_circuit,
                  std::uint64_t shots) override;

    /** Exact output distribution over the circuit's classical bits. */
    Pmf idealPmf(const circuit::QuantumCircuit &physical_circuit);

  private:
    Rng rng_;
};

/** Tuning knobs for NoisySimulator. */
struct NoisySimulatorOptions
{
    std::uint64_t seed = 1234;
    /**
     * 0 = fast channel mode: gate noise becomes a depolarizing
     * channel of strength 1 - gateSuccessProbability and readout
     * noise is applied per sampled outcome.
     * >0 = trajectory mode: this many stochastic-Pauli trajectories
     * are simulated and shots are split across them (slow; used to
     * validate the fast mode on small circuits).
     */
    int trajectories = 0;
    bool gateNoise = true;
    bool measurementNoise = true;
    /**
     * Channel-mode gate-failure corruption: each output bit of the
     * sampled ideal outcome flips with this probability when the
     * trial suffers a gate error. 0.5 reproduces the textbook
     * uniform-outcome depolarizing channel; the default 0.15 models
     * the localized corruption real hardware shows, which keeps the
     * observed global-PMF support small (paper Table 6: ~7% of the
     * possible outcomes at 512K trials).
     */
    double gateNoiseBitFlip = 0.15;
};

/**
 * Noisy executor driven by a DeviceModel calibration.
 *
 * Fast mode (default) samples each trial from the exact state-vector
 * distribution, replaces it with a uniform random outcome with
 * probability 1 - gateSuccessProbability (global depolarizing
 * approximation of accumulated gate error), and then pushes it through
 * the MeasurementChannel.
 */
class NoisySimulator : public Executor
{
  public:
    /** The device model is copied so the executor owns its lifetime. */
    NoisySimulator(device::DeviceModel dev, NoisySimulatorOptions options = {});

    Histogram run(const circuit::QuantumCircuit &physical_circuit,
                  std::uint64_t shots) override;

    /** The device this executor models. */
    const device::DeviceModel &device() const { return dev_; }

    /** Options in effect. */
    const NoisySimulatorOptions &options() const { return options_; }

  private:
    Histogram runChannelMode(const circuit::QuantumCircuit &physical,
                             std::uint64_t shots);
    Histogram runTrajectoryMode(const circuit::QuantumCircuit &physical,
                                std::uint64_t shots);

    device::DeviceModel dev_;
    NoisySimulatorOptions options_;
    Rng rng_;
};

/**
 * Verify that every measurement in @p qc is terminal and measured
 * classical bits are distinct; throws std::invalid_argument otherwise.
 */
void checkTerminalMeasurements(const circuit::QuantumCircuit &qc);

} // namespace sim
} // namespace jigsaw

#endif // JIGSAW_SIM_SIMULATORS_H
