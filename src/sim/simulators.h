/**
 * @file
 * Executor interface and the ideal / noisy backend implementations.
 *
 * An Executor plays the role of the NISQ machine in Figure 4 of the
 * paper: it takes a routed (physical) circuit and a trial count and
 * returns a histogram over the circuit's classical bits. JigSaw, EDM,
 * and MBM are all written against this interface, so a different
 * backend (e.g. a hardware client) can be swapped in.
 */
#ifndef JIGSAW_SIM_SIMULATORS_H
#define JIGSAW_SIM_SIMULATORS_H

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "circuit/circuit.h"
#include "common/alias.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "device/device_model.h"
#include "sim/noise_model.h"

namespace jigsaw {
namespace sim {

/** Abstract quantum-program executor (the "NISQ machine"). */
class Executor
{
  public:
    virtual ~Executor() = default;

    /**
     * Run @p physical_circuit for @p shots trials and return the
     * histogram of outcomes over its classical bits. All measurements
     * must be terminal (no gate may follow a measurement on the same
     * qubit).
     */
    virtual Histogram run(const circuit::QuantumCircuit &physical_circuit,
                          std::uint64_t shots) = 0;
};

/**
 * Noise-free executor; also exposes the exact output PMF, which the
 * metrics use as the golden reference distribution.
 *
 * Exact PMFs (and their alias samplers) are memoized per structural
 * circuit hash, so JigSaw's repeated runs of an identical circuit —
 * the global circuit resampled, or CPMs sharing a compilation — skip
 * state-vector evolution entirely and cost O(shots) draws.
 */
class IdealSimulator : public Executor
{
  public:
    /** @p seed drives the multinomial shot sampling only. */
    explicit IdealSimulator(std::uint64_t seed = 1);

    Histogram run(const circuit::QuantumCircuit &physical_circuit,
                  std::uint64_t shots) override;

    /** Exact output distribution over the circuit's classical bits. */
    Pmf idealPmf(const circuit::QuantumCircuit &physical_circuit);

    /** Simulations skipped because the PMF was already cached. */
    std::uint64_t cacheHits() const { return cacheHits_; }

    /** Simulations actually performed. */
    std::uint64_t cacheMisses() const { return cacheMisses_; }

  private:
    struct Cached
    {
        Pmf pmf;
        AliasTable sampler;
    };

    const Cached &evolved(const circuit::QuantumCircuit &physical);

    Rng rng_;
    std::unordered_map<std::uint64_t, Cached> cache_;
    std::uint64_t cacheHits_ = 0;
    std::uint64_t cacheMisses_ = 0;
};

/** Tuning knobs for NoisySimulator. */
struct NoisySimulatorOptions
{
    std::uint64_t seed = 1234;
    /**
     * 0 = fast channel mode: gate noise becomes a depolarizing
     * channel of strength 1 - gateSuccessProbability and readout
     * noise is applied per sampled outcome.
     * >0 = trajectory mode: this many stochastic-Pauli trajectories
     * are simulated and shots are split across them (slow; used to
     * validate the fast mode on small circuits).
     */
    int trajectories = 0;
    bool gateNoise = true;
    bool measurementNoise = true;
    /**
     * Channel-mode gate-failure corruption: each output bit of the
     * sampled ideal outcome flips with this probability when the
     * trial suffers a gate error. 0.5 reproduces the textbook
     * uniform-outcome depolarizing channel; the default 0.15 models
     * the localized corruption real hardware shows, which keeps the
     * observed global-PMF support small (paper Table 6: ~7% of the
     * possible outcomes at 512K trials).
     */
    double gateNoiseBitFlip = 0.15;
};

/**
 * Noisy executor driven by a DeviceModel calibration.
 *
 * Fast mode (default) samples each trial from the exact state-vector
 * distribution, replaces it with a uniform random outcome with
 * probability 1 - gateSuccessProbability (global depolarizing
 * approximation of accumulated gate error), and then pushes it through
 * the MeasurementChannel.
 */
class NoisySimulator : public Executor
{
  public:
    /** The device model is copied so the executor owns its lifetime. */
    NoisySimulator(device::DeviceModel dev, NoisySimulatorOptions options = {});

    Histogram run(const circuit::QuantumCircuit &physical_circuit,
                  std::uint64_t shots) override;

    /** The device this executor models. */
    const device::DeviceModel &device() const { return dev_; }

    /** Options in effect. */
    const NoisySimulatorOptions &options() const { return options_; }

    /** Channel-mode evolutions skipped via the PMF cache. */
    std::uint64_t cacheHits() const { return cacheHits_; }

    /** Channel-mode evolutions actually performed. */
    std::uint64_t cacheMisses() const { return cacheMisses_; }

  private:
    /**
     * Everything channel mode derives from the circuit alone: the
     * exact PMF, its alias sampler, the gate-success probability, and
     * the readout channel. Cached per structural hash.
     */
    struct Cached
    {
        Pmf pmf;
        AliasTable sampler;
        double gateOk = 1.0;
        std::unique_ptr<MeasurementChannel> channel;
    };

    const Cached &evolved(const circuit::QuantumCircuit &physical);

    Histogram runChannelMode(const circuit::QuantumCircuit &physical,
                             std::uint64_t shots);
    Histogram runTrajectoryMode(const circuit::QuantumCircuit &physical,
                                std::uint64_t shots);

    device::DeviceModel dev_;
    NoisySimulatorOptions options_;
    Rng rng_;
    std::unordered_map<std::uint64_t, Cached> cache_;
    std::uint64_t cacheHits_ = 0;
    std::uint64_t cacheMisses_ = 0;
};

/**
 * Verify that every measurement in @p qc is terminal and measured
 * classical bits are distinct; throws std::invalid_argument otherwise.
 */
void checkTerminalMeasurements(const circuit::QuantumCircuit &qc);

} // namespace sim
} // namespace jigsaw

#endif // JIGSAW_SIM_SIMULATORS_H
