/**
 * @file
 * Executor interface and the ideal / noisy backend implementations.
 *
 * An Executor plays the role of the NISQ machine in Figure 4 of the
 * paper: it takes a routed (physical) circuit and a trial count and
 * returns a histogram over the circuit's classical bits. JigSaw, EDM,
 * and MBM are all written against this interface, so a different
 * backend (e.g. a hardware client) can be swapped in.
 */
#ifndef JIGSAW_SIM_SIMULATORS_H
#define JIGSAW_SIM_SIMULATORS_H

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "circuit/circuit.h"
#include "common/alias.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/simd.h"
#include "device/device_model.h"
#include "sim/noise_model.h"

namespace jigsaw {
namespace sim {

namespace detail {
/** A cached shared-prefix evolution (defined in simulators.cpp). */
struct BatchState;
} // namespace detail

class StateVector; // sim/statevector.h

/**
 * One circuit-with-partial-measurements (CPM) inside a batch: measure
 * @p qubits (physical indices, in classical-bit order 0..k-1) of the
 * batch's shared base circuit for @p shots trials.
 *
 * A spec may carry a caller-owned RNG stream: when @p rng is set, the
 * executor samples this spec's shots from it instead of its internal
 * generator. Cross-program merged batches use this to give every
 * program its own seeded stream — the draws then match what the
 * program's private executor would have produced, whatever else is in
 * the batch. The caller must guarantee exclusive use of each stream
 * for the duration of the call. @p program tags the submitting
 * program (provenance for the cross-program BatchStats counters; -1 =
 * untagged).
 */
struct CpmSpec
{
    std::vector<int> qubits;
    std::uint64_t shots = 0;
    Rng *rng = nullptr;
    std::int64_t program = -1;
};

/**
 * Counters for the batched execution path: how many base evolutions
 * actually ran, how many were reused, and how many CPM marginals were
 * served off a shared final state instead of a per-CPM evolution.
 */
struct BatchStats
{
    std::uint64_t baseEvolutions = 0;  ///< Shared-prefix evolutions run.
    std::uint64_t baseStateHits = 0;   ///< Batches reusing a cached state.
    std::uint64_t marginalsServed = 0; ///< CPM PMFs taken from a state.
    /** @name Cross-program counters (merged-service batches).
     *  @{ */
    std::uint64_t crossProgramBatches = 0; ///< Batches spanning >1 program.
    std::uint64_t crossProgramMarginals = 0; ///< Specs in those batches.
    /** @} */

    /** Full evolutions avoided vs the per-CPM path. */
    std::uint64_t evolutionsSaved() const
    {
        return marginalsServed - std::min(marginalsServed, baseEvolutions);
    }
};

/**
 * Cache counters an executor exposes for observability: the PMF memo
 * (evolutions skipped because the exact output distribution was
 * already cached) and the skeleton split-prefix cache (evolutions of
 * a parametric circuit's non-diagonal prefix reused across re-bound
 * diagonal tails — the iterative-VQA fast path). Backends without
 * caches report zeros.
 */
struct ExecutorCounters
{
    std::uint64_t pmfHits = 0;
    std::uint64_t pmfMisses = 0;
    std::uint64_t prefixStateHits = 0;
    std::uint64_t prefixStateMisses = 0;
    /** @name SIMD kernel-backend dispatch totals.
     *
     * Snapshot of simd::dispatchCounters() backend totals at
     * counters() time. Unlike the cache counters above these are
     * PROCESS-WIDE, not per-executor (the dispatch counters live in
     * the kernel layer, below any executor): aggregators must take
     * deltas against an earlier snapshot, never sum them across
     * executors. Answers "did the wide kernels actually run?" — an
     * AVX-512 binary on a non-AVX-512 host, or a JIGSAW_NO_SIMD run,
     * shows zero avx512 calls.
     * @{ */
    std::uint64_t simdScalarCalls = 0;
    std::uint64_t simdAvx2Calls = 0;
    std::uint64_t simdAvx512Calls = 0;
    /** @} */
};

/** The process-wide SIMD dispatch totals every executor reports. */
inline void
fillSimdDispatch(ExecutorCounters &c)
{
    const simd::DispatchCounters d = simd::dispatchCounters();
    c.simdScalarCalls = d.backendTotal(simd::kBackendScalar);
    c.simdAvx2Calls = d.backendTotal(simd::kBackendAvx2);
    c.simdAvx512Calls = d.backendTotal(simd::kBackendAvx512);
}

/** Abstract quantum-program executor (the "NISQ machine"). */
class Executor
{
  public:
    virtual ~Executor() = default;

    /** Cache counter snapshot (zeros on cacheless backends). */
    virtual ExecutorCounters counters() const { return {}; }

    /**
     * Run @p physical_circuit for @p shots trials and return the
     * histogram of outcomes over its classical bits. All measurements
     * must be terminal (no gate may follow a measurement on the same
     * qubit).
     */
    virtual Histogram run(const circuit::QuantumCircuit &physical_circuit,
                          std::uint64_t shots) = 0;

    /**
     * run() sampling from a caller-owned stream instead of the
     * executor's internal generator: the building block of the merged
     * cross-program path, where the evolution caches are shared but
     * every program keeps its own deterministic draw stream. Only
     * meaningful when supportsExternalSampling(); the default throws.
     * The caller must hold @p rng exclusively for the call.
     */
    virtual Histogram run(const circuit::QuantumCircuit &physical_circuit,
                          std::uint64_t shots, Rng &rng);

    /**
     * Run one measurement-subset variant of @p base_circuit per spec
     * and return their histograms in spec order. All variants share
     * the unitary gates of @p base_circuit (its own measurements, if
     * any, are ignored — each spec defines its own), which is exactly
     * JigSaw's CPM structure, so simulator backends override this to
     * evolve the shared prefix once and read every marginal off the
     * single final state. Specs carrying an Rng sample from it (see
     * CpmSpec). This default runs each CPM individually.
     */
    virtual std::vector<Histogram>
    runBatch(const circuit::QuantumCircuit &base_circuit,
             const std::vector<CpmSpec> &specs);

    /**
     * Do the deterministic, shot-independent work of a future run()
     * of @p physical_circuit (evolution, noise derivations) without
     * consuming any randomness, so concurrent warm-up passes can
     * populate the caches before an ordered sampling pass. Default:
     * no-op (nothing to warm on a backend without caches).
     */
    virtual void prepare(const circuit::QuantumCircuit &physical_circuit);

    /** prepare() for every spec of a batch (see runBatch). */
    virtual void prepareBatch(const circuit::QuantumCircuit &base_circuit,
                              const std::vector<CpmSpec> &specs);

    /**
     * True when run(circuit, shots, rng) and per-spec CpmSpec::rng
     * sampling are implemented — a precondition of the cross-program
     * merged execution path.
     */
    virtual bool supportsExternalSampling() const { return false; }
};

/**
 * Noise-free executor; also exposes the exact output PMF, which the
 * metrics use as the golden reference distribution.
 *
 * Exact PMFs (and their alias samplers) are memoized per structural
 * circuit hash, so JigSaw's repeated runs of an identical circuit —
 * the global circuit resampled, or CPMs sharing a compilation — skip
 * state-vector evolution entirely and cost O(shots) draws.
 *
 * Thread-safety: run()/runBatch()/idealPmf() may be called from
 * concurrent sessions sharing one executor. The PMF/state caches are
 * mutex-guarded (evolutions happen outside the lock; a lost insert
 * race wastes one evolution but stays correct), counters are atomic,
 * and sampling serializes on the RNG mutex so the draw stream stays
 * well-defined. Deterministic per-program results on a shared
 * executor require per-program streams (the run(..., Rng&) overload /
 * CpmSpec::rng — what the merged service path does); sampling from
 * the internal generator instead interleaves its stream in completion
 * order. batchStats() is safe to read once concurrent runs have
 * completed.
 */
class IdealSimulator : public Executor
{
  public:
    /** @p seed drives the multinomial shot sampling only. */
    explicit IdealSimulator(std::uint64_t seed = 1);
    ~IdealSimulator() override;

    Histogram run(const circuit::QuantumCircuit &physical_circuit,
                  std::uint64_t shots) override;

    Histogram run(const circuit::QuantumCircuit &physical_circuit,
                  std::uint64_t shots, Rng &rng) override;

    /**
     * Batched CPM execution: evolve the shared gate prefix once (per
     * distinct prefix, cached across calls) and sample each spec from
     * its marginal over the single final state. PMFs land in the same
     * per-circuit cache run() uses, so mixing the two paths stays
     * coherent and deterministic.
     */
    std::vector<Histogram>
    runBatch(const circuit::QuantumCircuit &base_circuit,
             const std::vector<CpmSpec> &specs) override;

    void prepare(const circuit::QuantumCircuit &physical_circuit) override;

    void prepareBatch(const circuit::QuantumCircuit &base_circuit,
                      const std::vector<CpmSpec> &specs) override;

    bool supportsExternalSampling() const override { return true; }

    /** Exact output distribution over the circuit's classical bits. */
    Pmf idealPmf(const circuit::QuantumCircuit &physical_circuit);

    /**
     * Exact marginal PMFs of @p base_circuit over each subset of
     * physical qubits (classical-bit order), all served from one
     * evolution of the shared gate prefix.
     */
    std::vector<Pmf>
    marginalPmfs(const circuit::QuantumCircuit &base_circuit,
                 const std::vector<std::vector<int>> &subsets);

    /** Simulations skipped because the PMF was already cached. */
    std::uint64_t cacheHits() const { return cacheHits_.load(); }

    /** Simulations actually performed. */
    std::uint64_t cacheMisses() const { return cacheMisses_.load(); }

    /** Prefix evolutions reused across re-bound diagonal tails. */
    std::uint64_t skeletonCacheHits() const { return skeletonHits_.load(); }

    /** Prefix evolutions actually performed for parametric circuits. */
    std::uint64_t skeletonCacheMisses() const
    {
        return skeletonMisses_.load();
    }

    ExecutorCounters counters() const override
    {
        ExecutorCounters c{cacheHits_.load(), cacheMisses_.load(),
                           skeletonHits_.load(), skeletonMisses_.load()};
        fillSimdDispatch(c);
        return c;
    }

    /** Batched-execution counters (quiescent reads only). */
    const BatchStats &batchStats() const { return batchStats_; }

  private:
    struct Cached
    {
        Pmf pmf;
        AliasTable sampler;
    };

    const Cached &evolved(const circuit::QuantumCircuit &physical);
    const Cached &cpmEntry(const circuit::QuantumCircuit &base_circuit,
                           const std::vector<int> &qubits,
                           const detail::BatchState *&bs);
    Histogram sampleEntry(const Cached &entry, std::uint64_t shots,
                          Rng &rng);

    Rng rng_;
    std::mutex rngMutex_;   ///< Serializes draws from rng_.
    std::mutex cacheMutex_; ///< Guards cache_, stateCache_,
                            ///< splitCache_, batchStats_.
    std::unordered_map<std::uint64_t, Cached> cache_;
    std::unordered_map<std::uint64_t, std::unique_ptr<detail::BatchState>>
        stateCache_;
    /** Skeleton split-prefix states (see ExecutorCounters). */
    std::unordered_map<std::uint64_t, std::unique_ptr<StateVector>>
        splitCache_;
    std::atomic<std::uint64_t> cacheHits_{0};
    std::atomic<std::uint64_t> cacheMisses_{0};
    std::atomic<std::uint64_t> skeletonHits_{0};
    std::atomic<std::uint64_t> skeletonMisses_{0};
    BatchStats batchStats_;
};

/** Tuning knobs for NoisySimulator. */
struct NoisySimulatorOptions
{
    std::uint64_t seed = 1234;
    /**
     * 0 = fast channel mode: gate noise becomes a depolarizing
     * channel of strength 1 - gateSuccessProbability and readout
     * noise is applied per sampled outcome.
     * >0 = trajectory mode: this many stochastic-Pauli trajectories
     * are simulated and shots are split across them (slow; used to
     * validate the fast mode on small circuits).
     */
    int trajectories = 0;
    bool gateNoise = true;
    bool measurementNoise = true;
    /**
     * Channel-mode gate-failure corruption: each output bit of the
     * sampled ideal outcome flips with this probability when the
     * trial suffers a gate error. 0.5 reproduces the textbook
     * uniform-outcome depolarizing channel; the default 0.15 models
     * the localized corruption real hardware shows, which keeps the
     * observed global-PMF support small (paper Table 6: ~7% of the
     * possible outcomes at 512K trials).
     */
    double gateNoiseBitFlip = 0.15;
};

/**
 * Noisy executor driven by a DeviceModel calibration.
 *
 * Fast mode (default) samples each trial from the exact state-vector
 * distribution, replaces it with a uniform random outcome with
 * probability 1 - gateSuccessProbability (global depolarizing
 * approximation of accumulated gate error), and then pushes it through
 * the MeasurementChannel.
 */
class NoisySimulator : public Executor
{
  public:
    /** The device model is copied so the executor owns its lifetime. */
    NoisySimulator(device::DeviceModel dev, NoisySimulatorOptions options = {});
    ~NoisySimulator() override;

    Histogram run(const circuit::QuantumCircuit &physical_circuit,
                  std::uint64_t shots) override;

    Histogram run(const circuit::QuantumCircuit &physical_circuit,
                  std::uint64_t shots, Rng &rng) override;

    /**
     * Batched CPM execution (channel mode): one shared-prefix
     * evolution serves every spec's ideal marginal; the gate-noise
     * corruption and the per-subset readout channel are then applied
     * per sampled trial exactly as in run(). Trajectory mode falls
     * back to the per-CPM default.
     */
    std::vector<Histogram>
    runBatch(const circuit::QuantumCircuit &base_circuit,
             const std::vector<CpmSpec> &specs) override;

    void prepare(const circuit::QuantumCircuit &physical_circuit) override;

    void prepareBatch(const circuit::QuantumCircuit &base_circuit,
                      const std::vector<CpmSpec> &specs) override;

    bool supportsExternalSampling() const override { return true; }

    /** The device this executor models. */
    const device::DeviceModel &device() const { return dev_; }

    /** Options in effect. */
    const NoisySimulatorOptions &options() const { return options_; }

    /** Channel-mode evolutions skipped via the PMF cache. */
    std::uint64_t cacheHits() const { return cacheHits_.load(); }

    /** Channel-mode evolutions actually performed. */
    std::uint64_t cacheMisses() const { return cacheMisses_.load(); }

    /** Prefix evolutions reused across re-bound diagonal tails. */
    std::uint64_t skeletonCacheHits() const { return skeletonHits_.load(); }

    /** Prefix evolutions actually performed for parametric circuits. */
    std::uint64_t skeletonCacheMisses() const
    {
        return skeletonMisses_.load();
    }

    ExecutorCounters counters() const override
    {
        ExecutorCounters c{cacheHits_.load(), cacheMisses_.load(),
                           skeletonHits_.load(), skeletonMisses_.load()};
        fillSimdDispatch(c);
        return c;
    }

    /** Batched-execution counters (quiescent reads only). */
    const BatchStats &batchStats() const { return batchStats_; }

  private:
    /**
     * Everything channel mode derives from the circuit alone: the
     * exact PMF, its alias sampler, the gate-success probability, and
     * the readout channel. Cached per structural hash.
     */
    struct Cached
    {
        Pmf pmf;
        AliasTable sampler;
        double gateOk = 1.0;
        std::unique_ptr<MeasurementChannel> channel;
    };

    const Cached &evolved(const circuit::QuantumCircuit &physical);
    const Cached &cpmEntry(const circuit::QuantumCircuit &base_circuit,
                           const std::vector<int> &qubits,
                           const detail::BatchState *&bs);

    Histogram runTrajectoryMode(const circuit::QuantumCircuit &physical,
                                std::uint64_t shots, Rng &rng);
    Histogram sampleChannel(const Cached &entry, int n_clbits,
                            std::uint64_t shots, Rng &rng);

    device::DeviceModel dev_;
    NoisySimulatorOptions options_;
    Rng rng_;
    std::mutex rngMutex_;   ///< Serializes draws from rng_.
    std::mutex cacheMutex_; ///< Guards cache_, stateCache_,
                            ///< splitCache_, batchStats_.
    std::unordered_map<std::uint64_t, Cached> cache_;
    std::unordered_map<std::uint64_t, std::unique_ptr<detail::BatchState>>
        stateCache_;
    /** Skeleton split-prefix states (see ExecutorCounters). */
    std::unordered_map<std::uint64_t, std::unique_ptr<StateVector>>
        splitCache_;
    std::atomic<std::uint64_t> cacheHits_{0};
    std::atomic<std::uint64_t> cacheMisses_{0};
    std::atomic<std::uint64_t> skeletonHits_{0};
    std::atomic<std::uint64_t> skeletonMisses_{0};
    BatchStats batchStats_;
};

/**
 * Verify that every measurement in @p qc is terminal and measured
 * classical bits are distinct; throws std::invalid_argument otherwise.
 */
void checkTerminalMeasurements(const circuit::QuantumCircuit &qc);

} // namespace sim
} // namespace jigsaw

#endif // JIGSAW_SIM_SIMULATORS_H
