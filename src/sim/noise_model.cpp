#include "sim/noise_model.h"

#include "common/error.h"

namespace jigsaw {
namespace sim {

MeasurementChannel::MeasurementChannel(
    const circuit::QuantumCircuit &physical_circuit,
    const device::DeviceModel &dev)
{
    const device::Calibration &cal = dev.calibration();
    const std::vector<int> measured = physical_circuit.measuredQubits();
    const int simultaneous = physical_circuit.countMeasurements();

    flip0_.resize(measured.size(), 0.0);
    flip1_.resize(measured.size(), 0.0);
    for (std::size_t c = 0; c < measured.size(); ++c) {
        const int q = measured[c];
        fatalIf(q < 0, "MeasurementChannel: unused classical bit in "
                       "measured circuit");
        flip0_[c] = cal.effectiveReadoutError(q, simultaneous, 0);
        flip1_[c] = cal.effectiveReadoutError(q, simultaneous, 1);
    }

    // Correlated flips act on clbit pairs whose physical qubits are
    // coupled and measured together.
    for (std::size_t a = 0; a < measured.size(); ++a) {
        for (std::size_t b = a + 1; b < measured.size(); ++b) {
            if (dev.topology().areCoupled(measured[a], measured[b])) {
                correlatedPairs_.emplace_back(static_cast<int>(a),
                                              static_cast<int>(b));
            }
        }
    }
    correlatedError_ = cal.correlatedPairError();
}

BasisState
MeasurementChannel::apply(BasisState ideal, Rng &rng) const
{
    BasisState out = ideal;
    for (std::size_t c = 0; c < flip0_.size(); ++c) {
        const int bit = getBit(ideal, static_cast<int>(c));
        const double p = bit ? flip1_[c] : flip0_[c];
        if (rng.bernoulli(p))
            out = flipBit(out, static_cast<int>(c));
    }
    for (const auto &[a, b] : correlatedPairs_) {
        if (rng.bernoulli(correlatedError_)) {
            out = flipBit(out, a);
            out = flipBit(out, b);
        }
    }
    return out;
}

double
MeasurementChannel::flipProbability(int c, int bit) const
{
    fatalIf(c < 0 || c >= nClbits(),
            "MeasurementChannel: clbit out of range");
    return bit ? flip1_[static_cast<std::size_t>(c)]
               : flip0_[static_cast<std::size_t>(c)];
}

} // namespace sim
} // namespace jigsaw
