#include "sim/simulators.h"

#include <algorithm>
#include <mutex>
#include <vector>

#include "common/error.h"
#include "common/fault.h"
#include "sim/compact.h"
#include "sim/eps.h"
#include "sim/noise_model.h"
#include "sim/statevector.h"

namespace jigsaw {
namespace sim {

using circuit::Gate;
using circuit::QuantumCircuit;

void
checkTerminalMeasurements(const QuantumCircuit &qc)
{
    std::vector<bool> measured(static_cast<std::size_t>(qc.nQubits()),
                               false);
    std::vector<bool> clbit_used(static_cast<std::size_t>(qc.nClbits()),
                                 false);
    bool any = false;
    for (const Gate &g : qc.gates()) {
        if (g.isMeasure()) {
            any = true;
            fatalIf(clbit_used[static_cast<std::size_t>(g.clbit)],
                    "duplicate measurement into one classical bit");
            clbit_used[static_cast<std::size_t>(g.clbit)] = true;
            measured[static_cast<std::size_t>(g.qubits[0])] = true;
            continue;
        }
        for (int q : g.qubits) {
            fatalIf(measured[static_cast<std::size_t>(q)],
                    "gate after measurement: measurements must be terminal");
        }
    }
    fatalIf(!any, "circuit has no measurements");
}

namespace detail {

/**
 * A shared-prefix evolution: the final state of a batch base circuit's
 * unitary gates, compacted onto the qubits they touch. Every CPM
 * marginal of that base is a measurementPmf over a subset of this one
 * state.
 */
struct BatchState
{
    BatchState(StateVector s, std::vector<int> dense)
        : state(std::move(s)), denseOf(std::move(dense))
    {
    }

    StateVector state;
    /** denseOf[physical] = compact index, or -1 when gate-untouched. */
    std::vector<int> denseOf;
};

} // namespace detail

namespace {

using detail::BatchState;
using BatchStateCache =
    std::unordered_map<std::uint64_t, std::unique_ptr<BatchState>>;
using SplitStateCache =
    std::unordered_map<std::uint64_t, std::unique_ptr<StateVector>>;

/**
 * The skeleton split-prefix cache of one executor: the map, the mutex
 * guarding it (the executor's cacheMutex_), and the hit/miss
 * counters. Passed by pointer bundle because the owning members are
 * private to each simulator class.
 */
struct SplitContext
{
    SplitStateCache *cache = nullptr;
    std::mutex *mutex = nullptr;
    std::atomic<std::uint64_t> *hits = nullptr;
    std::atomic<std::uint64_t> *misses = nullptr;
};

/**
 * Where @p qc's evolution splits: the diagonal suffix boundary,
 * clamped to the maximal angle-free prefix. The clamp matters under
 * routing — SABRE interleaves SWAPs with a parametric tail, pushing
 * diagonalSuffixStart past rotation gates; a prefix carrying angles
 * would key a fresh cache entry per binding and never hit across
 * iterations. Clamping keeps the cached prefix state invariant under
 * re-binding. The split point is structural (parameter values never
 * move it), so every binding of one skeleton splits identically.
 */
std::size_t
splitPoint(const QuantumCircuit &qc)
{
    std::size_t s = qc.diagonalSuffixStart();
    const std::vector<Gate> &gs = qc.gates();
    for (std::size_t i = 0; i < s; ++i) {
        if (!gs[i].params.empty()) {
            s = i;
            break;
        }
    }
    return s;
}

/**
 * True when @p qc's evolution should split at @p s (its splitPoint):
 * a non-empty angle-free prefix followed by a tail carrying at least
 * one parametric diagonal gate — the iterative-VQA shape, where the
 * tail's angles are re-bound per iteration while the prefix state
 * never changes. The predicate is circuit-intrinsic, so cold and warm
 * evolutions of one circuit take the identical path and stay
 * bitwise-equal whatever the cache state.
 */
bool
splitQualifies(const QuantumCircuit &qc, std::size_t s)
{
    if (s == 0)
        return false;
    const std::vector<Gate> &gs = qc.gates();
    for (std::size_t i = s; i < gs.size(); ++i) {
        const Gate &g = gs[i];
        if (g.isDiagonal() && !g.params.empty())
            return true;
    }
    return false;
}

/** @p qc's gates in [@p from, @p to) as a circuit (registers kept). */
QuantumCircuit
gateRange(const QuantumCircuit &qc, std::size_t from, std::size_t to)
{
    QuantumCircuit out(qc.nQubits(), qc.nClbits());
    const std::vector<Gate> &gs = qc.gates();
    for (std::size_t i = from; i < to; ++i)
        out.append(gs[i]);
    return out;
}

/**
 * Evolve @p compact from |0...0>. For a qualifying parametric shape
 * (splitQualifies) the evolution is split at splitPoint: the
 * angle-free prefix state is cached in @p split keyed on the compact
 * prefix content, and each call copies it and re-applies the
 * parametric tail. The split is canonical: qualifying circuits always
 * evolve this way, hit or miss, so the result is bitwise-identical to
 * any other in-process evolution of the same bound circuit.
 * Non-qualifying circuits evolve in one fused pass exactly as before.
 */
StateVector
evolveCompact(const QuantumCircuit &compact, const SplitContext &split)
{
    const std::size_t s = splitPoint(compact);
    if (split.cache == nullptr || !splitQualifies(compact, s)) {
        StateVector state(compact.nQubits());
        state.applyCircuit(compact);
        return state;
    }
    const std::uint64_t key = compact.prefixHash(s);
    const StateVector *prefix = nullptr;
    {
        std::lock_guard<std::mutex> lock(*split.mutex);
        const auto it = split.cache->find(key);
        if (it != split.cache->end()) {
            ++*split.hits;
            prefix = it->second.get();
        }
    }
    if (prefix == nullptr) {
        // Evolve outside the lock (deterministic; first insert wins
        // and stays pointer-stable — entries never mutate).
        ++*split.misses;
        auto state = std::make_unique<StateVector>(compact.nQubits());
        state->applyCircuit(gateRange(compact, 0, s));
        std::lock_guard<std::mutex> lock(*split.mutex);
        prefix = split.cache->emplace(key, std::move(state))
                     .first->second.get();
    }
    StateVector out = *prefix;
    out.applyCircuit(gateRange(compact, s, compact.gates().size()));
    return out;
}

/**
 * Exact output PMF of a (physical) circuit over its classical bits,
 * computed by compacting onto active qubits and simulating.
 */
Pmf
exactOutputPmf(const QuantumCircuit &physical, const SplitContext &split)
{
    checkTerminalMeasurements(physical);
    const CompactCircuit compact = compactCircuit(physical);

    const StateVector state = evolveCompact(compact.circuit, split);

    // Dense qubit index for each classical bit, in clbit order.
    const std::vector<int> measured = compact.circuit.measuredQubits();
    std::vector<int> dense_qubits;
    dense_qubits.reserve(measured.size());
    for (int q : measured) {
        fatalIf(q < 0, "exactOutputPmf: unused classical bit");
        dense_qubits.push_back(q);
    }
    return state.measurementPmf(dense_qubits);
}

/**
 * The evolved shared-prefix state for @p base (measurements ignored),
 * from @p cache when present. @p stats tracks evolutions vs reuses.
 * @p mutex guards both the cache and the stats; the evolution itself
 * runs unlocked (a lost insert race wastes one evolution, the first
 * inserted entry wins and stays pointer-stable). @p split carries the
 * executor's skeleton split-prefix cache, so a re-bound diagonal tail
 * pays only its own application on top of the cached prefix state.
 */
const BatchState &
evolvedBase(BatchStateCache &cache, std::mutex &mutex,
            const QuantumCircuit &base, BatchStats &stats,
            const SplitContext &split)
{
    const QuantumCircuit prefix = base.withoutMeasurements();
    const std::uint64_t key = prefix.structuralHash();
    {
        std::lock_guard<std::mutex> lock(mutex);
        const auto it = cache.find(key);
        if (it != cache.end()) {
            ++stats.baseStateHits;
            return *it->second;
        }
    }
    CompactCircuit compact = compactCircuit(prefix);
    StateVector state = evolveCompact(compact.circuit, split);
    auto entry = std::make_unique<BatchState>(std::move(state),
                                              std::move(compact.denseOf));
    std::lock_guard<std::mutex> lock(mutex);
    const auto [it, inserted] = cache.emplace(key, std::move(entry));
    if (inserted)
        ++stats.baseEvolutions;
    else
        ++stats.baseStateHits;
    return *it->second;
}

/**
 * Marginal PMF of @p bs over @p qubits (physical indices, clbit
 * order). Qubits outside the compacted register were never touched by
 * a gate, so their bits are deterministically 0 and are re-inserted
 * after the dense-space marginalization.
 */
Pmf
marginalFromState(const BatchState &bs, const std::vector<int> &qubits)
{
    fatalIf(qubits.empty(), "runBatch: empty measurement subset");
    std::vector<int> dense;
    std::vector<int> present; // spec positions with a dense index
    dense.reserve(qubits.size());
    present.reserve(qubits.size());
    for (std::size_t j = 0; j < qubits.size(); ++j) {
        const int q = qubits[j];
        fatalIf(q < 0, "runBatch: negative qubit index");
        const int d = q < static_cast<int>(bs.denseOf.size())
                          ? bs.denseOf[static_cast<std::size_t>(q)]
                          : -1;
        if (d >= 0) {
            dense.push_back(d);
            present.push_back(static_cast<int>(j));
        }
    }
    if (present.empty()) {
        // No measured qubit is ever touched: the outcome is all-zero.
        Pmf pmf(static_cast<int>(qubits.size()));
        pmf.set(0, 1.0);
        return pmf;
    }
    const Pmf sub = bs.state.measurementPmf(dense);
    if (present.size() == qubits.size())
        return sub;
    Pmf pmf(static_cast<int>(qubits.size()));
    pmf.reserve(sub.support());
    for (const auto &[key, p] : sub.probabilities())
        pmf.set(depositBits(key, present), p);
    return pmf;
}

/**
 * True when @p specs carry two or more distinct non-negative program
 * tags — a merged cross-program batch.
 */
bool
spansPrograms(const std::vector<CpmSpec> &specs)
{
    std::int64_t first = -1;
    for (const CpmSpec &spec : specs) {
        if (spec.program < 0)
            continue;
        if (first < 0)
            first = spec.program;
        else if (spec.program != first)
            return true;
    }
    return false;
}

} // namespace

Histogram
Executor::run(const QuantumCircuit &, std::uint64_t, Rng &)
{
    fatalIf(true, "Executor: this backend does not support external "
                  "sampling streams");
    return Histogram(1); // unreachable
}

void
Executor::prepare(const QuantumCircuit &)
{
}

void
Executor::prepareBatch(const QuantumCircuit &, const std::vector<CpmSpec> &)
{
}

std::vector<Histogram>
Executor::runBatch(const QuantumCircuit &base_circuit,
                   const std::vector<CpmSpec> &specs)
{
    std::vector<Histogram> out;
    out.reserve(specs.size());
    for (const CpmSpec &spec : specs) {
        const QuantumCircuit cpm =
            base_circuit.withMeasurementSubset(spec.qubits);
        out.push_back(spec.rng != nullptr
                          ? run(cpm, spec.shots, *spec.rng)
                          : run(cpm, spec.shots));
    }
    return out;
}

IdealSimulator::IdealSimulator(std::uint64_t seed) : rng_(seed) {}

IdealSimulator::~IdealSimulator() = default;

const IdealSimulator::Cached &
IdealSimulator::evolved(const QuantumCircuit &physical)
{
    const std::uint64_t key = physical.structuralHash();
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        const auto it = cache_.find(key);
        if (it != cache_.end()) {
            ++cacheHits_;
            return it->second;
        }
    }
    // Evolve outside the lock: deterministic, so racing threads build
    // identical entries and the first emplace wins.
    ++cacheMisses_;
    Pmf pmf = exactOutputPmf(
        physical,
        {&splitCache_, &cacheMutex_, &skeletonHits_, &skeletonMisses_});
    AliasTable sampler(pmf);
    std::lock_guard<std::mutex> lock(cacheMutex_);
    return cache_
        .emplace(key, Cached{std::move(pmf), std::move(sampler)})
        .first->second;
}

Histogram
IdealSimulator::sampleEntry(const Cached &entry, std::uint64_t shots,
                            Rng &rng)
{
    Histogram hist(entry.pmf.nQubits());
    for (std::uint64_t t = 0; t < shots; ++t)
        hist.add(entry.sampler.sample(rng));
    return hist;
}

Histogram
IdealSimulator::run(const QuantumCircuit &physical_circuit,
                    std::uint64_t shots)
{
    // Fault points sit at entry, before any cache or RNG state moves,
    // so a retried call replays the identical draw sequence.
    injectFaultPoint("executor.run");
    const Cached &entry = evolved(physical_circuit);
    std::lock_guard<std::mutex> lock(rngMutex_);
    return sampleEntry(entry, shots, rng_);
}

Histogram
IdealSimulator::run(const QuantumCircuit &physical_circuit,
                    std::uint64_t shots, Rng &rng)
{
    injectFaultPoint("executor.run");
    return sampleEntry(evolved(physical_circuit), shots, rng);
}

void
IdealSimulator::prepare(const QuantumCircuit &physical_circuit)
{
    evolved(physical_circuit);
}

void
IdealSimulator::prepareBatch(const QuantumCircuit &base_circuit,
                             const std::vector<CpmSpec> &specs)
{
    const BatchState *bs = nullptr;
    for (const CpmSpec &spec : specs)
        cpmEntry(base_circuit, spec.qubits, bs);
}

Pmf
IdealSimulator::idealPmf(const QuantumCircuit &physical_circuit)
{
    return evolved(physical_circuit).pmf;
}

/**
 * The cached entry for one CPM of @p base_circuit, computing its
 * marginal off the shared-prefix state on a miss. @p bs carries the
 * lazily resolved state across the specs of one batch (left null
 * until a miss actually needs an evolution).
 */
const IdealSimulator::Cached &
IdealSimulator::cpmEntry(const QuantumCircuit &base_circuit,
                         const std::vector<int> &qubits,
                         const BatchState *&bs)
{
    const std::uint64_t key = base_circuit.measurementSubsetHash(qubits);
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        const auto it = cache_.find(key);
        if (it != cache_.end()) {
            ++cacheHits_;
            return it->second;
        }
    }
    if (bs == nullptr)
        bs = &evolvedBase(
            stateCache_, cacheMutex_, base_circuit, batchStats_,
            {&splitCache_, &cacheMutex_, &skeletonHits_, &skeletonMisses_});
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        ++batchStats_.marginalsServed;
    }
    Pmf pmf = marginalFromState(*bs, qubits);
    AliasTable sampler(pmf);
    std::lock_guard<std::mutex> lock(cacheMutex_);
    return cache_
        .emplace(key, Cached{std::move(pmf), std::move(sampler)})
        .first->second;
}

std::vector<Pmf>
IdealSimulator::marginalPmfs(const QuantumCircuit &base_circuit,
                             const std::vector<std::vector<int>> &subsets)
{
    std::vector<Pmf> out;
    out.reserve(subsets.size());
    const BatchState *bs = nullptr;
    for (const std::vector<int> &qubits : subsets)
        out.push_back(cpmEntry(base_circuit, qubits, bs).pmf);
    return out;
}

std::vector<Histogram>
IdealSimulator::runBatch(const QuantumCircuit &base_circuit,
                         const std::vector<CpmSpec> &specs)
{
    injectFaultPoint("executor.runBatch");
    if (spansPrograms(specs)) {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        ++batchStats_.crossProgramBatches;
        batchStats_.crossProgramMarginals += specs.size();
    }
    std::vector<Histogram> out;
    out.reserve(specs.size());
    const BatchState *bs = nullptr;
    for (const CpmSpec &spec : specs) {
        const Cached &entry = cpmEntry(base_circuit, spec.qubits, bs);
        if (spec.rng != nullptr) {
            out.push_back(sampleEntry(entry, spec.shots, *spec.rng));
            continue;
        }
        std::lock_guard<std::mutex> lock(rngMutex_);
        out.push_back(sampleEntry(entry, spec.shots, rng_));
    }
    return out;
}

NoisySimulator::NoisySimulator(device::DeviceModel dev,
                               NoisySimulatorOptions options)
    : dev_(std::move(dev)), options_(options), rng_(options.seed)
{
}

NoisySimulator::~NoisySimulator() = default;

Histogram
NoisySimulator::run(const QuantumCircuit &physical_circuit,
                    std::uint64_t shots)
{
    injectFaultPoint("executor.run");
    fatalIf(physical_circuit.nQubits() != dev_.nQubits(),
            "NoisySimulator: circuit is not in this device's physical "
            "qubit space");
    if (options_.trajectories > 0) {
        std::lock_guard<std::mutex> lock(rngMutex_);
        return runTrajectoryMode(physical_circuit, shots, rng_);
    }
    const Cached &entry = evolved(physical_circuit);
    std::lock_guard<std::mutex> lock(rngMutex_);
    return sampleChannel(entry, physical_circuit.nClbits(), shots, rng_);
}

Histogram
NoisySimulator::run(const QuantumCircuit &physical_circuit,
                    std::uint64_t shots, Rng &rng)
{
    injectFaultPoint("executor.run");
    fatalIf(physical_circuit.nQubits() != dev_.nQubits(),
            "NoisySimulator: circuit is not in this device's physical "
            "qubit space");
    if (options_.trajectories > 0)
        return runTrajectoryMode(physical_circuit, shots, rng);
    return sampleChannel(evolved(physical_circuit),
                         physical_circuit.nClbits(), shots, rng);
}

void
NoisySimulator::prepare(const QuantumCircuit &physical_circuit)
{
    fatalIf(physical_circuit.nQubits() != dev_.nQubits(),
            "NoisySimulator: circuit is not in this device's physical "
            "qubit space");
    if (options_.trajectories > 0)
        return; // trajectory mode re-simulates per trial: nothing to warm
    evolved(physical_circuit);
}

void
NoisySimulator::prepareBatch(const QuantumCircuit &base_circuit,
                             const std::vector<CpmSpec> &specs)
{
    fatalIf(base_circuit.nQubits() != dev_.nQubits(),
            "NoisySimulator: batch base circuit is not in this device's "
            "physical qubit space");
    if (options_.trajectories > 0)
        return;
    const BatchState *bs = nullptr;
    for (const CpmSpec &spec : specs)
        cpmEntry(base_circuit, spec.qubits, bs);
}

const NoisySimulator::Cached &
NoisySimulator::evolved(const QuantumCircuit &physical)
{
    const std::uint64_t key = physical.structuralHash();
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        const auto it = cache_.find(key);
        if (it != cache_.end()) {
            ++cacheHits_;
            return it->second;
        }
    }
    ++cacheMisses_;
    Pmf pmf = exactOutputPmf(
        physical,
        {&splitCache_, &cacheMutex_, &skeletonHits_, &skeletonMisses_});
    AliasTable sampler(pmf);
    const double gate_ok =
        options_.gateNoise ? gateSuccessProbability(physical, dev_) : 1.0;
    auto channel = std::make_unique<MeasurementChannel>(physical, dev_);
    std::lock_guard<std::mutex> lock(cacheMutex_);
    return cache_
        .emplace(key, Cached{std::move(pmf), std::move(sampler), gate_ok,
                             std::move(channel)})
        .first->second;
}

Histogram
NoisySimulator::sampleChannel(const Cached &entry, int n_clbits,
                              std::uint64_t shots, Rng &rng)
{
    const AliasTable &sampler = entry.sampler;
    const MeasurementChannel &channel = *entry.channel;
    const double gate_ok = entry.gateOk;

    Histogram hist(n_clbits);
    for (std::uint64_t t = 0; t < shots; ++t) {
        BasisState outcome = sampler.sample(rng);
        if (!rng.bernoulli(gate_ok)) {
            // Gate failure: corrupt the sampled outcome with
            // independent bit flips (localized depolarizing).
            for (int c = 0; c < n_clbits; ++c) {
                if (rng.bernoulli(options_.gateNoiseBitFlip))
                    outcome = flipBit(outcome, c);
            }
        }
        if (options_.measurementNoise)
            outcome = channel.apply(outcome, rng);
        hist.add(outcome);
    }
    return hist;
}

std::vector<Histogram>
NoisySimulator::runBatch(const QuantumCircuit &base_circuit,
                         const std::vector<CpmSpec> &specs)
{
    injectFaultPoint("executor.runBatch");
    fatalIf(base_circuit.nQubits() != dev_.nQubits(),
            "NoisySimulator: batch base circuit is not in this device's "
            "physical qubit space");
    if (options_.trajectories > 0)
        return Executor::runBatch(base_circuit, specs);

    if (spansPrograms(specs)) {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        ++batchStats_.crossProgramBatches;
        batchStats_.crossProgramMarginals += specs.size();
    }
    std::vector<Histogram> out;
    out.reserve(specs.size());
    const BatchState *bs = nullptr;
    for (const CpmSpec &spec : specs) {
        const Cached &entry = cpmEntry(base_circuit, spec.qubits, bs);
        const int n_clbits = static_cast<int>(spec.qubits.size());
        if (spec.rng != nullptr) {
            out.push_back(sampleChannel(entry, n_clbits, spec.shots,
                                        *spec.rng));
            continue;
        }
        std::lock_guard<std::mutex> lock(rngMutex_);
        out.push_back(sampleChannel(entry, n_clbits, spec.shots, rng_));
    }
    return out;
}

/** NoisySimulator flavor of IdealSimulator::cpmEntry (see there). */
const NoisySimulator::Cached &
NoisySimulator::cpmEntry(const QuantumCircuit &base_circuit,
                         const std::vector<int> &qubits,
                         const BatchState *&bs)
{
    const std::uint64_t key = base_circuit.measurementSubsetHash(qubits);
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        const auto it = cache_.find(key);
        if (it != cache_.end()) {
            ++cacheHits_;
            return it->second;
        }
    }
    if (bs == nullptr)
        bs = &evolvedBase(
            stateCache_, cacheMutex_, base_circuit, batchStats_,
            {&splitCache_, &cacheMutex_, &skeletonHits_, &skeletonMisses_});
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        ++batchStats_.marginalsServed;
    }
    Pmf pmf = marginalFromState(*bs, qubits);
    AliasTable sampler(pmf);
    // The CPM circuit is only materialized on a miss, for the noise
    // derivations. The gate-only success probability ignores
    // measurements, so the CPM inherits the base circuit's value
    // exactly; the readout channel is genuinely per-subset.
    const QuantumCircuit cpm = base_circuit.withMeasurementSubset(qubits);
    const double gate_ok =
        options_.gateNoise ? gateSuccessProbability(cpm, dev_) : 1.0;
    auto channel = std::make_unique<MeasurementChannel>(cpm, dev_);
    std::lock_guard<std::mutex> lock(cacheMutex_);
    return cache_
        .emplace(key, Cached{std::move(pmf), std::move(sampler), gate_ok,
                             std::move(channel)})
        .first->second;
}

Histogram
NoisySimulator::runTrajectoryMode(const QuantumCircuit &physical,
                                  std::uint64_t shots, Rng &rng)
{
    // Trajectory mode draws from the caller's stream throughout; the
    // internal-RNG caller holds the RNG lock for the whole simulation
    // (it is the slow validation path).
    checkTerminalMeasurements(physical);
    const CompactCircuit compact = compactCircuit(physical);
    const device::Calibration &cal = dev_.calibration();
    const device::Topology &topo = dev_.topology();
    const MeasurementChannel channel(physical, dev_);

    const std::vector<int> measured = compact.circuit.measuredQubits();
    std::vector<int> dense_qubits;
    for (int q : measured) {
        fatalIf(q < 0, "trajectory mode: unused classical bit");
        dense_qubits.push_back(q);
    }

    const int n_traj = options_.trajectories;
    const std::uint64_t base_shots = shots / static_cast<std::uint64_t>(
                                                 n_traj);
    Histogram hist(physical.nClbits());

    for (int traj = 0; traj < n_traj; ++traj) {
        StateVector state(compact.circuit.nQubits());
        for (const Gate &g : compact.circuit.gates()) {
            if (g.isMeasure())
                continue;
            state.applyGate(g);
            if (!options_.gateNoise ||
                g.type == circuit::GateType::BARRIER) {
                continue;
            }
            // Stochastic Pauli unravelling of a depolarizing channel
            // with the calibrated per-gate strength.
            double err;
            if (g.isSingleQubit()) {
                err = cal.qubit(compact.activeQubits[static_cast<
                    std::size_t>(g.qubits[0])]).error1q;
            } else {
                const int pa = compact.activeQubits[static_cast<
                    std::size_t>(g.qubits[0])];
                const int pb = compact.activeQubits[static_cast<
                    std::size_t>(g.qubits[1])];
                const int e = topo.edgeIndex(pa, pb);
                fatalIf(e < 0, "trajectory mode: unrouted two-qubit gate");
                err = cal.edgeError(e);
                if (g.type == circuit::GateType::SWAP) {
                    err = 1.0 - (1.0 - err) * (1.0 - err) * (1.0 - err);
                } else if (g.type == circuit::GateType::RZZ ||
                           g.type == circuit::GateType::CP) {
                    err = 1.0 - (1.0 - err) * (1.0 - err);
                }
            }
            if (rng.bernoulli(err)) {
                for (int q : g.qubits) {
                    const int pauli =
                        static_cast<int>(rng.uniformInt(0, 3));
                    if (pauli > 0)
                        state.applyPauli(pauli, q);
                }
            }
        }

        const Pmf traj_pmf = state.measurementPmf(dense_qubits);
        const AliasTable sampler(traj_pmf);
        std::uint64_t traj_shots = base_shots;
        if (traj == n_traj - 1)
            traj_shots = shots - base_shots * static_cast<std::uint64_t>(
                                                  n_traj - 1);
        for (std::uint64_t t = 0; t < traj_shots; ++t) {
            BasisState outcome = sampler.sample(rng);
            if (options_.measurementNoise)
                outcome = channel.apply(outcome, rng);
            hist.add(outcome);
        }
    }
    return hist;
}

} // namespace sim
} // namespace jigsaw
