#include "sim/eps.h"

#include "common/error.h"

namespace jigsaw {
namespace sim {

using circuit::Gate;
using circuit::GateType;

double
gateSuccessProbability(const circuit::QuantumCircuit &qc,
                       const device::DeviceModel &dev)
{
    const device::Topology &topo = dev.topology();
    const device::Calibration &cal = dev.calibration();
    double success = 1.0;
    for (const Gate &g : qc.gates()) {
        if (g.isMeasure() || g.type == GateType::BARRIER)
            continue;
        if (g.isSingleQubit()) {
            success *= 1.0 - cal.qubit(g.qubits[0]).error1q;
            continue;
        }
        const int e = topo.edgeIndex(g.qubits[0], g.qubits[1]);
        fatalIf(e < 0,
                "gateSuccessProbability: two-qubit gate not on a coupling "
                "edge; route the circuit first");
        const double e2 = cal.edgeError(e);
        switch (g.type) {
          case GateType::SWAP:
            // A SWAP lowers to three CX on hardware.
            success *= (1.0 - e2) * (1.0 - e2) * (1.0 - e2);
            break;
          case GateType::RZZ:
          case GateType::CP: {
            // RZZ and CP both lower to CX - RZ - CX.
            const double e1 = cal.qubit(g.qubits[1]).error1q;
            success *= (1.0 - e2) * (1.0 - e2) * (1.0 - e1);
            break;
          }
          default:
            success *= 1.0 - e2;
            break;
        }
    }
    return success;
}

double
measurementSuccessProbability(const circuit::QuantumCircuit &qc,
                              const device::DeviceModel &dev)
{
    const device::Calibration &cal = dev.calibration();
    const int simultaneous = qc.countMeasurements();
    double success = 1.0;
    for (const Gate &g : qc.gates()) {
        if (!g.isMeasure())
            continue;
        const double e0 = cal.effectiveReadoutError(g.qubits[0],
                                                    simultaneous, 0);
        const double e1 = cal.effectiveReadoutError(g.qubits[0],
                                                    simultaneous, 1);
        success *= 1.0 - 0.5 * (e0 + e1);
    }
    return success;
}

double
expectedProbabilityOfSuccess(const circuit::QuantumCircuit &qc,
                             const device::DeviceModel &dev)
{
    return gateSuccessProbability(qc, dev) *
           measurementSuccessProbability(qc, dev);
}

} // namespace sim
} // namespace jigsaw
