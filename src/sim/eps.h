/**
 * @file
 * Expected Probability of Success (EPS) of a scheduled circuit.
 *
 * EPS is the product of per-operation success probabilities computed
 * from the device calibration (paper Section 4.1, following Nishio et
 * al.). The noise-aware placement maximizes it, and the fast noise
 * model uses its gate-only part as a depolarizing strength.
 */
#ifndef JIGSAW_SIM_EPS_H
#define JIGSAW_SIM_EPS_H

#include "circuit/circuit.h"
#include "device/device_model.h"

namespace jigsaw {
namespace sim {

/**
 * Product of (1 - gate error) over all unitary gates of the routed
 * @p qc. Two-qubit errors come from the coupling edge; SWAP counts as
 * three CX, RZZ as two CX plus one RZ. Every two-qubit gate must sit
 * on a coupling edge (i.e. @p qc must already be routed).
 */
double gateSuccessProbability(const circuit::QuantumCircuit &qc,
                              const device::DeviceModel &dev);

/**
 * Product of (1 - effective readout error) over all measurements of
 * @p qc, using the state-averaged rate and including measurement
 * crosstalk for the number of simultaneous measurements in @p qc.
 */
double measurementSuccessProbability(const circuit::QuantumCircuit &qc,
                                     const device::DeviceModel &dev);

/** Full EPS: gate success times measurement success. */
double expectedProbabilityOfSuccess(const circuit::QuantumCircuit &qc,
                                    const device::DeviceModel &dev);

} // namespace sim
} // namespace jigsaw

#endif // JIGSAW_SIM_EPS_H
