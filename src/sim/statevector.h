/**
 * @file
 * Exact state-vector simulator.
 *
 * Holds 2^n complex amplitudes and applies gates in place. Practical
 * up to ~24 qubits, which covers every benchmark in the paper (the
 * largest is Graycode-18).
 *
 * Amplitudes are stored split (structure-of-arrays: one real and one
 * imaginary double array) so the hot loops run through the SIMD
 * kernel table in common/simd.h — AVX2+FMA when the build and CPU
 * support it, a portable scalar fallback otherwise. The kernels
 * iterate strided amplitude pairs/quads so each amplitude is touched
 * exactly once per gate (no full-space scan-and-skip), dispatch
 * diagonal gates (Z/S/T/RZ/CZ/CP/RZZ) to in-place phase multiplies
 * and permutation gates (CX/SWAP) to index-mapped swaps, and split
 * large amplitude ranges across the parallel.h thread pool.
 * applyCircuit() additionally fuses runs of single-qubit gates on the
 * same qubit into one 2x2 matrix, runs of CP/CZ gates sharing a qubit
 * into one stratum phase-table pass, and general diagonal runs
 * (RZ/RZZ mixed with CP/CZ — the QAOA and Ising layer shape) into one
 * full-register phase-table pass before touching the state.
 */
#ifndef JIGSAW_SIM_STATEVECTOR_H
#define JIGSAW_SIM_STATEVECTOR_H

#include <complex>
#include <utility>
#include <vector>

#include "circuit/circuit.h"
#include "common/histogram.h"

namespace jigsaw {
namespace sim {

/**
 * Tunables for applyCircuit's gate-fusion decisions. The defaults
 * reproduce the historical constants; simOptions() layers environment
 * overrides on top once per process. Tests and benches construct
 * their own to probe a specific fusion shape.
 */
struct SimOptions
{
    /**
     * Cap on the qubits one fused phase table may span — both the
     * CP/CZ common-qubit runs (control count) and the general
     * diagonal runs (involved-qubit count). The table holds 2^cap
     * complex entries, so this is the cache-residency knob: 12 keeps
     * the table at 64 KiB (two 32 KiB component arrays), L2-resident
     * on everything we target. Environment override:
     * JIGSAW_PHASE_TABLE_MAX_QUBITS (clamped to [1, 24]).
     */
    int phaseTableMaxQubits = 12;

    /** Cap on the gates composed into one diagonal-run table build
     *  (bounds the build cost, which is serial). */
    std::size_t maxFusedDiagGates = 64;

    /**
     * Fuse a general diagonal run only when the unfused sweeps it
     * replaces cost more than this many full-register passes (RZZ
     * counts 1.0, CP/CZ 0.25). Raising it biases toward the cheaper
     * specialized kernels; 0 fuses every eligible run.
     */
    double diagFuseCostThreshold = 1.0;

    /** Minimum two-qubit diagonals in a run before fusing pays. */
    std::size_t diagFuseMinTwoQubit = 2;
};

/**
 * Process-wide simulation options: the defaults above with
 * environment overrides applied, resolved once at first use.
 */
const SimOptions &simOptions();

/**
 * The quantum state of an n-qubit register, initialized to |0...0>.
 */
class StateVector
{
  public:
    using Amplitude = std::complex<double>;

    /** Construct |0...0> over @p n_qubits qubits. */
    explicit StateVector(int n_qubits);

    /** Number of qubits. */
    int nQubits() const { return nQubits_; }

    /** Apply a unitary gate (MEASURE/BARRIER are rejected). */
    void applyGate(const circuit::Gate &gate);

    /** Apply every unitary gate of @p qc in order (measures skipped),
     *  fusing runs per the process-wide simOptions(). */
    void applyCircuit(const circuit::QuantumCircuit &qc);

    /** As above with explicit fusion tunables. */
    void applyCircuit(const circuit::QuantumCircuit &qc,
                      const SimOptions &options);

    /** Amplitude of basis state @p basis. */
    Amplitude amplitude(BasisState basis) const;

    /** Born probability of basis state @p basis. */
    double probability(BasisState basis) const;

    /** Sum of |amplitude|^2 (1 up to round-off for a valid state). */
    double norm() const;

    /**
     * Distribution of measurement outcomes over the given qubits:
     * bit j of each outcome key is qubit @p qubits[j]. Entries below
     * @p threshold are dropped to keep the PMF sparse.
     */
    Pmf measurementPmf(const std::vector<int> &qubits,
                       double threshold = 1e-14) const;

    /** Apply a Pauli operator (X=1, Y=2, Z=3) to qubit @p q. */
    void applyPauli(int pauli, int q);

    /** Real amplitude components, indexed by basis state. */
    const std::vector<double> &reals() const { return re_; }

    /** Imaginary amplitude components, indexed by basis state. */
    const std::vector<double> &imags() const { return im_; }

    /**
     * Apply an arbitrary 2x2 unitary to qubit @p q. Public so circuit
     * evolution can fuse gate runs into one matrix before applying.
     */
    void apply1q(const Amplitude m[2][2], int q);

  private:
    void applyCx(int control, int target);
    void applyPhasePair(Amplitude even, Amplitude odd, int q0, int q1);
    void applyControlledPhase(Amplitude phase, int a, int b);
    void applyControlledPhaseRun(
        int target,
        const std::vector<std::pair<int, Amplitude>> &controls);
    /**
     * Multiply every amplitude by tab[PEXT(index, mask)]: one pass
     * applying a fused run of diagonal gates over the masked qubits.
     */
    void applyDiagonalRun(BasisState mask,
                          const std::vector<double> &tab_re,
                          const std::vector<double> &tab_im);
    void applySwap(int a, int b);

    int nQubits_;
    std::vector<double> re_;
    std::vector<double> im_;
};

/** Fill @p m with the 2x2 unitary of the single-qubit @p gate. */
void gateMatrix1q(const circuit::Gate &gate, StateVector::Amplitude m[2][2]);

} // namespace sim
} // namespace jigsaw

#endif // JIGSAW_SIM_STATEVECTOR_H
