#include "sim/statevector.h"

#include <array>
#include <cmath>

#include "common/error.h"
#include "common/parallel.h"

namespace jigsaw {
namespace sim {

using circuit::Gate;
using circuit::GateType;

namespace {

constexpr double invSqrt2 = 0.70710678118654752440;

using Amp = StateVector::Amplitude;

/**
 * Below this many loop iterations a kernel runs serially: the
 * thread-pool handoff costs more than the loop itself.
 */
constexpr std::size_t kGrain = 1ULL << 14;

/**
 * Spread the low bits of @p x upward so bit position q (with
 * @p stride = 1 << q) is zero: the enumeration primitive for visiting
 * each strided pair exactly once.
 */
inline BasisState
insertZero(BasisState x, BasisState stride)
{
    return ((x & ~(stride - 1)) << 1) | (x & (stride - 1));
}

inline bool
isZero(const Amp &a)
{
    return a.real() == 0.0 && a.imag() == 0.0;
}

inline bool
isOne(const Amp &a)
{
    return a.real() == 1.0 && a.imag() == 0.0;
}

/**
 * Component-wise complex multiply. Amplitudes are finite by
 * construction, so this skips the inf/NaN fixup path std::complex's
 * operator* routes through (__muldc3) — about a 1.5x kernel win.
 */
inline Amp
cmul(const Amp &x, const Amp &y)
{
    return Amp(x.real() * y.real() - x.imag() * y.imag(),
               x.real() * y.imag() + x.imag() * y.real());
}

/** x * y0 + z * y1 without __muldc3. */
inline Amp
cfma2(const Amp &x, const Amp &y0, const Amp &z, const Amp &y1)
{
    return Amp(x.real() * y0.real() - x.imag() * y0.imag() +
                   z.real() * y1.real() - z.imag() * y1.imag(),
               x.real() * y0.imag() + x.imag() * y0.real() +
                   z.real() * y1.imag() + z.imag() * y1.real());
}

} // namespace

void
gateMatrix1q(const Gate &gate, Amp m[2][2])
{
    const Amp i(0.0, 1.0);
    switch (gate.type) {
      case GateType::H:
        m[0][0] = invSqrt2;
        m[0][1] = invSqrt2;
        m[1][0] = invSqrt2;
        m[1][1] = -invSqrt2;
        return;
      case GateType::X:
        m[0][0] = 0;
        m[0][1] = 1;
        m[1][0] = 1;
        m[1][1] = 0;
        return;
      case GateType::Y:
        m[0][0] = 0;
        m[0][1] = -i;
        m[1][0] = i;
        m[1][1] = 0;
        return;
      case GateType::Z:
        m[0][0] = 1;
        m[0][1] = 0;
        m[1][0] = 0;
        m[1][1] = -1;
        return;
      case GateType::S:
        m[0][0] = 1;
        m[0][1] = 0;
        m[1][0] = 0;
        m[1][1] = i;
        return;
      case GateType::SDG:
        m[0][0] = 1;
        m[0][1] = 0;
        m[1][0] = 0;
        m[1][1] = -i;
        return;
      case GateType::T:
        m[0][0] = 1;
        m[0][1] = 0;
        m[1][0] = 0;
        m[1][1] = std::exp(i * (M_PI / 4.0));
        return;
      case GateType::TDG:
        m[0][0] = 1;
        m[0][1] = 0;
        m[1][0] = 0;
        m[1][1] = std::exp(-i * (M_PI / 4.0));
        return;
      case GateType::RX: {
        const double half = gate.params.at(0) / 2.0;
        m[0][0] = std::cos(half);
        m[0][1] = -i * std::sin(half);
        m[1][0] = -i * std::sin(half);
        m[1][1] = std::cos(half);
        return;
      }
      case GateType::RY: {
        const double half = gate.params.at(0) / 2.0;
        m[0][0] = std::cos(half);
        m[0][1] = -std::sin(half);
        m[1][0] = std::sin(half);
        m[1][1] = std::cos(half);
        return;
      }
      case GateType::RZ: {
        const double half = gate.params.at(0) / 2.0;
        m[0][0] = std::exp(-i * half);
        m[0][1] = 0;
        m[1][0] = 0;
        m[1][1] = std::exp(i * half);
        return;
      }
      case GateType::U3: {
        const double theta = gate.params.at(0);
        const double phi = gate.params.at(1);
        const double lambda = gate.params.at(2);
        m[0][0] = std::cos(theta / 2.0);
        m[0][1] = -std::exp(i * lambda) * std::sin(theta / 2.0);
        m[1][0] = std::exp(i * phi) * std::sin(theta / 2.0);
        m[1][1] = std::exp(i * (phi + lambda)) * std::cos(theta / 2.0);
        return;
      }
      default:
        panicIf(true, "gateMatrix1q: not a single-qubit gate");
    }
}

StateVector::StateVector(int n_qubits) : nQubits_(n_qubits)
{
    fatalIf(n_qubits < 1 || n_qubits > 28,
            "StateVector: qubit count must be in [1, 28]");
    amps_.assign(1ULL << n_qubits, Amplitude(0.0, 0.0));
    amps_[0] = Amplitude(1.0, 0.0);
}

void
StateVector::apply1q(const Amplitude m[2][2], int q)
{
    const BasisState stride = 1ULL << q;
    const std::size_t pairs = amps_.size() >> 1;
    Amplitude *a = amps_.data();

    if (isZero(m[0][1]) && isZero(m[1][0])) {
        // Diagonal gate: in-place phase multiply, no pair traffic.
        const Amplitude d0 = m[0][0];
        const Amplitude d1 = m[1][1];
        if (isOne(d0)) {
            // Z/S/T/RZ-like: only the |1> stratum moves.
            parallelFor(0, pairs, kGrain, [=](std::size_t lo,
                                              std::size_t hi) {
                for (std::size_t k = lo; k < hi; ++k) {
                    Amplitude &a1 = a[insertZero(k, stride) | stride];
                    a1 = cmul(a1, d1);
                }
            });
            return;
        }
        parallelFor(0, pairs, kGrain, [=](std::size_t lo, std::size_t hi) {
            for (std::size_t k = lo; k < hi; ++k) {
                const BasisState i0 = insertZero(k, stride);
                a[i0] = cmul(a[i0], d0);
                a[i0 | stride] = cmul(a[i0 | stride], d1);
            }
        });
        return;
    }

    if (isZero(m[0][0]) && isZero(m[1][1])) {
        // Anti-diagonal gate (X/Y): an index-mapped swap with phases.
        const Amplitude o01 = m[0][1];
        const Amplitude o10 = m[1][0];
        if (isOne(o01) && isOne(o10)) {
            parallelFor(0, pairs, kGrain, [=](std::size_t lo,
                                              std::size_t hi) {
                for (std::size_t k = lo; k < hi; ++k) {
                    const BasisState i0 = insertZero(k, stride);
                    std::swap(a[i0], a[i0 | stride]);
                }
            });
            return;
        }
        parallelFor(0, pairs, kGrain, [=](std::size_t lo, std::size_t hi) {
            for (std::size_t k = lo; k < hi; ++k) {
                const BasisState i0 = insertZero(k, stride);
                const Amplitude a0 = a[i0];
                a[i0] = cmul(o01, a[i0 | stride]);
                a[i0 | stride] = cmul(o10, a0);
            }
        });
        return;
    }

    const Amplitude m00 = m[0][0], m01 = m[0][1];
    const Amplitude m10 = m[1][0], m11 = m[1][1];
    parallelFor(0, pairs, kGrain, [=](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
            const BasisState i0 = insertZero(k, stride);
            const BasisState i1 = i0 | stride;
            const Amplitude a0 = a[i0];
            const Amplitude a1 = a[i1];
            a[i0] = cfma2(m00, a0, m01, a1);
            a[i1] = cfma2(m10, a0, m11, a1);
        }
    });
}

void
StateVector::apply2q(const Amplitude m[4][4], int q0, int q1)
{
    // Basis convention within the 4x4 block: index = (bit q1 << 1) |
    // bit q0, i.e. q0 is the low bit.
    const BasisState mask0 = 1ULL << q0;
    const BasisState mask1 = 1ULL << q1;
    const BasisState s_lo = q0 < q1 ? mask0 : mask1;
    const BasisState s_hi = q0 < q1 ? mask1 : mask0;
    const std::size_t quads = amps_.size() >> 2;
    Amplitude *a = amps_.data();

    std::array<Amplitude, 16> flat;
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            flat[static_cast<std::size_t>(4 * r + c)] = m[r][c];

    parallelFor(0, quads, kGrain / 2, [=](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
            const BasisState base =
                insertZero(insertZero(k, s_lo), s_hi);
            const BasisState idx[4] = {base, base | mask0, base | mask1,
                                       base | mask0 | mask1};
            const Amplitude in[4] = {a[idx[0]], a[idx[1]], a[idx[2]],
                                     a[idx[3]]};
            for (int r = 0; r < 4; ++r) {
                const auto *row = flat.data() + 4 * r;
                a[idx[r]] = cfma2(row[0], in[0], row[1], in[1]) +
                            cfma2(row[2], in[2], row[3], in[3]);
            }
        }
    });
}

void
StateVector::applyCx(int control, int target)
{
    // Permutation gate: swap the (control=1, target=0) stratum with
    // its target-flipped partner; one touch per moved amplitude.
    const BasisState cmask = 1ULL << control;
    const BasisState tmask = 1ULL << target;
    const BasisState s_lo = control < target ? cmask : tmask;
    const BasisState s_hi = control < target ? tmask : cmask;
    const std::size_t quads = amps_.size() >> 2;
    Amplitude *a = amps_.data();
    parallelFor(0, quads, kGrain, [=](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
            const BasisState base =
                insertZero(insertZero(k, s_lo), s_hi) | cmask;
            std::swap(a[base], a[base | tmask]);
        }
    });
}

void
StateVector::applyControlledPhase(Amplitude phase, int qa, int qb)
{
    // Diagonal: multiply only the both-bits-set stratum.
    const BasisState ma = 1ULL << qa;
    const BasisState mb = 1ULL << qb;
    const BasisState s_lo = qa < qb ? ma : mb;
    const BasisState s_hi = qa < qb ? mb : ma;
    const std::size_t quads = amps_.size() >> 2;
    Amplitude *a = amps_.data();
    parallelFor(0, quads, kGrain, [=](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
            Amplitude &amp =
                a[insertZero(insertZero(k, s_lo), s_hi) | ma | mb];
            amp = cmul(amp, phase);
        }
    });
}

void
StateVector::applySwap(int qa, int qb)
{
    const BasisState ma = 1ULL << qa;
    const BasisState mb = 1ULL << qb;
    const BasisState s_lo = qa < qb ? ma : mb;
    const BasisState s_hi = qa < qb ? mb : ma;
    const std::size_t quads = amps_.size() >> 2;
    Amplitude *a = amps_.data();
    parallelFor(0, quads, kGrain, [=](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
            const BasisState base = insertZero(insertZero(k, s_lo), s_hi);
            std::swap(a[base | ma], a[base | mb]);
        }
    });
}

void
StateVector::applyPhasePair(Amplitude even, Amplitude odd, int q0, int q1)
{
    // Diagonal two-qubit phase: "even" applies where bits agree,
    // "odd" where they differ (the RZZ structure). Branch-free via a
    // two-entry phase table indexed by the XOR of the two bits.
    const Amplitude table[2] = {even, odd};
    const std::size_t dim = amps_.size();
    Amplitude *a = amps_.data();
    parallelFor(0, dim, kGrain, [=, &table](std::size_t lo,
                                            std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k)
            a[k] = cmul(a[k], table[((k >> q0) ^ (k >> q1)) & 1ULL]);
    });
}

void
StateVector::applyGate(const Gate &gate)
{
    fatalIf(gate.isMeasure(), "StateVector: cannot apply MEASURE");
    if (gate.type == GateType::BARRIER)
        return;

    if (gate.isSingleQubit()) {
        Amplitude m[2][2];
        gateMatrix1q(gate, m);
        apply1q(m, gate.qubits[0]);
        return;
    }

    const int a = gate.qubits[0];
    const int b = gate.qubits[1];
    switch (gate.type) {
      case GateType::CX:
        applyCx(a, b);
        return;
      case GateType::CZ:
        applyControlledPhase(Amplitude(-1.0, 0.0), a, b);
        return;
      case GateType::CP: {
        const Amplitude i(0.0, 1.0);
        applyControlledPhase(std::exp(i * gate.params.at(0)), a, b);
        return;
      }
      case GateType::SWAP:
        applySwap(a, b);
        return;
      case GateType::RZZ: {
        const Amplitude i(0.0, 1.0);
        const double half = gate.params.at(0) / 2.0;
        applyPhasePair(std::exp(-i * half), std::exp(i * half), a, b);
        return;
      }
      default:
        panicIf(true, "StateVector: unhandled two-qubit gate");
    }
}

void
StateVector::applyCircuit(const circuit::QuantumCircuit &qc)
{
    fatalIf(qc.nQubits() != nQubits_,
            "StateVector: circuit qubit count mismatch");

    // Fuse pending single-qubit gates per qubit: consecutive 1q gates
    // on one qubit compose into a single 2x2 matrix (1q gates on
    // distinct qubits commute, so per-qubit accumulation is exact),
    // flushed only when a two-qubit gate touches the qubit or the
    // circuit ends.
    struct Mat2
    {
        Amplitude m[2][2];
    };
    std::vector<Mat2> pending(static_cast<std::size_t>(nQubits_));
    std::vector<bool> has(static_cast<std::size_t>(nQubits_), false);

    const auto flush = [&](int q) {
        const auto uq = static_cast<std::size_t>(q);
        if (!has[uq])
            return;
        apply1q(pending[uq].m, q);
        has[uq] = false;
    };

    for (const Gate &g : qc.gates()) {
        if (g.isMeasure() || g.type == GateType::BARRIER)
            continue;
        if (g.isSingleQubit()) {
            const auto uq = static_cast<std::size_t>(g.qubits[0]);
            Amplitude m[2][2];
            gateMatrix1q(g, m);
            if (!has[uq]) {
                for (int r = 0; r < 2; ++r)
                    for (int c = 0; c < 2; ++c)
                        pending[uq].m[r][c] = m[r][c];
                has[uq] = true;
                continue;
            }
            const Mat2 acc = pending[uq];
            for (int r = 0; r < 2; ++r) {
                for (int c = 0; c < 2; ++c) {
                    pending[uq].m[r][c] = m[r][0] * acc.m[0][c] +
                                          m[r][1] * acc.m[1][c];
                }
            }
            continue;
        }
        for (int q : g.qubits)
            flush(q);
        applyGate(g);
    }
    for (int q = 0; q < nQubits_; ++q)
        flush(q);
}

StateVector::Amplitude
StateVector::amplitude(BasisState basis) const
{
    fatalIf(basis >= amps_.size(), "StateVector: basis out of range");
    return amps_[basis];
}

double
StateVector::probability(BasisState basis) const
{
    return std::norm(amplitude(basis));
}

double
StateVector::norm() const
{
    double total = 0.0;
    for (const Amplitude &a : amps_)
        total += std::norm(a);
    return total;
}

Pmf
StateVector::measurementPmf(const std::vector<int> &qubits,
                            double threshold) const
{
    fatalIf(qubits.empty(), "measurementPmf: empty qubit list");
    Pmf pmf(static_cast<int>(qubits.size()));

    // Full-register measurement (the exactOutputPmf case): every basis
    // state is its own outcome, so skip the extractBits remap and the
    // hash-accumulate — count the support, size the table once, and
    // insert each entry exactly once.
    bool identity = static_cast<int>(qubits.size()) == nQubits_;
    for (std::size_t j = 0; identity && j < qubits.size(); ++j)
        identity = qubits[j] == static_cast<int>(j);
    if (identity) {
        std::size_t support = 0;
        for (const Amplitude &amp : amps_)
            support += std::norm(amp) > 0.0;
        pmf.reserve(support);
        for (BasisState basis = 0; basis < amps_.size(); ++basis) {
            const double p = std::norm(amps_[basis]);
            if (p > 0.0)
                pmf.set(basis, p);
        }
        pmf.prune(threshold);
        return pmf;
    }

    for (BasisState basis = 0; basis < amps_.size(); ++basis) {
        const double p = std::norm(amps_[basis]);
        if (p <= 0.0)
            continue;
        pmf.accumulate(extractBits(basis, qubits), p);
    }
    pmf.prune(threshold);
    return pmf;
}

void
StateVector::applyPauli(int pauli, int q)
{
    static const GateType types[] = {GateType::X, GateType::Y, GateType::Z};
    fatalIf(pauli < 1 || pauli > 3, "applyPauli: pauli must be 1..3");
    applyGate({types[pauli - 1], {q}, {}, -1});
}

} // namespace sim
} // namespace jigsaw
