#include "sim/statevector.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>

#include "common/error.h"
#include "common/parallel.h"
#include "common/simd.h"

namespace jigsaw {
namespace sim {

using circuit::Gate;
using circuit::GateType;

namespace {

constexpr double invSqrt2 = 0.70710678118654752440;

using Amp = StateVector::Amplitude;

/**
 * Below this many loop iterations a kernel runs serially: the
 * thread-pool handoff costs more than the loop itself.
 */
constexpr std::size_t kGrain = 1ULL << 14;

inline bool
isZero(const Amp &a)
{
    return a.real() == 0.0 && a.imag() == 0.0;
}

inline bool
isOne(const Amp &a)
{
    return a.real() == 1.0 && a.imag() == 0.0;
}

} // namespace

const SimOptions &
simOptions()
{
    static const SimOptions opts = [] {
        SimOptions o;
        if (const char *s = std::getenv("JIGSAW_PHASE_TABLE_MAX_QUBITS")) {
            char *end = nullptr;
            const long v = std::strtol(s, &end, 10);
            if (end != s && *end == '\0')
                o.phaseTableMaxQubits = static_cast<int>(
                    std::clamp(v, 1L, 24L));
        }
        return o;
    }();
    return opts;
}

void
gateMatrix1q(const Gate &gate, Amp m[2][2])
{
    const Amp i(0.0, 1.0);
    switch (gate.type) {
      case GateType::H:
        m[0][0] = invSqrt2;
        m[0][1] = invSqrt2;
        m[1][0] = invSqrt2;
        m[1][1] = -invSqrt2;
        return;
      case GateType::X:
        m[0][0] = 0;
        m[0][1] = 1;
        m[1][0] = 1;
        m[1][1] = 0;
        return;
      case GateType::Y:
        m[0][0] = 0;
        m[0][1] = -i;
        m[1][0] = i;
        m[1][1] = 0;
        return;
      case GateType::Z:
        m[0][0] = 1;
        m[0][1] = 0;
        m[1][0] = 0;
        m[1][1] = -1;
        return;
      case GateType::S:
        m[0][0] = 1;
        m[0][1] = 0;
        m[1][0] = 0;
        m[1][1] = i;
        return;
      case GateType::SDG:
        m[0][0] = 1;
        m[0][1] = 0;
        m[1][0] = 0;
        m[1][1] = -i;
        return;
      case GateType::T:
        m[0][0] = 1;
        m[0][1] = 0;
        m[1][0] = 0;
        m[1][1] = std::exp(i * (M_PI / 4.0));
        return;
      case GateType::TDG:
        m[0][0] = 1;
        m[0][1] = 0;
        m[1][0] = 0;
        m[1][1] = std::exp(-i * (M_PI / 4.0));
        return;
      case GateType::RX: {
        const double half = gate.params.at(0) / 2.0;
        m[0][0] = std::cos(half);
        m[0][1] = -i * std::sin(half);
        m[1][0] = -i * std::sin(half);
        m[1][1] = std::cos(half);
        return;
      }
      case GateType::RY: {
        const double half = gate.params.at(0) / 2.0;
        m[0][0] = std::cos(half);
        m[0][1] = -std::sin(half);
        m[1][0] = std::sin(half);
        m[1][1] = std::cos(half);
        return;
      }
      case GateType::RZ: {
        const double half = gate.params.at(0) / 2.0;
        m[0][0] = std::exp(-i * half);
        m[0][1] = 0;
        m[1][0] = 0;
        m[1][1] = std::exp(i * half);
        return;
      }
      case GateType::U3: {
        const double theta = gate.params.at(0);
        const double phi = gate.params.at(1);
        const double lambda = gate.params.at(2);
        m[0][0] = std::cos(theta / 2.0);
        m[0][1] = -std::exp(i * lambda) * std::sin(theta / 2.0);
        m[1][0] = std::exp(i * phi) * std::sin(theta / 2.0);
        m[1][1] = std::exp(i * (phi + lambda)) * std::cos(theta / 2.0);
        return;
      }
      default:
        panicIf(true, "gateMatrix1q: not a single-qubit gate");
    }
}

StateVector::StateVector(int n_qubits) : nQubits_(n_qubits)
{
    fatalIf(n_qubits < 1 || n_qubits > 28,
            "StateVector: qubit count must be in [1, 28]");
    re_.assign(1ULL << n_qubits, 0.0);
    im_.assign(1ULL << n_qubits, 0.0);
    re_[0] = 1.0;
}

void
StateVector::apply1q(const Amplitude m[2][2], int q)
{
    const BasisState stride = 1ULL << q;
    const std::size_t pairs = re_.size() >> 1;
    double *re = re_.data();
    double *im = im_.data();
    const simd::KernelTable &K = simd::activeKernels();

    if (isZero(m[0][1]) && isZero(m[1][0])) {
        // Diagonal gate: in-place phase multiply, no pair traffic.
        const Amplitude d0 = m[0][0];
        const Amplitude d1 = m[1][1];
        const bool d0_is_one = isOne(d0);
        parallelFor(0, pairs, kGrain, [=, &K](std::size_t lo,
                                              std::size_t hi) {
            K.apply1qDiag(re, im, stride, lo, hi, d0.real(), d0.imag(),
                          d1.real(), d1.imag(), d0_is_one);
        });
        return;
    }

    const simd::Mat2Split ms = {
        {m[0][0].real(), m[0][1].real(), m[1][0].real(), m[1][1].real()},
        {m[0][0].imag(), m[0][1].imag(), m[1][0].imag(), m[1][1].imag()},
    };
    parallelFor(0, pairs, kGrain, [=, &K](std::size_t lo, std::size_t hi) {
        K.apply1q(re, im, stride, lo, hi, ms);
    });
}

void
StateVector::applyCx(int control, int target)
{
    // Permutation gate: swap the (control=1, target=0) stratum with
    // its target-flipped partner; one touch per moved amplitude.
    const BasisState cmask = 1ULL << control;
    const BasisState tmask = 1ULL << target;
    const BasisState s_lo = control < target ? cmask : tmask;
    const BasisState s_hi = control < target ? tmask : cmask;
    const std::size_t quads = re_.size() >> 2;
    double *re = re_.data();
    double *im = im_.data();
    const simd::KernelTable &K = simd::activeKernels();
    parallelFor(0, quads, kGrain, [=, &K](std::size_t lo, std::size_t hi) {
        K.quadSwap(re, im, s_lo, s_hi, cmask, cmask | tmask, lo, hi);
    });
}

void
StateVector::applyControlledPhase(Amplitude phase, int qa, int qb)
{
    // Diagonal: multiply only the both-bits-set stratum.
    const BasisState ma = 1ULL << qa;
    const BasisState mb = 1ULL << qb;
    const BasisState s_lo = qa < qb ? ma : mb;
    const BasisState s_hi = qa < qb ? mb : ma;
    const std::size_t quads = re_.size() >> 2;
    double *re = re_.data();
    double *im = im_.data();
    const simd::KernelTable &K = simd::activeKernels();
    parallelFor(0, quads, kGrain, [=, &K](std::size_t lo, std::size_t hi) {
        K.quadPhase(re, im, s_lo, s_hi, ma | mb, lo, hi, phase.real(),
                    phase.imag());
    });
}

void
StateVector::applySwap(int qa, int qb)
{
    const BasisState ma = 1ULL << qa;
    const BasisState mb = 1ULL << qb;
    const BasisState s_lo = qa < qb ? ma : mb;
    const BasisState s_hi = qa < qb ? mb : ma;
    const std::size_t quads = re_.size() >> 2;
    double *re = re_.data();
    double *im = im_.data();
    const simd::KernelTable &K = simd::activeKernels();
    parallelFor(0, quads, kGrain, [=, &K](std::size_t lo, std::size_t hi) {
        K.quadSwap(re, im, s_lo, s_hi, ma, mb, lo, hi);
    });
}

void
StateVector::applyControlledPhaseRun(
    int target, const std::vector<std::pair<int, Amplitude>> &controls)
{
    // A run of CP/CZ gates sharing one qubit is a tensor-product
    // diagonal on the target's 1-stratum: the phase of an amplitude is
    // the product of the per-control phases whose bit is set. Build
    // that product as a table over the control bits (doubling once per
    // control) and apply it in a single pass over the stratum.
    std::vector<std::pair<int, Amplitude>> sorted = controls;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    // Duplicate controls multiply into one tensor factor.
    std::vector<std::pair<int, Amplitude>> unique;
    for (const auto &[q, phase] : sorted) {
        if (!unique.empty() && unique.back().first == q) {
            unique.back().second *= phase;
            continue;
        }
        unique.push_back({q, phase});
    }

    std::vector<double> tab_re(1, 1.0);
    std::vector<double> tab_im(1, 0.0);
    tab_re.reserve(1ULL << unique.size());
    tab_im.reserve(1ULL << unique.size());
    BasisState control_mask = 0;
    for (const auto &[q, phase] : unique) {
        control_mask |= 1ULL << q;
        const std::size_t half = tab_re.size();
        for (std::size_t t = 0; t < half; ++t) {
            tab_re.push_back(tab_re[t] * phase.real() -
                             tab_im[t] * phase.imag());
            tab_im.push_back(tab_re[t] * phase.imag() +
                             tab_im[t] * phase.real());
        }
    }

    const BasisState q_mask = 1ULL << target;
    const std::size_t pairs = re_.size() >> 1;
    double *re = re_.data();
    double *im = im_.data();
    const double *tr = tab_re.data();
    const double *ti = tab_im.data();
    const simd::KernelTable &K = simd::activeKernels();
    parallelFor(0, pairs, kGrain, [=, &K](std::size_t lo, std::size_t hi) {
        K.stratumPhaseTable(re, im, q_mask, control_mask, tr, ti, lo, hi);
    });
}

void
StateVector::applyDiagonalRun(BasisState mask,
                              const std::vector<double> &tab_re,
                              const std::vector<double> &tab_im)
{
    const std::size_t dim = re_.size();
    double *re = re_.data();
    double *im = im_.data();
    const double *tr = tab_re.data();
    const double *ti = tab_im.data();
    const simd::KernelTable &K = simd::activeKernels();
    parallelFor(0, dim, kGrain, [=, &K](std::size_t lo, std::size_t hi) {
        K.phaseTable(re, im, mask, tr, ti, lo, hi);
    });
}

void
StateVector::applyPhasePair(Amplitude even, Amplitude odd, int q0, int q1)
{
    // Diagonal two-qubit phase: "even" applies where bits agree,
    // "odd" where they differ (the RZZ structure).
    const std::size_t dim = re_.size();
    double *re = re_.data();
    double *im = im_.data();
    const simd::KernelTable &K = simd::activeKernels();
    parallelFor(0, dim, kGrain, [=, &K](std::size_t lo, std::size_t hi) {
        K.phasePair(re, im, q0, q1, lo, hi, even.real(), even.imag(),
                    odd.real(), odd.imag());
    });
}

void
StateVector::applyGate(const Gate &gate)
{
    fatalIf(gate.isMeasure(), "StateVector: cannot apply MEASURE");
    if (gate.type == GateType::BARRIER)
        return;

    if (gate.isSingleQubit()) {
        Amplitude m[2][2];
        gateMatrix1q(gate, m);
        apply1q(m, gate.qubits[0]);
        return;
    }

    const int a = gate.qubits[0];
    const int b = gate.qubits[1];
    switch (gate.type) {
      case GateType::CX:
        applyCx(a, b);
        return;
      case GateType::CZ:
        applyControlledPhase(Amplitude(-1.0, 0.0), a, b);
        return;
      case GateType::CP: {
        const Amplitude i(0.0, 1.0);
        applyControlledPhase(std::exp(i * gate.params.at(0)), a, b);
        return;
      }
      case GateType::SWAP:
        applySwap(a, b);
        return;
      case GateType::RZZ: {
        const Amplitude i(0.0, 1.0);
        const double half = gate.params.at(0) / 2.0;
        applyPhasePair(std::exp(-i * half), std::exp(i * half), a, b);
        return;
      }
      default:
        panicIf(true, "StateVector: unhandled two-qubit gate");
    }
}

void
StateVector::applyCircuit(const circuit::QuantumCircuit &qc)
{
    applyCircuit(qc, simOptions());
}

void
StateVector::applyCircuit(const circuit::QuantumCircuit &qc,
                          const SimOptions &options)
{
    fatalIf(qc.nQubits() != nQubits_,
            "StateVector: circuit qubit count mismatch");

    // Fuse pending single-qubit gates per qubit: consecutive 1q gates
    // on one qubit compose into a single 2x2 matrix (1q gates on
    // distinct qubits commute, so per-qubit accumulation is exact),
    // flushed only when a two-qubit gate touches the qubit or the
    // circuit ends.
    struct Mat2
    {
        Amplitude m[2][2];
    };
    std::vector<Mat2> pending(static_cast<std::size_t>(nQubits_));
    std::vector<bool> has(static_cast<std::size_t>(nQubits_), false);

    const auto flush = [&](int q) {
        const auto uq = static_cast<std::size_t>(q);
        if (!has[uq])
            return;
        apply1q(pending[uq].m, q);
        has[uq] = false;
    };

    // Runs of CP/CZ gates sharing one qubit are all diagonal, so they
    // commute and compose into a single tensor-product phase pass
    // (applyControlledPhaseRun). Runs longer than the cap (each gate
    // past the first adds one control qubit to the table) are split
    // so the phase table stays cache-resident.
    const std::size_t kMaxFusedPhases =
        static_cast<std::size_t>(options.phaseTableMaxQubits);
    const auto isPhaseGate = [](const Gate &g) {
        return g.type == GateType::CP || g.type == GateType::CZ;
    };
    const auto phaseOf = [](const Gate &g) {
        if (g.type == GateType::CZ)
            return Amplitude(-1.0, 0.0);
        return std::exp(Amplitude(0.0, 1.0) * g.params.at(0));
    };

    // General diagonal runs — RZ/RZZ mixed with CP/CZ, the QAOA and
    // Ising layer shape — commute as a group and compose into one
    // phase table over the involved qubits, applied in a single
    // full-register pass (applyDiagonalRun). The qubit cap keeps the
    // table cache-resident; the gate cap bounds the table build.
    const int kMaxFusedDiagQubits = options.phaseTableMaxQubits;
    const std::size_t kMaxFusedDiagGates = options.maxFusedDiagGates;
    const auto isDiag1q = [](const Gate &g) {
        switch (g.type) {
          case GateType::Z:
          case GateType::S:
          case GateType::SDG:
          case GateType::T:
          case GateType::TDG:
          case GateType::RZ:
            return true;
          default:
            return false;
        }
    };
    const auto isDiag2q = [](const Gate &g) {
        return g.type == GateType::CZ || g.type == GateType::CP ||
               g.type == GateType::RZZ;
    };

    const std::vector<Gate> &gs = qc.gates();
    for (std::size_t gi = 0; gi < gs.size(); ++gi) {
        const Gate &g = gs[gi];
        if (g.isMeasure() || g.type == GateType::BARRIER)
            continue;
        if (g.isSingleQubit()) {
            const auto uq = static_cast<std::size_t>(g.qubits[0]);
            Amplitude m[2][2];
            gateMatrix1q(g, m);
            if (!has[uq]) {
                for (int r = 0; r < 2; ++r)
                    for (int c = 0; c < 2; ++c)
                        pending[uq].m[r][c] = m[r][c];
                has[uq] = true;
                continue;
            }
            const Mat2 acc = pending[uq];
            for (int r = 0; r < 2; ++r) {
                for (int c = 0; c < 2; ++c) {
                    pending[uq].m[r][c] = m[r][0] * acc.m[0][c] +
                                          m[r][1] * acc.m[1][c];
                }
            }
            continue;
        }
        if (isPhaseGate(g)) {
            // Extend the run while every gate shares a surviving
            // common qubit; barriers do not break it.
            int cand0 = g.qubits[0];
            int cand1 = g.qubits[1];
            std::vector<std::size_t> run = {gi};
            std::size_t gj = gi + 1;
            for (; gj < gs.size() && run.size() < kMaxFusedPhases; ++gj) {
                const Gate &h = gs[gj];
                if (h.type == GateType::BARRIER)
                    continue;
                if (!isPhaseGate(h))
                    break;
                const bool has0 = cand0 >= 0 && (h.qubits[0] == cand0 ||
                                                 h.qubits[1] == cand0);
                const bool has1 = cand1 >= 0 && (h.qubits[0] == cand1 ||
                                                 h.qubits[1] == cand1);
                if (!has0 && !has1)
                    break;
                if (!has0)
                    cand0 = -1;
                if (!has1)
                    cand1 = -1;
                run.push_back(gj);
            }
            if (run.size() >= 2) {
                const int target = cand0 >= 0 ? cand0 : cand1;
                std::vector<std::pair<int, Amplitude>> controls;
                controls.reserve(run.size());
                for (std::size_t gk : run) {
                    const Gate &h = gs[gk];
                    const int other = h.qubits[0] == target
                                          ? h.qubits[1]
                                          : h.qubits[0];
                    controls.push_back({other, phaseOf(h)});
                    flush(other);
                }
                flush(target);
                applyControlledPhaseRun(target, controls);
                gi = run.back();
                continue;
            }
        }
        if (isDiag2q(g)) {
            // Scan the maximal contiguous diagonal run from here:
            // two-qubit diagonals plus interleaved single-qubit
            // diagonals, while the involved-qubit count fits the cap.
            // (Runs the common-qubit CP/CZ pass above already took
            // never reach this point.)
            BasisState mask = 0;
            int n_bits = 0;
            std::size_t n_two_qubit = 0;
            double unfused_cost = 0.0;
            std::vector<std::size_t> drun;
            for (std::size_t gj = gi;
                 gj < gs.size() && drun.size() < kMaxFusedDiagGates;
                 ++gj) {
                const Gate &h = gs[gj];
                if (h.type == GateType::BARRIER)
                    continue;
                const bool diag2 = isDiag2q(h);
                if (!diag2 && !isDiag1q(h))
                    break;
                BasisState hmask = 0;
                for (int q : h.qubits)
                    hmask |= 1ULL << q;
                const int new_bits = std::popcount(hmask & ~mask);
                if (n_bits + new_bits > kMaxFusedDiagQubits)
                    break;
                mask |= hmask;
                n_bits += new_bits;
                drun.push_back(gj);
                if (diag2) {
                    ++n_two_qubit;
                    // Sweep fractions the unfused path would pay:
                    // CP/CZ touch a quarter of the amplitudes, RZZ
                    // all of them. 1q diagonals ride along for free
                    // (they would fuse into pending 2x2s anyway).
                    unfused_cost +=
                        h.type == GateType::RZZ ? 1.0 : 0.25;
                }
            }
            // Fuse when one full-register pass beats the unfused
            // sweeps it replaces.
            if (n_two_qubit >= options.diagFuseMinTwoQubit &&
                unfused_cost > options.diagFuseCostThreshold) {
                const std::size_t tsize = 1ULL << n_bits;
                std::vector<double> tab_re(tsize, 1.0);
                std::vector<double> tab_im(tsize, 0.0);
                const auto bitOf = [mask](int q) {
                    return std::popcount(mask & ((1ULL << q) - 1));
                };
                const auto mulAt = [&](std::size_t t, Amplitude f) {
                    const double tr = tab_re[t], ti = tab_im[t];
                    tab_re[t] = tr * f.real() - ti * f.imag();
                    tab_im[t] = tr * f.imag() + ti * f.real();
                };
                for (std::size_t gk : drun) {
                    const Gate &h = gs[gk];
                    if (h.isSingleQubit()) {
                        Amplitude m1[2][2];
                        gateMatrix1q(h, m1);
                        const int b = bitOf(h.qubits[0]);
                        for (std::size_t t = 0; t < tsize; ++t)
                            mulAt(t, m1[(t >> b) & 1][(t >> b) & 1]);
                        continue;
                    }
                    const int ba = bitOf(h.qubits[0]);
                    const int bb = bitOf(h.qubits[1]);
                    if (h.type == GateType::RZZ) {
                        const Amplitude i(0.0, 1.0);
                        const double half = h.params.at(0) / 2.0;
                        const Amplitude even = std::exp(-i * half);
                        const Amplitude odd = std::exp(i * half);
                        for (std::size_t t = 0; t < tsize; ++t) {
                            const bool differ =
                                (((t >> ba) ^ (t >> bb)) & 1) != 0;
                            mulAt(t, differ ? odd : even);
                        }
                        continue;
                    }
                    const Amplitude phase = phaseOf(h);
                    for (std::size_t t = 0; t < tsize; ++t) {
                        if (((t >> ba) & 1) != 0 && ((t >> bb) & 1) != 0)
                            mulAt(t, phase);
                    }
                }
                for (int q = 0; q < nQubits_; ++q) {
                    if ((mask >> q) & 1)
                        flush(q);
                }
                applyDiagonalRun(mask, tab_re, tab_im);
                gi = drun.back();
                continue;
            }
        }
        for (int q : g.qubits)
            flush(q);
        applyGate(g);
    }
    for (int q = 0; q < nQubits_; ++q)
        flush(q);
}

StateVector::Amplitude
StateVector::amplitude(BasisState basis) const
{
    fatalIf(basis >= re_.size(), "StateVector: basis out of range");
    return Amplitude(re_[basis], im_[basis]);
}

double
StateVector::probability(BasisState basis) const
{
    return std::norm(amplitude(basis));
}

double
StateVector::norm() const
{
    return simd::activeKernels().norm2(re_.data(), im_.data(), 0,
                                       re_.size());
}

Pmf
StateVector::measurementPmf(const std::vector<int> &qubits,
                            double threshold) const
{
    fatalIf(qubits.empty(), "measurementPmf: empty qubit list");
    Pmf pmf(static_cast<int>(qubits.size()));
    const double *re = re_.data();
    const double *im = im_.data();
    const std::size_t dim = re_.size();

    // Full-register measurement (the exactOutputPmf case): every basis
    // state is its own outcome, so skip the extractBits remap and the
    // hash-accumulate — count the support, size the table once, and
    // insert each entry exactly once.
    bool identity = static_cast<int>(qubits.size()) == nQubits_;
    for (std::size_t j = 0; identity && j < qubits.size(); ++j)
        identity = qubits[j] == static_cast<int>(j);
    if (identity) {
        // Size the table for the exact surviving support (a GHZ state
        // keeps 2 entries out of 2^n — reserving dim would zero-fill
        // megabytes of buckets), and filter below threshold at insert
        // time: entries cannot accumulate here because each basis
        // state is its own outcome, so no prune() pass is needed.
        std::size_t support = 0;
        for (BasisState basis = 0; basis < dim; ++basis) {
            support +=
                re[basis] * re[basis] + im[basis] * im[basis] >=
                threshold;
        }
        pmf.reserve(support);
        for (BasisState basis = 0; basis < dim; ++basis) {
            const double p =
                re[basis] * re[basis] + im[basis] * im[basis];
            if (p >= threshold)
                pmf.set(basis, p);
        }
        return pmf;
    }

    for (BasisState basis = 0; basis < dim; ++basis) {
        const double p = re[basis] * re[basis] + im[basis] * im[basis];
        if (p <= 0.0)
            continue;
        pmf.accumulate(extractBits(basis, qubits), p);
    }
    pmf.prune(threshold);
    return pmf;
}

void
StateVector::applyPauli(int pauli, int q)
{
    static const GateType types[] = {GateType::X, GateType::Y, GateType::Z};
    fatalIf(pauli < 1 || pauli > 3, "applyPauli: pauli must be 1..3");
    applyGate({types[pauli - 1], {q}, {}, -1});
}

} // namespace sim
} // namespace jigsaw
