#include "sim/statevector.h"

#include <cmath>

#include "common/error.h"

namespace jigsaw {
namespace sim {

using circuit::Gate;
using circuit::GateType;

namespace {

constexpr double invSqrt2 = 0.70710678118654752440;

using Amp = StateVector::Amplitude;

/** Single-qubit matrix for a gate, filled into @p m. */
void
gateMatrix1q(const Gate &gate, Amp m[2][2])
{
    const Amp i(0.0, 1.0);
    switch (gate.type) {
      case GateType::H:
        m[0][0] = invSqrt2;
        m[0][1] = invSqrt2;
        m[1][0] = invSqrt2;
        m[1][1] = -invSqrt2;
        return;
      case GateType::X:
        m[0][0] = 0;
        m[0][1] = 1;
        m[1][0] = 1;
        m[1][1] = 0;
        return;
      case GateType::Y:
        m[0][0] = 0;
        m[0][1] = -i;
        m[1][0] = i;
        m[1][1] = 0;
        return;
      case GateType::Z:
        m[0][0] = 1;
        m[0][1] = 0;
        m[1][0] = 0;
        m[1][1] = -1;
        return;
      case GateType::S:
        m[0][0] = 1;
        m[0][1] = 0;
        m[1][0] = 0;
        m[1][1] = i;
        return;
      case GateType::SDG:
        m[0][0] = 1;
        m[0][1] = 0;
        m[1][0] = 0;
        m[1][1] = -i;
        return;
      case GateType::T:
        m[0][0] = 1;
        m[0][1] = 0;
        m[1][0] = 0;
        m[1][1] = std::exp(i * (M_PI / 4.0));
        return;
      case GateType::TDG:
        m[0][0] = 1;
        m[0][1] = 0;
        m[1][0] = 0;
        m[1][1] = std::exp(-i * (M_PI / 4.0));
        return;
      case GateType::RX: {
        const double half = gate.params.at(0) / 2.0;
        m[0][0] = std::cos(half);
        m[0][1] = -i * std::sin(half);
        m[1][0] = -i * std::sin(half);
        m[1][1] = std::cos(half);
        return;
      }
      case GateType::RY: {
        const double half = gate.params.at(0) / 2.0;
        m[0][0] = std::cos(half);
        m[0][1] = -std::sin(half);
        m[1][0] = std::sin(half);
        m[1][1] = std::cos(half);
        return;
      }
      case GateType::RZ: {
        const double half = gate.params.at(0) / 2.0;
        m[0][0] = std::exp(-i * half);
        m[0][1] = 0;
        m[1][0] = 0;
        m[1][1] = std::exp(i * half);
        return;
      }
      case GateType::U3: {
        const double theta = gate.params.at(0);
        const double phi = gate.params.at(1);
        const double lambda = gate.params.at(2);
        m[0][0] = std::cos(theta / 2.0);
        m[0][1] = -std::exp(i * lambda) * std::sin(theta / 2.0);
        m[1][0] = std::exp(i * phi) * std::sin(theta / 2.0);
        m[1][1] = std::exp(i * (phi + lambda)) * std::cos(theta / 2.0);
        return;
      }
      default:
        panicIf(true, "gateMatrix1q: not a single-qubit gate");
    }
}

} // namespace

StateVector::StateVector(int n_qubits) : nQubits_(n_qubits)
{
    fatalIf(n_qubits < 1 || n_qubits > 28,
            "StateVector: qubit count must be in [1, 28]");
    amps_.assign(1ULL << n_qubits, Amplitude(0.0, 0.0));
    amps_[0] = Amplitude(1.0, 0.0);
}

void
StateVector::apply1q(const Amplitude m[2][2], int q)
{
    const BasisState mask = 1ULL << q;
    const BasisState dim = amps_.size();
    for (BasisState base = 0; base < dim; ++base) {
        if (base & mask)
            continue;
        const Amplitude a0 = amps_[base];
        const Amplitude a1 = amps_[base | mask];
        amps_[base] = m[0][0] * a0 + m[0][1] * a1;
        amps_[base | mask] = m[1][0] * a0 + m[1][1] * a1;
    }
}

void
StateVector::apply2q(const Amplitude m[4][4], int q0, int q1)
{
    // Basis convention within the 4x4 block: index = (bit q1 << 1) |
    // bit q0, i.e. q0 is the low bit.
    const BasisState mask0 = 1ULL << q0;
    const BasisState mask1 = 1ULL << q1;
    const BasisState dim = amps_.size();
    for (BasisState base = 0; base < dim; ++base) {
        if ((base & mask0) || (base & mask1))
            continue;
        BasisState idx[4];
        idx[0] = base;
        idx[1] = base | mask0;
        idx[2] = base | mask1;
        idx[3] = base | mask0 | mask1;
        Amplitude in[4];
        for (int k = 0; k < 4; ++k)
            in[k] = amps_[idx[k]];
        for (int r = 0; r < 4; ++r) {
            Amplitude acc(0.0, 0.0);
            for (int c = 0; c < 4; ++c)
                acc += m[r][c] * in[c];
            amps_[idx[r]] = acc;
        }
    }
}

void
StateVector::applyCx(int control, int target)
{
    const BasisState cmask = 1ULL << control;
    const BasisState tmask = 1ULL << target;
    const BasisState dim = amps_.size();
    for (BasisState base = 0; base < dim; ++base) {
        if ((base & cmask) && !(base & tmask))
            std::swap(amps_[base], amps_[base | tmask]);
    }
}

void
StateVector::applyPhasePair(Amplitude even, Amplitude odd, int q0, int q1)
{
    // Diagonal two-qubit phase: "even" applies where bits agree,
    // "odd" where they differ (the RZZ structure).
    const BasisState mask0 = 1ULL << q0;
    const BasisState mask1 = 1ULL << q1;
    const BasisState dim = amps_.size();
    for (BasisState base = 0; base < dim; ++base) {
        const bool b0 = base & mask0;
        const bool b1 = base & mask1;
        amps_[base] *= (b0 == b1) ? even : odd;
    }
}

void
StateVector::applyGate(const Gate &gate)
{
    fatalIf(gate.isMeasure(), "StateVector: cannot apply MEASURE");
    if (gate.type == GateType::BARRIER)
        return;

    if (gate.isSingleQubit()) {
        Amplitude m[2][2];
        gateMatrix1q(gate, m);
        apply1q(m, gate.qubits[0]);
        return;
    }

    const int a = gate.qubits[0];
    const int b = gate.qubits[1];
    switch (gate.type) {
      case GateType::CX:
        applyCx(a, b);
        return;
      case GateType::CZ: {
        const BasisState mask = (1ULL << a) | (1ULL << b);
        for (BasisState base = 0; base < amps_.size(); ++base) {
            if ((base & mask) == mask)
                amps_[base] = -amps_[base];
        }
        return;
      }
      case GateType::CP: {
        const Amplitude i(0.0, 1.0);
        const Amplitude phase = std::exp(i * gate.params.at(0));
        const BasisState mask = (1ULL << a) | (1ULL << b);
        for (BasisState base = 0; base < amps_.size(); ++base) {
            if ((base & mask) == mask)
                amps_[base] *= phase;
        }
        return;
      }
      case GateType::SWAP: {
        const BasisState ma = 1ULL << a;
        const BasisState mb = 1ULL << b;
        for (BasisState base = 0; base < amps_.size(); ++base) {
            if ((base & ma) && !(base & mb))
                std::swap(amps_[base], amps_[(base ^ ma) | mb]);
        }
        return;
      }
      case GateType::RZZ: {
        const Amplitude i(0.0, 1.0);
        const double half = gate.params.at(0) / 2.0;
        applyPhasePair(std::exp(-i * half), std::exp(i * half), a, b);
        return;
      }
      default:
        panicIf(true, "StateVector: unhandled two-qubit gate");
    }
}

void
StateVector::applyCircuit(const circuit::QuantumCircuit &qc)
{
    fatalIf(qc.nQubits() != nQubits_,
            "StateVector: circuit qubit count mismatch");
    for (const Gate &g : qc.gates()) {
        if (!g.isMeasure())
            applyGate(g);
    }
}

StateVector::Amplitude
StateVector::amplitude(BasisState basis) const
{
    fatalIf(basis >= amps_.size(), "StateVector: basis out of range");
    return amps_[basis];
}

double
StateVector::probability(BasisState basis) const
{
    return std::norm(amplitude(basis));
}

double
StateVector::norm() const
{
    double total = 0.0;
    for (const Amplitude &a : amps_)
        total += std::norm(a);
    return total;
}

Pmf
StateVector::measurementPmf(const std::vector<int> &qubits,
                            double threshold) const
{
    fatalIf(qubits.empty(), "measurementPmf: empty qubit list");
    Pmf pmf(static_cast<int>(qubits.size()));
    for (BasisState basis = 0; basis < amps_.size(); ++basis) {
        const double p = std::norm(amps_[basis]);
        if (p <= 0.0)
            continue;
        pmf.accumulate(extractBits(basis, qubits), p);
    }
    pmf.prune(threshold);
    return pmf;
}

void
StateVector::applyPauli(int pauli, int q)
{
    static const GateType types[] = {GateType::X, GateType::Y, GateType::Z};
    fatalIf(pauli < 1 || pauli > 3, "applyPauli: pauli must be 1..3");
    applyGate({types[pauli - 1], {q}, {}, -1});
}

} // namespace sim
} // namespace jigsaw
