#include "sim/reference_kernels.h"

#include <cmath>

#include "common/bitops.h"
#include "common/error.h"
#include "sim/statevector.h"

namespace jigsaw {
namespace sim {

using circuit::Gate;
using circuit::GateType;

namespace {

using Amp = std::complex<double>;

void
naiveApply1q(std::vector<Amp> &amps, const Amp m[2][2], int q)
{
    const BasisState mask = 1ULL << q;
    const BasisState dim = amps.size();
    for (BasisState base = 0; base < dim; ++base) {
        if (base & mask)
            continue;
        const Amp a0 = amps[base];
        const Amp a1 = amps[base | mask];
        amps[base] = m[0][0] * a0 + m[0][1] * a1;
        amps[base | mask] = m[1][0] * a0 + m[1][1] * a1;
    }
}

void
naiveApplyGate(std::vector<Amp> &amps, const Gate &gate)
{
    if (gate.type == GateType::BARRIER)
        return;
    if (gate.isSingleQubit()) {
        Amp m[2][2];
        gateMatrix1q(gate, m);
        naiveApply1q(amps, m, gate.qubits[0]);
        return;
    }

    const int a = gate.qubits[0];
    const int b = gate.qubits[1];
    const BasisState dim = amps.size();
    switch (gate.type) {
      case GateType::CX: {
        const BasisState cmask = 1ULL << a;
        const BasisState tmask = 1ULL << b;
        for (BasisState base = 0; base < dim; ++base) {
            if ((base & cmask) && !(base & tmask))
                std::swap(amps[base], amps[base | tmask]);
        }
        return;
      }
      case GateType::CZ: {
        const BasisState mask = (1ULL << a) | (1ULL << b);
        for (BasisState base = 0; base < dim; ++base) {
            if ((base & mask) == mask)
                amps[base] = -amps[base];
        }
        return;
      }
      case GateType::CP: {
        const Amp i(0.0, 1.0);
        const Amp phase = std::exp(i * gate.params.at(0));
        const BasisState mask = (1ULL << a) | (1ULL << b);
        for (BasisState base = 0; base < dim; ++base) {
            if ((base & mask) == mask)
                amps[base] *= phase;
        }
        return;
      }
      case GateType::SWAP: {
        const BasisState ma = 1ULL << a;
        const BasisState mb = 1ULL << b;
        for (BasisState base = 0; base < dim; ++base) {
            if ((base & ma) && !(base & mb))
                std::swap(amps[base], amps[(base ^ ma) | mb]);
        }
        return;
      }
      case GateType::RZZ: {
        const Amp i(0.0, 1.0);
        const double half = gate.params.at(0) / 2.0;
        const Amp even = std::exp(-i * half);
        const Amp odd = std::exp(i * half);
        const BasisState ma = 1ULL << a;
        const BasisState mb = 1ULL << b;
        for (BasisState base = 0; base < dim; ++base) {
            const bool b0 = base & ma;
            const bool b1 = base & mb;
            amps[base] *= (b0 == b1) ? even : odd;
        }
        return;
      }
      default:
        panicIf(true, "referenceEvolve: unhandled two-qubit gate");
    }
}

} // namespace

std::vector<Amp>
referenceEvolve(const circuit::QuantumCircuit &qc)
{
    fatalIf(qc.nQubits() < 1 || qc.nQubits() > 28,
            "referenceEvolve: qubit count must be in [1, 28]");
    std::vector<Amp> amps(1ULL << qc.nQubits(), Amp(0.0, 0.0));
    amps[0] = Amp(1.0, 0.0);
    for (const Gate &g : qc.gates()) {
        if (!g.isMeasure())
            naiveApplyGate(amps, g);
    }
    return amps;
}

Pmf
referenceMeasurementPmf(const circuit::QuantumCircuit &qc,
                        const std::vector<int> &qubits, double threshold)
{
    fatalIf(qubits.empty(), "referenceMeasurementPmf: empty qubit list");
    const std::vector<Amp> amps = referenceEvolve(qc);
    Pmf pmf(static_cast<int>(qubits.size()));
    for (BasisState basis = 0; basis < amps.size(); ++basis) {
        const double p = std::norm(amps[basis]);
        if (p <= 0.0)
            continue;
        pmf.accumulate(extractBits(basis, qubits), p);
    }
    pmf.prune(threshold);
    return pmf;
}

} // namespace sim
} // namespace jigsaw
