/**
 * @file
 * Naive reference state-vector evolution.
 *
 * These are the original full-2^n scan-and-skip kernels, kept as an
 * executable specification: the golden-equivalence tests assert the
 * optimized StateVector matches them to ~1e-12 Hellinger distance,
 * and bench/perf_reconstruction times them as the "before" side of
 * BENCH_perf.json. They are deliberately slow and simple — do not
 * optimize this file.
 */
#ifndef JIGSAW_SIM_REFERENCE_KERNELS_H
#define JIGSAW_SIM_REFERENCE_KERNELS_H

#include <complex>
#include <vector>

#include "circuit/circuit.h"
#include "common/histogram.h"

namespace jigsaw {
namespace sim {

/**
 * Evolve |0...0> through the unitary gates of @p qc (measurements
 * skipped) with the naive kernels and return the final amplitudes.
 */
std::vector<std::complex<double>>
referenceEvolve(const circuit::QuantumCircuit &qc);

/**
 * Measurement PMF over @p qubits of the naive evolution of @p qc;
 * mirrors StateVector::measurementPmf on the reference amplitudes.
 */
Pmf referenceMeasurementPmf(const circuit::QuantumCircuit &qc,
                            const std::vector<int> &qubits,
                            double threshold = 1e-14);

} // namespace sim
} // namespace jigsaw

#endif // JIGSAW_SIM_REFERENCE_KERNELS_H
