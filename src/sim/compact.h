/**
 * @file
 * Active-qubit compaction.
 *
 * A routed circuit lives in physical-qubit space (up to 65 qubits on
 * the Manhattan model) but only touches a handful of qubits. Compaction
 * renumbers the touched qubits densely so the state-vector simulator
 * works over ~n_program qubits instead of 2^65 amplitudes.
 */
#ifndef JIGSAW_SIM_COMPACT_H
#define JIGSAW_SIM_COMPACT_H

#include <vector>

#include "circuit/circuit.h"

namespace jigsaw {
namespace sim {

/** Result of compacting a circuit onto its active qubits. */
struct CompactCircuit
{
    /** The same gates, renumbered to dense qubit indices. */
    circuit::QuantumCircuit circuit;
    /** activeQubits[dense] = original (physical) qubit index. */
    std::vector<int> activeQubits;
    /** denseOf[physical] = dense index, or -1 when untouched. */
    std::vector<int> denseOf;
};

/**
 * Renumber the qubits touched by @p qc (by any gate or measurement)
 * to 0..k-1, preserving gate order and classical bits.
 */
CompactCircuit compactCircuit(const circuit::QuantumCircuit &qc);

} // namespace sim
} // namespace jigsaw

#endif // JIGSAW_SIM_COMPACT_H
