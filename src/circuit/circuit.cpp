#include "circuit/circuit.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/error.h"
#include "common/fnv.h"

namespace jigsaw {
namespace circuit {

QuantumCircuit::QuantumCircuit(int n_qubits, int n_clbits)
    : nQubits_(n_qubits),
      nClbits_(n_clbits < 0 ? n_qubits : n_clbits)
{
    fatalIf(n_qubits < 1 || n_qubits > 4096,
            "QuantumCircuit: qubit count must be in [1, 4096]");
    // Outcomes are packed into 64-bit basis states, so the classical
    // register (not the qubit register) is what caps at 64.
    fatalIf(nClbits_ > 64,
            "QuantumCircuit: classical register capped at 64 bits");
}

void
QuantumCircuit::checkQubit(int q) const
{
    fatalIf(q < 0 || q >= nQubits_,
            "QuantumCircuit: qubit index out of range");
}

QuantumCircuit &
QuantumCircuit::h(int q)
{
    return append({GateType::H, {q}, {}, -1});
}

QuantumCircuit &
QuantumCircuit::x(int q)
{
    return append({GateType::X, {q}, {}, -1});
}

QuantumCircuit &
QuantumCircuit::y(int q)
{
    return append({GateType::Y, {q}, {}, -1});
}

QuantumCircuit &
QuantumCircuit::z(int q)
{
    return append({GateType::Z, {q}, {}, -1});
}

QuantumCircuit &
QuantumCircuit::s(int q)
{
    return append({GateType::S, {q}, {}, -1});
}

QuantumCircuit &
QuantumCircuit::sdg(int q)
{
    return append({GateType::SDG, {q}, {}, -1});
}

QuantumCircuit &
QuantumCircuit::t(int q)
{
    return append({GateType::T, {q}, {}, -1});
}

QuantumCircuit &
QuantumCircuit::tdg(int q)
{
    return append({GateType::TDG, {q}, {}, -1});
}

QuantumCircuit &
QuantumCircuit::rx(double theta, int q)
{
    return append({GateType::RX, {q}, {theta}, -1});
}

QuantumCircuit &
QuantumCircuit::ry(double theta, int q)
{
    return append({GateType::RY, {q}, {theta}, -1});
}

QuantumCircuit &
QuantumCircuit::rz(double phi, int q)
{
    return append({GateType::RZ, {q}, {phi}, -1});
}

QuantumCircuit &
QuantumCircuit::u3(double theta, double phi, double lambda, int q)
{
    return append({GateType::U3, {q}, {theta, phi, lambda}, -1});
}

QuantumCircuit &
QuantumCircuit::cx(int control, int target)
{
    return append({GateType::CX, {control, target}, {}, -1});
}

QuantumCircuit &
QuantumCircuit::cz(int a, int b)
{
    return append({GateType::CZ, {a, b}, {}, -1});
}

QuantumCircuit &
QuantumCircuit::cp(double theta, int a, int b)
{
    return append({GateType::CP, {a, b}, {theta}, -1});
}

QuantumCircuit &
QuantumCircuit::rzz(double theta, int a, int b)
{
    return append({GateType::RZZ, {a, b}, {theta}, -1});
}

QuantumCircuit &
QuantumCircuit::swap(int a, int b)
{
    return append({GateType::SWAP, {a, b}, {}, -1});
}

QuantumCircuit &
QuantumCircuit::measure(int q, int c)
{
    if (c < 0)
        c = q;
    fatalIf(c >= nClbits_, "QuantumCircuit: classical bit out of range");
    return append({GateType::MEASURE, {q}, {}, c});
}

QuantumCircuit &
QuantumCircuit::measureAll()
{
    fatalIf(nClbits_ < nQubits_,
            "QuantumCircuit::measureAll: classical register too small");
    for (int q = 0; q < nQubits_; ++q)
        measure(q, q);
    return *this;
}

QuantumCircuit &
QuantumCircuit::barrier()
{
    return append({GateType::BARRIER, {}, {}, -1});
}

QuantumCircuit &
QuantumCircuit::append(Gate gate)
{
    for (int q : gate.qubits)
        checkQubit(q);
    if (gate.isTwoQubit()) {
        fatalIf(gate.qubits.size() != 2 ||
                gate.qubits[0] == gate.qubits[1],
                "QuantumCircuit: two-qubit gate needs distinct qubits");
    }
    gates_.push_back(std::move(gate));
    return *this;
}

QuantumCircuit &
QuantumCircuit::compose(const QuantumCircuit &other)
{
    fatalIf(other.nQubits_ > nQubits_,
            "QuantumCircuit::compose: other circuit has more qubits");
    for (const Gate &g : other.gates_)
        append(g);
    return *this;
}

int
QuantumCircuit::countSingleQubitGates() const
{
    return static_cast<int>(std::count_if(
        gates_.begin(), gates_.end(),
        [](const Gate &g) { return g.isSingleQubit(); }));
}

int
QuantumCircuit::countTwoQubitGates() const
{
    return static_cast<int>(std::count_if(
        gates_.begin(), gates_.end(),
        [](const Gate &g) { return g.isTwoQubit(); }));
}

int
QuantumCircuit::countMeasurements() const
{
    return static_cast<int>(std::count_if(
        gates_.begin(), gates_.end(),
        [](const Gate &g) { return g.isMeasure(); }));
}

int
QuantumCircuit::depth() const
{
    std::vector<int> level(static_cast<std::size_t>(nQubits_), 0);
    int depth = 0;
    for (const Gate &g : gates_) {
        if (g.type == GateType::BARRIER)
            continue;
        int start = 0;
        for (int q : g.qubits)
            start = std::max(start, level[static_cast<std::size_t>(q)]);
        for (int q : g.qubits)
            level[static_cast<std::size_t>(q)] = start + 1;
        depth = std::max(depth, start + 1);
    }
    return depth;
}

std::vector<int>
QuantumCircuit::measuredQubits() const
{
    std::vector<int> qubit_of_clbit(static_cast<std::size_t>(nClbits_), -1);
    for (const Gate &g : gates_) {
        if (g.isMeasure())
            qubit_of_clbit[static_cast<std::size_t>(g.clbit)] = g.qubits[0];
    }
    return qubit_of_clbit;
}

QuantumCircuit
QuantumCircuit::withoutMeasurements() const
{
    QuantumCircuit out(nQubits_, nClbits_);
    for (const Gate &g : gates_) {
        if (!g.isMeasure())
            out.append(g);
    }
    return out;
}

QuantumCircuit
QuantumCircuit::withMeasurementSubset(const std::vector<int> &qubits) const
{
    fatalIf(qubits.empty(),
            "withMeasurementSubset: empty measurement subset");
    QuantumCircuit out(nQubits_, static_cast<int>(qubits.size()));
    for (const Gate &g : gates_) {
        if (!g.isMeasure())
            out.append(g);
    }
    out.barrier();
    for (std::size_t c = 0; c < qubits.size(); ++c)
        out.measure(qubits[c], static_cast<int>(c));
    return out;
}

QuantumCircuit
QuantumCircuit::remapped(const std::vector<int> &mapping,
                         int n_physical) const
{
    fatalIf(static_cast<int>(mapping.size()) < nQubits_,
            "remapped: mapping smaller than circuit");
    QuantumCircuit out(n_physical, nClbits_);
    for (const Gate &g : gates_) {
        Gate h = g;
        for (int &q : h.qubits) {
            q = mapping[static_cast<std::size_t>(q)];
            fatalIf(q < 0 || q >= n_physical,
                    "remapped: mapping produced invalid physical qubit");
        }
        out.append(std::move(h));
    }
    return out;
}

namespace {

/**
 * Stream one gate into the structural hash. Barriers are scheduling
 * hints with no effect on execution, so circuits differing only in
 * barriers must share one hash: executors key caches on this, and
 * withMeasurementSubset inserts a barrier that a routed circuit may
 * not carry.
 */
inline void
mixGate(std::uint64_t &h, const Gate &g)
{
    if (g.type == GateType::BARRIER)
        return;
    fnvMixWord(h, static_cast<std::uint64_t>(g.type));
    fnvMixWord(h, g.qubits.size());
    for (int q : g.qubits)
        fnvMixWord(h, static_cast<std::uint64_t>(q));
    fnvMixWord(h, g.params.size());
    for (double p : g.params)
        fnvMixDouble(h, p);
    fnvMixWord(h, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(g.clbit)));
}

/** mixGate without the parameter values (counts still mix in). */
inline void
mixGateSkeleton(std::uint64_t &h, const Gate &g)
{
    if (g.type == GateType::BARRIER)
        return;
    fnvMixWord(h, static_cast<std::uint64_t>(g.type));
    fnvMixWord(h, g.qubits.size());
    for (int q : g.qubits)
        fnvMixWord(h, static_cast<std::uint64_t>(q));
    fnvMixWord(h, g.params.size());
    fnvMixWord(h, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(g.clbit)));
}

} // namespace

std::uint64_t
QuantumCircuit::structuralHash() const
{
    // FNV-1a over the structural fields. 64 bits keeps accidental
    // collisions between the handful of circuits a process touches
    // out of practical reach.
    std::uint64_t h = kFnvOffsetBasis;
    fnvMixWord(h, static_cast<std::uint64_t>(nQubits_));
    fnvMixWord(h, static_cast<std::uint64_t>(nClbits_));
    for (const Gate &g : gates_)
        mixGate(h, g);
    return h;
}

std::uint64_t
QuantumCircuit::measurementSubsetHash(const std::vector<int> &qubits) const
{
    // Same stream withMeasurementSubset(qubits).structuralHash()
    // would produce — non-measure gates, then one MEASURE per subset
    // qubit into clbits 0..k-1 (the inserted barrier never hashes) —
    // without materializing the circuit copy. Executors key their
    // batched-CPM caches on this, once per spec per batch.
    fatalIf(qubits.empty(),
            "measurementSubsetHash: empty measurement subset");
    std::uint64_t h = kFnvOffsetBasis;
    fnvMixWord(h, static_cast<std::uint64_t>(nQubits_));
    fnvMixWord(h, qubits.size());
    for (const Gate &g : gates_) {
        if (!g.isMeasure())
            mixGate(h, g);
    }
    for (std::size_t c = 0; c < qubits.size(); ++c) {
        checkQubit(qubits[c]);
        mixGate(h, {GateType::MEASURE, {qubits[c]}, {},
                    static_cast<int>(c)});
    }
    return h;
}

std::uint64_t
QuantumCircuit::skeletonHash() const
{
    std::uint64_t h = kFnvOffsetBasis;
    fnvMixWord(h, static_cast<std::uint64_t>(nQubits_));
    fnvMixWord(h, static_cast<std::uint64_t>(nClbits_));
    for (const Gate &g : gates_)
        mixGateSkeleton(h, g);
    return h;
}

std::uint64_t
QuantumCircuit::prefixHash(std::size_t n_gates) const
{
    fatalIf(n_gates > gates_.size(),
            "prefixHash: prefix longer than circuit");
    // nClbits is deliberately excluded: every measurement variant of
    // one gate prefix (global circuit, each CPM) must share the hash,
    // and those variants differ only in register width and measures.
    std::uint64_t h = kFnvOffsetBasis;
    fnvMixWord(h, static_cast<std::uint64_t>(nQubits_));
    for (std::size_t i = 0; i < n_gates; ++i)
        mixGate(h, gates_[i]);
    return h;
}

std::size_t
QuantumCircuit::parameterCount() const
{
    std::size_t count = 0;
    for (const Gate &g : gates_)
        count += g.params.size();
    return count;
}

std::vector<double>
QuantumCircuit::parameters() const
{
    std::vector<double> out;
    out.reserve(parameterCount());
    for (const Gate &g : gates_)
        out.insert(out.end(), g.params.begin(), g.params.end());
    return out;
}

QuantumCircuit &
QuantumCircuit::rebindAngles(const std::vector<double> &angles)
{
    fatalIf(angles.size() != parameterCount(),
            "rebindAngles: angle count does not match parameterCount()");
    std::size_t next = 0;
    for (Gate &g : gates_) {
        for (double &p : g.params)
            p = angles[next++];
    }
    return *this;
}

std::size_t
QuantumCircuit::diagonalSuffixStart() const
{
    std::size_t start = 0;
    for (std::size_t i = 0; i < gates_.size(); ++i) {
        const Gate &g = gates_[i];
        if (g.isMeasure() || g.type == GateType::BARRIER)
            continue;
        if (!g.isDiagonal())
            start = i + 1;
    }
    return start;
}

std::string
QuantumCircuit::toString() const
{
    std::ostringstream oss;
    oss << "qubits " << nQubits_ << "; clbits " << nClbits_ << ";\n";
    for (const Gate &g : gates_) {
        oss << g.name();
        if (!g.params.empty()) {
            oss << '(';
            for (std::size_t i = 0; i < g.params.size(); ++i) {
                if (i)
                    oss << ", ";
                oss << g.params[i];
            }
            oss << ')';
        }
        for (std::size_t i = 0; i < g.qubits.size(); ++i)
            oss << (i ? ", q" : " q") << g.qubits[i];
        if (g.isMeasure())
            oss << " -> c" << g.clbit;
        oss << ";\n";
    }
    return oss.str();
}

} // namespace circuit
} // namespace jigsaw
