#include "circuit/qasm.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <optional>
#include <sstream>
#include <vector>

#include "common/error.h"

namespace jigsaw {
namespace circuit {

namespace {

/** qelib1 mnemonic for a gate type (CP is called cu1 there). */
std::string
qasmName(GateType type)
{
    if (type == GateType::CP)
        return "cu1";
    return gateTypeName(type);
}

std::optional<GateType>
typeFromQasmName(const std::string &name)
{
    static const std::vector<std::pair<const char *, GateType>> table{
        {"h", GateType::H},     {"x", GateType::X},
        {"y", GateType::Y},     {"z", GateType::Z},
        {"s", GateType::S},     {"sdg", GateType::SDG},
        {"t", GateType::T},     {"tdg", GateType::TDG},
        {"rx", GateType::RX},   {"ry", GateType::RY},
        {"rz", GateType::RZ},   {"u3", GateType::U3},
        {"cx", GateType::CX},   {"cz", GateType::CZ},
        {"cu1", GateType::CP},  {"cp", GateType::CP},
        {"rzz", GateType::RZZ}, {"swap", GateType::SWAP},
    };
    for (const auto &[mnemonic, type] : table) {
        if (name == mnemonic)
            return type;
    }
    return std::nullopt;
}

/** Number of rotation parameters each gate type carries. */
std::size_t
paramCount(GateType type)
{
    switch (type) {
      case GateType::RX:
      case GateType::RY:
      case GateType::RZ:
      case GateType::CP:
      case GateType::RZZ:
        return 1;
      case GateType::U3:
        return 3;
      default:
        return 0;
    }
}

/** Parse "q[3]" -> 3 (whitespace-tolerant), checking the register. */
int
parseIndex(const std::string &raw, const std::string &reg)
{
    const auto first = raw.find_first_not_of(" \t");
    const auto last = raw.find_last_not_of(" \t");
    fatalIf(first == std::string::npos,
            "fromQasm: expected " + reg + "[i], got ''");
    const std::string token = raw.substr(first, last - first + 1);
    const auto open = token.find('[');
    const auto close = token.find(']');
    fatalIf(open == std::string::npos || close == std::string::npos ||
            token.substr(0, open) != reg,
            "fromQasm: expected " + reg + "[i], got '" + token + "'");
    return std::stoi(token.substr(open + 1, close - open - 1));
}

/**
 * Recursive-descent evaluator for QASM parameter expressions: float
 * literals (including exponents), the `pi` constant, unary +/-,
 * binary + - * /, and parentheses — the grammar rotation angles in
 * real qelib1 dumps use (`rz(pi/4)`, `rz(-3*pi/2)`, `cu1(1.5e-1)`).
 */
class ParamExpr
{
  public:
    explicit ParamExpr(const std::string &text) : text_(text) {}

    double evaluate()
    {
        const double value = parseSum();
        skipSpace();
        fatalIf(pos_ != text_.size(),
                "fromQasm: trailing characters in parameter '" + text_ +
                    "'");
        return value;
    }

  private:
    void skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    double parseSum()
    {
        double value = parseProduct();
        for (;;) {
            if (consume('+'))
                value += parseProduct();
            else if (consume('-'))
                value -= parseProduct();
            else
                return value;
        }
    }

    double parseProduct()
    {
        double value = parseUnary();
        for (;;) {
            if (consume('*')) {
                value *= parseUnary();
            } else if (consume('/')) {
                const double rhs = parseUnary();
                fatalIf(rhs == 0.0, "fromQasm: division by zero in "
                                    "parameter '" + text_ + "'");
                value /= rhs;
            } else {
                return value;
            }
        }
    }

    double parseUnary()
    {
        if (consume('-'))
            return -parseUnary();
        if (consume('+'))
            return parseUnary();
        return parseAtom();
    }

    double parseAtom()
    {
        skipSpace();
        if (consume('(')) {
            const double value = parseSum();
            fatalIf(!consume(')'), "fromQasm: unbalanced parentheses "
                                   "in parameter '" + text_ + "'");
            return value;
        }
        fatalIf(pos_ >= text_.size(),
                "fromQasm: empty parameter expression in '" + text_ +
                    "'");
        if (text_.compare(pos_, 2, "pi") == 0) {
            pos_ += 2;
            return M_PI;
        }
        // A numeric literal: delegate to strtod, which handles
        // exponents ('1.5e-3'). It must consume at least one char.
        const char *begin = text_.c_str() + pos_;
        char *end = nullptr;
        const double value = std::strtod(begin, &end);
        fatalIf(end == begin, "fromQasm: malformed parameter '" +
                                  text_ + "'");
        pos_ += static_cast<std::size_t>(end - begin);
        return value;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

/** Split on a delimiter, trimming surrounding whitespace. */
std::vector<std::string>
splitTrim(const std::string &text, char delimiter)
{
    std::vector<std::string> parts;
    std::string current;
    std::istringstream stream(text);
    while (std::getline(stream, current, delimiter)) {
        const auto first = current.find_first_not_of(" \t");
        const auto last = current.find_last_not_of(" \t");
        parts.push_back(first == std::string::npos
                            ? ""
                            : current.substr(first, last - first + 1));
    }
    return parts;
}

} // namespace

std::string
toQasm(const QuantumCircuit &qc)
{
    std::ostringstream out;
    out << "OPENQASM 2.0;\n"
        << "include \"qelib1.inc\";\n"
        << "qreg q[" << qc.nQubits() << "];\n"
        << "creg c[" << qc.nClbits() << "];\n";
    out << std::setprecision(17);

    for (const Gate &g : qc.gates()) {
        if (g.type == GateType::BARRIER) {
            out << "barrier q;\n";
            continue;
        }
        if (g.isMeasure()) {
            out << "measure q[" << g.qubits[0] << "] -> c[" << g.clbit
                << "];\n";
            continue;
        }
        out << qasmName(g.type);
        if (!g.params.empty()) {
            out << '(';
            for (std::size_t i = 0; i < g.params.size(); ++i) {
                if (i)
                    out << ',';
                out << g.params[i];
            }
            out << ')';
        }
        out << ' ';
        for (std::size_t i = 0; i < g.qubits.size(); ++i) {
            if (i)
                out << ',';
            out << "q[" << g.qubits[i] << ']';
        }
        out << ";\n";
    }
    return out.str();
}

QuantumCircuit
fromQasm(const std::string &text)
{
    std::istringstream stream(text);
    std::string line;
    std::optional<QuantumCircuit> qc;
    int n_qubits = -1;
    int n_clbits = -1;

    auto ensure_circuit = [&]() -> QuantumCircuit & {
        if (!qc) {
            fatalIf(n_qubits < 0, "fromQasm: qreg must precede gates");
            qc.emplace(n_qubits, n_clbits < 0 ? n_qubits : n_clbits);
        }
        return *qc;
    };

    while (std::getline(stream, line)) {
        // Strip comments and whitespace; skip empties and headers.
        const auto comment = line.find("//");
        if (comment != std::string::npos)
            line = line.substr(0, comment);
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos)
            continue;
        const auto last = line.find_last_not_of(" \t\r");
        line = line.substr(first, last - first + 1);
        if (line.rfind("OPENQASM", 0) == 0 ||
            line.rfind("include", 0) == 0) {
            continue;
        }
        fatalIf(line.back() != ';',
                "fromQasm: statement missing ';': " + line);
        line.pop_back();

        if (line.rfind("qreg", 0) == 0) {
            n_qubits = parseIndex(line.substr(5), "q");
            continue;
        }
        if (line.rfind("creg", 0) == 0) {
            n_clbits = parseIndex(line.substr(5), "c");
            continue;
        }
        if (line.rfind("barrier", 0) == 0) {
            ensure_circuit().barrier();
            continue;
        }
        if (line.rfind("measure", 0) == 0) {
            const auto arrow = line.find("->");
            fatalIf(arrow == std::string::npos,
                    "fromQasm: measure missing '->': " + line);
            const int q = parseIndex(line.substr(8, arrow - 8), "q");
            const int c = parseIndex(line.substr(arrow + 2), "c");
            ensure_circuit().measure(q, c);
            continue;
        }

        // Gate statement: name[(params)] q[i](, q[j]).
        const auto space = line.find_first_of(" (");
        fatalIf(space == std::string::npos,
                "fromQasm: malformed statement: " + line);
        const std::string name = line.substr(0, space);
        const auto type = typeFromQasmName(name);
        fatalIf(!type, "fromQasm: unsupported gate '" + name + "'");

        std::vector<double> params;
        std::string operands;
        if (line[space] == '(') {
            // The matching close paren, not the first one: parameter
            // expressions may nest ('rz(2*(pi - 1))').
            std::size_t close = std::string::npos;
            int depth = 0;
            for (std::size_t i = space; i < line.size(); ++i) {
                if (line[i] == '(') {
                    ++depth;
                } else if (line[i] == ')' && --depth == 0) {
                    close = i;
                    break;
                }
            }
            fatalIf(close == std::string::npos,
                    "fromQasm: unterminated parameter list: " + line);
            for (const std::string &p : splitTrim(
                     line.substr(space + 1, close - space - 1), ',')) {
                params.push_back(ParamExpr(p).evaluate());
            }
            operands = line.substr(close + 1);
        } else {
            operands = line.substr(space + 1);
        }
        fatalIf(params.size() != paramCount(*type),
                "fromQasm: wrong parameter count for " + name);

        std::vector<int> qubits;
        for (const std::string &operand : splitTrim(operands, ','))
            qubits.push_back(parseIndex(operand, "q"));

        ensure_circuit().append({*type, qubits, params, -1});
    }

    fatalIf(!qc && n_qubits < 0, "fromQasm: no qreg found");
    return ensure_circuit();
}

} // namespace circuit
} // namespace jigsaw
