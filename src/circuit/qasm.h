/**
 * @file
 * OpenQASM 2.0 interchange.
 *
 * Lets circuits built with this library be inspected with, or fed to,
 * the wider toolchain (Qiskit et al.), and lets externally authored
 * programs enter the JigSaw pipeline. The emitter covers the full gate
 * set of this IR; the parser accepts the same dialect back (one
 * statement per line, qelib1 gate names), so toQasm/fromQasm round-trip.
 */
#ifndef JIGSAW_CIRCUIT_QASM_H
#define JIGSAW_CIRCUIT_QASM_H

#include <string>

#include "circuit/circuit.h"

namespace jigsaw {
namespace circuit {

/**
 * Serialize @p qc as an OpenQASM 2.0 program. CP is emitted as cu1
 * (its qelib1 name); everything else maps one-to-one.
 */
std::string toQasm(const QuantumCircuit &qc);

/**
 * Parse an OpenQASM 2.0 program using the subset of the language this
 * library emits: OPENQASM/include headers, one qreg and one creg,
 * the qelib1 gates h, x, y, z, s, sdg, t, tdg, rx, ry, rz, u3, cx,
 * cz, cu1, rzz, swap, plus measure and barrier. Comments (//) and
 * blank lines are ignored. Throws std::invalid_argument on anything
 * else.
 */
QuantumCircuit fromQasm(const std::string &text);

} // namespace circuit
} // namespace jigsaw

#endif // JIGSAW_CIRCUIT_QASM_H
