#include "circuit/gate.h"

namespace jigsaw {
namespace circuit {

bool
Gate::isTwoQubit() const
{
    switch (type) {
      case GateType::CX:
      case GateType::CZ:
      case GateType::CP:
      case GateType::RZZ:
      case GateType::SWAP:
        return true;
      default:
        return false;
    }
}

bool
Gate::isSingleQubit() const
{
    switch (type) {
      case GateType::MEASURE:
      case GateType::BARRIER:
        return false;
      default:
        return !isTwoQubit();
    }
}

bool
Gate::isDiagonal() const
{
    switch (type) {
      case GateType::Z:
      case GateType::S:
      case GateType::SDG:
      case GateType::T:
      case GateType::TDG:
      case GateType::RZ:
      case GateType::CZ:
      case GateType::CP:
      case GateType::RZZ:
        return true;
      default:
        return false;
    }
}

std::string
Gate::name() const
{
    return gateTypeName(type);
}

std::string
gateTypeName(GateType type)
{
    switch (type) {
      case GateType::H: return "h";
      case GateType::X: return "x";
      case GateType::Y: return "y";
      case GateType::Z: return "z";
      case GateType::S: return "s";
      case GateType::SDG: return "sdg";
      case GateType::T: return "t";
      case GateType::TDG: return "tdg";
      case GateType::RX: return "rx";
      case GateType::RY: return "ry";
      case GateType::RZ: return "rz";
      case GateType::U3: return "u3";
      case GateType::CX: return "cx";
      case GateType::CZ: return "cz";
      case GateType::CP: return "cp";
      case GateType::RZZ: return "rzz";
      case GateType::SWAP: return "swap";
      case GateType::MEASURE: return "measure";
      case GateType::BARRIER: return "barrier";
    }
    return "?";
}

} // namespace circuit
} // namespace jigsaw
