/**
 * @file
 * Gate-level intermediate representation.
 *
 * The gate set covers what the paper's benchmarks and compiler need:
 * the IBM basis-adjacent single-qubit rotations (with U3 as the general
 * case), CX/CZ/RZZ/SWAP two-qubit operations, measurement, and barriers.
 */
#ifndef JIGSAW_CIRCUIT_GATE_H
#define JIGSAW_CIRCUIT_GATE_H

#include <string>
#include <vector>

namespace jigsaw {
namespace circuit {

/** Operation kinds understood by the simulator and compiler. */
enum class GateType
{
    H,
    X,
    Y,
    Z,
    S,
    SDG,
    T,
    TDG,
    RX,
    RY,
    RZ,
    U3,
    CX,
    CZ,
    CP,
    RZZ,
    SWAP,
    MEASURE,
    BARRIER,
};

/**
 * One operation in a circuit: a type, the qubits it acts on, optional
 * rotation parameters, and for measurements the classical bit that
 * receives the result.
 */
struct Gate
{
    GateType type;
    std::vector<int> qubits;
    std::vector<double> params;
    int clbit = -1; ///< Destination classical bit (MEASURE only).

    /** True for CX/CZ/RZZ/SWAP. */
    bool isTwoQubit() const;

    /** True for the single-qubit unitaries (not MEASURE/BARRIER). */
    bool isSingleQubit() const;

    /** True for MEASURE. */
    bool isMeasure() const { return type == GateType::MEASURE; }

    /**
     * True for unitaries diagonal in the computational basis
     * (Z/S/SDG/T/TDG/RZ and CZ/CP/RZZ) — the gates that commute with
     * measurement-basis projectors, so a trailing run of them can be
     * re-applied onto a cached pre-run state (parametric serving) and
     * fused into phase tables (sim/statevector.cpp uses the same set).
     */
    bool isDiagonal() const;

    /** Lower-case mnemonic, e.g. "cx". */
    std::string name() const;
};

/** Mnemonic for a gate type. */
std::string gateTypeName(GateType type);

} // namespace circuit
} // namespace jigsaw

#endif // JIGSAW_CIRCUIT_GATE_H
