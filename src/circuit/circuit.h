/**
 * @file
 * QuantumCircuit: the program representation shared by workloads, the
 * compiler, and the simulator.
 */
#ifndef JIGSAW_CIRCUIT_CIRCUIT_H
#define JIGSAW_CIRCUIT_CIRCUIT_H

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/gate.h"

namespace jigsaw {
namespace circuit {

/**
 * An ordered list of gates over n qubits and a classical register.
 *
 * The builder methods append gates fluently:
 * @code
 *     QuantumCircuit qc(4, 4);
 *     qc.h(0).cx(0, 1).cx(1, 2).cx(2, 3).measureAll();
 * @endcode
 */
class QuantumCircuit
{
  public:
    /**
     * Construct a circuit over @p n_qubits qubits and @p n_clbits
     * classical bits (defaults to one per qubit).
     */
    explicit QuantumCircuit(int n_qubits, int n_clbits = -1);

    /** @name Single-qubit builder methods
     *  @{ */
    QuantumCircuit &h(int q);
    QuantumCircuit &x(int q);
    QuantumCircuit &y(int q);
    QuantumCircuit &z(int q);
    QuantumCircuit &s(int q);
    QuantumCircuit &sdg(int q);
    QuantumCircuit &t(int q);
    QuantumCircuit &tdg(int q);
    QuantumCircuit &rx(double theta, int q);
    QuantumCircuit &ry(double theta, int q);
    QuantumCircuit &rz(double phi, int q);
    QuantumCircuit &u3(double theta, double phi, double lambda, int q);
    /** @} */

    /** @name Two-qubit builder methods
     *  @{ */
    QuantumCircuit &cx(int control, int target);
    QuantumCircuit &cz(int a, int b);
    QuantumCircuit &cp(double theta, int a, int b);
    QuantumCircuit &rzz(double theta, int a, int b);
    QuantumCircuit &swap(int a, int b);
    /** @} */

    /** Measure qubit @p q into classical bit @p c (defaults to c = q). */
    QuantumCircuit &measure(int q, int c = -1);

    /** Measure every qubit i into classical bit i. */
    QuantumCircuit &measureAll();

    /** Append a barrier (scheduling hint; no semantic effect here). */
    QuantumCircuit &barrier();

    /** Append an arbitrary gate after validating its qubit indices. */
    QuantumCircuit &append(Gate gate);

    /** Append all gates of @p other (qubit counts must match). */
    QuantumCircuit &compose(const QuantumCircuit &other);

    /** Number of qubits. */
    int nQubits() const { return nQubits_; }

    /** Number of classical bits. */
    int nClbits() const { return nClbits_; }

    /** All gates in program order. */
    const std::vector<Gate> &gates() const { return gates_; }

    /** Count of non-measure single-qubit gates. */
    int countSingleQubitGates() const;

    /** Count of two-qubit gates. */
    int countTwoQubitGates() const;

    /** Count of measurement operations. */
    int countMeasurements() const;

    /** Circuit depth (longest qubit-dependency chain, barriers skipped). */
    int depth() const;

    /**
     * Measured qubits in classical-bit order: element c is the qubit
     * measured into classical bit c (-1 if bit c is unused).
     */
    std::vector<int> measuredQubits() const;

    /** Copy of this circuit with all measurements removed. */
    QuantumCircuit withoutMeasurements() const;

    /**
     * Build a Circuit with Partial Measurements (CPM): identical gates,
     * but only @p qubits are measured, into classical bits 0..k-1 in
     * the order given (paper Section 4.2.1).
     */
    QuantumCircuit withMeasurementSubset(const std::vector<int> &qubits) const;

    /**
     * Copy with qubit indices rewritten: gate qubit q becomes
     * @p mapping[q]. Used by the compiler to apply a layout. The new
     * circuit has @p n_physical qubits.
     */
    QuantumCircuit remapped(const std::vector<int> &mapping,
                            int n_physical) const;

    /**
     * Structural 64-bit hash over register sizes and the exact gate
     * sequence (types, qubits, parameter bit patterns, classical
     * bits). Barriers are excluded: they do not affect execution, so
     * circuits differing only in barriers hash equal. Two circuits
     * with equal hashes execute identically, so executors use it as a
     * memoization key for exact output PMFs.
     */
    std::uint64_t structuralHash() const;

    /**
     * structuralHash() of withMeasurementSubset(qubits), computed
     * without building the circuit copy. Executors key batched-CPM
     * cache lookups on this.
     */
    std::uint64_t
    measurementSubsetHash(const std::vector<int> &qubits) const;

    /**
     * Parameter-invariant structural hash: the same stream as
     * structuralHash() minus the parameter *values* (gate types, qubit
     * wiring, parameter counts, and classical bits still mix in, and
     * barriers are still excluded). Two iterations of a variational
     * loop — identical structure, different rotation angles — share
     * one skeleton hash, so the transpile memo and merge-window keying
     * can amortize compilation across the loop.
     */
    std::uint64_t skeletonHash() const;

    /**
     * structuralHash() restricted to the register sizes and the first
     * @p n_gates gates — with nClbits excluded, so all measurement
     * variants of one gate prefix (the global circuit and every CPM)
     * share the hash. Executors key shared-prefix state caches on
     * this.
     */
    std::uint64_t prefixHash(std::size_t n_gates) const;

    /** Total number of gate parameters, in gate order. */
    std::size_t parameterCount() const;

    /** Every gate parameter, flattened in gate order. */
    std::vector<double> parameters() const;

    /**
     * Overwrite every gate parameter in place from @p angles (flat,
     * gate order; the size must equal parameterCount()). The circuit's
     * skeletonHash() is unchanged; its structuralHash() reflects the
     * new binding. This is the per-iteration step of a variational
     * loop: one compiled skeleton, re-bound angles.
     */
    QuantumCircuit &rebindAngles(const std::vector<double> &angles);

    /**
     * Index one past the last non-diagonal unitary gate: every
     * unitary at or after the returned index satisfies
     * Gate::isDiagonal() (measures and barriers are ignored). 0 when
     * the whole circuit is diagonal. Executors split evolution here to
     * cache the prefix state across re-bound diagonal tails.
     */
    std::size_t diagonalSuffixStart() const;

    /** Human-readable listing (one gate per line, OpenQASM-flavored). */
    std::string toString() const;

  private:
    void checkQubit(int q) const;

    int nQubits_;
    int nClbits_;
    std::vector<Gate> gates_;
};

} // namespace circuit
} // namespace jigsaw

#endif // JIGSAW_CIRCUIT_CIRCUIT_H
