#include "core/jigsaw.h"

#include "core/session.h"

namespace jigsaw {
namespace core {

std::vector<Marginal>
JigsawResult::marginals() const
{
    std::vector<Marginal> ms;
    ms.reserve(cpms.size());
    for (const CpmRecord &cpm : cpms)
        ms.push_back({cpm.localPmf, cpm.subset});
    return ms;
}

JigsawResult
runJigsaw(const circuit::QuantumCircuit &logical,
          const device::DeviceModel &dev, sim::Executor &executor,
          std::uint64_t total_trials, const JigsawOptions &options)
{
    // The staged pipeline (core/pipeline.h) does the actual work; the
    // classic entry point is one session run start to finish.
    return JigsawSession(logical, dev, executor, total_trials, options)
        .run();
}

Pmf
runBaseline(const circuit::QuantumCircuit &logical,
            const device::DeviceModel &dev, sim::Executor &executor,
            std::uint64_t total_trials,
            const compiler::TranspileOptions &options)
{
    const compiler::CompiledCircuit compiled =
        compiler::transpileCached(logical, dev, options);
    return executor.run(compiled.physical, total_trials).toPmf();
}

JigsawOptions
jigsawMOptions()
{
    JigsawOptions options;
    options.subsetSizes = {2, 3, 4, 5};
    return options;
}

} // namespace core
} // namespace jigsaw
