#include "core/jigsaw.h"

#include <algorithm>
#include <unordered_map>

#include "common/error.h"
#include "sim/eps.h"

namespace jigsaw {
namespace core {

std::vector<Marginal>
JigsawResult::marginals() const
{
    std::vector<Marginal> ms;
    ms.reserve(cpms.size());
    for (const CpmRecord &cpm : cpms)
        ms.push_back({cpm.localPmf, cpm.subset});
    return ms;
}

namespace {

/** Generate the run's subsets over @p n measured bit positions. */
std::vector<Subset>
generateSubsets(int n, const JigsawOptions &options)
{
    if (options.customSubsets)
        return *options.customSubsets;

    std::vector<Subset> subsets;
    Rng rng(options.seed);
    for (int size : options.subsetSizes) {
        fatalIf(size < 1 || size > n,
                "runJigsaw: subset size out of range");
        std::vector<Subset> layer;
        switch (options.subsetMethod) {
          case SubsetMethod::SlidingWindow:
            layer = slidingWindowSubsets(n, size);
            break;
          case SubsetMethod::RandomCovering:
            layer = coveringRandomSubsets(n, size, rng);
            break;
        }
        subsets.insert(subsets.end(), layer.begin(), layer.end());
    }
    return subsets;
}

/**
 * Build the CPM for @p subset without recompilation: the global
 * compilation's physical circuit, measuring only the subset's
 * physical qubits (via the final layout).
 */
compiler::CompiledCircuit
cpmFromGlobal(const compiler::CompiledCircuit &global,
              const std::vector<int> &logical_qubits,
              const device::DeviceModel &dev)
{
    std::vector<int> physical_qubits;
    physical_qubits.reserve(logical_qubits.size());
    for (int lq : logical_qubits)
        physical_qubits.push_back(global.finalLayout.physicalOf(lq));

    compiler::CompiledCircuit cpm{
        global.physical.withMeasurementSubset(physical_qubits),
        global.initialLayout,
        global.finalLayout,
        global.swapCount,
        0.0,
        0.0,
        0.0,
    };
    cpm.gateSuccess = sim::gateSuccessProbability(cpm.physical, dev);
    cpm.measurementSuccess =
        sim::measurementSuccessProbability(cpm.physical, dev);
    cpm.eps = cpm.gateSuccess * cpm.measurementSuccess;
    return cpm;
}

} // namespace

JigsawResult
runJigsaw(const circuit::QuantumCircuit &logical,
          const device::DeviceModel &dev, sim::Executor &executor,
          std::uint64_t total_trials, const JigsawOptions &options)
{
    fatalIf(total_trials < 2, "runJigsaw: need at least two trials");
    fatalIf(options.globalFraction <= 0.0 || options.globalFraction >= 1.0,
            "runJigsaw: globalFraction must be in (0, 1)");

    const int n_measured = logical.countMeasurements();
    fatalIf(n_measured < 2, "runJigsaw: program must measure >= 2 qubits");

    // Map classical bit -> logical qubit for CPM construction.
    const std::vector<int> qubit_of_clbit = logical.measuredQubits();

    // --- Global mode -----------------------------------------------
    compiler::CompiledCircuit global_compiled =
        compiler::transpileCached(logical, dev, options.transpile);
    const auto global_trials = static_cast<std::uint64_t>(
        static_cast<double>(total_trials) * options.globalFraction);
    const Pmf global_pmf =
        executor.run(global_compiled.physical, global_trials).toPmf();

    // --- Subset mode -----------------------------------------------
    const std::vector<Subset> subsets =
        generateSubsets(n_measured, options);
    fatalIf(subsets.empty(), "runJigsaw: no subsets generated");
    // Split the subset budget evenly, handing the integer-division
    // remainder to the first CPMs one trial each, so the run spends
    // exactly the budget it was given (globalTrials + subsetTrials ==
    // total_trials whenever the budget covers one trial per CPM).
    const std::uint64_t subset_budget = total_trials - global_trials;
    const std::uint64_t per_cpm_base = subset_budget / subsets.size();
    const std::uint64_t remainder = subset_budget % subsets.size();

    // CPM recompilation must not add SWAPs over the global schedule
    // (Section 4.2.2's "avoid extra SWAPs" rule).
    compiler::TranspileOptions cpm_options = options.transpile;
    cpm_options.maxSwaps = global_compiled.swapCount;

    JigsawResult result{global_pmf, global_pmf, global_compiled, {},
                        global_trials, 0};

    // Pass 1: compile every CPM. Most CPMs keep the global mapping
    // (cpmFromGlobal), so they share the global compilation's gate
    // prefix and differ only in which qubits are measured.
    std::vector<bool> from_global;
    from_global.reserve(subsets.size());
    for (std::size_t s = 0; s < subsets.size(); ++s) {
        const Subset &subset = subsets[s];
        const std::uint64_t per_cpm = std::max<std::uint64_t>(
            1, per_cpm_base + (s < remainder ? 1 : 0));
        std::vector<int> logical_qubits;
        logical_qubits.reserve(subset.size());
        for (int c : subset) {
            fatalIf(c < 0 || c >= n_measured,
                    "runJigsaw: subset bit out of range");
            logical_qubits.push_back(
                qubit_of_clbit[static_cast<std::size_t>(c)]);
        }

        // Recompilation considers the global allocation as a candidate
        // too (the paper notes most CPMs can reuse existing
        // allocations), so a recompiled CPM never has a lower expected
        // probability of success than the global mapping would give.
        compiler::CompiledCircuit compiled =
            cpmFromGlobal(global_compiled, logical_qubits, dev);
        bool reused_global = true;
        if (options.recompileCpms) {
            compiler::CompiledCircuit recompiled =
                compiler::transpileCached(
                    logical.withMeasurementSubset(logical_qubits), dev,
                    cpm_options);
            if (recompiled.eps > compiled.eps) {
                compiled = std::move(recompiled);
                reused_global = false;
            }
        }

        from_global.push_back(reused_global);
        result.cpms.push_back({subset, std::move(compiled),
                               Pmf(static_cast<int>(subset.size())),
                               per_cpm});
        result.subsetTrials += per_cpm;
    }

    // Pass 2: execute, grouped by shared gate prefix so a batching
    // backend evolves each prefix once and serves every member's
    // marginal off the single final state. All CPMs that kept the
    // global mapping share one group (batched against the global
    // physical circuit itself, which keeps the executor's PMF-cache
    // keys identical to per-CPM execution); recompiled CPMs group
    // together whenever recompilation chose the same layout/routing.
    struct BatchGroup
    {
        const circuit::QuantumCircuit *base;
        std::vector<sim::CpmSpec> specs;
        std::vector<std::size_t> members;
    };
    std::vector<BatchGroup> groups;
    std::unordered_map<std::uint64_t, std::size_t> group_of;
    for (std::size_t i = 0; i < result.cpms.size(); ++i) {
        const CpmRecord &cpm = result.cpms[i];
        const std::uint64_t prefix_hash =
            cpm.compiled.physical.withoutMeasurements().structuralHash();
        const auto [it, inserted] =
            group_of.emplace(prefix_hash, groups.size());
        if (inserted) {
            groups.push_back({from_global[i]
                                  ? &global_compiled.physical
                                  : &cpm.compiled.physical,
                              {},
                              {}});
        }
        std::vector<int> measured = cpm.compiled.physical.measuredQubits();
        for (int q : measured)
            fatalIf(q < 0, "runJigsaw: CPM with unused classical bit");
        BatchGroup &group = groups[it->second];
        group.specs.push_back({std::move(measured), cpm.trials});
        group.members.push_back(i);
    }
    for (const BatchGroup &group : groups) {
        const std::vector<Histogram> hists =
            executor.runBatch(*group.base, group.specs);
        for (std::size_t j = 0; j < group.members.size(); ++j)
            result.cpms[group.members[j]].localPmf = hists[j].toPmf();
    }

    // --- Reconstruction --------------------------------------------
    // multiLayerReconstruct applies marginals grouped by size, top
    // down; with a single size it reduces to plain reconstruction.
    result.output = multiLayerReconstruct(global_pmf, result.marginals(),
                                          options.reconstruction);
    return result;
}

Pmf
runBaseline(const circuit::QuantumCircuit &logical,
            const device::DeviceModel &dev, sim::Executor &executor,
            std::uint64_t total_trials,
            const compiler::TranspileOptions &options)
{
    const compiler::CompiledCircuit compiled =
        compiler::transpileCached(logical, dev, options);
    return executor.run(compiled.physical, total_trials).toPmf();
}

JigsawOptions
jigsawMOptions()
{
    JigsawOptions options;
    options.subsetSizes = {2, 3, 4, 5};
    return options;
}

} // namespace core
} // namespace jigsaw
