#include "core/trial_estimate.h"

#include <cmath>

#include "common/error.h"

namespace jigsaw {
namespace core {

namespace {

double
outcomeCount(int subset_size)
{
    fatalIf(subset_size < 1 || subset_size > 60,
            "trial estimate: subset size out of range");
    return std::ldexp(1.0, subset_size);
}

void
checkConfidence(double confidence)
{
    fatalIf(confidence <= 0.0 || confidence >= 1.0,
            "trial estimate: confidence must be in (0, 1)");
}

} // namespace

double
coverageProbability(int subset_size, std::uint64_t trials)
{
    const double p = 1.0 / outcomeCount(subset_size);
    return 1.0 - std::pow(1.0 - p, static_cast<double>(trials));
}

std::uint64_t
trialsForOutcome(int subset_size, double confidence)
{
    checkConfidence(confidence);
    const double n = outcomeCount(subset_size);
    return static_cast<std::uint64_t>(
        std::ceil(-std::log(1.0 - confidence) * n));
}

std::uint64_t
trialsForFullCoverage(int subset_size, double confidence)
{
    checkConfidence(confidence);
    const double n = outcomeCount(subset_size);
    return static_cast<std::uint64_t>(
        std::ceil(-std::log(1.0 - confidence) * n * n));
}

} // namespace core
} // namespace jigsaw
